.PHONY: build test check bench bench-smoke bench-cert fuzz-smoke certify-smoke metrics-smoke fmt clean

build:
	dune build

test:
	dune runtest

# Tier-1 verification: build, unit/property tests, the differential
# fuzzing oracle (all five backends against the explicit enumerator),
# one end-to-end certified verdict, and an instrumented profile run
# whose metrics snapshot must self-validate.
check: build test fuzz-smoke certify-smoke metrics-smoke

# Differential fuzzing subset for CI (< 10 s): 200 random cases, fixed
# seed, fails with a shrunk reproducer on any backend disagreement.
# Every 4th case also runs the certified SMT path and validates its
# proof/model certificate against the independent lib/cert checker.
fuzz-smoke:
	dune exec bin/fannet_cli.exe -- fuzz --cases 200 --seed 42 --quiet

# One certified tolerance bracket end-to-end on the fast pipeline
# (~1 min): solve with proof logging, re-check every DRUP proof and
# witness with lib/cert, and emit the textual proof artefacts. Exit 1
# means a counterexample was found and certified - also a pass for this
# target; only exit 2 (invalid certificate or usage error) fails it.
certify-smoke:
	dune exec bin/fannet_cli.exe -- certify --fast --bracket --max-delta 1 \
	  --proof certify_smoke.drup || [ $$? -eq 1 ]
	rm -f certify_smoke.drup certify_smoke.drup.cnf

# Instrumented profile on the fast pipeline (~seconds): runs with the
# observability registry enabled, prints the metrics table + span tree,
# and writes a JSON snapshot that the command itself re-parses and
# validates (exit 2 on a malformed snapshot).
metrics-smoke:
	dune exec bin/fannet_cli.exe -- profile --fast -o metrics_smoke.json
	rm -f metrics_smoke.json

# Full evaluation suite (E1-E17 + Bechamel timings); takes minutes.
bench:
	dune exec bench/main.exe

# Parallel-engine, certificate and observability subsets on the
# small-dataset pipeline (< 1 min). Emits BENCH_parallel.json,
# BENCH_cert.json and BENCH_obs.json and fails unless the artefacts
# re-parse and all cross-checks (including the <2% disabled-overhead
# contract) agree.
bench-smoke:
	dune exec bench/main.exe -- --smoke

# Certificate section only (proof-logging overhead, checker throughput,
# end-to-end certified verdict); emits BENCH_cert.json.
bench-cert:
	dune exec bench/main.exe -- --cert

fmt:
	dune fmt

clean:
	dune clean
	rm -f BENCH_parallel.json BENCH_cert.json BENCH_obs.json
	rm -f certify_smoke.drup certify_smoke.drup.cnf metrics_smoke.json
