.PHONY: build test check bench bench-smoke bench-cert bench-robust bench-obs bench-parallel bench-serve bench-count bench-ladder fuzz-smoke certify-smoke metrics-smoke faults-smoke serve-smoke chaos-smoke count-smoke ladder-smoke fmt clean

build:
	dune build

test:
	dune runtest

# Tier-1 verification: build, unit/property tests, the differential
# fuzzing oracle (all five backends against the explicit enumerator),
# one end-to-end certified verdict, an instrumented profile run whose
# metrics snapshot must self-validate, and the parallel-engine
# no-regression gate (work stealing, warm sessions, portfolio).
check: build test fuzz-smoke certify-smoke metrics-smoke faults-smoke serve-smoke chaos-smoke count-smoke ladder-smoke bench-parallel

# Differential fuzzing subset for CI (< 10 s): 200 random cases, fixed
# seed, fails with a shrunk reproducer on any backend disagreement.
# Every 4th case also runs the certified SMT path and validates its
# proof/model certificate against the independent lib/cert checker.
fuzz-smoke:
	dune exec bin/fannet_cli.exe -- fuzz --cases 200 --seed 42 --quiet

# One certified tolerance bracket end-to-end on the fast pipeline
# (~1 min): solve with proof logging, re-check every DRUP proof and
# witness with lib/cert, and emit the textual proof artefacts. Exit 1
# means a counterexample was found and certified - also a pass for this
# target; only exit 2 (invalid certificate or usage error) fails it.
certify-smoke:
	dune exec bin/fannet_cli.exe -- certify --fast --bracket --max-delta 1 \
	  --proof certify_smoke.drup || [ $$? -eq 1 ]
	rm -f certify_smoke.drup certify_smoke.drup.cnf

# Fault-injection smoke (~seconds): the full resilience suite (budget
# exhaustion, cancellation, torn checkpoints, kill-and-resume, the
# FANNET_FAULTS matrix), then two CLI runs under injected faults and a
# tiny --timeout, asserting a typed exit 2 and a clean message - never
# a crash or an uncaught exception.
faults-smoke:
	dune exec test/test_resil.exe -- -q
	dune exec bin/fannet_cli.exe -- tolerance --timeout 0.05; [ $$? -eq 2 ]
	FANNET_FAULTS=backend.unknown dune exec bin/fannet_cli.exe -- tolerance; 	  [ $$? -eq 2 ]

# Instrumented profile on the fast pipeline (~seconds): runs with the
# observability registry enabled, prints the metrics table + span tree,
# and writes a JSON snapshot that the command itself re-parses and
# validates (exit 2 on a malformed snapshot).
metrics-smoke:
	dune exec bin/fannet_cli.exe -- profile --fast -o metrics_smoke.json
	rm -f metrics_smoke.json

# fannetd end-to-end smoke (~seconds): a scripted client session against
# an in-process daemon on an ephemeral TCP port — ping, model upload,
# cold query, bit-identical cache hit, certified query re-checked by the
# independent lib/cert checker, one malformed-JSON frame (typed error,
# connection survives), one garbage-framed connection (typed error,
# closed), a raw HTTP GET /metrics scrape, the stats accounting
# identity, and a clean client-initiated shutdown. Exit 2 on any
# mismatch.
serve-smoke:
	dune exec bin/fannet_cli.exe -- serve --self-test

# Crash-isolation smoke (~10 s): a supervised fannetd (2 worker
# processes) under an armed kill schedule — 16 concurrent clients, every
# 7th query receipt _exits the worker mid-flight. Asserts the accounting
# identity, at least one observed death and restart, no untyped client
# failure, and that a daemon restarted on the same journal serves every
# journaled answer bit-identically from the recovered cache (certified
# answers re-checked by lib/cert). Exit 2 on any violation.
chaos-smoke:
	dune exec bin/fannet_cli.exe -- serve --chaos-test

# Model-counting smoke (~15 s): exact counts against brute-force
# enumeration, fannet-count-cert/1 certificates re-checked by the
# independent validator, jobs=1 vs jobs=4 byte-identity (certificate
# included), the (ε, δ) envelope over 20 seeds, daemon cold-vs-cached
# byte-identity for a certified count, and checkpoint
# exhaust-and-resume. Exit 2 on any mismatch.
count-smoke:
	dune exec bin/fannet_cli.exe -- count --self-test
	@echo "count-smoke: checking (eps, delta) usage-error rejection paths"
	@dune exec bin/fannet_cli.exe -- count --approx --epsilon 0 2>/dev/null; \
	  st=$$?; [ $$st -eq 2 ] || { echo "FAIL: --epsilon 0 exited $$st, want usage error 2"; exit 1; }
	@dune exec bin/fannet_cli.exe -- count --approx --epsilon -0.5 2>/dev/null; \
	  st=$$?; [ $$st -eq 2 ] || { echo "FAIL: --epsilon -0.5 exited $$st, want usage error 2"; exit 1; }
	@dune exec bin/fannet_cli.exe -- count --approx --approx-delta 0 2>/dev/null; \
	  st=$$?; [ $$st -eq 2 ] || { echo "FAIL: --approx-delta 0 exited $$st, want usage error 2"; exit 1; }
	@dune exec bin/fannet_cli.exe -- count --approx --approx-delta 1.5 2>/dev/null; \
	  st=$$?; [ $$st -eq 2 ] || { echo "FAIL: --approx-delta 1.5 exited $$st, want usage error 2"; exit 1; }

# E22 scaling-ladder smoke (< 15 s): the asserted subset of the deep &
# binarized ladder — gene-panel rungs cross-checked against the explicit
# enumerator (verdicts, flip counts and a lib/cert-validated certified
# verdict, sign comparators included), the 64-input 3-layer relu rung
# where pure interval bounds return Unknown but symbolic-bounds Bnb
# decides, and the deep binarized rung whose revalidated counterexample
# Bnb must find. Emits BENCH_ladder.json; exit 2 on any violated
# assertion.
ladder-smoke:
	dune exec bench/main.exe -- --ladder --smoke

# Full evaluation suite (E1-E17 + Bechamel timings); takes minutes.
bench:
	dune exec bench/main.exe

# Parallel-engine, certificate and observability subsets on the
# small-dataset pipeline (< 1 min). Emits BENCH_parallel.json,
# BENCH_cert.json and BENCH_obs.json and fails unless the artefacts
# re-parse and all cross-checks (including the <2% disabled-overhead
# contract) agree.
bench-smoke:
	dune exec bench/main.exe -- --smoke

# Certificate section only (proof-logging overhead, checker throughput,
# end-to-end certified verdict); emits BENCH_cert.json.
bench-cert:
	dune exec bench/main.exe -- --cert

# Resilience section only (E18: budget-check overhead vs the <2%
# contract, checkpoint write cost); emits BENCH_robust.json.
bench-robust:
	dune exec bench/main.exe -- --robust

# Observability section only (E17: disabled fast-path contract, enabled
# overhead); emits BENCH_obs.json.
bench-obs:
	dune exec bench/main.exe -- --obs

# Parallel-engine gate (E15 + E19, smoke-sized, < 10 s): jobs=1 vs
# jobs=N verdict equality, work-stealing effort accounting, warm-pool
# reuse (0 re-encodes on a repeat search) and a portfolio race whose
# winning certificate must pass the independent RUP checker. Asserts
# no-regression everywhere and speedup > 1 only on multi-core, full
# runs — deliberately non-flaky, so `make check` includes it.
bench-parallel:
	dune exec bench/main.exe -- --parallel

# Serving section (E20, < 1 min): an in-process fannetd driven by
# concurrent clients — qps, p50/p99 latency, cache hit rate and the
# cold / warm-session / cache-hit contrast (with bit-identical certified
# verdicts on cache hits). Emits BENCH_serve.json.
bench-serve:
	dune exec bench/main.exe -- --serve

# Counting section (E21, < 1 min): exact #SAT throughput (plain vs
# certified), tight-ε approx short-circuit agreement, and the (ε, δ)
# grid's cost/accuracy on a synthetic XOR-hash workload — the envelope
# is asserted, not just reported. Emits BENCH_count.json.
bench-count:
	dune exec bench/main.exe -- --count

# Scaling-ladder section (E22, ~1 min): {6, 64, 784} inputs x {2, 3, 4}
# layers x {relu-quantized, binarized} at noise deltas 1-2 — interval vs
# budgeted symbolic-bounds Bnb verdicts, explicit/count/certificate
# cross-checks on the small rungs, and the asserted precision gap.
# Emits BENCH_ladder.json.
bench-ladder:
	dune exec bench/main.exe -- --ladder

fmt:
	dune fmt

# BENCH_parallel/obs/robust/serve/count/ladder.json are tracked
# artefacts (regenerated by their bench targets), so clean leaves them
# alone.
clean:
	dune clean
	rm -f BENCH_cert.json
	rm -f certify_smoke.drup certify_smoke.drup.cnf metrics_smoke.json
