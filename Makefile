.PHONY: build test bench bench-smoke fmt clean

build:
	dune build

test:
	dune runtest

# Full evaluation suite (E1-E15 + Bechamel timings); takes minutes.
bench:
	dune exec bench/main.exe

# Parallel-engine subset on the small-dataset pipeline (< 5 s). Emits
# BENCH_parallel.json and fails unless the artefact re-parses and the
# jobs=1 / jobs=N / cascade verdicts agree.
bench-smoke:
	dune exec bench/main.exe -- --smoke

fmt:
	dune fmt

clean:
	dune clean
	rm -f BENCH_parallel.json
