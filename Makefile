.PHONY: build test check bench bench-smoke bench-cert bench-robust fuzz-smoke certify-smoke metrics-smoke faults-smoke fmt clean

build:
	dune build

test:
	dune runtest

# Tier-1 verification: build, unit/property tests, the differential
# fuzzing oracle (all five backends against the explicit enumerator),
# one end-to-end certified verdict, and an instrumented profile run
# whose metrics snapshot must self-validate.
check: build test fuzz-smoke certify-smoke metrics-smoke faults-smoke

# Differential fuzzing subset for CI (< 10 s): 200 random cases, fixed
# seed, fails with a shrunk reproducer on any backend disagreement.
# Every 4th case also runs the certified SMT path and validates its
# proof/model certificate against the independent lib/cert checker.
fuzz-smoke:
	dune exec bin/fannet_cli.exe -- fuzz --cases 200 --seed 42 --quiet

# One certified tolerance bracket end-to-end on the fast pipeline
# (~1 min): solve with proof logging, re-check every DRUP proof and
# witness with lib/cert, and emit the textual proof artefacts. Exit 1
# means a counterexample was found and certified - also a pass for this
# target; only exit 2 (invalid certificate or usage error) fails it.
certify-smoke:
	dune exec bin/fannet_cli.exe -- certify --fast --bracket --max-delta 1 \
	  --proof certify_smoke.drup || [ $$? -eq 1 ]
	rm -f certify_smoke.drup certify_smoke.drup.cnf

# Fault-injection smoke (~seconds): the full resilience suite (budget
# exhaustion, cancellation, torn checkpoints, kill-and-resume, the
# FANNET_FAULTS matrix), then two CLI runs under injected faults and a
# tiny --timeout, asserting a typed exit 2 and a clean message - never
# a crash or an uncaught exception.
faults-smoke:
	dune exec test/test_resil.exe -- -q
	dune exec bin/fannet_cli.exe -- tolerance --timeout 0.05; [ $$? -eq 2 ]
	FANNET_FAULTS=backend.unknown dune exec bin/fannet_cli.exe -- tolerance; 	  [ $$? -eq 2 ]

# Instrumented profile on the fast pipeline (~seconds): runs with the
# observability registry enabled, prints the metrics table + span tree,
# and writes a JSON snapshot that the command itself re-parses and
# validates (exit 2 on a malformed snapshot).
metrics-smoke:
	dune exec bin/fannet_cli.exe -- profile --fast -o metrics_smoke.json
	rm -f metrics_smoke.json

# Full evaluation suite (E1-E17 + Bechamel timings); takes minutes.
bench:
	dune exec bench/main.exe

# Parallel-engine, certificate and observability subsets on the
# small-dataset pipeline (< 1 min). Emits BENCH_parallel.json,
# BENCH_cert.json and BENCH_obs.json and fails unless the artefacts
# re-parse and all cross-checks (including the <2% disabled-overhead
# contract) agree.
bench-smoke:
	dune exec bench/main.exe -- --smoke

# Certificate section only (proof-logging overhead, checker throughput,
# end-to-end certified verdict); emits BENCH_cert.json.
bench-cert:
	dune exec bench/main.exe -- --cert

# Resilience section only (E18: budget-check overhead vs the <2%
# contract, checkpoint write cost); emits BENCH_robust.json.
bench-robust:
	dune exec bench/main.exe -- --robust

fmt:
	dune fmt

clean:
	dune clean
	rm -f BENCH_parallel.json BENCH_cert.json BENCH_obs.json BENCH_robust.json
	rm -f certify_smoke.drup certify_smoke.drup.cnf metrics_smoke.json
