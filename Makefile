.PHONY: build test check bench bench-smoke fuzz-smoke fmt clean

build:
	dune build

test:
	dune runtest

# Tier-1 verification: build, unit/property tests, and the differential
# fuzzing oracle (all five backends against the explicit enumerator).
check: build test fuzz-smoke

# Differential fuzzing subset for CI (< 10 s): 200 random cases, fixed
# seed, fails with a shrunk reproducer on any backend disagreement.
fuzz-smoke:
	dune exec bin/fannet_cli.exe -- fuzz --cases 200 --seed 42 --quiet

# Full evaluation suite (E1-E15 + Bechamel timings); takes minutes.
bench:
	dune exec bench/main.exe

# Parallel-engine subset on the small-dataset pipeline (< 5 s). Emits
# BENCH_parallel.json and fails unless the artefact re-parses and the
# jobs=1 / jobs=N / cascade verdicts agree.
bench-smoke:
	dune exec bench/main.exe -- --smoke

fmt:
	dune fmt

clean:
	dune clean
	rm -f BENCH_parallel.json
