(* Command-line interface to the FANNet reproduction.

   fannet train        -- build the case-study pipeline, report accuracies
   fannet validate     -- P1: noise-free validation of the integer model
   fannet translate    -- emit the nuXmv-compatible SMV model
   fannet tolerance    -- network noise tolerance (paper Sec. V-C.1)
   fannet sweep        -- misclassifications per noise range (Fig. 4)
   fannet extract      -- adversarial noise vectors for one input (P3)
   fannet sensitivity  -- input-node sensitivity (paper Sec. V-C.4)
   fannet boundary     -- classification-boundary estimation (Sec. V-C.2)
   fannet bias         -- training-bias analysis (paper Sec. V-C.3)
   fannet fsm          -- explicit state-space statistics (Fig. 3)
   fannet fuzz         -- differential fuzzing of the analysis backends
   fannet certify      -- certified robustness verdicts with DRUP proofs
   fannet count        -- quantitative robustness: exact/approx model counting
   fannet profile      -- instrumented run: metrics table + span tree
   fannet serve        -- fannetd: the verification daemon (fannet-wire/1)
   fannet query        -- one-shot client for a running fannetd

   Most analysis commands also take --metrics FILE to dump the
   observability snapshot (Obs.Report JSON) of that run, and the
   resource flags --timeout SEC / --max-mem MB / --retries N: the
   analysis runs under a Resil.Budget, exhaustion surfaces as exit 2
   with the typed reason on stderr, and retries re-run with a doubled
   budget. extract and tolerance additionally take --checkpoint FILE
   to persist/resume progress across kills (fannet-ckpt/1 format).

   Exit codes (all commands): 0 = verified/certified or analysis done,
   1 = a counterexample was found, 2 = usage error, invalid result, or
   budget exhausted (reason on stderr). *)

open Cmdliner

(* ---------- shared options ---------- *)

let dataset_seed =
  let doc = "Seed for the synthetic Golub-like dataset." in
  Arg.(value & opt int 2028 & info [ "dataset-seed" ] ~docv:"SEED" ~doc)

let init_seed =
  let doc = "Seed for the network weight initialisation." in
  Arg.(value & opt int 7 & info [ "init-seed" ] ~docv:"SEED" ~doc)

let delta =
  let doc = "Symmetric noise percent bound (noise in [-DELTA, +DELTA])." in
  Arg.(value & opt int 15 & info [ "d"; "delta" ] ~docv:"DELTA" ~doc)

let max_delta =
  let doc = "Largest noise percent probed." in
  Arg.(value & opt int 50 & info [ "max-delta" ] ~docv:"DELTA" ~doc)

let no_bias_noise =
  let doc = "Do not perturb the bias input node (the paper perturbs all six input nodes)." in
  Arg.(value & flag & info [ "no-bias-noise" ] ~doc)

let backend =
  let parse = function
    | "bnb" -> Ok Fannet.Backend.Bnb
    | "smt" -> Ok Fannet.Backend.Smt
    | "explicit" -> Ok (Fannet.Backend.Explicit { limit = Fannet.Backend.default_explicit_limit })
    | "interval" -> Ok Fannet.Backend.Interval
    | "cascade" -> Ok (Fannet.Backend.Cascade Fannet.Backend.Bnb)
    | "cascade-smt" -> Ok (Fannet.Backend.Cascade Fannet.Backend.Smt)
    | s ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown backend %S (bnb|smt|explicit|interval|cascade|cascade-smt)" s))
  in
  let print fmt b = Format.pp_print_string fmt (Fannet.Backend.to_string b) in
  let backend_conv = Arg.conv (parse, print) in
  let doc =
    "Analysis backend: bnb (default), smt, explicit, interval, cascade \
     (interval prefilter + bnb) or cascade-smt."
  in
  Arg.(value & opt backend_conv Fannet.Backend.Bnb & info [ "backend" ] ~docv:"BACKEND" ~doc)

let jobs =
  let doc =
    "Worker domains for the per-sample verification loops. Defaults to \
     $(b,FANNET_JOBS) or the machine's recommended domain count; 1 forces the \
     sequential path (results are identical at every setting)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let limit =
  let doc = "Maximum number of counterexamples to extract." in
  Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N" ~doc)

let input_index =
  let doc = "Index of the analysed (correctly classified) test input." in
  Arg.(value & opt int 0 & info [ "input" ] ~docv:"INDEX" ~doc)

let output_file =
  let doc = "Write output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let metrics_file =
  let doc =
    "Enable the observability registry for this run and write its JSON \
     snapshot (counters, latency histograms, span tree) to $(docv) on \
     exit — including the counterexample-found exit-1 paths."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      Obs.Report.enable ();
      (* Counterexample paths terminate with [exit 1] without unwinding the
         stack, so the snapshot is flushed from [at_exit], not a finally. *)
      at_exit (fun () -> Obs.Report.write path);
      f ()

(* ---------- resource budgets (--timeout / --max-mem / --retries) ---------- *)

let timeout_arg =
  let doc =
    "Wall-clock budget for the analysis, in seconds (fractional values \
     allowed). On exhaustion the run stops cooperatively at the next poll \
     point and exits 2 with reason $(b,deadline)."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)

let max_mem_arg =
  let doc =
    "Approximate major-heap budget in MB (checked at the same cadence as \
     the deadline). Exhaustion exits 2 with reason $(b,memory)."
  in
  Arg.(value & opt (some int) None & info [ "max-mem" ] ~docv:"MB" ~doc)

let retries_arg =
  let doc =
    "Retry a budget-exhausted analysis up to $(docv) more times, doubling \
     the time/conflict budget each attempt."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc =
    "Persist progress to $(docv) (fannet-ckpt/1 format, atomic writes) and \
     resume from it when it already exists, so a killed run continues \
     where it stopped. The file is removed when the analysis completes."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let budget_of timeout max_mem =
  match (timeout, max_mem) with
  | None, None -> None
  | timeout_s, max_mem_mb -> Some (Resil.Budget.create ?timeout_s ?max_mem_mb ())

let exit_exhausted r =
  Printf.eprintf "analysis incomplete: budget exhausted (%s)\n%!"
    (Resil.Budget.reason_to_string r);
  exit 2

(* Run [f] under the budget, retrying with a doubled budget on a
   retryable exhaustion; the terminal [Error] exits 2 with the reason. *)
let with_retries ~retries budget f =
  let rec go attempt budget =
    match f budget with
    | Ok v -> v
    | Error r when attempt < retries && Resil.Budget.retryable r ->
        Printf.eprintf
          "budget exhausted (%s); retrying with a doubled budget (attempt \
           %d/%d)\n%!"
          (Resil.Budget.reason_to_string r) (attempt + 1) retries;
        go (attempt + 1) (Option.map (Resil.Budget.scale ~by:2) budget)
    | Error r -> exit_exhausted r
  in
  go 0 budget

(* Checkpoint key mismatches surface as [Invalid_argument]: a usage
   error, reported cleanly rather than as a backtrace. *)
let with_clean_errors f =
  try f () with Invalid_argument msg | Failure msg ->
    Printf.eprintf "error: %s\n%!" msg;
    exit 2

let pipeline dataset_seed init_seed =
  let config = { Fannet.Pipeline.default_config with dataset_seed; init_seed } in
  Fannet.Pipeline.run ~config ()

(* Documented process exit codes, attached to every command's man page. *)
let exits =
  [
    Cmd.Exit.info 0 ~doc:"the property was verified/certified (or the analysis completed).";
    Cmd.Exit.info 1 ~doc:"a counterexample was found (a noise vector flips the input, or fuzzing found a backend disagreement).";
    Cmd.Exit.info 2
      ~doc:
        "usage error, invalid certificate, internal failure, or resource \
         budget exhausted ($(b,--timeout)/$(b,--max-mem); the typed reason \
         — deadline, conflicts, memory, cancelled — is printed on stderr).";
  ]

let bias_flag no_bias_noise = not no_bias_noise

(* ---------- commands ---------- *)

let save_model =
  let doc = "Also save the quantized integer model to $(docv)." in
  Arg.(value & opt (some string) None & info [ "save-model" ] ~docv:"FILE" ~doc)

let train_cmd =
  let run metrics dataset_seed init_seed save_model =
    with_metrics metrics @@ fun () ->
    let p = pipeline dataset_seed init_seed in
    Printf.printf "selected genes (mRMR): %s\n"
      (String.concat ", " (Array.to_list (Array.map string_of_int p.selected_genes)));
    Printf.printf "training accuracy (quantized): %.2f%%\n" (100. *. p.train_accuracy);
    Printf.printf "test accuracy (quantized):     %.2f%%\n" (100. *. p.test_accuracy);
    Printf.printf "P1 validation: %d/%d test inputs correctly classified\n"
      p.p1.Fannet.Validate.n_correct p.p1.Fannet.Validate.n_total;
    Printf.printf "float/quantized agreement:     %.2f%%\n"
      (100. *. Fannet.Validate.float_agreement p.network p.qnet ~inputs:p.test_inputs);
    match save_model with
    | None -> ()
    | Some path ->
        Nn.Qnet.save path p.qnet;
        Printf.printf "quantized model written to %s\n" path
  in
  let doc = "Train the Leukemia network and report accuracies (paper Sec. V-A)." in
  Cmd.v (Cmd.info "train" ~doc ~exits)
    Term.(const run $ metrics_file $ dataset_seed $ init_seed $ save_model)

let validate_cmd =
  let run dataset_seed init_seed =
    let p = pipeline dataset_seed init_seed in
    let r = p.p1 in
    Printf.printf "P1: %d/%d correct (%.2f%%)\n" r.Fannet.Validate.n_correct
      r.Fannet.Validate.n_total (100. *. r.Fannet.Validate.accuracy);
    List.iter
      (fun (i, predicted) ->
        let _, label = p.test_inputs.(i) in
        Printf.printf "  mismatch: test input %d, true L%d -> predicted L%d\n" i label predicted)
      r.Fannet.Validate.mismatches
  in
  let doc = "P1: validate the integer model on the test set without noise." in
  Cmd.v (Cmd.info "validate" ~doc ~exits) Term.(const run $ dataset_seed $ init_seed)

let translate_cmd =
  let run dataset_seed init_seed delta no_bias_noise input_index output =
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    if input_index < 0 || input_index >= Array.length inputs then
      failwith "input index out of range";
    let input, label = inputs.(input_index) in
    let prog =
      Smv.Translate.network_program p.qnet
        (Smv.Translate.symmetric ~delta ~bias_noise:(bias_flag no_bias_noise)
           ~samples:[ (input, label) ])
    in
    let text = Smv.Printer.program_to_string prog in
    match output with
    | None -> print_string text
    | Some path ->
        Smv.Printer.write_file path prog;
        Printf.printf "SMV model written to %s\n" path
  in
  let doc = "Translate the network + noise model to nuXmv-compatible SMV." in
  Cmd.v (Cmd.info "translate" ~doc ~exits)
    Term.(const run $ dataset_seed $ init_seed $ delta $ no_bias_noise $ input_index $ output_file)

let tolerance_cmd =
  let run metrics dataset_seed init_seed max_delta no_bias_noise backend jobs
      timeout max_mem retries checkpoint =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    Util.Parallel.set_default_jobs jobs;
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let bias_noise = bias_flag no_bias_noise in
    let budget = budget_of timeout max_mem in
    let tol =
      match (checkpoint, budget) with
      | None, None ->
          Fannet.Tolerance.network_tolerance backend p.qnet ~bias_noise
            ~max_delta ~inputs
      | Some path, _ ->
          with_retries ~retries budget (fun budget ->
              Fannet.Tolerance.network_tolerance_ckpt ?budget ~checkpoint:path
                backend p.qnet ~bias_noise ~max_delta ~inputs)
      | None, Some _ ->
          with_retries ~retries budget (fun budget ->
              Fannet.Tolerance.network_tolerance_b ?budget backend p.qnet
                ~bias_noise ~max_delta ~inputs)
    in
    Printf.printf "network noise tolerance: +-%d%% (probed up to +-%d%%, %d inputs)\n"
      tol max_delta (Array.length inputs)
  in
  let doc = "Compute the network noise tolerance (paper: +-11%)." in
  Cmd.v (Cmd.info "tolerance" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ max_delta $ no_bias_noise
      $ backend $ jobs $ timeout_arg $ max_mem_arg $ retries_arg $ checkpoint_arg)

let sweep_cmd =
  let run metrics dataset_seed init_seed no_bias_noise backend jobs timeout
      max_mem retries =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    Util.Parallel.set_default_jobs jobs;
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let bias_noise = bias_flag no_bias_noise in
    let deltas = [ 5; 10; 15; 20; 25; 30; 35; 40 ] in
    let sweep =
      match budget_of timeout max_mem with
      | None -> Fannet.Tolerance.sweep backend p.qnet ~bias_noise ~deltas ~inputs
      | Some _ as budget ->
          with_retries ~retries budget (fun budget ->
              Fannet.Tolerance.sweep_b ?budget backend p.qnet ~bias_noise
                ~deltas ~inputs)
    in
    let table = Util.Table.create ~header:[ "noise range"; "misclassified"; "of" ] in
    List.iter
      (fun (pt : Fannet.Tolerance.sweep_point) ->
        Util.Table.add_row table
          [
            Printf.sprintf "[-%d,+%d]%%" pt.delta pt.delta;
            string_of_int pt.n_misclassified;
            string_of_int (Array.length inputs);
          ])
      sweep;
    Util.Table.print table
  in
  let doc = "Misclassification counts per noise range (Fig. 4 left panel)." in
  Cmd.v (Cmd.info "sweep" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ no_bias_noise $ backend
      $ jobs $ timeout_arg $ max_mem_arg $ retries_arg)

let extract_cmd =
  let run metrics dataset_seed init_seed delta no_bias_noise input_index limit
      timeout max_mem retries checkpoint =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    if input_index < 0 || input_index >= Array.length inputs then
      failwith "input index out of range";
    let input, label = inputs.(input_index) in
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise:(bias_flag no_bias_noise) in
    (* Retries resume from the checkpoint (when given), so each attempt
       keeps the previous attempt's partial corpus. *)
    let rec attempt n budget =
      match
        Fannet.Extract.for_input ~limit ?budget ?checkpoint p.qnet spec ~input
          ~label ~input_index
      with
      | _, Fannet.Extract.Budget r when n < retries && Resil.Budget.retryable r
        ->
          Printf.eprintf
            "budget exhausted (%s); retrying with a doubled budget (attempt \
             %d/%d)\n%!"
            (Resil.Budget.reason_to_string r) (n + 1) retries;
          attempt (n + 1) (Option.map (Resil.Budget.scale ~by:2) budget)
      | result -> result
    in
    let cexs, status = attempt 0 (budget_of timeout max_mem) in
    (* The summary line always carries the enumeration status; incomplete
       corpora additionally drive the exit code (budget -> 2). *)
    Printf.printf "input %d (true L%d), noise +-%d%%: %d adversarial vectors (%s)\n"
      input_index label delta (List.length cexs)
      (Fannet.Extract.status_to_string status);
    List.iteri
      (fun k (c : Fannet.Extract.counterexample) ->
        if k < 20 then
          Printf.printf "  -> L%d with %s\n" c.predicted (Fannet.Noise.to_string c.vector))
      cexs;
    if List.length cexs > 20 then
      Printf.printf "  ... (%d more)\n" (List.length cexs - 20);
    match status with
    | Fannet.Extract.Budget r -> exit_exhausted r
    | Fannet.Extract.Complete | Fannet.Extract.Truncated -> ()
  in
  let doc = "P3: extract the adversarial noise vectors for one input." in
  Cmd.v (Cmd.info "extract" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ delta $ no_bias_noise
      $ input_index $ limit $ timeout_arg $ max_mem_arg $ retries_arg
      $ checkpoint_arg)

let sensitivity_cmd =
  let run metrics dataset_seed init_seed delta no_bias_noise limit jobs timeout
      max_mem retries =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    Util.Parallel.set_default_jobs jobs;
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let bias_noise = bias_flag no_bias_noise in
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
    let budget = budget_of timeout max_mem in
    let cexs, sides =
      match budget with
      | None ->
          let cexs, _ =
            Fannet.Extract.for_inputs ~limit_per_input:limit p.qnet spec ~inputs
          in
          (cexs, Fannet.Sensitivity.formal_sidedness p.qnet spec ~inputs)
      | Some _ ->
          with_retries ~retries budget (fun budget ->
              match
                Fannet.Extract.for_inputs ~limit_per_input:limit ?budget p.qnet
                  spec ~inputs
              with
              | _, Fannet.Extract.Budget r -> Error r
              | cexs, (Fannet.Extract.Complete | Fannet.Extract.Truncated) -> (
                  match
                    Fannet.Sensitivity.formal_sidedness_b ?budget p.qnet spec
                      ~inputs
                  with
                  | Error r -> Error r
                  | Ok sides -> Ok (cexs, sides)))
    in
    let stats = Fannet.Sensitivity.per_node spec ~n_inputs:5 cexs in
    Array.iter (fun s -> print_endline (Fannet.Sensitivity.stats_to_string s)) stats;
    Array.iter
      (fun (f : Fannet.Sensitivity.formal_side) ->
        Printf.printf "node %d: positive-side flips %b, negative-side flips %b\n"
          f.fs_node f.positive_flip f.negative_flip)
      sides
  in
  let doc = "Input-node sensitivity: corpus statistics and formal sidedness." in
  Cmd.v (Cmd.info "sensitivity" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ delta $ no_bias_noise
      $ limit $ jobs $ timeout_arg $ max_mem_arg $ retries_arg)

let boundary_cmd =
  let run metrics dataset_seed init_seed max_delta no_bias_noise backend jobs
      timeout max_mem retries =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    Util.Parallel.set_default_jobs jobs;
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let bias_noise = bias_flag no_bias_noise in
    let points =
      match budget_of timeout max_mem with
      | None ->
          Fannet.Boundary.analyze backend p.qnet ~bias_noise ~max_delta ~inputs
      | Some _ as budget ->
          with_retries ~retries budget (fun budget ->
              Fannet.Boundary.analyze_b ?budget backend p.qnet ~bias_noise
                ~max_delta ~inputs)
    in
    let table = Util.Table.create ~header:[ "input"; "true"; "min flip"; "margin" ] in
    Array.iter
      (fun (pt : Fannet.Boundary.point) ->
        Util.Table.add_row table
          [
            string_of_int pt.input_index;
            Printf.sprintf "L%d" pt.true_label;
            (match pt.min_flip_delta with
            | Some d -> Printf.sprintf "+-%d%%" d
            | None -> Printf.sprintf ">+-%d%%" max_delta);
            string_of_int pt.margin;
          ])
      points;
    Util.Table.print table;
    Printf.printf "margin/min-flip correlation: %.3f\n"
      (Fannet.Boundary.margin_flip_correlation points)
  in
  let doc = "Per-input minimal flipping noise (classification boundary)." in
  Cmd.v (Cmd.info "boundary" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ max_delta $ no_bias_noise
      $ backend $ jobs $ timeout_arg $ max_mem_arg $ retries_arg)

let bias_cmd =
  let run metrics dataset_seed init_seed delta no_bias_noise limit jobs timeout
      max_mem retries =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    Util.Parallel.set_default_jobs jobs;
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise:(bias_flag no_bias_noise) in
    let cexs =
      match budget_of timeout max_mem with
      | None ->
          fst (Fannet.Extract.for_inputs ~limit_per_input:limit p.qnet spec ~inputs)
      | Some _ as budget ->
          with_retries ~retries budget (fun budget ->
              match
                Fannet.Extract.for_inputs ~limit_per_input:limit ?budget p.qnet
                  spec ~inputs
              with
              | _, Fannet.Extract.Budget r -> Error r
              | cexs, (Fannet.Extract.Complete | Fannet.Extract.Truncated) ->
                  Ok cexs)
    in
    let report =
      Fannet.Bias.analyze ~n_classes:2
        ~training_labels:(Fannet.Pipeline.training_labels p)
        ~analysed_labels:(Array.map snd inputs) cexs
    in
    print_endline (Fannet.Bias.report_to_string report)
  in
  let doc = "Training-bias analysis over the counterexample corpus." in
  Cmd.v (Cmd.info "bias" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ delta $ no_bias_noise
      $ limit $ jobs $ timeout_arg $ max_mem_arg $ retries_arg)

let minflip_cmd =
  let run dataset_seed init_seed delta no_bias_noise timeout max_mem retries =
    with_clean_errors @@ fun () ->
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise:(bias_flag no_bias_noise) in
    let min_flip budget ~input ~label =
      match budget with
      | None -> Fannet.Bnb.min_l1_flip p.qnet spec ~input ~label
      | Some _ ->
          with_retries ~retries budget (fun budget ->
              Fannet.Bnb.min_l1_flip_b ?budget p.qnet spec ~input ~label)
    in
    let budget = budget_of timeout max_mem in
    let table =
      Util.Table.create ~header:[ "input"; "true"; "min L1 noise"; "cheapest vector" ]
    in
    Array.iteri
      (fun i (input, label) ->
        match min_flip budget ~input ~label with
        | None ->
            Util.Table.add_row table
              [ string_of_int i; Printf.sprintf "L%d" label; "robust"; "-" ]
        | Some (v, norm) ->
            Util.Table.add_row table
              [
                string_of_int i;
                Printf.sprintf "L%d" label;
                string_of_int norm;
                Fannet.Noise.to_string v;
              ])
      inputs;
    Util.Table.print table
  in
  let doc = "Cheapest (minimum-L1) adversarial noise vector per input — the paper's (Δx)min." in
  Cmd.v (Cmd.info "minflip" ~doc ~exits)
    Term.(
      const run $ dataset_seed $ init_seed $ delta $ no_bias_noise $ timeout_arg
      $ max_mem_arg $ retries_arg)

let fsm_cmd =
  let run dataset_seed init_seed delta no_bias_noise input_index =
    let p = pipeline dataset_seed init_seed in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    if input_index < 0 || input_index >= Array.length inputs then
      failwith "input index out of range";
    let input, label = inputs.(input_index) in
    let prog =
      Smv.Translate.network_program p.qnet
        (Smv.Translate.symmetric ~delta ~bias_noise:(bias_flag no_bias_noise)
           ~samples:[ (input, label) ])
    in
    match Smv.Fsm.explore ~state_limit:2_000_000 prog with
    | Ok o ->
        Printf.printf "states: %d, transitions: %d\n" o.stats.n_states o.stats.n_transitions;
        if o.violations = [] then print_endline "P2 holds: no misclassifying noise vector"
        else
          List.iter
            (fun (name, trace) ->
              Printf.printf "%s violated; counterexample trace length %d\n" name
                (List.length trace))
            o.violations
    | Error e -> Printf.printf "exploration failed: %s\n" (Smv.Fsm.error_to_string e)
  in
  let doc = "Explicit-state statistics of the SMV model (Fig. 3); keep DELTA small." in
  Cmd.v (Cmd.info "fsm" ~doc ~exits)
    Term.(const run $ dataset_seed $ init_seed $ delta $ no_bias_noise $ input_index)

let fuzz_cmd =
  let cases =
    let doc = "Number of random cases to generate and check." in
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Master seed; the same seed reproduces the identical corpus." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let replay =
    let doc = "Replay a persisted JSON corpus instead of generating cases." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let save =
    let doc = "Also persist the checked corpus as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let quiet =
    let doc = "Suppress progress lines (the final report still prints)." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run cases seed replay save quiet =
    let log = if quiet then fun _ -> () else print_endline in
    let corpus_seed, corpus =
      match replay with
      | None ->
          (seed, Check.Gen.corpus ~seed ~cases ~max_explicit:Check.Gen.default_max_explicit)
      | Some path -> (
          (* Lenient load: malformed cases are skipped and counted, so a
             partially corrupted corpus still replays the rest. *)
          match Check.Case.load_corpus_lenient path with
          | Ok { Check.Case.corpus_seed; good; bad } ->
              List.iter
                (fun (_, err) -> Printf.eprintf "skipping malformed case: %s\n" err)
                bad;
              if bad <> [] then
                Printf.eprintf "skipped %d malformed case(s) in %s\n%!"
                  (List.length bad) path;
              log (Printf.sprintf "replaying %d cases from %s (seed %d)"
                     (List.length good) path corpus_seed);
              (corpus_seed, good)
          | Error msg ->
              Printf.eprintf "cannot load corpus %s: %s\n" path msg;
              exit 2)
    in
    (match save with
    | None -> ()
    | Some path ->
        Check.Case.save_corpus path ~seed:corpus_seed corpus;
        log (Printf.sprintf "corpus written to %s" path));
    let report = Check.Fuzz.run_cases ~log ~master_seed:corpus_seed corpus in
    print_string (Check.Fuzz.report_to_string report);
    if not (Check.Fuzz.report_ok report) then exit 1
  in
  let doc =
    "Differential fuzzing: random tractable cases, every backend against \
     the explicit enumerator (agreement, witness validity, interval \
     soundness, cascade lattice, parallel determinism); failures are \
     shrunk to minimal reproducers with their seeds."
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~exits)
    Term.(const run $ cases $ seed $ replay $ save $ quiet)

let certify_cmd =
  let bracket =
    let doc =
      "Certify a whole tolerance bracket (binary search up to \
       $(b,--max-delta)) instead of a single $(b,--delta) query: a DRUP \
       refutation at the largest robust range plus a checked witness at \
       the smallest flipping one."
    in
    Arg.(value & flag & info [ "bracket" ] ~doc)
  in
  let fast =
    let doc = "Use the small fast-config pipeline (64 genes) — smoke-test sized." in
    Arg.(value & flag & info [ "fast" ] ~doc)
  in
  let proof_file =
    let doc =
      "Write the DRUP refutation to $(docv) and the bit-blasted formula \
       (assumptions folded in as unit clauses) to $(docv).cnf, for external \
       checkers such as drat-trim."
    in
    Arg.(value & opt (some string) None & info [ "proof" ] ~docv:"FILE" ~doc)
  in
  let portfolio =
    let doc =
      "Race $(docv) diversified solvers on the single-$(b,--delta) query \
       (portfolio SAT): the first decided member wins, cancels the rest, \
       and its certificate is checked exactly like the single-solver one. \
       $(docv) defaults to min(4, jobs) when given as $(b,--portfolio 0); \
       each member runs on its own domain, so the effective parallelism is \
       the portfolio width times any $(b,FANNET_JOBS) worker pools active \
       in the same process — keep width times jobs at or below the core \
       count. Ignored with $(b,--bracket)."
    in
    Arg.(value & opt (some int) None & info [ "portfolio" ] ~docv:"WIDTH" ~doc)
  in
  let run metrics dataset_seed init_seed delta max_delta no_bias_noise input_index
      bracket fast proof_file portfolio timeout max_mem retries =
    with_metrics metrics @@ fun () ->
    with_clean_errors @@ fun () ->
    let p =
      if fast then
        Fannet.Pipeline.run
          ~config:{ Fannet.Pipeline.fast_config with dataset_seed; init_seed }
          ()
      else pipeline dataset_seed init_seed
    in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    if input_index < 0 || input_index >= Array.length inputs then
      failwith "input index out of range";
    let input, label = inputs.(input_index) in
    let bias_noise = bias_flag no_bias_noise in
    let write_proof cert =
      match (proof_file, Cert.Verdict.to_drup cert) with
      | None, _ | _, None -> ()
      | Some path, Some drup ->
          let write p s =
            let oc = open_out p in
            output_string oc s;
            close_out oc
          in
          write path drup;
          write (path ^ ".cnf") (Cert.Verdict.to_dimacs cert);
          Printf.printf "DRUP proof written to %s (formula to %s.cnf)\n" path path
    in
    let fail_invalid e =
      Printf.eprintf "certificate check FAILED: %s\n" e;
      exit 2
    in
    let budget = budget_of timeout max_mem in
    if bracket then begin
      let b =
        match budget with
        | None ->
            Fannet.Tolerance.certified_min_flip_delta p.qnet ~bias_noise
              ~max_delta ~input ~label
        | Some _ ->
            with_retries ~retries budget (fun budget ->
                Fannet.Tolerance.certified_min_flip_delta_b ?budget p.qnet
                  ~bias_noise ~max_delta ~input ~label)
      in
      (match
         Fannet.Tolerance.check_certified_bracket p.qnet ~bias_noise b ~input ~label
       with
      | Ok () -> ()
      | Error e -> fail_invalid e);
      (match b.Fannet.Tolerance.robust_cert with
      | None -> ()
      | Some (d, cert) ->
          Printf.printf "certified robust up to +-%d%% (input %d, true L%d)\n  %s\n"
            d input_index label (Cert.Verdict.describe cert);
          write_proof cert);
      match (b.Fannet.Tolerance.min_flip_delta, b.Fannet.Tolerance.flip_cert) with
      | None, _ ->
          Printf.printf "no noise vector up to +-%d%% flips input %d: certified\n"
            b.Fannet.Tolerance.max_delta input_index
      | Some m, Some (_, v, cert) ->
          Printf.printf
            "minimal flipping range +-%d%% with witness %s\n  %s\ncertificates checked\n"
            m (Fannet.Noise.to_string v) (Cert.Verdict.describe cert);
          exit 1
      | Some _, None -> fail_invalid "flip without certificate"
    end
    else begin
      let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
      let certified ?budget () =
        match portfolio with
        | None ->
            (Fannet.Backend.certified_exists_flip ?budget p.qnet spec ~input ~label, None)
        | Some w ->
            let width = if w <= 0 then Fannet.Portfolio.default_width () else w in
            let cv, seed =
              Fannet.Portfolio.certified_exists_flip ?budget ~width p.qnet spec
                ~input ~label
            in
            (cv, seed)
      in
      let cv, seed =
        match budget with
        | None -> certified ()
        | Some _ ->
            with_retries ~retries budget (fun budget ->
                match certified ?budget () with
                | { Fannet.Backend.cv_verdict = Fannet.Backend.Unknown r; _ }, _ ->
                    Error r
                | cv -> Ok cv)
      in
      (match Fannet.Backend.check_certified p.qnet spec ~input ~label cv with
      | Ok () -> ()
      | Error e -> fail_invalid e);
      let won =
        match seed with
        | Some s -> Printf.sprintf " (portfolio winner: seed %d)" s
        | None -> ""
      in
      match (cv.Fannet.Backend.cv_verdict, cv.Fannet.Backend.cv_cert) with
      | Fannet.Backend.Robust, Some cert ->
          Printf.printf "certified robust at +-%d%% (input %d, true L%d)%s\n  %s\n"
            delta input_index label won (Cert.Verdict.describe cert);
          write_proof cert
      | Fannet.Backend.Flip v, Some cert ->
          Printf.printf
            "noise %s flips input %d at +-%d%%: certificate checked%s\n  %s\n"
            (Fannet.Noise.to_string v) input_index delta won
            (Cert.Verdict.describe cert);
          exit 1
      | _ -> fail_invalid "backend did not decide"
    end
  in
  let doc =
    "Certified robustness verdicts: the SMT backend with DRUP proof logging, \
     every answer re-checked by the independent $(b,lib/cert) checker \
     (exit 0 robust-certified, 1 flip found, 2 invalid certificate)."
  in
  Cmd.v (Cmd.info "certify" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ delta $ max_delta
      $ no_bias_noise $ input_index $ bracket $ fast $ proof_file $ portfolio
      $ timeout_arg $ max_mem_arg $ retries_arg)

let profile_cmd =
  let fast =
    let doc = "Use the small fast-config pipeline (64 genes) — smoke-test sized." in
    Arg.(value & flag & info [ "fast" ] ~doc)
  in
  (* A fixed two-layer toy network for the incremental-SMT stage: its
     bit-blast solves in milliseconds, so the solver counters populate
     even under --fast without paying a full-network SMT query. *)
  let toy_qnet () =
    Nn.Qnet.create
      [|
        {
          Nn.Qnet.weights =
            [| [| 31; -22 |]; [| -13; 41 |]; [| 17; 9 |]; [| -25; 14 |] |];
          bias = [| 55; -31; 12; -7 |];
          act = Nn.Qnet.Relu;
        };
        {
          Nn.Qnet.weights = [| [| 21; -33; 11; -9 |]; [| -20; 31; -12; 10 |] |];
          bias = [| 13; 0 |];
          act = Nn.Qnet.Identity;
        };
      |]
  in
  (* The written snapshot must be machine-usable, so re-read it and check
     the pieces the profile promises: the schema tag, solver counters, a
     per-backend latency histogram and at least one recorded span. *)
  let validate_snapshot path =
    match Util.Json.parse_file path with
    | Error e -> Error (Printf.sprintf "snapshot does not re-parse: %s" e)
    | Ok json ->
        if Util.Json.member "schema" json <> Some (Util.Json.String Obs.Report.schema)
        then Error (Printf.sprintf "missing or wrong schema (want %S)" Obs.Report.schema)
        else
          let metrics = Util.Json.member "metrics" json in
          let section name =
            match Option.bind metrics (Util.Json.member name) with
            | Some (Util.Json.Obj kvs) -> kvs
            | _ -> []
          in
          if not (List.mem_assoc "sat.conflicts" (section "counters")) then
            Error "no sat.conflicts counter"
          else if
            not
              (List.exists
                 (fun (k, _) ->
                   String.starts_with ~prefix:"backend." k
                   && String.ends_with ~suffix:".query_s" k)
                 (section "histograms"))
          then Error "no backend.*.query_s latency histogram"
          else
            match Util.Json.member "spans" json with
            | Some (Util.Json.List (_ :: _)) -> Ok ()
            | _ -> Error "no recorded spans"
  in
  let run dataset_seed init_seed max_delta no_bias_noise backend jobs fast output =
    Util.Parallel.set_default_jobs jobs;
    Obs.Report.enable ();
    let p =
      if fast then
        Fannet.Pipeline.run
          ~config:{ Fannet.Pipeline.fast_config with dataset_seed; init_seed }
          ()
      else pipeline dataset_seed init_seed
    in
    let inputs = Fannet.Pipeline.analysis_inputs p in
    let tol =
      Fannet.Tolerance.network_tolerance backend p.qnet
        ~bias_noise:(bias_flag no_bias_noise) ~max_delta ~inputs
    in
    let qnet = toy_qnet () in
    let sinput = [| 112; 87 |] in
    let slabel = Nn.Qnet.predict qnet sinput in
    let _ : int option =
      Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Smt qnet
        ~bias_noise:false ~max_delta:40 ~input:sinput ~label:slabel
    in
    Printf.printf "workload: pipeline + tolerance (backend %s, %d inputs, tolerance +-%d%%) + incremental SMT probe\n\n"
      (Fannet.Backend.to_string backend) (Array.length inputs) tol;
    print_string (Obs.Report.text ());
    match output with
    | None -> ()
    | Some path -> (
        Obs.Report.write path;
        match validate_snapshot path with
        | Ok () -> Printf.printf "metrics snapshot written to %s (validated)\n" path
        | Error e ->
            Printf.eprintf "metrics snapshot %s INVALID: %s\n" path e;
            exit 2)
  in
  let doc =
    "Run an instrumented workload (pipeline, noise-tolerance search, one \
     incremental SMT probe) and print the profile: metrics table plus span \
     tree. With $(b,-o) also write — and self-validate — the JSON snapshot."
  in
  Cmd.v (Cmd.info "profile" ~doc ~exits)
    Term.(
      const run $ dataset_seed $ init_seed $ max_delta $ no_bias_noise $ backend
      $ jobs $ fast $ output_file)

(* ---------- fannetd: serve + query ---------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "TCP address of the daemon, $(b,HOST:PORT) (port 0 picks a free one)." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let resolve_addr socket tcp =
  match (socket, tcp) with
  | Some _, Some _ -> invalid_arg "--socket and --tcp are mutually exclusive"
  | Some p, None -> Serve.Daemon.Unix_path p
  | None, Some hp -> (
      match String.rindex_opt hp ':' with
      | None -> invalid_arg "--tcp wants HOST:PORT"
      | Some i -> (
          let host = String.sub hp 0 i in
          let port = String.sub hp (i + 1) (String.length hp - i - 1) in
          match int_of_string_opt port with
          | Some port when port >= 0 -> Serve.Daemon.Tcp (host, port)
          | _ -> invalid_arg "--tcp wants HOST:PORT"))
  | None, None -> Serve.Daemon.Unix_path "fannetd.sock"

(* The profile command's toy network again: two inputs, solves in
   milliseconds — exactly what an in-process protocol exercise wants. *)
let serve_toy_qnet () =
  Nn.Qnet.create
    [|
      {
        Nn.Qnet.weights = [| [| 31; -22 |]; [| -13; 41 |]; [| 17; 9 |]; [| -25; 14 |] |];
        bias = [| 55; -31; 12; -7 |];
        act = Nn.Qnet.Relu;
      };
      {
        Nn.Qnet.weights = [| [| 21; -33; 11; -9 |]; [| -20; 31; -12; 10 |] |];
        bias = [| 13; 0 |];
        act = Nn.Qnet.Identity;
      };
    |]

(* The scripted end-to-end session behind `make serve-smoke`: a daemon on
   an ephemeral TCP port, one well-behaved client session covering every
   request form, one malformed-JSON frame (connection survives), one
   garbage-framing connection (typed error, closed), one raw HTTP scrape,
   and a clean shutdown. Any mismatch exits 2. *)
let serve_self_test () =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "serve self-test FAILED: %s\n%!" m;
        exit 2)
      fmt
  in
  let expect name ok = if not ok then fail "%s" name in
  let qnet = serve_toy_qnet () in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict qnet input in
  let spec = Fannet.Noise.symmetric ~delta:10 ~bias_noise:false in
  let d =
    Serve.Daemon.run
      {
        Serve.Daemon.addr = Serve.Daemon.Tcp ("127.0.0.1", 0);
        workers = 2;
        cap = 4;
        cache_cap_bytes = 1 lsl 26;
        timeout_ceiling_s = Some 60.;
        procs = 0;
        store_path = None;
      }
  in
  let addr = Serve.Daemon.address d in
  let c = Serve.Client.connect addr in
  (match Serve.Client.ping c with Ok () -> () | Error e -> fail "ping: %s" e);
  let digest =
    match Serve.Client.load c qnet with Ok dg -> dg | Error e -> fail "load: %s" e
  in
  let q = Serve.Protocol.Exists_flip { backend = Fannet.Backend.Bnb; spec; input; label } in
  let answer_of name = function
    | Ok (Serve.Protocol.Answer { cached; answer }) -> (cached, answer)
    | Ok _ -> fail "%s: unexpected reply form" name
    | Error e -> fail "%s: %s" name e
  in
  let cached1, a1 = answer_of "query (cold)" (Serve.Client.query c ~digest q) in
  expect "first query must be a cache miss" (not cached1);
  let cached2, a2 = answer_of "query (hit)" (Serve.Client.query c ~digest q) in
  expect "second identical query must be a cache hit" cached2;
  expect "cache hit must be bit-identical to the cold answer"
    (String.equal
       (Util.Json.to_string (Serve.Protocol.answer_json a1))
       (Util.Json.to_string (Serve.Protocol.answer_json a2)));
  let direct = Fannet.Backend.exists_flip Fannet.Backend.Bnb qnet spec ~input ~label in
  expect "daemon verdict must equal the direct library call"
    (match a1 with
    | Serve.Protocol.Verdict v -> Fannet.Backend.verdict_equal v direct
    | _ -> false);
  (* Certified query: the certificate crosses the wire and must still
     pass the independent checker against the local model. *)
  let _, ca =
    answer_of "certify"
      (Serve.Client.query c ~digest (Serve.Protocol.Certify { spec; input; label }))
  in
  (match ca with
  | Serve.Protocol.Certified { verdict; cert } -> (
      match
        Fannet.Backend.check_certified qnet spec ~input ~label
          { Fannet.Backend.cv_verdict = verdict; cv_cert = cert }
      with
      | Ok () -> ()
      | Error e -> fail "certificate failed the independent checker: %s" e)
  | _ -> fail "certify: wrong answer form");
  (* Malformed JSON in an intact frame: typed rid-0 error, connection
     survives. *)
  Serve.Client.send_raw c (Serve.Wire.encode "this is not json");
  (match Serve.Client.read_reply c with
  | Ok { Serve.Protocol.rid = 0; reply = Serve.Protocol.Protocol_error _ } -> ()
  | _ -> fail "bad JSON should produce a rid-0 Protocol_error");
  (match Serve.Client.ping c with
  | Ok () -> ()
  | Error e -> fail "connection should survive bad JSON: %s" e);
  (* Garbage framing on a fresh connection: typed error, then closed. *)
  let c2 = Serve.Client.connect addr in
  Serve.Client.send_raw c2 "JUNKJUNKJUNKJUNK";
  (match Serve.Client.read_reply c2 with
  | Ok { Serve.Protocol.reply = Serve.Protocol.Protocol_error _; _ } -> ()
  | Ok _ -> fail "garbage framing should produce a Protocol_error"
  | Error e -> fail "garbage framing: %s" e);
  Serve.Client.close c2;
  (* Raw HTTP scrape on the same port. *)
  (let host, port =
     match addr with Serve.Daemon.Tcp (h, p) -> (h, p) | _ -> fail "expected TCP"
   in
   let fd = Unix.socket PF_INET SOCK_STREAM 0 in
   Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
   let msg = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
   ignore (Unix.write fd msg 0 (Bytes.length msg));
   let buf = Buffer.create 1024 in
   let chunk = Bytes.create 4096 in
   let rec drain () =
     match Unix.read fd chunk 0 (Bytes.length chunk) with
     | 0 -> ()
     | n ->
         Buffer.add_subbytes buf chunk 0 n;
         drain ()
   in
   drain ();
   Unix.close fd;
   let body = Buffer.contents buf in
   expect "scrape must answer HTTP 200" (String.starts_with ~prefix:"HTTP/1.0 200" body);
   let contains s sub =
     let n = String.length s and m = String.length sub in
     let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
     go 0
   in
   expect "scrape must carry the serve counters" (contains body "serve.submitted"));
  (* Framed metrics request + the accounting identity. *)
  (match Serve.Client.rpc c Serve.Protocol.Metrics with
  | Ok (Serve.Protocol.Metrics_reply { stats; _ }) ->
      expect "served + rejected + failed = submitted"
        (stats.Serve.Protocol.served + stats.rejected + stats.failed = stats.submitted);
      expect "all queries must have been served" (stats.failed = 0 && stats.rejected = 0)
  | Ok _ -> fail "metrics: wrong reply form"
  | Error e -> fail "metrics: %s" e);
  (match Serve.Client.shutdown c with Ok () -> () | Error e -> fail "shutdown: %s" e);
  Serve.Daemon.wait d;
  Serve.Client.close c;
  let s = Serve.Daemon.stats d in
  Printf.printf "serve self-test OK: %d submitted, %d served, %d cache hits\n" s.submitted
    s.served s.cache_hits

(* The chaos soak behind `make chaos-smoke`: a supervised daemon (two
   worker processes) with a verdict journal and an armed kill schedule —
   every 7th query receipt _exits a worker mid-flight — under 16
   concurrent clients. Every client must get a typed reply, the
   accounting identity must hold and workers must actually have died and
   been restarted. Then the daemon restarts on the same journal and
   every answer recorded before the crash must come back as a cache hit,
   byte-identical, certificates re-validated by the independent lib/cert
   checker. Exit 2 on any mismatch. *)
let serve_chaos_test () =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "serve chaos-test FAILED: %s\n%!" m;
        exit 2)
      fmt
  in
  let expect name ok = if not ok then fail "%s" name in
  let store_path = Filename.temp_file "fannet_chaos" ".store" in
  Sys.remove store_path;
  let qnet = serve_toy_qnet () in
  let cfg =
    {
      Serve.Daemon.addr = Serve.Daemon.Tcp ("127.0.0.1", 0);
      workers = 2;
      cap = 32;
      cache_cap_bytes = 1 lsl 26;
      timeout_ceiling_s = Some 60.;
      procs = 2;
      store_path = Some store_path;
    }
  in
  Resil.Faultpoint.clear ();
  (* armed before the fork, so every worker process inherits the
     schedule (each with its own hit counter) *)
  Resil.Faultpoint.arm "serve.worker.kill%7";
  let d = Serve.Daemon.run cfg in
  let addr = Serve.Daemon.address d in
  let digest =
    let c = Serve.Client.connect addr in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    match Serve.Client.load c qnet with
    | Ok dg -> dg
    | Error e -> fail "load: %s" e
  in
  (* Distinct queries per client (input offset + delta sweep), so the
     cache cannot absorb the load before the kill schedule fires.  Deltas
     stay small: this is a smoke under `make check`, and the expensive
     certified-count round-trip is already exercised by the test
     battery. *)
  let queries_for i =
    let input = [| 112 + i; 87 - i |] in
    let label = Nn.Qnet.predict qnet input in
    let spec delta = Fannet.Noise.symmetric ~delta ~bias_noise:false in
    [
      Serve.Protocol.Exists_flip
        { backend = Fannet.Backend.Bnb; spec = spec (1 + (i mod 2)); input; label };
      Serve.Protocol.Tolerance
        { backend = Fannet.Backend.Bnb; bias_noise = false; max_delta = 3 + (i mod 2); input; label };
      Serve.Protocol.Sensitivity { spec = spec 1; input; label };
      Serve.Protocol.Certify { spec = spec (1 + (i mod 2)); input; label };
    ]
  in
  let clients = 16 in
  let recorded = ref [] (* (query, answer bytes, answer) — decided only *)
  and untyped = ref [] (* connection-level failures: must stay empty *)
  and lock = Mutex.create () in
  let client_thread i () =
    let c = Serve.Client.connect addr in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    List.iter
      (fun q ->
        match Serve.Client.query ~retries:4 c ~digest q with
        | Ok (Serve.Protocol.Answer { answer; _ })
          when Serve.Protocol.answer_decided answer ->
            let bytes = Util.Json.to_string (Serve.Protocol.answer_json answer) in
            Mutex.lock lock;
            recorded := (q, bytes, answer) :: !recorded;
            Mutex.unlock lock
        | Ok _ -> () (* typed: overloaded / server-error after retries / undecided *)
        | Error e ->
            Mutex.lock lock;
            untyped := Printf.sprintf "client %d: %s" i e :: !untyped;
            Mutex.unlock lock)
      (queries_for i)
  in
  let threads = List.init clients (fun i -> Thread.create (client_thread i) ()) in
  List.iter Thread.join threads;
  (match !untyped with
  | [] -> ()
  | e :: _ -> fail "untyped client failure under chaos: %s" e);
  let s = Serve.Daemon.stats d in
  expect "accounting identity under chaos"
    (s.Serve.Protocol.served + s.rejected + s.failed = s.submitted);
  let restarts, deaths =
    match Serve.Daemon.supervisor_stats d with
    | Some rd -> rd
    | None -> fail "supervised daemon reports no supervisor stats"
  in
  expect "the kill schedule killed at least one worker" (deaths >= 1);
  expect "at least one worker was restarted" (restarts >= 1);
  expect "some decided answers were recorded" (!recorded <> []);
  (* Certificate-bearing replies are orders of magnitude larger than bare
     verdicts (they embed the whole proof), so their multi-chunk writes
     rarely win the race against a receipt-triggered kill: the worker's
     receive loop keeps counting queries while a domain streams the
     certificate and _exits mid-frame.  Record one certified answer once
     the soak traffic stops instead.  Clearing here steers only workers
     spawned from now on (the parent replays its fault table at spawn);
     live workers keep their schedule, so the retries ride through at
     most one residual kill — a worker only dies every seventh receipt,
     and with the soak finished these retries are the only receipts
     left. *)
  Resil.Faultpoint.clear ();
  (let input = [| 99; 99 |] in
   let label = Nn.Qnet.predict qnet input in
   let q =
     Serve.Protocol.Certify
       { spec = Fannet.Noise.symmetric ~delta:1 ~bias_noise:false; input; label }
   in
   let c = Serve.Client.connect addr in
   Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
   match Serve.Client.query ~retries:8 c ~digest q with
   | Ok (Serve.Protocol.Answer { answer; _ })
     when Serve.Protocol.answer_decided answer -> (
       match answer with
       | Serve.Protocol.Certified _ ->
           recorded :=
             (q, Util.Json.to_string (Serve.Protocol.answer_json answer), answer)
             :: !recorded
       | _ -> fail "post-chaos certify decided without a certificate")
   | Ok _ -> fail "post-chaos certify did not decide"
   | Error e -> fail "post-chaos certify: %s" e);
  Serve.Daemon.stop d;
  (* Restart on the same journal: every recorded answer must come back
     as a store-recovered cache hit, bit-identical. *)
  let d2 = Serve.Daemon.run { cfg with addr = Serve.Daemon.Tcp ("127.0.0.1", 0) } in
  (match Serve.Daemon.store_stats d2 with
  | Some st -> expect "journal recovered records" (st.Serve.Store.recovered > 0)
  | None -> fail "restarted daemon reports no store stats");
  let c = Serve.Client.connect (Serve.Daemon.address d2) in
  (match Serve.Client.load c qnet with
  | Ok dg -> expect "canonical digest stable across restart" (String.equal dg digest)
  | Error e -> fail "reload: %s" e);
  List.iter
    (fun (q, bytes, _) ->
      match Serve.Client.query c ~digest q with
      | Ok (Serve.Protocol.Answer { cached; answer }) ->
          expect "recovered answer is a cache hit" cached;
          expect "recovered answer byte-identical to its pre-crash bytes"
            (String.equal bytes
               (Util.Json.to_string (Serve.Protocol.answer_json answer)));
          (match answer with
          | Serve.Protocol.Certified { verdict; cert } -> (
              let input, label, spec =
                match q with
                | Serve.Protocol.Certify { input; label; spec } -> (input, label, spec)
                | _ -> fail "certified answer for a non-certify query"
              in
              match
                Fannet.Backend.check_certified qnet spec ~input ~label
                  { Fannet.Backend.cv_verdict = verdict; cv_cert = cert }
              with
              | Ok () -> ()
              | Error e -> fail "recovered certificate INVALID: %s" e)
          | _ -> ())
      | Ok _ -> fail "recovered query got a non-answer reply"
      | Error e -> fail "recovered query: %s" e)
    !recorded;
  Serve.Client.close c;
  Serve.Daemon.stop d2;
  (try Sys.remove store_path with Sys_error _ -> ());
  Printf.printf
    "serve chaos-test OK: %d clients, %d submitted, %d served, %d worker deaths, \
     %d restarts, %d answers recovered bit-identically\n"
    clients s.Serve.Protocol.submitted s.served deaths restarts
    (List.length !recorded)

let serve_cmd =
  let workers_arg =
    let doc = "Resident worker domains (default: the machine's job count)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let cap_arg =
    let doc =
      "Admission cap: queries queued-or-executing at once before the daemon \
       answers $(b,overloaded) (default 4x workers)."
    in
    Arg.(value & opt (some int) None & info [ "cap" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc =
      "Verdict-cache budget in bytes (LRU, entries weighted by their \
       encoded answer size — certificates dominate); 0 disables caching."
    in
    Arg.(value & opt int (16 * 1024 * 1024) & info [ "cache" ] ~docv:"BYTES" ~doc)
  in
  let ceiling_arg =
    let doc = "Clamp client-requested budgets to at most $(docv) seconds." in
    Arg.(value & opt (some float) None & info [ "timeout-ceiling" ] ~docv:"SEC" ~doc)
  in
  let procs_arg =
    let doc =
      "Supervised worker processes (crash-only mode): fork the compute pool \
       into $(docv) processes sharded by network digest, restart crashed \
       workers with exponential backoff behind a restart-storm circuit \
       breaker. 0 (default) keeps the legacy in-process pool."
    in
    Arg.(value & opt int 0 & info [ "procs" ] ~docv:"N" ~doc)
  in
  let store_arg =
    let doc =
      "Persistent verdict journal (fannet-store/1) at $(docv): decided \
       answers are written through and recovered — bit-identical, \
       certificates re-validated — when the daemon restarts."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)
  in
  let self_test =
    let doc =
      "Run the scripted end-to-end protocol session against an in-process \
       daemon on an ephemeral port and exit (0 = all checks passed) — what \
       $(b,make serve-smoke) runs."
    in
    Arg.(value & flag & info [ "self-test" ] ~doc)
  in
  let chaos_test =
    let doc =
      "Run the chaos soak: a supervised daemon with a verdict journal under \
       an armed worker-kill schedule and 16 concurrent clients, then a \
       restart that must recover every cached answer bit-identically — what \
       $(b,make chaos-smoke) runs. Exit 0 = all checks passed."
    in
    Arg.(value & flag & info [ "chaos-test" ] ~doc)
  in
  let run socket tcp workers cap cache ceiling procs store self_test chaos_test =
    with_clean_errors @@ fun () ->
    if self_test then serve_self_test ()
    else if chaos_test then serve_chaos_test ()
    else begin
      Obs.Report.enable ();
      let workers = Option.value workers ~default:(Util.Parallel.default_jobs ()) in
      let cfg =
        {
          Serve.Daemon.addr = resolve_addr socket tcp;
          workers;
          cap = Option.value cap ~default:(4 * workers);
          cache_cap_bytes = cache;
          timeout_ceiling_s = ceiling;
          procs;
          store_path = store;
        }
      in
      let d = Serve.Daemon.run cfg in
      (match Serve.Daemon.address d with
      | Serve.Daemon.Unix_path p -> Printf.printf "fannetd listening on unix:%s\n%!" p
      | Serve.Daemon.Tcp (h, p) -> Printf.printf "fannetd listening on %s:%d\n%!" h p);
      let on_signal _ = ignore (Thread.create (fun () -> Serve.Daemon.stop d) ()) in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Serve.Daemon.wait d;
      let s = Serve.Daemon.stats d in
      Printf.printf "fannetd stopped: %d submitted, %d served, %d rejected, %d failed\n"
        s.Serve.Protocol.submitted s.served s.rejected s.failed
    end
  in
  let doc =
    "Run $(b,fannetd), the verification daemon: fannet-wire/1 over a Unix or \
     TCP socket, an LRU verdict cache (optionally journaled to disk with \
     $(b,--store)), warm per-worker solver sessions (optionally in supervised \
     worker processes with $(b,--procs)), typed overload rejections and an \
     HTTP-style $(b,GET /metrics) scrape on the same port. Stop with \
     SIGINT/SIGTERM or a client $(b,shutdown) request."
  in
  Cmd.v (Cmd.info "serve" ~doc ~exits)
    Term.(
      const run $ socket_arg $ tcp_arg $ workers_arg $ cap_arg $ cache_arg
      $ ceiling_arg $ procs_arg $ store_arg $ self_test $ chaos_test)

let query_cmd =
  let kind_arg =
    let doc =
      "What to ask: $(b,ping), $(b,exists-flip), $(b,tolerance), \
       $(b,sensitivity), $(b,certify), $(b,count), $(b,metrics) or \
       $(b,shutdown)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("ping", `Ping);
               ("exists-flip", `Exists);
               ("tolerance", `Tolerance);
               ("sensitivity", `Sensitivity);
               ("certify", `Certify);
               ("count", `Count);
               ("metrics", `Metrics);
               ("shutdown", `Shutdown);
             ])
          `Ping
      & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let model_arg =
    let doc = "Quantized model file ($(b,fannet train --save-model)) to upload." in
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE" ~doc)
  in
  let input_vec_arg =
    let doc = "Input vector, comma-separated integers." in
    Arg.(value & opt (list int) [] & info [ "input" ] ~docv:"I1,I2,..." ~doc)
  in
  let label_arg =
    let doc = "True label of the input (default: the model's own prediction)." in
    Arg.(value & opt (some int) None & info [ "label" ] ~docv:"L" ~doc)
  in
  let retries_arg =
    let doc =
      "Resend a query up to $(docv) extra times (jittered exponential \
       backoff) while the daemon answers $(b,overloaded) or a transient \
       $(b,server-error) — e.g. a supervised worker restarting."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let run socket tcp kind model input_vec label_opt delta max_delta no_bias_noise
      backend timeout retries =
    with_clean_errors @@ fun () ->
    let c = Serve.Client.connect (resolve_addr socket tcp) in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    let orfail = function Ok v -> v | Error e -> failwith e in
    match kind with
    | `Ping ->
        orfail (Serve.Client.ping c);
        print_endline "pong"
    | `Shutdown ->
        orfail (Serve.Client.shutdown c);
        print_endline "daemon acknowledged shutdown"
    | `Metrics -> (
        match orfail (Serve.Client.rpc c Serve.Protocol.Metrics) with
        | Serve.Protocol.Metrics_reply { stats; obs } ->
            Printf.printf
              "submitted %d  served %d  rejected %d  failed %d\n\
               cache: %d hits, %d misses, %d entries; in flight %d; networks %d\n"
              stats.Serve.Protocol.submitted stats.served stats.rejected stats.failed
              stats.cache_hits stats.cache_misses stats.cache_len stats.in_flight
              stats.networks;
            print_endline (Util.Json.to_string obs)
        | _ -> failwith "metrics: wrong reply form")
    | (`Exists | `Tolerance | `Sensitivity | `Certify | `Count) as kind ->
        let model =
          match model with
          | None -> failwith "--model FILE is required for analysis queries"
          | Some f -> ( match Nn.Qnet.load f with Ok m -> m | Error e -> failwith e)
        in
        if input_vec = [] then failwith "--input I1,I2,... is required";
        let input = Array.of_list input_vec in
        let label =
          match label_opt with Some l -> l | None -> Nn.Qnet.predict model input
        in
        let bias_noise = bias_flag no_bias_noise in
        let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
        let digest = orfail (Serve.Client.load c model) in
        let query =
          match kind with
          | `Exists -> Serve.Protocol.Exists_flip { backend; spec; input; label }
          | `Tolerance ->
              Serve.Protocol.Tolerance { backend; bias_noise; max_delta; input; label }
          | `Sensitivity -> Serve.Protocol.Sensitivity { spec; input; label }
          | `Certify -> Serve.Protocol.Certify { spec; input; label }
          | `Count ->
              Serve.Protocol.Count
                { spec; input; label; mode = Serve.Protocol.Count_exact { certify = true } }
        in
        let budget = { Serve.Protocol.timeout_s = timeout; conflicts = None } in
        (match orfail (Serve.Client.query ~budget ~retries c ~digest query) with
        | Serve.Protocol.Overloaded { in_flight; cap } ->
            Printf.eprintf "daemon overloaded (%d in flight, cap %d) — retry later\n%!"
              in_flight cap;
            exit 2
        | Serve.Protocol.Answer { cached; answer } -> (
            let tag = if cached then " (cached)" else "" in
            match answer with
            | Serve.Protocol.Verdict v -> (
                Printf.printf "%s%s\n" (Fannet.Backend.verdict_to_string v) tag;
                match v with
                | Fannet.Backend.Flip _ -> exit 1
                | Fannet.Backend.Unknown r -> exit_exhausted r
                | Fannet.Backend.Robust -> ())
            | Serve.Protocol.Min_flip (Ok (Some d)) ->
                Printf.printf "smallest flipping range: +-%d%%%s\n" d tag
            | Serve.Protocol.Min_flip (Ok None) ->
                Printf.printf "robust up to +-%d%%%s\n" max_delta tag
            | Serve.Protocol.Min_flip (Error r) -> exit_exhausted r
            | Serve.Protocol.Sidedness (Ok sides) ->
                Array.iter
                  (fun s ->
                    Printf.printf "node %d: positive_flip=%b negative_flip=%b\n"
                      s.Fannet.Sensitivity.fs_node s.positive_flip s.negative_flip)
                  sides;
                print_string tag
            | Serve.Protocol.Sidedness (Error r) -> exit_exhausted r
            | Serve.Protocol.Certified { verdict; cert } -> (
                (* The daemon's certificate must convince the local
                   independent checker, not just the daemon. *)
                match
                  Fannet.Backend.check_certified model spec ~input ~label
                    { Fannet.Backend.cv_verdict = verdict; cv_cert = cert }
                with
                | Error e ->
                    Printf.eprintf "certificate INVALID: %s\n%!" e;
                    exit 2
                | Ok () -> (
                    Printf.printf "%s%s: certificate checked\n"
                      (Fannet.Backend.verdict_to_string verdict)
                      tag;
                    match verdict with
                    | Fannet.Backend.Flip _ -> exit 1
                    | Fannet.Backend.Unknown r -> exit_exhausted r
                    | Fannet.Backend.Robust -> ()))
            | Serve.Protocol.Counted (Error r) -> exit_exhausted r
            | Serve.Protocol.Counted (Ok { flips; total; count_cert }) ->
                (match count_cert with
                | None -> ()
                | Some cert -> (
                    (* Like certify: the daemon's certificate must convince
                       the local independent checker. *)
                    match
                      Fannet.Robustness.check_certificate model spec ~input ~label cert
                    with
                    | Error e ->
                        Printf.eprintf "count certificate INVALID: %s\n%!" e;
                        exit 2
                    | Ok () -> Printf.printf "count certificate checked\n"));
                Printf.printf "flips %s of %s vectors (p = %.6g)%s\n"
                  (Util.Bigcount.to_string flips)
                  (Util.Bigcount.to_string total)
                  (Util.Bigcount.ratio flips total)
                  tag;
                if not (Util.Bigcount.is_zero flips) then exit 1)
        | Serve.Protocol.Protocol_error e | Serve.Protocol.Server_error e -> failwith e
        | _ -> failwith "unexpected reply form")
  in
  let doc =
    "One-shot client for a running $(b,fannet serve) daemon: upload a model, \
     ask one query (exists-flip / tolerance / sensitivity / certify — \
     certificates are re-checked locally), or ping / scrape / stop it."
  in
  Cmd.v (Cmd.info "query" ~doc ~exits)
    Term.(
      const run $ socket_arg $ tcp_arg $ kind_arg $ model_arg $ input_vec_arg
      $ label_arg $ delta $ max_delta $ no_bias_noise $ backend $ timeout_arg
      $ retries_arg)

(* ---------- count: quantitative robustness via model counting ---------- *)

(* The scripted self-test behind `make count-smoke`: exact counts against
   brute-force enumeration, certificate re-validation by the independent
   checker, jobs-determinism down to the certificate bytes, the (ε, δ)
   envelope over 20 seeds, daemon cold-vs-cached byte-identity for a
   certified count, and checkpoint exhaust-and-resume. Any mismatch
   exits 2. *)
let count_self_test () =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "count self-test FAILED: %s\n%!" m;
        exit 2)
      fmt
  in
  let expect name ok = if not ok then fail "%s" name in
  let qnet = serve_toy_qnet () in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict qnet input in
  (* Exact ≡ brute force on two noise ranges, certified, certificates
     re-checked. *)
  List.iter
    (fun delta ->
      let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
      let brute = ref 0 in
      Fannet.Noise.iter_vectors spec ~n_inputs:2 (fun v ->
          if Fannet.Noise.predict qnet spec ~input v <> label then incr brute);
      let r =
        Fannet.Robustness.probability
          ~mode:(Fannet.Robustness.Exact_mode { certify = true })
          qnet spec ~input ~label
      in
      expect
        (Printf.sprintf "delta %d: exact count = brute force" delta)
        (Util.Bigcount.equal r.Fannet.Robustness.flips
           (Util.Bigcount.of_int !brute));
      expect
        (Printf.sprintf "delta %d: fully decided" delta)
        (r.Fannet.Robustness.status = Ok ());
      match r.Fannet.Robustness.certificate with
      | None -> fail "delta %d: certificate missing" delta
      | Some cert -> (
          match Fannet.Robustness.check_certificate qnet spec ~input ~label cert with
          | Ok () -> ()
          | Error e -> fail "delta %d: certificate rejected: %s" delta e))
    [ 2; 3 ];
  (* jobs=1 and jobs=4 agree to the byte, certificate included. *)
  let spec = Fannet.Noise.symmetric ~delta:3 ~bias_noise:false in
  let run_jobs jobs =
    Fannet.Robustness.probability
      ~mode:(Fannet.Robustness.Exact_mode { certify = true })
      ~jobs qnet spec ~input ~label
  in
  let r1 = run_jobs 1 and r4 = run_jobs 4 in
  expect "jobs 1 vs 4: same count"
    (Util.Bigcount.equal r1.Fannet.Robustness.flips r4.Fannet.Robustness.flips);
  let cert_bytes r =
    match r.Fannet.Robustness.certificate with
    | Some c -> Util.Json.to_string (Count.Certificate.to_json c)
    | None -> fail "jobs run lost its certificate"
  in
  expect "jobs 1 vs 4: certificates byte-identical"
    (String.equal (cert_bytes r1) (cert_bytes r4));
  (* (ε, δ) envelope: 20 seeds on a space big enough to exercise the XOR
     path (528 models > pivot(0.8) = 50). *)
  let x = Smtlite.Term.var ~name:"x" ~lo:0 ~hi:31 in
  let y = Smtlite.Term.var ~name:"y" ~lo:0 ~hi:31 in
  let f = Smtlite.Term.le (Smtlite.Term.of_var x) (Smtlite.Term.of_var y) in
  let models = float_of_int (32 * 33 / 2) in
  let epsilon = 0.8 and adelta = 0.2 in
  let misses = ref 0 in
  for seed = 0 to 19 do
    let a = Count.Approx.count ~epsilon ~delta:adelta ~seed f ~project:[ x; y ] in
    expect "approx round decided" (a.Count.Approx.status = Count.Exact.Decided);
    let est = Util.Bigcount.ratio a.Count.Approx.estimate Util.Bigcount.one in
    if not (est >= models /. (1. +. epsilon) && est <= models *. (1. +. epsilon))
    then incr misses
  done;
  (* δ = 0.2 per seed: 20 seeds with ≤ 9 misses has overwhelming
     probability; more means the guarantee is broken. *)
  expect
    (Printf.sprintf "approx (0.8, 0.2) envelope: %d/20 misses" !misses)
    (!misses <= 9);
  let a1 = Count.Approx.count ~epsilon ~delta:adelta ~seed:5 f ~project:[ x; y ] in
  let a2 = Count.Approx.count ~epsilon ~delta:adelta ~seed:5 f ~project:[ x; y ] in
  expect "approx deterministic per seed"
    (Util.Bigcount.equal a1.Count.Approx.estimate a2.Count.Approx.estimate);
  (* Daemon: a certified count crosses the wire, is cached, and the
     cached answer is byte-identical — certificate bytes included. *)
  let d =
    Serve.Daemon.run
      {
        Serve.Daemon.addr = Serve.Daemon.Tcp ("127.0.0.1", 0);
        workers = 2;
        cap = 4;
        cache_cap_bytes = 1 lsl 26;
        timeout_ceiling_s = Some 60.;
        procs = 0;
        store_path = None;
      }
  in
  let c = Serve.Client.connect (Serve.Daemon.address d) in
  let digest =
    match Serve.Client.load c qnet with Ok dg -> dg | Error e -> fail "load: %s" e
  in
  let q =
    Serve.Protocol.Count
      { spec; input; label; mode = Serve.Protocol.Count_exact { certify = true } }
  in
  let once name =
    match Serve.Client.query c ~digest q with
    | Ok (Serve.Protocol.Answer { cached; answer }) -> (cached, answer)
    | Ok _ -> fail "%s: unexpected reply form" name
    | Error e -> fail "%s: %s" name e
  in
  let cached1, cold = once "count (cold)" in
  let cached2, hit = once "count (hit)" in
  expect "first daemon count is a cache miss" (not cached1);
  expect "second daemon count is a cache hit" cached2;
  expect "cached count byte-identical to cold (certificate included)"
    (String.equal
       (Util.Json.to_string (Serve.Protocol.answer_json cold))
       (Util.Json.to_string (Serve.Protocol.answer_json hit)));
  (match cold with
  | Serve.Protocol.Counted (Ok { flips; count_cert = Some cert; _ }) ->
      expect "daemon count = local count"
        (Util.Bigcount.equal flips r1.Fannet.Robustness.flips);
      (match Fannet.Robustness.check_certificate qnet spec ~input ~label cert with
      | Ok () -> ()
      | Error e -> fail "daemon certificate rejected locally: %s" e)
  | _ -> fail "count: wrong answer form");
  (match Serve.Client.shutdown c with Ok () -> () | Error e -> fail "shutdown: %s" e);
  Serve.Daemon.wait d;
  Serve.Client.close c;
  (* Checkpoint: exhaust under a zero budget, resume to completion, same
     count as a clean run. *)
  let cx = Smtlite.Term.var ~name:"cx" ~lo:0 ~hi:127 in
  let cy = Smtlite.Term.var ~name:"cy" ~lo:0 ~hi:127 in
  let g = Smtlite.Term.le (Smtlite.Term.of_var cx) (Smtlite.Term.of_var cy) in
  let clean = Count.Exact.count g ~project:[ cx; cy ] in
  let ckpt = Filename.temp_file "fannet_count_selftest" ".ckpt" in
  (* temp_file creates an empty file; an empty checkpoint is (rightly)
     rejected as torn, so start from its absence. *)
  Sys.remove ckpt;
  let zero = Resil.Budget.create ~timeout_s:0.0 () in
  let first =
    Count.Exact.count ~budget:zero ~checkpoint:ckpt ~ckpt_key:"selftest"
      ~ckpt_every:1 g ~project:[ cx; cy ]
  in
  expect "zero budget exhausts"
    (match first.Count.Exact.status with
    | Count.Exact.Exhausted _ -> true
    | Count.Exact.Decided -> false);
  let rec resume attempts =
    if attempts > 60 then fail "checkpoint resume did not converge";
    let b = Resil.Budget.create ~timeout_s:(0.0005 *. float_of_int attempts) () in
    let r =
      Count.Exact.count ~budget:b ~checkpoint:ckpt ~ckpt_key:"selftest"
        ~ckpt_every:1 g ~project:[ cx; cy ]
    in
    match r.Count.Exact.status with
    | Count.Exact.Decided -> r
    | Count.Exact.Exhausted _ -> resume (attempts + 1)
  in
  let resumed = resume 1 in
  (try Sys.remove ckpt with Sys_error _ -> ());
  expect "resumed count = clean count"
    (Util.Bigcount.equal resumed.Count.Exact.count clean.Count.Exact.count);
  Printf.printf
    "count self-test OK: exact = brute force, certificates check, jobs and \
     cache byte-identical, approx envelope %d/20 misses, checkpoint resume \
     intact\n"
    !misses

let count_cmd =
  let approx_arg =
    let doc =
      "Use the (ε, δ)-approximate counter (random XOR hashing) instead of \
       exact #SAT."
    in
    Arg.(value & flag & info [ "approx" ] ~doc)
  in
  let exact_arg =
    let doc = "Use the exact cube-decomposition counter (the default)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let epsilon_arg =
    let doc =
      "Approximation tolerance: the estimate is within a (1+$(docv)) factor \
       of the true count with probability 1-δ."
    in
    Arg.(value & opt float 0.8 & info [ "epsilon" ] ~docv:"E" ~doc)
  in
  let approx_delta_arg =
    let doc =
      "Approximation failure probability δ (not the noise bound — that is \
       $(b,--delta))."
    in
    Arg.(value & opt float 0.2 & info [ "approx-delta" ] ~docv:"D" ~doc)
  in
  let seed_arg =
    let doc =
      "Seed of the XOR hash family; estimates are deterministic per seed."
    in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let certify_arg =
    let doc =
      "Attach a $(b,fannet-count-cert/1) certificate to the exact count and \
       re-check it with the independent validator before reporting."
    in
    Arg.(value & flag & info [ "certify" ] ~doc)
  in
  let cert_out_arg =
    let doc = "Write the count certificate JSON to $(docv) (implies --certify)." in
    Arg.(value & opt (some string) None & info [ "cert-out" ] ~docv:"FILE" ~doc)
  in
  let self_test =
    let doc =
      "Run the scripted counting self-test (exact vs brute force, \
       certificate checks, jobs determinism, approx envelope, daemon \
       byte-identity, checkpoint resume) and exit — what \
       $(b,make count-smoke) runs."
    in
    Arg.(value & flag & info [ "self-test" ] ~doc)
  in
  let run metrics dataset_seed init_seed input_index delta no_bias_noise approx
      exact epsilon adelta seed certify cert_out jobs timeout max_mem retries
      checkpoint self_test =
    with_clean_errors @@ fun () ->
    if self_test then count_self_test ()
    else begin
      with_metrics metrics @@ fun () ->
      if approx && exact then failwith "--exact and --approx are mutually exclusive";
      if approx && (certify || cert_out <> None) then
        failwith "--certify/--cert-out need the exact counter";
      (* Validate the (ε, δ) parameters here, before any dataset/training
         work: Count.Approx rejects them too, but only deep inside the
         solve, after the pipeline has already run for seconds. The
         negated comparisons also reject NaN. *)
      if approx && not (epsilon > 0.) then
        failwith
          "--epsilon must be > 0: the estimate is within a (1+epsilon) factor \
           of the true count";
      if approx && not (adelta > 0. && adelta < 1.) then
        failwith
          "--approx-delta must be in (0, 1): it is the probability the \
           (1+epsilon) guarantee fails";
      Util.Parallel.set_default_jobs jobs;
      let p = pipeline dataset_seed init_seed in
      let inputs = Fannet.Pipeline.analysis_inputs p in
      if input_index < 0 || input_index >= Array.length inputs then
        failwith "input index out of range";
      let input, label = inputs.(input_index) in
      let bias_noise = bias_flag no_bias_noise in
      let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
      let mode =
        if approx then Fannet.Robustness.Approx_mode { epsilon; delta = adelta; seed }
        else
          Fannet.Robustness.Exact_mode { certify = certify || cert_out <> None }
      in
      (* The checkpoint key ties the file to this exact query, so resuming
         under different flags is rejected instead of silently merged. *)
      let ckpt_key =
        Printf.sprintf "count input=%d delta=%d bias=%b" input_index delta
          bias_noise
      in
      (* Retries resume from the checkpoint (when given), so each attempt
         keeps the previous attempt's decided cubes. *)
      let r =
        with_retries ~retries (budget_of timeout max_mem) (fun budget ->
            let r =
              Fannet.Robustness.probability ?budget ~mode ?jobs ?checkpoint
                ~ckpt_key p.qnet spec ~input ~label
            in
            match r.Fannet.Robustness.status with
            | Error reason -> Error reason
            | Ok () -> Ok r)
      in
      (match r.Fannet.Robustness.certificate with
      | None -> ()
      | Some cert -> (
          (match
             Fannet.Robustness.check_certificate p.qnet spec ~input ~label cert
           with
          | Ok () -> Printf.printf "certificate checked (fannet-count-cert/1)\n"
          | Error e ->
              Printf.eprintf "certificate INVALID: %s\n%!" e;
              exit 2);
          match cert_out with
          | None -> ()
          | Some file ->
              let oc = open_out file in
              output_string oc (Util.Json.to_string (Count.Certificate.to_json cert));
              output_char oc '\n';
              close_out oc;
              Printf.printf "certificate written to %s\n" file));
      Printf.printf "input %d (true L%d), noise +-%d%%: %s of %s vectors flip (p %s %.6g)\n"
        input_index label delta
        (Util.Bigcount.to_string r.Fannet.Robustness.flips)
        (Util.Bigcount.to_string r.Fannet.Robustness.total)
        (if r.Fannet.Robustness.approx then "~=" else "=")
        r.Fannet.Robustness.probability;
      if not (Util.Bigcount.is_zero r.Fannet.Robustness.flips) then exit 1
    end
  in
  let doc =
    "Quantitative robustness: count the noise vectors that flip one input's \
     classification — exactly (cube-decomposition #SAT, optionally with a \
     $(b,fannet-count-cert/1) certificate checked by the independent \
     validator) or (ε, δ)-approximately (XOR hashing). The flip count over \
     the noise-space cardinality is the misclassification probability under \
     uniform noise."
  in
  Cmd.v (Cmd.info "count" ~doc ~exits)
    Term.(
      const run $ metrics_file $ dataset_seed $ init_seed $ input_index $ delta
      $ no_bias_noise $ approx_arg $ exact_arg $ epsilon_arg $ approx_delta_arg
      $ seed_arg $ certify_arg $ cert_out_arg $ jobs $ timeout_arg $ max_mem_arg
      $ retries_arg $ checkpoint_arg $ self_test)

let () =
  let doc = "Formal analysis of noise tolerance, training bias and input sensitivity (FANNet, DATE 2020)" in
  let info = Cmd.info "fannet" ~version:"1.0.0" ~doc ~exits in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let group =
    Cmd.group ~default info
      [
        train_cmd;
        validate_cmd;
        translate_cmd;
        tolerance_cmd;
        sweep_cmd;
        extract_cmd;
        sensitivity_cmd;
        boundary_cmd;
        bias_cmd;
        minflip_cmd;
        fsm_cmd;
        fuzz_cmd;
        certify_cmd;
        count_cmd;
        profile_cmd;
        serve_cmd;
        query_cmd;
      ]
  in
  (* Exit-code contract (documented in [exits]): counterexample paths call
     [exit 1] themselves; everything Cmdliner reports as a usage or
     evaluation problem maps to 2. *)
  match Cmd.eval_value group with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term | `Exn) -> exit 2
