(* Benchmark harness: regenerates every evaluation artefact of the paper
   (DESIGN.md experiment index E1-E8), printing the measured rows next to
   the paper's reported values, then runs a Bechamel timing suite over the
   main code paths.

   Run with: dune exec bench/main.exe *)

let section title = Printf.printf "\n=== %s ===\n%!" title

(* Monotonic wall-clock timing: [Unix.gettimeofday] is subject to NTP
   steps, which can make a measured duration negative or wildly wrong
   mid-bench. [Obs.Clock] reads CLOCK_MONOTONIC where available. *)
let time_of f =
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  (r, Obs.Clock.elapsed_s ~since:t0)

let backend = Fannet.Backend.Bnb

(* The paper perturbs all network inputs, including the bias node (Fig. 3a
   has six input nodes: five genes plus the bias). *)
let bias_noise = true

(* ------------------------------------------------------------------ *)
(* E1 - Fig. 3(b,c): FSM state-space growth                            *)
(* ------------------------------------------------------------------ *)

let fig3_state_space (p : Fannet.Pipeline.t) =
  section "E1 fig3_state_space (paper Fig. 3b/c)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let table =
    Util.Table.create
      ~header:[ "model"; "states"; "transitions"; "paper states"; "paper transitions" ]
  in
  let no_noise =
    Smv.Translate.network_program p.qnet
      {
        Smv.Translate.delta_lo = 0;
        delta_hi = 0;
        bias_noise;
        samples = Array.to_list inputs;
      }
  in
  (match Smv.Fsm.explore no_noise with
  | Ok o ->
      Util.Table.add_row table
        [
          "no noise (all samples)";
          string_of_int o.stats.n_states;
          string_of_int o.stats.n_transitions;
          "3";
          "6";
        ]
  | Error e ->
      Printf.printf "no-noise exploration failed: %s\n" (Smv.Fsm.error_to_string e));
  let input, label = inputs.(0) in
  let with_range name lo hi paper_states paper_transitions =
    let prog =
      Smv.Translate.network_program p.qnet
        { Smv.Translate.delta_lo = lo; delta_hi = hi; bias_noise; samples = [ (input, label) ] }
    in
    match Smv.Fsm.explore ~state_limit:1_000_000 prog with
    | Ok o ->
        Util.Table.add_row table
          [
            name;
            string_of_int o.stats.n_states;
            string_of_int o.stats.n_transitions;
            paper_states;
            paper_transitions;
          ]
    | Error e ->
        Printf.printf "%s exploration failed: %s\n" name (Smv.Fsm.error_to_string e)
  in
  with_range "noise [0,1]% (1 sample)" 0 1 "65" "4160";
  with_range "noise [-1,+1]% (1 sample)" (-1) 1 "-" "-";
  Util.Table.print table;
  print_endline
    "(states grow as 1 + k and transitions as (1 + k) * k with k =\n\
    \ (range size)^(noise nodes); the paper reports the same blow-up)";
  (* The symbolic (SAT-based) model checker on the same program: the
     nuXmv-style path the paper actually runs. *)
  let prog =
    Smv.Translate.network_program p.qnet
      { Smv.Translate.delta_lo = 0; delta_hi = 1; bias_noise; samples = [ (input, label) ] }
  in
  let (result, elapsed) =
    time_of (fun () -> Smv.Bmc.check ~bound:2 prog)
  in
  (match result with
  | Ok [ (_, Smv.Bmc.Holds_up_to b) ] ->
      Printf.printf
        "symbolic BMC on the [0,1]%% model: P2 holds up to depth %d (%.1fs)\n" b elapsed
  | Ok [ (_, Smv.Bmc.Violated { step; _ }) ] ->
      Printf.printf "symbolic BMC: P2 violated at depth %d (%.1fs)\n" step elapsed
  | Ok _ | Error _ -> print_endline "symbolic BMC: unexpected result")

(* ------------------------------------------------------------------ *)
(* E2 - Fig. 4 left panel: misclassifications per noise range          *)
(* ------------------------------------------------------------------ *)

let fig4_tolerance_sweep (p : Fannet.Pipeline.t) =
  section "E2 fig4_tolerance_sweep (paper Fig. 4, noise tolerance)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let deltas = [ 5; 10; 15; 20; 25; 30; 35; 40 ] in
  let sweep = Fannet.Tolerance.sweep backend p.qnet ~bias_noise ~deltas ~inputs in
  let table =
    Util.Table.create ~header:[ "noise range"; "misclassified inputs"; "of" ]
  in
  List.iter
    (fun (pt : Fannet.Tolerance.sweep_point) ->
      Util.Table.add_row table
        [
          Printf.sprintf "[-%d,+%d]%%" pt.delta pt.delta;
          string_of_int pt.n_misclassified;
          string_of_int (Array.length inputs);
        ])
    sweep;
  Util.Table.print table;
  let tolerance =
    Fannet.Tolerance.network_tolerance backend p.qnet ~bias_noise ~max_delta:60 ~inputs
  in
  Printf.printf
    "network noise tolerance: +-%d%%   (paper: +-11%%; shape target: a\n\
    \ non-trivial plateau with zero misclassifications)\n"
    tolerance;
  (* Certified accuracy over the whole test set (correct AND provably
     robust), the standard certified-robustness metric, computed exactly. *)
  let cert =
    List.map
      (fun delta ->
        Printf.sprintf "+-%d%%: %.1f%%" delta
          (100.
          *. Fannet.Tolerance.certified_accuracy backend p.qnet ~bias_noise
               ~delta ~inputs:p.test_inputs))
      [ 5; 9; 15; 25 ]
  in
  Printf.printf "certified accuracy (exact): %s\n" (String.concat "  " cert)

(* ------------------------------------------------------------------ *)
(* E3 - training bias                                                  *)
(* ------------------------------------------------------------------ *)

let corpus_at (p : Fannet.Pipeline.t) ~delta ~limit =
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
  Fannet.Extract.for_inputs ~limit_per_input:limit p.Fannet.Pipeline.qnet spec ~inputs

let fig4_training_bias (p : Fannet.Pipeline.t) =
  section "E3 fig4_training_bias (paper Sec. V-C.3)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let delta = 15 in
  let cexs, _ = corpus_at p ~delta ~limit:500 in
  let report =
    Fannet.Bias.analyze ~n_classes:2
      ~training_labels:(Fannet.Pipeline.training_labels p)
      ~analysed_labels:(Array.map snd inputs) cexs
  in
  Printf.printf "counterexample corpus at +-%d%%:\n%s\n" delta
    (Fannet.Bias.report_to_string report);
  Printf.printf
    "(paper: ~70%% of training samples are L1; L0 inputs are more likely to\n\
    \ be misclassified, and every observed flip goes L0 -> L1)\n"

(* ------------------------------------------------------------------ *)
(* E4 - input-node sensitivity                                         *)
(* ------------------------------------------------------------------ *)

let fig4_node_sensitivity (p : Fannet.Pipeline.t) =
  section "E4 fig4_node_sensitivity (paper Sec. V-C.4, Fig. 4 right panels)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let delta = 15 in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
  let cexs, _ = corpus_at p ~delta ~limit:500 in
  let stats = Fannet.Sensitivity.per_node spec ~n_inputs:5 cexs in
  let table =
    Util.Table.create
      ~header:[ "node"; "positive"; "negative"; "zero"; "min"; "max"; "mean"; "sidedness" ]
  in
  Array.iter
    (fun (s : Fannet.Sensitivity.node_stats) ->
      let side =
        match Fannet.Sensitivity.sidedness s with
        | Fannet.Sensitivity.Never_positive -> "never-positive"
        | Fannet.Sensitivity.Never_negative -> "never-negative"
        | Fannet.Sensitivity.Both_sides -> "both"
        | Fannet.Sensitivity.No_data -> "no-data"
      in
      Util.Table.add_row table
        [
          (if s.node = 0 then "bias" else Printf.sprintf "i%d" s.node);
          string_of_int s.n_positive;
          string_of_int s.n_negative;
          string_of_int s.n_zero;
          string_of_int s.min_noise;
          string_of_int s.max_noise;
          Printf.sprintf "%.2f" s.mean_noise;
          side;
        ])
    stats;
  Util.Table.print table;
  List.iter
    (fun d ->
      let spec = Fannet.Noise.symmetric ~delta:d ~bias_noise in
      let sides = Fannet.Sensitivity.formal_sidedness p.qnet spec ~inputs in
      Printf.printf "formal sidedness at +-%d%%: %s\n" d
        (String.concat "  "
           (Array.to_list
              (Array.map
                 (fun (f : Fannet.Sensitivity.formal_side) ->
                   Printf.sprintf "%s:%s%s"
                     (if f.fs_node = 0 then "bias" else Printf.sprintf "i%d" f.fs_node)
                     (if f.positive_flip then "+" else ".")
                     (if f.negative_flip then "-" else "."))
                 sides))))
    [ 10; 12; 15 ];
  print_endline
    "(paper: node i5 admits no counterexample with positive noise; node i2\n\
    \ is more sensitive to positive noise - the shape target is at least\n\
    \ one one-sided node near the tolerance threshold)";
  (* Single-node tolerance: largest +-D safe when only that node is
     perturbed - a formal per-node sensitivity ranking. *)
  let probe = Fannet.Noise.symmetric ~delta:60 ~bias_noise in
  let table2 = Util.Table.create ~header:[ "node"; "single-node tolerance" ] in
  List.iter
    (fun node ->
      let t = Fannet.Sensitivity.single_node_tolerance p.qnet probe ~inputs ~node in
      Util.Table.add_row table2
        [
          (if node = 0 then "bias" else Printf.sprintf "i%d" node);
          (match t with Some d -> Printf.sprintf "+-%d%%" d | None -> ">+-60%");
        ])
    [ 0; 1; 2; 3; 4; 5 ];
  Util.Table.print table2

(* ------------------------------------------------------------------ *)
(* E5 - classification-boundary estimation                             *)
(* ------------------------------------------------------------------ *)

let fig4_boundary (p : Fannet.Pipeline.t) =
  section "E5 fig4_boundary (paper Sec. V-C.2)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let points = Fannet.Boundary.analyze backend p.qnet ~bias_noise ~max_delta:50 ~inputs in
  let table =
    Util.Table.create ~header:[ "input"; "true"; "min flip range"; "noise-free margin" ]
  in
  Array.iter
    (fun (pt : Fannet.Boundary.point) ->
      Util.Table.add_row table
        [
          string_of_int pt.input_index;
          Printf.sprintf "L%d" pt.true_label;
          (match pt.min_flip_delta with
          | Some d -> Printf.sprintf "+-%d%%" d
          | None -> ">+-50%");
          string_of_int pt.margin;
        ])
    points;
  Util.Table.print table;
  let near = Fannet.Boundary.near_boundary points ~threshold:15 in
  let robust = Fannet.Boundary.robust_at_probe points in
  Printf.printf
    "near boundary (flip <= +-15%%): %d inputs; robust beyond +-50%%: %d inputs\n"
    (Array.length near) (Array.length robust);
  Printf.printf "margin/min-flip correlation: %.3f\n"
    (Fannet.Boundary.margin_flip_correlation points);
  print_endline
    "(paper: a few inputs flip at small noise - near the class boundary -\n\
    \ while others survive +-50%%; margin correlates with flip threshold)"

(* ------------------------------------------------------------------ *)
(* E6 - accuracy table and P1 validation                               *)
(* ------------------------------------------------------------------ *)

let accuracy_table (p : Fannet.Pipeline.t) =
  section "E6 accuracy_table (paper Sec. V-A footnote + P1)";
  let table = Util.Table.create ~header:[ "metric"; "measured"; "paper" ] in
  Util.Table.add_row table
    [ "training accuracy"; Printf.sprintf "%.2f%%" (100. *. p.train_accuracy); "100%" ];
  Util.Table.add_row table
    [ "test accuracy"; Printf.sprintf "%.2f%%" (100. *. p.test_accuracy); "94.12%" ];
  Util.Table.add_row table
    [
      "P1: correctly classified test inputs";
      Printf.sprintf "%d/%d" p.p1.Fannet.Validate.n_correct p.p1.Fannet.Validate.n_total;
      "32/34";
    ];
  Util.Table.add_row table
    [
      "float/quantized prediction agreement";
      Printf.sprintf "%.2f%%"
        (100. *. Fannet.Validate.float_agreement p.network p.qnet ~inputs:p.test_inputs);
      "-";
    ];
  Util.Table.print table;
  List.iter
    (fun (i, predicted) ->
      let _, label = p.test_inputs.(i) in
      Printf.printf "  noise-free mismatch: test input %d, true L%d -> predicted L%d\n"
        i label predicted)
    p.p1.Fannet.Validate.mismatches

(* ------------------------------------------------------------------ *)
(* E7 - backend ablation                                               *)
(* ------------------------------------------------------------------ *)

let ablation_backends (p : Fannet.Pipeline.t) =
  section "E7 ablation_backends (ours; DESIGN.md)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let subset = Array.sub inputs 0 (min 8 (Array.length inputs)) in
  let table =
    Util.Table.create
      ~header:[ "backend"; "delta"; "robust"; "flip"; "unknown"; "time (s)" ]
  in
  let run_backend ?(n = Array.length subset) name b delta =
    let queries = Array.sub subset 0 (min n (Array.length subset)) in
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
    let (robust, flip, unknown), elapsed =
      time_of (fun () ->
          Array.fold_left
            (fun (r, f, u) (input, label) ->
              match Fannet.Backend.exists_flip b p.qnet spec ~input ~label with
              | Fannet.Backend.Robust -> (r + 1, f, u)
              | Fannet.Backend.Flip _ -> (r, f + 1, u)
              | Fannet.Backend.Unknown _ -> (r, f, u + 1))
            (0, 0, 0) queries)
    in
    Util.Table.add_row table
      [
        Printf.sprintf "%s (%d queries)" name (Array.length queries);
        Printf.sprintf "+-%d%%" delta;
        string_of_int robust;
        string_of_int flip;
        string_of_int unknown;
        Printf.sprintf "%.3f" elapsed;
      ]
  in
  List.iter
    (fun delta ->
      run_backend "bnb" Fannet.Backend.Bnb delta;
      (* The bit-blasted engine needs tens of seconds per exhaustive
         (UNSAT) proof even at +-1% - the scalability wall the paper also
         hits with nuXmv; two queries suffice to show it. *)
      if delta = 1 then run_backend ~n:2 "smt (bit-blast CDCL)" Fannet.Backend.Smt delta;
      run_backend "explicit" (Fannet.Backend.Explicit { limit = 10_000_000 }) delta;
      run_backend "interval" Fannet.Backend.Interval delta)
    [ 1; 2 ];
  List.iter
    (fun delta ->
      run_backend "bnb" Fannet.Backend.Bnb delta;
      run_backend "interval" Fannet.Backend.Interval delta)
    [ 20; 40 ];
  Util.Table.print table;
  print_endline
    "(complete backends must agree on robust/flip; interval is sound but\n\
    \ incomplete: its unknowns are where branch-and-bound earns its keep)"

(* ------------------------------------------------------------------ *)
(* E8 - random-testing baseline                                        *)
(* ------------------------------------------------------------------ *)

let ablation_random_baseline (p : Fannet.Pipeline.t) =
  section "E8 ablation_random_baseline (ours; paper Sec. I motivation)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let delta = 12 in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
  let points = Fannet.Boundary.analyze backend p.qnet ~bias_noise ~max_delta:50 ~inputs in
  let fragile =
    Array.fold_left
      (fun acc (pt : Fannet.Boundary.point) ->
        match (acc, pt.min_flip_delta) with
        | None, Some _ -> Some pt
        | Some best, Some d -> (
            match best.Fannet.Boundary.min_flip_delta with
            | Some bd when d < bd -> Some pt
            | Some _ | None -> acc)
        | (Some _ | None), None -> acc)
      None points
  in
  match fragile with
  | None -> print_endline "no flippable input below the probe range"
  | Some pt ->
      let input, label = inputs.(pt.input_index) in
      let total, status =
        Fannet.Bnb.count_flips ~limit:100_000_000 p.qnet spec ~input ~label
      in
      let size = Fannet.Noise.spec_size spec ~n_inputs:5 in
      Printf.printf
        "target: input %d (min flip +-%s%%); flipping vectors at +-%d%%: %d of %d (%s)\n"
        pt.input_index
        (match pt.min_flip_delta with Some d -> string_of_int d | None -> "?")
        delta total size
        (match status with `Complete -> "exact" | `Truncated -> ">=");
      let table =
        Util.Table.create ~header:[ "method"; "budget"; "flips found"; "first hit at" ]
      in
      List.iter
        (fun budget ->
          let rng = Util.Rng.create (1000 + budget) in
          let r = Fannet.Baseline.random_search ~rng p.qnet spec ~input ~label ~budget in
          Util.Table.add_row table
            [
              "random testing";
              string_of_int budget;
              string_of_int (List.length r.found);
              (match r.first_found_at with Some k -> string_of_int k | None -> "-");
            ])
        [ 100; 1_000; 10_000 ];
      Util.Table.add_row table
        [ "formal (bnb)"; "exhaustive"; string_of_int total; "1 query" ];
      Util.Table.print table;
      print_endline
        "(the paper's motivation: testing cannot certify absence of flips;\n\
        \ the formal engine both certifies robust ranges and enumerates the\n\
        \ complete adversarial set)"

(* ------------------------------------------------------------------ *)
(* E9 - training-objective ablation                                    *)
(* ------------------------------------------------------------------ *)

let run_variant train_config =
  let config = { Fannet.Pipeline.default_config with train_config } in
  let v = Fannet.Pipeline.run ~config () in
  let inputs = Fannet.Pipeline.analysis_inputs v in
  let tolerance =
    if Array.length inputs = 0 then -1
    else
      Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb v.qnet ~bias_noise
        ~max_delta:60 ~inputs
  in
  (v, tolerance)

let ablation_training_objective () =
  section "E9 ablation_training_objective (ours; DESIGN.md substitution)";
  let table =
    Util.Table.create
      ~header:[ "trainer"; "train acc"; "test acc"; "tolerance" ]
  in
  let row name cfg =
    let v, tolerance = run_variant cfg in
    Util.Table.add_row table
      [
        name;
        Printf.sprintf "%.1f%%" (100. *. v.Fannet.Pipeline.train_accuracy);
        Printf.sprintf "%.1f%%" (100. *. v.Fannet.Pipeline.test_accuracy);
        (if tolerance < 0 then "n/a" else Printf.sprintf "+-%d%%" tolerance);
      ]
  in
  row "cross-entropy SGD (default)" Nn.Train.default_config;
  row "MSE batch + momentum (MATLAB rates)" Nn.Train.paper_matlab_config;
  row "MSE batch + momentum (lr/10)"
    { Nn.Train.paper_matlab_config with lr_phase1 = 0.05; lr_phase2 = 0.02 };
  Util.Table.print table;
  print_endline
    "(the literal MATLAB-style objective at the paper's rates is unstable\n\
    \ on this data - the substitution DESIGN.md documents)"

(* ------------------------------------------------------------------ *)
(* E10 - quantization-precision ablation                               *)
(* ------------------------------------------------------------------ *)

let ablation_quantization (p : Fannet.Pipeline.t) =
  section "E10 ablation_quantization (ours; DESIGN.md)";
  let table =
    Util.Table.create
      ~header:[ "weight bits"; "float agreement"; "P1 correct"; "tolerance" ]
  in
  List.iter
    (fun bits ->
      let qnet = Nn.Quantize.quantize p.network ~weight_bits:bits in
      let agreement =
        Fannet.Validate.float_agreement p.network qnet ~inputs:p.test_inputs
      in
      let p1 = Fannet.Validate.p1 qnet ~inputs:p.test_inputs in
      let tolerance =
        if Array.length p1.Fannet.Validate.correct = 0 then -1
        else
          Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb qnet ~bias_noise
            ~max_delta:60 ~inputs:p1.Fannet.Validate.correct
      in
      Util.Table.add_row table
        [
          string_of_int bits;
          Printf.sprintf "%.1f%%" (100. *. agreement);
          Printf.sprintf "%d/%d" p1.Fannet.Validate.n_correct p1.Fannet.Validate.n_total;
          (if tolerance < 0 then "n/a" else Printf.sprintf "+-%d%%" tolerance);
        ])
    [ 4; 6; 8; 10; 12 ];
  Util.Table.print table;
  print_endline
    "(the formal verdicts are about the quantized model; enough precision\n\
    \ makes them transfer to the float network - 100% agreement from 8 bits)"

(* ------------------------------------------------------------------ *)
(* E13 - hidden-width ablation                                         *)
(* ------------------------------------------------------------------ *)

let ablation_hidden_width () =
  section "E13 ablation_hidden_width (ours; the paper's 20-neuron choice)";
  let table =
    Util.Table.create ~header:[ "hidden neurons"; "train acc"; "test acc"; "tolerance" ]
  in
  List.iter
    (fun hidden ->
      let config = { Fannet.Pipeline.default_config with hidden } in
      let v = Fannet.Pipeline.run ~config () in
      let inputs = Fannet.Pipeline.analysis_inputs v in
      let tolerance =
        if Array.length inputs = 0 then -1
        else
          Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb v.qnet ~bias_noise
            ~max_delta:60 ~inputs
      in
      Util.Table.add_row table
        [
          string_of_int hidden;
          Printf.sprintf "%.1f%%" (100. *. v.Fannet.Pipeline.train_accuracy);
          Printf.sprintf "%.1f%%" (100. *. v.Fannet.Pipeline.test_accuracy);
          (if tolerance < 0 then "n/a" else Printf.sprintf "+-%d%%" tolerance);
        ])
    [ 5; 10; 20; 40 ];
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E14 - feature-selection ablation                                    *)
(* ------------------------------------------------------------------ *)

let ablation_feature_selection () =
  section "E14 ablation_feature_selection (ours; the paper's mRMR choice)";
  let base = Fannet.Pipeline.default_config in
  let dataset =
    Dataset.Golub.generate ~params:base.dataset_params ~seed:base.dataset_seed ()
  in
  let evaluate name genes =
    (* Re-run the training stages on a fixed gene subset. *)
    let train_inputs = Fannet.Validate.of_samples dataset.Dataset.Golub.train ~genes in
    let test_inputs = Fannet.Validate.of_samples dataset.Dataset.Golub.test ~genes in
    let norm = Nn.Normalize.fit (Array.map fst train_inputs) in
    let vecs = Array.map (fun (x, _) -> Nn.Normalize.apply norm x) train_inputs in
    let labels = Array.map snd train_inputs in
    let rng = Util.Rng.create base.init_seed in
    let raw =
      Nn.Network.create ~rng ~spec:[ Array.length genes; base.hidden; 2 ]
        ~hidden_activation:Nn.Activation.Relu
    in
    ignore (Nn.Train.train ~config:base.train_config raw ~inputs:vecs ~labels);
    let shift, scale = Nn.Normalize.shift_scale norm in
    let network = Nn.Network.fold_input_affine raw ~shift ~scale in
    let qnet = Nn.Quantize.quantize network ~weight_bits:base.weight_bits in
    let p1 = Fannet.Validate.p1 qnet ~inputs:test_inputs in
    let inputs = p1.Fannet.Validate.correct in
    (* Budgeted per-query search: a network fitted to uninformative genes
       has vacuous bounds and the complete search explodes - report that
       honestly instead of hanging. *)
    let budgeted_min_flip input label =
      let flips delta =
        let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
        match
          Fannet.Bnb.exists_flip ~max_boxes:2_000_000 qnet spec ~input ~label
        with
        | Fannet.Bnb.Flip _ -> true
        | Fannet.Bnb.Robust -> false
        | Fannet.Bnb.Unknown _ -> assert false (* no budget on this path *)
      in
      if not (flips 60) then None
      else begin
        let rec search lo hi =
          if hi - lo <= 1 then hi
          else
            let mid = (lo + hi) / 2 in
            if flips mid then search lo mid else search mid hi
        in
        Some (search 0 60)
      end
    in
    let tolerance =
      if Array.length inputs = 0 then "n/a"
      else
        match
          Array.fold_left
            (fun acc (input, label) ->
              match budgeted_min_flip input label with
              | None -> acc
              | Some d -> min acc (d - 1))
            60 inputs
        with
        | t -> Printf.sprintf "+-%d%%" t
        | exception Fannet.Bnb.Budget_exceeded -> "search exploded"
    in
    ( name,
      Printf.sprintf "%d/%d" p1.Fannet.Validate.n_correct p1.Fannet.Validate.n_total,
      tolerance )
  in
  let mrmr = Dataset.Mrmr.select dataset.Dataset.Golub.train ~k:base.k_features ~bins:base.mi_bins in
  let max_rel =
    let ranking = Dataset.Mrmr.relevance_ranking dataset.Dataset.Golub.train ~bins:base.mi_bins in
    Array.init base.k_features (fun i -> fst ranking.(i))
  in
  let random_genes =
    let rng = Util.Rng.create 99 in
    Array.init base.k_features (fun _ -> Util.Rng.int rng dataset.Dataset.Golub.n_genes)
  in
  let table = Util.Table.create ~header:[ "selection"; "P1 test"; "tolerance" ] in
  List.iter
    (fun (name, p1, tol) -> Util.Table.add_row table [ name; p1; tol ])
    [
      evaluate "mRMR (paper)" mrmr;
      evaluate "max relevance only" max_rel;
      evaluate "random genes" random_genes;
    ];
  Util.Table.print table;
  print_endline
    "(the paper selects its 5 genes with mRMR; random genes carry no\n\
    \ signal - the network memorises noise, loses test accuracy AND\n\
    \ becomes so unstructured that complete verification blows up)"

(* ------------------------------------------------------------------ *)
(* E11 - multi-class extension                                         *)
(* ------------------------------------------------------------------ *)

let extension_multiclass () =
  section "E11 extension_multiclass (ours; beyond the paper)";
  let m = Fannet.Mc_pipeline.run () in
  let inputs = Fannet.Mc_pipeline.analysis_inputs m in
  Printf.printf "3-class pipeline: train %.1f%%, test %.1f%% (P1 %d/%d)\n"
    (100. *. m.Fannet.Mc_pipeline.train_accuracy)
    (100. *. m.Fannet.Mc_pipeline.test_accuracy)
    m.Fannet.Mc_pipeline.p1.Fannet.Validate.n_correct
    m.Fannet.Mc_pipeline.p1.Fannet.Validate.n_total;
  let tol =
    Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb m.qnet ~bias_noise
      ~max_delta:60 ~inputs
  in
  Printf.printf "noise tolerance: +-%d%%\n" tol;
  let delta = min 50 (tol + 6) in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
  let cexs, _ = Fannet.Extract.for_inputs ~limit_per_input:100 m.qnet spec ~inputs in
  Printf.printf "confusion directions at +-%d%%:\n" delta;
  Fannet.Bias.flip_directions cexs
  |> List.iter (fun (d : Fannet.Bias.direction) ->
         Printf.printf "  C%d -> C%d : %d\n" d.from_label d.to_label d.count);
  print_endline
    "(the same formal machinery generalised to k classes: one margin per\n\
    \ adversary class inside branch-and-bound)"

(* ------------------------------------------------------------------ *)
(* E12 - relative vs absolute noise                                    *)
(* ------------------------------------------------------------------ *)

let extension_absolute_noise (p : Fannet.Pipeline.t) =
  section "E12 extension_absolute_noise (ours; L-infinity setting)";
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let subset = Array.sub inputs 0 (min 6 (Array.length inputs)) in
  let table =
    Util.Table.create
      ~header:[ "input"; "min relative flip"; "min absolute flip (units)" ]
  in
  Array.iteri
    (fun i (input, label) ->
      let rel =
        Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Bnb p.qnet
          ~bias_noise ~max_delta:60 ~input ~label
      in
      (* Binary search the smallest absolute L-infinity radius that flips. *)
      let abs_flips d =
        let spec = Fannet.Noise.absolute ~delta:d ~bias_noise:false in
        match Fannet.Backend.exists_flip Fannet.Backend.Bnb p.qnet spec ~input ~label with
        | Fannet.Backend.Flip _ -> true
        | Fannet.Backend.Robust | Fannet.Backend.Unknown _ -> false
      in
      let max_abs = 4096 in
      let abs_min =
        if not (abs_flips max_abs) then None
        else begin
          let rec search lo hi =
            if hi - lo <= 1 then hi
            else
              let mid = (lo + hi) / 2 in
              if abs_flips mid then search lo mid else search mid hi
          in
          Some (search 0 max_abs)
        end
      in
      Util.Table.add_row table
        [
          string_of_int i;
          (match rel with Some d -> Printf.sprintf "+-%d%%" d | None -> ">+-60%");
          (match abs_min with Some d -> Printf.sprintf "+-%d" d | None -> ">+-4096");
        ])
    subset;
  Util.Table.print table;
  print_endline
    "(the paper's relative model scales noise with each gene's magnitude;\n\
    \ the absolute model is the L-infinity ball of the robustness\n\
    \ literature - both run on the same engines)"

(* ------------------------------------------------------------------ *)
(* E15 - parallel engine, cascade prefilter, incremental search        *)
(* ------------------------------------------------------------------ *)

(* A small fixed network for the incremental-SMT comparison: bit-blasting
   the full pipeline network takes tens of seconds per UNSAT probe (the
   scalability wall measured in E7), so the warm-vs-cold session contrast
   is shown on a model where both sides finish in milliseconds. *)
let small_qnet () =
  Nn.Qnet.create
    [|
      {
        Nn.Qnet.weights =
          [|
            [| 31; -22 |]; [| -13; 41 |]; [| 17; 9 |]; [| -25; 14 |];
          |];
        bias = [| 55; -31; 12; -7 |];
        act = Nn.Qnet.Relu;
      };
      {
        Nn.Qnet.weights = [| [| 21; -33; 11; -9 |]; [| -20; 31; -12; 10 |] |];
        bias = [| 13; 0 |];
        act = Nn.Qnet.Identity;
      };
    |]

let bench_parallel ?(smoke = false) (p : Fannet.Pipeline.t) ~out =
  section "E15 bench_parallel (domain pool + cascade prefilter + incremental search)";
  let all_inputs = Fannet.Pipeline.analysis_inputs p in
  let inputs =
    if smoke then Array.sub all_inputs 0 (min 6 (Array.length all_inputs))
    else all_inputs
  in
  let delta = 15 in
  let max_delta = if smoke then 30 else 50 in
  (* Exercise the pool even on single-core machines: chunking and domain
     spawning must preserve results regardless of the hardware count. *)
  let njobs = max 2 (Util.Parallel.default_jobs ()) in
  let table =
    Util.Table.create
      ~header:
        [ "analysis"; "backend"; "jobs=1 (s)"; Printf.sprintf "jobs=%d (s)" njobs;
          "speedup"; "equal"; "prefilter hit rate" ]
  in
  let analyses = ref [] in
  let run_analysis name backend f =
    let cascade = match backend with Fannet.Backend.Cascade _ -> true | _ -> false in
    let r1, t1 = time_of (fun () -> f ~jobs:1 backend) in
    if cascade then Fannet.Backend.reset_cascade_stats ();
    let rn, tn = time_of (fun () -> f ~jobs:njobs backend) in
    let stats = if cascade then Some (Fannet.Backend.cascade_stats ()) else None in
    let equal = r1 = rn in
    if not equal then
      failwith (Printf.sprintf "E15: %s verdicts differ between jobs=1 and jobs=%d" name njobs);
    let hit_rate = Option.map Fannet.Backend.cascade_hit_rate stats in
    Util.Table.add_row table
      [
        name;
        Fannet.Backend.to_string backend;
        Printf.sprintf "%.3f" t1;
        Printf.sprintf "%.3f" tn;
        Printf.sprintf "%.2fx" (t1 /. tn);
        string_of_bool equal;
        (match hit_rate with
        | Some r -> Printf.sprintf "%.0f%%" (100. *. r)
        | None -> "-");
      ];
    analyses :=
      Util.Json.Obj
        ([
           ("analysis", Util.Json.String name);
           ("backend", Util.Json.String (Fannet.Backend.to_string backend));
           ("jobs1_s", Util.Json.Float t1);
           ("jobsN_s", Util.Json.Float tn);
           ("speedup", Util.Json.Float (t1 /. tn));
           ("verdicts_equal", Util.Json.Bool equal);
         ]
        @
        match stats with
        | None -> []
        | Some s ->
            [
              ("interval_hits", Util.Json.Int s.Fannet.Backend.interval_hits);
              ("escalations", Util.Json.Int s.Fannet.Backend.escalations);
              ( "hit_rate",
                Util.Json.Float (Fannet.Backend.cascade_hit_rate s) );
            ])
      :: !analyses;
    r1
  in
  let misclassified ~jobs backend =
    List.map
      (fun (f : Fannet.Tolerance.flip) -> (f.input_index, f.predicted))
      (Fannet.Tolerance.misclassified_at ~jobs backend p.qnet ~bias_noise ~delta
         ~inputs)
  in
  let tolerance ~jobs backend =
    [ (Fannet.Tolerance.network_tolerance ~jobs backend p.qnet ~bias_noise
         ~max_delta ~inputs, 0) ]
  in
  let extract ~jobs _backend =
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
    let cexs, _ =
      Fannet.Extract.for_inputs ~limit_per_input:50 ~jobs p.qnet spec ~inputs
    in
    List.map
      (fun (c : Fannet.Extract.counterexample) -> (c.input_index, c.predicted))
      cexs
  in
  let mis_bnb = run_analysis "misclassified_at" Fannet.Backend.Bnb misclassified in
  let mis_cascade =
    run_analysis "misclassified_at" Fannet.Backend.default_cascade misclassified
  in
  if mis_bnb <> mis_cascade then
    failwith "E15: cascade(bnb) disagrees with bnb on misclassified_at";
  ignore (run_analysis "extract_for_inputs" Fannet.Backend.Bnb extract);
  let tol_bnb = run_analysis "network_tolerance" Fannet.Backend.Bnb tolerance in
  let tol_cascade =
    run_analysis "network_tolerance" Fannet.Backend.default_cascade tolerance
  in
  if tol_bnb <> tol_cascade then
    failwith "E15: cascade(bnb) disagrees with bnb on network_tolerance";
  Util.Table.print table;
  (* Incremental bit-blasted binary search: one warm session with assumable
     range literals vs re-encoding the network at every probe. *)
  let qnet = small_qnet () in
  let sinput = [| 112; 87 |] in
  let slabel = Nn.Qnet.predict qnet sinput in
  let smt_max_delta = 40 in
  let warm, warm_t =
    time_of (fun () ->
        Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Smt qnet
          ~bias_noise:false ~max_delta:smt_max_delta ~input:sinput ~label:slabel)
  in
  let cold, cold_t =
    time_of (fun () ->
        (* The pre-incremental procedure: a fresh Tseitin encoding and solver
           per probe of the same monotone binary search. *)
        let flips d =
          let spec = Fannet.Noise.symmetric ~delta:d ~bias_noise:false in
          match
            Fannet.Backend.exists_flip Fannet.Backend.Smt qnet spec ~input:sinput
              ~label:slabel
          with
          | Fannet.Backend.Flip _ -> true
          | Fannet.Backend.Robust -> false
          | Fannet.Backend.Unknown _ -> failwith "E15: smt probe unknown"
        in
        if not (flips smt_max_delta) then None
        else if flips 0 then Some 0
        else begin
          let rec search lo hi =
            if hi - lo <= 1 then hi
            else
              let mid = (lo + hi) / 2 in
              if flips mid then search lo mid else search mid hi
          in
          Some (search 0 smt_max_delta)
        end)
  in
  let bnb_ref =
    Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Bnb qnet ~bias_noise:false
      ~max_delta:smt_max_delta ~input:sinput ~label:slabel
  in
  if warm <> cold || warm <> bnb_ref then
    failwith "E15: incremental smt min-flip disagrees with cold smt or bnb";
  let show = function Some d -> Printf.sprintf "+-%d%%" d | None -> "robust" in
  Printf.printf
    "incremental smt min-flip (small net): %s in %.3fs warm session vs %.3fs\n\
    \ re-encoding per probe (%.2fx); bnb agrees (%s)\n"
    (show warm) warm_t cold_t (cold_t /. warm_t) (show bnb_ref);
  (* ---------------------------------------------------------------- *)
  (* E19: work-stealing effort accounting, warm session pool reuse and  *)
  (* the diversified solver portfolio with a certified winner.          *)
  (* ---------------------------------------------------------------- *)
  section "E19 bench_parallel_v2 (work stealing + warm sessions + portfolio)";
  let cores = Domain.recommended_domain_count () in
  let single_core = cores <= 1 in
  (* Speedup contract: with real cores a parallel ladder must beat
     jobs=1; on a single-core box the honest ratio is <= 1 and the gate
     is no-regression only — domain spawning and stealing may not cost
     more than a bounded constant factor. *)
  let no_regression_floor = 0.15 in
  (* Sub-10ms smoke timings are dominated by domain-spawn constants and
     scheduler noise, so the ratio floor alone would flake; a failure
     additionally requires an absolute regression worth caring about. *)
  let abs_regression_slack_s = 0.05 in
  let assert_speedup name ~t1 ~tn =
    let sp = t1 /. tn in
    if single_core then begin
      if sp < no_regression_floor && tn -. t1 > abs_regression_slack_s then
        failwith
          (Printf.sprintf
             "E19: %s single-core ratio %.2fx below the %.2fx no-regression floor"
             name sp no_regression_floor)
    end
    else if (not smoke) && sp <= 1.0 then
      failwith
        (Printf.sprintf "E19: %s speedup %.2fx with %d cores — parallelism does not pay"
           name sp cores)
  in
  List.iter
    (fun entry ->
      match entry with
      | Util.Json.Obj kvs -> (
          match
            ( List.assoc_opt "analysis" kvs,
              List.assoc_opt "jobs1_s" kvs,
              List.assoc_opt "jobsN_s" kvs )
          with
          | ( Some (Util.Json.String name),
              Some (Util.Json.Float t1),
              Some (Util.Json.Float tn) ) ->
              assert_speedup name ~t1 ~tn
          | _ -> ())
      | _ -> ())
    !analyses;
  (* Work-stealing effort: re-run the per-input flip scan with a probe
     installed and account each worker's items, steals and busy time.
     The imbalance gauge is slowest-worker busy time over the mean — 1.0
     is perfect balance, and stealing is what pushes it towards 1. *)
  let batches = ref 0 and steals = ref 0 and stolen_items = ref 0 in
  let imbalance = ref 1.0 in
  let probe =
    {
      Util.Parallel.now_s =
        (fun () -> Int64.to_float (Obs.Clock.now_ns ()) *. 1e-9);
      record =
        (fun ~stats ->
          incr batches;
          Array.iter
            (fun (w : Util.Parallel.worker_stat) ->
              steals := !steals + w.steals;
              stolen_items := !stolen_items + w.items)
            stats;
          let busy = Array.map (fun (w : Util.Parallel.worker_stat) -> w.busy_s) stats in
          let slowest = Array.fold_left max 0. busy in
          let mean =
            Array.fold_left ( +. ) 0. busy /. float_of_int (Array.length busy)
          in
          if mean > 0. then imbalance := slowest /. mean);
    }
  in
  Util.Parallel.set_probe (Some probe);
  ignore (misclassified ~jobs:njobs Fannet.Backend.Bnb);
  Util.Parallel.set_probe None;
  Printf.printf
    "work stealing (jobs=%d): %d batches, %d items, %d steals, imbalance %.2f\n"
    njobs !batches !stolen_items !steals !imbalance;
  (* Warm session pool: the same binary search twice — the repeat must
     re-encode nothing and answer identically from the pooled session. *)
  Fannet.Warm.reset ();
  let warm_search () =
    Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Smt qnet
      ~bias_noise:false ~max_delta:smt_max_delta ~input:sinput ~label:slabel
  in
  let first, first_s = time_of warm_search in
  let misses_after_first = Fannet.Warm.misses () in
  let repeat, repeat_s = time_of warm_search in
  let warm_hits = Fannet.Warm.hits () in
  let warm_misses = Fannet.Warm.misses () in
  let warm_evictions = Fannet.Warm.evictions () in
  if first <> repeat || first <> warm then
    failwith "E19: warm-pool repeat search changed its answer";
  if warm_misses <> misses_after_first then
    failwith "E19: warm-pool repeat search re-encoded the network";
  let warm_hit_rate =
    float_of_int warm_hits /. float_of_int (max 1 (warm_hits + warm_misses))
  in
  let warm_speedup = first_s /. repeat_s in
  assert_speedup "warm_pool_repeat" ~t1:first_s ~tn:repeat_s;
  Printf.printf
    "warm pool: first search %.4fs (%d encodes), repeat %.4fs (%.2fx, 0 encodes,\n\
    \ %d hits, %.0f%% hit rate)\n"
    first_s warm_misses repeat_s warm_speedup warm_hits (100. *. warm_hit_rate);
  (* Portfolio: race diversified solvers on a robust and (when the net
     admits one) a flipping query; the winner's DRUP certificate must
     pass the independent checker — the same acceptance bar as the
     single-solver certified path. *)
  let width = max 2 (Fannet.Portfolio.default_width ()) in
  Obs.Report.enable ();
  Obs.Report.reset ();
  let portfolio_deltas =
    match bnb_ref with None -> [ 0; smt_max_delta ] | Some d -> [ 0; d ]
  in
  let portfolio_rows =
    List.map
      (fun pdelta ->
        let spec = Fannet.Noise.symmetric ~delta:pdelta ~bias_noise:false in
        let truth =
          Fannet.Backend.exists_flip Fannet.Backend.Bnb qnet spec ~input:sinput
            ~label:slabel
        in
        let cv_single, single_s =
          time_of (fun () ->
              Fannet.Backend.certified_exists_flip qnet spec ~input:sinput
                ~label:slabel)
        in
        let (cv, seed), portfolio_s =
          time_of (fun () ->
              Fannet.Portfolio.certified_exists_flip ~width qnet spec
                ~input:sinput ~label:slabel)
        in
        let verdict_class v =
          match v with
          | Fannet.Backend.Robust -> "robust"
          | Fannet.Backend.Flip _ -> "flip"
          | Fannet.Backend.Unknown _ -> "unknown"
        in
        if verdict_class cv.Fannet.Backend.cv_verdict <> verdict_class truth
        then
          failwith
            (Printf.sprintf "E19: portfolio disagrees with bnb at +-%d%%" pdelta);
        if
          verdict_class cv_single.Fannet.Backend.cv_verdict
          <> verdict_class truth
        then
          failwith
            (Printf.sprintf "E19: single solver disagrees with bnb at +-%d%%"
               pdelta);
        let winner =
          match seed with
          | Some s -> s
          | None -> failwith "E19: decided portfolio verdict without a winner"
        in
        (match
           Fannet.Backend.check_certified qnet spec ~input:sinput ~label:slabel
             cv
         with
        | Ok () -> ()
        | Error e ->
            failwith
              (Printf.sprintf
                 "E19: portfolio winner's certificate rejected at +-%d%%: %s"
                 pdelta e));
        Printf.printf
          "portfolio +-%d%% (width %d): %s, winner seed %d, certificate checked\n\
          \ (%.4fs vs %.4fs single solver)\n"
          pdelta width
          (verdict_class cv.Fannet.Backend.cv_verdict)
          winner portfolio_s single_s;
        Util.Json.Obj
          [
            ("delta", Util.Json.Int pdelta);
            ("verdict", Util.Json.String (verdict_class cv.Fannet.Backend.cv_verdict));
            ("winner_seed", Util.Json.Int winner);
            ("single_s", Util.Json.Float single_s);
            ("portfolio_s", Util.Json.Float portfolio_s);
            ("certificate_checked", Util.Json.Bool true);
          ])
      portfolio_deltas
  in
  let cval name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let races = cval "portfolio.races" in
  let undecided = cval "portfolio.undecided" in
  let wins_by_seed =
    List.init width (fun s ->
        ( Printf.sprintf "seed%d" s,
          Util.Json.Int (cval (Printf.sprintf "portfolio.wins.seed%d" s)) ))
  in
  Obs.Report.disable ();
  Obs.Report.reset ();
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_parallel/2");
        ("smoke", Util.Json.Bool smoke);
        ("jobs", Util.Json.Int njobs);
        ("recommended_domains", Util.Json.Int cores);
        ("single_core", Util.Json.Bool single_core);
        ("no_regression_floor", Util.Json.Float no_regression_floor);
        ("n_inputs", Util.Json.Int (Array.length inputs));
        ("delta", Util.Json.Int delta);
        ("max_delta", Util.Json.Int max_delta);
        ("analyses", Util.Json.List (List.rev !analyses));
        ( "incremental_smt",
          Util.Json.Obj
            [
              ("max_delta", Util.Json.Int smt_max_delta);
              ( "min_flip_delta",
                match warm with
                | Some d -> Util.Json.Int d
                | None -> Util.Json.Null );
              ("warm_s", Util.Json.Float warm_t);
              ("cold_s", Util.Json.Float cold_t);
              ("speedup", Util.Json.Float (cold_t /. warm_t));
              ("agrees_bnb", Util.Json.Bool (warm = bnb_ref));
            ] );
        ( "work_stealing",
          Util.Json.Obj
            [
              ("jobs", Util.Json.Int njobs);
              ("batches", Util.Json.Int !batches);
              ("items", Util.Json.Int !stolen_items);
              ("steals", Util.Json.Int !steals);
              ("imbalance", Util.Json.Float !imbalance);
            ] );
        ( "warm_sessions",
          Util.Json.Obj
            [
              ("first_s", Util.Json.Float first_s);
              ("repeat_s", Util.Json.Float repeat_s);
              ("repeat_speedup", Util.Json.Float warm_speedup);
              ("hits", Util.Json.Int warm_hits);
              ("misses", Util.Json.Int warm_misses);
              ("evictions", Util.Json.Int warm_evictions);
              ("hit_rate", Util.Json.Float warm_hit_rate);
            ] );
        ( "portfolio",
          Util.Json.Obj
            [
              ("width", Util.Json.Int width);
              ("races", Util.Json.Int races);
              ("undecided", Util.Json.Int undecided);
              ("wins", Util.Json.Obj wins_by_seed);
              ("queries", Util.Json.List portfolio_rows);
            ] );
      ]
  in
  Util.Json.write_file out json;
  (match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_parallel/2") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E19: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E19: %s failed to parse: %s" out e))

(* ------------------------------------------------------------------ *)
(* E16 - certificate subsystem: proof-logging overhead, checker        *)
(* throughput, end-to-end certified verdicts                           *)
(* ------------------------------------------------------------------ *)

let pigeonhole_clauses ~pigeons ~holes =
  let var p h = (p * holes) + h in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (fun h -> (var p h, true)) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ (var p1 h, false); (var p2 h, false) ] :: !clauses
      done
    done
  done;
  (pigeons * holes, !clauses)

let bench_cert ?(smoke = false) ~out () =
  section "E16 bench_cert (proof logging overhead + RUP checker throughput)";
  let pigeons = 7 and holes = 6 in
  let n_vars, clauses = pigeonhole_clauses ~pigeons ~holes in
  let solve_php ~logged () =
    let s = Sat.Solver.create () in
    let trace = if logged then Some (Cert.Proof.attach s) else None in
    let vars = Array.init n_vars (fun _ -> Sat.Solver.new_var s) in
    List.iter
      (fun clause ->
        Sat.Solver.add_clause s
          (List.map (fun (v, sign) -> Sat.Lit.make vars.(v) sign) clause))
      clauses;
    let r = Sat.Solver.solve s in
    if r <> Sat.Solver.Unsat then failwith "E16: php must be unsat";
    (s, trace)
  in
  (* Per-event cost is tiny relative to run-to-run solver noise, so take
     the best of several repetitions for both configurations. *)
  let reps = if smoke then 3 else 7 in
  let best f =
    let ts = List.init reps (fun _ -> snd (time_of f)) in
    List.fold_left min (List.hd ts) (List.tl ts)
  in
  let t_off = best (fun () -> solve_php ~logged:false ()) in
  let t_on = best (fun () -> solve_php ~logged:true ()) in
  let overhead_pct = 100. *. ((t_on -. t_off) /. t_off) in
  Printf.printf
    "php(%d,%d) solve: %.4fs unlogged, %.4fs with proof sink (%.1f%% overhead)\n"
    pigeons holes t_off t_on overhead_pct;
  (* Checker throughput on the proof from one logged run. *)
  let s, trace = solve_php ~logged:true () in
  let trace = Option.get trace in
  let cert =
    match Cert.Verdict.of_trace_unsat ~n_vars:(Sat.Solver.nvars s) trace with
    | Ok c -> c
    | Error e -> failwith ("E16: no refutation certificate: " ^ e)
  in
  let n_steps, n_lemmas =
    match cert with
    | Cert.Verdict.Refutation { proof; _ } ->
        ( List.length proof,
          List.length
            (List.filter
               (function Cert.Rup.Learn _ -> true | Cert.Rup.Delete _ -> false)
               proof) )
    | Cert.Verdict.Model _ -> failwith "E16: expected a refutation"
  in
  let check_result, check_t = time_of (fun () -> Cert.Verdict.check cert) in
  (match check_result with
  | Ok () -> ()
  | Error e -> failwith ("E16: solver proof rejected by the checker: " ^ e));
  let lemmas_per_s = float_of_int n_lemmas /. check_t in
  Printf.printf
    "RUP check: %d proof steps (%d lemmas) verified in %.4fs (%.0f lemmas/s)\n"
    n_steps n_lemmas check_t lemmas_per_s;
  (* End-to-end certified robustness verdict on the small fixed network:
     encode, solve with the trace attached, snapshot, re-check. *)
  let qnet = small_qnet () in
  let input = [| 50; 50 |] and delta = 12 in
  let label = Nn.Qnet.predict qnet input in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
  let cv, e2e_solve_t =
    time_of (fun () -> Fannet.Backend.certified_exists_flip qnet spec ~input ~label)
  in
  (match cv.Fannet.Backend.cv_verdict with
  | Fannet.Backend.Robust -> ()
  | v ->
      failwith
        ("E16: expected robust at +-12 on the small net, got "
        ^ Fannet.Backend.verdict_to_string v));
  let e2e_check, e2e_check_t =
    time_of (fun () -> Fannet.Backend.check_certified qnet spec ~input ~label cv)
  in
  (match e2e_check with
  | Ok () -> ()
  | Error e -> failwith ("E16: end-to-end certificate rejected: " ^ e));
  Printf.printf
    "certified robust verdict (small net, +-%d%%): %.3fs solve+log, %.3fs check\n"
    delta e2e_solve_t e2e_check_t;
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_cert/1");
        ("smoke", Util.Json.Bool smoke);
        ( "proof_logging",
          Util.Json.Obj
            [
              ("workload", Util.Json.String (Printf.sprintf "php(%d,%d)" pigeons holes));
              ("reps", Util.Json.Int reps);
              ("unlogged_s", Util.Json.Float t_off);
              ("logged_s", Util.Json.Float t_on);
              ("overhead_pct", Util.Json.Float overhead_pct);
            ] );
        ( "checker",
          Util.Json.Obj
            [
              ("proof_steps", Util.Json.Int n_steps);
              ("lemmas", Util.Json.Int n_lemmas);
              ("check_s", Util.Json.Float check_t);
              ("lemmas_per_s", Util.Json.Float lemmas_per_s);
            ] );
        ( "end_to_end",
          Util.Json.Obj
            [
              ("delta", Util.Json.Int delta);
              ("verdict", Util.Json.String "robust");
              ("solve_s", Util.Json.Float e2e_solve_t);
              ("check_s", Util.Json.Float e2e_check_t);
            ] );
      ]
  in
  Util.Json.write_file out json;
  match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_cert/1") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E16: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E16: %s failed to parse: %s" out e)

(* ------------------------------------------------------------------ *)
(* E17 - observability overhead: the disabled fast path must be free   *)
(* ------------------------------------------------------------------ *)

let bench_obs ?(smoke = false) ~out () =
  section "E17 bench_obs (metrics registry: disabled fast path + enabled overhead)";
  (* Representative instrumented workload: cascade and SMT robustness
     queries plus one incremental min-flip search on the small network —
     the code paths that carry every Obs record site. *)
  let qnet = small_qnet () in
  let sinput = [| 112; 87 |] in
  let slabel = Nn.Qnet.predict qnet sinput in
  let deltas = if smoke then [ 5; 12 ] else [ 2; 5; 8; 12; 15; 20 ] in
  let workload () =
    List.iter
      (fun delta ->
        let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
        ignore
          (Fannet.Backend.exists_flip Fannet.Backend.default_cascade qnet spec
             ~input:sinput ~label:slabel);
        ignore
          (Fannet.Backend.exists_flip Fannet.Backend.Smt qnet spec ~input:sinput
             ~label:slabel))
      deltas;
    ignore
      (Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Smt qnet
         ~bias_noise:false ~max_delta:40 ~input:sinput ~label:slabel)
  in
  let reps = if smoke then 3 else 7 in
  let best f =
    let ts = List.init reps (fun _ -> snd (time_of f)) in
    List.fold_left min (List.hd ts) (List.tl ts)
  in
  Obs.Report.disable ();
  Obs.Report.reset ();
  let t_disabled = best workload in
  Obs.Report.enable ();
  Obs.Report.reset ();
  let t_enabled = best workload in
  (* Event counts recorded while enabled (per rep: totals / reps). Batched
     counters (conflicts, propagations, ...) are pushed once per solve, so
     the number of record-site executions is what matters, not the counter
     magnitudes. *)
  let cval name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let hcount name = (Obs.Metrics.histogram_view (Obs.Metrics.histogram name)).Obs.Metrics.count in
  let solves = cval "sat.solves" in
  let queries = cval "smtlite.queries" in
  let probes = cval "tolerance.probes" in
  let learnt = hcount "sat.learnt_clause_len" in
  let backend_queries =
    hcount "backend.cascade(bnb).query_s" + hcount "backend.smt.query_s"
  in
  (* Record-site executions per rep: each learnt clause checks the flag
     once; a solve pushes ~6 counter deltas + 1 histogram; a query records
     ~5 metrics; a backend query ~2 (histogram + clock pair); a tolerance
     probe ~2 (counter + gauge). *)
  let events_total =
    learnt + (6 * solves) + (5 * queries) + (2 * backend_queries) + (2 * probes)
  in
  let events_per_rep = float_of_int events_total /. float_of_int reps in
  Obs.Report.disable ();
  (* Disabled-branch unit cost: one counter incr = atomic load + branch. *)
  let iters = if smoke then 2_000_000 else 20_000_000 in
  let c_probe = Obs.Metrics.counter "bench.obs.disabled_probe" in
  let _, t_branch = time_of (fun () -> for _ = 1 to iters do Obs.Metrics.incr c_probe done) in
  let disabled_branch_ns = 1e9 *. t_branch /. float_of_int iters in
  (* The modelled cost of the disabled instrumentation on this workload:
     direct enabled-vs-disabled deltas drown in solver noise at this
     scale, so the asserted bound multiplies the measured per-site branch
     cost by the number of record-site executions. *)
  let disabled_overhead_pct =
    100. *. (events_per_rep *. disabled_branch_ns /. 1e9) /. t_disabled
  in
  let enabled_overhead_pct = 100. *. ((t_enabled -. t_disabled) /. t_disabled) in
  Printf.printf
    "workload: %.4fs disabled, %.4fs enabled (%+.1f%% measured, noisy)\n"
    t_disabled t_enabled enabled_overhead_pct;
  Printf.printf
    "disabled branch: %.2f ns/site x %.0f sites/rep = %.5f%% modelled overhead (bound: <2%%)\n"
    disabled_branch_ns events_per_rep disabled_overhead_pct;
  if disabled_overhead_pct >= 2.0 then
    failwith
      (Printf.sprintf "E17: disabled-path overhead %.3f%% breaches the 2%% contract"
         disabled_overhead_pct);
  Obs.Report.reset ();
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_obs/1");
        ("smoke", Util.Json.Bool smoke);
        ("monotonic_clock", Util.Json.Bool Obs.Clock.monotonic);
        ("reps", Util.Json.Int reps);
        ("disabled_s", Util.Json.Float t_disabled);
        ("enabled_s", Util.Json.Float t_enabled);
        ("enabled_overhead_pct", Util.Json.Float enabled_overhead_pct);
        ("disabled_branch_ns", Util.Json.Float disabled_branch_ns);
        ("events_per_rep", Util.Json.Float events_per_rep);
        ( "events",
          Util.Json.Obj
            [
              ("sat_solves", Util.Json.Int solves);
              ("smtlite_queries", Util.Json.Int queries);
              ("tolerance_probes", Util.Json.Int probes);
              ("learnt_clauses", Util.Json.Int learnt);
              ("backend_queries", Util.Json.Int backend_queries);
            ] );
        ("disabled_overhead_pct", Util.Json.Float disabled_overhead_pct);
        ("bound_pct", Util.Json.Float 2.0);
      ]
  in
  Util.Json.write_file out json;
  (match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_obs/1") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E17: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E17: %s failed to parse: %s" out e))

(* ------------------------------------------------------------------ *)
(* E18: resilience layer costs                                         *)
(* ------------------------------------------------------------------ *)

let bench_robust ?(smoke = false) ~out () =
  section "E18 bench_robust (budget-check overhead + checkpoint write cost)";
  let qnet = small_qnet () in
  let sinput = [| 112; 87 |] in
  let slabel = Nn.Qnet.predict qnet sinput in
  let deltas = if smoke then [ 5; 12 ] else [ 2; 5; 8; 12; 15; 20 ] in
  (* The budgeted workload: the same robustness queries every analysis
     command issues, under a budget generous enough never to fire — so the
     difference against the unbudgeted run is pure polling cost. *)
  let workload budget () =
    List.iter
      (fun delta ->
        let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
        ignore
          (Fannet.Backend.exists_flip ?budget Fannet.Backend.Bnb qnet spec
             ~input:sinput ~label:slabel);
        ignore
          (Fannet.Backend.exists_flip ?budget Fannet.Backend.Smt qnet spec
             ~input:sinput ~label:slabel))
      deltas
  in
  let reps = if smoke then 3 else 7 in
  let best f =
    let ts = List.init reps (fun _ -> snd (time_of f)) in
    List.fold_left min (List.hd ts) (List.tl ts)
  in
  let t_plain = best (workload None) in
  let generous () = Some (Resil.Budget.create ~timeout_s:1e6 ~max_mem_mb:1_000_000 ()) in
  let t_budgeted = best (fun () -> workload (generous ()) ()) in
  let measured_pct = 100. *. ((t_budgeted -. t_plain) /. t_plain) in
  (* Unit cost of one Budget.check (atomic load + clock read + Gc.quick_stat). *)
  let iters = if smoke then 200_000 else 2_000_000 in
  let b = Resil.Budget.create ~timeout_s:1e6 ~max_mem_mb:1_000_000 () in
  let _, t_checks =
    time_of (fun () ->
        for _ = 1 to iters do
          ignore (Resil.Budget.check b)
        done)
  in
  let check_ns = 1e9 *. t_checks /. float_of_int iters in
  (* Poll count per rep, from the solver's own counters: the SAT loop
     polls every 64 conflicts plus once per solve entry; branch-and-bound
     polls every 64 boxes — bounded here by a fixed slack, since the small
     network explores at most a few hundred boxes per query. *)
  Obs.Report.enable ();
  Obs.Report.reset ();
  workload (generous ()) ();
  let cval name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let conflicts = cval "sat.conflicts" in
  let solves = cval "sat.solves" in
  Obs.Report.disable ();
  Obs.Report.reset ();
  let bnb_poll_slack = 100 in
  let polls_per_rep = (conflicts / 64) + (2 * solves) + bnb_poll_slack in
  let modelled_pct =
    100. *. (float_of_int polls_per_rep *. check_ns /. 1e9) /. t_plain
  in
  Printf.printf
    "workload: %.4fs unbudgeted, %.4fs budgeted (%+.1f%% measured, noisy)\n"
    t_plain t_budgeted measured_pct;
  Printf.printf
    "budget check: %.2f ns x %d polls/rep = %.5f%% modelled overhead (bound: <2%%)\n"
    check_ns polls_per_rep modelled_pct;
  if modelled_pct >= 2.0 then
    failwith
      (Printf.sprintf "E18: budget-check overhead %.3f%% breaches the 2%% contract"
         modelled_pct);
  (* Checkpoint write cost: a representative extract checkpoint payload
     (hundreds of noise vectors plus pending boxes) written through the
     full fannet-ckpt/1 path — serialize, checksum, tmp file, rename. *)
  let n_vectors = if smoke then 64 else 512 in
  let vec i =
    Util.Json.Obj
      [
        ("bias", Util.Json.Int 0);
        ( "inputs",
          Util.Json.List
            (List.init 5 (fun k -> Util.Json.Int ((i + k) mod 7 - 3))) );
      ]
  in
  let payload =
    Util.Json.Obj
      [
        ("key", Util.Json.String (String.make 32 'a'));
        ("emitted", Util.Json.Int n_vectors);
        ("vectors", Util.Json.List (List.init n_vectors vec));
        ("pending", Util.Json.List []);
      ]
  in
  let path = Filename.temp_file "fannet_bench" ".ckpt" in
  let writes = if smoke then 20 else 200 in
  let _, t_writes =
    time_of (fun () ->
        for _ = 1 to writes do
          Resil.Ckpt.save ~kind:"extract" ~path payload
        done)
  in
  let write_ms = 1e3 *. t_writes /. float_of_int writes in
  let bytes = (Unix.stat path).Unix.st_size in
  let load_ok =
    match Resil.Ckpt.load ~kind:"extract" ~path with
    | Ok _ -> true
    | Error _ -> false
  in
  Sys.remove path;
  if not load_ok then failwith "E18: checkpoint did not load back";
  Printf.printf
    "checkpoint: %d vectors, %d bytes, %.3f ms/write (atomic tmp+rename), reload OK\n"
    n_vectors bytes write_ms;
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_robust/1");
        ("smoke", Util.Json.Bool smoke);
        ("reps", Util.Json.Int reps);
        ("plain_s", Util.Json.Float t_plain);
        ("budgeted_s", Util.Json.Float t_budgeted);
        ("measured_overhead_pct", Util.Json.Float measured_pct);
        ("check_ns", Util.Json.Float check_ns);
        ("polls_per_rep", Util.Json.Int polls_per_rep);
        ("modelled_overhead_pct", Util.Json.Float modelled_pct);
        ("bound_pct", Util.Json.Float 2.0);
        ( "checkpoint",
          Util.Json.Obj
            [
              ("vectors", Util.Json.Int n_vectors);
              ("bytes", Util.Json.Int bytes);
              ("write_ms", Util.Json.Float write_ms);
              ("reload_ok", Util.Json.Bool load_ok);
            ] );
      ]
  in
  Util.Json.write_file out json;
  match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_robust/1") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E18: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E18: %s failed to parse: %s" out e)

(* ------------------------------------------------------------------ *)
(* E21: model counting (lib/count)                                     *)
(* ------------------------------------------------------------------ *)

(* Exact #SAT throughput (cubes and solver calls per second, certified
   overhead), the approximate counter's cost across an (ε, δ) grid, and
   exact-vs-approx agreement — asserted, not just reported. *)
let bench_count ?(smoke = false) ~out () =
  section "E21 bench_count (exact #SAT + (ε, δ) XOR-hash estimation)";
  let qnet = small_qnet () in
  let sinput = [| 112; 87 |] in
  let slabel = Nn.Qnet.predict qnet sinput in
  (* Exact counting on the network encoding, plain and certified. *)
  let deltas = if smoke then [ 3; 5 ] else [ 3; 5; 8; 12 ] in
  let exact_rows =
    List.map
      (fun delta ->
        let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
        let count certify () =
          Fannet.Robustness.probability
            ~mode:(Fannet.Robustness.Exact_mode { certify })
            qnet spec ~input:sinput ~label:slabel
        in
        let r, t_plain = time_of (count false) in
        let rc, t_cert = time_of (count true) in
        if not (Util.Bigcount.equal r.Fannet.Robustness.flips rc.Fannet.Robustness.flips)
        then failwith "E21: certified and plain exact counts disagree";
        if rc.Fannet.Robustness.certificate = None then
          failwith "E21: certified run produced no certificate";
        let calls = r.Fannet.Robustness.solver_calls in
        Printf.printf
          "exact delta %2d: %s/%s flips, %d solver calls, %.4fs plain, %.4fs \
           certified (x%.1f)\n"
          delta
          (Util.Bigcount.to_string r.Fannet.Robustness.flips)
          (Util.Bigcount.to_string r.Fannet.Robustness.total)
          calls t_plain t_cert
          (t_cert /. Float.max 1e-9 t_plain);
        ( delta,
          r.Fannet.Robustness.flips,
          r.Fannet.Robustness.total,
          calls,
          t_plain,
          t_cert ))
      deltas
  in
  (* Tight-ε approx on the network must short-circuit to the exact count. *)
  let delta0 = List.hd deltas in
  let spec0 = Fannet.Noise.symmetric ~delta:delta0 ~bias_noise:false in
  let exact0 =
    Fannet.Robustness.probability qnet spec0 ~input:sinput ~label:slabel
  in
  let tight =
    Fannet.Robustness.probability
      ~mode:(Fannet.Robustness.Approx_mode { epsilon = 0.1; delta = 0.2; seed = 1 })
      qnet spec0 ~input:sinput ~label:slabel
  in
  if not (Util.Bigcount.equal tight.Fannet.Robustness.flips exact0.Fannet.Robustness.flips)
  then failwith "E21: tight-ε approx disagrees with the exact flip count";
  print_endline "tight-ε approx short-circuits to the exact flip count: OK";
  (* (ε, δ) grid on a synthetic space large enough to force XOR rounds. *)
  let x = Smtlite.Term.var ~name:"bx" ~lo:0 ~hi:63 in
  let y = Smtlite.Term.var ~name:"by" ~lo:0 ~hi:63 in
  let f = Smtlite.Term.le (Smtlite.Term.of_var x) (Smtlite.Term.of_var y) in
  let truth = float_of_int (64 * 65 / 2) in
  let grid =
    if smoke then [ (0.8, 0.2) ] else [ (0.8, 0.2); (0.5, 0.2); (0.8, 0.05) ]
  in
  let approx_rows =
    List.map
      (fun (epsilon, delta) ->
        let a, t =
          time_of (fun () ->
              Count.Approx.count ~epsilon ~delta ~seed:3 f ~project:[ x; y ])
        in
        let est = Util.Bigcount.ratio a.Count.Approx.estimate Util.Bigcount.one in
        let within =
          est >= truth /. (1. +. epsilon) && est <= truth *. (1. +. epsilon)
        in
        (* Seed 3 is fixed, so this is a deterministic regression gate on
           the (ε, δ) guarantee, not a flaky statistical check. *)
        if not within then
          failwith
            (Printf.sprintf "E21: (%.2f, %.2f) estimate %.0f outside the envelope"
               epsilon delta est);
        Printf.printf
          "approx (%.2f, %.2f): estimate %.0f (truth %.0f), %d rounds, %d solver \
           calls, %.4fs\n"
          epsilon delta est truth a.Count.Approx.rounds a.Count.Approx.solver_calls t;
        (epsilon, delta, est, a.Count.Approx.rounds, a.Count.Approx.solver_calls, t))
      grid
  in
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_count/1");
        ("smoke", Util.Json.Bool smoke);
        ( "exact",
          Util.Json.List
            (List.map
               (fun (delta, flips, total, calls, t_plain, t_cert) ->
                 Util.Json.Obj
                   [
                     ("delta", Util.Json.Int delta);
                     ("flips", Util.Bigcount.to_json flips);
                     ("total", Util.Bigcount.to_json total);
                     ("solver_calls", Util.Json.Int calls);
                     ("plain_s", Util.Json.Float t_plain);
                     ("certified_s", Util.Json.Float t_cert);
                   ])
               exact_rows) );
        ( "approx",
          Util.Json.List
            (List.map
               (fun (epsilon, delta, est, rounds, calls, t) ->
                 Util.Json.Obj
                   [
                     ("epsilon", Util.Json.Float epsilon);
                     ("delta", Util.Json.Float delta);
                     ("estimate", Util.Json.Float est);
                     ("truth", Util.Json.Float truth);
                     ("rounds", Util.Json.Int rounds);
                     ("solver_calls", Util.Json.Int calls);
                     ("time_s", Util.Json.Float t);
                   ])
               approx_rows) );
        ("tight_eps_agrees", Util.Json.Bool true);
      ]
  in
  Util.Json.write_file out json;
  match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_count/1") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E21: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E21: %s failed to parse: %s" out e)

(* ------------------------------------------------------------------ *)
(* E22: deep & binarized scaling ladder                                *)
(* ------------------------------------------------------------------ *)

(* Scaling ladder over {6, 64, 784} inputs x {2, 3, 4} weight layers x
   {relu-quantized, binarized} (Nn.Ladder rungs, one fixed seed): per
   rung and noise delta, the interval backend and budgeted Bnb verdicts
   with times; on gene-panel-sized rungs additionally the explicit
   enumerator cross-check, the exact flip count against brute-force
   enumeration, and a certified verdict re-checked by lib/cert. The
   precision gap is asserted, not just reported: the 64-input 3-layer
   relu rung must be Unknown for pure interval bounds yet decided by the
   symbolic-bounds Bnb within budget, and the deep binarized rung must
   yield a concrete (revalidated) counterexample. *)
let bench_ladder ?(smoke = false) ~out () =
  section "E22 bench_ladder (deep & binarized scaling ladder)";
  let seed = 60 in
  let budget_s = 5.0 in
  let decided = function
    | Fannet.Backend.Robust | Fannet.Backend.Flip _ -> true
    | Fannet.Backend.Unknown _ -> false
  in
  let shapes =
    if smoke then [ (6, 2); (6, 3); (64, 3); (64, 4) ]
    else
      [ (6, 2); (6, 3); (6, 4); (64, 2); (64, 3); (64, 4); (784, 2); (784, 3); (784, 4) ]
  in
  let deltas = if smoke then [ 1 ] else [ 1; 2 ] in
  let interval_gap = ref [] in
  let rows =
    List.concat_map
      (fun family ->
        List.concat_map
          (fun (n_inputs, n_layers) ->
            let r = Nn.Ladder.rung ~family ~n_inputs ~n_layers ~seed in
            let id = Nn.Ladder.rung_id r in
            let input = r.Nn.Ladder.input and label = r.Nn.Ladder.label in
            let qnet = r.Nn.Ladder.qnet in
            List.map
              (fun delta ->
                (* The smoke grid carries the two asserted gap rungs at
                   their asserted deltas; everything else runs delta 1. *)
                let delta =
                  if smoke && family = Nn.Ladder.Relu_quantized && n_inputs = 64
                  then 2
                  else delta
                in
                let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
                let itv, itv_s =
                  time_of (fun () ->
                      Fannet.Backend.exists_flip Fannet.Backend.Interval qnet
                        spec ~input ~label)
                in
                let bnb, bnb_s =
                  time_of (fun () ->
                      let budget = Resil.Budget.create ~timeout_s:budget_s () in
                      Fannet.Backend.exists_flip ~budget Fannet.Backend.Bnb qnet
                        spec ~input ~label)
                in
                if (not (decided itv)) && decided bnb then
                  interval_gap := Printf.sprintf "%s d=%d" id delta :: !interval_gap;
                (* Small rungs: the explicit enumerator must agree with
                   Bnb on the same query — the fuzz oracle's agreement
                   notion, here on ladder-shaped networks. *)
                let explicit_agrees =
                  if
                    n_inputs = 6 && delta = 1
                    && Fannet.Noise.spec_size spec ~n_inputs
                       <= Fannet.Backend.default_explicit_limit
                  then begin
                    let ex =
                      Fannet.Backend.exists_flip
                        (Fannet.Backend.Explicit
                           { limit = Fannet.Backend.default_explicit_limit })
                        qnet spec ~input ~label
                    in
                    if not (Fannet.Backend.agree ex bnb) then
                      failwith
                        (Printf.sprintf
                           "E22: %s d=%d: explicit %s disagrees with bnb %s" id
                           delta
                           (Fannet.Backend.verdict_to_string ex)
                           (Fannet.Backend.verdict_to_string bnb));
                    Some true
                  end
                  else None
                in
                Printf.printf "%-22s d=%d: interval %-9s %6.3fs  bnb %-9s %6.3fs%s\n%!"
                  id delta
                  (match itv with
                  | Fannet.Backend.Unknown _ -> "unknown"
                  | v -> Fannet.Backend.verdict_to_string v)
                  itv_s
                  (match bnb with
                  | Fannet.Backend.Flip _ -> "flip"
                  | Fannet.Backend.Unknown _ -> "unknown"
                  | v -> Fannet.Backend.verdict_to_string v)
                  bnb_s
                  (match explicit_agrees with
                  | Some true -> "  explicit agrees"
                  | _ -> "");
                ( id, family, n_inputs, n_layers, delta, itv, bnb, bnb_s,
                  explicit_agrees ))
              deltas)
          shapes)
      Nn.Ladder.families
  in
  (* Asserted precision gap: symbolic bounds beat interval propagation on
     the wide 3-layer relu rung, and the deep binarized rung has a real,
     revalidated counterexample. *)
  let find fam n_inputs n_layers delta =
    List.find_opt
      (fun (_, f, ni, nl, d, _, _, _, _) ->
        f = fam && ni = n_inputs && nl = n_layers && d = delta)
      rows
  in
  (match find Nn.Ladder.Relu_quantized 64 3 2 with
  | Some (_, _, _, _, _, itv, bnb, _, _) ->
      if decided itv then
        failwith "E22: interval unexpectedly decided relu-quantized/64x3 d=2";
      if not (decided bnb) then
        failwith "E22: bnb failed to decide relu-quantized/64x3 d=2 within budget"
  | None when smoke -> failwith "E22: smoke grid lost the relu 64x3 gap rung"
  | None -> ());
  (match find Nn.Ladder.Binarized 64 4 1 with
  | Some (_, _, _, _, _, _, bnb, _, _) -> (
      match bnb with
      | Fannet.Backend.Flip _ -> ()
      | v ->
          failwith
            (Printf.sprintf "E22: binarized/64x4 d=1 expected a flip, got %s"
               (Fannet.Backend.verdict_to_string v)))
  | None -> failwith "E22: grid lost the binarized 64x4 rung");
  if !interval_gap = [] then
    failwith "E22: no rung separated interval bounds from symbolic Bnb";
  (* Gene-panel-sized rungs: exact flip counts on the fragile probe vs
     brute-force enumeration, and a certified verdict (DRUP refutation or
     model, sign comparators included) re-checked by lib/cert. *)
  let small_layers = if smoke then [ 2; 3 ] else [ 2; 3; 4 ] in
  let count_rows =
    List.concat_map
      (fun family ->
        List.map
          (fun n_layers ->
            let r = Nn.Ladder.rung ~family ~n_inputs:6 ~n_layers ~seed in
            let id = Nn.Ladder.rung_id r in
            let qnet = r.Nn.Ladder.qnet in
            let input = r.Nn.Ladder.fragile in
            let label = Nn.Qnet.predict qnet input in
            let delta = 1 in
            let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
            let brute = ref 0 in
            Fannet.Noise.iter_vectors spec ~n_inputs:6 (fun v ->
                if Fannet.Noise.predict qnet spec ~input v <> label then
                  incr brute);
            let rep, count_s =
              time_of (fun () ->
                  Fannet.Robustness.probability qnet spec ~input ~label)
            in
            if rep.Fannet.Robustness.status <> Ok () then
              failwith (Printf.sprintf "E22: %s count did not finish" id);
            if
              not
                (Util.Bigcount.equal rep.Fannet.Robustness.flips
                   (Util.Bigcount.of_int !brute))
            then
              failwith
                (Printf.sprintf "E22: %s d=%d count %s <> brute-force %d" id
                   delta
                   (Util.Bigcount.to_string rep.Fannet.Robustness.flips)
                   !brute);
            let certified, cert_s =
              if (not smoke) || n_layers = 2 then begin
                let spec1 = Fannet.Noise.symmetric ~delta:1 ~bias_noise:false in
                let cv, cert_s =
                  time_of (fun () ->
                      Fannet.Backend.certified_exists_flip qnet spec1
                        ~input:r.Nn.Ladder.input ~label:r.Nn.Ladder.label)
                in
                (match
                   Fannet.Backend.check_certified qnet spec1
                     ~input:r.Nn.Ladder.input ~label:r.Nn.Ladder.label cv
                 with
                | Ok () -> ()
                | Error e ->
                    failwith (Printf.sprintf "E22: %s certificate: %s" id e));
                (true, cert_s)
              end
              else (false, 0.0)
            in
            Printf.printf
              "%-22s d=%d: %d/%d flips (brute-force agrees), %.3fs%s\n%!" id
              delta !brute
              (Fannet.Noise.spec_size spec ~n_inputs:6)
              count_s
              (if certified then Printf.sprintf "; certified %.3fs" cert_s
               else "");
            (id, delta, !brute, count_s, certified, cert_s))
          small_layers)
      Nn.Ladder.families
  in
  if not (List.exists (fun (_, _, brute, _, _, _) -> brute > 0) count_rows)
  then failwith "E22: every fragile-probe count was zero — vacuous cross-check";
  let verdict_json v =
    Util.Json.String
      (match v with
      | Fannet.Backend.Robust -> "robust"
      | Fannet.Backend.Flip _ -> "flip"
      | Fannet.Backend.Unknown _ -> "unknown")
  in
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_ladder/1");
        ("smoke", Util.Json.Bool smoke);
        ("seed", Util.Json.Int seed);
        ("budget_s", Util.Json.Float budget_s);
        ( "rungs",
          Util.Json.List
            (List.map
               (fun (id, _, n_inputs, n_layers, delta, itv, bnb, bnb_s, ex) ->
                 Util.Json.Obj
                   ([
                      ("id", Util.Json.String id);
                      ("n_inputs", Util.Json.Int n_inputs);
                      ("n_layers", Util.Json.Int n_layers);
                      ("delta", Util.Json.Int delta);
                      ("interval", verdict_json itv);
                      ("bnb", verdict_json bnb);
                      ("bnb_s", Util.Json.Float bnb_s);
                    ]
                   @
                   match ex with
                   | Some b -> [ ("explicit_agrees", Util.Json.Bool b) ]
                   | None -> []))
               rows) );
        ( "counts",
          Util.Json.List
            (List.map
               (fun (id, delta, flips, count_s, certified, cert_s) ->
                 Util.Json.Obj
                   [
                     ("id", Util.Json.String id);
                     ("delta", Util.Json.Int delta);
                     ("flips", Util.Json.Int flips);
                     ("count_s", Util.Json.Float count_s);
                     ("certified", Util.Json.Bool certified);
                     ("certified_s", Util.Json.Float cert_s);
                   ])
               count_rows) );
        ( "interval_gap",
          Util.Json.List
            (List.map (fun s -> Util.Json.String s) (List.rev !interval_gap)) );
      ]
  in
  Util.Json.write_file out json;
  match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_ladder/1") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E22: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E22: %s failed to parse: %s" out e)

(* ------------------------------------------------------------------ *)
(* E20: serving layer (fannetd)                                        *)
(* ------------------------------------------------------------------ *)

module SP = Serve.Protocol

(* An in-process fannetd on an ephemeral TCP port, driven over the real
   wire: qps and latency percentiles under concurrent clients, the cache
   hit rate, and the cold / warm-session / cache-hit latency contrast —
   with the bit-identity of cached certified verdicts asserted on the
   encoded answer bytes. *)
let bench_serve ?(smoke = false) ~out () =
  let net = small_qnet () in
  let sinput = [| 112; 87 |] in
  let slabel = Nn.Qnet.predict net sinput in
  let serve_daemon ?(procs = 0) ?store_path ~workers ~cap ~cache_cap_bytes () =
    Serve.Daemon.run
      {
        Serve.Daemon.addr = Serve.Daemon.Tcp ("127.0.0.1", 0);
        workers;
        cap;
        cache_cap_bytes;
        timeout_ceiling_s = None;
        procs;
        store_path;
      }
  in
  let with_conn d f =
    let c = Serve.Client.connect (Serve.Daemon.address d) in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)
  in
  let load c = match Serve.Client.load c net with
    | Ok digest -> digest
    | Error e -> failwith ("E20: load failed: " ^ e)
  in
  let timed_query c ~digest q =
    let t0 = Obs.Clock.now_ns () in
    match Serve.Client.query c ~digest q with
    | Ok (SP.Answer { cached; answer }) ->
        (1e3 *. Obs.Clock.elapsed_s ~since:t0, cached, answer)
    | Ok r ->
        failwith
          ("E20: unexpected reply "
          ^ SP.encode_reply { SP.rid = 0; reply = r })
    | Error e -> failwith ("E20: query failed: " ^ e)
  in
  (* =============================================================== *)
  (* E23: crash isolation. Runs FIRST — the supervised fleet forks    *)
  (* worker processes, and Unix.fork is refused for the lifetime of   *)
  (* an OCaml 5 process once any domain has been created in it, so    *)
  (* these measurements must precede every in-process daemon below.   *)
  (* =============================================================== *)
  section "E23 bench_serve (crash isolation: kill schedule, journal recovery)";
  let e23 =
    let store_path = Filename.temp_file "fannet_bench_chaos" ".store" in
    Sys.remove store_path;
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists store_path then Sys.remove store_path)
    @@ fun () ->
    let kill_every = 5 in
    let n_clients = if smoke then 8 else 16 in
    let per_client = if smoke then 4 else 8 in
    let query_for k j =
      let input = [| 100 + (per_client * k) + j; 80 - k |] in
      let label = Nn.Qnet.predict net input in
      let spec d' = Fannet.Noise.symmetric ~delta:d' ~bias_noise:false in
      match j mod 3 with
      | 0 ->
          SP.Exists_flip
            { backend = Fannet.Backend.Bnb; spec = spec (1 + (j mod 2)); input; label }
      | 1 -> SP.Certify { spec = spec 2; input; label }
      | _ ->
          SP.Tolerance
            { backend = Fannet.Backend.Bnb; bias_noise = false; max_delta = 4; input; label }
    in
    Resil.Faultpoint.clear ();
    Resil.Faultpoint.arm (Printf.sprintf "serve.worker.kill%%%d" kill_every);
    let d =
      serve_daemon ~procs:2 ~workers:2 ~cap:64 ~cache_cap_bytes:(1 lsl 26)
        ~store_path ()
    in
    let reference = query_for 0 1 (* a certify query; journaled below *) in
    let availability, deaths, restarts, wall_s, reference_bytes =
      Fun.protect ~finally:(fun () -> Serve.Daemon.stop d) @@ fun () ->
      let digest = with_conn d load in
      let decided = Atomic.make 0 and untyped = Atomic.make 0 in
      let ref_bytes = ref "" in
      let t0 = Obs.Clock.now_ns () in
      let client k () =
        with_conn d @@ fun c ->
        for j = 0 to per_client - 1 do
          match Serve.Client.query c ~digest ~retries:5 (query_for k j) with
          | Ok (SP.Answer { answer; _ }) when SP.answer_decided answer ->
              Atomic.incr decided;
              if k = 0 && j = 1 then
                ref_bytes := Util.Json.to_string (SP.answer_json answer)
          | Ok (SP.Answer _ | SP.Overloaded _ | SP.Server_error _) -> ()
          | Ok _ | Error _ -> Atomic.incr untyped
        done
      in
      let threads = Array.init n_clients (fun k -> Thread.create (client k) ()) in
      Array.iter Thread.join threads;
      let wall_s = Obs.Clock.elapsed_s ~since:t0 in
      (* The reference certify must end the soak journaled, and
         certificate replies are far larger than bare verdicts — they
         essentially never win the race against a receipt-triggered
         kill. Ask again with the soak traffic quiesced: the schedule
         still kills every [kill_every] receipts, but these retries are
         now the only receipts, so at most one death interrupts them. *)
      (if !ref_bytes = "" then
         with_conn d (fun c ->
             match Serve.Client.query c ~digest ~retries:8 (query_for 0 1) with
             | Ok (SP.Answer { answer; _ }) when SP.answer_decided answer ->
                 ref_bytes := Util.Json.to_string (SP.answer_json answer)
             | Ok _ -> failwith "E23: post-soak reference certify did not decide"
             | Error e -> failwith ("E23: post-soak reference certify: " ^ e)));
      if Atomic.get untyped > 0 then
        failwith "E23: untyped client failure under the kill schedule";
      let s = Serve.Daemon.stats d in
      if s.SP.submitted <> s.SP.served + s.SP.rejected + s.SP.failed then
        failwith "E23: served + rejected + failed <> submitted under chaos";
      let restarts, deaths =
        match Serve.Daemon.supervisor_stats d with
        | Some rd -> rd
        | None -> failwith "E23: supervised daemon reports no fleet stats"
      in
      if deaths < 1 then failwith "E23: the kill schedule never fired";
      let availability =
        float_of_int (Atomic.get decided) /. float_of_int (n_clients * per_client)
      in
      if availability <= 0. then failwith "E23: no query survived the kill schedule";
      (availability, deaths, restarts, wall_s, !ref_bytes)
    in
    Resil.Faultpoint.clear ();
    (* Restart-recovery latency: reopening the journal and warming the
       cache is part of Daemon.run. *)
    let t0 = Obs.Clock.now_ns () in
    let d2 = serve_daemon ~workers:2 ~cap:8 ~cache_cap_bytes:(1 lsl 26) ~store_path () in
    let recovery_ms = 1e3 *. Obs.Clock.elapsed_s ~since:t0 in
    Fun.protect ~finally:(fun () -> Serve.Daemon.stop d2) @@ fun () ->
    let recovered =
      match Serve.Daemon.store_stats d2 with
      | Some st -> st.Serve.Store.recovered
      | None -> failwith "E23: restarted daemon reports no store stats"
    in
    if recovered < 1 then failwith "E23: journal recovered no records";
    with_conn d2 @@ fun c ->
    let digest = load c in
    (* Warm-loss vs store-hit: the restart lost every warm session, but a
       journaled answer is a cache hit — no recompute at all. *)
    let store_hit_ms, cached, hit_answer = timed_query c ~digest reference in
    if not cached then failwith "E23: journaled answer missed the recovered cache";
    if
      reference_bytes <> ""
      && reference_bytes <> Util.Json.to_string (SP.answer_json hit_answer)
    then failwith "E23: recovered answer not bit-identical to its pre-crash bytes";
    let fresh =
      SP.Certify
        {
          spec = Fannet.Noise.symmetric ~delta:2 ~bias_noise:false;
          input = [| 7; 93 |];
          label = Nn.Qnet.predict net [| 7; 93 |];
        }
    in
    let recompute_ms, cached_fresh, _ = timed_query c ~digest fresh in
    if cached_fresh then failwith "E23: a never-journaled query cannot hit the cache";
    if store_hit_ms >= recompute_ms then
      failwith
        (Printf.sprintf "E23: store hit (%.3f ms) not faster than recompute (%.2f ms)"
           store_hit_ms recompute_ms);
    Printf.printf
      "kill every %d: availability %.1f%%, %d deaths, %d restarts, %.2f s wall\n"
      kill_every (100. *. availability) deaths restarts wall_s;
    Printf.printf
      "restart: %d records recovered in %.2f ms; store hit %.3f ms vs %.2f ms recompute\n"
      recovered recovery_ms store_hit_ms recompute_ms;
    Util.Json.Obj
      [
        ("kill_every", Util.Json.Int kill_every);
        ("clients", Util.Json.Int n_clients);
        ("queries", Util.Json.Int (n_clients * per_client));
        ("availability", Util.Json.Float availability);
        ("worker_deaths", Util.Json.Int deaths);
        ("worker_restarts", Util.Json.Int restarts);
        ("wall_s", Util.Json.Float wall_s);
        ( "recovery",
          Util.Json.Obj
            [
              ("recovered_records", Util.Json.Int recovered);
              ("open_ms", Util.Json.Float recovery_ms);
              ("store_hit_ms", Util.Json.Float store_hit_ms);
              ("recompute_ms", Util.Json.Float recompute_ms);
            ] );
      ]
  in
  section "E20 bench_serve (fannetd: qps, latency, cache + warm contrast)";
  (* --- cold / warm-session contrast ------------------------------ *)
  (* One resident worker, cache disabled: the first tolerance query pays
     the full bit-blast (cold); the repeat reuses the worker domain's
     pooled warm session. A fresh daemon per rep makes every cold truly
     cold; min-of-reps suppresses scheduler noise. *)
  let tol_q =
    SP.Tolerance
      {
        backend = Fannet.Backend.Smt;
        bias_noise = false;
        max_delta = 20;
        input = sinput;
        label = slabel;
      }
  in
  let reps = if smoke then 3 else 5 in
  let colds = Array.make reps infinity and warms = Array.make reps infinity in
  for r = 0 to reps - 1 do
    let d = serve_daemon ~workers:1 ~cap:8 ~cache_cap_bytes:0 () in
    Fun.protect ~finally:(fun () -> Serve.Daemon.stop d) @@ fun () ->
    with_conn d @@ fun c ->
    let digest = load c in
    let cold, cached_c, _ = timed_query c ~digest tol_q in
    let warm, cached_w, _ = timed_query c ~digest tol_q in
    if cached_c || cached_w then failwith "E20: cache_cap=0 daemon served a cached answer";
    colds.(r) <- cold;
    warms.(r) <- warm
  done;
  let minimum a = Array.fold_left min a.(0) a in
  let cold_ms = minimum colds and warm_ms = minimum warms in
  (* --- cache-hit contrast + certified bit-identity --------------- *)
  let d = serve_daemon ~workers:1 ~cap:8 ~cache_cap_bytes:(1 lsl 26) () in
  let cache_hit_ms, cert_bit_identical =
    Fun.protect ~finally:(fun () -> Serve.Daemon.stop d) @@ fun () ->
    with_conn d @@ fun c ->
    let digest = load c in
    let _miss, cached0, _ = timed_query c ~digest tol_q in
    if cached0 then failwith "E20: first query cannot be a cache hit";
    let hit_reps = if smoke then 5 else 20 in
    let hits =
      Array.init hit_reps (fun _ ->
          let ms, cached, _ = timed_query c ~digest tol_q in
          if not cached then failwith "E20: repeat query missed the cache";
          ms)
    in
    (* A certified verdict through the cache must come back bit-identical
       to the cold answer and still convince the independent checker. *)
    let spec = Fannet.Noise.symmetric ~delta:8 ~bias_noise:false in
    let cert_q = SP.Certify { spec; input = sinput; label = slabel } in
    let _, _, cold_answer = timed_query c ~digest cert_q in
    let _, cached_hit, hit_answer = timed_query c ~digest cert_q in
    if not cached_hit then failwith "E20: certify repeat missed the cache";
    let bytes a = Util.Json.to_string (SP.answer_json a) in
    let identical = bytes cold_answer = bytes hit_answer in
    (match hit_answer with
    | SP.Certified { verdict; cert } -> (
        match
          Fannet.Backend.check_certified net spec ~input:sinput ~label:slabel
            { Fannet.Backend.cv_verdict = verdict; cv_cert = cert }
        with
        | Ok () -> ()
        | Error e -> failwith ("E20: cached certificate rejected: " ^ e))
    | _ -> failwith "E20: certify answered with a non-certified form");
    (minimum hits, identical)
  in
  Printf.printf
    "tolerance query: %.2f ms cold, %.2f ms warm session, %.3f ms cache hit (min of %d reps)\n"
    cold_ms warm_ms cache_hit_ms reps;
  if warm_ms >= cold_ms then
    failwith
      (Printf.sprintf "E20: warm session (%.2f ms) not faster than cold (%.2f ms)"
         warm_ms cold_ms);
  if cache_hit_ms >= cold_ms then
    failwith
      (Printf.sprintf "E20: cache hit (%.3f ms) not faster than cold (%.2f ms)"
         cache_hit_ms cold_ms);
  if not cert_bit_identical then
    failwith "E20: cached certified verdict not bit-identical to the cold one";
  (* --- throughput under concurrent clients ----------------------- *)
  let workers = max 2 (min 4 (Util.Parallel.default_jobs ())) in
  let n_clients = if smoke then 8 else 16 in
  let per_client = if smoke then 25 else 100 in
  let d = serve_daemon ~workers ~cap:64 ~cache_cap_bytes:(1 lsl 26) () in
  let wall_s, lat_ms, stats =
    Fun.protect ~finally:(fun () -> Serve.Daemon.stop d) @@ fun () ->
    let digest = with_conn d load in
    let lat = Array.make (n_clients * per_client) 0.0 in
    (* A small set of distinct queries: the steady state is cache-served,
       which is the workload the daemon exists for. *)
    let queries =
      Array.init 8 (fun i ->
          let spec = Fannet.Noise.symmetric ~delta:(1 + (i mod 4)) ~bias_noise:false in
          if i < 6 then
            SP.Exists_flip
              { backend = Fannet.Backend.Bnb; spec; input = sinput; label = slabel }
          else SP.Certify { spec; input = sinput; label = slabel })
    in
    let t0 = Obs.Clock.now_ns () in
    let client k () =
      with_conn d @@ fun c ->
      for j = 0 to per_client - 1 do
        let ms, _, _ =
          timed_query c ~digest queries.((k + j) mod Array.length queries)
        in
        lat.((k * per_client) + j) <- ms
      done
    in
    let threads = Array.init n_clients (fun k -> Thread.create (client k) ()) in
    Array.iter Thread.join threads;
    (Obs.Clock.elapsed_s ~since:t0, lat, Serve.Daemon.stats d)
  in
  let total = n_clients * per_client in
  let qps = float_of_int total /. wall_s in
  let p50 = Util.Stats.percentile lat_ms 50. in
  let p99 = Util.Stats.percentile lat_ms 99. in
  let hit_rate =
    float_of_int stats.SP.cache_hits
    /. float_of_int (max 1 (stats.SP.cache_hits + stats.SP.cache_misses))
  in
  Printf.printf
    "%d clients x %d queries: %.0f qps, p50 %.2f ms, p99 %.2f ms, cache hit rate %.1f%%\n"
    n_clients per_client qps p50 p99 (100. *. hit_rate);
  if stats.SP.submitted <> stats.SP.served + stats.SP.rejected + stats.SP.failed then
    failwith "E20: served + rejected + failed <> submitted";
  if stats.SP.failed > 0 then failwith "E20: server errors during the load run";
  let json =
    Util.Json.Obj
      [
        ("schema", Util.Json.String "fannet.bench_serve/2");
        ("smoke", Util.Json.Bool smoke);
        ("crash_isolation", e23);
        ("workers", Util.Json.Int workers);
        ("clients", Util.Json.Int n_clients);
        ("queries_per_client", Util.Json.Int per_client);
        ("total_queries", Util.Json.Int total);
        ("wall_s", Util.Json.Float wall_s);
        ("qps", Util.Json.Float qps);
        ("p50_ms", Util.Json.Float p50);
        ("p99_ms", Util.Json.Float p99);
        ( "cache",
          Util.Json.Obj
            [
              ("hits", Util.Json.Int stats.SP.cache_hits);
              ("misses", Util.Json.Int stats.SP.cache_misses);
              ("hit_rate", Util.Json.Float hit_rate);
            ] );
        ( "contrast_ms",
          Util.Json.Obj
            [
              ("reps", Util.Json.Int reps);
              ("cold", Util.Json.Float cold_ms);
              ("warm_session", Util.Json.Float warm_ms);
              ("cache_hit", Util.Json.Float cache_hit_ms);
            ] );
        ("cert_cache_bit_identical", Util.Json.Bool cert_bit_identical);
        ( "accounting",
          Util.Json.Obj
            [
              ("submitted", Util.Json.Int stats.SP.submitted);
              ("served", Util.Json.Int stats.SP.served);
              ("rejected", Util.Json.Int stats.SP.rejected);
              ("failed", Util.Json.Int stats.SP.failed);
            ] );
      ]
  in
  Util.Json.write_file out json;
  match Util.Json.parse_file out with
  | Ok reread
    when Util.Json.member "schema" reread
         = Some (Util.Json.String "fannet.bench_serve/2") ->
      Printf.printf "%s written and re-parsed OK\n" out
  | Ok _ -> failwith (Printf.sprintf "E20: %s lost its schema tag" out)
  | Error e -> failwith (Printf.sprintf "E20: %s failed to parse: %s" out e)

(* ------------------------------------------------------------------ *)
(* Bechamel timing suite                                               *)
(* ------------------------------------------------------------------ *)

let timing_suite (p : Fannet.Pipeline.t) =
  section "timing (Bechamel, monotonic clock)";
  let open Bechamel in
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let input, label = inputs.(0) in
  let spec20 = Fannet.Noise.symmetric ~delta:20 ~bias_noise in
  let spec12 = Fannet.Noise.symmetric ~delta:12 ~bias_noise in
  let v = Fannet.Noise.zero ~n_inputs:5 in
  let fsm_prog =
    Smv.Translate.network_program p.qnet
      { Smv.Translate.delta_lo = 0; delta_hi = 1; bias_noise; samples = [ (input, label) ] }
  in
  let tiny = Dataset.Golub.generate ~params:Dataset.Golub.tiny_params ~seed:3 () in
  let tests =
    Test.make_grouped ~name:"fannet"
      [
        Test.make ~name:"qnet_forward"
          (Staged.stage (fun () -> Nn.Qnet.forward p.qnet input));
        Test.make ~name:"noise_predict"
          (Staged.stage (fun () -> Fannet.Noise.predict p.qnet spec20 ~input v));
        Test.make ~name:"bnb_query_d20"
          (Staged.stage (fun () -> Fannet.Bnb.exists_flip p.qnet spec20 ~input ~label));
        Test.make ~name:"bnb_enumerate_d12"
          (Staged.stage (fun () ->
               Fannet.Bnb.enumerate_flips ~limit:500 p.qnet spec12 ~input ~label));
        Test.make ~name:"interval_bounds_d20"
          (Staged.stage (fun () -> Fannet.Backend.output_bounds p.qnet spec20 ~input));
        Test.make ~name:"fsm_explore_0_1pct"
          (Staged.stage (fun () -> Smv.Fsm.explore fsm_prog));
        Test.make ~name:"mrmr_tiny_dataset"
          (Staged.stage (fun () -> Dataset.Mrmr.select tiny.Dataset.Golub.train ~k:5 ~bins:3));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let table = Util.Table.create ~header:[ "benchmark"; "time per run" ] in
  let pretty_ns ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, ols) ->
         let estimate =
           match Analyze.OLS.estimates ols with
           | Some (e :: _) -> pretty_ns e
           | Some [] | None -> "n/a"
         in
         Util.Table.add_row table [ name; estimate ]);
  Util.Table.print table

(* ------------------------------------------------------------------ *)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let cert_only = Array.exists (( = ) "--cert") Sys.argv in
  let robust_only = Array.exists (( = ) "--robust") Sys.argv in
  let parallel_only = Array.exists (( = ) "--parallel") Sys.argv in
  let obs_only = Array.exists (( = ) "--obs") Sys.argv in
  let serve_only = Array.exists (( = ) "--serve") Sys.argv in
  let count_only = Array.exists (( = ) "--count") Sys.argv in
  let ladder_only = Array.exists (( = ) "--ladder") Sys.argv in
  let out =
    let rec find i =
      if i >= Array.length Sys.argv then "BENCH_parallel.json"
      else if Sys.argv.(i) = "-o" && i + 1 < Array.length Sys.argv then
        Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  if parallel_only then begin
    (* bench --parallel: E15 + E19 only, smoke-sized — the no-regression
       gate `make check` runs. Verdict-equality, certificate and
       no-regression assertions all fail the process; speedup > 1 is
       asserted only on multi-core hardware and full-sized runs. *)
    print_endline "FANNet bench (parallel engine gate)";
    print_endline "===================================";
    let p = Fannet.Pipeline.run ~config:Fannet.Pipeline.fast_config () in
    bench_parallel ~smoke:true p ~out;
    print_endline "\nParallel bench completed."
  end
  else if serve_only then begin
    (* bench --serve: E20 only — an in-process fannetd under concurrent
       wire-protocol clients; no pipeline needed. *)
    print_endline "FANNet bench (serving layer)";
    print_endline "============================";
    bench_serve ~smoke ~out:"BENCH_serve.json" ();
    print_endline "\nServing bench completed."
  end
  else if ladder_only then begin
    (* bench --ladder: E22 only — the deep & binarized scaling ladder;
       no pipeline needed. With --smoke it runs the asserted subset
       (`make ladder-smoke`, part of `make check`). *)
    print_endline "FANNet bench (scaling ladder)";
    print_endline "=============================";
    bench_ladder ~smoke ~out:"BENCH_ladder.json" ();
    print_endline "\nLadder bench completed."
  end
  else if count_only then begin
    (* bench --count: E21 only — counting on the small network plus a
       synthetic XOR-hash workload; no pipeline needed. *)
    print_endline "FANNet bench (model counting)";
    print_endline "=============================";
    bench_count ~smoke ~out:"BENCH_count.json" ();
    print_endline "\nCounting bench completed."
  end
  else if obs_only then begin
    (* bench --obs: the observability section only; no pipeline needed. *)
    print_endline "FANNet bench (observability layer)";
    print_endline "==================================";
    bench_obs ~smoke ~out:"BENCH_obs.json" ();
    print_endline "\nObservability bench completed."
  end
  else if robust_only then begin
    (* bench --robust: the resilience section only; no pipeline needed. *)
    print_endline "FANNet bench (resilience layer)";
    print_endline "===============================";
    bench_robust ~smoke ~out:"BENCH_robust.json" ();
    print_endline "\nResilience bench completed."
  end
  else if cert_only then begin
    (* bench --cert: the certificate section only; no pipeline needed. *)
    print_endline "FANNet bench (certificate subsystem)";
    print_endline "====================================";
    bench_cert ~smoke ~out:"BENCH_cert.json" ();
    print_endline "\nCertificate bench completed."
  end
  else if smoke then begin
    (* bench-smoke: the parallel/cascade and certificate sections only, on
       the small-dataset pipeline, validating that BENCH_parallel.json and
       BENCH_cert.json are emitted and parse. *)
    print_endline "FANNet bench smoke (parallel engine)";
    print_endline "====================================";
    (* The serving section runs first: E23 forks supervised worker
       processes, and OCaml 5 refuses Unix.fork once any domain has
       ever been created — every other section below spins up the
       domain pool. *)
    bench_serve ~smoke:true ~out:"BENCH_serve.json" ();
    let p = Fannet.Pipeline.run ~config:Fannet.Pipeline.fast_config () in
    bench_parallel ~smoke p ~out;
    bench_cert ~smoke:true ~out:"BENCH_cert.json" ();
    bench_obs ~smoke:true ~out:"BENCH_obs.json" ();
    bench_robust ~smoke:true ~out:"BENCH_robust.json" ();
    bench_count ~smoke:true ~out:"BENCH_count.json" ();
    bench_ladder ~smoke:true ~out:"BENCH_ladder.json" ();
    print_endline "\nSmoke bench completed."
  end
  else begin
    print_endline "FANNet reproduction benchmarks";
    print_endline "==============================";
    (* Serving first: E23 forks supervised worker processes, and
       OCaml 5 refuses Unix.fork once any domain has ever been
       created — the pipeline and every later section spin up the
       domain pool. *)
    bench_serve ~smoke:false ~out:"BENCH_serve.json" ();
    let p, pipeline_s = time_of (fun () -> Fannet.Pipeline.run ()) in
    Printf.printf "pipeline (dataset -> mRMR -> train -> fold -> quantize): %.2fs\n"
      pipeline_s;
    fig3_state_space p;
    fig4_tolerance_sweep p;
    fig4_training_bias p;
    fig4_node_sensitivity p;
    fig4_boundary p;
    accuracy_table p;
    ablation_backends p;
    ablation_random_baseline p;
    ablation_training_objective ();
    ablation_quantization p;
    ablation_hidden_width ();
    ablation_feature_selection ();
    extension_multiclass ();
    extension_absolute_noise p;
    bench_parallel ~smoke:false p ~out;
    bench_cert ~smoke:false ~out:"BENCH_cert.json" ();
    bench_obs ~smoke:false ~out:"BENCH_obs.json" ();
    bench_robust ~smoke:false ~out:"BENCH_robust.json" ();
    bench_count ~smoke:false ~out:"BENCH_count.json" ();
    bench_ladder ~smoke:false ~out:"BENCH_ladder.json" ();
    timing_suite p;
    print_endline "\nAll experiment sections completed."
  end
