(* Tests for the bit-blasting layer: gate semantics and bit-vector
   arithmetic checked against native integer arithmetic. *)

module Cnf = Bitblast.Cnf
module Bv = Bitblast.Bv

let solve_and_read b lits =
  match Sat.Solver.solve (Cnf.solver b) with
  | Sat.Solver.Sat -> Some (List.map (Cnf.lit_value b) lits)
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Unknown -> Alcotest.fail "unexpected unknown"

(* Force two fresh literals to specific values and check a gate output. *)
let check_gate name make expected =
  List.iter
    (fun (va, vb) ->
      let b = Cnf.create () in
      let a = Cnf.fresh b and c = Cnf.fresh b in
      let o = make b a c in
      Cnf.assert_lit b (if va then a else Cnf.g_not a);
      Cnf.assert_lit b (if vb then c else Cnf.g_not c);
      match solve_and_read b [ o ] with
      | Some [ vo ] ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %b %b" name va vb)
            (expected va vb) vo
      | _ -> Alcotest.fail "unsat gate env")
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_gate_and () = check_gate "and" (fun b x y -> Cnf.g_and b x y) ( && )

let test_gate_or () = check_gate "or" (fun b x y -> Cnf.g_or b x y) ( || )

let test_gate_xor () = check_gate "xor" (fun b x y -> Cnf.g_xor b x y) ( <> )

let test_gate_iff () = check_gate "iff" (fun b x y -> Cnf.g_iff b x y) ( = )

let test_gate_implies () =
  check_gate "implies" (fun b x y -> Cnf.g_implies b x y) (fun x y -> (not x) || y)

let test_gate_constant_folding () =
  let b = Cnf.create () in
  let a = Cnf.fresh b in
  Alcotest.(check bool) "and false" true
    (Sat.Lit.equal (Cnf.g_and b a (Cnf.bfalse b)) (Cnf.bfalse b));
  Alcotest.(check bool) "and true" true
    (Sat.Lit.equal (Cnf.g_and b a (Cnf.btrue b)) a);
  Alcotest.(check bool) "xor self" true
    (Sat.Lit.equal (Cnf.g_xor b a a) (Cnf.bfalse b));
  Alcotest.(check bool) "xor neg self" true
    (Sat.Lit.equal (Cnf.g_xor b a (Cnf.g_not a)) (Cnf.btrue b));
  Alcotest.(check bool) "mux same" true
    (Sat.Lit.equal (Cnf.g_mux b ~sel:(Cnf.fresh b) ~if_true:a ~if_false:a) a)

let test_mux_semantics () =
  List.iter
    (fun (sel, x, y) ->
      let b = Cnf.create () in
      let s = Cnf.fresh b and a = Cnf.fresh b and c = Cnf.fresh b in
      let o = Cnf.g_mux b ~sel:s ~if_true:a ~if_false:c in
      Cnf.assert_lit b (if sel then s else Cnf.g_not s);
      Cnf.assert_lit b (if x then a else Cnf.g_not a);
      Cnf.assert_lit b (if y then c else Cnf.g_not c);
      match solve_and_read b [ o ] with
      | Some [ vo ] ->
          Alcotest.(check bool) "mux" (if sel then x else y) vo
      | _ -> Alcotest.fail "unsat mux env")
    [ (true, true, false); (true, false, true); (false, true, false); (false, false, true) ]

(* ---------- bitvector constants and arithmetic ---------- *)

let eval_const_expr f =
  (* Build an expression over constants and decode it from the model. *)
  let b = Cnf.create () in
  let bv = f b in
  match Sat.Solver.solve (Cnf.solver b) with
  | Sat.Solver.Sat -> Bv.to_int b bv
  | Sat.Solver.Unsat | Sat.Solver.Unknown -> Alcotest.fail "const expr unsat"

let test_const_roundtrip () =
  List.iter
    (fun v ->
      let got = eval_const_expr (fun b -> Bv.const b ~width:9 v) in
      Alcotest.(check int) (Printf.sprintf "const %d" v) v got)
    [ 0; 1; -1; 255; -256; 100; -100 ]

let test_const_width_check () =
  let b = Cnf.create () in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Bv.const: 128 does not fit 8 bits") (fun () ->
      ignore (Bv.const b ~width:8 128))

let test_add_sub_neg_consts () =
  let w = 12 in
  List.iter
    (fun (x, y) ->
      let sum = eval_const_expr (fun b -> Bv.add b (Bv.const b ~width:w x) (Bv.const b ~width:w y)) in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) sum;
      let diff = eval_const_expr (fun b -> Bv.sub b (Bv.const b ~width:w x) (Bv.const b ~width:w y)) in
      Alcotest.(check int) (Printf.sprintf "%d-%d" x y) (x - y) diff)
    [ (5, 7); (-5, 7); (100, -100); (-3, -4); (0, 0) ]

let test_mul_const () =
  let w = 20 in
  List.iter
    (fun (c, x) ->
      let got = eval_const_expr (fun b -> Bv.mul_const b (Bv.const b ~width:w x) c) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" c x) (c * x) got)
    [ (3, 7); (-3, 7); (3, -7); (0, 42); (1, -9); (-1, -9); (13, 21); (100, 50) ]

let test_sign_extend_preserves_value () =
  List.iter
    (fun v ->
      let got =
        eval_const_expr (fun b -> Bv.sign_extend (Bv.const b ~width:6 v) 14)
      in
      Alcotest.(check int) (Printf.sprintf "extend %d" v) v got)
    [ 0; 31; -32; -1; 7 ]

let test_relu_smax () =
  List.iter
    (fun v ->
      let got = eval_const_expr (fun b -> Bv.relu b (Bv.const b ~width:10 v)) in
      Alcotest.(check int) (Printf.sprintf "relu %d" v) (max 0 v) got)
    [ 5; -5; 0; 255; -256 ];
  List.iter
    (fun (x, y) ->
      let got =
        eval_const_expr (fun b ->
            Bv.smax b (Bv.const b ~width:10 x) (Bv.const b ~width:10 y))
      in
      Alcotest.(check int) (Printf.sprintf "max %d %d" x y) (max x y) got)
    [ (3, 9); (9, 3); (-3, -9); (-9, 3); (0, 0) ]

let check_cmp_lit b l expected label =
  match Sat.Solver.solve (Cnf.solver b) with
  | Sat.Solver.Sat -> Alcotest.(check bool) label expected (Cnf.lit_value b l)
  | Sat.Solver.Unsat | Sat.Solver.Unknown -> Alcotest.fail "cmp env unsat"

let test_comparisons () =
  List.iter
    (fun (x, y) ->
      let b = Cnf.create () in
      (* One extra bit so the difference fits, per the documented contract. *)
      let bx = Bv.const b ~width:12 x and by = Bv.const b ~width:12 y in
      check_cmp_lit b (Bv.slt b bx by) (x < y) (Printf.sprintf "%d<%d" x y);
      let b2 = Cnf.create () in
      let bx = Bv.const b2 ~width:12 x and by = Bv.const b2 ~width:12 y in
      check_cmp_lit b2 (Bv.sle b2 bx by) (x <= y) (Printf.sprintf "%d<=%d" x y);
      let b3 = Cnf.create () in
      let bx = Bv.const b3 ~width:12 x and by = Bv.const b3 ~width:12 y in
      check_cmp_lit b3 (Bv.eq b3 bx by) (x = y) (Printf.sprintf "%d=%d" x y))
    [ (3, 9); (9, 3); (-7, 2); (2, -7); (-5, -5); (0, 0); (1000, -1000) ]

(* Property: symbolic addition agrees with integer addition for fresh
   vectors constrained to chosen values. *)
let prop_symbolic_add =
  QCheck.Test.make ~name:"symbolic add matches int add" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range (-500) 500) (int_range (-500) 500)))
    (fun (x, y) ->
      let b = Cnf.create () in
      let w = 13 in
      let vx = Bv.fresh b ~width:w and vy = Bv.fresh b ~width:w in
      Cnf.assert_lit b (Bv.eq b vx (Bv.const b ~width:w x));
      Cnf.assert_lit b (Bv.eq b vy (Bv.const b ~width:w y));
      let sum = Bv.add b vx vy in
      match Sat.Solver.solve (Cnf.solver b) with
      | Sat.Solver.Sat -> Bv.to_int b sum = x + y
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> false)

let prop_symbolic_mul_const =
  QCheck.Test.make ~name:"symbolic mul_const matches int mul" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range (-20) 20) (int_range (-200) 200)))
    (fun (c, x) ->
      let b = Cnf.create () in
      let w = 16 in
      let vx = Bv.fresh b ~width:w in
      Cnf.assert_lit b (Bv.eq b vx (Bv.const b ~width:w x));
      let product = Bv.mul_const b vx c in
      match Sat.Solver.solve (Cnf.solver b) with
      | Sat.Solver.Sat -> Bv.to_int b product = c * x
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> false)

let () =
  Alcotest.run "bitblast"
    [
      ( "gates",
        [
          Alcotest.test_case "and" `Quick test_gate_and;
          Alcotest.test_case "or" `Quick test_gate_or;
          Alcotest.test_case "xor" `Quick test_gate_xor;
          Alcotest.test_case "iff" `Quick test_gate_iff;
          Alcotest.test_case "implies" `Quick test_gate_implies;
          Alcotest.test_case "constant folding" `Quick test_gate_constant_folding;
          Alcotest.test_case "mux" `Quick test_mux_semantics;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "const roundtrip" `Quick test_const_roundtrip;
          Alcotest.test_case "const width check" `Quick test_const_width_check;
          Alcotest.test_case "add/sub/neg" `Quick test_add_sub_neg_consts;
          Alcotest.test_case "mul_const" `Quick test_mul_const;
          Alcotest.test_case "sign extend" `Quick test_sign_extend_preserves_value;
          Alcotest.test_case "relu/smax" `Quick test_relu_smax;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          QCheck_alcotest.to_alcotest prop_symbolic_add;
          QCheck_alcotest.to_alcotest prop_symbolic_mul_const;
        ] );
    ]
