(* Tests for the dataset library: samples, CSV, synthetic Golub generator,
   mutual information and mRMR selection. *)

let test_label_roundtrip () =
  Alcotest.(check int) "L0" 0 (Dataset.Sample.label_to_int L0);
  Alcotest.(check int) "L1" 1 (Dataset.Sample.label_to_int L1);
  Alcotest.(check bool) "roundtrip L0" true
    (Dataset.Sample.label_equal (Dataset.Sample.label_of_int 0) L0);
  Alcotest.(check bool) "roundtrip L1" true
    (Dataset.Sample.label_equal (Dataset.Sample.label_of_int 1) L1);
  Alcotest.check_raises "bad label" (Invalid_argument "Sample.label_of_int: 2")
    (fun () -> ignore (Dataset.Sample.label_of_int 2))

let test_project () =
  let s = { Dataset.Sample.features = [| 10; 20; 30; 40 |]; label = L0 } in
  let p = Dataset.Sample.project s [| 3; 1 |] in
  Alcotest.(check (array int)) "projected" [| 40; 20 |] p.Dataset.Sample.features;
  Alcotest.(check bool) "label kept" true (Dataset.Sample.label_equal p.label L0)

let test_class_share () =
  let mk label = { Dataset.Sample.features = [||]; label } in
  let samples = [| mk Dataset.Sample.L1; mk L1; mk L1; mk L0 |] in
  Alcotest.(check (float 1e-9)) "share L1" 0.75 (Dataset.Sample.class_share samples L1);
  Alcotest.(check int) "count L0" 1 (Dataset.Sample.count_label samples L0)

let with_temp_dir f =
  let dir = Filename.temp_file "fannet" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_csv_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "t.csv" in
      let table = [| [| 1; -2; 3 |]; [| 4; 5; 6 |] |] in
      Dataset.Csv.write_int_table path table;
      let back = Dataset.Csv.read_int_table path in
      Alcotest.(check bool) "roundtrip" true (table = back))

let test_csv_rejects_separator () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.csv" in
      Alcotest.check_raises "comma in cell"
        (Invalid_argument "Csv.write: cell contains separator: a,b") (fun () ->
          Dataset.Csv.write path [ [ "a,b" ] ]))

let tiny = Dataset.Golub.tiny_params

let test_golub_shape () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:1 () in
  Alcotest.(check int) "train size" 20 (Array.length d.train);
  Alcotest.(check int) "test size" 15 (Array.length d.test);
  Alcotest.(check int) "genes" 64 d.n_genes;
  Array.iter
    (fun (s : Dataset.Sample.t) ->
      Alcotest.(check int) "feature count" 64 (Array.length s.features))
    (Array.append d.train d.test)

let test_golub_deterministic () =
  let d1 = Dataset.Golub.generate ~params:tiny ~seed:5 () in
  let d2 = Dataset.Golub.generate ~params:tiny ~seed:5 () in
  Alcotest.(check bool) "same data" true (d1.train = d2.train && d1.test = d2.test)

let test_golub_seed_sensitivity () =
  let d1 = Dataset.Golub.generate ~params:tiny ~seed:5 () in
  let d2 = Dataset.Golub.generate ~params:tiny ~seed:6 () in
  Alcotest.(check bool) "different data" true (d1.train <> d2.train)

let test_golub_class_balance () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:1 () in
  Alcotest.(check int) "train L0" 6 (Dataset.Sample.count_label d.train L0);
  Alcotest.(check int) "train L1" 14 (Dataset.Sample.count_label d.train L1);
  (* The paper's training bias: majority class share ~70 %. *)
  Alcotest.(check (float 0.01)) "bias" 0.7 (Dataset.Sample.class_share d.train L1)

let test_golub_positive_expressions () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:2 () in
  Array.iter
    (fun (s : Dataset.Sample.t) ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "within [1, 50000]" true (v >= 1 && v <= 50000))
        s.features)
    (Array.append d.train d.test)

let test_golub_informative_genes_marked () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:3 () in
  Alcotest.(check int) "count" tiny.n_informative (Array.length d.informative);
  Array.iter
    (fun g -> Alcotest.(check bool) "index in range" true (g >= 0 && g < 64))
    d.informative;
  let sorted = Array.copy d.informative in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted unique" true
    (sorted = d.informative
    && Array.length (Array.of_seq (Seq.map Fun.id (Array.to_seq sorted))) = Array.length sorted)

let test_golub_save_load () =
  with_temp_dir (fun dir ->
      let d = Dataset.Golub.generate ~params:tiny ~seed:4 () in
      Dataset.Golub.save ~dir d;
      let back = Dataset.Golub.load ~dir ~n_genes:d.n_genes ~informative:d.informative in
      Alcotest.(check bool) "train roundtrip" true (d.train = back.train);
      Alcotest.(check bool) "test roundtrip" true (d.test = back.test))

let test_discretize_bins () =
  let values = Array.init 100 (fun i -> i) in
  let bins = Dataset.Mutual_info.discretize values ~bins:4 in
  Array.iter (fun b -> Alcotest.(check bool) "bin range" true (b >= 0 && b < 4)) bins;
  (* Equal-frequency binning on uniform data: each bin gets ~25. *)
  let counts = Array.make 4 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) bins;
  Array.iter (fun c -> Alcotest.(check bool) "balanced" true (c >= 20 && c <= 30)) counts

let test_discretize_monotone () =
  let values = [| 5; 1; 9; 3; 7 |] in
  let bins = Dataset.Mutual_info.discretize values ~bins:2 in
  (* Larger values never land in smaller bins than smaller values. *)
  Array.iteri
    (fun i vi ->
      Array.iteri
        (fun j vj ->
          if vi < vj then
            Alcotest.(check bool) "monotone" true (bins.(i) <= bins.(j)))
        values)
    values

let test_mi_identical () =
  let xs = [| 0; 1; 0; 1; 0; 1; 0; 1 |] in
  let mi = Dataset.Mutual_info.mutual_information xs xs in
  let h = Dataset.Mutual_info.entropy xs in
  Alcotest.(check (float 1e-9)) "MI(X;X) = H(X)" h mi;
  Alcotest.(check (float 1e-9)) "H of fair bit" (log 2.) h

let test_mi_independent () =
  (* Independent uniform bits: MI = 0 on the exact joint distribution. *)
  let xs = [| 0; 0; 1; 1 |] and ys = [| 0; 1; 0; 1 |] in
  Alcotest.(check (float 1e-9)) "zero" 0. (Dataset.Mutual_info.mutual_information xs ys)

let test_mi_symmetric () =
  let xs = [| 0; 1; 2; 0; 1; 2; 0; 0 |] and ys = [| 1; 1; 0; 0; 1; 0; 1; 1 |] in
  Alcotest.(check (float 1e-12)) "symmetric"
    (Dataset.Mutual_info.mutual_information xs ys)
    (Dataset.Mutual_info.mutual_information ys xs)

let test_mrmr_finds_informative () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:7 () in
  let picked = Dataset.Mrmr.select d.train ~k:5 ~bins:3 in
  Alcotest.(check int) "five genes" 5 (Array.length picked);
  (* All picks distinct. *)
  let sorted = Array.copy picked in
  Array.sort compare sorted;
  let distinct = Array.length sorted in
  let dedup = List.sort_uniq compare (Array.to_list sorted) in
  Alcotest.(check int) "distinct" distinct (List.length dedup);
  (* Most picks should be genuinely informative genes. *)
  let informative = Array.to_list d.informative in
  let hits =
    Array.fold_left
      (fun acc g -> if List.mem g informative then acc + 1 else acc)
      0 picked
  in
  Alcotest.(check bool) (Printf.sprintf "at least 3/5 informative (%d)" hits)
    true (hits >= 3)

let test_mrmr_first_is_max_relevance () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:8 () in
  let scores = Dataset.Mrmr.select_with_scores d.train ~k:3 ~bins:3 in
  let ranking = Dataset.Mrmr.relevance_ranking d.train ~bins:3 in
  let top_gene, top_rel = ranking.(0) in
  Alcotest.(check int) "first pick = max relevance" top_gene scores.(0).gene;
  Alcotest.(check (float 1e-9)) "relevance recorded" top_rel scores.(0).relevance;
  Alcotest.(check (float 1e-9)) "first redundancy zero" 0. scores.(0).redundancy

let test_mrmr_k_bounds () =
  let d = Dataset.Golub.generate ~params:tiny ~seed:9 () in
  Alcotest.check_raises "k too large" (Invalid_argument "Mrmr.select: k out of range")
    (fun () -> ignore (Dataset.Mrmr.select d.train ~k:65 ~bins:3))

(* ---------- real-CSV loader ---------- *)

let sample_csv =
  String.concat "\n"
    [
      "\"ALL\",\"ALL\",\"ALL\",\"AML\",\"AML\"";
      "12.3,45.6,7.0,-3.2,100.9";
      "1,2,3,4,5";
      "0.4,0.6,-0.4,2.5,-2.5";
    ]

let test_golub_csv_parse () =
  match Dataset.Golub_csv.parse ~n_train:3 sample_csv with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check int) "genes" 3 d.n_genes;
      Alcotest.(check int) "train" 3 (Array.length d.train);
      Alcotest.(check int) "test" 2 (Array.length d.test);
      (* ALL -> L1, AML -> L0. *)
      Array.iter
        (fun (s : Dataset.Sample.t) ->
          Alcotest.(check bool) "train all ALL" true
            (Dataset.Sample.label_equal s.label Dataset.Sample.L1))
        d.train;
      Array.iter
        (fun (s : Dataset.Sample.t) ->
          Alcotest.(check bool) "test all AML" true
            (Dataset.Sample.label_equal s.label Dataset.Sample.L0))
        d.test;
      (* Values rounded: first sample = (12.3, 1, 0.4) -> (12, 1, 0). *)
      Alcotest.(check (array int)) "first sample" [| 12; 1; 0 |]
        d.train.(0).Dataset.Sample.features;
      (* Rounding of halves and negatives. *)
      Alcotest.(check (array int)) "fourth sample" [| -3; 4; 3 |]
        d.test.(0).Dataset.Sample.features

let test_golub_csv_bad_header () =
  match Dataset.Golub_csv.parse "\"x\",\"y\"\n1,2\n" with
  | Error msg -> Alcotest.(check bool) "labels" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected header error"

let test_golub_csv_ragged_row () =
  let text = "\"ALL\",\"AML\"\n1,2\n3\n" in
  match Dataset.Golub_csv.parse ~n_train:1 text with
  | Error msg -> Alcotest.(check bool) "row size" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected row error"

let test_golub_csv_n_train_bounds () =
  match Dataset.Golub_csv.parse ~n_train:5 sample_csv with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected n_train error"

(* ---------- multiclass ---------- *)

let small_mc_params =
  {
    Dataset.Multiclass.default_params with
    n_genes = 48;
    n_informative = 9;
    train_per_class = [| 8; 6; 4 |];
    test_per_class = [| 4; 3; 3 |];
  }

let test_multiclass_shape () =
  let d = Dataset.Multiclass.generate ~params:small_mc_params ~seed:1 () in
  Alcotest.(check int) "train" 18 (Array.length d.train);
  Alcotest.(check int) "test" 10 (Array.length d.test);
  Alcotest.(check int) "classes" 3 d.n_classes;
  Array.iter
    (fun (x, l) ->
      Alcotest.(check int) "features" 48 (Array.length x);
      Alcotest.(check bool) "label" true (l >= 0 && l < 3))
    (Array.append d.train d.test)

let test_multiclass_counts () =
  let d = Dataset.Multiclass.generate ~params:small_mc_params ~seed:2 () in
  Alcotest.(check (array int)) "train counts" [| 8; 6; 4 |]
    (Dataset.Multiclass.class_counts d.train ~n_classes:3);
  Alcotest.(check (array int)) "test counts" [| 4; 3; 3 |]
    (Dataset.Multiclass.class_counts d.test ~n_classes:3)

let test_multiclass_deterministic () =
  let d1 = Dataset.Multiclass.generate ~params:small_mc_params ~seed:3 () in
  let d2 = Dataset.Multiclass.generate ~params:small_mc_params ~seed:3 () in
  Alcotest.(check bool) "same" true (d1.train = d2.train && d1.test = d2.test)

let test_multiclass_select_and_project () =
  let d = Dataset.Multiclass.generate ~params:small_mc_params ~seed:4 () in
  let genes = Dataset.Multiclass.select_genes d ~k:4 ~bins:3 in
  Alcotest.(check int) "k genes" 4 (Array.length genes);
  let distinct = List.sort_uniq compare (Array.to_list genes) in
  Alcotest.(check int) "distinct" 4 (List.length distinct);
  (* Most selected genes are informative. *)
  let informative = Array.to_list d.informative in
  let hits =
    Array.fold_left (fun acc g -> if List.mem g informative then acc + 1 else acc) 0 genes
  in
  Alcotest.(check bool) (Printf.sprintf "informative hits %d >= 3" hits) true (hits >= 3);
  let projected = Dataset.Multiclass.project d ~genes in
  Array.iteri
    (fun i (x, l) ->
      Alcotest.(check int) "projected size" 4 (Array.length x);
      let orig, ol = d.train.(i) in
      Alcotest.(check int) "label kept" ol l;
      Array.iteri
        (fun j g -> Alcotest.(check int) "value" orig.(g) x.(j))
        genes)
    projected.train

let test_multiclass_validation () =
  Alcotest.check_raises "bad counts"
    (Invalid_argument "Multiclass: per-class counts mismatch") (fun () ->
      ignore
        (Dataset.Multiclass.generate
           ~params:{ small_mc_params with train_per_class = [| 1 |] }
           ~seed:1 ()))

let prop_mi_nonnegative =
  QCheck.Test.make ~name:"MI is non-negative" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (array_size (return 16) (int_range 0 3))
           (array_size (return 16) (int_range 0 2))))
    (fun (xs, ys) -> Dataset.Mutual_info.mutual_information xs ys >= -1e-12)

let prop_mi_bounded_by_entropy =
  QCheck.Test.make ~name:"MI <= min entropy" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (array_size (return 16) (int_range 0 3))
           (array_size (return 16) (int_range 0 3))))
    (fun (xs, ys) ->
      let mi = Dataset.Mutual_info.mutual_information xs ys in
      mi
      <= min
           (Dataset.Mutual_info.entropy xs)
           (Dataset.Mutual_info.entropy ys)
         +. 1e-9)

let () =
  Alcotest.run "dataset"
    [
      ( "sample",
        [
          Alcotest.test_case "label roundtrip" `Quick test_label_roundtrip;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "class share" `Quick test_class_share;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "rejects separator" `Quick test_csv_rejects_separator;
        ] );
      ( "golub",
        [
          Alcotest.test_case "shape" `Quick test_golub_shape;
          Alcotest.test_case "deterministic" `Quick test_golub_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_golub_seed_sensitivity;
          Alcotest.test_case "class balance" `Quick test_golub_class_balance;
          Alcotest.test_case "positive expressions" `Quick test_golub_positive_expressions;
          Alcotest.test_case "informative genes" `Quick test_golub_informative_genes_marked;
          Alcotest.test_case "save/load" `Quick test_golub_save_load;
        ] );
      ( "mutual-info",
        [
          Alcotest.test_case "discretize bins" `Quick test_discretize_bins;
          Alcotest.test_case "discretize monotone" `Quick test_discretize_monotone;
          Alcotest.test_case "MI(X;X)=H(X)" `Quick test_mi_identical;
          Alcotest.test_case "independent" `Quick test_mi_independent;
          Alcotest.test_case "symmetric" `Quick test_mi_symmetric;
          QCheck_alcotest.to_alcotest prop_mi_nonnegative;
          QCheck_alcotest.to_alcotest prop_mi_bounded_by_entropy;
        ] );
      ( "golub-csv",
        [
          Alcotest.test_case "parse" `Quick test_golub_csv_parse;
          Alcotest.test_case "bad header" `Quick test_golub_csv_bad_header;
          Alcotest.test_case "ragged row" `Quick test_golub_csv_ragged_row;
          Alcotest.test_case "n_train bounds" `Quick test_golub_csv_n_train_bounds;
          Alcotest.test_case "load missing file" `Quick (fun () ->
              match Dataset.Golub_csv.load "/nonexistent/golub.csv" with
              | Error _ -> ()
              | Ok _ -> Alcotest.fail "expected error");
        ] );
      ( "multiclass",
        [
          Alcotest.test_case "shape" `Quick test_multiclass_shape;
          Alcotest.test_case "class counts" `Quick test_multiclass_counts;
          Alcotest.test_case "deterministic" `Quick test_multiclass_deterministic;
          Alcotest.test_case "select and project" `Quick test_multiclass_select_and_project;
          Alcotest.test_case "validation" `Quick test_multiclass_validation;
        ] );
      ( "mrmr",
        [
          Alcotest.test_case "finds informative genes" `Quick test_mrmr_finds_informative;
          Alcotest.test_case "first pick max relevance" `Quick test_mrmr_first_is_max_relevance;
          Alcotest.test_case "k bounds" `Quick test_mrmr_k_bounds;
        ] );
    ]
