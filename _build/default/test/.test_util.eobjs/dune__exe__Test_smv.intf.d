test/test_smv.mli:
