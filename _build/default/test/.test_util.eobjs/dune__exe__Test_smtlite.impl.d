test/test_smtlite.ml: Alcotest List QCheck QCheck_alcotest Smtlite
