test/test_bitblast.mli:
