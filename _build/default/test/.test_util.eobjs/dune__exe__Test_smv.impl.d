test/test_smv.ml: Alcotest Array Fannet List Nn Printf QCheck QCheck_alcotest Smv String
