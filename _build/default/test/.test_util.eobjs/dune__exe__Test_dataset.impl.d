test/test_dataset.ml: Alcotest Array Dataset Filename Fun List Printf QCheck QCheck_alcotest Seq String Sys
