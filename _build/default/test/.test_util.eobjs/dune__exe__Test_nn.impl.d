test/test_nn.ml: Alcotest Array Filename Float Fun Nn Printf QCheck QCheck_alcotest Sys Tensor Util
