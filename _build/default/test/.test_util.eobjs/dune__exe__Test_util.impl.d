test/test_util.ml: Alcotest Array Float List String Util
