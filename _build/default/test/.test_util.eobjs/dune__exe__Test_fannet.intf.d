test/test_fannet.mli:
