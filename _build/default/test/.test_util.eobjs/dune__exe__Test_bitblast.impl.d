test/test_bitblast.ml: Alcotest Bitblast List Printf QCheck QCheck_alcotest Sat
