test/test_fannet.ml: Alcotest Array Dataset Fannet List Nn Printf QCheck QCheck_alcotest Smtlite String Util
