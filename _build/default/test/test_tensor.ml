(* Tests for the tensor library: vector/matrix algebra used by training. *)

module Vec = Tensor.Vec
module Mat = Tensor.Mat

let vecf = Alcotest.(array (float 1e-9))

let test_vec_basic_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.check vecf "add" [| 5.; 7.; 9. |] (Vec.add a b);
  Alcotest.check vecf "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  Alcotest.check vecf "mul" [| 4.; 10.; 18. |] (Vec.mul a b);
  Alcotest.check vecf "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  Alcotest.(check (float 1e-9)) "dot" 32. (Vec.dot a b)

let test_vec_length_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.map2: length mismatch") (fun () ->
      ignore (Vec.add [| 1. |] [| 1.; 2. |]))

let test_vec_argmax () =
  Alcotest.(check int) "simple" 2 (Vec.argmax [| 1.; 2.; 5.; 0. |]);
  Alcotest.(check int) "tie goes to first" 0 (Vec.argmax [| 3.; 3. |]);
  Alcotest.(check int) "negative values" 1 (Vec.argmax [| -5.; -1.; -2. |])

let test_vec_softmax () =
  let s = Vec.softmax [| 1.; 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Vec.sum s);
  Alcotest.(check bool) "monotone" true (s.(0) < s.(1) && s.(1) < s.(2));
  (* Large logits must not overflow. *)
  let big = Vec.softmax [| 1000.; 1001. |] in
  Alcotest.(check bool) "stable" true (Float.is_finite big.(0) && Float.is_finite big.(1))

let test_vec_one_hot () =
  Alcotest.check vecf "one hot" [| 0.; 1.; 0. |] (Vec.one_hot 3 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Vec.one_hot: index out of range") (fun () ->
      ignore (Vec.one_hot 2 5))

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy 2. [| 3.; 4. |] y;
  Alcotest.check vecf "y <- 2x + y" [| 7.; 9. |] y

let test_vec_norm () =
  Alcotest.(check (float 1e-9)) "norm2" 5. (Vec.norm2 [| 3.; 4. |])

let test_mat_init_get_set () =
  let m = Mat.init ~rows:2 ~cols:3 (fun r c -> float_of_int ((r * 10) + c)) in
  Alcotest.(check (float 0.)) "get 0 0" 0. (Mat.get m 0 0);
  Alcotest.(check (float 0.)) "get 1 2" 12. (Mat.get m 1 2);
  Mat.set m 1 2 99.;
  Alcotest.(check (float 0.)) "after set" 99. (Mat.get m 1 2);
  Alcotest.check_raises "oob" (Invalid_argument "Mat: index out of bounds")
    (fun () -> ignore (Mat.get m 2 0))

let test_mat_mul_vec () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  Alcotest.check vecf "mul_vec" [| 5.; 11.; 17. |] (Mat.mul_vec m [| 1.; 2. |]);
  Alcotest.check vecf "tmul_vec" [| 22.; 28. |] (Mat.tmul_vec m [| 1.; 2.; 3. |])

let test_mat_transpose_consistency () =
  let m = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let mt = Mat.transpose m in
  let x = [| 7.; 8. |] in
  Alcotest.check vecf "transpose mul = tmul" (Mat.tmul_vec m x) (Mat.mul_vec mt x)

let test_mat_outer () =
  let o = Mat.outer [| 1.; 2. |] [| 3.; 4.; 5. |] in
  Alcotest.(check (pair int int)) "dims" (2, 3) (Mat.dims o);
  Alcotest.(check (float 0.)) "o(1,2)" 10. (Mat.get o 1 2)

let test_mat_axpy () =
  let x = Mat.of_rows [| [| 1.; 2. |] |] in
  let y = Mat.of_rows [| [| 10.; 10. |] |] in
  Mat.axpy (-1.) x y;
  Alcotest.check vecf "row" [| 9.; 8. |] (Mat.row y 0)

let test_mat_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Mat.of_rows [| [| 1. |]; [| 1.; 2. |] |]))

let test_mat_row_col () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check vecf "row 1" [| 3.; 4. |] (Mat.row m 1);
  Alcotest.check vecf "col 0" [| 1.; 3. |] (Mat.col m 0)

(* Property tests on algebraic identities. *)

let vec_gen n = QCheck.Gen.(array_size (return n) (float_range (-100.) 100.))

let arb_vec n = QCheck.make (vec_gen n)

let prop_dot_symmetric =
  QCheck.Test.make ~name:"dot is symmetric" ~count:200
    (QCheck.pair (arb_vec 5) (arb_vec 5)) (fun (a, b) ->
      Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-6)

let prop_softmax_normalised =
  QCheck.Test.make ~name:"softmax sums to 1" ~count:200 (arb_vec 4) (fun a ->
      Float.abs (Vec.sum (Vec.softmax a) -. 1.) < 1e-9)

let prop_matvec_linear =
  QCheck.Test.make ~name:"M(x+y) = Mx + My" ~count:200
    (QCheck.pair (arb_vec 3) (arb_vec 3)) (fun (x, y) ->
      let m = Mat.of_rows [| [| 1.; -2.; 0.5 |]; [| 0.; 3.; 1. |] |] in
      Vec.approx_equal ~eps:1e-6
        (Mat.mul_vec m (Vec.add x y))
        (Vec.add (Mat.mul_vec m x) (Mat.mul_vec m y)))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose . transpose = id" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (r, c) ->
      let m = Mat.init ~rows:r ~cols:c (fun i j -> float_of_int ((i * 7) + j)) in
      Mat.approx_equal m (Mat.transpose (Mat.transpose m)))

let () =
  Alcotest.run "tensor"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic_ops;
          Alcotest.test_case "length mismatch" `Quick test_vec_length_mismatch;
          Alcotest.test_case "argmax" `Quick test_vec_argmax;
          Alcotest.test_case "softmax" `Quick test_vec_softmax;
          Alcotest.test_case "one_hot" `Quick test_vec_one_hot;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "norm2" `Quick test_vec_norm;
        ] );
      ( "mat",
        [
          Alcotest.test_case "init/get/set" `Quick test_mat_init_get_set;
          Alcotest.test_case "mul_vec/tmul_vec" `Quick test_mat_mul_vec;
          Alcotest.test_case "transpose consistency" `Quick test_mat_transpose_consistency;
          Alcotest.test_case "outer" `Quick test_mat_outer;
          Alcotest.test_case "axpy" `Quick test_mat_axpy;
          Alcotest.test_case "ragged rejected" `Quick test_mat_of_rows_ragged;
          Alcotest.test_case "row/col" `Quick test_mat_row_col;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_dot_symmetric;
          QCheck_alcotest.to_alcotest prop_softmax_normalised;
          QCheck_alcotest.to_alcotest prop_matvec_linear;
          QCheck_alcotest.to_alcotest prop_transpose_involution;
        ] );
    ]
