(* The paper's full case study (Sec. V): synthesise the Golub-like
   Leukemia dataset, select 5 genes with mRMR, train the 5-20-2 ReLU
   network, quantize it, validate it (P1), and run the noise-tolerance,
   training-bias and adversarial-extraction analyses.

   Run with: dune exec examples/leukemia_case_study.exe *)

let () =
  print_endline "FANNet case study: Leukemia diagnosis (paper Sec. V)";
  print_endline "----------------------------------------------------";

  (* 1. Behaviour extraction: dataset -> features -> training -> integer
     model. *)
  let p = Fannet.Pipeline.run () in
  Printf.printf "dataset: %d genes, %d train / %d test samples\n"
    p.dataset.Dataset.Golub.n_genes
    (Array.length p.dataset.Dataset.Golub.train)
    (Array.length p.dataset.Dataset.Golub.test);
  Printf.printf "majority class share in training: %.1f%% (the bias source)\n"
    (100. *. Dataset.Sample.class_share p.dataset.Dataset.Golub.train Dataset.Sample.L1);
  Printf.printf "mRMR-selected genes: %s\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int p.selected_genes)));
  Printf.printf "training accuracy: %.2f%%, test accuracy: %.2f%% (paper: 100%% / 94.12%%)\n"
    (100. *. p.train_accuracy) (100. *. p.test_accuracy);
  Printf.printf "P1 validation: %d/%d test inputs correct\n\n"
    p.p1.Fannet.Validate.n_correct p.p1.Fannet.Validate.n_total;

  let inputs = Fannet.Pipeline.analysis_inputs p in
  let bias_noise = true in

  (* 2. Noise tolerance (paper: +-11%). *)
  let tol =
    Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb p.qnet ~bias_noise
      ~max_delta:60 ~inputs
  in
  Printf.printf "network noise tolerance: +-%d%% (paper: +-11%%)\n\n" tol;

  (* 3. Misclassification growth with the noise range (Fig. 4). *)
  print_endline "misclassified inputs per noise range:";
  Fannet.Tolerance.sweep Fannet.Backend.Bnb p.qnet ~bias_noise
    ~deltas:[ 10; 15; 20; 25; 30 ] ~inputs
  |> List.iter (fun (pt : Fannet.Tolerance.sweep_point) ->
         Printf.printf "  +-%2d%%: %2d of %d\n" pt.delta pt.n_misclassified
           (Array.length inputs));

  (* 4. Adversarial noise-vector extraction (P3) and training bias. *)
  let delta = tol + 5 in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
  let cexs, _ = Fannet.Extract.for_inputs ~limit_per_input:200 p.qnet spec ~inputs in
  Printf.printf "\nadversarial corpus at +-%d%%: %d noise vectors\n" delta
    (List.length cexs);
  let report =
    Fannet.Bias.analyze ~n_classes:2
      ~training_labels:(Fannet.Pipeline.training_labels p)
      ~analysed_labels:(Array.map snd inputs) cexs
  in
  print_endline (Fannet.Bias.report_to_string report);

  (* 5. One concrete counterexample, shown end to end. *)
  match cexs with
  | [] -> print_endline "no counterexamples at this range"
  | (c : Fannet.Extract.counterexample) :: _ ->
      let input, _ = inputs.(c.input_index) in
      Printf.printf
        "\nexample: test input %d (true L%d) becomes L%d under noise %s\n"
        c.input_index c.true_label c.predicted
        (Fannet.Noise.to_string c.vector);
      let noisy_outputs = Fannet.Noise.apply p.qnet spec ~input c.vector in
      Printf.printf "noisy output nodes (x100 scale): [%s]\n"
        (String.concat "; " (Array.to_list (Array.map string_of_int noisy_outputs)))
