examples/multiclass_subtypes.mli:
