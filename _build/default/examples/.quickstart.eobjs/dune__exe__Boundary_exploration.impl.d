examples/boundary_exploration.ml: Array Fannet Printf String
