examples/multiclass_subtypes.ml: Array Dataset Fannet List Nn Printf String Util
