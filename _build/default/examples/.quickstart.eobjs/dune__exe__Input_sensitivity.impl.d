examples/input_sensitivity.ml: Array Fannet List Printf
