examples/boundary_exploration.mli:
