examples/leukemia_case_study.mli:
