examples/quickstart.mli:
