examples/quickstart.ml: Fannet List Nn Printf Smv String
