examples/leukemia_case_study.ml: Array Dataset Fannet List Printf String
