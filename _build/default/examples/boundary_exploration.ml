(* Classification-boundary exploration (paper Sec. V-C.2).

   For every correctly classified test input, binary-search the smallest
   noise range that can flip it. Inputs flipping at small ranges lie near
   the decision boundary; inputs that survive +-50% are deep inside their
   class region. The paper uses this to sketch the boundary's location in
   gene-expression space.

   Run with: dune exec examples/boundary_exploration.exe *)

let () =
  let p = Fannet.Pipeline.run () in
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let bias_noise = true in
  let max_delta = 50 in
  let points =
    Fannet.Boundary.analyze Fannet.Backend.Bnb p.qnet ~bias_noise ~max_delta ~inputs
  in

  (* Sort by fragility: nearest to the boundary first. *)
  let sorted = Array.copy points in
  Array.sort
    (fun (a : Fannet.Boundary.point) b ->
      let key (pt : Fannet.Boundary.point) =
        match pt.min_flip_delta with Some d -> d | None -> max_int
      in
      compare (key a) (key b))
    sorted;

  print_endline "inputs ordered by distance to the classification boundary:";
  print_endline "(bar length ~ min flipping noise; '>' = robust beyond the probe)";
  Array.iter
    (fun (pt : Fannet.Boundary.point) ->
      let bar, tag =
        match pt.min_flip_delta with
        | Some d -> (String.make (d / 2) '#', Printf.sprintf "+-%d%%" d)
        | None -> (String.make (max_delta / 2) '#' ^ ">", Printf.sprintf ">+-%d%%" max_delta)
      in
      Printf.printf "  input %2d (L%d) %-27s %s\n" pt.input_index pt.true_label bar tag)
    sorted;

  let near = Fannet.Boundary.near_boundary points ~threshold:15 in
  let robust = Fannet.Boundary.robust_at_probe points in
  Printf.printf "\nnear the boundary (flip within +-15%%): %d inputs\n" (Array.length near);
  Array.iter
    (fun (pt : Fannet.Boundary.point) ->
      Printf.printf "  input %d (true L%d): the paper's 'highly susceptible' case\n"
        pt.input_index pt.true_label)
    near;
  Printf.printf "deep inside their class (robust beyond +-%d%%): %d inputs\n" max_delta
    (Array.length robust);

  (* The noise-free output margin predicts the flip threshold. *)
  Printf.printf "\nmargin vs min-flip correlation: %.3f\n"
    (Fannet.Boundary.margin_flip_correlation points);
  print_endline
    "(a strong positive correlation corroborates reading the minimal\n\
    \ flipping range as a distance to the classification boundary)"
