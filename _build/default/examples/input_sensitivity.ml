(* Input-node sensitivity analysis (paper Sec. V-C.4).

   The paper's use case: when a node is one-sided — e.g. no counterexample
   carries positive noise at i5 — data acquisition can spend its precision
   budget asymmetrically, reserving accurate (expensive) measurement for
   the directions that can actually flip the diagnosis.

   Run with: dune exec examples/input_sensitivity.exe *)

let side_to_string = function
  | Fannet.Sensitivity.Never_positive -> "insensitive to positive noise"
  | Fannet.Sensitivity.Never_negative -> "insensitive to negative noise"
  | Fannet.Sensitivity.Both_sides -> "sensitive in both directions"
  | Fannet.Sensitivity.No_data -> "no counterexamples observed"

let () =
  let p = Fannet.Pipeline.run () in
  let inputs = Fannet.Pipeline.analysis_inputs p in
  let bias_noise = true in
  let tol =
    Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb p.qnet ~bias_noise
      ~max_delta:60 ~inputs
  in
  Printf.printf "tolerance +-%d%%; analysing sensitivity just above it\n\n" tol;

  (* Formal sidedness: for each node, ask the complete engine whether ANY
     counterexample exists with strictly positive (resp. negative) noise
     at that node. No corpus sampling bias. *)
  List.iter
    (fun delta ->
      let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
      Printf.printf "at +-%d%%:\n" delta;
      Fannet.Sensitivity.formal_sidedness p.qnet spec ~inputs
      |> Array.iter (fun (f : Fannet.Sensitivity.formal_side) ->
             Printf.printf "  %-4s %s\n"
               (if f.fs_node = 0 then "bias" else Printf.sprintf "i%d" f.fs_node)
               (side_to_string (Fannet.Sensitivity.formal_side_to_side f)));
      print_newline ())
    [ tol + 1; tol + 3; tol + 6 ];

  (* Corpus statistics: the sign distribution of each node's noise over
     the extracted counterexamples — the data behind the paper's Fig. 4
     scatter panels for i2 and i5. *)
  let delta = tol + 6 in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise in
  let cexs, _ = Fannet.Extract.for_inputs ~limit_per_input:300 p.qnet spec ~inputs in
  Printf.printf "corpus statistics at +-%d%% (%d counterexamples):\n" delta
    (List.length cexs);
  Fannet.Sensitivity.per_node spec ~n_inputs:5 cexs
  |> Array.iter (fun s ->
         print_endline ("  " ^ Fannet.Sensitivity.stats_to_string s));

  (* Quantitative ranking: the largest safe range when only one node is
     perturbed. Smaller value = the node demands more precision. *)
  let probe = Fannet.Noise.symmetric ~delta:60 ~bias_noise in
  print_endline "\nsingle-node tolerances (noise restricted to one node):";
  List.iter
    (fun node ->
      let t = Fannet.Sensitivity.single_node_tolerance p.qnet probe ~inputs ~node in
      Printf.printf "  %-4s %s\n"
        (if node = 0 then "bias" else Printf.sprintf "i%d" node)
        (match t with Some d -> Printf.sprintf "+-%d%%" d | None -> ">+-60%"))
    [ 0; 1; 2; 3; 4; 5 ];

  (* The acquisition recommendation the paper sketches. *)
  print_endline "\nvariable-precision acquisition plan:";
  let sides =
    Fannet.Sensitivity.formal_sidedness p.qnet
      (Fannet.Noise.symmetric ~delta:(tol + 3) ~bias_noise)
      ~inputs
  in
  Array.iter
    (fun (f : Fannet.Sensitivity.formal_side) ->
      let name = if f.fs_node = 0 then "bias" else Printf.sprintf "gene i%d" f.fs_node in
      match Fannet.Sensitivity.formal_side_to_side f with
      | Fannet.Sensitivity.Both_sides ->
          Printf.printf "  %-8s measure precisely in both directions\n" name
      | Fannet.Sensitivity.Never_positive ->
          Printf.printf "  %-8s under-measurement is harmless; guard against low readings\n" name
      | Fannet.Sensitivity.Never_negative ->
          Printf.printf "  %-8s over-measurement is harmless; guard against high readings\n" name
      | Fannet.Sensitivity.No_data ->
          Printf.printf "  %-8s no flip in range; cheap acquisition suffices\n" name)
    sides
