lib/bitblast/bv.ml: Array Cnf Printf Sat
