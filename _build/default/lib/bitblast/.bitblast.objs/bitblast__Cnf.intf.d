lib/bitblast/cnf.mli: Sat
