lib/bitblast/cnf.ml: List Sat
