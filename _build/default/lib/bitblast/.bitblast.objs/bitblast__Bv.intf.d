lib/bitblast/bv.mli: Cnf Sat
