type t = { bits : Sat.Lit.t array }

let width v = Array.length v.bits

let bits v = v.bits

let sign v = v.bits.(width v - 1)

let fits ~width value =
  width >= 1 && width <= 62
  && value >= -(1 lsl (width - 1))
  && value <= (1 lsl (width - 1)) - 1

let const b ~width value =
  if not (fits ~width value) then
    invalid_arg (Printf.sprintf "Bv.const: %d does not fit %d bits" value width);
  { bits = Array.init width (fun i -> Cnf.of_bool b ((value lsr i) land 1 = 1)) }

let fresh b ~width =
  if width < 1 then invalid_arg "Bv.fresh: width";
  { bits = Array.init width (fun _ -> Cnf.fresh b) }

let of_bits bits =
  if Array.length bits = 0 then invalid_arg "Bv.of_bits: empty";
  { bits }

let sign_extend v w =
  let cur = width v in
  if w < cur then invalid_arg "Bv.sign_extend: narrower target";
  if w = cur then v
  else
    let s = sign v in
    { bits = Array.init w (fun i -> if i < cur then v.bits.(i) else s) }

let check_same_width name x y =
  if width x <> width y then invalid_arg (name ^ ": width mismatch")

let add b x y =
  check_same_width "Bv.add" x y;
  let w = width x in
  let out = Array.make w (Cnf.bfalse b) in
  let carry = ref (Cnf.bfalse b) in
  for i = 0 to w - 1 do
    let sum, cout = Cnf.g_full_adder b x.bits.(i) y.bits.(i) !carry in
    out.(i) <- sum;
    carry := cout
  done;
  { bits = out }

let lognot v = { bits = Array.map Cnf.g_not v.bits }

let neg b v =
  (* -v = ~v + 1 *)
  let w = width v in
  let inverted = lognot v in
  let out = Array.make w (Cnf.bfalse b) in
  let carry = ref (Cnf.btrue b) in
  for i = 0 to w - 1 do
    let sum, cout = Cnf.g_full_adder b inverted.bits.(i) (Cnf.bfalse b) !carry in
    out.(i) <- sum;
    carry := cout
  done;
  { bits = out }

let sub b x y = add b x (neg b y)

let shift_left b v k =
  if k < 0 then invalid_arg "Bv.shift_left: negative shift";
  let w = width v in
  { bits = Array.init w (fun i -> if i < k then Cnf.bfalse b else v.bits.(i - k)) }

let zero b ~width = const b ~width 0

let mul_const b v c =
  let w = width v in
  if c = 0 then zero b ~width:w
  else begin
    let magnitude = abs c in
    let acc = ref None in
    let k = ref 0 in
    let m = ref magnitude in
    while !m > 0 do
      if !m land 1 = 1 then begin
        let shifted = shift_left b v !k in
        acc := Some (match !acc with None -> shifted | Some a -> add b a shifted)
      end;
      m := !m lsr 1;
      incr k
    done;
    let total = match !acc with Some a -> a | None -> assert false in
    if c > 0 then total else neg b total
  end

let eq b x y =
  check_same_width "Bv.eq" x y;
  let pairs = Array.to_list (Array.mapi (fun i xi -> Cnf.g_iff b xi y.bits.(i)) x.bits) in
  Cnf.g_and_list b pairs

let slt b x y =
  (* Sign bit of x - y; the compiler guarantees the difference fits. *)
  check_same_width "Bv.slt" x y;
  sign (sub b x y)

let sle b x y = Cnf.g_not (slt b y x)

let ite b sel x y =
  check_same_width "Bv.ite" x y;
  { bits = Array.mapi (fun i xi -> Cnf.g_mux b ~sel ~if_true:xi ~if_false:y.bits.(i)) x.bits }

let relu b v =
  let w = width v in
  ite b (sign v) (zero b ~width:w) v

let smax b x y = ite b (slt b x y) y x

let to_int b v =
  let w = width v in
  let magnitude = ref 0 in
  for i = w - 2 downto 0 do
    magnitude := (2 * !magnitude) + if Cnf.lit_value b v.bits.(i) then 1 else 0
  done;
  if Cnf.lit_value b (sign v) then !magnitude - (1 lsl (w - 1)) else !magnitude
