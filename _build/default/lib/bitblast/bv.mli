(** Two's-complement bit-vectors over the Tseitin builder.

    Bits are least-significant first. Operations require equal widths
    unless stated otherwise — the caller (the smtlite compiler) chooses
    widths from interval analysis so that results never overflow; under
    that contract modular arithmetic equals exact integer arithmetic. *)

type t

val width : t -> int
val bits : t -> Sat.Lit.t array
val sign : t -> Sat.Lit.t
(** Most significant bit. *)

val const : Cnf.t -> width:int -> int -> t
(** Two's-complement constant; raises [Invalid_argument] if the value does
    not fit the width. *)

val fresh : Cnf.t -> width:int -> t
(** A vector of fresh bits. *)

val of_bits : Sat.Lit.t array -> t

val sign_extend : t -> int -> t
(** [sign_extend v w] with [w >= width v]. *)

val add : Cnf.t -> t -> t -> t
(** Same-width ripple-carry addition, carry-out dropped (exact when the
    result fits the width). *)

val neg : Cnf.t -> t -> t
(** Two's-complement negation at the same width. *)

val sub : Cnf.t -> t -> t -> t

val shift_left : Cnf.t -> t -> int -> t
(** Logical left shift within the same width (low bits zero-filled, top
    bits dropped — exact when the result fits). *)

val mul_const : Cnf.t -> t -> int -> t
(** Multiplication by an integer constant via shift-and-add, at the input
    width (caller guarantees fit). *)

val eq : Cnf.t -> t -> t -> Sat.Lit.t
val slt : Cnf.t -> t -> t -> Sat.Lit.t
(** Signed less-than on equal widths whose operand difference also fits
    the width — the compiler extends operands by one bit to ensure this. *)

val sle : Cnf.t -> t -> t -> Sat.Lit.t

val ite : Cnf.t -> Sat.Lit.t -> t -> t -> t
(** Bitwise mux of two equal-width vectors. *)

val relu : Cnf.t -> t -> t
(** [max(0, v)]: zero when the sign bit is set. *)

val smax : Cnf.t -> t -> t -> t

val to_int : Cnf.t -> t -> int
(** Decode the vector under the solver's current model. *)
