(** Random-testing baseline (ablation E8 in DESIGN.md).

    The paper motivates formal analysis by the insufficiency of testing;
    this baseline quantifies it: sample random noise vectors and count how
    many adversarial ones a given budget finds, versus the formal
    extraction which is exhaustive. *)

type result = {
  budget : int;             (** vectors sampled *)
  found : Noise.vector list;(** distinct flipping vectors discovered *)
  first_found_at : int option;
      (** 1-based index of the first successful sample *)
}

val random_search :
  rng:Util.Rng.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  budget:int ->
  result

val success_rate : result -> float
(** Distinct flipping vectors found divided by budget. *)
