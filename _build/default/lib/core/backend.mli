(** Analysis backends answering the paper's P2 query: does some noise
    vector in the range flip this input's classification?

    - [Bnb]: branch-and-bound with symbolic linear bounds ({!Bnb}) —
      complete and fast; the default workhorse.
    - [Smt]: bit-blast the encoding and search with the CDCL solver —
      complete, the role of nuXmv's SAT engine; practical for small noise
      ranges, compared against [Bnb] in the backend ablation.
    - [Explicit]: enumerate every noise vector — complete but exponential;
      usable for tiny ranges and as a cross-check oracle.
    - [Interval]: sound interval propagation — fast, can prove robustness
      but never produces a counterexample ([Unknown] when inconclusive). *)

type t =
  | Bnb
  | Smt
  | Explicit of { limit : int }  (** refuses ranges above [limit] vectors *)
  | Interval

type verdict =
  | Robust                 (** no vector in the range flips the input *)
  | Flip of Noise.vector   (** witness causing misclassification *)
  | Unknown                (** backend could not decide *)

val default_explicit_limit : int

val exists_flip :
  t -> Nn.Qnet.t -> Noise.spec -> input:int array -> label:int -> verdict
(** The input must be classified as [label] by the noise-free network for
    the paper's reading of the verdict ("noise tolerance of correctly
    classified inputs"); this is not enforced here. Any [Flip] witness is
    re-validated against the concrete {!Noise.predict} before being
    returned (defence against encoding bugs); a mismatch raises
    [Failure]. *)

val output_bounds :
  Nn.Qnet.t -> Noise.spec -> input:int array -> (int * int) array
(** Interval backend's per-output-node bounds over the whole noise range
    (x100 scale) — also used by the classification-boundary analysis. *)

val verdict_to_string : verdict -> string
