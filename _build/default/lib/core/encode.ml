module T = Smtlite.Term

type t = {
  bias_var : T.var option;
  input_vars : T.var array;
  outputs : T.term array;
}

let encode (net : Nn.Qnet.t) ~input (spec : Noise.spec) =
  if Nn.Qnet.n_layers net <> 2 then
    invalid_arg "Encode.encode: two-layer networks only";
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Encode.encode: input size mismatch";
  if spec.Noise.delta_lo > 0 || spec.Noise.delta_hi < 0 then
    invalid_arg "Encode.encode: noise range must contain 0";
  let scale = Noise.scale_of spec in
  let mkvar name = T.var ~name ~lo:spec.Noise.delta_lo ~hi:spec.Noise.delta_hi in
  let bias_var = if spec.Noise.bias_noise then Some (mkvar "d0") else None in
  let input_vars =
    Array.init (Array.length input) (fun i -> mkvar (Printf.sprintf "d%d" (i + 1)))
  in
  (* Relative: x_i = X_i*100 + X_i*d_i; absolute: x_i = X_i + d_i
     (constants folded by the smart constructors). *)
  let noisy =
    Array.mapi
      (fun i x ->
        let coeff =
          match spec.Noise.kind with Noise.Relative -> x | Noise.Absolute -> 1
        in
        T.add (T.const (x * scale)) (T.mulc coeff (T.of_var input_vars.(i))))
      input
  in
  let layer1 = net.Nn.Qnet.layers.(0) in
  let layer2 = net.Nn.Qnet.layers.(1) in
  let hidden =
    Array.mapi
      (fun k row ->
        let b = layer1.Nn.Qnet.bias.(k) in
        let bias_term =
          match bias_var with
          | Some d0 -> T.add (T.const (b * scale)) (T.mulc b (T.of_var d0))
          | None -> T.const (b * scale)
        in
        let pre =
          T.sum
            (bias_term
            :: List.init (Array.length row) (fun i -> T.mulc row.(i) noisy.(i)))
        in
        if layer1.Nn.Qnet.relu then T.relu pre else pre)
      layer1.Nn.Qnet.weights
  in
  let outputs =
    Array.mapi
      (fun j row ->
        let pre =
          T.sum
            (T.const (layer2.Nn.Qnet.bias.(j) * scale)
            :: List.init (Array.length row) (fun k -> T.mulc row.(k) hidden.(k)))
        in
        if layer2.Nn.Qnet.relu then T.relu pre else pre)
      layer2.Nn.Qnet.weights
  in
  { bias_var; input_vars; outputs }

let noise_vars t =
  (match t.bias_var with Some v -> [ v ] | None -> [])
  @ Array.to_list t.input_vars

let predicted_is t c =
  let n = Array.length t.outputs in
  if c < 0 || c >= n then invalid_arg "Encode.predicted_is: class out of range";
  (* Ties go to the lower index: class c wins iff o_c > o_j for j < c and
     o_c >= o_j for j > c. *)
  T.and_
    (List.filter_map
       (fun j ->
         if j = c then None
         else if j < c then Some (T.gt t.outputs.(c) t.outputs.(j))
         else Some (T.ge t.outputs.(c) t.outputs.(j)))
       (List.init n Fun.id))

let misclassified t ~true_label = T.not_ (predicted_is t true_label)

let vector_of_model t model =
  {
    Noise.bias =
      (match t.bias_var with Some v -> T.lookup model v | None -> 0);
    inputs = Array.map (fun v -> T.lookup model v) t.input_vars;
  }

let vector_excluded t (v : Noise.vector) =
  let diffs =
    (match t.bias_var with
    | Some d0 -> [ T.not_ (T.eq (T.of_var d0) (T.const v.Noise.bias)) ]
    | None -> [])
    @ Array.to_list
        (Array.mapi
           (fun i var ->
             T.not_ (T.eq (T.of_var var) (T.const v.Noise.inputs.(i))))
           t.input_vars)
  in
  T.or_ diffs
