type config = {
  dataset_params : Dataset.Multiclass.params;
  dataset_seed : int;
  init_seed : int;
  train_config : Nn.Train.config;
  k_features : int;
  mi_bins : int;
  hidden : int;
  weight_bits : int;
}

let default_config =
  {
    dataset_params = Dataset.Multiclass.default_params;
    dataset_seed = 41;
    init_seed = 5;
    train_config = Nn.Train.default_config;
    k_features = 6;
    mi_bins = 3;
    hidden = 16;
    weight_bits = 12;
  }

type t = {
  config : config;
  data : Dataset.Multiclass.t;
  selected_genes : int array;
  network : Nn.Network.t;
  qnet : Nn.Qnet.t;
  train_inputs : Validate.labelled array;
  test_inputs : Validate.labelled array;
  train_accuracy : float;
  test_accuracy : float;
  p1 : Validate.result;
}

let accuracy qnet inputs =
  let correct =
    Array.fold_left
      (fun acc (x, l) -> if Nn.Qnet.predict qnet x = l then acc + 1 else acc)
      0 inputs
  in
  float_of_int correct /. float_of_int (Array.length inputs)

let run ?(config = default_config) () =
  let data =
    Dataset.Multiclass.generate ~params:config.dataset_params ~seed:config.dataset_seed ()
  in
  let selected_genes =
    Dataset.Multiclass.select_genes data ~k:config.k_features ~bins:config.mi_bins
  in
  let projected = Dataset.Multiclass.project data ~genes:selected_genes in
  let train_inputs = projected.Dataset.Multiclass.train in
  let test_inputs = projected.Dataset.Multiclass.test in
  let norm = Nn.Normalize.fit (Array.map fst train_inputs) in
  let vecs = Array.map (fun (x, _) -> Nn.Normalize.apply norm x) train_inputs in
  let labels = Array.map snd train_inputs in
  let rng = Util.Rng.create config.init_seed in
  let raw =
    Nn.Network.create ~rng
      ~spec:[ config.k_features; config.hidden; data.Dataset.Multiclass.n_classes ]
      ~hidden_activation:Nn.Activation.Relu
  in
  ignore (Nn.Train.train ~config:config.train_config raw ~inputs:vecs ~labels);
  let shift, scale = Nn.Normalize.shift_scale norm in
  let network = Nn.Network.fold_input_affine raw ~shift ~scale in
  let qnet = Nn.Quantize.quantize network ~weight_bits:config.weight_bits in
  let p1 = Validate.p1 qnet ~inputs:test_inputs in
  {
    config;
    data;
    selected_genes;
    network;
    qnet;
    train_inputs;
    test_inputs;
    train_accuracy = accuracy qnet train_inputs;
    test_accuracy = accuracy qnet test_inputs;
    p1;
  }

let analysis_inputs t = t.p1.Validate.correct

let training_labels t = Array.map snd t.train_inputs
