type labelled = int array * int

type result = {
  n_total : int;
  n_correct : int;
  accuracy : float;
  correct : labelled array;
  mismatches : (int * int) list;
}

let p1 net ~inputs =
  let n_total = Array.length inputs in
  if n_total = 0 then invalid_arg "Validate.p1: no inputs";
  let correct = ref [] in
  let mismatches = ref [] in
  Array.iteri
    (fun i (features, label) ->
      let predicted = Nn.Qnet.predict net features in
      if predicted = label then correct := (features, label) :: !correct
      else mismatches := (i, predicted) :: !mismatches)
    inputs;
  let correct = Array.of_list (List.rev !correct) in
  {
    n_total;
    n_correct = Array.length correct;
    accuracy = float_of_int (Array.length correct) /. float_of_int n_total;
    correct;
    mismatches = List.rev !mismatches;
  }

let of_samples samples ~genes =
  Array.map
    (fun (s : Dataset.Sample.t) ->
      let projected = Dataset.Sample.project s genes in
      (projected.Dataset.Sample.features, Dataset.Sample.label_to_int s.label))
    samples

let float_agreement net qnet ~inputs =
  Nn.Quantize.agreement net qnet ~inputs:(Array.map fst inputs)
