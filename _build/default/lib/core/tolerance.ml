type flip = { input_index : int; vector : Noise.vector; predicted : int }

type sweep_point = {
  delta : int;
  n_misclassified : int;
  flips : flip list;
}

let misclassified_at backend net ~bias_noise ~delta ~inputs =
  let spec = Noise.symmetric ~delta ~bias_noise in
  let flips = ref [] in
  Array.iteri
    (fun input_index (input, label) ->
      match Backend.exists_flip backend net spec ~input ~label with
      | Backend.Flip vector ->
          let predicted = Noise.predict net spec ~input vector in
          flips := { input_index; vector; predicted } :: !flips
      | Backend.Robust | Backend.Unknown -> ())
    inputs;
  List.rev !flips

let sweep backend net ~bias_noise ~deltas ~inputs =
  List.map
    (fun delta ->
      let flips = misclassified_at backend net ~bias_noise ~delta ~inputs in
      { delta; n_misclassified = List.length flips; flips })
    deltas

let flips_at backend net ~bias_noise ~delta ~input ~label =
  let spec = Noise.symmetric ~delta ~bias_noise in
  match Backend.exists_flip backend net spec ~input ~label with
  | Backend.Flip _ -> true
  | Backend.Robust -> false
  | Backend.Unknown ->
      failwith "Tolerance: backend cannot decide; use a complete backend"

let input_min_flip_delta backend net ~bias_noise ~max_delta ~input ~label =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  if not (flips_at backend net ~bias_noise ~delta:max_delta ~input ~label) then
    None
  else if flips_at backend net ~bias_noise ~delta:0 ~input ~label then
    (* Misclassified even without noise. *)
    Some 0
  else begin
    (* Monotone in delta: binary search for the smallest flipping range. *)
    let rec search lo hi =
      (* Invariant: no flip at lo (or lo = -1 impossible... lo flips? ): we
         keep lo = a delta with no flip, hi = a delta with a flip. *)
      if hi - lo <= 1 then hi
      else
        let mid = (lo + hi) / 2 in
        if flips_at backend net ~bias_noise ~delta:mid ~input ~label then
          search lo mid
        else search mid hi
    in
    (* Delta 0 never flips a correctly classified input. *)
    Some (search 0 max_delta)
  end

let certified_accuracy backend net ~bias_noise ~delta ~inputs =
  if Array.length inputs = 0 then invalid_arg "Tolerance.certified_accuracy: empty";
  let spec = Noise.symmetric ~delta ~bias_noise in
  let certified =
    Array.fold_left
      (fun acc (input, label) ->
        if Nn.Qnet.predict net input <> label then acc
        else
          match Backend.exists_flip backend net spec ~input ~label with
          | Backend.Robust -> acc + 1
          | Backend.Flip _ | Backend.Unknown -> acc)
      0 inputs
  in
  float_of_int certified /. float_of_int (Array.length inputs)

let paper_iterative_tolerance backend net ~bias_noise ~max_delta ~inputs =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  let any_flip delta =
    Array.exists
      (fun (input, label) -> flips_at backend net ~bias_noise ~delta ~input ~label)
      inputs
  in
  let rec reduce delta =
    if delta = 0 then 0
    else if any_flip delta then reduce (delta - 1)
    else delta
  in
  reduce max_delta

let network_tolerance backend net ~bias_noise ~max_delta ~inputs =
  Array.fold_left
    (fun acc (input, label) ->
      match
        input_min_flip_delta backend net ~bias_noise ~max_delta ~input ~label
      with
      | None -> acc
      | Some d -> min acc (d - 1))
    max_delta inputs
