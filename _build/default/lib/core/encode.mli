(** Symbolic encoding of a noisy forward pass as {!Smtlite.Term} formulas.

    For a fixed test input the only symbols are the noise percentages, so
    the encoding is linear arithmetic with constant coefficients plus one
    ReLU per hidden neuron — exactly the fragment {!Smtlite.Solve}
    decides. This is the formal core of the paper's P2/P3 properties. *)

type t = {
  bias_var : Smtlite.Term.var option;      (** noise node d0, when enabled *)
  input_vars : Smtlite.Term.var array;     (** noise nodes d1..dn *)
  outputs : Smtlite.Term.term array;       (** output-node values (x100 scale) *)
}

val encode : Nn.Qnet.t -> input:int array -> Noise.spec -> t
(** Two-layer ReLU/identity networks only; sizes must match. *)

val noise_vars : t -> Smtlite.Term.var list
(** Bias node first when present, then d1..dn. *)

val predicted_is : t -> int -> Smtlite.Term.formula
(** Formula: the argmax (ties to the lower index) equals the given class. *)

val misclassified : t -> true_label:int -> Smtlite.Term.formula
(** The paper's P2 negation: predicted class differs from the true label. *)

val vector_of_model : t -> Smtlite.Solve.model -> Noise.vector
(** Read a noise vector out of a satisfying assignment. *)

val vector_excluded : t -> Noise.vector -> Smtlite.Term.formula
(** Formula stating the noise variables differ from the given vector — the
    building block of the paper's P3 blocking expression [!e]. *)
