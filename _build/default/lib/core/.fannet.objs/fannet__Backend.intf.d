lib/core/backend.mli: Nn Noise
