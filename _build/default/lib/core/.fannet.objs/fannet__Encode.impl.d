lib/core/encode.ml: Array Fun List Nn Noise Printf Smtlite
