lib/core/boundary.ml: Array List Nn Tolerance Util
