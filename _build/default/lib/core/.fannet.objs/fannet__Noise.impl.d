lib/core/noise.ml: Array Int Nn Printf Stdlib String
