lib/core/validate.mli: Dataset Nn
