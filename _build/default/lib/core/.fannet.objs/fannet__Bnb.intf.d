lib/core/bnb.mli: Nn Noise
