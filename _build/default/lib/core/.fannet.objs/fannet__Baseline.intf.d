lib/core/baseline.mli: Nn Noise Util
