lib/core/mc_pipeline.ml: Array Dataset Nn Util Validate
