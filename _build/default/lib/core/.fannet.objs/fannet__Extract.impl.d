lib/core/extract.ml: Array Bnb Encode List Noise Printf Smtlite
