lib/core/extract.mli: Nn Noise Validate
