lib/core/pipeline.ml: Array Dataset Nn Util Validate
