lib/core/backend.ml: Array Bnb Encode Fun Nn Noise Printf Smtlite
