lib/core/baseline.ml: Array List Noise Set Util
