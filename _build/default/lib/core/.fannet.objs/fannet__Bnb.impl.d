lib/core/bnb.ml: Array Fun List Map Nn Noise
