lib/core/mc_pipeline.mli: Dataset Nn Validate
