lib/core/encode.mli: Nn Noise Smtlite
