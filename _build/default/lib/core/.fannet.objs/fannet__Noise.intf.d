lib/core/noise.mli: Nn
