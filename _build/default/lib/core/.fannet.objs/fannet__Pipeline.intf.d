lib/core/pipeline.mli: Dataset Nn Validate
