lib/core/boundary.mli: Backend Nn Validate
