lib/core/sensitivity.mli: Extract Nn Noise Validate
