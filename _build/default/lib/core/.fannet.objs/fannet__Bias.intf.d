lib/core/bias.mli: Extract
