lib/core/tolerance.mli: Backend Nn Noise Validate
