lib/core/tolerance.ml: Array Backend List Nn Noise
