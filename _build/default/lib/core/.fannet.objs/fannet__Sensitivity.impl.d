lib/core/sensitivity.ml: Array Bnb Extract Fun List Noise Printf
