lib/core/validate.ml: Array Dataset List Nn
