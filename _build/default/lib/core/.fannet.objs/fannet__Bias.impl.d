lib/core/bias.ml: Array Buffer Extract Fun Hashtbl List Option Printf
