(** Property P1: noise-free validation of the translated model.

    The paper checks the SMV model's computed class [OC] against the true
    labels before any noise analysis, and only carries the correctly
    classified inputs forward. *)

type labelled = int array * int
(** (features, true label). *)

type result = {
  n_total : int;
  n_correct : int;
  accuracy : float;
  correct : labelled array;     (** inputs the network classifies right *)
  mismatches : (int * int) list;
      (** (input index, predicted class) for the failures *)
}

val p1 : Nn.Qnet.t -> inputs:labelled array -> result

val of_samples : Dataset.Sample.t array -> genes:int array -> labelled array
(** Project dataset samples onto the selected genes and pair them with
    integer labels. *)

val float_agreement : Nn.Network.t -> Nn.Qnet.t -> inputs:labelled array -> float
(** Fraction of inputs where the quantized network matches the float
    network's prediction (quantization fidelity, part of behaviour
    extraction). *)
