(** Complete branch-and-bound analysis over the noise box.

    Exploits the structure the bit-blasted encoding ignores: for a fixed
    test input every hidden pre-activation is an exact linear function of
    the noise percentages, [pre_k = C_k + sum_i a_ki * d_i]. The engine
    bounds the output margin with symbolic linear propagation (exact
    through layer 1; unstable ReLUs relaxed to their interval, stable ones
    kept linear so layer-2 noise coefficients recombine and cancel — the
    ReluVal/Neurify-style tightening), prunes boxes proven robust or
    proven all-flipping, and splits the widest noise dimension otherwise.
    Terminates because boxes shrink to single points, which are evaluated
    concretely.

    Both the paper's relative-percent noise and the absolute model are
    supported (the linear coefficients differ, nothing else).

    This is the workhorse complete backend for large noise ranges; the
    bit-blasted {!Backend.Smt} answers the same queries (and is compared
    against in the backend ablation) but scales poorly past small
    deltas. *)

type verdict = Robust | Flip of Noise.vector

exception Budget_exceeded
(** Raised by {!exists_flip} when [max_boxes] runs out. Verification cost
    tracks the network's structure: a trained network with real margins
    verifies in microseconds, while a network fitted to noise can make the
    bounds vacuous and the search exponential (the E14 ablation shows
    this). *)

val exists_flip :
  ?box:(int * int) array ->
  ?max_boxes:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  verdict
(** Two-layer ReLU/identity networks, any number of output classes
    (multi-class robustness uses one margin per adversary class).
    Any witness is validated against {!Noise.predict}.

    [box] restricts the search to per-node noise ranges (bias node first
    when the spec enables bias noise, then the input nodes); it must be
    contained in the spec's range and defaults to the full range. The
    input-node-sensitivity analysis uses it to ask one-sided questions
    such as "is there a flip with strictly positive noise at node i?". *)

val enumerate_flips :
  ?limit:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Noise.vector list * [ `Complete | `Truncated ]
(** All distinct flipping vectors in the range, in deterministic order
    ([limit] defaults to 10_000). *)

val min_l1_flip :
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  (Noise.vector * int) option
(** The cheapest misclassifying noise vector by L1 norm (sum of absolute
    node noises) and its norm — the paper's "minimum noise (Δx)min"
    notion made precise. Best-first branch-and-bound: boxes are explored
    in order of their L1 lower bound, robust boxes pruned, so the first
    flip found is optimal. [None] when the range is robust. *)

val count_flips :
  ?limit:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  int * [ `Complete | `Truncated ]
(** Number of flipping vectors, counting whole all-flipping boxes without
    enumerating them point by point ([limit] caps the count). *)
