type result = {
  budget : int;
  found : Noise.vector list;
  first_found_at : int option;
}

let random_vector ~rng (spec : Noise.spec) ~n_inputs =
  let draw () = Util.Rng.int_in rng spec.Noise.delta_lo spec.Noise.delta_hi in
  {
    Noise.bias = (if spec.Noise.bias_noise then draw () else 0);
    inputs = Array.init n_inputs (fun _ -> draw ());
  }

let random_search ~rng net spec ~input ~label ~budget =
  if budget <= 0 then invalid_arg "Baseline.random_search: budget";
  let module VSet = Set.Make (struct
    type t = Noise.vector

    let compare = Noise.compare
  end) in
  let found = ref VSet.empty in
  let first = ref None in
  for trial = 1 to budget do
    let v = random_vector ~rng spec ~n_inputs:(Array.length input) in
    if Noise.predict net spec ~input v <> label then begin
      if !first = None then first := Some trial;
      found := VSet.add v !found
    end
  done;
  { budget; found = VSet.elements !found; first_found_at = !first }

let success_rate r = float_of_int (List.length r.found) /. float_of_int r.budget
