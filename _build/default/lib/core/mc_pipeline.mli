(** Multi-class extension of the case-study pipeline.

    The paper's methodology is binary (ALL vs AML); this pipeline runs the
    identical stages — synthetic data, mRMR-style gene selection,
    standardised training, normalisation folding, quantization, P1 — for
    [k]-class problems (e.g. a three-way leukemia subtype panel), feeding
    the multi-class branch-and-bound analyses. *)

type config = {
  dataset_params : Dataset.Multiclass.params;
  dataset_seed : int;
  init_seed : int;
  train_config : Nn.Train.config;
  k_features : int;
  mi_bins : int;
  hidden : int;
  weight_bits : int;
}

val default_config : config
(** Three classes (18/10/6 training imbalance), 6 genes, 6-16-3 ReLU
    network. *)

type t = {
  config : config;
  data : Dataset.Multiclass.t;
  selected_genes : int array;
  network : Nn.Network.t;       (** folded: raw integer inputs *)
  qnet : Nn.Qnet.t;
  train_inputs : Validate.labelled array;
  test_inputs : Validate.labelled array;
  train_accuracy : float;
  test_accuracy : float;
  p1 : Validate.result;
}

val run : ?config:config -> unit -> t
val analysis_inputs : t -> Validate.labelled array
val training_labels : t -> int array
