type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: non-positive dims";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.init: non-positive dims";
  { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init ~rows ~cols (fun r c -> rows_arr.(r).(c))

let copy m = { m with data = Array.copy m.data }

let check_bounds m r c =
  if r < 0 || r >= m.rows || c < 0 || c >= m.cols then
    invalid_arg "Mat: index out of bounds"

let get m r c =
  check_bounds m r c;
  m.data.((r * m.cols) + c)

let set m r c v =
  check_bounds m r c;
  m.data.((r * m.cols) + c) <- v

let dims m = (m.rows, m.cols)

let row m r =
  if r < 0 || r >= m.rows then invalid_arg "Mat.row: out of bounds";
  Array.sub m.data (r * m.cols) m.cols

let col m c =
  if c < 0 || c >= m.cols then invalid_arg "Mat.col: out of bounds";
  Array.init m.rows (fun r -> m.data.((r * m.cols) + c))

let mul_vec m x =
  if Array.length x <> m.cols then invalid_arg "Mat.mul_vec: size mismatch";
  Array.init m.rows (fun r ->
      let acc = ref 0. in
      let base = r * m.cols in
      for c = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + c) *. x.(c))
      done;
      !acc)

let tmul_vec m x =
  if Array.length x <> m.rows then invalid_arg "Mat.tmul_vec: size mismatch";
  let out = Array.make m.cols 0. in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    let xr = x.(r) in
    for c = 0 to m.cols - 1 do
      out.(c) <- out.(c) +. (m.data.(base + c) *. xr)
    done
  done;
  out

let outer u v =
  init ~rows:(Array.length u) ~cols:(Array.length v) (fun r c -> u.(r) *. v.(c))

let check_same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let add_inplace dst src =
  check_same_dims "Mat.add_inplace" dst src;
  for i = 0 to Array.length dst.data - 1 do
    dst.data.(i) <- dst.data.(i) +. src.data.(i)
  done

let axpy a x y =
  check_same_dims "Mat.axpy" x y;
  for i = 0 to Array.length x.data - 1 do
    y.data.(i) <- (a *. x.data.(i)) +. y.data.(i)
  done

let map f m = { m with data = Array.map f m.data }

let transpose m = init ~rows:m.cols ~cols:m.rows (fun r c -> get m c r)

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let to_rows m = Array.init m.rows (fun r -> row m r)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for r = 0 to m.rows - 1 do
    Format.fprintf fmt "%a@," Vec.pp (row m r)
  done;
  Format.fprintf fmt "@]"
