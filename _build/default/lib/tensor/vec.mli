(** Dense float vectors.

    A thin layer over [float array] with the operations the neural-network
    library needs. All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t
val of_array : float array -> t
val copy : t -> t
val length : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val scale : float -> t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val add_inplace : t -> t -> unit
(** [add_inplace dst src] accumulates [src] into [dst]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y]. *)

val argmax : t -> int
(** Index of the largest element (first on ties). Non-empty input. *)

val max : t -> float
val sum : t -> float

val softmax : t -> t
(** Numerically stable softmax. *)

val one_hot : int -> int -> t
(** [one_hot n i] is the length-[n] indicator of position [i]. *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Component-wise equality within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
