type t = float array

let create n = Array.make n 0.

let init = Array.init

let of_array a = Array.copy a

let copy = Array.copy

let length = Array.length

let check_same_length name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": length mismatch")

let map2 f a b =
  check_same_length "Vec.map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let mul a b = map2 ( *. ) a b

let scale k a = Array.map (fun x -> k *. x) a

let dot a b =
  check_same_length "Vec.dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let map = Array.map

let add_inplace dst src =
  check_same_length "Vec.add_inplace" dst src;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. src.(i)
  done

let axpy a x y =
  check_same_length "Vec.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let argmax a =
  if Array.length a = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let max a = a.(argmax a)

let sum a = Array.fold_left ( +. ) 0. a

let softmax a =
  let m = max a in
  let e = Array.map (fun x -> exp (x -. m)) a in
  let z = sum e in
  Array.map (fun x -> x /. z) e

let one_hot n i =
  if i < 0 || i >= n then invalid_arg "Vec.one_hot: index out of range";
  Array.init n (fun j -> if j = i then 1. else 0.)

let approx_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b

let pp fmt a =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt x -> Format.fprintf fmt "%g" x))
    a
