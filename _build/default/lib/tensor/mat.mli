(** Dense row-major float matrices.

    Sized for the small fully-connected networks of the paper; the layout is
    a single flat array indexed as [row * cols + col]. *)

type t = private { rows : int; cols : int; data : float array }

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] fills cell [(r, c)] with [f r c]. *)

val of_rows : float array array -> t
(** Build from an array of equal-length rows. Non-empty input. *)

val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int

val row : t -> int -> Vec.t
(** Copy of row [r]. *)

val col : t -> int -> Vec.t
(** Copy of column [c]. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m x] is [m * x]; [x] must have [cols] entries. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec m x] is [transpose m * x]; [x] must have [rows] entries. *)

val outer : Vec.t -> Vec.t -> t
(** [outer u v] is the matrix [u * transpose v]. *)

val add_inplace : t -> t -> unit
val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] element-wise. *)

val map : (float -> float) -> t -> t
val transpose : t -> t
val approx_equal : ?eps:float -> t -> t -> bool
val frobenius : t -> float

val to_rows : t -> float array array
val pp : Format.formatter -> t -> unit
