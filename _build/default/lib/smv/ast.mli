(** Abstract syntax for the SMV subset FANNet targets.

    Mirrors the nuXmv input language fragment used by the paper's
    methodology: finite-domain state variables ([VAR]), nondeterministic
    input variables ([IVAR]), [DEFINE]s, [ASSIGN] init/next equations with
    set-valued nondeterministic choice, and [INVARSPEC] properties.
    {!Printer} emits real [.smv] text; {!Fsm} gives the subset an
    executable semantics. *)

type domain =
  | Range of int * int      (** integer range lo..hi, inclusive *)
  | Enum of string list     (** symbolic enumeration *)

type cmp = Lt | Le | Eq | Ge | Gt | Ne

type expr =
  | Int of int
  | Sym of string           (** enum literal *)
  | Var of string           (** state var, input var or DEFINE name *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Cmp of cmp * expr * expr
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Case of (expr * expr) list  (** first condition that holds wins *)
  | Set of expr list        (** nondeterministic choice; only as the whole
                                right-hand side of init/next *)

type program = {
  state_vars : (string * domain) list;
  input_vars : (string * domain) list;  (** IVAR: re-chosen every step *)
  defines : (string * expr) list;       (** in dependency order *)
  init : (string * expr) list;          (** init(x) := e *)
  next : (string * expr) list;          (** next(x) := e *)
  invarspecs : (string * expr) list;    (** name, property over state+defines *)
}

type value = VInt of int | VBool of bool | VSym of string

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

val domain_values : domain -> value list
(** All values of a finite domain, in order. *)

val domain_size : domain -> int

val validate : program -> (unit, string) result
(** Structural checks: distinct names, init/next only on declared state
    variables, defines acyclic (checked by declaration order), domains
    non-empty. *)
