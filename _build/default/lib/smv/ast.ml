type domain = Range of int * int | Enum of string list

type cmp = Lt | Le | Eq | Ge | Gt | Ne

type expr =
  | Int of int
  | Sym of string
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Cmp of cmp * expr * expr
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Case of (expr * expr) list
  | Set of expr list

type program = {
  state_vars : (string * domain) list;
  input_vars : (string * domain) list;
  defines : (string * expr) list;
  init : (string * expr) list;
  next : (string * expr) list;
  invarspecs : (string * expr) list;
}

type value = VInt of int | VBool of bool | VSym of string

let value_equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VSym x, VSym y -> String.equal x y
  | (VInt _ | VBool _ | VSym _), _ -> false

let pp_value fmt = function
  | VInt v -> Format.fprintf fmt "%d" v
  | VBool b -> Format.fprintf fmt "%s" (if b then "TRUE" else "FALSE")
  | VSym s -> Format.fprintf fmt "%s" s

let domain_values = function
  | Range (lo, hi) ->
      if lo > hi then invalid_arg "Ast.domain_values: empty range";
      List.init (hi - lo + 1) (fun i -> VInt (lo + i))
  | Enum syms ->
      if syms = [] then invalid_arg "Ast.domain_values: empty enum";
      List.map (fun s -> VSym s) syms

let domain_size d = List.length (domain_values d)

let rec expr_names acc = function
  | Int _ | Sym _ -> acc
  | Var n -> n :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
    -> expr_names (expr_names acc a) b
  | Neg a | Not a -> expr_names acc a
  | Case arms ->
      List.fold_left (fun acc (c, v) -> expr_names (expr_names acc c) v) acc arms
  | Set es -> List.fold_left expr_names acc es

let validate p =
  let ( let* ) r f = Result.bind r f in
  let names section pairs = List.map fst pairs |> List.map (fun n -> (section, n)) in
  let all_decls =
    names "VAR" p.state_vars @ names "IVAR" p.input_vars @ names "DEFINE" p.defines
  in
  let declared = List.map snd all_decls in
  let* () =
    let rec dup = function
      | [] -> Ok ()
      | (section, n) :: rest ->
          if List.exists (fun (_, m) -> String.equal n m) rest then
            Error (Printf.sprintf "duplicate declaration of %s (%s)" n section)
          else dup rest
    in
    dup all_decls
  in
  let* () =
    let check_domain (n, d) =
      match d with
      | Range (lo, hi) when lo > hi -> Error (Printf.sprintf "empty range for %s" n)
      | Enum [] -> Error (Printf.sprintf "empty enum for %s" n)
      | Range _ | Enum _ -> Ok ()
    in
    List.fold_left
      (fun acc vd -> Result.bind acc (fun () -> check_domain vd))
      (Ok ())
      (p.state_vars @ p.input_vars)
  in
  let state_names = List.map fst p.state_vars in
  let* () =
    let check_target section (n, _) =
      if List.mem n state_names then Ok ()
      else Error (Printf.sprintf "%s of %s: not a state variable" section n)
    in
    List.fold_left
      (fun acc a -> Result.bind acc (fun () -> check_target "init" a))
      (Ok ()) p.init
    |> fun r ->
    List.fold_left
      (fun acc a -> Result.bind acc (fun () -> check_target "next" a))
      r p.next
  in
  (* Defines must only reference earlier defines or variables. *)
  let* () =
    let rec check_defines seen = function
      | [] -> Ok ()
      | (n, e) :: rest ->
          let refs = expr_names [] e in
          let bad =
            List.find_opt
              (fun r ->
                (not (List.mem r seen))
                && not (List.mem r (List.map fst p.state_vars @ List.map fst p.input_vars)))
              refs
          in
          (match bad with
          | Some r -> Error (Printf.sprintf "DEFINE %s references unknown %s" n r)
          | None -> check_defines (n :: seen) rest)
    in
    check_defines [] p.defines
  in
  (* All referenced names in init/next/specs must be declared. *)
  let check_refs section e =
    let refs = expr_names [] e in
    match List.find_opt (fun r -> not (List.mem r declared)) refs with
    | Some r -> Error (Printf.sprintf "%s references unknown %s" section r)
    | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (n, e) ->
        Result.bind acc (fun () -> check_refs (Printf.sprintf "init(%s)" n) e))
      (Ok ()) p.init
  in
  let* () =
    List.fold_left
      (fun acc (n, e) ->
        Result.bind acc (fun () -> check_refs (Printf.sprintf "next(%s)" n) e))
      (Ok ()) p.next
  in
  List.fold_left
    (fun acc (n, e) ->
      Result.bind acc (fun () -> check_refs (Printf.sprintf "INVARSPEC %s" n) e))
    (Ok ()) p.invarspecs
