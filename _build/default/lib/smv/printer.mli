(** Pretty-printer emitting nuXmv-compatible [.smv] source.

    The output of {!Translate} printed through this module is the artefact
    the paper feeds to nuXmv ("Description in SMV Language"); it can be
    checked with an external nuXmv installation when one is available. *)

val expr_to_string : Ast.expr -> string

val program_to_string : Ast.program -> string
(** A complete [MODULE main]. *)

val write_file : string -> Ast.program -> unit
