(** SAT-based bounded model checking of the SMV subset.

    This is the engine role nuXmv plays in the paper: the program's
    transition relation is unrolled [k] steps into a bounded-integer
    formula ({!Smtlite}) and each INVARSPEC is checked at every depth; a
    satisfying assignment yields a counterexample trace. Enumerated
    domains are integer-coded; nondeterministic [Set] assignments become
    membership constraints; [IVAR]s become per-step free variables.

    Complements {!Fsm}: the explicit engine enumerates states (feasible
    only for tiny noise ranges), while BMC handles ranges whose state
    spaces are far beyond enumeration — at the price of SAT search. For
    the one-shot FANNet models a bound of 2 steps reaches every state. *)

type outcome =
  | Holds_up_to of int
      (** no violation within the bound (not an unbounded proof) *)
  | Violated of { step : int; trace : Ast.value array list }
      (** state-variable values for steps [0..step], in declaration
          order *)

val check :
  ?bound:int ->
  ?max_conflicts:int ->
  Ast.program ->
  ((string * outcome) list, string) result
(** Check every INVARSPEC of the program up to [bound] steps (default 3).
    Returns [Error] for programs outside the supported fragment
    (non-constant [Set] members, nonlinear multiplication, enum symbol
    collisions) or that fail {!Ast.validate}. [max_conflicts] bounds each
    SAT call; exhausting it reports the spec as holding up to the depth
    reached with no claim beyond (documented best effort). *)
