(** Translation of an integer network to an SMV finite-state model — the
    paper's "Behavior Extraction" step.

    The produced FSM follows Fig. 3 of the paper: an [Initial] phase, one
    output phase per class, and one state variable per noise node. Each
    transition nondeterministically picks a fresh noise vector (and, when
    several samples are supplied, a sample via an [IVAR]); the successor
    phase is the class the network computes on the noisy input.

    Arithmetic is kept exact by the x100 scaling of DESIGN.md §2: the
    defines compute [x_i = X_i*(100 + d_i)] with [X_i] a constant, and
    every bias is scaled by 100, so the integer model classifies exactly
    like {!Nn.Qnet.forward} with relative percent noise.

    State-space size without/with noise reproduces the paper's Fig. 3
    counts: 3 states and 6 transitions for the noise-free multi-sample
    model, [1 + 2^k] states and [(1 + 2^k) * 2^k] transitions for noise
    range [0,1]% over [k] noise nodes. *)

type config = {
  delta_lo : int;     (** lower noise percent bound (e.g. -11, or 0 for the
                          paper's Fig. 3 range [0,1]%) *)
  delta_hi : int;     (** upper noise percent bound; requires
                          [delta_lo <= 0 <= delta_hi] so the noise-free
                          initial state exists *)
  bias_noise : bool;  (** add noise node d0 on the bias input (the paper's
                          sixth input node) *)
  samples : (int array * int) list;
      (** (features, true label); several samples become a
          nondeterministic IVAR choice *)
}

val symmetric : delta:int -> bias_noise:bool -> samples:(int array * int) list -> config
(** The paper's main setting: noise in [-delta, +delta]. *)

val network_program : Nn.Qnet.t -> config -> Ast.program
(** Requires a two-layer ReLU/identity network and at least one sample
    whose feature count matches the network input; raises
    [Invalid_argument] otherwise. A single-sample config also emits the
    paper's P2 property [INVARSPEC phase = s_init | phase = s_<Sx>]. *)

val phase_var : string
(** Name of the phase state variable ("phase"). *)

val noise_var : int -> string
(** [noise_var i] is ["d<i>"]; index 0 is the bias noise node. *)

val phase_of_class : int -> string
(** [phase_of_class c] is ["s_l<c>"]. *)
