lib/smv/translate.ml: Array Ast Fun List Nn Printf
