lib/smv/parser.mli: Ast
