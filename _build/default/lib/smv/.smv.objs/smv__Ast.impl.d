lib/smv/ast.ml: Format List Printf Result String
