lib/smv/bmc.ml: Array Ast List Printf Smtlite
