lib/smv/printer.ml: Ast Buffer Fun List Printf String
