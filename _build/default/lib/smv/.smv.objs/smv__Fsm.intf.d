lib/smv/fsm.mli: Ast
