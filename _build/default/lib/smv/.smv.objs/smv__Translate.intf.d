lib/smv/translate.mli: Ast Nn
