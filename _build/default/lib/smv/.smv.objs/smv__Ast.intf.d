lib/smv/ast.mli: Format
