lib/smv/parser.ml: Ast List Printf String
