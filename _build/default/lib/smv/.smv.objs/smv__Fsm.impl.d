lib/smv/fsm.ml: Array Ast Hashtbl List Option Printf Queue
