lib/smv/bmc.mli: Ast
