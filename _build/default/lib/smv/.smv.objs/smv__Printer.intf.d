lib/smv/printer.mli: Ast
