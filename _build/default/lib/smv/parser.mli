(** Parser for the SMV subset emitted by {!Printer}.

    Accepts a single [MODULE main] with [VAR], [IVAR], [DEFINE], [ASSIGN]
    (init/next) and [INVARSPEC] sections — the nuXmv input-language
    fragment FANNet generates — and returns the same {!Ast.program}
    representation the translator produces, so models can be stored as
    [.smv] text and re-analysed ([Printer.program_to_string] followed by
    [parse] is the identity up to expression parenthesisation).

    Expression grammar (loosest to tightest): [|], [&], [!],
    comparisons ([< <= = >= > !=]), [+ -], [*], unary [-], atoms
    (integers, identifiers, [TRUE]/[FALSE], [( e )],
    [case c1 : v1; ... esac], [{e, ..., e}]). Comments run from [--] to
    the end of the line. *)

val parse : string -> (Ast.program, string) result
(** Parse a complete module. The error string contains a line number. *)

val parse_expr : string -> (Ast.expr, string) result
(** Parse a single expression (for tests and ad-hoc property strings). *)
