lib/smtlite/term.ml: Format Int List Map
