lib/smtlite/solve.mli: Sat Term
