lib/smtlite/compile.ml: Array Bitblast Hashtbl Interval List Sat Term
