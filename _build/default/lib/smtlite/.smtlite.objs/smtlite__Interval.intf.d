lib/smtlite/interval.mli: Term
