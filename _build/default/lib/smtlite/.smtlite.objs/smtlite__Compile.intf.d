lib/smtlite/compile.mli: Bitblast Sat Term
