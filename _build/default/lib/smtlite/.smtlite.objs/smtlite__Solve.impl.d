lib/smtlite/solve.ml: Compile List Sat Term
