lib/smtlite/term.mli: Format
