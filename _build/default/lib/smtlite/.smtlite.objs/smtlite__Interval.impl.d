lib/smtlite/interval.ml: Hashtbl List Term
