(** One fully-connected layer: [a = act (W x + b)]. *)

type t = {
  weights : Tensor.Mat.t;  (** [out_dim x in_dim] *)
  bias : Tensor.Vec.t;     (** length [out_dim] *)
  activation : Activation.t;
}

val create :
  rng:Util.Rng.t -> in_dim:int -> out_dim:int -> activation:Activation.t -> t
(** He-initialised weights (suits ReLU), zero bias. *)

val of_parts :
  weights:float array array -> bias:float array -> activation:Activation.t -> t
(** Build from explicit parameters; checks dimension consistency. *)

val in_dim : t -> int
val out_dim : t -> int

val forward : t -> Tensor.Vec.t -> Tensor.Vec.t
(** Activated output. *)

val forward_pre : t -> Tensor.Vec.t -> Tensor.Vec.t * Tensor.Vec.t
(** [(pre_activation, activated)] — the trainer needs both. *)

val copy : t -> t
