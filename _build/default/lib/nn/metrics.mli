(** Classification metrics. *)

val accuracy : Network.t -> inputs:Tensor.Vec.t array -> labels:int array -> float
(** Fraction of samples where [predict] matches the label. *)

val confusion :
  Network.t -> inputs:Tensor.Vec.t array -> labels:int array -> int array array
(** [confusion net ~inputs ~labels] is a [classes x classes] matrix [m]
    where [m.(truth).(predicted)] counts samples. *)

val accuracy_of_predictions : predicted:int array -> labels:int array -> float
val confusion_of_predictions :
  classes:int -> predicted:int array -> labels:int array -> int array array
