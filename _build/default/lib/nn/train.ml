type loss_kind = Mse | Cross_entropy

type mode = Batch | Stochastic

type config = {
  epochs_phase1 : int;
  lr_phase1 : float;
  epochs_phase2 : int;
  lr_phase2 : float;
  shuffle_seed : int;
  loss : loss_kind;
  mode : mode;
  momentum : float;  (* classical momentum, batch mode only *)
}

let default_config =
  {
    epochs_phase1 = 40;
    lr_phase1 = 0.5;
    epochs_phase2 = 40;
    lr_phase2 = 0.2;
    shuffle_seed = 17;
    loss = Cross_entropy;
    mode = Stochastic;
    momentum = 0.;
  }

let paper_matlab_config =
  { default_config with loss = Mse; mode = Batch; momentum = 0.9 }

type history = {
  epoch_losses : float array;
  epoch_accuracies : float array;
}

let cross_entropy logits label =
  let probs = Tensor.Vec.softmax logits in
  -.log (max 1e-12 probs.(label))

let mse outputs label =
  let target = Tensor.Vec.one_hot (Array.length outputs) label in
  let diff = Tensor.Vec.sub outputs target in
  Tensor.Vec.dot diff diff /. float_of_int (Array.length outputs)

let loss_value kind outputs label =
  match kind with
  | Mse -> mse outputs label
  | Cross_entropy -> cross_entropy outputs label

(* Backpropagation through the FC layers. The output layer is Identity;
   the initial delta is softmax(logits) - y for cross-entropy and
   2*(outputs - y)/n_out for MSE. Returns the loss and per-layer
   gradients. *)
let backprop (net : Network.t) ~loss ~input ~label =
  let layers = net.Network.layers in
  let n = Array.length layers in
  let trace = Network.forward_trace net input in
  let logits = snd trace.(n - 1) in
  let loss_before = loss_value loss logits label in
  let n_out = Array.length logits in
  let target = Tensor.Vec.one_hot n_out label in
  let delta =
    ref
      (match loss with
      | Cross_entropy -> Tensor.Vec.sub (Tensor.Vec.softmax logits) target
      | Mse ->
          Tensor.Vec.scale (2. /. float_of_int n_out) (Tensor.Vec.sub logits target))
  in
  let grads = Array.make n None in
  for i = n - 1 downto 0 do
    let layer = layers.(i) in
    let layer_input = if i = 0 then input else snd trace.(i - 1) in
    let back = Tensor.Mat.tmul_vec layer.Layer.weights !delta in
    grads.(i) <- Some (Tensor.Mat.outer !delta layer_input, Tensor.Vec.copy !delta);
    if i > 0 then begin
      let pre_prev = fst trace.(i - 1) in
      let act = layers.(i - 1).Layer.activation in
      delta := Tensor.Vec.mul back (Activation.derivative_vec act pre_prev)
    end
  done;
  let grads =
    Array.map (function Some g -> g | None -> assert false) grads
  in
  (loss_before, grads)

let apply_gradients (net : Network.t) ~lr grads =
  Array.iteri
    (fun i (gw, gb) ->
      let layer = net.Network.layers.(i) in
      Tensor.Mat.axpy (-.lr) gw layer.Layer.weights;
      Tensor.Vec.axpy (-.lr) gb layer.Layer.bias)
    grads

let sgd_step ?(loss = Mse) net ~lr ~input ~label =
  let loss_before, grads = backprop net ~loss ~input ~label in
  apply_gradients net ~lr grads;
  loss_before

let zero_gradients (net : Network.t) =
  Array.map
    (fun (layer : Layer.t) ->
      let rows, cols = Tensor.Mat.dims layer.Layer.weights in
      (Tensor.Mat.create ~rows ~cols, Tensor.Vec.create (Layer.out_dim layer)))
    net.Network.layers

let batch_step net ~loss ~lr ~momentum ~velocity ~inputs ~labels =
  let n = Array.length inputs in
  let acc = zero_gradients net in
  let total_loss = ref 0. in
  Array.iteri
    (fun s input ->
      let sample_loss, grads = backprop net ~loss ~input ~label:labels.(s) in
      total_loss := !total_loss +. sample_loss;
      Array.iteri
        (fun i (gw, gb) ->
          let aw, ab = acc.(i) in
          Tensor.Mat.add_inplace aw gw;
          Tensor.Vec.add_inplace ab gb)
        grads)
    inputs;
  (* traingdm semantics: v <- momentum*v - lr*mean_gradient; w <- w + v. *)
  let step = lr /. float_of_int n in
  Array.iteri
    (fun i (aw, ab) ->
      let vw, vb = velocity.(i) in
      let scale_mat m k = Tensor.Mat.axpy (k -. 1.) m m in
      ignore scale_mat;
      (* v *= momentum *)
      Tensor.Mat.axpy (momentum -. 1.) vw vw;
      Tensor.Vec.axpy (momentum -. 1.) vb vb;
      (* v -= step * grad *)
      Tensor.Mat.axpy (-.step) aw vw;
      Tensor.Vec.axpy (-.step) ab vb;
      let layer = net.Network.layers.(i) in
      Tensor.Mat.add_inplace layer.Layer.weights vw;
      Tensor.Vec.add_inplace layer.Layer.bias vb)
    acc;
  !total_loss /. float_of_int n

let train ?(config = default_config) net ~inputs ~labels =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Train.train: no samples";
  if Array.length labels <> n then invalid_arg "Train.train: label count";
  let rng = Util.Rng.create config.shuffle_seed in
  let order = Array.init n (fun i -> i) in
  let total_epochs = config.epochs_phase1 + config.epochs_phase2 in
  let losses = Array.make total_epochs 0. in
  let accuracies = Array.make total_epochs 0. in
  let velocity = zero_gradients net in
  for epoch = 0 to total_epochs - 1 do
    let lr =
      if epoch < config.epochs_phase1 then config.lr_phase1 else config.lr_phase2
    in
    (match config.mode with
    | Batch ->
        losses.(epoch) <-
          batch_step net ~loss:config.loss ~lr ~momentum:config.momentum
            ~velocity ~inputs ~labels
    | Stochastic ->
        Util.Rng.shuffle rng order;
        let loss_sum = ref 0. in
        Array.iter
          (fun i ->
            loss_sum :=
              !loss_sum
              +. sgd_step ~loss:config.loss net ~lr ~input:inputs.(i)
                   ~label:labels.(i))
          order;
        losses.(epoch) <- !loss_sum /. float_of_int n);
    let correct = ref 0 in
    Array.iteri
      (fun i x -> if Network.predict net x = labels.(i) then incr correct)
      inputs;
    accuracies.(epoch) <- float_of_int !correct /. float_of_int n
  done;
  { epoch_losses = losses; epoch_accuracies = accuracies }
