let check_lengths name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch")

let accuracy_of_predictions ~predicted ~labels =
  check_lengths "Metrics.accuracy_of_predictions" predicted labels;
  let n = Array.length labels in
  if n = 0 then invalid_arg "Metrics.accuracy_of_predictions: empty";
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = labels.(i) then incr correct) predicted;
  float_of_int !correct /. float_of_int n

let confusion_of_predictions ~classes ~predicted ~labels =
  check_lengths "Metrics.confusion_of_predictions" predicted labels;
  let m = Array.make_matrix classes classes 0 in
  Array.iteri
    (fun i p -> m.(labels.(i)).(p) <- m.(labels.(i)).(p) + 1)
    predicted;
  m

let predictions net inputs = Array.map (Network.predict net) inputs

let accuracy net ~inputs ~labels =
  accuracy_of_predictions ~predicted:(predictions net inputs) ~labels

let confusion net ~inputs ~labels =
  confusion_of_predictions ~classes:(Network.out_dim net)
    ~predicted:(predictions net inputs) ~labels
