type t = { layers : Layer.t array }

let create ~rng ~spec ~hidden_activation =
  let dims = Array.of_list spec in
  let n = Array.length dims in
  if n < 2 then invalid_arg "Network.create: spec needs >= 2 layers";
  let make_layer i =
    let activation =
      if i = n - 2 then Activation.Identity else hidden_activation
    in
    Layer.create ~rng ~in_dim:dims.(i) ~out_dim:dims.(i + 1) ~activation
  in
  { layers = Array.init (n - 1) make_layer }

let paper_network ~rng =
  create ~rng ~spec:[ 5; 20; 2 ] ~hidden_activation:Activation.Relu

let forward_trace t x =
  let n = Array.length t.layers in
  let trace = Array.make n (x, x) in
  let rec loop i input =
    if i < n then begin
      let pre, post = Layer.forward_pre t.layers.(i) input in
      trace.(i) <- (pre, post);
      loop (i + 1) post
    end
  in
  loop 0 x;
  trace

let forward t x =
  Array.fold_left (fun acc layer -> Layer.forward layer acc) x t.layers

let predict t x = Tensor.Vec.argmax (forward t x)

let in_dim t = Layer.in_dim t.layers.(0)

let out_dim t = Layer.out_dim t.layers.(Array.length t.layers - 1)

let n_params t =
  Array.fold_left
    (fun acc (layer : Layer.t) ->
      acc + (Layer.in_dim layer * Layer.out_dim layer) + Layer.out_dim layer)
    0 t.layers

let copy t = { layers = Array.map Layer.copy t.layers }

(* net((x - shift) * scale) = W diag(scale) x + (b - W (shift * scale)).
   Only the first layer changes. *)
let fold_input_affine t ~shift ~scale =
  let first = t.layers.(0) in
  let in_dim = Layer.in_dim first in
  if Array.length shift <> in_dim || Array.length scale <> in_dim then
    invalid_arg "Network.fold_input_affine: size mismatch";
  let w = first.Layer.weights in
  let rows, cols = Tensor.Mat.dims w in
  let weights' =
    Tensor.Mat.init ~rows ~cols (fun r c -> Tensor.Mat.get w r c *. scale.(c))
  in
  let shifted = Array.mapi (fun i s -> s *. scale.(i)) shift in
  let bias' =
    Tensor.Vec.sub first.Layer.bias (Tensor.Mat.mul_vec w shifted)
  in
  let first' = { first with Layer.weights = weights'; bias = bias' } in
  let layers = Array.copy t.layers in
  layers.(0) <- first';
  { layers }
