lib/nn/normalize.mli:
