lib/nn/qnet.mli: Format
