lib/nn/metrics.mli: Network Tensor
