lib/nn/activation.ml: Tensor
