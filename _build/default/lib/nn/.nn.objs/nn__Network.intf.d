lib/nn/network.mli: Activation Layer Tensor Util
