lib/nn/network.ml: Activation Array Layer Tensor
