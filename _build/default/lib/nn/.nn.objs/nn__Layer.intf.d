lib/nn/layer.mli: Activation Tensor Util
