lib/nn/train.ml: Activation Array Layer Network Tensor Util
