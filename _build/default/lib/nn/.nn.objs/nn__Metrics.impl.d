lib/nn/metrics.ml: Array Network
