lib/nn/train.mli: Network Tensor
