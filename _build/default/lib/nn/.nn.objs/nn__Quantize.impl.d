lib/nn/quantize.ml: Activation Array Float Layer Network Qnet Stdlib Tensor
