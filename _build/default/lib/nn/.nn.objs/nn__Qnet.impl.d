lib/nn/qnet.ml: Array Buffer Format Fun List Printf String
