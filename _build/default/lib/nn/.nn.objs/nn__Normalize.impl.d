lib/nn/normalize.ml: Array Stdlib
