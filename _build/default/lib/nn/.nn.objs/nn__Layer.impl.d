lib/nn/layer.ml: Activation Array Tensor Util
