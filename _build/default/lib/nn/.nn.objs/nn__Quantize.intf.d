lib/nn/quantize.mli: Network Qnet
