lib/nn/activation.mli: Tensor
