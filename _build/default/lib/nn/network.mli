(** Feed-forward fully-connected network.

    The paper's architecture is input(6: 5 genes + bias node) - hidden(20,
    ReLU) - output(2, maxpool). The explicit bias input node of Fig. 3 is
    modelled by each layer's bias vector, and maxpool over the two output
    nodes is the argmax taken by {!predict} — the same classification
    function. *)

type t = { layers : Layer.t array }

val create :
  rng:Util.Rng.t ->
  spec:int list ->
  hidden_activation:Activation.t ->
  t
(** [create ~rng ~spec:[6; 20; 2] ~hidden_activation:Relu] builds the
    paper's network: every layer but the last uses [hidden_activation]; the
    last is [Identity] (argmax happens in {!predict}). [spec] needs at
    least two entries. *)

val paper_network : rng:Util.Rng.t -> t
(** The 5-input, 20-hidden, 2-output network of the case study (5 gene
    inputs; the paper's sixth input node is the constant bias). *)

val forward : t -> Tensor.Vec.t -> Tensor.Vec.t
(** Output-layer values (logits). *)

val forward_trace : t -> Tensor.Vec.t -> (Tensor.Vec.t * Tensor.Vec.t) array
(** Per-layer [(pre_activation, activated)] pairs, for backpropagation. *)

val predict : t -> Tensor.Vec.t -> int
(** Argmax of {!forward} — the paper's maxpool output selection. *)

val in_dim : t -> int
val out_dim : t -> int
val n_params : t -> int
val copy : t -> t

val fold_input_affine : t -> shift:float array -> scale:float array -> t
(** [fold_input_affine net ~shift ~scale] returns a network [net'] with
    [net' x = net ((x - shift) * scale)] (element-wise), by rewriting the
    first layer. Used to fold training-time feature standardisation into
    the weights so the deployed network consumes raw integer gene
    expressions, like the paper's model. *)
