(** Scalar activation functions.

    The paper's network uses ReLU in the hidden layer and maxpool (argmax
    selection) at the output; argmax is handled by {!Network.predict}, so
    the output layer itself is [Identity]. [Sigmoid] is provided for the
    activation ablation. *)

type t = Relu | Sigmoid | Identity

val apply : t -> float -> float

val derivative : t -> float -> float
(** Derivative with respect to the pre-activation, evaluated at the
    pre-activation value. The ReLU derivative at exactly 0 is taken as 0. *)

val apply_vec : t -> Tensor.Vec.t -> Tensor.Vec.t
val derivative_vec : t -> Tensor.Vec.t -> Tensor.Vec.t
val to_string : t -> string
val equal : t -> t -> bool
