type t = { mean : float array; std : float array }

let fit rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Normalize.fit: empty";
  let d = Array.length rows.(0) in
  let mean = Array.make d 0. in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Normalize.fit: ragged rows";
      Array.iteri (fun j v -> mean.(j) <- mean.(j) +. float_of_int v) row)
    rows;
  let nf = float_of_int n in
  Array.iteri (fun j s -> mean.(j) <- s /. nf) mean;
  let var = Array.make d 0. in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          let dlt = float_of_int v -. mean.(j) in
          var.(j) <- var.(j) +. (dlt *. dlt))
        row)
    rows;
  let std = Array.map (fun v -> Stdlib.max 1. (sqrt (v /. nf))) var in
  { mean; std }

let apply t x =
  if Array.length x <> Array.length t.mean then
    invalid_arg "Normalize.apply: size mismatch";
  Array.mapi (fun j v -> (float_of_int v -. t.mean.(j)) /. t.std.(j)) x

let shift_scale t = (t.mean, Array.map (fun s -> 1. /. s) t.std)
