(** Stochastic-gradient-descent trainer with softmax cross-entropy loss.

    The paper trains in MATLAB with a two-phase learning-rate schedule
    (0.5 for the first 40 epochs, then 0.2 for another 40); {!default_config}
    mirrors that schedule. Training operates on standardised features
    (see {!Normalize}); the caller folds the normalisation back into the
    network afterwards. *)

type loss_kind =
  | Mse            (** mean squared error on one-hot targets — MATLAB's
                       classic [traingd] objective, the paper's setup.
                       Under class imbalance the outputs regress toward
                       the class prior, which shifts the decision boundary
                       toward the minority class — the mechanism behind
                       the paper's training-bias observation. *)
  | Cross_entropy  (** softmax cross-entropy *)

type mode =
  | Batch       (** one step along the mean gradient per epoch, MATLAB
                    [traingd] semantics *)
  | Stochastic  (** per-sample updates in shuffled order *)

type config = {
  epochs_phase1 : int;
  lr_phase1 : float;
  epochs_phase2 : int;
  lr_phase2 : float;
  shuffle_seed : int;
  loss : loss_kind;
  mode : mode;
  momentum : float;
      (** classical momentum on the mean gradient (batch mode only);
          MATLAB's [traingdm]. 0. recovers plain gradient descent. *)
}

val default_config : config
(** The paper's schedule (40 epochs at 0.5 then 40 at 0.2) with per-sample
    softmax cross-entropy SGD. The paper trains in MATLAB with MSE batch
    gradient descent, but at those learning rates batch-MSE diverges or
    underfits on this data depending on the initialisation (MATLAB's
    default trainer is the far stronger Levenberg-Marquardt); CE-SGD
    reaches the paper's 100 % / 94.12 % accuracies reliably with the same
    schedule. The literal MATLAB-style objective is kept as
    {!paper_matlab_config} for the training-objective ablation. *)

val paper_matlab_config : config
(** Full-batch MSE with momentum 0.9 (MATLAB [traingdm]) at the paper's
    learning rates. *)

type history = {
  epoch_losses : float array;      (** mean loss per epoch *)
  epoch_accuracies : float array;  (** training accuracy per epoch *)
}

val cross_entropy : Tensor.Vec.t -> int -> float
(** [cross_entropy logits label] is the softmax cross-entropy loss. *)

val mse : Tensor.Vec.t -> int -> float
(** [mse outputs label] is the squared error against the one-hot target. *)

val loss_value : loss_kind -> Tensor.Vec.t -> int -> float

val train :
  ?config:config ->
  Network.t ->
  inputs:Tensor.Vec.t array ->
  labels:int array ->
  history
(** Trains the network in place (its weight matrices are mutated) and
    returns the per-epoch history. [inputs] and [labels] must have equal
    non-zero length, labels in [\[0, out_dim)]. *)

val sgd_step :
  ?loss:loss_kind -> Network.t -> lr:float -> input:Tensor.Vec.t -> label:int -> float
(** One backpropagation update on a single sample; returns the loss before
    the update (default loss: [Mse]). Exposed for tests (gradient
    checking). *)
