type t = Relu | Sigmoid | Identity

let apply t x =
  match t with
  | Relu -> if x > 0. then x else 0.
  | Sigmoid -> 1. /. (1. +. exp (-.x))
  | Identity -> x

let derivative t x =
  match t with
  | Relu -> if x > 0. then 1. else 0.
  | Sigmoid ->
      let s = apply Sigmoid x in
      s *. (1. -. s)
  | Identity -> 1.

let apply_vec t v = Tensor.Vec.map (apply t) v

let derivative_vec t v = Tensor.Vec.map (derivative t) v

let to_string = function
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Identity -> "identity"

let equal a b =
  match (a, b) with
  | Relu, Relu | Sigmoid, Sigmoid | Identity, Identity -> true
  | (Relu | Sigmoid | Identity), _ -> false
