(** Per-feature standardisation fitted on the training set.

    Training uses standardised features for conditioning; the fitted
    transform is then folded into the network's first layer
    ({!Network.fold_input_affine}) so the deployed model consumes raw
    integer gene expressions like the paper's. *)

type t = { mean : float array; std : float array }

val fit : int array array -> t
(** Column-wise mean and standard deviation of a non-empty feature matrix;
    standard deviations below [1.] are clamped to [1.] to avoid blow-up on
    near-constant genes. *)

val apply : t -> int array -> float array
(** [(x - mean) / std]. *)

val shift_scale : t -> float array * float array
(** [(shift, scale)] arguments for {!Network.fold_input_affine}: the folded
    network computes [net ((x - shift) * scale)]. *)
