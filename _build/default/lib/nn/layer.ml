type t = {
  weights : Tensor.Mat.t;
  bias : Tensor.Vec.t;
  activation : Activation.t;
}

let create ~rng ~in_dim ~out_dim ~activation =
  if in_dim <= 0 || out_dim <= 0 then invalid_arg "Layer.create: bad dims";
  let scale = sqrt (2. /. float_of_int in_dim) in
  let weights =
    Tensor.Mat.init ~rows:out_dim ~cols:in_dim (fun _ _ ->
        scale *. Util.Rng.gaussian rng)
  in
  { weights; bias = Tensor.Vec.create out_dim; activation }

let of_parts ~weights ~bias ~activation =
  let m = Tensor.Mat.of_rows weights in
  let rows, _ = Tensor.Mat.dims m in
  if Array.length bias <> rows then invalid_arg "Layer.of_parts: bias size";
  { weights = m; bias = Tensor.Vec.of_array bias; activation }

let in_dim t = snd (Tensor.Mat.dims t.weights)

let out_dim t = fst (Tensor.Mat.dims t.weights)

let forward_pre t x =
  let pre = Tensor.Vec.add (Tensor.Mat.mul_vec t.weights x) t.bias in
  (pre, Activation.apply_vec t.activation pre)

let forward t x = snd (forward_pre t x)

let copy t =
  { t with weights = Tensor.Mat.copy t.weights; bias = Tensor.Vec.copy t.bias }
