type label = L0 | L1

type t = { features : int array; label : label }

let label_to_int = function L0 -> 0 | L1 -> 1

let label_of_int = function
  | 0 -> L0
  | 1 -> L1
  | n -> invalid_arg (Printf.sprintf "Sample.label_of_int: %d" n)

let label_to_string = function L0 -> "L0" | L1 -> "L1"

let label_equal a b =
  match (a, b) with L0, L0 | L1, L1 -> true | L0, L1 | L1, L0 -> false

let project s genes =
  { s with features = Array.map (fun g -> s.features.(g)) genes }

let count_label samples label =
  Array.fold_left
    (fun acc s -> if label_equal s.label label then acc + 1 else acc)
    0 samples

let class_share samples label =
  if Array.length samples = 0 then invalid_arg "Sample.class_share: empty";
  float_of_int (count_label samples label) /. float_of_int (Array.length samples)
