(** Synthetic Golub-like Leukemia dataset.

    The paper trains on the public Golub microarray dataset (7129 genes,
    38 training and 34 test samples, ALL vs AML). That file is fetched from
    the web in the original work; this container is sealed, so we generate
    a statistically equivalent dataset (see DESIGN.md §2):

    - 7129 integer gene-expression features per sample;
    - 38 training samples with roughly 70 % in the majority class [L1]
      (the training bias the paper analyses) and 34 test samples;
    - a small set of informative genes whose class-conditional levels
      differ, recoverable by mRMR;
    - log-normal measurement noise so that a few test samples sit near the
      class boundary (the paper's 94.12 % test accuracy regime).

    Generation is fully deterministic in the seed. *)

type t = {
  train : Sample.t array;
  test : Sample.t array;
  n_genes : int;
  informative : int array;  (** indices of class-informative genes *)
}

type params = {
  n_genes : int;         (** total genes, paper: 7129 *)
  n_informative : int;   (** genes with class-dependent expression *)
  n_train_l0 : int;      (** paper (Golub): 11 AML *)
  n_train_l1 : int;      (** paper (Golub): 27 ALL *)
  n_test_l0 : int;       (** paper (Golub): 14 AML *)
  n_test_l1 : int;       (** paper (Golub): 20 ALL *)
  separation : float;    (** log-scale distance between class means *)
  noise_sigma : float;   (** log-scale measurement noise *)
  minority_spread : float;
      (** multiplier on [noise_sigma] for the minority class L0 (AML):
          the AML class of the real Golub data is markedly more
          heterogeneous than ALL, which places L0 samples closer to the
          decision boundary — the precondition for the paper's observation
          that noise flips L0 inputs into L1 and not vice versa. *)
  n_test_outliers : int;
      (** test samples labelled L0 whose expression profile follows the L1
          distribution — atypical patients, like the handful of samples in
          the real Golub data that every classifier misses. They are
          confidently misclassified (far from the boundary on the wrong
          side), which reproduces the paper's 94.12 % test accuracy
          without collapsing the noise tolerance of the remaining,
          correctly classified inputs. *)
}

val default_params : params
(** The Golub-shaped configuration described above. *)

val tiny_params : params
(** A 64-gene variant for fast unit tests. *)

val generate : ?params:params -> seed:int -> unit -> t
(** Deterministic synthesis; equal seeds and params give equal datasets. *)

val save : dir:string -> t -> unit
(** Persist train/test matrices as CSV ([<dir>/train.csv], [<dir>/test.csv];
    the label is the last column). *)

val load : dir:string -> n_genes:int -> informative:int array -> t
(** Inverse of [save]. *)
