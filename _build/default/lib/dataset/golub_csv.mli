(** Loader for the real Golub Leukemia CSV (the paper's reference [24],
    [leukemia_big.csv] from the CASI data collection).

    The container this reproduction was built in is sealed, so the repo
    ships a synthetic equivalent ({!Golub}); users who have the original
    file can load it here and run the identical pipeline on real data.

    Expected layout: a header row of quoted sample labels ("ALL"/"AML",
    72 columns) followed by one row per gene (7129 rows) with numeric
    expression values (floats are rounded to integers). ALL maps to the
    paper's majority label [L1], AML to [L0]. The published file does not
    record the original train/test split, so the first [n_train] columns
    (default 38, the original training size) become the training set. *)

val parse : ?n_train:int -> string -> (Golub.t, string) result
(** Parse file contents. The result's [informative] list is empty (not
    known for real data). *)

val load : ?n_train:int -> string -> (Golub.t, string) result
(** [load path] reads and {!parse}s the file. *)
