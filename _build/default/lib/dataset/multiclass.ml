type params = {
  n_classes : int;
  n_genes : int;
  n_informative : int;
  train_per_class : int array;
  test_per_class : int array;
  separation : float;
  noise_sigma : float;
}

type t = {
  train : (int array * int) array;
  test : (int array * int) array;
  n_classes : int;
  informative : int array;
}

let default_params =
  {
    n_classes = 3;
    n_genes = 256;
    n_informative = 12;
    train_per_class = [| 18; 10; 6 |];
    test_per_class = [| 10; 7; 5 |];
    separation = 1.1;
    noise_sigma = 0.4;
  }

let check (params : params) =
  if params.n_classes < 2 then invalid_arg "Multiclass: n_classes < 2";
  if Array.length params.train_per_class <> params.n_classes
     || Array.length params.test_per_class <> params.n_classes
  then invalid_arg "Multiclass: per-class counts mismatch";
  if params.n_informative > params.n_genes then
    invalid_arg "Multiclass: too many informative genes"

(* Each informative gene is over-expressed in exactly one class (its
   "marker" class), round-robin. *)
type gene_model = { base : float; marker : int option }

let clip v = max 1 (min 50000 v)

let make_models rng params =
  let indices = Array.init params.n_genes (fun i -> i) in
  Util.Rng.shuffle rng indices;
  let chosen = Array.sub indices 0 params.n_informative in
  let marker_of = Hashtbl.create 16 in
  Array.iteri (fun rank g -> Hashtbl.add marker_of g (rank mod params.n_classes)) chosen;
  let models =
    Array.init params.n_genes (fun g ->
        {
          base = Util.Rng.gaussian_mu_sigma rng ~mu:(log 500.) ~sigma:0.8;
          marker = Hashtbl.find_opt marker_of g;
        })
  in
  Array.sort compare chosen;
  (models, chosen)

let sample rng params models label =
  let features =
    Array.map
      (fun m ->
        let shift =
          match m.marker with
          | Some c when c = label -> params.separation
          | Some _ | None -> 0.
        in
        let level =
          m.base +. shift
          +. Util.Rng.gaussian_mu_sigma rng ~mu:0. ~sigma:params.noise_sigma
        in
        clip (int_of_float (Float.round (exp level))))
      models
  in
  (features, label)

let generate ?(params = default_params) ~seed () =
  check params;
  let rng = Util.Rng.create seed in
  let models, informative = make_models rng params in
  let batch counts =
    Array.concat
      (List.init params.n_classes (fun c ->
           Array.init counts.(c) (fun _ -> sample rng params models c)))
  in
  let train = batch params.train_per_class in
  let test = batch params.test_per_class in
  Util.Rng.shuffle rng train;
  Util.Rng.shuffle rng test;
  { train; test; n_classes = params.n_classes; informative }

let class_counts samples ~n_classes =
  let counts = Array.make n_classes 0 in
  Array.iter
    (fun (_, l) ->
      if l < 0 || l >= n_classes then invalid_arg "Multiclass.class_counts";
      counts.(l) <- counts.(l) + 1)
    samples;
  counts

let select_genes t ~k ~bins =
  if Array.length t.train = 0 then invalid_arg "Multiclass.select_genes: empty";
  let labels = Array.map snd t.train in
  let n_genes = Array.length (fst t.train.(0)) in
  if k < 1 || k > n_genes then invalid_arg "Multiclass.select_genes: k";
  let column g = Array.map (fun (x, _) -> x.(g)) t.train in
  let relevance =
    Array.init n_genes (fun g ->
        Mutual_info.feature_label_mi ~values:(column g) ~labels ~bins)
  in
  let binned = Array.make n_genes None in
  let binned_column g =
    match binned.(g) with
    | Some b -> b
    | None ->
        let b = Mutual_info.discretize (column g) ~bins in
        binned.(g) <- Some b;
        b
  in
  let taken = Array.make n_genes false in
  let selected = ref [] in
  for _ = 1 to k do
    let best = ref None in
    for g = 0 to n_genes - 1 do
      if not taken.(g) then begin
        let redundancy =
          match !selected with
          | [] -> 0.
          | picks ->
              List.fold_left
                (fun acc p ->
                  acc
                  +. Mutual_info.mutual_information (binned_column g) (binned_column p))
                0. picks
              /. float_of_int (List.length picks)
        in
        let value = relevance.(g) -. redundancy in
        match !best with
        | Some (_, bv) when bv >= value -> ()
        | Some _ | None -> best := Some (g, value)
      end
    done;
    match !best with
    | Some (g, _) ->
        taken.(g) <- true;
        selected := g :: !selected
    | None -> assert false
  done;
  Array.of_list (List.rev !selected)

let project t ~genes =
  let pick (x, l) = (Array.map (fun g -> x.(g)) genes, l) in
  { t with train = Array.map pick t.train; test = Array.map pick t.test }
