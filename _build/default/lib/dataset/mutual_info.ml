let discretize values ~bins =
  if bins <= 0 then invalid_arg "Mutual_info.discretize: bins must be positive";
  let n = Array.length values in
  if n = 0 then [||]
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    (* Quantile cut points: value at rank k*n/bins starts bin k. *)
    let cut k = sorted.(min (n - 1) (k * n / bins)) in
    let cuts = Array.init (bins - 1) (fun k -> cut (k + 1)) in
    let bin_of v =
      (* First cut strictly greater than v determines the bin. *)
      let rec loop i = if i >= bins - 1 then bins - 1 else if v < cuts.(i) then i else loop (i + 1) in
      loop 0
    in
    Array.map bin_of values
  end

let check_same_length name xs ys =
  if Array.length xs <> Array.length ys then invalid_arg (name ^ ": length mismatch")

let max_symbol xs = Array.fold_left max 0 xs + 1

let entropy xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let counts = Array.make (max_symbol xs) 0 in
    Array.iter (fun x -> counts.(x) <- counts.(x) + 1) xs;
    let nf = float_of_int n in
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. nf in
          acc -. (p *. log p))
      0. counts
  end

let mutual_information xs ys =
  check_same_length "Mutual_info.mutual_information" xs ys;
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let kx = max_symbol xs and ky = max_symbol ys in
    let joint = Array.make (kx * ky) 0 in
    let cx = Array.make kx 0 and cy = Array.make ky 0 in
    Array.iteri
      (fun i x ->
        let y = ys.(i) in
        joint.((x * ky) + y) <- joint.((x * ky) + y) + 1;
        cx.(x) <- cx.(x) + 1;
        cy.(y) <- cy.(y) + 1)
      xs;
    let nf = float_of_int n in
    let acc = ref 0. in
    for x = 0 to kx - 1 do
      for y = 0 to ky - 1 do
        let j = joint.((x * ky) + y) in
        if j > 0 then begin
          let pxy = float_of_int j /. nf in
          let px = float_of_int cx.(x) /. nf in
          let py = float_of_int cy.(y) /. nf in
          acc := !acc +. (pxy *. log (pxy /. (px *. py)))
        end
      done
    done;
    max 0. !acc
  end

let feature_label_mi ~values ~labels ~bins =
  mutual_information (discretize values ~bins) labels

let feature_feature_mi ~values1 ~values2 ~bins =
  mutual_information (discretize values1 ~bins) (discretize values2 ~bins)
