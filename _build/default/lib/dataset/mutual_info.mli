(** Discrete mutual information for feature scoring.

    Continuous-valued gene expressions are discretised by equal-frequency
    (quantile) binning before MI is computed — the standard preprocessing
    for mRMR on microarray data. *)

val discretize : int array -> bins:int -> int array
(** [discretize values ~bins] maps each value to a bin index in
    [\[0, bins)]; bin boundaries are the quantiles of [values], so the bins
    have near-equal population. [bins] must be positive. *)

val mutual_information : int array -> int array -> float
(** [mutual_information xs ys] over two equal-length discrete sequences, in
    nats. Symmetric and non-negative (up to float rounding). *)

val entropy : int array -> float
(** Shannon entropy of a discrete sequence, in nats. *)

val feature_label_mi : values:int array -> labels:int array -> bins:int -> float
(** MI between a raw (undigitised) feature column and discrete labels. *)

val feature_feature_mi :
  values1:int array -> values2:int array -> bins:int -> float
(** MI between two raw feature columns, both quantile-binned. *)
