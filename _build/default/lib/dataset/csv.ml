let check_cell cell =
  if String.contains cell ',' || String.contains cell '\n' then
    invalid_arg ("Csv.write: cell contains separator: " ^ cell)

let write path rows =
  let oc = open_out path in
  let write_row row =
    List.iter check_cell row;
    output_string oc (String.concat "," row);
    output_char oc '\n'
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> List.iter write_row rows)

let read path =
  let ic = open_in path in
  let read_all () =
    let rec loop acc =
      match input_line ic with
      | line ->
          if String.length line = 0 then loop acc
          else loop (String.split_on_char ',' line :: acc)
      | exception End_of_file -> List.rev acc
    in
    loop []
  in
  Fun.protect ~finally:(fun () -> close_in ic) read_all

let write_int_table path table =
  let rows =
    Array.to_list table
    |> List.map (fun row -> Array.to_list row |> List.map string_of_int)
  in
  write path rows

let read_int_table path =
  let cell_to_int c =
    match int_of_string_opt (String.trim c) with
    | Some v -> v
    | None -> failwith ("Csv.read_int_table: not an integer: " ^ c)
  in
  read path
  |> List.map (fun row -> Array.of_list (List.map cell_to_int row))
  |> Array.of_list
