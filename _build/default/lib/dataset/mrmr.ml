type score = { gene : int; relevance : float; redundancy : float }

let column samples g =
  Array.map (fun (s : Sample.t) -> s.features.(g)) samples

let labels_of samples =
  Array.map (fun (s : Sample.t) -> Sample.label_to_int s.label) samples

let relevances samples ~bins =
  let labels = labels_of samples in
  let n_genes = Array.length (samples.(0) : Sample.t).features in
  Array.init n_genes (fun g ->
      Mutual_info.feature_label_mi ~values:(column samples g) ~labels ~bins)

let relevance_ranking samples ~bins =
  if Array.length samples = 0 then invalid_arg "Mrmr.relevance_ranking: empty";
  let rel = relevances samples ~bins in
  let ranked = Array.mapi (fun g r -> (g, r)) rel in
  Array.sort (fun (_, a) (_, b) -> compare b a) ranked;
  ranked

let select_with_scores samples ~k ~bins =
  if Array.length samples = 0 then invalid_arg "Mrmr.select: empty samples";
  let n_genes = Array.length (samples.(0) : Sample.t).features in
  if k < 1 || k > n_genes then invalid_arg "Mrmr.select: k out of range";
  let rel = relevances samples ~bins in
  (* Discretised columns are cached lazily: pairwise MI is only ever needed
     against the few selected genes. *)
  let binned = Array.make n_genes None in
  let binned_column g =
    match binned.(g) with
    | Some b -> b
    | None ->
        let b = Mutual_info.discretize (column samples g) ~bins in
        binned.(g) <- Some b;
        b
  in
  let selected = ref [] in
  let taken = Array.make n_genes false in
  let mean_redundancy g =
    match !selected with
    | [] -> 0.
    | picks ->
        let total =
          List.fold_left
            (fun acc p ->
              acc +. Mutual_info.mutual_information (binned_column g) (binned_column p.gene))
            0. picks
        in
        total /. float_of_int (List.length picks)
  in
  for _step = 1 to k do
    let best = ref None in
    for g = 0 to n_genes - 1 do
      if not taken.(g) then begin
        let redundancy = mean_redundancy g in
        let value = rel.(g) -. redundancy in
        match !best with
        | Some (_, _, best_value) when best_value >= value -> ()
        | Some _ | None -> best := Some (g, redundancy, value)
      end
    done;
    match !best with
    | None -> assert false
    | Some (g, redundancy, _) ->
        taken.(g) <- true;
        selected := { gene = g; relevance = rel.(g); redundancy } :: !selected
  done;
  Array.of_list (List.rev !selected)

let select samples ~k ~bins =
  Array.map (fun s -> s.gene) (select_with_scores samples ~k ~bins)
