(** Minimum-Redundancy Maximum-Relevance feature selection.

    The paper selects the top five most significant genes with mRMR
    (reference [25]) before training. This is the standard greedy MID
    variant: the first gene maximises relevance [MI(gene; label)]; each
    subsequent gene maximises relevance minus mean redundancy
    [MI(gene; already-selected)]. *)

type score = { gene : int; relevance : float; redundancy : float }

val select : Sample.t array -> k:int -> bins:int -> int array
(** [select samples ~k ~bins] returns [k] gene indices in selection order.
    Requires a non-empty sample array and [1 <= k <= n_genes]. *)

val select_with_scores : Sample.t array -> k:int -> bins:int -> score array
(** Like [select] but also reports each pick's relevance and mean
    redundancy at selection time. *)

val relevance_ranking : Sample.t array -> bins:int -> (int * float) array
(** All genes sorted by decreasing [MI(gene; label)] — the pure max-
    relevance baseline, exposed for the feature-selection ablation. *)
