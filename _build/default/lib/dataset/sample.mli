(** Labelled samples for the Leukemia classification task.

    The paper's two classes are Acute Myeloid Leukemia and Acute
    Lymphoblast Leukemia; following the paper's output naming, [L0] is the
    AML (minority) class and [L1] the ALL (majority) class. Feature values
    are integer gene-expression levels, matching the paper's integer input
    domain. *)

type label = L0 | L1

type t = { features : int array; label : label }

val label_to_int : label -> int
(** [L0 -> 0], [L1 -> 1]. *)

val label_of_int : int -> label
(** Inverse of [label_to_int]; raises [Invalid_argument] otherwise. *)

val label_to_string : label -> string
val label_equal : label -> label -> bool

val project : t -> int array -> t
(** [project s genes] keeps only the features at the given gene indices, in
    the given order. *)

val class_share : t array -> label -> float
(** Fraction of samples carrying the given label. *)

val count_label : t array -> label -> int
