(** Minimal CSV reader/writer.

    Supports the unquoted comma-separated tables used to persist datasets
    and experiment rows. Cells must not contain commas or newlines; [write]
    raises [Invalid_argument] if they do. *)

val write : string -> string list list -> unit
(** [write path rows] writes one line per row. *)

val read : string -> string list list
(** [read path] splits each non-empty line on commas. *)

val write_int_table : string -> int array array -> unit
val read_int_table : string -> int array array
(** Raises [Failure] if a cell is not an integer. *)
