type t = {
  train : Sample.t array;
  test : Sample.t array;
  n_genes : int;
  informative : int array;
}

type params = {
  n_genes : int;
  n_informative : int;
  n_train_l0 : int;
  n_train_l1 : int;
  n_test_l0 : int;
  n_test_l1 : int;
  separation : float;
  noise_sigma : float;
  minority_spread : float;
  n_test_outliers : int;
}

let default_params =
  {
    n_genes = 7129;
    n_informative = 25;
    n_train_l0 = 11;
    n_train_l1 = 27;
    n_test_l0 = 14;
    n_test_l1 = 20;
    separation = 0.9;
    noise_sigma = 0.45;
    minority_spread = 1.05;
    n_test_outliers = 1;
  }

let tiny_params =
  {
    n_genes = 64;
    n_informative = 8;
    n_train_l0 = 6;
    n_train_l1 = 14;
    n_test_l0 = 5;
    n_test_l1 = 10;
    separation = 1.0;
    noise_sigma = 0.35;
    minority_spread = 1.4;
    n_test_outliers = 1;
  }

(* Per-gene model: expression = round(exp(base + class_shift + noise)),
   clipped to [1, 50000]. Informative genes carry a +/- separation/2 shift
   whose sign depends on the class; all other genes are class-independent. *)

type gene_model = { base : float; shift_l0 : float; shift_l1 : float }

let clip_expression v = max 1 (min 50000 v)

let sample_expression rng model label ~noise_sigma =
  let shift =
    match (label : Sample.label) with
    | L0 -> model.shift_l0
    | L1 -> model.shift_l1
  in
  let log_level =
    model.base +. shift +. Util.Rng.gaussian_mu_sigma rng ~mu:0. ~sigma:noise_sigma
  in
  clip_expression (int_of_float (Float.round (exp log_level)))

let make_gene_models rng params =
  let informative = Array.make params.n_genes false in
  (* Choose the informative gene indices by a deterministic shuffle. *)
  let indices = Array.init params.n_genes (fun i -> i) in
  Util.Rng.shuffle rng indices;
  let chosen = Array.sub indices 0 params.n_informative in
  Array.iter (fun g -> informative.(g) <- true) chosen;
  let model _g is_informative =
    let base = Util.Rng.gaussian_mu_sigma rng ~mu:(log 500.) ~sigma:0.8 in
    if is_informative then
      let half = params.separation /. 2. in
      (* Random orientation: some genes are over-expressed in L0, others in
         L1, as in real microarray signatures. *)
      if Util.Rng.bool rng then
        { base; shift_l0 = half; shift_l1 = -.half }
      else { base; shift_l0 = -.half; shift_l1 = half }
    else { base; shift_l0 = 0.; shift_l1 = 0. }
  in
  let models = Array.init params.n_genes (fun g -> model g informative.(g)) in
  (models, chosen)

let make_sample rng models label ~noise_sigma =
  let features =
    Array.map (fun m -> sample_expression rng m label ~noise_sigma) models
  in
  { Sample.features; label }

let class_sigma params (label : Sample.label) =
  match label with
  | Sample.L0 -> params.noise_sigma *. params.minority_spread
  | Sample.L1 -> params.noise_sigma

let generate ?(params = default_params) ~seed () =
  if params.n_test_outliers > params.n_test_l0 then
    invalid_arg "Golub.generate: more outliers than L0 test samples";
  let rng = Util.Rng.create seed in
  let models, chosen = make_gene_models rng params in
  let batch n label =
    Array.init n (fun _ ->
        make_sample rng models label ~noise_sigma:(class_sigma params label))
  in
  let train_l0 = batch params.n_train_l0 Sample.L0 in
  let train_l1 = batch params.n_train_l1 Sample.L1 in
  let test_l0 =
    (* The last [n_test_outliers] L0 test patients present an L1-like
       expression profile (see {!params}). *)
    Array.init params.n_test_l0 (fun i ->
        let profile =
          if i >= params.n_test_l0 - params.n_test_outliers then Sample.L1
          else Sample.L0
        in
        let s = make_sample rng models profile ~noise_sigma:(class_sigma params profile) in
        { s with Sample.label = Sample.L0 })
  in
  let test_l1 = batch params.n_test_l1 Sample.L1 in
  let train = Array.append train_l0 train_l1 in
  let test = Array.append test_l0 test_l1 in
  Util.Rng.shuffle rng train;
  Util.Rng.shuffle rng test;
  Array.sort compare chosen;
  { train; test; n_genes = params.n_genes; informative = chosen }

let samples_to_table samples =
  Array.map
    (fun (s : Sample.t) ->
      Array.append s.features [| Sample.label_to_int s.label |])
    samples

let table_to_samples table =
  Array.map
    (fun row ->
      let n = Array.length row in
      if n < 2 then failwith "Golub.load: malformed row";
      {
        Sample.features = Array.sub row 0 (n - 1);
        label = Sample.label_of_int row.(n - 1);
      })
    table

let save ~dir t =
  Csv.write_int_table (Filename.concat dir "train.csv") (samples_to_table t.train);
  Csv.write_int_table (Filename.concat dir "test.csv") (samples_to_table t.test)

let load ~dir ~n_genes ~informative =
  let train = table_to_samples (Csv.read_int_table (Filename.concat dir "train.csv")) in
  let test = table_to_samples (Csv.read_int_table (Filename.concat dir "test.csv")) in
  { train; test; n_genes; informative }
