let strip_quotes s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

let split_csv_line line = String.split_on_char ',' line

let parse_labels header =
  let cells = List.map strip_quotes (split_csv_line header) in
  (* Some exports carry a leading row-name column; drop cells that are not
     class labels. *)
  let labelled =
    List.filter_map
      (fun c ->
        match String.uppercase_ascii c with
        | "ALL" -> Some Sample.L1
        | "AML" -> Some Sample.L0
        | _ -> None)
      cells
  in
  if labelled = [] then Error "header contains no ALL/AML labels"
  else Ok (Array.of_list labelled)

let parse_value cell =
  let cell = strip_quotes cell in
  match int_of_string_opt cell with
  | Some v -> Some v
  | None -> (
      match float_of_string_opt cell with
      | Some f -> Some (int_of_float (Float.round f))
      | None -> None)

let parse ?(n_train = 38) text =
  let ( let* ) r f = Result.bind r f in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty file"
  | header :: rows ->
      let* labels = parse_labels header in
      let n_samples = Array.length labels in
      if n_train < 1 || n_train >= n_samples then
        Error (Printf.sprintf "n_train %d out of range for %d samples" n_train n_samples)
      else begin
        (* Each row is one gene; cells beyond the first n_samples numeric
           values are rejected. Non-numeric leading cells (gene names) are
           skipped. *)
        let parse_row line =
          let numeric = List.filter_map parse_value (split_csv_line line) in
          if List.length numeric <> n_samples then
            Error
              (Printf.sprintf "gene row has %d numeric cells, expected %d"
                 (List.length numeric) n_samples)
          else Ok (Array.of_list numeric)
        in
        let* gene_rows =
          List.fold_left
            (fun acc line ->
              let* rows = acc in
              let* row = parse_row line in
              Ok (row :: rows))
            (Ok []) rows
        in
        let gene_rows = Array.of_list (List.rev gene_rows) in
        let n_genes = Array.length gene_rows in
        if n_genes = 0 then Error "no gene rows"
        else begin
          let sample i =
            {
              Sample.features = Array.init n_genes (fun g -> gene_rows.(g).(i));
              label = labels.(i);
            }
          in
          let train = Array.init n_train sample in
          let test = Array.init (n_samples - n_train) (fun i -> sample (n_train + i)) in
          Ok { Golub.train; test; n_genes; informative = [||] }
        end
      end

let load ?n_train path =
  match open_in path with
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse ?n_train text
  | exception Sys_error msg -> Error msg
