lib/dataset/sample.ml: Array Printf
