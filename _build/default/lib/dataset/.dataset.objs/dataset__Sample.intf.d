lib/dataset/sample.mli:
