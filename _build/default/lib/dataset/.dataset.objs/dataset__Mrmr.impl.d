lib/dataset/mrmr.ml: Array List Mutual_info Sample
