lib/dataset/mutual_info.mli:
