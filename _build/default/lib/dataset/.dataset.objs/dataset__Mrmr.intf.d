lib/dataset/mrmr.mli: Sample
