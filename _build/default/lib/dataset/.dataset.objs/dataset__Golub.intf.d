lib/dataset/golub.mli: Sample
