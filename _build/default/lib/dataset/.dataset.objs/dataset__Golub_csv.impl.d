lib/dataset/golub_csv.ml: Array Float Fun Golub List Printf Result Sample String
