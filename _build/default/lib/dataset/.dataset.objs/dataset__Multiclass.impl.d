lib/dataset/multiclass.ml: Array Float Hashtbl List Mutual_info Util
