lib/dataset/golub_csv.mli: Golub
