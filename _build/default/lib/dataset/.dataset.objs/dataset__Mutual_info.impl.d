lib/dataset/mutual_info.ml: Array
