lib/dataset/csv.mli:
