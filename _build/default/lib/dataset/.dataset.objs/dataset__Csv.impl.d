lib/dataset/csv.ml: Array Fun List String
