lib/dataset/multiclass.mli:
