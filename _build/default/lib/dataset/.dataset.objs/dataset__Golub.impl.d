lib/dataset/golub.ml: Array Csv Filename Float Sample Util
