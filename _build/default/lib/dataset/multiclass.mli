(** Synthetic multi-class expression dataset.

    Generalises the two-class Golub-like generator to [k] classes, for
    exercising the analysis pipeline beyond the paper's binary case study
    (e.g. a three-way leukemia subtype panel ALL / AML / CML). Labels are
    plain integers in [\[0, n_classes)]. Class-conditional log-normal
    expression as in {!Golub}; each informative gene is over-expressed in
    exactly one class. *)

type params = {
  n_classes : int;
  n_genes : int;
  n_informative : int;       (** split round-robin across classes *)
  train_per_class : int array;  (** length [n_classes] *)
  test_per_class : int array;
  separation : float;
  noise_sigma : float;
}

type t = {
  train : (int array * int) array;  (** (features, label) *)
  test : (int array * int) array;
  n_classes : int;
  informative : int array;
}

val default_params : params
(** Three classes, 256 genes, 12 informative, imbalanced training counts
    (18/10/6) to retain a bias structure. *)

val generate : ?params:params -> seed:int -> unit -> t
(** Deterministic in the seed; raises [Invalid_argument] on inconsistent
    parameters. *)

val class_counts : (int array * int) array -> n_classes:int -> int array

val select_genes : t -> k:int -> bins:int -> int array
(** mRMR-style selection using the same mutual-information machinery as
    the binary pipeline (relevance against the integer labels). *)

val project : t -> genes:int array -> t
(** Restrict every sample to the given genes. *)
