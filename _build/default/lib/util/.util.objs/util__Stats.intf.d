lib/util/stats.mli:
