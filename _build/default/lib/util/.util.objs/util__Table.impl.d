lib/util/table.ml: Array List Stdlib String
