lib/util/table.mli:
