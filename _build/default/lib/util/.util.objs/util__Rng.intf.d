lib/util/rng.mli:
