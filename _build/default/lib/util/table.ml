type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: cell count differs from header";
  t.rows <- row :: t.rows

let add_int_row t label xs = add_row t (label :: List.map string_of_int xs)

let to_string t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let record_widths row =
    List.iteri
      (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  List.iter record_widths all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  "
      (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (render_row t.header :: sep :: List.map render_row rows)

let print t = print_endline (to_string t)
