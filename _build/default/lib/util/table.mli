(** Plain-text aligned tables for experiment reports.

    Every benchmark and CLI report prints through this module so that
    bench_output.txt stays consistent and diffable. *)

type t

val create : header:string list -> t
(** A table with the given column header. *)

val add_row : t -> string list -> unit
(** Append a row; it must have as many cells as the header. *)

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label xs] appends [label :: map string_of_int xs]. *)

val to_string : t -> string
(** Render with column alignment and a separator under the header. *)

val print : t -> unit
(** [print t] writes [to_string t] to stdout followed by a newline. *)
