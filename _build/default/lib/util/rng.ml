type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let nonneg_int t =
  (* Top 62 bits, always non-negative as an OCaml int. *)
  Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  assert (bound > 0);
  nonneg_int t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  let rec positive_uniform () =
    let u = float t in
    if u > 0. then u else positive_uniform ()
  in
  let u1 = positive_uniform () in
  let u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let gaussian_mu_sigma t ~mu ~sigma = mu +. (sigma *. gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
