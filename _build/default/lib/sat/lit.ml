type t = int

let make var positive =
  if var < 0 then invalid_arg "Lit.make: negative variable";
  (2 * var) + if positive then 0 else 1

let pos var = make var true

let neg_of_var var = make var false

let var t = t / 2

let is_pos t = t land 1 = 0

let neg t = t lxor 1

let to_index t = t

let of_index i =
  if i < 0 then invalid_arg "Lit.of_index: negative";
  i

let to_dimacs t = if is_pos t then var t + 1 else -(var t + 1)

let of_dimacs n =
  if n = 0 then invalid_arg "Lit.of_dimacs: zero"
  else if n > 0 then pos (n - 1)
  else neg_of_var (-n - 1)

let compare = Int.compare

let equal = Int.equal

let pp fmt t = Format.fprintf fmt "%d" (to_dimacs t)
