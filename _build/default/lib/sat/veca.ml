type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Veca: index out of bounds"

let get t i =
  check_index t i;
  t.data.(i)

let set t i v =
  check_index t i;
  t.data.(i) <- v

let grow t v =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap v in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Veca.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0

let shrink t n =
  if n < 0 || n > t.len then invalid_arg "Veca.shrink";
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  t.len <- !j

let sort cmp t =
  let sub = Array.sub t.data 0 t.len in
  Array.sort cmp sub;
  Array.blit sub 0 t.data 0 t.len
