(** Growable array (amortised O(1) push), used for watch lists and the
    clause database. OCaml 5.1 has no stdlib Dynarray yet. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element; raises [Invalid_argument] when
    empty. *)

val clear : 'a t -> unit
(** Logical clear; capacity is retained. *)

val shrink : 'a t -> int -> unit
(** [shrink t n] truncates to the first [n] elements ([n <= length]). *)

val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps elements satisfying the predicate, preserving order. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
