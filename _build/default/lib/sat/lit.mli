(** Propositional literals.

    Variables are non-negative integers; a literal packs a variable and a
    polarity as [2*var + (if negative then 1 else 0)], the MiniSat
    encoding, so literals index watch lists directly. *)

type t = private int

val make : int -> bool -> t
(** [make var positive]; [var >= 0]. *)

val pos : int -> t
val neg_of_var : int -> t
val var : t -> int
val is_pos : t -> bool
val neg : t -> t
(** Complement. *)

val to_index : t -> int
(** The packed representation, usable as an array index in [0, 2*nvars). *)

val of_index : int -> t

val to_dimacs : t -> int
(** Positive literal of var [v] is [v+1]; negative is [-(v+1)]. *)

val of_dimacs : int -> t
(** Raises [Invalid_argument] on 0. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
