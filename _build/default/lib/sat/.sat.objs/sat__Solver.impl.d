lib/sat/solver.ml: Array List Lit Option Veca
