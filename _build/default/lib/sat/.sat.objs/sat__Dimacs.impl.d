lib/sat/dimacs.ml: Array Buffer List Lit Printf Solver String
