lib/sat/veca.ml: Array List
