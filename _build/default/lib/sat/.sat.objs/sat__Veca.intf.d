lib/sat/veca.mli:
