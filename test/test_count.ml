(* Tests for lib/count: exact cube-decomposition counting against brute
   force, certificate validation and tamper rejection, free-variable
   factoring, overflow-safe huge spaces, the (ε, δ) envelope of the
   approximate counter, jobs determinism (including certificate bytes),
   and checkpoint interrupt/resume. *)

module T = Smtlite.Term
module B = Util.Bigcount
module N = Fannet.Noise

let bigcount = Alcotest.testable (Fmt.of_to_string B.to_string) B.equal

(* ---------- brute force ---------- *)

(* Count assignments of [vars] satisfying [f] by explicit enumeration. *)
let brute f vars =
  let rec go asn = function
    | [] -> if T.eval_formula asn f then 1 else 0
    | (v : T.var) :: rest ->
        let acc = ref 0 in
        for x = v.T.lo to v.T.hi do
          acc := !acc + go ((v, x) :: asn) rest
        done;
        !acc
  in
  go [] vars

(* Brute-force flip count for a fuzz case. *)
let brute_flips (c : Check.Case.t) =
  let n = ref 0 in
  N.iter_vectors c.spec ~n_inputs:(Array.length c.input) (fun v ->
      if N.predict c.net c.spec ~input:c.input v <> c.label then incr n);
  !n

let cases ~n ~seed = Check.Gen.corpus ~seed ~cases:n ~max_explicit:300

(* ---------- exact counting ---------- *)

let test_exact_vs_brute () =
  List.iter
    (fun (c : Check.Case.t) ->
      let r =
        Fannet.Robustness.probability c.net c.spec ~input:c.input
          ~label:c.label
      in
      Alcotest.check bigcount
        (Printf.sprintf "case %d flip count" c.id)
        (B.of_int (brute_flips c)) r.Fannet.Robustness.flips;
      Alcotest.check bigcount
        (Printf.sprintf "case %d total" c.id)
        (N.spec_count c.spec ~n_inputs:(Array.length c.input))
        r.Fannet.Robustness.total;
      Alcotest.(check bool) "decided" true (r.Fannet.Robustness.status = Ok ()))
    (cases ~n:12 ~seed:41)

let test_exact_synthetic () =
  (* Structured formulas where the truth is arithmetic, not enumeration. *)
  let x = T.var ~name:"x" ~lo:0 ~hi:63 in
  let y = T.var ~name:"y" ~lo:0 ~hi:63 in
  let f = T.le (T.of_var x) (T.of_var y) in
  let r = Count.Exact.count f ~project:[ x; y ] in
  Alcotest.check bigcount "x<=y over 64x64" (B.of_int (64 * 65 / 2))
    r.Count.Exact.count;
  Alcotest.check bigcount "total" (B.of_int (64 * 64)) r.Count.Exact.total;
  let g = T.and_ [ T.le (T.const 10) (T.of_var x); T.le (T.of_var x) (T.const 20) ] in
  let r = Count.Exact.count g ~project:[ x ] in
  Alcotest.check bigcount "interval" (B.of_int 11) r.Count.Exact.count

let test_free_variable_factoring () =
  (* y never occurs in the formula: it must be factored out, not split. *)
  let x = T.var ~name:"x" ~lo:0 ~hi:9 in
  let y = T.var ~name:"y" ~lo:(-5) ~hi:6 in
  let f = T.le (T.of_var x) (T.const 3) in
  let r = Count.Exact.count ~certify:true f ~project:[ x; y ] in
  Alcotest.check bigcount "4 * 12 free width" (B.of_int (4 * 12))
    r.Count.Exact.count;
  Alcotest.(check int) "brute agrees" (4 * 12) (brute f [ x; y ]);
  match r.Count.Exact.certificate with
  | None -> Alcotest.fail "certificate missing"
  | Some cert ->
      Alcotest.(check (result unit string))
        "factored certificate validates" (Ok ())
        (Count.Certificate.check f ~project:[ x; y ] cert)

let test_huge_space () =
  (* Five free variables of width 100_000: 10^25 points, beyond int. *)
  let vars =
    List.init 5 (fun i ->
        T.var ~name:(Printf.sprintf "h%d" i) ~lo:1 ~hi:100_000)
  in
  let r = Count.Exact.count ~certify:true T.tru ~project:vars in
  (match r.Count.Exact.count with
  | B.Huge l ->
      Alcotest.(check bool)
        "log2 near 25 * log2(1e5)" true
        (abs_float (l -. (5.0 *. (log (1e5) /. log 2.0))) < 0.01)
  | B.Exact _ -> Alcotest.fail "expected a saturated count");
  Alcotest.check bigcount "tru counts the whole space" r.Count.Exact.total
    r.Count.Exact.count;
  (match r.Count.Exact.certificate with
  | None -> Alcotest.fail "certificate missing"
  | Some cert ->
      Alcotest.(check (result unit string))
        "huge certificate validates" (Ok ())
        (Count.Certificate.check T.tru ~project:vars cert));
  let r = Count.Exact.count ~certify:true T.fls ~project:vars in
  Alcotest.check bigcount "fls counts nothing" B.zero r.Count.Exact.count;
  match r.Count.Exact.certificate with
  | None -> Alcotest.fail "certificate missing"
  | Some cert ->
      Alcotest.(check (result unit string))
        "empty certificate validates" (Ok ())
        (Count.Certificate.check T.fls ~project:vars cert)

(* ---------- certificates ---------- *)

let certified_case () =
  let c = List.nth (cases ~n:8 ~seed:43) 5 in
  let r =
    Fannet.Robustness.probability
      ~mode:(Fannet.Robustness.Exact_mode { certify = true })
      c.net c.spec ~input:c.input ~label:c.label
  in
  (c, r)

let test_certificate_validates () =
  let c, r = certified_case () in
  match r.Fannet.Robustness.certificate with
  | None -> Alcotest.fail "certificate missing"
  | Some cert ->
      Alcotest.(check (result unit string))
        "re-validates against the query" (Ok ())
        (Fannet.Robustness.check_certificate c.net c.spec ~input:c.input
           ~label:c.label cert)

let test_certificate_roundtrip_deterministic () =
  let c, r = certified_case () in
  match r.Fannet.Robustness.certificate with
  | None -> Alcotest.fail "certificate missing"
  | Some cert -> (
      let bytes = Util.Json.to_string (Count.Certificate.to_json cert) in
      match Count.Certificate.of_json (Count.Certificate.to_json cert) with
      | Error e -> Alcotest.fail ("roundtrip: " ^ e)
      | Ok cert' ->
          Alcotest.(check string)
            "re-encoding is byte-identical" bytes
            (Util.Json.to_string (Count.Certificate.to_json cert'));
          Alcotest.(check (result unit string))
            "roundtripped certificate validates" (Ok ())
            (Fannet.Robustness.check_certificate c.net c.spec ~input:c.input
               ~label:c.label cert'))

let test_certificate_tamper_rejected () =
  let c, r = certified_case () in
  match r.Fannet.Robustness.certificate with
  | None -> Alcotest.fail "certificate missing"
  | Some cert ->
      let check cert =
        Fannet.Robustness.check_certificate c.net c.spec ~input:c.input
          ~label:c.label cert
      in
      (* Lie about the total. *)
      let lied =
        { cert with Count.Certificate.count = B.add cert.Count.Certificate.count B.one }
      in
      (match check lied with
      | Ok () -> Alcotest.fail "inflated count accepted"
      | Error _ -> ());
      (* Drop a cube: the partition no longer covers the space. *)
      (match cert.Count.Certificate.entries with
      | [] -> ()  (* zero-dim certificate; nothing to drop *)
      | _ :: rest -> (
          match check { cert with Count.Certificate.entries = rest } with
          | Ok () -> Alcotest.fail "missing cube accepted"
          | Error _ -> ()))

(* ---------- approximate counting ---------- *)

let test_approx_exact_shortcut () =
  (* Space no bigger than the pivot: the counter must short-circuit to a
     deterministic exact answer, whatever the seed. *)
  let x = T.var ~name:"x" ~lo:0 ~hi:29 in
  let f = T.le (T.of_var x) (T.const 17) in
  List.iter
    (fun seed ->
      let r = Count.Approx.count ~seed f ~project:[ x ] in
      Alcotest.(check bool) "exact shortcut" true r.Count.Approx.exact;
      Alcotest.check bigcount "exact value" (B.of_int 18)
        r.Count.Approx.estimate)
    [ 0; 1; 42 ]

let test_approx_envelope () =
  (* 528 models out of 1024 — well above the ε=0.8 pivot of 50, so the
     XOR path is exercised. With δ=0.2 each seed fails with probability
     at most 0.2; 9 failures in 20 pinned seeds would be a ~3-sigma
     excursion. The seeds are pinned, so this is deterministic in CI. *)
  let x = T.var ~name:"x" ~lo:0 ~hi:31 in
  let y = T.var ~name:"y" ~lo:0 ~hi:31 in
  let f = T.le (T.of_var x) (T.of_var y) in
  let truth = float_of_int (brute f [ x; y ]) in
  let epsilon = 0.8 in
  let failures = ref 0 and rounds_seen = ref 0 in
  for seed = 0 to 19 do
    let r = Count.Approx.count ~epsilon ~delta:0.2 ~seed f ~project:[ x; y ] in
    Alcotest.(check bool) "not the shortcut" false r.Count.Approx.exact;
    Alcotest.(check bool) "decided" true (r.Count.Approx.status = Count.Exact.Decided);
    rounds_seen := !rounds_seen + r.Count.Approx.rounds;
    let est =
      match r.Count.Approx.estimate with
      | B.Exact n -> float_of_int n
      | B.Huge l -> 2.0 ** l
    in
    if est < truth /. (1.0 +. epsilon) || est > truth *. (1.0 +. epsilon) then
      incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "within (1+ε) on >= 11/20 seeds (failed %d)" !failures)
    true (!failures <= 9);
  Alcotest.(check bool) "rounds actually ran" true (!rounds_seen > 0)

let test_approx_deterministic_per_seed () =
  let x = T.var ~name:"x" ~lo:0 ~hi:31 in
  let y = T.var ~name:"y" ~lo:0 ~hi:31 in
  let f = T.le (T.of_var x) (T.of_var y) in
  let run seed = (Count.Approx.count ~seed f ~project:[ x; y ]).Count.Approx.estimate in
  Alcotest.check bigcount "same seed, same estimate" (run 3) (run 3)

let test_approx_rejects_bad_parameters () =
  (* ε = 0, negative, or NaN and δ outside (0, 1) must be rejected up
     front with a typed Invalid_argument — not fed into the XOR round
     computation, where ε = 0 divides by zero and a NaN δ silently
     passes positive-form comparisons. *)
  let x = T.var ~name:"x" ~lo:0 ~hi:7 in
  let f = T.ge (T.of_var x) (T.const 0) in
  let expect_invalid name run =
    match run () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  List.iter
    (fun epsilon ->
      expect_invalid
        (Printf.sprintf "epsilon %f" epsilon)
        (fun () -> Count.Approx.count ~epsilon f ~project:[ x ]))
    [ 0.0; -1.0; Float.nan ];
  List.iter
    (fun delta ->
      expect_invalid
        (Printf.sprintf "delta %f" delta)
        (fun () -> Count.Approx.count ~delta f ~project:[ x ]))
    [ 0.0; 1.0; -0.5; 1.5; Float.nan ];
  (* The boundary-legal parameters still work. *)
  let r = Count.Approx.count ~epsilon:0.1 ~delta:0.99 f ~project:[ x ] in
  Alcotest.(check bool) "legal parameters accepted" true
    (r.Count.Approx.status = Count.Exact.Decided)

(* ---------- parallel determinism ---------- *)

let test_jobs_determinism () =
  let c = List.nth (cases ~n:8 ~seed:47) 2 in
  let run jobs =
    Fannet.Robustness.probability
      ~mode:(Fannet.Robustness.Exact_mode { certify = true })
      ~jobs c.net c.spec ~input:c.input ~label:c.label
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.check bigcount "same count" r1.Fannet.Robustness.flips
    r4.Fannet.Robustness.flips;
  match (r1.Fannet.Robustness.certificate, r4.Fannet.Robustness.certificate) with
  | Some c1, Some c4 ->
      Alcotest.(check string) "certificate bytes identical across jobs"
        (Util.Json.to_string (Count.Certificate.to_json c1))
        (Util.Json.to_string (Count.Certificate.to_json c4))
  | _ -> Alcotest.fail "certificate missing"

(* ---------- budgets and checkpoints ---------- *)

let test_budget_exhaustion_typed () =
  let x = T.var ~name:"x" ~lo:0 ~hi:2000 in
  let y = T.var ~name:"y" ~lo:0 ~hi:2000 in
  let f = T.le (T.of_var x) (T.of_var y) in
  let budget = Resil.Budget.create ~timeout_s:0.0 () in
  let r = Count.Exact.count ~budget f ~project:[ x; y ] in
  match r.Count.Exact.status with
  | Count.Exact.Exhausted _ ->
      Alcotest.(check bool) "no certificate when exhausted" true
        (r.Count.Exact.certificate = None)
  | Count.Exact.Decided -> Alcotest.fail "expected exhaustion"

let test_checkpoint_resume () =
  let dir = Filename.temp_file "fannet_count" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "count.ckpt" in
  let x = T.var ~name:"x" ~lo:0 ~hi:127 in
  let y = T.var ~name:"y" ~lo:0 ~hi:127 in
  let f = T.le (T.of_var x) (T.of_var y) in
  let key = "test-count-query" in
  (* Drive with growing deadlines until a run completes (the first few
     exhaust mid-count and persist their frontier); the result must match
     a clean uninterrupted run. *)
  let rec drive attempts =
    if attempts > 60 then Alcotest.fail "checkpointed run never finished";
    let budget =
      Resil.Budget.create ~timeout_s:(0.0005 *. float_of_int attempts) ()
    in
    let r =
      Count.Exact.count ~budget ~checkpoint:path ~ckpt_key:key ~ckpt_every:1 f
        ~project:[ x; y ]
    in
    match r.Count.Exact.status with
    | Count.Exact.Decided -> r
    | Count.Exact.Exhausted _ -> drive (attempts + 1)
  in
  let resumed = drive 0 in
  let clean = Count.Exact.count f ~project:[ x; y ] in
  Alcotest.check bigcount "resumed count equals clean count"
    clean.Count.Exact.count resumed.Count.Exact.count;
  (* A different key must refuse the file. *)
  (match
     Count.Exact.count ~checkpoint:path ~ckpt_key:"other-query" f
       ~project:[ x; y ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign checkpoint accepted");
  Sys.remove path;
  Unix.rmdir dir

let test_certified_checkpoint_matches_direct () =
  (* Certificates persisted through a checkpoint must equal the
     uninterrupted run's bytes. *)
  let dir = Filename.temp_file "fannet_count" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "count.ckpt" in
  let x = T.var ~name:"x" ~lo:0 ~hi:63 in
  let f = T.le (T.const 20) (T.of_var x) in
  let key = "certified" in
  let rec drive attempts =
    if attempts > 60 then Alcotest.fail "never finished";
    let budget =
      Resil.Budget.create ~timeout_s:(0.0003 *. float_of_int attempts) ()
    in
    let r =
      Count.Exact.count ~budget ~certify:true ~checkpoint:path ~ckpt_key:key
        ~ckpt_every:1 f ~project:[ x ]
    in
    match r.Count.Exact.status with
    | Count.Exact.Decided -> r
    | Count.Exact.Exhausted _ -> drive (attempts + 1)
  in
  let resumed = drive 0 in
  let direct = Count.Exact.count ~certify:true f ~project:[ x ] in
  (match (resumed.Count.Exact.certificate, direct.Count.Exact.certificate) with
  | Some a, Some b ->
      Alcotest.(check string) "certificate bytes survive resume"
        (Util.Json.to_string (Count.Certificate.to_json b))
        (Util.Json.to_string (Count.Certificate.to_json a))
  | _ -> Alcotest.fail "certificate missing");
  Sys.remove path;
  Unix.rmdir dir

(* ---------- core surfaces ---------- *)

let test_density_and_bias_mass () =
  let c = List.nth (cases ~n:6 ~seed:53) 1 in
  let inputs = [| (c.input, c.label) |] in
  let d = Fannet.Density.adversarial ~jobs:2 c.net c.spec ~inputs in
  Alcotest.(check int) "one report per input" 1
    (Array.length d.Fannet.Density.per_input);
  let r = d.Fannet.Density.per_input.(0) in
  Alcotest.(check bool) "mean is the single probability" true
    (abs_float (d.Fannet.Density.mean_probability -. r.Fannet.Robustness.probability)
     < 1e-12);
  Alcotest.(check int) "worst points at the only input" 0 d.Fannet.Density.worst;
  (* Flip masses by class must sum to the flip count. *)
  match
    Fannet.Bias.flip_mass_by_class ~n_classes:(Nn.Qnet.out_dim c.net) c.net
      c.spec ~inputs
  with
  | Error _ -> Alcotest.fail "unexpected exhaustion"
  | Ok masses ->
      let total =
        List.fold_left
          (fun acc (m : Fannet.Bias.mass) ->
            Alcotest.(check int) "from is the true label" c.label
              m.Fannet.Bias.from;
            B.add acc m.Fannet.Bias.mass)
          B.zero masses
      in
      Alcotest.check bigcount "masses sum to the flip count"
        r.Fannet.Robustness.flips total

let () =
  Alcotest.run "count"
    [
      ( "exact",
        [
          Alcotest.test_case "vs brute force" `Quick test_exact_vs_brute;
          Alcotest.test_case "synthetic" `Quick test_exact_synthetic;
          Alcotest.test_case "free variables" `Quick test_free_variable_factoring;
          Alcotest.test_case "huge space" `Quick test_huge_space;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "validates" `Quick test_certificate_validates;
          Alcotest.test_case "roundtrip deterministic" `Quick
            test_certificate_roundtrip_deterministic;
          Alcotest.test_case "tamper rejected" `Quick
            test_certificate_tamper_rejected;
        ] );
      ( "approx",
        [
          Alcotest.test_case "exact shortcut" `Quick test_approx_exact_shortcut;
          Alcotest.test_case "(eps,delta) envelope" `Quick test_approx_envelope;
          Alcotest.test_case "rejects bad parameters" `Quick
            test_approx_rejects_bad_parameters;
          Alcotest.test_case "deterministic per seed" `Quick
            test_approx_deterministic_per_seed;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "typed exhaustion" `Quick
            test_budget_exhaustion_typed;
          Alcotest.test_case "checkpoint resume" `Quick test_checkpoint_resume;
          Alcotest.test_case "certified resume" `Quick
            test_certified_checkpoint_matches_direct;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "density and bias mass" `Quick
            test_density_and_bias_mass;
        ] );
    ]
