(* Tests for the bit-blasting layer: gate semantics and bit-vector
   arithmetic checked against native integer arithmetic. *)

module Cnf = Bitblast.Cnf
module Bv = Bitblast.Bv

let solve_and_read b lits =
  match Sat.Solver.solve (Cnf.solver b) with
  | Sat.Solver.Sat -> Some (List.map (Cnf.lit_value b) lits)
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Unknown -> Alcotest.fail "unexpected unknown"

(* Force two fresh literals to specific values and check a gate output. *)
let check_gate name make expected =
  List.iter
    (fun (va, vb) ->
      let b = Cnf.create () in
      let a = Cnf.fresh b and c = Cnf.fresh b in
      let o = make b a c in
      Cnf.assert_lit b (if va then a else Cnf.g_not a);
      Cnf.assert_lit b (if vb then c else Cnf.g_not c);
      match solve_and_read b [ o ] with
      | Some [ vo ] ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %b %b" name va vb)
            (expected va vb) vo
      | _ -> Alcotest.fail "unsat gate env")
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_gate_and () = check_gate "and" (fun b x y -> Cnf.g_and b x y) ( && )

let test_gate_or () = check_gate "or" (fun b x y -> Cnf.g_or b x y) ( || )

let test_gate_xor () = check_gate "xor" (fun b x y -> Cnf.g_xor b x y) ( <> )

let test_gate_iff () = check_gate "iff" (fun b x y -> Cnf.g_iff b x y) ( = )

let test_gate_implies () =
  check_gate "implies" (fun b x y -> Cnf.g_implies b x y) (fun x y -> (not x) || y)

let test_gate_constant_folding () =
  let b = Cnf.create () in
  let a = Cnf.fresh b in
  Alcotest.(check bool) "and false" true
    (Sat.Lit.equal (Cnf.g_and b a (Cnf.bfalse b)) (Cnf.bfalse b));
  Alcotest.(check bool) "and true" true
    (Sat.Lit.equal (Cnf.g_and b a (Cnf.btrue b)) a);
  Alcotest.(check bool) "xor self" true
    (Sat.Lit.equal (Cnf.g_xor b a a) (Cnf.bfalse b));
  Alcotest.(check bool) "xor neg self" true
    (Sat.Lit.equal (Cnf.g_xor b a (Cnf.g_not a)) (Cnf.btrue b));
  Alcotest.(check bool) "mux same" true
    (Sat.Lit.equal (Cnf.g_mux b ~sel:(Cnf.fresh b) ~if_true:a ~if_false:a) a)

let test_mux_semantics () =
  List.iter
    (fun (sel, x, y) ->
      let b = Cnf.create () in
      let s = Cnf.fresh b and a = Cnf.fresh b and c = Cnf.fresh b in
      let o = Cnf.g_mux b ~sel:s ~if_true:a ~if_false:c in
      Cnf.assert_lit b (if sel then s else Cnf.g_not s);
      Cnf.assert_lit b (if x then a else Cnf.g_not a);
      Cnf.assert_lit b (if y then c else Cnf.g_not c);
      match solve_and_read b [ o ] with
      | Some [ vo ] ->
          Alcotest.(check bool) "mux" (if sel then x else y) vo
      | _ -> Alcotest.fail "unsat mux env")
    [ (true, true, false); (true, false, true); (false, true, false); (false, false, true) ]

(* ---------- bitvector constants and arithmetic ---------- *)

let eval_const_expr f =
  (* Build an expression over constants and decode it from the model. *)
  let b = Cnf.create () in
  let bv = f b in
  match Sat.Solver.solve (Cnf.solver b) with
  | Sat.Solver.Sat -> Bv.to_int b bv
  | Sat.Solver.Unsat | Sat.Solver.Unknown -> Alcotest.fail "const expr unsat"

let test_const_roundtrip () =
  List.iter
    (fun v ->
      let got = eval_const_expr (fun b -> Bv.const b ~width:9 v) in
      Alcotest.(check int) (Printf.sprintf "const %d" v) v got)
    [ 0; 1; -1; 255; -256; 100; -100 ]

let test_const_width_check () =
  let b = Cnf.create () in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Bv.const: 128 does not fit 8 bits") (fun () ->
      ignore (Bv.const b ~width:8 128))

let test_add_sub_neg_consts () =
  let w = 12 in
  List.iter
    (fun (x, y) ->
      let sum = eval_const_expr (fun b -> Bv.add b (Bv.const b ~width:w x) (Bv.const b ~width:w y)) in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) sum;
      let diff = eval_const_expr (fun b -> Bv.sub b (Bv.const b ~width:w x) (Bv.const b ~width:w y)) in
      Alcotest.(check int) (Printf.sprintf "%d-%d" x y) (x - y) diff)
    [ (5, 7); (-5, 7); (100, -100); (-3, -4); (0, 0) ]

let test_mul_const () =
  let w = 20 in
  List.iter
    (fun (c, x) ->
      let got = eval_const_expr (fun b -> Bv.mul_const b (Bv.const b ~width:w x) c) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" c x) (c * x) got)
    [ (3, 7); (-3, 7); (3, -7); (0, 42); (1, -9); (-1, -9); (13, 21); (100, 50) ]

let test_sign_extend_preserves_value () =
  List.iter
    (fun v ->
      let got =
        eval_const_expr (fun b -> Bv.sign_extend (Bv.const b ~width:6 v) 14)
      in
      Alcotest.(check int) (Printf.sprintf "extend %d" v) v got)
    [ 0; 31; -32; -1; 7 ]

let test_relu_smax () =
  List.iter
    (fun v ->
      let got = eval_const_expr (fun b -> Bv.relu b (Bv.const b ~width:10 v)) in
      Alcotest.(check int) (Printf.sprintf "relu %d" v) (max 0 v) got)
    [ 5; -5; 0; 255; -256 ];
  List.iter
    (fun (x, y) ->
      let got =
        eval_const_expr (fun b ->
            Bv.smax b (Bv.const b ~width:10 x) (Bv.const b ~width:10 y))
      in
      Alcotest.(check int) (Printf.sprintf "max %d %d" x y) (max x y) got)
    [ (3, 9); (9, 3); (-3, -9); (-9, 3); (0, 0) ]

let check_cmp_lit b l expected label =
  match Sat.Solver.solve (Cnf.solver b) with
  | Sat.Solver.Sat -> Alcotest.(check bool) label expected (Cnf.lit_value b l)
  | Sat.Solver.Unsat | Sat.Solver.Unknown -> Alcotest.fail "cmp env unsat"

let test_comparisons () =
  List.iter
    (fun (x, y) ->
      let b = Cnf.create () in
      (* One extra bit so the difference fits, per the documented contract. *)
      let bx = Bv.const b ~width:12 x and by = Bv.const b ~width:12 y in
      check_cmp_lit b (Bv.slt b bx by) (x < y) (Printf.sprintf "%d<%d" x y);
      let b2 = Cnf.create () in
      let bx = Bv.const b2 ~width:12 x and by = Bv.const b2 ~width:12 y in
      check_cmp_lit b2 (Bv.sle b2 bx by) (x <= y) (Printf.sprintf "%d<=%d" x y);
      let b3 = Cnf.create () in
      let bx = Bv.const b3 ~width:12 x and by = Bv.const b3 ~width:12 y in
      check_cmp_lit b3 (Bv.eq b3 bx by) (x = y) (Printf.sprintf "%d=%d" x y))
    [ (3, 9); (9, 3); (-7, 2); (2, -7); (-5, -5); (0, 0); (1000, -1000) ]

(* ---------- XOR chains (the approximate counter's hash primitive) ---------- *)

(* Exhaustive truth tables for g_xor_list up to four inputs, plus the
   documented degenerate shapes. *)
let test_xor_list_truth_tables () =
  let b0 = Cnf.create () in
  Alcotest.(check bool) "empty chain is bfalse" true
    (Sat.Lit.equal (Cnf.g_xor_list b0 []) (Cnf.bfalse b0));
  let a = Cnf.fresh b0 in
  Alcotest.(check bool) "singleton chain is the literal" true
    (Sat.Lit.equal (Cnf.g_xor_list b0 [ a ]) a);
  for n = 2 to 4 do
    for bits = 0 to (1 lsl n) - 1 do
      let b = Cnf.create () in
      let lits = List.init n (fun _ -> Cnf.fresh b) in
      let o = Cnf.g_xor_list b lits in
      let parity = ref false in
      List.iteri
        (fun i l ->
          let v = bits land (1 lsl i) <> 0 in
          if v then parity := not !parity;
          Cnf.assert_lit b (if v then l else Cnf.g_not l))
        lits;
      match solve_and_read b [ o ] with
      | Some [ vo ] ->
          Alcotest.(check bool)
            (Printf.sprintf "xor_list n=%d bits=%d" n bits)
            !parity vo
      | _ -> Alcotest.fail "xor chain env unsat"
    done
  done

(* Count the models of [b] projected on [bits] by blocking enumeration.
   Aux variables of the XOR chain are functionally determined by the
   inputs, so the projected count equals the input-assignment count. *)
let count_models b bits =
  let n = ref 0 in
  let rec loop () =
    match Sat.Solver.solve (Cnf.solver b) with
    | Sat.Solver.Sat ->
        incr n;
        Cnf.add_clause b
          (List.map (fun l -> if Cnf.lit_value b l then Cnf.g_not l else l) bits);
        loop ()
    | Sat.Solver.Unsat -> ()
    | Sat.Solver.Unknown -> Alcotest.fail "unexpected unknown"
  in
  loop ();
  !n

(* Six input bits, a fixed clause set carving out a nontrivial model set,
   optionally one parity constraint drawn from an Rng stream. *)
let parity_instance ?parity () =
  let b = Cnf.create () in
  let bits = List.init 6 (fun _ -> Cnf.fresh b) in
  let arr = Array.of_list bits in
  let neg i = Cnf.g_not arr.(i) in
  List.iter (Cnf.add_clause b)
    [
      [ arr.(0); arr.(1); arr.(2) ];
      [ neg 1; arr.(3) ];
      [ neg 0; neg 2; arr.(4) ];
      [ arr.(1); neg 3; neg 5 ];
      [ arr.(2); arr.(5) ];
    ];
  (match parity with
  | None -> ()
  | Some (pick, odd) ->
      let subset = List.filteri (fun i _ -> List.mem i pick) bits in
      let chain = Cnf.g_xor_list b subset in
      Cnf.assert_lit b (if odd then chain else Cnf.g_not chain));
  (b, bits)

(* Any non-empty parity splits the full cube exactly in half. *)
let test_xor_halves_full_cube () =
  List.iter
    (fun pick ->
      let b = Cnf.create () in
      let bits = List.init 6 (fun _ -> Cnf.fresh b) in
      let subset =
        List.filteri (fun i _ -> List.mem i pick) bits
      in
      Cnf.assert_lit b (Cnf.g_xor_list b subset);
      Alcotest.(check int)
        (Printf.sprintf "parity over %d bits halves 2^6" (List.length subset))
        32 (count_models b bits))
    [ [ 0 ]; [ 1; 4 ]; [ 0; 2; 3 ]; [ 0; 1; 2; 3; 4; 5 ] ]

(* On a constrained model set a random (subset, parity-bit) pair keeps
   each model with probability exactly 1/2, so the average surviving
   fraction over many draws concentrates at 1/2 — the halving the
   XOR-hash counter relies on. Fixed Rng seed: deterministic. *)
let test_xor_halving_in_expectation () =
  let base =
    let b, bits = parity_instance () in
    count_models b bits
  in
  Alcotest.(check bool) "base instance is nontrivial" true
    (base > 10 && base < 64);
  let rng = Util.Rng.create 11 in
  let trials = 200 in
  let total = ref 0 in
  for _ = 1 to trials do
    let pick =
      List.filter_map
        (fun i -> if Util.Rng.bool rng then Some i else None)
        [ 0; 1; 2; 3; 4; 5 ]
    in
    let odd = Util.Rng.bool rng in
    (* Fresh builder per trial, so blocking clauses never leak across
       draws. *)
    let b, bits = parity_instance ~parity:(pick, odd) () in
    total := !total + count_models b bits
  done;
  let avg = float_of_int !total /. float_of_int (trials * base) in
  Alcotest.(check bool)
    (Printf.sprintf "average surviving fraction %.3f within 0.08 of 1/2" avg)
    true
    (Float.abs (avg -. 0.5) < 0.08)

(* An inconsistent parity system is refuted end-to-end: proof-traced,
   snapshotted as a lib/cert certificate, re-checked by the independent
   RUP checker, and exported to DIMACS/DRUP with the XOR chain's aux
   variables intact. *)
let test_xor_refutation_dimacs () =
  let trace = Cert.Proof.create () in
  let b = Cnf.create ~sink:(Cert.Proof.sink trace) () in
  let s = Cnf.solver b in
  let a1 = Cnf.fresh b and a2 = Cnf.fresh b and a3 = Cnf.fresh b in
  (* a1⊕a2, a2⊕a3 and a1⊕a3 all odd: the sum of the three parities is
     even, so the system is inconsistent. *)
  Cnf.assert_lit b (Cnf.g_xor_list b [ a1; a2 ]);
  Cnf.assert_lit b (Cnf.g_xor_list b [ a2; a3 ]);
  Cnf.assert_lit b (Cnf.g_xor_list b [ a1; a3 ]);
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | Sat.Solver.Sat | Sat.Solver.Unknown ->
      Alcotest.fail "inconsistent parity system must be unsat");
  match Cert.Verdict.of_trace_unsat ~n_vars:(Sat.Solver.nvars s) trace with
  | Error e -> Alcotest.failf "certificate snapshot failed: %s" e
  | Ok cert -> (
      (match Cert.Verdict.check cert with
      | Ok () -> ()
      | Error e -> Alcotest.failf "independent checker rejected: %s" e);
      let dimacs = Cert.Verdict.to_dimacs cert in
      Alcotest.(check bool) "dimacs header" true
        (String.length dimacs > 6 && String.sub dimacs 0 6 = "p cnf ");
      (* The XOR chain introduced Tseitin aux variables beyond a1..a3;
         they must survive into the exported formula. *)
      (match cert with
      | Cert.Verdict.Refutation { n_vars; cnf; _ } ->
          Alcotest.(check bool) "aux vars present" true (n_vars > 3);
          let max_var =
            List.fold_left
              (fun m c -> List.fold_left (fun m l -> max m (abs l)) m c)
              0 cnf
          in
          Alcotest.(check bool) "clauses mention aux vars" true (max_var > 3);
          Alcotest.(check bool) "vars within header bound" true (max_var <= n_vars)
      | Cert.Verdict.Model _ -> Alcotest.fail "expected a refutation");
      match Cert.Verdict.to_drup cert with
      | None -> Alcotest.fail "refutation must export a DRUP proof"
      | Some drup ->
          let last_nonempty =
            String.split_on_char '\n' drup
            |> List.filter (fun l -> String.trim l <> "")
            |> List.rev
            |> function
            | [] -> ""
            | l :: _ -> String.trim l
          in
          Alcotest.(check string) "drup ends with the empty clause" "0"
            last_nonempty)

(* Property: symbolic addition agrees with integer addition for fresh
   vectors constrained to chosen values. *)
let prop_symbolic_add =
  QCheck.Test.make ~name:"symbolic add matches int add" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range (-500) 500) (int_range (-500) 500)))
    (fun (x, y) ->
      let b = Cnf.create () in
      let w = 13 in
      let vx = Bv.fresh b ~width:w and vy = Bv.fresh b ~width:w in
      Cnf.assert_lit b (Bv.eq b vx (Bv.const b ~width:w x));
      Cnf.assert_lit b (Bv.eq b vy (Bv.const b ~width:w y));
      let sum = Bv.add b vx vy in
      match Sat.Solver.solve (Cnf.solver b) with
      | Sat.Solver.Sat -> Bv.to_int b sum = x + y
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> false)

let prop_symbolic_mul_const =
  QCheck.Test.make ~name:"symbolic mul_const matches int mul" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range (-20) 20) (int_range (-200) 200)))
    (fun (c, x) ->
      let b = Cnf.create () in
      let w = 16 in
      let vx = Bv.fresh b ~width:w in
      Cnf.assert_lit b (Bv.eq b vx (Bv.const b ~width:w x));
      let product = Bv.mul_const b vx c in
      match Sat.Solver.solve (Cnf.solver b) with
      | Sat.Solver.Sat -> Bv.to_int b product = c * x
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> false)

let () =
  Alcotest.run "bitblast"
    [
      ( "gates",
        [
          Alcotest.test_case "and" `Quick test_gate_and;
          Alcotest.test_case "or" `Quick test_gate_or;
          Alcotest.test_case "xor" `Quick test_gate_xor;
          Alcotest.test_case "iff" `Quick test_gate_iff;
          Alcotest.test_case "implies" `Quick test_gate_implies;
          Alcotest.test_case "constant folding" `Quick test_gate_constant_folding;
          Alcotest.test_case "mux" `Quick test_mux_semantics;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "const roundtrip" `Quick test_const_roundtrip;
          Alcotest.test_case "const width check" `Quick test_const_width_check;
          Alcotest.test_case "add/sub/neg" `Quick test_add_sub_neg_consts;
          Alcotest.test_case "mul_const" `Quick test_mul_const;
          Alcotest.test_case "sign extend" `Quick test_sign_extend_preserves_value;
          Alcotest.test_case "relu/smax" `Quick test_relu_smax;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          QCheck_alcotest.to_alcotest prop_symbolic_add;
          QCheck_alcotest.to_alcotest prop_symbolic_mul_const;
        ] );
      ( "xor",
        [
          Alcotest.test_case "truth tables" `Quick test_xor_list_truth_tables;
          Alcotest.test_case "halves the full cube" `Quick test_xor_halves_full_cube;
          Alcotest.test_case "halving in expectation" `Quick
            test_xor_halving_in_expectation;
          Alcotest.test_case "refutation to DIMACS/DRUP" `Quick
            test_xor_refutation_dimacs;
        ] );
    ]
