(* Crash-isolation tests for the supervised fannetd fleet: worker-process
   death/restart/replay, the restart-storm circuit breaker, supervised
   differential answers, typed worker-crash replies, and the chaos soak
   (16 clients under a kill schedule, then a cold restart recovering the
   verdict journal bit for bit).

   These live in their own executable because [Unix.fork] is refused for
   the lifetime of an OCaml 5 process once any domain has ever been
   created in it — so every fork (supervisor creation AND respawn after
   a kill) must happen before anything spawns an in-process worker pool.
   Test order below is load-bearing: the chaos soak runs last because
   its restart phase boots a legacy (in-process, domain-spawning)
   daemon, after which no further fork can succeed. *)

module P = Serve.Protocol
module D = Serve.Daemon
module C = Serve.Client
module J = Util.Json
module B = Fannet.Backend
module N = Fannet.Noise
module F = Resil.Faultpoint

let with_clean_faults f =
  F.clear ();
  Fun.protect ~finally:F.clear f

let toy_qnet () =
  Nn.Qnet.create
    [|
      {
        Nn.Qnet.weights = [| [| 31; -22 |]; [| -13; 41 |]; [| 17; 9 |]; [| -25; 14 |] |];
        bias = [| 55; -31; 12; -7 |];
        act = Nn.Qnet.Relu;
      };
      {
        Nn.Qnet.weights = [| [| 21; -33; 11; -9 |]; [| -20; 31; -12; 10 |] |];
        bias = [| 13; 0 |];
        act = Nn.Qnet.Identity;
      };
    |]

let test_daemon ?(workers = 2) ?(cap = 4) ?(cache_cap_bytes = 1 lsl 26) ?(procs = 0)
    ?store_path () =
  D.run
    {
      D.addr = D.Tcp ("127.0.0.1", 0);
      workers;
      cap;
      cache_cap_bytes;
      timeout_ceiling_s = Some 60.;
      procs;
      store_path;
    }

let with_daemon ?workers ?cap ?cache_cap_bytes ?procs ?store_path f =
  let d = test_daemon ?workers ?cap ?cache_cap_bytes ?procs ?store_path () in
  Fun.protect ~finally:(fun () -> D.stop d) (fun () -> f d)

let with_client d f =
  let c = C.connect (D.address d) in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let with_store_path f =
  let path = Filename.temp_file "fannet_chaos_test" ".jnl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let answer_bytes a = J.to_string (P.answer_json a)

let answer_of_reply name = function
  | P.Answer { cached; answer } -> (cached, answer)
  | r ->
      Alcotest.failf "%s: unexpected reply %s" name (P.encode_reply { rid = 0; reply = r })

(* The query kinds the chaos battery exercises, answered by the library
   directly — the oracle the forked fleet must match. *)
let direct_answer net (q : P.query) : P.answer =
  match q with
  | P.Exists_flip { backend; spec; input; label } ->
      P.Verdict (B.exists_flip backend net spec ~input ~label)
  | P.Tolerance { backend; bias_noise; max_delta; input; label } ->
      P.Min_flip
        (Fannet.Tolerance.input_min_flip_delta_b backend net ~bias_noise ~max_delta
           ~input ~label)
  | P.Certify { spec; input; label } ->
      let cv = B.certified_exists_flip net spec ~input ~label in
      P.Certified { verdict = cv.B.cv_verdict; cert = cv.B.cv_cert }
  | _ -> Alcotest.fail "query kind not part of the chaos battery"

let chaos_queries net =
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:10 ~bias_noise:false in
  [
    ("exists-flip bnb", P.Exists_flip { backend = B.Bnb; spec; input; label });
    ( "tolerance",
      P.Tolerance { backend = B.Bnb; bias_noise = false; max_delta = 20; input; label } );
    ("certify", P.Certify { spec; input; label });
  ]

let poll_until ?(timeout_s = 5.0) what pred =
  let t0 = Obs.Clock.now_ns () in
  let rec go () =
    if pred () then ()
    else if Obs.Clock.elapsed_s ~since:t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

(* ================================================================== *)
(* Supervisor                                                          *)
(* ================================================================== *)

let sup_execute net ~budget:_ q = direct_answer net q

let sup_net_parts () =
  let net = toy_qnet () in
  let canonical = Nn.Qnet.to_string net in
  (net, canonical, Digest.to_hex (Digest.string canonical))

let sup_query net =
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  P.Exists_flip
    { backend = B.Bnb; spec = N.symmetric ~delta:1 ~bias_noise:false; input; label }

let test_supervisor_restart_and_replay () =
  with_clean_faults @@ fun () ->
  let net, canonical, digest = sup_net_parts () in
  (* Armed tables are inherited across fork: the child dies, as if
     OOM-killed, on its first query receipt. *)
  F.arm "serve.worker.kill@1";
  let sup = Serve.Supervisor.create ~procs:1 ~workers:1 ~execute:sup_execute () in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.stop sup) @@ fun () ->
  Serve.Supervisor.load sup ~digest ~network:canonical;
  let q = sup_query net in
  (match Serve.Supervisor.query sup ~digest ~query:q ~budget:P.no_budget with
  | Error _ -> ()
  | Ok r ->
      Alcotest.failf "killed child answered: %s" (P.encode_reply { rid = 0; reply = r }));
  (* The query fails the instant the EOF lands; the death bookkeeping on
     the reader thread may land a beat later. *)
  poll_until "death recorded" (fun () -> Serve.Supervisor.deaths sup = 1);
  (* Disarm before the respawn forks, wait out the backoff: the next
     query must respawn the child, replay the load, and answer. *)
  F.clear ();
  Thread.delay 0.08;
  (match Serve.Supervisor.query sup ~digest ~query:q ~budget:P.no_budget with
  | Ok (P.Answer { answer; _ }) ->
      Alcotest.(check bool) "replayed net answers correctly" true
        (P.answer_equal answer (direct_answer net q))
  | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_reply { rid = 0; reply = r })
  | Error e -> Alcotest.failf "respawned child failed: %s" e);
  Alcotest.(check int) "one restart" 1 (Serve.Supervisor.restarts sup);
  (* An unknown digest is a typed server error from the child, not a
     supervisor failure. *)
  match Serve.Supervisor.query sup ~digest:"bogus" ~query:q ~budget:P.no_budget with
  | Ok (P.Server_error _) -> ()
  | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_reply { rid = 0; reply = r })
  | Error e -> Alcotest.failf "unknown digest must be typed, got supervisor error %s" e

let test_supervisor_storm_circuit () =
  with_clean_faults @@ fun () ->
  let net, canonical, digest = sup_net_parts () in
  (* Every query kills its child: a fork-crash loop. The policy keeps
     the loop fast and the circuit observable. *)
  F.arm "serve.worker.kill";
  let policy =
    {
      Serve.Supervisor.backoff_base_s = 0.005;
      backoff_max_s = 0.01;
      storm_limit = 3;
      storm_window_s = 30.;
      cooloff_s = 0.3;
    }
  in
  let sup =
    Serve.Supervisor.create ~policy ~procs:1 ~workers:1 ~execute:sup_execute ()
  in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.stop sup) @@ fun () ->
  Serve.Supervisor.load sup ~digest ~network:canonical;
  let q = sup_query net in
  let errors = ref 0 in
  for _ = 1 to 8 do
    (match Serve.Supervisor.query sup ~digest ~query:q ~budget:P.no_budget with
    | Error _ -> incr errors
    | Ok r ->
        Alcotest.failf "crash-loop answered: %s" (P.encode_reply { rid = 0; reply = r }));
    Thread.delay 0.02
  done;
  Alcotest.(check int) "every attempt failed typed" 8 !errors;
  (* The breaker opened: far fewer corpses than attempts. *)
  let deaths = Serve.Supervisor.deaths sup in
  Alcotest.(check bool) "circuit capped the burn" true (deaths < 8);
  Alcotest.(check bool) "storm observed" true
    (deaths > policy.Serve.Supervisor.storm_limit);
  (* Disarm, wait out the cooloff: the shard must come back by itself. *)
  F.clear ();
  Thread.delay (policy.Serve.Supervisor.cooloff_s +. 0.3);
  match Serve.Supervisor.query sup ~digest ~query:q ~budget:P.no_budget with
  | Ok (P.Answer { answer; _ }) ->
      Alcotest.(check bool) "recovered after cooloff" true
        (P.answer_equal answer (direct_answer net q))
  | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_reply { rid = 0; reply = r })
  | Error e -> Alcotest.failf "shard did not recover: %s" e

(* ================================================================== *)
(* Supervised daemon                                                   *)
(* ================================================================== *)

let test_daemon_supervised_differential () =
  with_daemon ~procs:2 ~workers:1 @@ fun d ->
  with_client d @@ fun c ->
  let net = toy_qnet () in
  let digest = ok (C.load c net) in
  List.iter
    (fun (name, q) ->
      let expected = direct_answer net q in
      let cached1, cold = answer_of_reply name (ok (C.query c ~digest q)) in
      let cached2, hit = answer_of_reply name (ok (C.query c ~digest q)) in
      Alcotest.(check bool) (name ^ ": first is a miss") false cached1;
      Alcotest.(check bool) (name ^ ": second hits the parent cache") true cached2;
      Alcotest.(check bool)
        (name ^ ": forked answer = direct")
        true (P.answer_equal cold expected);
      Alcotest.(check string)
        (name ^ ": hit bit-identical")
        (answer_bytes cold) (answer_bytes hit))
    (chaos_queries net);
  Alcotest.(check bool) "supervised stats exposed" true (D.supervisor_stats d <> None)

let test_daemon_worker_crash_typed () =
  with_clean_faults @@ fun () ->
  (* Child dies on its first query receipt — armed before the fork. *)
  F.arm "serve.worker.kill@1";
  with_daemon ~procs:1 ~workers:1 @@ fun d ->
  with_client d @@ fun c ->
  let net = toy_qnet () in
  let digest = ok (C.load c net) in
  let q = sup_query net in
  (* The crash mid-query is a typed server-error reply — the connection
     survives and the daemon keeps serving. *)
  (match ok (C.query c ~digest q) with
  | P.Server_error _ -> ()
  | r ->
      Alcotest.failf "wanted Server_error, got %s" (P.encode_reply { rid = 0; reply = r }));
  F.clear ();
  (* The client-side retry loop rides over the restart window. *)
  (match ok (C.query c ~digest ~retries:6 q) with
  | P.Answer { answer; _ } ->
      Alcotest.(check bool) "answer after restart = direct" true
        (P.answer_equal answer (direct_answer net q))
  | r -> Alcotest.failf "retries exhausted: %s" (P.encode_reply { rid = 0; reply = r }));
  (match D.supervisor_stats d with
  | Some (restarts, deaths) ->
      Alcotest.(check bool) "death counted" true (deaths >= 1);
      Alcotest.(check bool) "restart counted" true (restarts >= 1)
  | None -> Alcotest.fail "supervised daemon must expose fleet stats");
  let s = D.stats d in
  Alcotest.(check bool) "crash counted as failed" true (s.P.failed >= 1);
  Alcotest.(check int) "identity" s.P.submitted (s.P.served + s.P.rejected + s.P.failed)

(* ================================================================== *)
(* Chaos soak: supervised fleet + store under a kill schedule          *)
(* ================================================================== *)

let test_daemon_chaos_soak () =
  with_clean_faults @@ fun () ->
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  (* Inherited by every child at fork: each worker process dies, as if
     OOM-killed, on every 7th query it receives. *)
  F.arm "serve.worker.kill%7";
  let n_clients = 16 and per_client = 4 in
  let query_for k j =
    (* Distinct per (client, step): every query misses the parent cache
       and reaches a worker, so the kill schedule is guaranteed to fire. *)
    let input = [| 100 + (4 * k) + j; 80 - k |] in
    let label = Nn.Qnet.predict net input in
    match j mod 3 with
    | 0 ->
        P.Exists_flip
          {
            backend = B.Bnb;
            spec = N.symmetric ~delta:(1 + (j mod 2)) ~bias_noise:false;
            input;
            label;
          }
    | 1 -> P.Certify { spec = N.symmetric ~delta:2 ~bias_noise:false; input; label }
    | _ ->
        P.Tolerance { backend = B.Bnb; bias_noise = false; max_delta = 4; input; label }
  in
  let recorded_lock = Mutex.create () in
  let recorded = ref [] in
  let digest0 =
    let d = test_daemon ~procs:2 ~workers:2 ~cap:32 ~store_path:path () in
    Fun.protect ~finally:(fun () -> D.stop d) @@ fun () ->
    let digest = with_client d (fun c -> ok (C.load c net)) in
    let anomalies = Atomic.make 0 in
    let client k () =
      with_client d @@ fun c ->
      for j = 0 to per_client - 1 do
        let q = query_for k j in
        match C.query c ~digest ~retries:5 q with
        | Ok (P.Answer { answer; _ }) when P.answer_decided answer ->
            Mutex.lock recorded_lock;
            recorded := (q, answer_bytes answer) :: !recorded;
            Mutex.unlock recorded_lock
        | Ok (P.Answer _ | P.Overloaded _ | P.Server_error _) -> ()
        | Ok _ | Error _ -> Atomic.incr anomalies
      done
    in
    let threads = Array.init n_clients (fun k -> Thread.create (client k) ()) in
    Array.iter Thread.join threads;
    Alcotest.(check int) "every reply typed, no dead connections" 0
      (Atomic.get anomalies);
    poll_until "daemon idle" (fun () -> (D.stats d).P.in_flight = 0);
    let s = D.stats d in
    (* Client retries re-submit, so submitted >= the logical query count;
       the identity must hold over everything that was admitted. *)
    Alcotest.(check bool) "all logical queries submitted" true
      (s.P.submitted >= n_clients * per_client);
    Alcotest.(check int) "served + rejected + failed = submitted" s.P.submitted
      (s.P.served + s.P.rejected + s.P.failed);
    (* The schedule killed workers and the daemon survived each one. *)
    (match D.supervisor_stats d with
    | Some (_, deaths) -> Alcotest.(check bool) "kill schedule fired" true (deaths >= 1)
    | None -> Alcotest.fail "supervised daemon must expose fleet stats");
    Alcotest.(check bool) "the daemon still answers" true
      (with_client d (fun c -> C.ping c) = Ok ());
    digest
  in
  F.clear ();
  Alcotest.(check bool) "soak produced decided answers" true (!recorded <> []);
  (* Cold restart on the journal the kill storm wrote: every decided
     answer that crossed the wire comes back from the recovered cache,
     bit for bit. (The restart daemon is in-process — it spawns domains,
     so it must be the last daemon this test executable boots.) *)
  let d = test_daemon ~store_path:path () in
  Fun.protect ~finally:(fun () -> D.stop d) @@ fun () ->
  (match D.store_stats d with
  | Some st ->
      Alcotest.(check bool) "records recovered" true (st.Serve.Store.recovered > 0)
  | None -> Alcotest.fail "store stats must be exposed");
  with_client d @@ fun c ->
  let digest = ok (C.load c net) in
  Alcotest.(check string) "digest stable across restart" digest0 digest;
  List.iter
    (fun (q, bytes) ->
      match answer_of_reply "recovered" (ok (C.query c ~digest q)) with
      | true, a ->
          Alcotest.(check string) "recovered bit-identical" bytes (answer_bytes a);
          (match (q, a) with
          | P.Certify { spec; input; label }, P.Certified { verdict; cert } -> (
              match
                B.check_certified net spec ~input ~label
                  { B.cv_verdict = verdict; cv_cert = cert }
              with
              | Ok () -> ()
              | Error e -> Alcotest.failf "recovered certificate rejected: %s" e)
          | _ -> ())
      | false, _ -> Alcotest.fail "survivor must be a cache hit")
    !recorded

let () =
  Alcotest.run "serve-chaos"
    [
      ( "supervisor",
        [
          Alcotest.test_case "death, restart, load replay" `Quick
            test_supervisor_restart_and_replay;
          Alcotest.test_case "restart-storm circuit breaker" `Quick
            test_supervisor_storm_circuit;
        ] );
      ( "crash-isolation",
        [
          Alcotest.test_case "supervised differential + parent cache" `Quick
            test_daemon_supervised_differential;
          Alcotest.test_case "worker crash is a typed reply" `Quick
            test_daemon_worker_crash_typed;
          (* Last: its restart phase spawns in-process domains, after
             which no fork can succeed in this process. *)
          Alcotest.test_case "chaos soak: 16 clients under kill schedule" `Quick
            test_daemon_chaos_soak;
        ] );
    ]
