(* Tests for the SMV library: AST validation, printing, the explicit-state
   engine, and the network-to-SMV translation (paper Fig. 3). *)

module A = Smv.Ast

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec loop i = i + m <= n && (String.sub haystack i m = needle || loop (i + 1)) in
  loop 0

(* ---------- a tiny hand-written counter program ---------- *)

let counter_program ?(invarspecs = []) () =
  {
    A.state_vars = [ ("x", A.Range (0, 3)) ];
    input_vars = [];
    defines = [ ("is_max", A.Cmp (A.Eq, A.Var "x", A.Int 3)) ];
    init = [ ("x", A.Int 0) ];
    next =
      [
        ( "x",
          A.Case
            [
              (A.Var "is_max", A.Int 0);
              (A.Sym "TRUE", A.Add (A.Var "x", A.Int 1));
            ] );
      ];
    invarspecs;
  }

let test_domain_values () =
  Alcotest.(check int) "range size" 5 (A.domain_size (A.Range (-2, 2)));
  Alcotest.(check int) "enum size" 2 (A.domain_size (A.Enum [ "a"; "b" ]));
  (match A.domain_values (A.Range (1, 2)) with
  | [ A.VInt 1; A.VInt 2 ] -> ()
  | _ -> Alcotest.fail "range values");
  Alcotest.check_raises "empty range" (Invalid_argument "Ast.domain_values: empty range")
    (fun () -> ignore (A.domain_values (A.Range (2, 1))))

let test_validate_ok () =
  match A.validate (counter_program ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_validate_duplicate () =
  let p = counter_program () in
  let bad = { p with A.defines = [ ("x", A.Int 0) ] } in
  match A.validate bad with
  | Error msg -> Alcotest.(check bool) "mentions x" true (contains msg "x")
  | Ok () -> Alcotest.fail "expected error"

let test_validate_unknown_reference () =
  let p = counter_program () in
  let bad = { p with A.next = [ ("x", A.Var "ghost") ] } in
  match A.validate bad with
  | Error msg -> Alcotest.(check bool) "mentions ghost" true (contains msg "ghost")
  | Ok () -> Alcotest.fail "expected error"

let test_validate_init_non_state () =
  let p = counter_program () in
  let bad = { p with A.init = p.A.init @ [ ("is_max", A.Int 0) ] } in
  match A.validate bad with
  | Error msg -> Alcotest.(check bool) "mentions is_max" true (contains msg "is_max")
  | Ok () -> Alcotest.fail "expected error"

let test_validate_define_order () =
  let p = counter_program () in
  (* A define referencing a later define must be rejected. *)
  let bad =
    { p with A.defines = [ ("a", A.Var "b"); ("b", A.Int 1) ] }
  in
  match A.validate bad with
  | Error msg -> Alcotest.(check bool) "mentions a" true (contains msg "a")
  | Ok () -> Alcotest.fail "expected error"

(* ---------- printer ---------- *)

let test_printer_structure () =
  let text = Smv.Printer.program_to_string (counter_program ()) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains text fragment))
    [ "MODULE main"; "VAR"; "x : 0..3;"; "DEFINE"; "ASSIGN"; "init(x) := 0;"; "next(x)"; "esac" ]

let test_printer_invarspec () =
  let p = counter_program ~invarspecs:[ ("small", A.Cmp (A.Le, A.Var "x", A.Int 3)) ] () in
  let text = Smv.Printer.program_to_string p in
  Alcotest.(check bool) "has INVARSPEC" true (contains text "INVARSPEC");
  Alcotest.(check bool) "names the property" true (contains text "small")

let test_printer_set_and_enum () =
  let p =
    {
      A.state_vars = [ ("m", A.Enum [ "a"; "b" ]); ("d", A.Range (-1, 1)) ];
      input_vars = [ ("pick", A.Range (0, 1)) ];
      defines = [];
      init = [ ("m", A.Sym "a"); ("d", A.Int 0) ];
      next = [ ("m", A.Var "m"); ("d", A.Set [ A.Int (-1); A.Int 0; A.Int 1 ]) ];
      invarspecs = [];
    }
  in
  let text = Smv.Printer.program_to_string p in
  Alcotest.(check bool) "enum domain" true (contains text "{a, b}");
  Alcotest.(check bool) "IVAR section" true (contains text "IVAR");
  Alcotest.(check bool) "set literal" true (contains text "{-1, 0, 1}")

(* ---------- explicit-state engine ---------- *)

let explore_ok p =
  match Smv.Fsm.explore p with
  | Ok o -> o
  | Error e -> Alcotest.fail ("explore: " ^ Smv.Fsm.error_to_string e)

let test_fsm_counter_reachability () =
  let o = explore_ok (counter_program ()) in
  Alcotest.(check int) "4 states" 4 o.stats.n_states;
  (* Deterministic cycle: one outgoing edge per state. *)
  Alcotest.(check int) "4 transitions" 4 o.stats.n_transitions;
  Alcotest.(check int) "no violations" 0 (List.length o.violations)

let test_fsm_invariant_holds () =
  let p = counter_program ~invarspecs:[ ("le3", A.Cmp (A.Le, A.Var "x", A.Int 3)) ] () in
  let o = explore_ok p in
  Alcotest.(check int) "holds" 0 (List.length o.violations)

let test_fsm_invariant_violated_with_trace () =
  let p = counter_program ~invarspecs:[ ("lt2", A.Cmp (A.Lt, A.Var "x", A.Int 2)) ] () in
  let o = explore_ok p in
  match o.violations with
  | [ (name, trace) ] ->
      Alcotest.(check string) "property name" "lt2" name;
      (* Trace starts at the initial state and ends in a violating one. *)
      (match trace with
      | first :: _ ->
          Alcotest.(check bool) "starts at x=0" true (first = [| A.VInt 0 |])
      | [] -> Alcotest.fail "empty trace");
      let last = List.nth trace (List.length trace - 1) in
      (match last with
      | [| A.VInt v |] -> Alcotest.(check bool) "violating state" true (v >= 2)
      | _ -> Alcotest.fail "bad state shape")
  | _ -> Alcotest.fail "expected exactly one violation"

let test_fsm_set_nondeterminism () =
  (* x in {0,1} re-chosen each step: 2 states, 4 edges. *)
  let p =
    {
      A.state_vars = [ ("x", A.Range (0, 1)) ];
      input_vars = [];
      defines = [];
      init = [ ("x", A.Set [ A.Int 0; A.Int 1 ]) ];
      next = [ ("x", A.Set [ A.Int 0; A.Int 1 ]) ];
      invarspecs = [];
    }
  in
  let o = explore_ok p in
  Alcotest.(check int) "2 states" 2 o.stats.n_states;
  Alcotest.(check int) "4 edges" 4 o.stats.n_transitions

let test_fsm_input_vars () =
  (* next(x) := pick, pick an IVAR in 0..2: all 3 values reachable. *)
  let p =
    {
      A.state_vars = [ ("x", A.Range (0, 2)) ];
      input_vars = [ ("pick", A.Range (0, 2)) ];
      defines = [];
      init = [ ("x", A.Int 0) ];
      next = [ ("x", A.Var "pick") ];
      invarspecs = [];
    }
  in
  let o = explore_ok p in
  Alcotest.(check int) "3 states" 3 o.stats.n_states;
  Alcotest.(check int) "9 edges" 9 o.stats.n_transitions

let test_fsm_frozen_var () =
  (* No next equation: the variable keeps its initial value. *)
  let p =
    {
      A.state_vars = [ ("k", A.Range (0, 5)); ("x", A.Range (0, 1)) ];
      input_vars = [];
      defines = [];
      init = [ ("k", A.Set [ A.Int 2; A.Int 4 ]); ("x", A.Int 0) ];
      next = [ ("x", A.Set [ A.Int 0; A.Int 1 ]) ];
      invarspecs = [ ("k_frozen", A.Or (A.Cmp (A.Eq, A.Var "k", A.Int 2), A.Cmp (A.Eq, A.Var "k", A.Int 4))) ];
    }
  in
  let o = explore_ok p in
  Alcotest.(check int) "2 k-values x 2 x-values" 4 o.stats.n_states;
  Alcotest.(check int) "frozen invariant holds" 0 (List.length o.violations)

let test_fsm_state_limit () =
  let p =
    {
      A.state_vars = [ ("x", A.Range (0, 100)) ];
      input_vars = [];
      defines = [];
      init = [ ("x", A.Int 0) ];
      next = [ ("x", A.Set (List.init 101 (fun i -> A.Int i))) ];
      invarspecs = [];
    }
  in
  match Smv.Fsm.explore ~state_limit:10 p with
  | Error (`State_limit n) ->
      Alcotest.(check int) "limit value" 10 n;
      Alcotest.(check bool) "limit error rendered" true
        (contains (Smv.Fsm.error_to_string (`State_limit n)) "limit")
  | Error e -> Alcotest.fail ("wrong error: " ^ Smv.Fsm.error_to_string e)
  | Ok _ -> Alcotest.fail "expected state-limit error"

let test_fsm_domain_violation_detected () =
  let p =
    {
      A.state_vars = [ ("x", A.Range (0, 1)) ];
      input_vars = [];
      defines = [];
      init = [ ("x", A.Int 0) ];
      next = [ ("x", A.Add (A.Var "x", A.Int 1)) ];
      invarspecs = [];
    }
  in
  (* x+1 leaves the domain on the second step. *)
  match Smv.Fsm.explore p with
  | Error e ->
      Alcotest.(check bool) "domain error" true
        (contains (Smv.Fsm.error_to_string e) "domain")
  | Ok _ -> Alcotest.fail "expected domain error"

let test_fsm_eval_in_state () =
  let p = counter_program () in
  match Smv.Fsm.eval_in_state p [| A.VInt 3 |] (A.Var "is_max") with
  | Ok (A.VBool true) -> ()
  | Ok _ -> Alcotest.fail "wrong value"
  | Error e -> Alcotest.fail e

(* ---------- network translation ---------- *)

let tiny_qnet () =
  (* 2 inputs, 2 hidden (relu), 2 outputs. *)
  Nn.Qnet.create
    [|
      { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Relu };
      { Nn.Qnet.weights = [| [| 2; -1 |]; [| -1; 2 |] |]; bias = [| 0; 1 |]; act = Nn.Qnet.Identity };
    |]

let test_translate_validates () =
  let net = tiny_qnet () in
  let config =
    Smv.Translate.symmetric ~delta:1 ~bias_noise:false ~samples:[ ([| 5; 9 |], 0) ]
  in
  let p = Smv.Translate.network_program net config in
  match A.validate p with Ok () -> () | Error e -> Alcotest.fail e

let test_translate_rejects_bad_input () =
  let net = tiny_qnet () in
  Alcotest.check_raises "size" (Invalid_argument "Translate: sample size mismatch")
    (fun () ->
      ignore
        (Smv.Translate.network_program net
           (Smv.Translate.symmetric ~delta:1 ~bias_noise:false
              ~samples:[ ([| 1 |], 0) ])));
  Alcotest.check_raises "no samples" (Invalid_argument "Translate: no samples")
    (fun () ->
      ignore
        (Smv.Translate.network_program net
           (Smv.Translate.symmetric ~delta:1 ~bias_noise:false ~samples:[])));
  (* A binarized 2-layer net passes the layer-count check but the emitted
     DEFINEs hard-code relu hidden / identity output: it must be rejected,
     not silently mistranslated. *)
  let bnn =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Sign };
        { Nn.Qnet.weights = [| [| 2; -1 |]; [| -1; 2 |] |]; bias = [| 0; 1 |]; act = Nn.Qnet.Identity };
      |]
  in
  Alcotest.check_raises "binarized"
    (Invalid_argument "Translate: ReLU hidden and identity output only")
    (fun () ->
      ignore
        (Smv.Translate.network_program bnn
           (Smv.Translate.symmetric ~delta:1 ~bias_noise:false
              ~samples:[ ([| 5; 9 |], 0) ])))

let explore_net net config =
  explore_ok (Smv.Translate.network_program net config)

let test_translate_fsm_agrees_with_qnet () =
  (* Without noise the FSM's P2 invariant is violated iff the network
     misclassifies the sample. *)
  let net = tiny_qnet () in
  List.iter
    (fun input ->
      let predicted = Nn.Qnet.predict net input in
      let wrong_label = 1 - predicted in
      let ok_cfg =
        Smv.Translate.symmetric ~delta:0 ~bias_noise:false
          ~samples:[ (input, predicted) ]
      in
      let bad_cfg =
        Smv.Translate.symmetric ~delta:0 ~bias_noise:false
          ~samples:[ (input, wrong_label) ]
      in
      let o_ok = explore_net net ok_cfg in
      let o_bad = explore_net net bad_cfg in
      Alcotest.(check int) "true label holds" 0 (List.length o_ok.violations);
      Alcotest.(check int) "wrong label violated" 1 (List.length o_bad.violations))
    [ [| 5; 9 |]; [| 50; 3 |]; [| 1; 1 |] ]

let test_translate_noise_violation_matches_explicit () =
  (* The FSM finds a noise counterexample iff explicit enumeration does. *)
  let net = tiny_qnet () in
  let input = [| 10; 12 |] in
  let label = Nn.Qnet.predict net input in
  List.iter
    (fun delta ->
      let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
      let explicit_flip =
        match
          Fannet.Backend.exists_flip
            (Fannet.Backend.Explicit { limit = 1_000_000 })
            net spec ~input ~label
        with
        | Fannet.Backend.Flip _ -> true
        | Fannet.Backend.Robust -> false
        | Fannet.Backend.Unknown _ -> Alcotest.fail "explicit unknown"
      in
      let cfg = Smv.Translate.symmetric ~delta ~bias_noise:false ~samples:[ (input, label) ] in
      let o = explore_net net cfg in
      Alcotest.(check bool)
        (Printf.sprintf "delta %d agreement" delta)
        explicit_flip
        (o.violations <> []))
    [ 0; 1; 2; 3; 5; 8 ]

let test_translate_fig3_shape () =
  (* Paper Fig. 3 state-space counts: for a single sample robust on the
     range, 1 + k states and (1 + k) * k transitions with k noise vectors;
     for several samples without noise, 3 states and 6 transitions. *)
  let net = tiny_qnet () in
  let input = [| 10; 12 |] in
  let label = Nn.Qnet.predict net input in
  (* [0,1]% on 2 input nodes (no bias noise): k = 4. *)
  let cfg =
    { Smv.Translate.delta_lo = 0; delta_hi = 1; bias_noise = false; samples = [ (input, label) ] }
  in
  let o = explore_net net cfg in
  if o.violations = [] then begin
    Alcotest.(check int) "states 1+k" 5 o.stats.n_states;
    Alcotest.(check int) "transitions (1+k)k" 20 o.stats.n_transitions
  end
  else Alcotest.fail "expected robustness at [0,1]% for this input";
  (* Two samples of different predicted classes, no noise: 3 states, 6
     transitions. *)
  let x1 = [| 50; 3 |] and x2 = [| 1; 40 |] in
  Alcotest.(check bool) "samples differ in class" true
    (Nn.Qnet.predict net x1 <> Nn.Qnet.predict net x2);
  let cfg2 =
    Smv.Translate.symmetric ~delta:0 ~bias_noise:false
      ~samples:[ (x1, Nn.Qnet.predict net x1); (x2, Nn.Qnet.predict net x2) ]
  in
  let o2 = explore_net net cfg2 in
  Alcotest.(check int) "3 states" 3 o2.stats.n_states;
  Alcotest.(check int) "6 transitions" 6 o2.stats.n_transitions

let test_translate_smv_text_mentions_structure () =
  let net = tiny_qnet () in
  let cfg = Smv.Translate.symmetric ~delta:2 ~bias_noise:true ~samples:[ ([| 5; 9 |], 0) ] in
  let text = Smv.Printer.program_to_string (Smv.Translate.network_program net cfg) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("has " ^ fragment) true (contains text fragment))
    [ "phase : {s_init, s_l0, s_l1}"; "d0 : -2..2"; "d1 : -2..2"; "pre1"; "h1"; "o0"; "o1"; "out"; "INVARSPEC" ]

(* ---------- parser ---------- *)

let parse_ok text =
  match Smv.Parser.parse text with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse: " ^ e)

let test_parse_expr () =
  let check_expr text expected =
    match Smv.Parser.parse_expr text with
    | Ok e -> Alcotest.(check bool) text true (e = expected)
    | Error msg -> Alcotest.fail msg
  in
  check_expr "1 + 2 * x" (A.Add (A.Int 1, A.Mul (A.Int 2, A.Var "x")));
  (* The parser folds a minus sign on an integer literal into the literal
     itself, so printed negative constants roundtrip structurally. *)
  check_expr "-3" (A.Int (-3));
  check_expr "- 3" (A.Int (-3));
  check_expr "-x" (A.Neg (A.Var "x"));
  check_expr "a & b | c" (A.Or (A.And (A.Var "a", A.Var "b"), A.Var "c"));
  check_expr "!(x = 1)" (A.Not (A.Cmp (A.Eq, A.Var "x", A.Int 1)));
  check_expr "{0, 1, 2}" (A.Set [ A.Int 0; A.Int 1; A.Int 2 ]);
  check_expr "x != y" (A.Cmp (A.Ne, A.Var "x", A.Var "y"));
  check_expr "TRUE" (A.Sym "TRUE")

let test_parse_expr_case () =
  match Smv.Parser.parse_expr "case x > 0 : x; TRUE : 0; esac" with
  | Ok (A.Case [ (A.Cmp (A.Gt, A.Var "x", A.Int 0), A.Var "x"); (A.Sym "TRUE", A.Int 0) ]) -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  (match Smv.Parser.parse_expr "1 +" with
  | Error msg -> Alcotest.(check bool) "line info" true (contains msg "line")
  | Ok _ -> Alcotest.fail "expected error");
  match Smv.Parser.parse "MODULE other\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected module-name error"

let test_parse_roundtrip_counter () =
  let p = counter_program ~invarspecs:[ ("le3", A.Cmp (A.Le, A.Var "x", A.Int 3)) ] () in
  let p2 = parse_ok (Smv.Printer.program_to_string p) in
  Alcotest.(check bool) "same state vars" true (p.A.state_vars = p2.A.state_vars);
  Alcotest.(check bool) "same defines" true (p.A.defines = p2.A.defines);
  Alcotest.(check bool) "same init" true (p.A.init = p2.A.init);
  (* INVARSPEC NAME syntax preserves property names across the roundtrip. *)
  Alcotest.(check (list string)) "same invarspec names"
    (List.map fst p.A.invarspecs)
    (List.map fst p2.A.invarspecs);
  (* Printed expressions are fully parenthesised, so next/specs compare
     semantically via exploration. *)
  let o1 = explore_ok p and o2 = explore_ok p2 in
  Alcotest.(check bool) "same reachability" true (o1.stats = o2.stats);
  Alcotest.(check int) "same violations" (List.length o1.violations)
    (List.length o2.violations)

let test_parse_roundtrip_network () =
  let net = tiny_qnet () in
  let cfg = Smv.Translate.symmetric ~delta:1 ~bias_noise:true ~samples:[ ([| 5; 9 |], 0) ] in
  let p = Smv.Translate.network_program net cfg in
  let p2 = parse_ok (Smv.Printer.program_to_string p) in
  let o1 = explore_ok p and o2 = explore_ok p2 in
  Alcotest.(check bool) "same stats" true (o1.stats = o2.stats);
  Alcotest.(check int) "same violation count" (List.length o1.violations)
    (List.length o2.violations)

let test_parse_enum_symbols_resolved () =
  let text =
    "MODULE main\nVAR m : {a, b};\nASSIGN\n  init(m) := a;\n  next(m) := case m = a : b; TRUE : a; esac;\n"
  in
  let p = parse_ok text in
  (match List.assoc "m" p.A.init with
  | A.Sym "a" -> ()
  | _ -> Alcotest.fail "init symbol not resolved");
  let o = explore_ok p in
  Alcotest.(check int) "both enum states reachable" 2 o.stats.n_states

(* ---------- bounded model checking ---------- *)

let bmc_ok ?bound p =
  match Smv.Bmc.check ?bound p with
  | Ok results -> results
  | Error e -> Alcotest.fail ("bmc: " ^ e)

let test_bmc_counter_holds () =
  let p = counter_program ~invarspecs:[ ("le3", A.Cmp (A.Le, A.Var "x", A.Int 3)) ] () in
  match bmc_ok ~bound:6 p with
  | [ (_, Smv.Bmc.Holds_up_to 6) ] -> ()
  | _ -> Alcotest.fail "expected holds"

let test_bmc_counter_violation () =
  let p = counter_program ~invarspecs:[ ("lt2", A.Cmp (A.Lt, A.Var "x", A.Int 2)) ] () in
  match bmc_ok ~bound:6 p with
  | [ (_, Smv.Bmc.Violated { step = 2; trace }) ] ->
      Alcotest.(check int) "trace length" 3 (List.length trace);
      (* The trace must follow the counter: x = 0, 1, 2. *)
      let values =
        List.map (fun st -> match st with [| A.VInt v |] -> v | _ -> -1) trace
      in
      Alcotest.(check (list int)) "trace values" [ 0; 1; 2 ] values
  | [ (_, Smv.Bmc.Violated { step; _ }) ] ->
      Alcotest.failf "violated at unexpected step %d" step
  | _ -> Alcotest.fail "expected a violation"

let test_bmc_agrees_with_fsm_on_network () =
  (* On the translated network, BMC (bound 2) and explicit exploration
     must agree on whether P2 is violated. *)
  let net = tiny_qnet () in
  let input = [| 10; 12 |] in
  let label = Nn.Qnet.predict net input in
  List.iter
    (fun delta ->
      let cfg = Smv.Translate.symmetric ~delta ~bias_noise:false ~samples:[ (input, label) ] in
      let prog = Smv.Translate.network_program net cfg in
      let fsm_violated = (explore_ok prog).violations <> [] in
      let bmc_violated =
        match bmc_ok ~bound:2 prog with
        | [ (_, Smv.Bmc.Violated _) ] -> true
        | [ (_, Smv.Bmc.Holds_up_to _) ] -> false
        | _ -> Alcotest.fail "one spec expected"
      in
      Alcotest.(check bool) (Printf.sprintf "delta %d" delta) fsm_violated bmc_violated)
    [ 0; 1; 3; 8; 10; 12 ]

let test_bmc_enum_trace_decoded () =
  let net = tiny_qnet () in
  let input = [| 10; 12 |] in
  let label = Nn.Qnet.predict net input in
  let cfg = Smv.Translate.symmetric ~delta:12 ~bias_noise:false ~samples:[ (input, label) ] in
  let prog = Smv.Translate.network_program net cfg in
  match bmc_ok ~bound:2 prog with
  | [ (_, Smv.Bmc.Violated { trace; _ }) ] -> (
      match trace with
      | first :: _ -> (
          (* State order: phase first, then noise vars; phase starts at
             s_init. *)
          match first.(0) with
          | A.VSym "s_init" -> ()
          | _ -> Alcotest.fail "first phase not s_init")
      | [] -> Alcotest.fail "empty trace")
  | _ -> Alcotest.fail "expected violation at +-12%"

let test_bmc_rejects_nonlinear () =
  let p =
    {
      A.state_vars = [ ("x", A.Range (0, 3)); ("y", A.Range (0, 3)) ];
      input_vars = [];
      defines = [];
      init = [ ("x", A.Int 1); ("y", A.Int 1) ];
      next = [ ("x", A.Mul (A.Var "x", A.Var "y")); ("y", A.Var "y") ];
      invarspecs = [ ("t", A.Cmp (A.Le, A.Var "x", A.Int 3)) ];
    }
  in
  match Smv.Bmc.check p with
  | Error msg -> Alcotest.(check bool) "nonlinear" true (contains msg "nonlinear")
  | Ok _ -> Alcotest.fail "expected unsupported"

(* ---------- random-program cross-checks ---------- *)

(* Random finite-state programs whose transitions are nondeterministic
   choices among constants: always well-typed, never leave their domains,
   and every reachable state appears within one step — so explicit
   exploration, bounded model checking (bound >= 2) and the printed/parsed
   roundtrip must all agree. *)
let random_program_gen =
  let open QCheck.Gen in
  let* n_vars = int_range 1 3 in
  let domain_lo = -2 and domain_hi = 3 in
  let var_names = [ "a"; "b"; "c" ] in
  let const = int_range domain_lo domain_hi in
  let* inits = list_size (return n_vars) (list_size (int_range 1 2) const) in
  let* nexts = list_size (return n_vars) (option (list_size (int_range 1 3) const)) in
  let* spec_var = int_range 0 (n_vars - 1) in
  let* spec_bound = const in
  let* spec_cmp = oneofl [ A.Le; A.Lt; A.Ne; A.Ge ] in
  let names = List.filteri (fun i _ -> i < n_vars) var_names in
  let program =
    {
      A.state_vars = List.map (fun n -> (n, A.Range (domain_lo, domain_hi))) names;
      input_vars = [];
      defines = [];
      init =
        List.map2
          (fun n vals -> (n, A.Set (List.map (fun v -> A.Int v) vals)))
          names inits;
      next =
        List.concat
          (List.map2
             (fun n vals ->
               match vals with
               | None -> [] (* frozen *)
               | Some vs -> [ (n, A.Set (List.map (fun v -> A.Int v) vs)) ])
             names nexts);
      invarspecs =
        [ ("p", A.Cmp (spec_cmp, A.Var (List.nth names spec_var), A.Int spec_bound)) ];
    }
  in
  return program

let arb_program =
  QCheck.make ~print:Smv.Printer.program_to_string random_program_gen

let prop_fsm_bmc_agree =
  QCheck.Test.make ~name:"explicit engine and BMC agree on random programs"
    ~count:150 arb_program (fun program ->
      match (Smv.Fsm.explore program, Smv.Bmc.check ~bound:3 program) with
      | Ok fsm, Ok [ (_, bmc) ] -> (
          let fsm_violated = fsm.violations <> [] in
          match bmc with
          | Smv.Bmc.Violated _ -> fsm_violated
          | Smv.Bmc.Holds_up_to _ -> not fsm_violated)
      | Ok _, Ok _ -> false
      | Error _, _ | _, Error _ -> false)

let prop_print_parse_preserves_semantics =
  QCheck.Test.make ~name:"print/parse roundtrip preserves reachability"
    ~count:150 arb_program (fun program ->
      match Smv.Parser.parse (Smv.Printer.program_to_string program) with
      | Error _ -> false
      | Ok program2 -> (
          match (Smv.Fsm.explore program, Smv.Fsm.explore program2) with
          | Ok o1, Ok o2 ->
              o1.stats = o2.stats
              && List.length o1.violations = List.length o2.violations
          | (Ok _ | Error _), _ -> false))

let prop_bmc_trace_replays =
  QCheck.Test.make ~name:"BMC counterexample traces satisfy the program"
    ~count:150 arb_program (fun program ->
      match Smv.Bmc.check ~bound:3 program with
      | Ok [ (_, Smv.Bmc.Violated { trace; step }) ] ->
          List.length trace = step + 1
          &&
          (* The final state must violate the spec under the explicit
             evaluator, and every state must respect domains. *)
          let last = List.nth trace step in
          let _, spec = List.hd program.A.invarspecs in
          (match Smv.Fsm.eval_in_state program last spec with
          | Ok (A.VBool false) -> true
          | Ok _ | Error _ -> false)
      | Ok [ (_, Smv.Bmc.Holds_up_to _) ] -> true
      | Ok _ | Error _ -> false)

(* Structural roundtrips over the richer generator from lib/check: unlike
   the semantic checks above these require parse(print(x)) = x as ASTs,
   which pins invarspec names (INVARSPEC NAME syntax), negative-literal
   folding, enum-symbol resolution and full parenthesisation. *)

let test_structural_expr_roundtrip () =
  let rng = Util.Rng.create 0xbeef in
  for i = 1 to 500 do
    let e = Check.Smv_gen.expr rng in
    let text = Smv.Printer.expr_to_string e in
    match Smv.Parser.parse_expr text with
    | Error msg -> Alcotest.failf "expr %d %S failed to parse: %s" i text msg
    | Ok e2 ->
        if e <> e2 then Alcotest.failf "expr %d did not roundtrip: %S" i text
  done

let test_structural_program_roundtrip () =
  let rng = Util.Rng.create 0xf00d in
  for i = 1 to 200 do
    let p = Check.Smv_gen.program rng in
    let text = Smv.Printer.program_to_string p in
    match Smv.Parser.parse text with
    | Error msg -> Alcotest.failf "program %d failed to parse: %s\n%s" i msg text
    | Ok p2 ->
        if p <> p2 then
          Alcotest.failf "program %d did not roundtrip structurally:\n%s" i text
  done

let () =
  Alcotest.run "smv"
    [
      ( "ast",
        [
          Alcotest.test_case "domain values" `Quick test_domain_values;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "duplicate decl" `Quick test_validate_duplicate;
          Alcotest.test_case "unknown reference" `Quick test_validate_unknown_reference;
          Alcotest.test_case "init non-state" `Quick test_validate_init_non_state;
          Alcotest.test_case "define order" `Quick test_validate_define_order;
        ] );
      ( "printer",
        [
          Alcotest.test_case "structure" `Quick test_printer_structure;
          Alcotest.test_case "invarspec" `Quick test_printer_invarspec;
          Alcotest.test_case "set and enum" `Quick test_printer_set_and_enum;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "counter reachability" `Quick test_fsm_counter_reachability;
          Alcotest.test_case "invariant holds" `Quick test_fsm_invariant_holds;
          Alcotest.test_case "violation with trace" `Quick test_fsm_invariant_violated_with_trace;
          Alcotest.test_case "set nondeterminism" `Quick test_fsm_set_nondeterminism;
          Alcotest.test_case "input vars" `Quick test_fsm_input_vars;
          Alcotest.test_case "frozen var" `Quick test_fsm_frozen_var;
          Alcotest.test_case "state limit" `Quick test_fsm_state_limit;
          Alcotest.test_case "domain violation" `Quick test_fsm_domain_violation_detected;
          Alcotest.test_case "eval in state" `Quick test_fsm_eval_in_state;
        ] );
      ( "parser",
        [
          Alcotest.test_case "expressions" `Quick test_parse_expr;
          Alcotest.test_case "case expression" `Quick test_parse_expr_case;
          Alcotest.test_case "errors carry line info" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip counter" `Quick test_parse_roundtrip_counter;
          Alcotest.test_case "roundtrip network" `Quick test_parse_roundtrip_network;
          Alcotest.test_case "enum symbols resolved" `Quick test_parse_enum_symbols_resolved;
        ] );
      ( "random-cross-checks",
        [
          QCheck_alcotest.to_alcotest prop_fsm_bmc_agree;
          QCheck_alcotest.to_alcotest prop_print_parse_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_bmc_trace_replays;
          Alcotest.test_case "structural expr roundtrip" `Quick
            test_structural_expr_roundtrip;
          Alcotest.test_case "structural program roundtrip" `Quick
            test_structural_program_roundtrip;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "counter holds" `Quick test_bmc_counter_holds;
          Alcotest.test_case "counter violation + trace" `Quick test_bmc_counter_violation;
          Alcotest.test_case "agrees with fsm on network" `Quick test_bmc_agrees_with_fsm_on_network;
          Alcotest.test_case "enum trace decoded" `Quick test_bmc_enum_trace_decoded;
          Alcotest.test_case "rejects nonlinear" `Quick test_bmc_rejects_nonlinear;
        ] );
      ( "translate",
        [
          Alcotest.test_case "validates" `Quick test_translate_validates;
          Alcotest.test_case "rejects bad input" `Quick test_translate_rejects_bad_input;
          Alcotest.test_case "fsm agrees with qnet" `Quick test_translate_fsm_agrees_with_qnet;
          Alcotest.test_case "noise violation matches explicit" `Quick
            test_translate_noise_violation_matches_explicit;
          Alcotest.test_case "fig3 state-space shape" `Quick test_translate_fig3_shape;
          Alcotest.test_case "smv text structure" `Quick test_translate_smv_text_mentions_structure;
        ] );
    ]
