(* Tests for the resilience layer: budgets and cooperative cancellation,
   crash-safe checkpoints (fannet-ckpt/1), fault injection, kill-and-resume
   round-trips, and retry-with-escalation. Every fault in the matrix
   (sat.oom, worker.raise, ckpt.torn, corpus.corrupt, backend.unknown)
   must yield a typed partial result or a clean error — never a crash. *)

module R = Resil.Budget
module F = Resil.Faultpoint
module C = Resil.Ckpt
module J = Util.Json
module N = Fannet.Noise
module B = Fannet.Backend

let with_clean_faults f =
  F.clear ();
  Fun.protect ~finally:F.clear f

let tmp_file suffix =
  Filename.temp_file "fannet-test-resil" suffix

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let tiny_qnet () =
  Nn.Qnet.create
    [|
      { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Relu };
      { Nn.Qnet.weights = [| [| 2; -1 |]; [| -1; 2 |] |]; bias = [| 0; 1 |]; act = Nn.Qnet.Identity };
    |]

let labelled_inputs net raw =
  Array.map (fun input -> (input, Nn.Qnet.predict net input)) raw

(* ---------- budget basics ---------- *)

let test_budget_unlimited () =
  let b = R.unlimited () in
  Alcotest.(check bool) "no reason" true (R.check b = None);
  Alcotest.(check bool) "not exhausted" false (R.exhausted b);
  Alcotest.(check bool) "why none" true (R.why b = None)

let test_budget_deadline () =
  let b = R.create ~timeout_s:0.0 () in
  (* The deadline is in the past as soon as the budget exists. *)
  Alcotest.(check bool) "fires" true (R.check b = Some R.Deadline);
  (* Sticky: the reason persists on later checks. *)
  Alcotest.(check bool) "sticky" true (R.check b = Some R.Deadline);
  Alcotest.(check bool) "why" true (R.why b = Some R.Deadline);
  Alcotest.(check bool) "exhausted" true (R.exhausted b)

let test_budget_cancel () =
  let tok = R.token () in
  let b = R.create ~token:tok () in
  Alcotest.(check bool) "before" true (R.check b = None);
  R.cancel tok;
  Alcotest.(check bool) "token fired" true (R.cancelled tok);
  Alcotest.(check bool) "after" true (R.check b = Some R.Cancelled);
  (* cancel is idempotent *)
  R.cancel tok;
  Alcotest.(check bool) "still cancelled" true (R.check b = Some R.Cancelled)

let test_budget_record_first_wins () =
  let b = R.unlimited () in
  R.record b R.Conflicts;
  R.record b R.Memory;
  Alcotest.(check bool) "first recorded reason wins" true (R.why b = Some R.Conflicts)

let test_budget_scale () =
  let tok = R.token () in
  let b = R.create ~timeout_s:0.0001 ~conflicts:100 ~token:tok () in
  Unix.sleepf 0.002;
  Alcotest.(check bool) "exhausted before scale" true (R.check b <> None);
  let b2 = R.scale ~by:2 b in
  (* A large factor restarts the deadline far enough in the future that
     the scaled budget reads as inside-budget, proving the reason was
     cleared and the clock restarted. *)
  let b3 = R.scale ~by:1000000 b in
  Alcotest.(check bool) "scaled conflicts" true (R.conflicts b2 = Some 200);
  Alcotest.(check bool) "reason cleared" true (R.why b3 = None);
  Alcotest.(check bool) "inside scaled budget" true (R.check b3 = None);
  (* Same token: cancelling the original stops the retry too. *)
  R.cancel tok;
  Alcotest.(check bool) "shared token" true (R.check b3 = Some R.Cancelled)

let test_reason_strings () =
  let pairs =
    [ (R.Deadline, "deadline"); (R.Conflicts, "conflicts"); (R.Memory, "memory");
      (R.Cancelled, "cancelled"); (R.Incomplete, "incomplete") ]
  in
  List.iter
    (fun (r, s) -> Alcotest.(check string) s s (R.reason_to_string r))
    pairs;
  Alcotest.(check bool) "deadline retryable" true (R.retryable R.Deadline);
  Alcotest.(check bool) "conflicts retryable" true (R.retryable R.Conflicts);
  Alcotest.(check bool) "memory retryable" true (R.retryable R.Memory);
  Alcotest.(check bool) "cancelled not retryable" false (R.retryable R.Cancelled);
  Alcotest.(check bool) "incomplete not retryable" false (R.retryable R.Incomplete)

(* ---------- faultpoint ---------- *)

let test_faultpoint_arming () =
  with_clean_faults (fun () ->
      Alcotest.(check bool) "inert when unarmed" false (F.hit "sat.oom");
      F.arm "sat.oom,ckpt.torn";
      Alcotest.(check (list string)) "armed list" [ "ckpt.torn"; "sat.oom" ] (F.armed ());
      Alcotest.(check bool) "fires" true (F.hit "sat.oom");
      Alcotest.(check bool) "fires every hit" true (F.hit "sat.oom");
      Alcotest.(check bool) "other sites inert" false (F.hit "worker.raise");
      F.clear ();
      Alcotest.(check bool) "cleared" false (F.hit "sat.oom");
      Alcotest.(check (list string)) "empty after clear" [] (F.armed ()))

let test_faultpoint_nth_hit () =
  with_clean_faults (fun () ->
      F.arm "ckpt.torn@3";
      Alcotest.(check bool) "hit 1" false (F.hit "ckpt.torn");
      Alcotest.(check bool) "hit 2" false (F.hit "ckpt.torn");
      Alcotest.(check bool) "hit 3 fires" true (F.hit "ckpt.torn");
      Alcotest.(check bool) "hit 4" false (F.hit "ckpt.torn"))

let test_faultpoint_every_hit () =
  with_clean_faults (fun () ->
      F.arm "serve.worker.kill%3";
      let fired =
        List.init 9 (fun _ -> F.hit "serve.worker.kill")
      in
      Alcotest.(check (list bool))
        "fires on every 3rd hit"
        [ false; false; true; false; false; true; false; false; true ]
        fired;
      (* bad specs are rejected, not silently ignored *)
      Alcotest.(check bool) "bad spec rejected" true
        (try
           F.arm "serve.worker.kill%0";
           false
         with Invalid_argument _ -> true))

let test_faultpoint_guard () =
  with_clean_faults (fun () ->
      F.guard "worker.raise" (Failure "should not fire");
      F.arm "worker.raise";
      Alcotest.check_raises "guard raises when armed" (Failure "boom")
        (fun () -> F.guard "worker.raise" (Failure "boom")))

(* ---------- checkpoints ---------- *)

let test_ckpt_roundtrip () =
  let path = tmp_file ".ckpt" in
  let payload = J.Obj [ ("cursor", J.Int 42); ("found", J.List [ J.Int 1; J.Int 2 ]) ] in
  C.save ~kind:"extract" ~path payload;
  (match C.load ~kind:"extract" ~path with
  | Ok data -> Alcotest.(check bool) "payload round-trips" true (data = payload)
  | Error e -> Alcotest.fail ("load: " ^ e));
  Sys.remove path

let test_ckpt_kind_mismatch () =
  let path = tmp_file ".ckpt" in
  C.save ~kind:"extract" ~path (J.Int 1);
  (match C.load ~kind:"tolerance" ~path with
  | Ok _ -> Alcotest.fail "kind mismatch accepted"
  | Error e ->
      Alcotest.(check bool) "mentions path" true
        (String.length e >= String.length path));
  Sys.remove path

let test_ckpt_torn_write_detected () =
  with_clean_faults (fun () ->
      let path = tmp_file ".ckpt" in
      F.arm "ckpt.torn";
      C.save ~kind:"extract" ~path (J.Obj [ ("big", J.String (String.make 256 'x')) ]);
      F.clear ();
      (match C.load ~kind:"extract" ~path with
      | Ok _ -> Alcotest.fail "torn checkpoint accepted"
      | Error _ -> ());
      if Sys.file_exists path then Sys.remove path)

let test_ckpt_garbage_rejected () =
  let path = tmp_file ".ckpt" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "not a checkpoint at all\n");
  (match C.load ~kind:"extract" ~path with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (* Valid footer syntax but corrupted checksum must also be rejected. *)
  Out_channel.with_open_text path (fun oc ->
      output_string oc "{}\nfannet-ckpt/1 2 deadbeefdeadbeef\n");
  (match C.load ~kind:"extract" ~path with
  | Ok _ -> Alcotest.fail "bad checksum accepted"
  | Error _ -> ());
  Sys.remove path

let test_ckpt_missing_file () =
  match C.load ~kind:"extract" ~path:"/nonexistent/fannet-nope.ckpt" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

let test_fnv1a64 () =
  (* Published FNV-1a 64-bit test vectors. *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (C.fnv1a64 "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (C.fnv1a64 "a")

(* ---------- solver: cancellation and session reuse ---------- *)

(* A small pigeonhole-style CNF with enough conflicts to observe budget
   polling: n+1 pigeons, n holes. *)
let pigeonhole s n =
  let module S = Sat.Solver in
  let v = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> S.new_var s)) in
  for p = 0 to n do
    S.add_clause s (List.init n (fun h -> Sat.Lit.make v.(p).(h) true))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        S.add_clause s
          [ Sat.Lit.make v.(p1).(h) false; Sat.Lit.make v.(p2).(h) false ]
      done
    done
  done

let test_solver_cancelled_session_reusable () =
  let module S = Sat.Solver in
  let s = S.create () in
  pigeonhole s 7;
  let tok = R.token () in
  R.cancel tok;
  let b = R.create ~token:tok () in
  (match S.solve ~budget:b s with
  | S.Unknown ->
      Alcotest.(check bool) "interrupt reason" true
        (S.last_interrupt s = Some R.Cancelled)
  | S.Sat | S.Unsat -> Alcotest.fail "cancelled solve decided");
  (* Same session, no budget: the query must still decide correctly. *)
  (match S.solve s with
  | S.Unsat -> ()
  | S.Sat -> Alcotest.fail "pigeonhole is unsat"
  | S.Unknown -> Alcotest.fail "unbudgeted solve returned unknown");
  Alcotest.(check bool) "interrupt cleared" true (S.last_interrupt s = None)

let test_solver_conflict_budget_then_reuse () =
  let module S = Sat.Solver in
  let s = S.create () in
  pigeonhole s 7;
  let b = R.create ~conflicts:5 () in
  (match S.solve ~budget:b s with
  | S.Unknown ->
      Alcotest.(check bool) "conflicts reason" true
        (S.last_interrupt s = Some R.Conflicts)
  | S.Sat -> Alcotest.fail "pigeonhole sat?"
  | S.Unsat -> Alcotest.fail "5 conflicts cannot close php(8,7)");
  Alcotest.(check bool) "budget recorded" true (R.why b = Some R.Conflicts);
  match S.solve s with
  | S.Unsat -> ()
  | S.Sat | S.Unknown -> Alcotest.fail "session unusable after budget stop"

let test_solver_oom_fault_typed () =
  with_clean_faults (fun () ->
      let module S = Sat.Solver in
      let s = S.create () in
      pigeonhole s 5;
      F.arm "sat.oom";
      let b = R.unlimited () in
      (match S.solve ~budget:b s with
      | S.Unknown ->
          Alcotest.(check bool) "memory reason" true
            (S.last_interrupt s = Some R.Memory);
          Alcotest.(check bool) "budget sees memory" true (R.why b = Some R.Memory)
      | S.Sat | S.Unsat -> Alcotest.fail "oom fault ignored");
      F.clear ();
      (* The injected OOM must leave the session reusable. *)
      match S.solve s with
      | S.Unsat -> ()
      | S.Sat | S.Unknown -> Alcotest.fail "session unusable after oom")

(* ---------- backends under budget and faults ---------- *)

let spec3 = N.symmetric ~delta:3 ~bias_noise:false

let test_backend_cancelled_unknown () =
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let label = Nn.Qnet.predict net input in
  let tok = R.token () in
  R.cancel tok;
  let b = R.create ~token:tok () in
  (* delta 25 gives the explicit enumerator 51^2 = 2601 vectors, past its
     per-1024-vector poll cadence, so every backend observes the token. *)
  let spec = N.symmetric ~delta:25 ~bias_noise:false in
  List.iter
    (fun backend ->
      match B.exists_flip ~budget:b backend net spec ~input ~label with
      | B.Unknown r ->
          Alcotest.(check bool)
            (B.to_string backend ^ " cancelled") true (r = R.Cancelled)
      | B.Robust | B.Flip _ ->
          Alcotest.fail (B.to_string backend ^ ": decided under cancelled budget"))
    [ B.Bnb; B.Smt; B.Explicit { limit = 1_000_000 }; B.Cascade B.Bnb ]

let test_backend_unknown_fault () =
  with_clean_faults (fun () ->
      let net = tiny_qnet () in
      let input = [| 7; 11 |] in
      let label = Nn.Qnet.predict net input in
      F.arm "backend.unknown";
      (match B.exists_flip B.Bnb net spec3 ~input ~label with
      | B.Unknown r -> Alcotest.(check bool) "incomplete" true (r = R.Incomplete)
      | B.Robust | B.Flip _ -> Alcotest.fail "fault ignored");
      F.clear ();
      match B.exists_flip B.Bnb net spec3 ~input ~label with
      | B.Unknown _ -> Alcotest.fail "unknown after clearing the fault"
      | B.Robust | B.Flip _ -> ())

let test_escalation_decides () =
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let label = Nn.Qnet.predict net input in
  (* At delta 40 a flip exists, so the interval backend is genuinely
     Incomplete (it can prove robustness but never produce a witness);
     escalation to branch-and-bound must then decide. *)
  let spec = N.symmetric ~delta:40 ~bias_noise:false in
  (match B.exists_flip B.Interval net spec ~input ~label with
  | B.Unknown r -> Alcotest.(check bool) "interval incomplete" true (r = R.Incomplete)
  | B.Robust | B.Flip _ -> Alcotest.fail "fixture: interval decided");
  match B.exists_flip_escalating ~attempts:1 B.Interval net spec ~input ~label with
  | B.Flip _ -> ()
  | B.Robust -> Alcotest.fail "escalated to a wrong verdict"
  | B.Unknown _ -> Alcotest.fail "escalation did not decide"

let test_escalation_never_retries_cancelled () =
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let label = Nn.Qnet.predict net input in
  let tok = R.token () in
  R.cancel tok;
  let b = R.create ~token:tok () in
  match B.exists_flip_escalating ~attempts:5 ~budget:b B.Bnb net spec3 ~input ~label with
  | B.Unknown r -> Alcotest.(check bool) "stays cancelled" true (r = R.Cancelled)
  | B.Robust | B.Flip _ -> Alcotest.fail "decided under cancelled budget"

(* ---------- budgeted analyses: typed errors, no exceptions ---------- *)

let analysis_inputs net =
  labelled_inputs net [| [| 7; 11 |]; [| 20; 5 |]; [| 3; 30 |] |]

let test_tolerance_b_cancelled () =
  let net = tiny_qnet () in
  let inputs = analysis_inputs net in
  let tok = R.token () in
  R.cancel tok;
  let b = R.create ~token:tok () in
  (match
     Fannet.Tolerance.network_tolerance_b ~budget:b B.Bnb net ~bias_noise:false
       ~max_delta:20 ~inputs
   with
  | Error R.Cancelled -> ()
  | Error r -> Alcotest.fail ("wrong reason: " ^ R.reason_to_string r)
  | Ok _ -> Alcotest.fail "tolerance decided under cancelled budget");
  match
    Fannet.Tolerance.network_tolerance_b B.Bnb net ~bias_noise:false
      ~max_delta:20 ~inputs
  with
  | Ok t ->
      let legacy =
        Fannet.Tolerance.network_tolerance B.Bnb net ~bias_noise:false
          ~max_delta:20 ~inputs
      in
      Alcotest.(check int) "budgeted = legacy" legacy t
  | Error r -> Alcotest.fail ("unlimited budget exhausted: " ^ R.reason_to_string r)

let test_worker_raise_is_clean () =
  with_clean_faults (fun () ->
      let net = tiny_qnet () in
      let inputs = analysis_inputs net in
      F.arm "worker.raise";
      (match
         Fannet.Tolerance.network_tolerance_b ~jobs:2 B.Bnb net
           ~bias_noise:false ~max_delta:10 ~inputs
       with
      | exception Failure msg ->
          Alcotest.(check bool) "names the injected fault" true
            (contains msg "injected fault")
      | Ok _ | Error _ ->
          (* Also acceptable: the harness converts the raise to a typed
             stop. Either way: no crash, no leaked domain. *)
          ());
      F.clear ();
      (* The pool must still work after a worker raised. *)
      match
        Fannet.Tolerance.network_tolerance_b ~jobs:2 B.Bnb net ~bias_noise:false
          ~max_delta:10 ~inputs
      with
      | Ok _ -> ()
      | Error r -> Alcotest.fail ("pool broken after fault: " ^ R.reason_to_string r))

let test_boundary_b_matches_legacy () =
  let net = tiny_qnet () in
  let inputs = analysis_inputs net in
  let legacy = Fannet.Boundary.analyze B.Bnb net ~bias_noise:false ~max_delta:10 ~inputs in
  match Fannet.Boundary.analyze_b B.Bnb net ~bias_noise:false ~max_delta:10 ~inputs with
  | Ok pts ->
      Alcotest.(check int) "same length" (Array.length legacy) (Array.length pts);
      Array.iteri
        (fun i (p : Fannet.Boundary.point) ->
          Alcotest.(check bool) "same min flip" true
            (p.Fannet.Boundary.min_flip_delta = legacy.(i).Fannet.Boundary.min_flip_delta))
        pts
  | Error r -> Alcotest.fail ("unbudgeted analyze_b failed: " ^ R.reason_to_string r)

(* ---------- kill-and-resume round-trips ---------- *)

let cex_list_equal (a : Fannet.Extract.counterexample list)
    (b : Fannet.Extract.counterexample list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Fannet.Extract.counterexample) (y : Fannet.Extract.counterexample) ->
         x.Fannet.Extract.input_index = y.Fannet.Extract.input_index
         && x.Fannet.Extract.true_label = y.Fannet.Extract.true_label
         && x.Fannet.Extract.predicted = y.Fannet.Extract.predicted
         && x.Fannet.Extract.vector.N.bias = y.Fannet.Extract.vector.N.bias
         && x.Fannet.Extract.vector.N.inputs = y.Fannet.Extract.vector.N.inputs)
       a b

let test_extract_checkpoint_resume_equals_uninterrupted () =
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:40 ~bias_noise:false in
  let uninterrupted, status =
    Fannet.Extract.for_input net spec ~input ~label ~input_index:0
  in
  Alcotest.(check bool) "baseline complete" true (status = Fannet.Extract.Complete);
  Alcotest.(check bool) "workload is non-trivial" true (List.length uninterrupted > 10);
  let path = tmp_file ".ckpt" in
  Sys.remove path;
  (* Simulate a run that keeps getting killed: every attempt gets an
     already-expired deadline except for a slowly growing slice, until
     one attempt completes from the checkpoint. The final corpus must be
     bit-identical to the uninterrupted one. *)
  let finished = ref None in
  let attempts = ref 0 in
  while !finished = None && !attempts < 500 do
    incr attempts;
    let budget = R.create ~timeout_s:(0.0005 *. float_of_int !attempts) () in
    let cexs, status =
      Fannet.Extract.for_input ~budget ~checkpoint:path net spec ~input ~label
        ~input_index:0
    in
    match status with
    | Fannet.Extract.Complete -> finished := Some cexs
    | Fannet.Extract.Truncated -> Alcotest.fail "unexpected truncation"
    | Fannet.Extract.Budget _ -> ()
  done;
  (match !finished with
  | None -> Alcotest.fail "never completed under repeated kills"
  | Some resumed ->
      Alcotest.(check int) "same count" (List.length uninterrupted)
        (List.length resumed);
      Alcotest.(check bool) "identical corpus, identical order" true
        (cex_list_equal uninterrupted resumed));
  Alcotest.(check bool) "checkpoint removed on completion" false
    (Sys.file_exists path)

let test_extract_checkpoint_survives_torn_write () =
  with_clean_faults (fun () ->
      let net = tiny_qnet () in
      let input = [| 7; 11 |] in
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:30 ~bias_noise:false in
      let uninterrupted, _ =
        Fannet.Extract.for_input net spec ~input ~label ~input_index:0
      in
      let path = tmp_file ".ckpt" in
      Sys.remove path;
      (* First checkpoint write is torn; the next run must detect the
         damage, warn, start fresh, and still converge to the same
         corpus. *)
      F.arm "ckpt.torn@1";
      let budget = R.create ~timeout_s:0.0 () in
      let _, status =
        Fannet.Extract.for_input ~budget ~checkpoint:path net spec ~input ~label
          ~input_index:0
      in
      Alcotest.(check bool) "first run stopped" true
        (match status with Fannet.Extract.Budget _ -> true | _ -> false);
      F.clear ();
      let resumed, status =
        Fannet.Extract.for_input ~checkpoint:path net spec ~input ~label
          ~input_index:0
      in
      Alcotest.(check bool) "completes despite torn checkpoint" true
        (status = Fannet.Extract.Complete);
      Alcotest.(check bool) "corpus identical" true
        (cex_list_equal uninterrupted resumed);
      if Sys.file_exists path then Sys.remove path)

let test_extract_checkpoint_query_mismatch () =
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:8 ~bias_noise:false in
  let path = tmp_file ".ckpt" in
  Sys.remove path;
  let budget = R.create ~timeout_s:0.0 () in
  let _ =
    Fannet.Extract.for_input ~budget ~checkpoint:path net spec ~input ~label
      ~input_index:0
  in
  Alcotest.(check bool) "checkpoint persisted on budget stop" true
    (Sys.file_exists path);
  let other_spec = N.symmetric ~delta:9 ~bias_noise:false in
  Alcotest.(check bool) "different query rejected" true
    (match
       Fannet.Extract.for_input ~checkpoint:path net other_spec ~input ~label
         ~input_index:0
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Sys.remove path

let test_tolerance_checkpoint_resume () =
  let net = tiny_qnet () in
  let inputs = analysis_inputs net in
  let legacy =
    Fannet.Tolerance.network_tolerance B.Bnb net ~bias_noise:false ~max_delta:25
      ~inputs
  in
  let path = tmp_file ".ckpt" in
  Sys.remove path;
  let finished = ref None in
  let attempts = ref 0 in
  while !finished = None && !attempts < 500 do
    incr attempts;
    let budget = R.create ~timeout_s:(0.0005 *. float_of_int !attempts) () in
    match
      Fannet.Tolerance.network_tolerance_ckpt ~budget ~checkpoint:path B.Bnb net
        ~bias_noise:false ~max_delta:25 ~inputs
    with
    | Ok t -> finished := Some t
    | Error _ -> ()
  done;
  (match !finished with
  | None -> Alcotest.fail "tolerance never completed under repeated kills"
  | Some t -> Alcotest.(check int) "resumed = uninterrupted" legacy t);
  Alcotest.(check bool) "checkpoint removed" false (Sys.file_exists path)

(* ---------- lenient corpus loading ---------- *)

let mini_corpus_cases () =
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let label = Nn.Qnet.predict net input in
  [
    { Check.Case.id = 0; seed = 101; net; input; label;
      spec = N.symmetric ~delta:1 ~bias_noise:false };
    { Check.Case.id = 1; seed = 102; net; input; label;
      spec = N.symmetric ~delta:2 ~bias_noise:false };
  ]

let test_lenient_load_good_corpus () =
  let path = tmp_file ".json" in
  Check.Case.save_corpus path ~seed:7 (mini_corpus_cases ());
  (match Check.Case.load_corpus_lenient path with
  | Ok { Check.Case.corpus_seed; good; bad } ->
      Alcotest.(check int) "seed" 7 corpus_seed;
      Alcotest.(check int) "all good" 2 (List.length good);
      Alcotest.(check int) "no bad" 0 (List.length bad)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_lenient_load_skips_bad_cases () =
  let path = tmp_file ".json" in
  let cases = mini_corpus_cases () in
  (* Hand-build an envelope whose middle case is malformed. *)
  let json =
    J.Obj
      [
        ("format", J.String "fannet-fuzz-corpus");
        ("version", J.Int 1);
        ("seed", J.Int 7);
        ( "cases",
          J.List
            [
              Check.Case.to_json (List.nth cases 0);
              J.Obj [ ("id", J.Int 1) ];
              Check.Case.to_json (List.nth cases 1);
            ] );
      ]
  in
  J.write_file path json;
  (match Check.Case.load_corpus_lenient path with
  | Ok { Check.Case.good; bad; _ } ->
      Alcotest.(check int) "two good" 2 (List.length good);
      Alcotest.(check int) "one bad" 1 (List.length bad);
      let idx, msg = List.hd bad in
      Alcotest.(check int) "bad index" 1 idx;
      Alcotest.(check bool) "message names the file" true (contains msg path)
  | Error e -> Alcotest.fail e);
  (* The strict loader must refuse the same file. *)
  (match Check.Case.load_corpus path with
  | Ok _ -> Alcotest.fail "strict loader accepted a damaged corpus"
  | Error _ -> ());
  Sys.remove path

let test_lenient_load_corrupt_fault () =
  with_clean_faults (fun () ->
      let path = tmp_file ".json" in
      Check.Case.save_corpus path ~seed:7 (mini_corpus_cases ());
      F.arm "corpus.corrupt";
      (match Check.Case.load_corpus_lenient path with
      | Ok _ -> Alcotest.fail "truncated corpus accepted"
      | Error e ->
          Alcotest.(check bool) "error names the file" true (contains e path);
          Alcotest.(check bool) "error reports a byte offset" true (contains e "byte"));
      F.clear ();
      (match Check.Case.load_corpus_lenient path with
      | Ok { Check.Case.good; _ } -> Alcotest.(check int) "intact again" 2 (List.length good)
      | Error e -> Alcotest.fail e);
      Sys.remove path)

(* ---------- parallel map_until ---------- *)

let test_map_until_complete_matches_map () =
  let xs = Array.init 50 (fun i -> i) in
  match Util.Parallel.map_until ~jobs:4 ~stop:(fun () -> false) (fun _ x -> x * x) xs with
  | Ok ys -> Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) xs) ys
  | Error () -> Alcotest.fail "stopped without a stop signal"

let test_map_until_stops () =
  let xs = Array.init 1000 (fun i -> i) in
  match Util.Parallel.map_until ~jobs:4 ~stop:(fun () -> true) (fun _ x -> x) xs with
  | Ok _ -> Alcotest.fail "ignored the stop signal"
  | Error () -> ()

(* ---------- no leaked domains ---------- *)

let test_no_leaked_domains () =
  (* After everything above — cancelled solves, injected faults, killed
     checkpointed runs — re-running a parallel analysis must still work,
     which it cannot if worker domains leaked or the pool wedged. *)
  let net = tiny_qnet () in
  let inputs = analysis_inputs net in
  let t1 =
    Fannet.Tolerance.network_tolerance ~jobs:4 B.Bnb net ~bias_noise:false
      ~max_delta:10 ~inputs
  in
  let t2 =
    Fannet.Tolerance.network_tolerance ~jobs:4 B.Bnb net ~bias_noise:false
      ~max_delta:10 ~inputs
  in
  Alcotest.(check int) "deterministic across pools" t1 t2

let () =
  Alcotest.run "resil"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "cancel" `Quick test_budget_cancel;
          Alcotest.test_case "first reason wins" `Quick test_budget_record_first_wins;
          Alcotest.test_case "scale" `Quick test_budget_scale;
          Alcotest.test_case "reason vocabulary" `Quick test_reason_strings;
        ] );
      ( "faultpoint",
        [
          Alcotest.test_case "arming" `Quick test_faultpoint_arming;
          Alcotest.test_case "nth hit" `Quick test_faultpoint_nth_hit;
          Alcotest.test_case "every kth hit" `Quick test_faultpoint_every_hit;
          Alcotest.test_case "guard" `Quick test_faultpoint_guard;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_ckpt_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_ckpt_kind_mismatch;
          Alcotest.test_case "torn write detected" `Quick test_ckpt_torn_write_detected;
          Alcotest.test_case "garbage rejected" `Quick test_ckpt_garbage_rejected;
          Alcotest.test_case "missing file" `Quick test_ckpt_missing_file;
          Alcotest.test_case "fnv1a64 vectors" `Quick test_fnv1a64;
        ] );
      ( "solver",
        [
          Alcotest.test_case "cancelled session reusable" `Quick
            test_solver_cancelled_session_reusable;
          Alcotest.test_case "conflict budget then reuse" `Quick
            test_solver_conflict_budget_then_reuse;
          Alcotest.test_case "oom fault typed" `Quick test_solver_oom_fault_typed;
        ] );
      ( "backend",
        [
          Alcotest.test_case "cancelled -> Unknown" `Quick test_backend_cancelled_unknown;
          Alcotest.test_case "backend.unknown fault" `Quick test_backend_unknown_fault;
          Alcotest.test_case "escalation decides" `Quick test_escalation_decides;
          Alcotest.test_case "cancelled never retried" `Quick
            test_escalation_never_retries_cancelled;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "tolerance_b cancelled" `Quick test_tolerance_b_cancelled;
          Alcotest.test_case "worker.raise is clean" `Quick test_worker_raise_is_clean;
          Alcotest.test_case "boundary_b = legacy" `Quick test_boundary_b_matches_legacy;
        ] );
      ( "resume",
        [
          Alcotest.test_case "extract kill-and-resume" `Quick
            test_extract_checkpoint_resume_equals_uninterrupted;
          Alcotest.test_case "extract torn checkpoint" `Quick
            test_extract_checkpoint_survives_torn_write;
          Alcotest.test_case "extract query mismatch" `Quick
            test_extract_checkpoint_query_mismatch;
          Alcotest.test_case "tolerance kill-and-resume" `Quick
            test_tolerance_checkpoint_resume;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "lenient good" `Quick test_lenient_load_good_corpus;
          Alcotest.test_case "lenient skips bad" `Quick test_lenient_load_skips_bad_cases;
          Alcotest.test_case "corpus.corrupt fault" `Quick test_lenient_load_corrupt_fault;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map_until complete" `Quick test_map_until_complete_matches_map;
          Alcotest.test_case "map_until stops" `Quick test_map_until_stops;
          Alcotest.test_case "no leaked domains" `Quick test_no_leaked_domains;
        ] );
    ]
