(* Tests for the smtlite layer: term evaluation, interval soundness,
   SAT/UNSAT answers checked against brute-force enumeration over small
   variable boxes, and model enumeration counts. *)

module T = Smtlite.Term
module I = Smtlite.Interval
module S = Smtlite.Solve

(* ---------- term construction / evaluation ---------- *)

let test_const_folding () =
  let open T in
  (match (add (const 2) (const 3)).node with
  | Const 5 -> ()
  | _ -> Alcotest.fail "add fold");
  (match (mulc 4 (const (-2))).node with
  | Const (-8) -> ()
  | _ -> Alcotest.fail "mulc fold");
  (match (relu (const (-7))).node with
  | Const 0 -> ()
  | _ -> Alcotest.fail "relu fold");
  (match (mulc 1 (const 9)).node with
  | Const 9 -> ()
  | _ -> Alcotest.fail "mulc 1");
  match (le (const 1) (const 2)).fnode with
  | True -> ()
  | _ -> Alcotest.fail "le fold"

let test_eval_term () =
  let v = T.var ~name:"x" ~lo:(-10) ~hi:10 in
  let t = T.add (T.mulc 3 (T.of_var v)) (T.const 1) in
  Alcotest.(check int) "3x+1 at x=4" 13 (T.eval_term [ (v, 4) ] t);
  Alcotest.(check int) "relu" 0
    (T.eval_term [ (v, -2) ] (T.relu (T.of_var v)));
  Alcotest.(check int) "max" 5
    (T.eval_term [ (v, 5) ] (T.max_ (T.of_var v) (T.const 3)));
  Alcotest.(check int) "ite" 7
    (T.eval_term [ (v, 1) ]
       (T.ite (T.gt (T.of_var v) (T.const 0)) (T.const 7) (T.const (-7))))

let test_sign_semantics () =
  (match (T.sign_ (T.const (-7))).T.node with
  | T.Const (-1) -> ()
  | _ -> Alcotest.fail "sign fold negative");
  (match (T.sign_ (T.const 0)).T.node with
  | T.Const 1 -> ()
  | _ -> Alcotest.fail "sign(0) = 1");
  let v = T.var ~name:"x" ~lo:(-10) ~hi:10 in
  Alcotest.(check int) "eval negative" (-1)
    (T.eval_term [ (v, -3) ] (T.sign_ (T.of_var v)));
  Alcotest.(check int) "eval zero" 1
    (T.eval_term [ (v, 0) ] (T.sign_ (T.of_var v)));
  Alcotest.(check bool) "interval stable positive" true
    (I.sign_ (I.make 0 5) = I.make 1 1);
  Alcotest.(check bool) "interval stable negative" true
    (I.sign_ (I.make (-5) (-1)) = I.make (-1) (-1));
  Alcotest.(check bool) "interval unstable" true
    (I.sign_ (I.make (-5) 5) = I.make (-1) 1)

let test_eval_formula () =
  let v = T.var ~name:"x" ~lo:0 ~hi:10 in
  let f = T.and_ [ T.ge (T.of_var v) (T.const 2); T.lt (T.of_var v) (T.const 5) ] in
  Alcotest.(check bool) "x=3 sat" true (T.eval_formula [ (v, 3) ] f);
  Alcotest.(check bool) "x=7 unsat" false (T.eval_formula [ (v, 7) ] f);
  Alcotest.(check bool) "not" true
    (T.eval_formula [ (v, 7) ] (T.not_ f))

let test_vars_of_formula () =
  let a = T.var ~name:"a" ~lo:0 ~hi:1 in
  let b = T.var ~name:"b" ~lo:0 ~hi:1 in
  let f = T.lt (T.add (T.of_var a) (T.of_var b)) (T.of_var a) in
  let vars = T.vars_of_formula f in
  Alcotest.(check int) "two distinct vars" 2 (List.length vars)

(* ---------- intervals ---------- *)

let test_interval_ops () =
  let i = I.make (-2) 5 in
  let j = I.make 1 3 in
  Alcotest.(check bool) "add" true (I.add i j = I.make (-1) 8);
  Alcotest.(check bool) "sub" true (I.sub i j = I.make (-5) 4);
  Alcotest.(check bool) "neg" true (I.neg i = I.make (-5) 2);
  Alcotest.(check bool) "mulc+" true (I.mulc 3 i = I.make (-6) 15);
  Alcotest.(check bool) "mulc-" true (I.mulc (-3) i = I.make (-15) 6);
  Alcotest.(check bool) "relu" true (I.relu i = I.make 0 5);
  Alcotest.(check bool) "max" true (I.max_ i j = I.make 1 5);
  Alcotest.(check bool) "hull" true (I.hull i j = I.make (-2) 5)

let test_width_for () =
  Alcotest.(check int) "0..0" 1 (I.width_for (I.point 0));
  Alcotest.(check int) "0..1" 2 (I.width_for (I.make 0 1));
  Alcotest.(check int) "-1..0" 1 (I.width_for (I.make (-1) 0));
  Alcotest.(check int) "-128..127" 8 (I.width_for (I.make (-128) 127));
  Alcotest.(check int) "-129..127" 9 (I.width_for (I.make (-129) 127));
  Alcotest.(check int) "0..255" 9 (I.width_for (I.make 0 255))

let prop_interval_sound =
  (* For random assignments within variable bounds, the evaluated term lies
     in the propagated interval. *)
  QCheck.Test.make ~name:"interval contains evaluation" ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple (int_range (-8) 8) (int_range (-8) 8) (int_range (-5) 5)))
    (fun (xv, yv, c) ->
      let x = T.var ~name:"x" ~lo:(-8) ~hi:8 in
      let y = T.var ~name:"y" ~lo:(-8) ~hi:8 in
      let t =
        T.add
          (T.relu (T.add (T.mulc c (T.of_var x)) (T.const 3)))
          (T.max_ (T.of_var y) (T.neg (T.of_var x)))
      in
      let iv = I.term_interval t in
      let value = T.eval_term [ (x, xv); (y, yv) ] t in
      I.contains iv value)

let test_formula_decide () =
  let x = T.var ~name:"x" ~lo:0 ~hi:10 in
  let tx = T.of_var x in
  Alcotest.(check bool) "provable" true
    (I.formula_decide (T.ge tx (T.const 0)) = `True);
  Alcotest.(check bool) "refutable" true
    (I.formula_decide (T.gt tx (T.const 10)) = `False);
  Alcotest.(check bool) "unknown" true
    (I.formula_decide (T.ge tx (T.const 5)) = `Unknown)

(* ---------- solving, checked against brute force ---------- *)

let brute_force_exists vars f =
  (* vars: list of T.var with small ranges. *)
  let rec loop acc = function
    | [] -> T.eval_formula acc f
    | (v : T.var) :: rest ->
        let rec try_value value =
          value <= v.hi
          && (loop ((v, value) :: acc) rest || try_value (value + 1))
        in
        try_value v.lo
  in
  loop [] vars

let brute_force_count vars f =
  let count = ref 0 in
  let rec loop acc = function
    | [] -> if T.eval_formula acc f then incr count
    | (v : T.var) :: rest ->
        for value = v.lo to v.hi do
          loop ((v, value) :: acc) rest
        done
  in
  loop [] vars;
  !count

let test_check_simple_sat () =
  let x = T.var ~name:"x" ~lo:(-20) ~hi:20 in
  let f = T.eq (T.mulc 3 (T.of_var x)) (T.const 12) in
  match S.check f with
  | S.Sat model ->
      Alcotest.(check int) "x=4" 4 (T.lookup model x);
      Alcotest.(check bool) "model satisfies" true (T.eval_formula model f)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat"

let test_check_simple_unsat () =
  let x = T.var ~name:"x" ~lo:0 ~hi:10 in
  let f = T.lt (T.of_var x) (T.const 0) in
  Alcotest.(check bool) "unsat" true (S.check f = S.Unsat)

let test_check_relu_case_split () =
  (* relu(x) = 5 has solution x = 5 only; relu(x) = -1 none. *)
  let x = T.var ~name:"x" ~lo:(-10) ~hi:10 in
  (match S.check (T.eq (T.relu (T.of_var x)) (T.const 5)) with
  | S.Sat model -> Alcotest.(check int) "x=5" 5 (T.lookup model x)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "relu never negative" true
    (S.check (T.eq (T.relu (T.of_var x)) (T.const (-1))) = S.Unsat)

let test_check_sign_case_split () =
  (* sign(x) = -1 forces x < 0 (even restricted near the boundary);
     sign never takes the value 0. *)
  let x = T.var ~name:"x" ~lo:(-10) ~hi:10 in
  (match
     S.check
       (T.and_
          [
            T.eq (T.sign_ (T.of_var x)) (T.const (-1));
            T.ge (T.of_var x) (T.const (-1));
          ])
   with
  | S.Sat model -> Alcotest.(check int) "x=-1" (-1) (T.lookup model x)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat");
  (match S.check (T.eq (T.sign_ (T.of_var x)) (T.const 1)) with
  | S.Sat model ->
      Alcotest.(check bool) "x >= 0" true (T.lookup model x >= 0)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "sign never 0" true
    (S.check (T.eq (T.sign_ (T.of_var x)) (T.const 0)) = S.Unsat)

let test_check_bounds_respected () =
  let x = T.var ~name:"x" ~lo:3 ~hi:7 in
  (* Any model must respect declared bounds even with a vacuous formula. *)
  match S.check (T.ge (T.of_var x) (T.const 0)) with
  | S.Sat model ->
      let v = T.lookup model x in
      Alcotest.(check bool) "3<=x<=7" true (v >= 3 && v <= 7)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat"

let random_formula_gen =
  (* Small random formulas over two bounded vars, built from linear atoms
     with relu/max sprinkled in. *)
  let open QCheck.Gen in
  let* c1 = int_range (-4) 4 in
  let* c2 = int_range (-4) 4 in
  let* k = int_range (-10) 10 in
  let* shape = int_range 0 5 in
  return (c1, c2, k, shape)

let build_formula (c1, c2, k, shape) x y =
  let tx = T.of_var x and ty = T.of_var y in
  let lin = T.add (T.mulc c1 tx) (T.mulc c2 ty) in
  match shape with
  | 0 -> T.le lin (T.const k)
  | 1 -> T.eq (T.relu lin) (T.const (abs k))
  | 2 -> T.and_ [ T.gt lin (T.const k); T.lt tx ty ]
  | 3 -> T.or_ [ T.eq tx (T.const k); T.gt (T.max_ tx ty) (T.const k) ]
  | 4 -> T.eq (T.sub (T.relu tx) (T.relu (T.neg ty))) (T.const k)
  | _ -> T.not_ (T.le (T.ite (T.le tx ty) lin (T.neg lin)) (T.const k))

let prop_solver_vs_brute_force =
  QCheck.Test.make ~name:"smt check agrees with brute force" ~count:120
    (QCheck.make random_formula_gen) (fun params ->
      let x = T.var ~name:"x" ~lo:(-6) ~hi:6 in
      let y = T.var ~name:"y" ~lo:(-6) ~hi:6 in
      let f = build_formula params x y in
      let expected = brute_force_exists [ x; y ] f in
      match S.check f with
      | S.Sat model -> expected && T.eval_formula model f
      | S.Unsat -> not expected
      | S.Unknown _ -> false)

let prop_enumerate_counts =
  QCheck.Test.make ~name:"enumerate count equals brute-force count" ~count:60
    (QCheck.make random_formula_gen) (fun params ->
      let x = T.var ~name:"x" ~lo:(-4) ~hi:4 in
      let y = T.var ~name:"y" ~lo:(-4) ~hi:4 in
      let f = build_formula params x y in
      let expected = brute_force_count [ x; y ] f in
      let models, status = S.enumerate f ~project:[ x; y ] in
      status = `Complete
      && List.length models = expected
      && List.for_all (fun m -> T.eval_formula m f) models)

let test_enumerate_distinct () =
  let x = T.var ~name:"x" ~lo:0 ~hi:3 in
  let f = T.ge (T.of_var x) (T.const 0) in
  let models, status = S.enumerate f ~project:[ x ] in
  Alcotest.(check bool) "complete" true (status = `Complete);
  let values = List.map (fun m -> T.lookup m x) models in
  Alcotest.(check (list int)) "all four values" [ 0; 1; 2; 3 ]
    (List.sort compare values)

let test_enumerate_limit () =
  let x = T.var ~name:"x" ~lo:0 ~hi:100 in
  let f = T.ge (T.of_var x) (T.const 0) in
  let models, status = S.enumerate ~limit:5 f ~project:[ x ] in
  Alcotest.(check int) "limited" 5 (List.length models);
  Alcotest.(check bool) "truncated" true (status = `Truncated)

let test_enumerate_projection_var_not_in_formula () =
  (* Regression: a projection variable absent from the formula must still
     be enumerated over its full domain (it used to be compiled lazily
     during blocking, producing a bogus blocking clause). *)
  let x = T.var ~name:"x" ~lo:(-4) ~hi:4 in
  let y = T.var ~name:"y" ~lo:(-4) ~hi:4 in
  let f = T.le (T.mulc (-4) (T.of_var y)) (T.const (-10)) in
  (* -4y <= -10 over y in [-4,4]: y in {3, 4}; x free: 2 * 9 = 18 models. *)
  let models, status = S.enumerate f ~project:[ x; y ] in
  Alcotest.(check bool) "complete" true (status = `Complete);
  Alcotest.(check int) "18 models" 18 (List.length models);
  List.iter
    (fun m ->
      let xv = T.lookup m x and yv = T.lookup m y in
      Alcotest.(check bool) "x in domain" true (xv >= -4 && xv <= 4);
      Alcotest.(check bool) "y satisfies" true (yv = 3 || yv = 4))
    models

let test_session_incremental () =
  let x = T.var ~name:"x" ~lo:0 ~hi:10 in
  let session = S.open_session (T.ge (T.of_var x) (T.const 5)) in
  (match S.solve session with
  | S.Sat model -> Alcotest.(check bool) "x>=5" true (T.lookup model x >= 5)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "sat expected");
  S.assert_also session (T.le (T.of_var x) (T.const 4));
  Alcotest.(check bool) "now unsat" true (S.solve session = S.Unsat)

let test_session_assumptions () =
  (* Assumptions restrict a single solve without retracting anything:
     the same warm session answers Sat / Unsat / Sat as the assumed
     range narrows and widens again — the mechanism behind the
     incremental tolerance search. *)
  let x = T.var ~name:"x" ~lo:(-10) ~hi:10 in
  let tx = T.of_var x in
  let session = S.open_session (T.ge tx (T.const 5)) in
  let in_range d =
    S.assume session (T.and_ [ T.ge tx (T.const (-d)); T.le tx (T.const d) ])
  in
  let wide = in_range 8 and narrow = in_range 4 in
  (match S.solve ~assumptions:[ wide ] session with
  | S.Sat model ->
      let v = T.lookup model x in
      Alcotest.(check bool) "within assumed range" true (v >= 5 && v <= 8)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "sat under wide assumption expected");
  Alcotest.(check bool) "narrow assumption unsat" true
    (S.solve ~assumptions:[ narrow ] session = S.Unsat);
  (* The narrow probe must not poison the session: wide is still Sat,
     and an assumption-free solve still sees only the base formula. *)
  (match S.solve ~assumptions:[ wide ] session with
  | S.Sat _ -> ()
  | S.Unsat | S.Unknown _ -> Alcotest.fail "wide assumption sat again expected");
  match S.solve session with
  | S.Sat model -> Alcotest.(check bool) "base formula" true (T.lookup model x >= 5)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "assumption-free solve sat expected"

let test_check_linear_system () =
  (* x + y = 10, x - y = 4 -> x = 7, y = 3. *)
  let x = T.var ~name:"x" ~lo:0 ~hi:20 in
  let y = T.var ~name:"y" ~lo:0 ~hi:20 in
  let tx = T.of_var x and ty = T.of_var y in
  let f =
    T.and_ [ T.eq (T.add tx ty) (T.const 10); T.eq (T.sub tx ty) (T.const 4) ]
  in
  match S.check f with
  | S.Sat model ->
      Alcotest.(check int) "x" 7 (T.lookup model x);
      Alcotest.(check int) "y" 3 (T.lookup model y)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat"

let test_wide_range_var () =
  (* Gene-expression scale values must work (up to 5,000,000 after the
     x100 noise scaling). *)
  let x = T.var ~name:"x" ~lo:0 ~hi:5_000_000 in
  let f = T.eq (T.of_var x) (T.const 4_999_999) in
  match S.check f with
  | S.Sat model -> Alcotest.(check int) "big value" 4_999_999 (T.lookup model x)
  | S.Unsat | S.Unknown _ -> Alcotest.fail "expected sat"

let () =
  Alcotest.run "smtlite"
    [
      ( "term",
        [
          Alcotest.test_case "constant folding" `Quick test_const_folding;
          Alcotest.test_case "eval term" `Quick test_eval_term;
          Alcotest.test_case "sign semantics" `Quick test_sign_semantics;
          Alcotest.test_case "eval formula" `Quick test_eval_formula;
          Alcotest.test_case "vars_of_formula" `Quick test_vars_of_formula;
        ] );
      ( "interval",
        [
          Alcotest.test_case "ops" `Quick test_interval_ops;
          Alcotest.test_case "width_for" `Quick test_width_for;
          Alcotest.test_case "formula decide" `Quick test_formula_decide;
          QCheck_alcotest.to_alcotest prop_interval_sound;
        ] );
      ( "solve",
        [
          Alcotest.test_case "simple sat" `Quick test_check_simple_sat;
          Alcotest.test_case "simple unsat" `Quick test_check_simple_unsat;
          Alcotest.test_case "relu case split" `Quick test_check_relu_case_split;
          Alcotest.test_case "sign case split" `Quick test_check_sign_case_split;
          Alcotest.test_case "bounds respected" `Quick test_check_bounds_respected;
          Alcotest.test_case "linear system" `Quick test_check_linear_system;
          Alcotest.test_case "wide range" `Quick test_wide_range_var;
          QCheck_alcotest.to_alcotest prop_solver_vs_brute_force;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "distinct values" `Quick test_enumerate_distinct;
          Alcotest.test_case "limit" `Quick test_enumerate_limit;
          Alcotest.test_case "incremental session" `Quick test_session_incremental;
          Alcotest.test_case "assumptions" `Quick test_session_assumptions;
          Alcotest.test_case "projection var not in formula" `Quick
            test_enumerate_projection_var_not_in_formula;
          QCheck_alcotest.to_alcotest prop_enumerate_counts;
        ] );
    ]
