(* Tests for the nn library: activations, layers, networks, training
   (including a finite-difference gradient check), normalisation folding and
   fixed-point quantization. *)

module Vec = Tensor.Vec

let vecf = Alcotest.(array (float 1e-9))

(* ---------- activation ---------- *)

let test_relu () =
  Alcotest.(check (float 0.)) "relu+" 3. (Nn.Activation.apply Relu 3.);
  Alcotest.(check (float 0.)) "relu-" 0. (Nn.Activation.apply Relu (-3.));
  Alcotest.(check (float 0.)) "relu0" 0. (Nn.Activation.apply Relu 0.);
  Alcotest.(check (float 0.)) "d+" 1. (Nn.Activation.derivative Relu 2.);
  Alcotest.(check (float 0.)) "d-" 0. (Nn.Activation.derivative Relu (-2.))

let test_sigmoid () =
  Alcotest.(check (float 1e-9)) "sig(0)" 0.5 (Nn.Activation.apply Sigmoid 0.);
  Alcotest.(check (float 1e-9)) "d sig(0)" 0.25 (Nn.Activation.derivative Sigmoid 0.);
  Alcotest.(check bool) "monotone" true
    (Nn.Activation.apply Sigmoid 1. > Nn.Activation.apply Sigmoid (-1.))

let test_identity () =
  Alcotest.(check (float 0.)) "id" (-7.) (Nn.Activation.apply Identity (-7.));
  Alcotest.(check (float 0.)) "d id" 1. (Nn.Activation.derivative Identity 5.)

(* Finite-difference check of activation derivatives. *)
let prop_activation_derivative =
  QCheck.Test.make ~name:"activation derivative matches finite difference"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (oneofl [ Nn.Activation.Sigmoid; Identity ]) (float_range (-5.) 5.)))
    (fun (act, x) ->
      let h = 1e-6 in
      let num = (Nn.Activation.apply act (x +. h) -. Nn.Activation.apply act (x -. h)) /. (2. *. h) in
      Float.abs (num -. Nn.Activation.derivative act x) < 1e-4)

(* ---------- layer / network ---------- *)

let hand_layer () =
  Nn.Layer.of_parts
    ~weights:[| [| 1.; -1. |]; [| 2.; 0.5 |] |]
    ~bias:[| 0.5; -1. |] ~activation:Nn.Activation.Relu

let test_layer_forward () =
  let l = hand_layer () in
  (* pre = [1*1 + (-1)*2 + 0.5; 2*1 + 0.5*2 - 1] = [-0.5; 2] -> relu *)
  Alcotest.check vecf "forward" [| 0.; 2. |] (Nn.Layer.forward l [| 1.; 2. |]);
  let pre, post = Nn.Layer.forward_pre l [| 1.; 2. |] in
  Alcotest.check vecf "pre" [| -0.5; 2. |] pre;
  Alcotest.check vecf "post" [| 0.; 2. |] post

let test_layer_dims () =
  let l = hand_layer () in
  Alcotest.(check int) "in" 2 (Nn.Layer.in_dim l);
  Alcotest.(check int) "out" 2 (Nn.Layer.out_dim l)

let test_layer_of_parts_checks () =
  Alcotest.check_raises "bias size" (Invalid_argument "Layer.of_parts: bias size")
    (fun () ->
      ignore
        (Nn.Layer.of_parts ~weights:[| [| 1. |] |] ~bias:[| 1.; 2. |]
           ~activation:Nn.Activation.Relu))

let hand_network () =
  (* 2 -> 2 (relu) -> 2 (identity) with easily traced values. *)
  let l1 =
    Nn.Layer.of_parts
      ~weights:[| [| 1.; 0. |]; [| 0.; 1. |] |]
      ~bias:[| 0.; 0. |] ~activation:Nn.Activation.Relu
  in
  let l2 =
    Nn.Layer.of_parts
      ~weights:[| [| 1.; 2. |]; [| 3.; -1. |] |]
      ~bias:[| 1.; 0. |] ~activation:Nn.Activation.Identity
  in
  { Nn.Network.layers = [| l1; l2 |] }

let test_network_forward () =
  let net = hand_network () in
  (* x = [2; -3] -> relu -> [2; 0] -> [2+0+1; 6-0] = [3; 6] *)
  Alcotest.check vecf "forward" [| 3.; 6. |] (Nn.Network.forward net [| 2.; -3. |]);
  Alcotest.(check int) "predict" 1 (Nn.Network.predict net [| 2.; -3. |])

let test_network_dims () =
  let net = hand_network () in
  Alcotest.(check int) "in" 2 (Nn.Network.in_dim net);
  Alcotest.(check int) "out" 2 (Nn.Network.out_dim net);
  Alcotest.(check int) "params" 12 (Nn.Network.n_params net)

let test_paper_network_shape () =
  let rng = Util.Rng.create 1 in
  let net = Nn.Network.paper_network ~rng in
  Alcotest.(check int) "5 inputs" 5 (Nn.Network.in_dim net);
  Alcotest.(check int) "2 outputs" 2 (Nn.Network.out_dim net);
  Alcotest.(check int) "layers" 2 (Array.length net.Nn.Network.layers);
  Alcotest.(check int) "hidden width" 20 (Nn.Layer.out_dim net.Nn.Network.layers.(0));
  (* 5*20 + 20 + 20*2 + 2 *)
  Alcotest.(check int) "params" 162 (Nn.Network.n_params net)

let test_fold_input_affine () =
  let rng = Util.Rng.create 2 in
  let net = Nn.Network.create ~rng ~spec:[ 3; 4; 2 ] ~hidden_activation:Nn.Activation.Relu in
  let shift = [| 10.; -5.; 3. |] and scale = [| 0.5; 2.; 0.1 |] in
  let folded = Nn.Network.fold_input_affine net ~shift ~scale in
  let x = [| 7.; 1.; -2. |] in
  let normalised = Array.init 3 (fun i -> (x.(i) -. shift.(i)) *. scale.(i)) in
  Alcotest.(check bool) "folded net = net on normalised input" true
    (Vec.approx_equal ~eps:1e-9
       (Nn.Network.forward folded x)
       (Nn.Network.forward net normalised))

(* ---------- training ---------- *)

let gradient_check_for loss =
  (* Numerical gradient of the loss wrt one weight must match the update
     applied by sgd_step. *)
  let rng = Util.Rng.create 3 in
  let net =
    Nn.Network.create ~rng ~spec:[ 2; 3; 2 ] ~hidden_activation:Nn.Activation.Sigmoid
  in
  let input = [| 0.7; -0.4 |] and label = 1 in
  let eps = 1e-5 in
  let layer = net.Nn.Network.layers.(0) in
  let loss_at w =
    let saved = Tensor.Mat.get layer.Nn.Layer.weights 0 0 in
    Tensor.Mat.set layer.Nn.Layer.weights 0 0 w;
    let value = Nn.Train.loss_value loss (Nn.Network.forward net input) label in
    Tensor.Mat.set layer.Nn.Layer.weights 0 0 saved;
    value
  in
  let w0 = Tensor.Mat.get layer.Nn.Layer.weights 0 0 in
  let numerical = (loss_at (w0 +. eps) -. loss_at (w0 -. eps)) /. (2. *. eps) in
  (* Apply one sgd step with lr and inspect the weight delta. *)
  let lr = 0.01 in
  let copy = Nn.Network.copy net in
  ignore (Nn.Train.sgd_step ~loss copy ~lr ~input ~label);
  let w1 = Tensor.Mat.get copy.Nn.Network.layers.(0).Nn.Layer.weights 0 0 in
  let analytic = (w0 -. w1) /. lr in
  Alcotest.(check bool)
    (Printf.sprintf "gradient matches (num %.6f vs sgd %.6f)" numerical analytic)
    true
    (Float.abs (numerical -. analytic) < 1e-3)

let test_gradient_check () = gradient_check_for Nn.Train.Cross_entropy

let test_gradient_check_mse () = gradient_check_for Nn.Train.Mse

let test_training_learns_xor_like () =
  (* A linearly separable 2-d problem must reach 100 % quickly. *)
  let rng = Util.Rng.create 4 in
  let net = Nn.Network.create ~rng ~spec:[ 2; 8; 2 ] ~hidden_activation:Nn.Activation.Relu in
  let inputs =
    [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |];
       [| 0.1; 0.1 |]; [| 0.9; 0.9 |]; [| 0.2; 0.9 |]; [| 0.9; 0.2 |] |]
  in
  (* Label = 1 iff x + y > 1. *)
  let labels = Array.map (fun x -> if x.(0) +. x.(1) > 1. then 1 else 0) inputs in
  let config =
    { Nn.Train.default_config with epochs_phase1 = 150; lr_phase1 = 0.3;
      epochs_phase2 = 50; lr_phase2 = 0.1 }
  in
  let history = Nn.Train.train ~config net ~inputs ~labels in
  let final_acc = history.epoch_accuracies.(Array.length history.epoch_accuracies - 1) in
  Alcotest.(check (float 1e-9)) "100% train accuracy" 1. final_acc

let test_training_loss_decreases () =
  let rng = Util.Rng.create 5 in
  let net = Nn.Network.create ~rng ~spec:[ 2; 6; 2 ] ~hidden_activation:Nn.Activation.Relu in
  let rng_data = Util.Rng.create 6 in
  let inputs = Array.init 40 (fun _ -> [| Util.Rng.float rng_data; Util.Rng.float rng_data |]) in
  let labels = Array.map (fun x -> if x.(0) > x.(1) then 1 else 0) inputs in
  let config =
    { Nn.Train.default_config with epochs_phase1 = 30; lr_phase1 = 0.2; epochs_phase2 = 0 }
  in
  let history = Nn.Train.train ~config net ~inputs ~labels in
  let first = history.epoch_losses.(0) in
  let last = history.epoch_losses.(29) in
  Alcotest.(check bool) (Printf.sprintf "loss %f -> %f" first last) true (last < first)

let test_metrics () =
  let predicted = [| 0; 1; 1; 0 |] and labels = [| 0; 1; 0; 0 |] in
  Alcotest.(check (float 1e-9)) "accuracy" 0.75
    (Nn.Metrics.accuracy_of_predictions ~predicted ~labels);
  let m = Nn.Metrics.confusion_of_predictions ~classes:2 ~predicted ~labels in
  Alcotest.(check int) "true 0 pred 0" 2 m.(0).(0);
  Alcotest.(check int) "true 0 pred 1" 1 m.(0).(1);
  Alcotest.(check int) "true 1 pred 1" 1 m.(1).(1);
  Alcotest.(check int) "true 1 pred 0" 0 m.(1).(0)

(* ---------- normalisation ---------- *)

let test_normalize_fit_apply () =
  let rows = [| [| 0; 10 |]; [| 10; 10 |] |] in
  let t = Nn.Normalize.fit rows in
  Alcotest.check vecf "mean" [| 5.; 10. |] t.Nn.Normalize.mean;
  Alcotest.check vecf "std (clamped)" [| 5.; 1. |] t.Nn.Normalize.std;
  Alcotest.check vecf "apply" [| -1.; 0. |] (Nn.Normalize.apply t [| 0; 10 |])

let test_normalize_fold_equivalence () =
  (* Training-time: net(normalise(x)); deployment: folded(x) on raw ints. *)
  let rng = Util.Rng.create 7 in
  let net = Nn.Network.create ~rng ~spec:[ 3; 5; 2 ] ~hidden_activation:Nn.Activation.Relu in
  let rows = [| [| 100; 2000; 5 |]; [| 300; 1500; 9 |]; [| 150; 1800; 2 |] |] in
  let norm = Nn.Normalize.fit rows in
  let shift, scale = Nn.Normalize.shift_scale norm in
  let folded = Nn.Network.fold_input_affine net ~shift ~scale in
  Array.iter
    (fun raw ->
      let normalised = Nn.Normalize.apply norm raw in
      let expected = Nn.Network.forward net normalised in
      let got = Nn.Network.forward folded (Array.map float_of_int raw) in
      Alcotest.(check bool) "equal outputs" true (Vec.approx_equal ~eps:1e-6 expected got))
    rows

(* ---------- qnet ---------- *)

let hand_qnet () =
  Nn.Qnet.create
    [|
      { Nn.Qnet.weights = [| [| 2; -1 |]; [| 1; 1 |] |]; bias = [| 0; -3 |]; act = Nn.Qnet.Relu };
      { Nn.Qnet.weights = [| [| 1; 0 |]; [| 0; 1 |] |]; bias = [| 0; 0 |]; act = Nn.Qnet.Identity };
    |]

let test_qnet_forward () =
  let q = hand_qnet () in
  (* x = [2; 1]: pre1 = [3; 0] -> relu [3; 0] -> out [3; 0]. *)
  Alcotest.(check (array int)) "forward" [| 3; 0 |] (Nn.Qnet.forward q [| 2; 1 |]);
  Alcotest.(check int) "predict" 0 (Nn.Qnet.predict q [| 2; 1 |])

let test_qnet_relu_clamps () =
  let q = hand_qnet () in
  (* x = [-5; 0]: pre1 = [-10; -8] -> relu [0; 0]. *)
  Alcotest.(check (array int)) "forward" [| 0; 0 |] (Nn.Qnet.forward q [| -5; 0 |])

let test_qnet_predict_tie_prefers_l0 () =
  let q = hand_qnet () in
  (* Output [0; 0]: paper's rule L0 >= L1 -> L0. *)
  Alcotest.(check int) "tie" 0 (Nn.Qnet.predict q [| -5; 0 |])

let test_qnet_trace () =
  let q = hand_qnet () in
  let trace = Nn.Qnet.forward_trace q [| 2; 1 |] in
  Alcotest.(check int) "two layers" 2 (Array.length trace);
  Alcotest.(check (array int)) "hidden" [| 3; 0 |] trace.(0);
  Alcotest.(check (array int)) "output" [| 3; 0 |] trace.(1)

let test_qnet_create_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Qnet: ragged weights")
    (fun () ->
      ignore
        (Nn.Qnet.create
           [| { Nn.Qnet.weights = [| [| 1; 2 |]; [| 1 |] |]; bias = [| 0; 0 |]; act = Nn.Qnet.Identity } |]));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Qnet.create: inter-layer dimension mismatch") (fun () ->
      ignore
        (Nn.Qnet.create
           [|
             { Nn.Qnet.weights = [| [| 1 |] |]; bias = [| 0 |]; act = Nn.Qnet.Relu };
             { Nn.Qnet.weights = [| [| 1; 1 |] |]; bias = [| 0 |]; act = Nn.Qnet.Identity };
           |]))

let prop_qnet_bias_scaling =
  (* predict(scale_biases net m, m*x) = predict(net, x) — the identity the
     noise model relies on. *)
  QCheck.Test.make ~name:"bias scaling commutes with prediction" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 150)
           (array_size (return 2) (int_range (-50) 50))))
    (fun (m, x) ->
      let q = hand_qnet () in
      let scaled = Nn.Qnet.scale_biases q m in
      let xs = Array.map (fun v -> m * v) x in
      Nn.Qnet.predict scaled xs = Nn.Qnet.predict q x
      && Nn.Qnet.forward scaled xs = Array.map (fun v -> m * v) (Nn.Qnet.forward q x))

let test_qnet_max_abs_params () =
  Alcotest.(check int) "max" 3 (Nn.Qnet.max_abs_params (hand_qnet ()))

(* ---------- quantize ---------- *)

let test_quantize_agreement_on_trained_net () =
  let rng = Util.Rng.create 8 in
  let net = Nn.Network.create ~rng ~spec:[ 3; 6; 2 ] ~hidden_activation:Nn.Activation.Relu in
  let data_rng = Util.Rng.create 9 in
  let inputs = Array.init 100 (fun _ -> Array.init 3 (fun _ -> Util.Rng.int_in data_rng 1 5000)) in
  let q = Nn.Quantize.quantize net ~weight_bits:12 in
  let agreement = Nn.Quantize.agreement net q ~inputs in
  Alcotest.(check bool) (Printf.sprintf "agreement %.2f >= 0.95" agreement)
    true (agreement >= 0.95)

let test_quantize_weight_bits_respected () =
  let rng = Util.Rng.create 10 in
  let net = Nn.Network.create ~rng ~spec:[ 4; 5; 2 ] ~hidden_activation:Nn.Activation.Relu in
  let q = Nn.Quantize.quantize net ~weight_bits:8 in
  Array.iter
    (fun (l : Nn.Qnet.qlayer) ->
      Array.iter
        (fun row ->
          Array.iter
            (fun w -> Alcotest.(check bool) "fits 8 bits" true (abs w <= 127))
            row)
        l.weights)
    q.Nn.Qnet.layers

let test_quantize_rejects_bad_bits () =
  let rng = Util.Rng.create 11 in
  let net = Nn.Network.create ~rng ~spec:[ 2; 3; 2 ] ~hidden_activation:Nn.Activation.Relu in
  Alcotest.check_raises "bits" (Invalid_argument "Quantize: weight_bits out of [2, 20]")
    (fun () -> ignore (Nn.Quantize.quantize net ~weight_bits:25))

let test_quantize_rejects_sigmoid () =
  let rng = Util.Rng.create 12 in
  let net = Nn.Network.create ~rng ~spec:[ 2; 3; 2 ] ~hidden_activation:Nn.Activation.Sigmoid in
  Alcotest.check_raises "sigmoid"
    (Invalid_argument "Quantize: network must be ReLU hidden / Identity output")
    (fun () -> ignore (Nn.Quantize.quantize net ~weight_bits:10))

let test_qnet_serialization_roundtrip () =
  let q = hand_qnet () in
  let text = Nn.Qnet.to_string q in
  match Nn.Qnet.of_string text with
  | Ok q2 -> Alcotest.(check bool) "roundtrip" true (Nn.Qnet.equal q q2)
  | Error e -> Alcotest.fail e

let test_qnet_serialization_file () =
  let q = hand_qnet () in
  let path = Filename.temp_file "qnet" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Nn.Qnet.save path q;
      match Nn.Qnet.load path with
      | Ok q2 -> Alcotest.(check bool) "file roundtrip" true (Nn.Qnet.equal q q2)
      | Error e -> Alcotest.fail e)

let test_qnet_load_missing_file () =
  match Nn.Qnet.load "/nonexistent/path/model.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_qnet_of_string_errors () =
  (match Nn.Qnet.of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected header error");
  (match Nn.Qnet.of_string "qnet 1\nlayer 1 2 relu\n1 2\nbias 0\nextra" with
  | Error msg -> Alcotest.(check bool) "trailing" true (msg = "trailing input")
  | Ok _ -> Alcotest.fail "expected trailing error");
  match Nn.Qnet.of_string "qnet 1\nlayer 1 2 relu\n1\nbias 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected row-size error"

let prop_qnet_serialization =
  QCheck.Test.make ~name:"qnet serialization roundtrips" ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 4)
           (pair (int_range 1 4) (int_range (-1000) 1000))))
    (fun (n_in, (n_hidden, seedish)) ->
      let rng = Util.Rng.create (abs seedish) in
      let layer out_dim in_dim act =
        {
          Nn.Qnet.weights =
            Array.init out_dim (fun _ ->
                Array.init in_dim (fun _ -> Util.Rng.int_in rng (-999) 999));
          bias = Array.init out_dim (fun _ -> Util.Rng.int_in rng (-99) 99);
          act;
        }
      in
      let q =
        Nn.Qnet.create
          [|
            layer n_hidden n_in Nn.Qnet.Relu; layer 2 n_hidden Nn.Qnet.Identity;
          |]
      in
      match Nn.Qnet.of_string (Nn.Qnet.to_string q) with
      | Ok q2 -> Nn.Qnet.equal q q2
      | Error _ -> false)

let () =
  Alcotest.run "nn"
    [
      ( "activation",
        [
          Alcotest.test_case "relu" `Quick test_relu;
          Alcotest.test_case "sigmoid" `Quick test_sigmoid;
          Alcotest.test_case "identity" `Quick test_identity;
          QCheck_alcotest.to_alcotest prop_activation_derivative;
        ] );
      ( "layer",
        [
          Alcotest.test_case "forward" `Quick test_layer_forward;
          Alcotest.test_case "dims" `Quick test_layer_dims;
          Alcotest.test_case "of_parts checks" `Quick test_layer_of_parts_checks;
        ] );
      ( "network",
        [
          Alcotest.test_case "forward" `Quick test_network_forward;
          Alcotest.test_case "dims/params" `Quick test_network_dims;
          Alcotest.test_case "paper network shape" `Quick test_paper_network_shape;
          Alcotest.test_case "fold input affine" `Quick test_fold_input_affine;
        ] );
      ( "train",
        [
          Alcotest.test_case "gradient check (cross-entropy)" `Quick test_gradient_check;
          Alcotest.test_case "gradient check (mse)" `Quick test_gradient_check_mse;
          Alcotest.test_case "learns separable task" `Quick test_training_learns_xor_like;
          Alcotest.test_case "loss decreases" `Quick test_training_loss_decreases;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "fit/apply" `Quick test_normalize_fit_apply;
          Alcotest.test_case "fold equivalence" `Quick test_normalize_fold_equivalence;
        ] );
      ( "qnet",
        [
          Alcotest.test_case "forward" `Quick test_qnet_forward;
          Alcotest.test_case "relu clamps" `Quick test_qnet_relu_clamps;
          Alcotest.test_case "tie prefers L0" `Quick test_qnet_predict_tie_prefers_l0;
          Alcotest.test_case "trace" `Quick test_qnet_trace;
          Alcotest.test_case "create validation" `Quick test_qnet_create_validation;
          Alcotest.test_case "max_abs_params" `Quick test_qnet_max_abs_params;
          QCheck_alcotest.to_alcotest prop_qnet_bias_scaling;
          Alcotest.test_case "serialization roundtrip" `Quick test_qnet_serialization_roundtrip;
          Alcotest.test_case "serialization file" `Quick test_qnet_serialization_file;
          Alcotest.test_case "of_string errors" `Quick test_qnet_of_string_errors;
          Alcotest.test_case "load missing file" `Quick test_qnet_load_missing_file;
          QCheck_alcotest.to_alcotest prop_qnet_serialization;
        ] );
      ( "quantize",
        [
          Alcotest.test_case "agreement" `Quick test_quantize_agreement_on_trained_net;
          Alcotest.test_case "weight bits respected" `Quick test_quantize_weight_bits_respected;
          Alcotest.test_case "rejects bad bits" `Quick test_quantize_rejects_bad_bits;
          Alcotest.test_case "rejects sigmoid" `Quick test_quantize_rejects_sigmoid;
        ] );
    ]
