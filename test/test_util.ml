(* Tests for the util library: RNG determinism/distribution, statistics,
   and table rendering. *)

let test_rng_determinism () =
  let a = Util.Rng.create 42 in
  let b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.int64 a) (Util.Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Util.Rng.create 1 in
  let b = Util.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.int64 a = Util.Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Util.Rng.create 7 in
  ignore (Util.Rng.int64 a);
  let b = Util.Rng.copy a in
  let va = Util.Rng.int64 a in
  let vb = Util.Rng.int64 b in
  Alcotest.(check int64) "copy continues identically" va vb

let test_rng_split_independent () =
  let a = Util.Rng.create 7 in
  let b = Util.Rng.split a in
  let xs = Array.init 32 (fun _ -> Util.Rng.int64 a) in
  let ys = Array.init 32 (fun _ -> Util.Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_range () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_in_bounds () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_int_in_hits_extremes () =
  let rng = Util.Rng.create 5 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let v = Util.Rng.int_in rng (-3) 3 in
    if v = -3 then seen_lo := true;
    if v = 3 then seen_hi := true
  done;
  Alcotest.(check bool) "lower bound reachable" true !seen_lo;
  Alcotest.(check bool) "upper bound reachable" true !seen_hi

let test_rng_int_uniformity () =
  (* 10k draws over 10 buckets: expected count 1000 per bucket, standard
     deviation ~30, so +-200 is a >6-sigma band. Catches gross defects
     (always-even values, truncated draws, sign bugs); SplitMix64 itself
     passes far stricter batteries. The modulo bias documented in rng.mli
     is ~bound/2^62 per value — invisible at this sample size. *)
  let rng = Util.Rng.create 23 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (got %d)" i c)
        true
        (c > 800 && c < 1200))
    buckets

let test_rng_float_unit_interval () =
  let rng = Util.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 13 in
  let xs = Array.init 20000 (fun _ -> Util.Rng.gaussian rng) in
  let mean = Util.Stats.mean xs in
  let std = Util.Stats.std xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "std near 1" true (Float.abs (std -. 1.) < 0.05)

let test_rng_shuffle_permutes () =
  let rng = Util.Rng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  let orig = Array.copy a in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true (sorted = orig);
  Alcotest.(check bool) "usually not identity" true (a <> orig)

let test_stats_mean_variance () =
  let a = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean a);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Util.Stats.variance a);
  Alcotest.(check (float 1e-9)) "std" (sqrt 1.25) (Util.Stats.std a)

let test_stats_minmax () =
  let a = [| 3.; -1.; 7.; 0. |] in
  Alcotest.(check (float 0.)) "min" (-1.) (Util.Stats.min a);
  Alcotest.(check (float 0.)) "max" 7. (Util.Stats.max a)

let test_stats_median () =
  Alcotest.(check (float 1e-9)) "odd" 2. (Util.Stats.median [| 3.; 1.; 2. |]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Util.Stats.median [| 4.; 1.; 2.; 3. |])

let test_stats_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "p0" 1. (Util.Stats.percentile a 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Util.Stats.percentile a 100.);
  Alcotest.(check (float 1e-9)) "p25" 2. (Util.Stats.percentile a 25.)

let test_stats_pearson () =
  let x = [| 1.; 2.; 3.; 4. |] in
  let y = [| 2.; 4.; 6.; 8. |] in
  Alcotest.(check (float 1e-9)) "perfect +" 1. (Util.Stats.pearson x y);
  let z = [| 8.; 6.; 4.; 2. |] in
  Alcotest.(check (float 1e-9)) "perfect -" (-1.) (Util.Stats.pearson x z);
  let c = [| 5.; 5.; 5.; 5. |] in
  Alcotest.(check (float 1e-9)) "zero variance" 0. (Util.Stats.pearson x c)

let test_stats_histogram () =
  let a = [| 0.1; 0.9; 0.5; -3.; 42. |] in
  let h = Util.Stats.histogram a ~bins:2 ~lo:0. ~hi:1. in
  Alcotest.(check int) "low bucket (incl clamped)" 2 h.(0);
  Alcotest.(check int) "high bucket (incl clamped)" 3 h.(1)

let test_stats_empty_raises () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Util.Stats.mean [||]))

let test_stats_nan_rejected () =
  (* Regression: NaN used to sort unpredictably under polymorphic compare
     (skewing percentiles) and to land silently in histogram bucket 0. *)
  let poisoned = [| 1.; Float.nan; 3. |] in
  Alcotest.check_raises "percentile rejects NaN"
    (Invalid_argument "Stats.percentile: NaN in input") (fun () ->
      ignore (Util.Stats.percentile poisoned 50.));
  Alcotest.check_raises "median rejects NaN"
    (Invalid_argument "Stats.percentile: NaN in input") (fun () ->
      ignore (Util.Stats.median poisoned));
  Alcotest.check_raises "histogram rejects NaN"
    (Invalid_argument "Stats.histogram: NaN in input") (fun () ->
      ignore (Util.Stats.histogram poisoned ~bins:2 ~lo:0. ~hi:4.))

let test_stats_percentile_order_independent () =
  (* Float.compare gives rank statistics a fixed IEEE total order: any
     permutation of the input yields the identical percentile. *)
  let a = [| 5.; -0.; 1.; 0.; 3.; 2. |] in
  let b = [| 3.; 0.; 5.; 2.; -0.; 1. |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%.0f" p)
        (Util.Stats.percentile a p) (Util.Stats.percentile b p))
    [ 0.; 25.; 50.; 75.; 100. ]

let test_table_render () =
  let t = Util.Table.create ~header:[ "name"; "value" ] in
  Util.Table.add_row t [ "alpha"; "1" ];
  Util.Table.add_row t [ "b"; "22" ];
  let s = Util.Table.to_string t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  (* All lines padded to equal visible width per column. *)
  (match lines with
  | _ :: sep :: _ -> Alcotest.(check bool) "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "missing separator")

let test_table_row_arity_checked () =
  let t = Util.Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Table.add_row: cell count differs from header")
    (fun () -> Util.Table.add_row t [ "only-one" ])

let test_table_int_row () =
  let t = Util.Table.create ~header:[ "k"; "x"; "y" ] in
  Util.Table.add_int_row t "row" [ 1; -2 ];
  let s = Util.Table.to_string t in
  Alcotest.(check bool) "renders ints" true
    (let contains sub =
       let n = String.length s and m = String.length sub in
       let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
       loop 0
     in
     contains "-2")

(* ---------- Parallel ---------- *)

let test_parallel_map_matches_array_map () =
  let arr = Array.init 103 (fun i -> i - 50) in
  let f x = (x * x) - (3 * x) in
  let expected = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "map jobs=%d" jobs)
        true
        (Util.Parallel.map ~jobs f arr = expected))
    [ 1; 2; 4 ]

let test_parallel_mapi_order () =
  let arr = Array.init 57 (fun i -> 2 * i) in
  let expected = Array.mapi (fun i x -> (i, x + 1)) arr in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "mapi jobs=%d" jobs)
        true
        (Util.Parallel.mapi ~jobs (fun i x -> (i, x + 1)) arr = expected))
    [ 1; 2; 4; 16 ]

let test_parallel_filter_map_order () =
  let arr = Array.init 101 (fun i -> i) in
  let f x = if x mod 3 = 0 then Some (x * 10) else None in
  let expected = List.filter_map f (Array.to_list arr) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "filter_map jobs=%d" jobs)
        expected
        (Util.Parallel.filter_map ~jobs f arr))
    [ 1; 2; 4 ]

let test_parallel_exists () =
  let arr = Array.init 200 (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.(check bool) "hit" true
        (Util.Parallel.exists ~jobs (fun x -> x = 137) arr);
      Alcotest.(check bool) "miss" false
        (Util.Parallel.exists ~jobs (fun x -> x > 1000) arr))
    [ 1; 2; 4 ]

let test_parallel_empty_and_small () =
  Alcotest.(check bool) "empty map" true (Util.Parallel.map ~jobs:4 succ [||] = [||]);
  Alcotest.(check (list int)) "empty filter_map" []
    (Util.Parallel.filter_map ~jobs:4 (fun x -> Some x) [||]);
  Alcotest.(check bool) "more jobs than elements" true
    (Util.Parallel.map ~jobs:16 succ [| 1; 2; 3 |] = [| 2; 3; 4 |])

let test_parallel_worker_exception_propagates () =
  let arr = Array.init 64 (fun i -> i) in
  Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
      ignore (Util.Parallel.map ~jobs:4 (fun x -> if x = 60 then failwith "boom" else x) arr))

let test_parallel_joins_workers_before_reraise () =
  (* Regression: a failing chunk must not leak still-running domains. The
     calling domain's chunk (indices 0-3 at jobs=4) dies immediately while
     the spawned chunks are still sleeping; the pool has to join them all
     before re-raising, so by the time the exception surfaces every
     spawned element has run to completion. The pre-fix code re-raised
     without joining and left the workers mid-flight. *)
  let arr = Array.init 16 (fun i -> i) in
  let finished = Atomic.make 0 in
  (try
     ignore
       (Util.Parallel.map ~jobs:4
          (fun x ->
            if x < 4 then failwith "chunk0 dies"
            else begin
              Unix.sleepf 0.02;
              Atomic.incr finished;
              x
            end)
          arr);
     Alcotest.fail "expected the chunk-0 failure to propagate"
   with Failure m -> Alcotest.(check string) "chunk-0 exception" "chunk0 dies" m);
  Alcotest.(check int) "all spawned elements completed" 12 (Atomic.get finished)

let test_parallel_first_chunk_exception_wins () =
  (* When several chunks fail, the lowest-numbered chunk's exception is
     the one re-raised — even if a later chunk failed first in time. *)
  let arr = Array.init 16 (fun i -> i) in
  Alcotest.check_raises "chunk-order, not time-order" (Failure "early chunk")
    (fun () ->
      ignore
        (Util.Parallel.map ~jobs:4
           (fun x ->
             if x < 4 then begin
               (* Give the later chunks time to fail first. *)
               Unix.sleepf 0.02;
               failwith "early chunk"
             end
             else failwith "late chunk")
           arr))

let test_parallel_adversarial_delays () =
  (* Work stealing under adversarial per-item delays: a handful of slow
     items land in one seeded range, idle workers must steal around them
     and every combinator must still return the jobs=1 result in input
     order. Delay pattern: item 0 and every 17th item sleep, everything
     else is instant — under static chunking worker 0 would own almost
     all the slow items. *)
  let n = 97 in
  let arr = Array.init n (fun i -> i) in
  let f x =
    if x = 0 || x mod 17 = 0 then Unix.sleepf 0.01;
    (x * 7) mod 13
  in
  let fi i x = if f x = 0 then Some (i, x) else None in
  let expected_map = Util.Parallel.map ~jobs:1 f arr in
  let expected_fm = Util.Parallel.filter_mapi ~jobs:1 fi arr in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "map jobs=%d" jobs)
        true
        (Util.Parallel.map ~jobs f arr = expected_map);
      Alcotest.(check bool)
        (Printf.sprintf "filter_mapi jobs=%d" jobs)
        true
        (Util.Parallel.filter_mapi ~jobs fi arr = expected_fm))
    [ 2; 3; 4; 8 ]

let test_parallel_steals_balance_skew () =
  (* The probe must see the skew-adjusted picture: with one pathological
     item and plenty of cheap ones, stealing spreads the cheap items so
     no worker is left idle while another owns the whole tail. We assert
     on the recorded per-worker stats: all items accounted for exactly
     once and at least one steal happened. *)
  let recorded = ref [||] in
  Util.Parallel.set_probe
    (Some
       {
         Util.Parallel.now_s = (fun () -> Unix.gettimeofday ());
         record = (fun ~stats -> recorded := stats);
       });
  Fun.protect ~finally:(fun () -> Util.Parallel.set_probe None) @@ fun () ->
  let arr = Array.init 64 (fun i -> i) in
  let _ =
    Util.Parallel.map ~jobs:4
      (fun x ->
        if x = 1 then Unix.sleepf 0.05;
        x)
      arr
  in
  let stats = !recorded in
  Alcotest.(check int) "one stat per worker" 4 (Array.length stats);
  let items =
    Array.fold_left (fun acc s -> acc + s.Util.Parallel.items) 0 stats
  in
  Alcotest.(check int) "every item ran exactly once" 64 items;
  let steals =
    Array.fold_left (fun acc s -> acc + s.Util.Parallel.steals) 0 stats
  in
  Alcotest.(check bool) "sleeping owner got robbed" true (steals > 0)

let test_parallel_race_winner_cancels () =
  (* The fast thunk wins; the cancel callback fires exactly once and the
     slow thunks observe it and stop early. *)
  let cancelled = Atomic.make false in
  let cancel_calls = Atomic.make 0 in
  let cancel () =
    Atomic.incr cancel_calls;
    Atomic.set cancelled true
  in
  let slow id () =
    let rec wait n =
      if Atomic.get cancelled then `Stopped id
      else if n > 2000 then `Finished id
      else begin
        Unix.sleepf 0.001;
        wait (n + 1)
      end
    in
    wait 0
  in
  let fast () = `Finished 0 in
  let (w, v), outcomes =
    Util.Parallel.race ~cancel [| fast; slow 1; slow 2 |]
  in
  Alcotest.(check int) "fast thunk wins" 0 w;
  Alcotest.(check bool) "winner value" true (v = `Finished 0);
  Alcotest.(check int) "cancel called exactly once" 1 (Atomic.get cancel_calls);
  Alcotest.(check int) "every outcome reported" 3 (Array.length outcomes);
  Array.iteri
    (fun i o ->
      match o with
      | Ok (`Stopped id) -> Alcotest.(check int) "loser identity" i id
      | Ok (`Finished id) -> Alcotest.(check int) "winner identity" 0 id
      | Error _ -> Alcotest.fail "no thunk raised")
    outcomes

let test_parallel_race_all_raise () =
  (* Every thunk raising re-raises the lowest-indexed exception. *)
  let boom i () : unit =
    if i > 0 then Unix.sleepf 0.002;
    failwith (Printf.sprintf "thunk %d" i)
  in
  Alcotest.check_raises "lowest index wins" (Failure "thunk 0") (fun () ->
      ignore (Util.Parallel.race ~cancel:(fun () -> ()) [| boom 0; boom 1; boom 2 |]))

let test_parallel_race_skips_raising_loser () =
  (* A raising thunk must not beat a normally-returning one, whatever the
     timing. *)
  let (w, v), _ =
    Util.Parallel.race
      ~cancel:(fun () -> ())
      [|
        (fun () -> failwith "eager failure");
        (fun () ->
          Unix.sleepf 0.005;
          42);
      |]
  in
  Alcotest.(check int) "surviving thunk wins" 1 w;
  Alcotest.(check int) "its value" 42 v

let test_parallel_default_jobs_override () =
  let before = Util.Parallel.default_jobs () in
  Alcotest.(check bool) "at least 1" true (before >= 1);
  Util.Parallel.set_default_jobs (Some 3);
  Alcotest.(check int) "override" 3 (Util.Parallel.default_jobs ());
  Util.Parallel.set_default_jobs (Some 0);
  Alcotest.(check int) "clamped to 1" 1 (Util.Parallel.default_jobs ());
  Util.Parallel.set_default_jobs None;
  Alcotest.(check int) "restored" before (Util.Parallel.default_jobs ())

(* ---------- Json ---------- *)

let sample_json =
  Util.Json.(
    Obj
      [
        ("schema", String "test/1");
        ("ok", Bool true);
        ("none", Null);
        ("count", Int (-42));
        ("ratio", Float 2.5);
        ("text", String "a \"quoted\"\nline\twith\\escapes");
        ("items", List [ Int 1; Float 0.5; String "x"; List []; Obj [] ]);
      ])

let test_json_roundtrip_compact () =
  match Util.Json.of_string (Util.Json.to_string sample_json) with
  | Ok v -> Alcotest.(check bool) "compact roundtrip" true (v = sample_json)
  | Error e -> Alcotest.fail e

let test_json_roundtrip_pretty () =
  match Util.Json.of_string (Util.Json.pretty sample_json) with
  | Ok v -> Alcotest.(check bool) "pretty roundtrip" true (v = sample_json)
  | Error e -> Alcotest.fail e

let test_json_member () =
  Alcotest.(check bool) "present" true
    (Util.Json.member "count" sample_json = Some (Util.Json.Int (-42)));
  Alcotest.(check bool) "absent" true (Util.Json.member "nope" sample_json = None);
  Alcotest.(check bool) "non-object" true
    (Util.Json.member "x" (Util.Json.Int 3) = None)

let test_json_parse_errors () =
  let fails s =
    match Util.Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
    | Error e ->
        Alcotest.(check bool) "mentions byte offset" true
          (String.length e > 0
          && String.split_on_char ' ' e |> List.exists (( = ) "byte"))
  in
  List.iter fails
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "[1] garbage" ]

let test_json_file_roundtrip () =
  let path = Filename.temp_file "fannet_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Util.Json.write_file path sample_json;
      match Util.Json.parse_file path with
      | Ok v -> Alcotest.(check bool) "file roundtrip" true (v = sample_json)
      | Error e -> Alcotest.fail e)

(* ---------- Bigcount ---------- *)

module Bc = Util.Bigcount

let bigcount = Alcotest.testable (Fmt.of_to_string Bc.to_string) Bc.equal

let test_bigcount_exact_arithmetic () =
  Alcotest.check bigcount "add" (Bc.of_int 7) (Bc.add (Bc.of_int 3) (Bc.of_int 4));
  Alcotest.check bigcount "mul" (Bc.of_int 12) (Bc.mul (Bc.of_int 3) (Bc.of_int 4));
  Alcotest.check bigcount "sum" (Bc.of_int 10)
    (Bc.sum [ Bc.of_int 1; Bc.of_int 2; Bc.of_int 3; Bc.of_int 4 ]);
  Alcotest.check bigcount "pow2 small" (Bc.of_int 1024) (Bc.pow2 10);
  Alcotest.check bigcount "pow" (Bc.of_int 81) (Bc.pow ~base:3 ~exp:4);
  Alcotest.check bigcount "mul by zero" Bc.zero (Bc.mul Bc.zero (Bc.pow2 100));
  Alcotest.(check bool) "is_zero" true (Bc.is_zero Bc.zero);
  Alcotest.(check bool) "one not zero" false (Bc.is_zero Bc.one);
  match Bc.of_int (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative counts must be rejected"

let test_bigcount_saturation () =
  (* Saturation marks the value as Huge instead of silently wrapping. *)
  let near = Bc.of_int max_int in
  (match Bc.add near near with
  | Bc.Huge l -> Alcotest.(check bool) "add log near 63" true (Float.abs (l -. 63.) < 0.01)
  | Bc.Exact n -> Alcotest.failf "add wrapped to %d" n);
  (match Bc.mul (Bc.pow2 40) (Bc.pow2 40) with
  | Bc.Huge l -> Alcotest.(check (float 1e-9)) "mul log adds" 80. l
  | Bc.Exact n -> Alcotest.failf "mul wrapped to %d" n);
  (* 1000^8 ≈ 2^79.7, the module's own motivating example. *)
  (match Bc.pow ~base:1000 ~exp:8 with
  | Bc.Huge l -> Alcotest.(check bool) "pow log" true (Float.abs (l -. 79.726) < 0.01)
  | Bc.Exact n -> Alcotest.failf "pow wrapped to %d" n);
  (* Huge propagates through further sums (log-sum-exp, monotone). *)
  match Bc.add (Bc.pow2 100) (Bc.pow2 100) with
  | Bc.Huge l -> Alcotest.(check (float 1e-6)) "log-sum-exp" 101. l
  | Bc.Exact n -> Alcotest.failf "huge sum collapsed to %d" n

let test_bigcount_ratio_and_order () =
  Alcotest.(check (float 1e-12)) "exact ratio" 0.25
    (Bc.ratio (Bc.of_int 1) (Bc.of_int 4));
  Alcotest.(check (float 1e-12)) "zero denominator" 0. (Bc.ratio Bc.one Bc.zero);
  Alcotest.(check (float 1e-9)) "huge ratio in log space" 0.25
    (Bc.ratio (Bc.pow2 100) (Bc.pow2 102));
  Alcotest.(check (float 1e-9)) "mixed exact/huge ratio" 0.5
    (Bc.ratio (Bc.of_int 1024) (Bc.mul (Bc.of_int 2) (Bc.of_int 1024)));
  Alcotest.(check bool) "order: zero < one" true (Bc.compare Bc.zero Bc.one < 0);
  Alcotest.(check bool) "order: exact < huge" true
    (Bc.compare (Bc.of_int max_int) (Bc.pow2 90) < 0);
  Alcotest.(check bool) "order: huge by log" true
    (Bc.compare (Bc.pow2 90) (Bc.pow2 91) < 0);
  Alcotest.(check bool) "log2 of zero" true (Bc.log2 Bc.zero = neg_infinity)

let test_bigcount_json_roundtrip () =
  let roundtrip c =
    match Bc.of_json (Bc.to_json c) with
    | Ok c' -> Alcotest.check bigcount "roundtrip" c c'
    | Error e -> Alcotest.failf "of_json failed: %s" e
  in
  List.iter roundtrip [ Bc.zero; Bc.one; Bc.of_int 123456; Bc.pow2 200 ];
  (* Deterministic bytes: the cache-key property. *)
  Alcotest.(check string) "bytes stable"
    (Util.Json.to_string (Bc.to_json (Bc.pow2 200)))
    (Util.Json.to_string (Bc.to_json (Bc.pow2 200)));
  match Bc.of_json (Util.Json.String "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage JSON must be rejected"

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int_in extremes" `Quick test_rng_int_in_hits_extremes;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "float unit interval" `Quick test_rng_float_unit_interval;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "NaN rejected" `Quick test_stats_nan_rejected;
          Alcotest.test_case "percentile order-independent" `Quick
            test_stats_percentile_order_independent;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row arity" `Quick test_table_row_arity_checked;
          Alcotest.test_case "int rows" `Quick test_table_int_row;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map = Array.map" `Quick test_parallel_map_matches_array_map;
          Alcotest.test_case "mapi order" `Quick test_parallel_mapi_order;
          Alcotest.test_case "filter_map order" `Quick test_parallel_filter_map_order;
          Alcotest.test_case "exists" `Quick test_parallel_exists;
          Alcotest.test_case "empty/small arrays" `Quick test_parallel_empty_and_small;
          Alcotest.test_case "worker exception" `Quick test_parallel_worker_exception_propagates;
          Alcotest.test_case "joins workers before re-raise" `Quick
            test_parallel_joins_workers_before_reraise;
          Alcotest.test_case "first chunk's exception wins" `Quick
            test_parallel_first_chunk_exception_wins;
          Alcotest.test_case "adversarial delays deterministic" `Quick
            test_parallel_adversarial_delays;
          Alcotest.test_case "steals balance skew" `Quick
            test_parallel_steals_balance_skew;
          Alcotest.test_case "race winner cancels" `Quick
            test_parallel_race_winner_cancels;
          Alcotest.test_case "race all raise" `Quick test_parallel_race_all_raise;
          Alcotest.test_case "race skips raising loser" `Quick
            test_parallel_race_skips_raising_loser;
          Alcotest.test_case "default jobs override" `Quick test_parallel_default_jobs_override;
        ] );
      ( "json",
        [
          Alcotest.test_case "compact roundtrip" `Quick test_json_roundtrip_compact;
          Alcotest.test_case "pretty roundtrip" `Quick test_json_roundtrip_pretty;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "file roundtrip" `Quick test_json_file_roundtrip;
        ] );
      ( "bigcount",
        [
          Alcotest.test_case "exact arithmetic" `Quick test_bigcount_exact_arithmetic;
          Alcotest.test_case "saturation" `Quick test_bigcount_saturation;
          Alcotest.test_case "ratio and order" `Quick test_bigcount_ratio_and_order;
          Alcotest.test_case "json roundtrip" `Quick test_bigcount_json_roundtrip;
        ] );
    ]
