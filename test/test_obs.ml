(* Tests for the observability library: clock monotonicity, the sharded
   metrics registry (including cross-domain merging), scoped spans and the
   disabled fast path (recording off must leave zero state behind).

   The registry is process-wide, so every test starts from a clean slate
   and leaves recording disabled. *)

let with_clean_enabled f =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Span.reset ())
    f

(* ---------- clock ---------- *)

let test_clock_non_decreasing () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now_ns () in
    Alcotest.(check bool) "non-decreasing" true (Int64.compare t !prev >= 0);
    prev := t
  done

let test_clock_elapsed_positive () =
  let t0 = Obs.Clock.now_ns () in
  let acc = ref 0 in
  for i = 1 to 100_000 do
    acc := !acc + i
  done;
  Sys.opaque_identity !acc |> ignore;
  let dt = Obs.Clock.elapsed_s ~since:t0 in
  Alcotest.(check bool) "elapsed >= 0" true (dt >= 0.);
  Alcotest.(check bool) "elapsed < 10s" true (dt < 10.)

(* ---------- counters ---------- *)

let test_counter_basic () =
  with_clean_enabled @@ fun () ->
  let c = Obs.Metrics.counter "test.counter" in
  Alcotest.(check int) "starts at 0" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "same name, same counter" 43 (Obs.Metrics.counter_value c)

let test_counter_merges_across_domains () =
  with_clean_enabled @@ fun () ->
  let c = Obs.Metrics.counter "test.cross_domain" in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "4 domains x 1000" 4000 (Obs.Metrics.counter_value c)

let test_kind_mismatch_rejected () =
  with_clean_enabled @@ fun () ->
  ignore (Obs.Metrics.counter "test.kinded");
  Alcotest.(check bool) "gauge on a counter name raises" true
    (match Obs.Metrics.gauge "test.kinded" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- histograms ---------- *)

let test_histogram_buckets_and_stats () =
  with_clean_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "test.hist" ~buckets:[| 1.; 10.; 100. |] in
  List.iter (Obs.Metrics.observe h) [ 0.5; 5.; 50.; 500. ];
  let v = Obs.Metrics.histogram_view h in
  Alcotest.(check int) "count" 4 v.Obs.Metrics.count;
  Alcotest.(check bool) "counts per bucket" true (v.Obs.Metrics.counts = [| 1; 1; 1 |]);
  Alcotest.(check int) "overflow" 1 v.Obs.Metrics.overflow;
  Alcotest.(check (float 1e-9)) "sum" 555.5 v.Obs.Metrics.sum;
  Alcotest.(check (float 0.)) "min" 0.5 v.Obs.Metrics.vmin;
  Alcotest.(check (float 0.)) "max" 500. v.Obs.Metrics.vmax

let test_histogram_nan_isolated () =
  with_clean_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "test.hist_nan" ~buckets:[| 1. |] in
  Obs.Metrics.observe h Float.nan;
  Obs.Metrics.observe h 0.5;
  let v = Obs.Metrics.histogram_view h in
  Alcotest.(check int) "nan counted apart" 1 v.Obs.Metrics.nan_count;
  Alcotest.(check bool) "no bucket pollution" true (v.Obs.Metrics.counts = [| 1 |]);
  Alcotest.(check (float 1e-9)) "sum excludes nan" 0.5 v.Obs.Metrics.sum

let test_histogram_merges_across_domains () =
  with_clean_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "test.hist_cross" ~buckets:[| 10.; 1000. |] in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Obs.Metrics.observe h (float_of_int d)
            done))
  in
  Array.iter Domain.join domains;
  let v = Obs.Metrics.histogram_view h in
  Alcotest.(check int) "all observations merged" 2000 v.Obs.Metrics.count;
  Alcotest.(check bool) "all in first bucket" true (v.Obs.Metrics.counts = [| 2000; 0 |])

(* ---------- spans ---------- *)

let test_span_nesting_and_order () =
  with_clean_enabled @@ fun () ->
  let r =
    Obs.Span.with_ "outer" (fun () ->
        Obs.Span.with_ "first" (fun () -> ());
        Obs.Span.with_ "second" (fun () -> ());
        17)
  in
  Alcotest.(check int) "value returned" 17 r;
  match Obs.Span.roots () with
  | [ root ] ->
      Alcotest.(check string) "root name" "outer" root.Obs.Span.name;
      Alcotest.(check (list string)) "children in start order"
        [ "first"; "second" ]
        (List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) (Obs.Span.children root));
      Alcotest.(check bool) "root covers children" true
        (Obs.Span.duration_s root
        >= List.fold_left
             (fun acc s -> acc +. Obs.Span.duration_s s)
             0. (Obs.Span.children root)
           -. 1e-9)
  | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots))

let test_span_closed_on_exception () =
  with_clean_enabled @@ fun () ->
  (try Obs.Span.with_ "dies" (fun () -> failwith "inner") with Failure _ -> ());
  match Obs.Span.roots () with
  | [ root ] ->
      Alcotest.(check string) "span recorded despite raise" "dies" root.Obs.Span.name;
      Alcotest.(check bool) "span closed" true (Obs.Span.duration_s root >= 0.)
  | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots))

(* ---------- snapshot ---------- *)

let test_snapshot_deterministic () =
  with_clean_enabled @@ fun () ->
  (* Register in non-alphabetical order; record some values. *)
  Obs.Metrics.incr (Obs.Metrics.counter "test.z");
  Obs.Metrics.observe (Obs.Metrics.histogram "test.m") 0.5;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge "test.a") 1.5;
  let s1 = Obs.Metrics.snapshot () in
  let s2 = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "quiesced snapshots identical" true (s1 = s2);
  (* The snapshot must round-trip through the JSON printer/parser. *)
  match Util.Json.of_string (Util.Json.pretty s1) with
  | Ok v -> Alcotest.(check bool) "JSON roundtrip" true (v = s1)
  | Error e -> Alcotest.fail e

let test_report_snapshot_shape () =
  with_clean_enabled @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "test.report");
  Obs.Span.with_ "test.span" (fun () -> ());
  let s = Obs.Report.snapshot () in
  Alcotest.(check bool) "schema tag" true
    (Util.Json.member "schema" s = Some (Util.Json.String Obs.Report.schema));
  Alcotest.(check bool) "has metrics" true (Util.Json.member "metrics" s <> None);
  (match Util.Json.member "spans" s with
  | Some (Util.Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "expected a non-empty spans list")

(* ---------- disabled fast path ---------- *)

let test_disabled_records_nothing () =
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  let c = Obs.Metrics.counter "test.disabled_c" in
  let g = Obs.Metrics.gauge "test.disabled_g" in
  let h = Obs.Metrics.histogram "test.disabled_h" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 100;
  Obs.Metrics.set_gauge g 3.5;
  Obs.Metrics.observe h 0.25;
  let r = Obs.Span.with_ "test.disabled_span" (fun () -> 23) in
  Alcotest.(check int) "with_ still returns the value" 23 r;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "gauge unset" true (Float.is_nan (Obs.Metrics.gauge_value g));
  Alcotest.(check int) "histogram empty" 0
    (Obs.Metrics.histogram_view h).Obs.Metrics.count;
  Alcotest.(check (list string)) "no spans recorded" []
    (List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) (Obs.Span.roots ()))

let test_reset_zeroes () =
  with_clean_enabled @@ fun () ->
  let c = Obs.Metrics.counter "test.reset_c" in
  let h = Obs.Metrics.histogram "test.reset_h" in
  Obs.Metrics.add c 7;
  Obs.Metrics.observe h 1.;
  Obs.Span.with_ "test.reset_span" (fun () -> ());
  Obs.Report.reset ();
  Alcotest.(check int) "counter zero" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram empty" 0
    (Obs.Metrics.histogram_view h).Obs.Metrics.count;
  Alcotest.(check bool) "spans dropped" true (Obs.Span.roots () = [])

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "non-decreasing" `Quick test_clock_non_decreasing;
          Alcotest.test_case "elapsed positive" `Quick test_clock_elapsed_positive;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basic;
          Alcotest.test_case "counter cross-domain merge" `Quick
            test_counter_merges_across_domains;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets_and_stats;
          Alcotest.test_case "histogram NaN isolated" `Quick test_histogram_nan_isolated;
          Alcotest.test_case "histogram cross-domain merge" `Quick
            test_histogram_merges_across_domains;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting_and_order;
          Alcotest.test_case "closed on exception" `Quick test_span_closed_on_exception;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "deterministic" `Quick test_snapshot_deterministic;
          Alcotest.test_case "report shape" `Quick test_report_snapshot_shape;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "reset zeroes" `Quick test_reset_zeroes;
        ] );
    ]
