(* Tests for the fannet core: noise model, symbolic encoding, backend
   agreement (Bnb vs SMT vs explicit vs interval), tolerance search,
   extraction, bias/sensitivity/boundary analyses, baseline, pipeline. *)

module N = Fannet.Noise
module B = Fannet.Backend

(* ---------- fixtures ---------- *)

let tiny_qnet () =
  Nn.Qnet.create
    [|
      { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Relu };
      { Nn.Qnet.weights = [| [| 2; -1 |]; [| -1; 2 |] |]; bias = [| 0; 1 |]; act = Nn.Qnet.Identity };
    |]

(* Random small network generator for property tests: 2-3 inputs, 2-4
   hidden relu neurons, 2 identity outputs. *)
let qnet_gen =
  let open QCheck.Gen in
  let* n_in = int_range 2 3 in
  let* n_hidden = int_range 2 4 in
  let weight = int_range (-8) 8 in
  let* w1 = array_size (return n_hidden) (array_size (return n_in) weight) in
  let* b1 = array_size (return n_hidden) (int_range (-30) 30) in
  let* w2 = array_size (return 2) (array_size (return n_hidden) weight) in
  let* b2 = array_size (return 2) (int_range (-10) 10) in
  let* input = array_size (return n_in) (int_range 1 60) in
  let net =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = w1; bias = b1; act = Nn.Qnet.Relu };
        { Nn.Qnet.weights = w2; bias = b2; act = Nn.Qnet.Identity };
      |]
  in
  return (net, input)

let arb_qnet =
  QCheck.make
    ~print:(fun ((net : Nn.Qnet.t), input) ->
      Printf.sprintf "net %dx%d input [%s]" (Nn.Qnet.in_dim net)
        (Nn.Qnet.out_dim net)
        (String.concat ";" (Array.to_list (Array.map string_of_int input))))
    qnet_gen

(* ---------- noise model ---------- *)

let test_spec_symmetric () =
  let spec = N.symmetric ~delta:5 ~bias_noise:true in
  Alcotest.(check int) "lo" (-5) spec.N.delta_lo;
  Alcotest.(check int) "hi" 5 spec.N.delta_hi;
  Alcotest.check_raises "negative" (Invalid_argument "Noise.symmetric: negative delta")
    (fun () -> ignore (N.symmetric ~delta:(-1) ~bias_noise:false))

let test_spec_size () =
  let spec = N.symmetric ~delta:1 ~bias_noise:false in
  Alcotest.(check int) "3^2" 9 (N.spec_size spec ~n_inputs:2);
  let spec_b = N.symmetric ~delta:1 ~bias_noise:true in
  Alcotest.(check int) "3^3" 27 (N.spec_size spec_b ~n_inputs:2);
  let big = N.symmetric ~delta:50 ~bias_noise:true in
  Alcotest.(check bool) "saturates" true (N.spec_size big ~n_inputs:20 = max_int)

let test_in_range () =
  let spec = N.symmetric ~delta:2 ~bias_noise:false in
  Alcotest.(check bool) "ok" true (N.in_range spec { N.bias = 0; inputs = [| 1; -2 |] });
  Alcotest.(check bool) "input too big" false
    (N.in_range spec { N.bias = 0; inputs = [| 3; 0 |] });
  Alcotest.(check bool) "bias must be 0 when disabled" false
    (N.in_range spec { N.bias = 1; inputs = [| 0; 0 |] })

let test_apply_zero_noise_scales () =
  (* apply with the zero vector = 100 * plain forward. *)
  let net = tiny_qnet () in
  let input = [| 7; 11 |] in
  let plain = Nn.Qnet.forward net input in
  let spec = N.symmetric ~delta:5 ~bias_noise:false in
  let noisy = N.apply net spec ~input (N.zero ~n_inputs:2) in
  Alcotest.(check (array int)) "x100" (Array.map (fun v -> v * 100) plain) noisy;
  Alcotest.(check int) "same prediction" (Nn.Qnet.predict net input)
    (N.predict net spec ~input (N.zero ~n_inputs:2));
  (* Absolute noise at the zero vector = plain forward at scale 1. *)
  let abs_spec = N.absolute ~delta:5 ~bias_noise:false in
  Alcotest.(check (array int)) "absolute x1" plain
    (N.apply net abs_spec ~input (N.zero ~n_inputs:2))

let test_apply_hand_computed () =
  (* One-input one-hidden identity check of the exact formula. *)
  let net =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = [| [| 2 |] |]; bias = [| 3 |]; act = Nn.Qnet.Relu };
        { Nn.Qnet.weights = [| [| 1 |]; [| -1 |] |]; bias = [| 0; 0 |]; act = Nn.Qnet.Identity };
      |]
  in
  (* x = 10, noise +7% on the input, +0 bias:
     pre = 3*100 + 2*10*(100+7) = 300 + 2140 = 2440; o = (2440, -2440). *)
  let spec = N.symmetric ~delta:50 ~bias_noise:true in
  let v = { N.bias = 0; inputs = [| 7 |] } in
  Alcotest.(check (array int)) "outputs" [| 2440; -2440 |]
    (N.apply net spec ~input:[| 10 |] v);
  (* Bias noise -50%: pre = 3*50 + 2140 = 2290. *)
  let vb = { N.bias = -50; inputs = [| 7 |] } in
  Alcotest.(check (array int)) "bias noise" [| 2290; -2290 |]
    (N.apply net spec ~input:[| 10 |] vb);
  (* Absolute noise +7 units: pre = 3 + 2*(10+7) = 37; o = (37, -37). *)
  let abs_spec = N.absolute ~delta:50 ~bias_noise:true in
  Alcotest.(check (array int)) "absolute" [| 37; -37 |]
    (N.apply net abs_spec ~input:[| 10 |] v)

let test_iter_vectors_complete () =
  let spec = N.symmetric ~delta:1 ~bias_noise:true in
  let seen = ref [] in
  N.iter_vectors spec ~n_inputs:2 (fun v -> seen := v :: !seen);
  Alcotest.(check int) "27 vectors" 27 (List.length !seen);
  let distinct = List.sort_uniq N.compare !seen in
  Alcotest.(check int) "all distinct" 27 (List.length distinct);
  Alcotest.(check bool) "all in range" true (List.for_all (N.in_range spec) !seen)

let test_noise_compare_hash () =
  let v bias inputs = { N.bias; inputs } in
  let spec = N.symmetric ~delta:2 ~bias_noise:true in
  let all = ref [] in
  N.iter_vectors spec ~n_inputs:2 (fun x -> all := x :: !all);
  (* The monomorphic compare is a total order agreeing with the
     polymorphic structural one it replaced. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int)
            "sign matches Stdlib.compare"
            (Stdlib.compare (Stdlib.compare a b) 0)
            (Stdlib.compare (N.compare a b) 0))
        !all)
    !all;
  Alcotest.(check int) "equal" 0 (N.compare (v 1 [| 2; -1 |]) (v 1 [| 2; -1 |]));
  Alcotest.(check bool) "shorter sorts first" true
    (N.compare (v 0 [| 9 |]) (v 0 [| 0; 0 |]) < 0);
  (* Hash: consistent with equality, and spreading on a real vector set. *)
  Alcotest.(check int) "hash of equal vectors" (N.hash (v 3 [| -2; 5 |]))
    (N.hash (v 3 [| -2; 5 |]));
  Alcotest.(check bool) "hash non-negative" true
    (List.for_all (fun x -> N.hash x >= 0) !all);
  let distinct_hashes =
    List.sort_uniq Stdlib.compare (List.map N.hash !all)
  in
  Alcotest.(check bool) "few collisions over the range" true
    (List.length distinct_hashes > (9 * List.length !all) / 10)

(* ---------- symbolic encoding vs concrete semantics ---------- *)

let assignment_of_vector (enc : Fannet.Encode.t) (v : N.vector) =
  (match enc.Fannet.Encode.bias_var with
  | Some d0 -> [ (d0, v.N.bias) ]
  | None -> [])
  @ Array.to_list
      (Array.mapi (fun i var -> (var, v.N.inputs.(i))) enc.Fannet.Encode.input_vars)

let prop_encode_matches_concrete =
  QCheck.Test.make ~name:"encoded outputs equal concrete noisy forward" ~count:200
    (QCheck.pair arb_qnet (QCheck.make QCheck.Gen.(pair (int_range (-9) 9) bool)))
    (fun (((net : Nn.Qnet.t), input), (seedish, bias_noise)) ->
      let spec = N.symmetric ~delta:9 ~bias_noise in
      let enc = Fannet.Encode.encode net ~input spec in
      (* Derive a deterministic noise vector from seedish. *)
      let rng = Util.Rng.create (seedish + 100) in
      let v =
        {
          N.bias = (if bias_noise then Util.Rng.int_in rng (-9) 9 else 0);
          inputs = Array.init (Array.length input) (fun _ -> Util.Rng.int_in rng (-9) 9);
        }
      in
      let asg = assignment_of_vector enc v in
      let symbolic =
        Array.map (Smtlite.Term.eval_term asg) enc.Fannet.Encode.outputs
      in
      symbolic = N.apply net spec ~input v)

let prop_misclassified_formula_semantics =
  QCheck.Test.make ~name:"misclassified formula = (predict <> label)" ~count:200
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let spec = N.symmetric ~delta:5 ~bias_noise:false in
      let enc = Fannet.Encode.encode net ~input spec in
      let rng = Util.Rng.create 7 in
      let ok = ref true in
      for label = 0 to 1 do
        for _trial = 1 to 10 do
          let v =
            { N.bias = 0;
              inputs = Array.init (Array.length input) (fun _ -> Util.Rng.int_in rng (-5) 5) }
          in
          let asg = assignment_of_vector enc v in
          let formula = Fannet.Encode.misclassified enc ~true_label:label in
          let symbolic = Smtlite.Term.eval_formula asg formula in
          let concrete = N.predict net spec ~input v <> label in
          if symbolic <> concrete then ok := false
        done
      done;
      !ok)

(* ---------- backend agreement ---------- *)

let verdict_flips = function
  | B.Flip _ -> true
  | B.Robust -> false
  | B.Unknown _ -> Alcotest.fail "unexpected unknown from complete backend"

let prop_backends_agree =
  QCheck.Test.make ~name:"bnb = explicit = smt on small ranges" ~count:60 arb_qnet
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      List.for_all
        (fun (delta, bias_noise) ->
          let spec = N.symmetric ~delta ~bias_noise in
          let explicit =
            verdict_flips
              (B.exists_flip (B.Explicit { limit = 1_000_000 }) net spec ~input ~label)
          in
          let bnb = verdict_flips (B.exists_flip B.Bnb net spec ~input ~label) in
          let smt = verdict_flips (B.exists_flip B.Smt net spec ~input ~label) in
          explicit = bnb && explicit = smt)
        [ (1, false); (2, false); (2, true) ])

(* Deep (3-4 layer) and binarized networks built from a recorded seed
   through Util.Rng, so a property failure prints one replayable int.
   One network in three is fully binarized (all-Sign hidden layers,
   weights in {-1, 1}); the rest mix ReLU and Sign hidden layers. *)
let deep_net_of_seed seed =
  let module R = Util.Rng in
  let rng = R.create seed in
  let depth = R.int_in rng 3 4 in
  let binarized = R.int rng 3 = 0 in
  let n_in = R.int_in rng 2 3 in
  let dims =
    Array.init (depth + 1) (fun i ->
        if i = 0 then n_in else if i = depth then 2 else R.int_in rng 2 3)
  in
  let weight () =
    if binarized then if R.bool rng then 1 else -1 else R.int_in rng (-8) 8
  in
  let net =
    Nn.Qnet.create
      (Array.init depth (fun li ->
           let rows = dims.(li + 1) and cols = dims.(li) in
           let last = li = depth - 1 in
           {
             Nn.Qnet.weights =
               Array.init rows (fun _ -> Array.init cols (fun _ -> weight ()));
             bias = Array.init rows (fun _ -> R.int_in rng (-20) 20);
             act =
               (if last then Nn.Qnet.Identity
                else if binarized || R.int rng 3 = 0 then Nn.Qnet.Sign
                else Nn.Qnet.Relu);
           }))
  in
  let input = Array.init n_in (fun _ -> R.int_in rng 1 60) in
  (net, input)

let arb_deep_seed =
  QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

let prop_deep_backends_agree =
  QCheck.Test.make ~name:"deep/binarized: bnb = explicit = smt" ~count:40
    arb_deep_seed (fun seed ->
      let net, input = deep_net_of_seed seed in
      let label = Nn.Qnet.predict net input in
      List.for_all
        (fun (delta, bias_noise) ->
          let spec = N.symmetric ~delta ~bias_noise in
          let explicit =
            verdict_flips
              (B.exists_flip (B.Explicit { limit = 1_000_000 }) net spec ~input ~label)
          in
          let bnb = verdict_flips (B.exists_flip B.Bnb net spec ~input ~label) in
          let smt = verdict_flips (B.exists_flip B.Smt net spec ~input ~label) in
          explicit = bnb && explicit = smt)
        [ (1, false); (2, true) ])

let test_bnb_midpoint_floor_negative_box () =
  (* Regression: the box midpoint used truncating division, which rounds
     toward zero on negative coordinates — the All_flip witness on this
     all-negative box came back as -2 where floor semantics give -3, and
     splits near the boundary could produce an empty child box. The
     network makes every point of the restricted box [-4,-1] flip (o0 =
     x + d > 0 = o1 while the claimed label is 1), so the verdict is the
     box midpoint itself. *)
  let net =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = [| [| 1 |] |]; bias = [| 0 |]; act = Nn.Qnet.Identity };
        {
          Nn.Qnet.weights = [| [| 1 |]; [| 0 |] |];
          bias = [| 0; 0 |];
          act = Nn.Qnet.Identity;
        };
      |]
  in
  let spec = N.absolute ~delta:4 ~bias_noise:false in
  match
    Fannet.Bnb.exists_flip ~box:[| (-4, -1) |] net spec ~input:[| 10 |] ~label:1
  with
  | Fannet.Bnb.Flip v ->
      Alcotest.(check (array int)) "floor midpoint" [| -3 |] v.N.inputs
  | Fannet.Bnb.Robust | Fannet.Bnb.Unknown _ -> Alcotest.fail "expected a flip"

let prop_interval_sound_wrt_explicit =
  QCheck.Test.make ~name:"interval Robust implies explicit Robust" ~count:100
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      List.for_all
        (fun delta ->
          let spec = N.symmetric ~delta ~bias_noise:false in
          match B.exists_flip B.Interval net spec ~input ~label with
          | B.Robust ->
              not
                (verdict_flips
                   (B.exists_flip (B.Explicit { limit = 1_000_000 }) net spec
                      ~input ~label))
          | B.Unknown _ -> true
          | B.Flip _ -> false (* interval backend never produces witnesses *))
        [ 1; 3 ])

let prop_cascade_agrees_bnb =
  QCheck.Test.make ~name:"cascade(bnb) = bnb on randomized networks" ~count:80
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      List.for_all
        (fun (delta, bias_noise) ->
          let spec = N.symmetric ~delta ~bias_noise in
          verdict_flips (B.exists_flip (B.Cascade B.Bnb) net spec ~input ~label)
          = verdict_flips (B.exists_flip B.Bnb net spec ~input ~label))
        [ (1, false); (2, false); (3, true); (5, false) ])

let test_cascade_stats_accounting () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 5; 9 |]; [| 50; 3 |]; [| 10; 12 |] |]
  in
  B.reset_cascade_stats ();
  let n_queries = ref 0 in
  List.iter
    (fun delta ->
      let spec = N.symmetric ~delta ~bias_noise:false in
      Array.iter
        (fun (input, label) ->
          incr n_queries;
          ignore (B.exists_flip (B.Cascade B.Bnb) net spec ~input ~label))
        inputs)
    [ 1; 10; 30 ];
  let s = B.cascade_stats () in
  Alcotest.(check int) "hits + escalations = queries" !n_queries
    (s.B.interval_hits + s.B.escalations);
  let rate = B.cascade_hit_rate s in
  Alcotest.(check bool) "rate in [0,1]" true (rate >= 0. && rate <= 1.);
  B.reset_cascade_stats ();
  let z = B.cascade_stats () in
  Alcotest.(check int) "reset hits" 0 z.B.interval_hits;
  Alcotest.(check int) "reset escalations" 0 z.B.escalations;
  Alcotest.(check (float 0.)) "empty rate" 0. (B.cascade_hit_rate z)

let test_cascade_stats_snapshot_consistency () =
  (* Regression: the {interval_hits; escalations} pair lives in ONE atomic
     cell. With two separate atomics a reader racing the writer's reset
     could pair hits from one epoch with escalations from another. The
     writer cycles reset -> escalating query -> prefilter-hit query, so
     every consistent snapshot satisfies hits <= escalations; only a torn
     read can show hits > escalations. *)
  let net = tiny_qnet () in
  let input = [| 5; 9 |] in
  let label = Nn.Qnet.predict net input in
  let interval_robust delta =
    let spec = N.symmetric ~delta ~bias_noise:false in
    match B.exists_flip B.Interval net spec ~input ~label with
    | B.Robust -> true
    | B.Unknown _ | B.Flip _ -> false
  in
  (* Pick the deltas from the interval backend's own answers instead of
     baking verdicts into the test. *)
  let hit_delta = List.find_opt interval_robust [ 1; 2; 3 ] in
  let esc_delta = List.find_opt (fun d -> not (interval_robust d)) [ 50; 30; 20; 10 ] in
  match (hit_delta, esc_delta) with
  | Some hit_delta, Some esc_delta ->
      let stop = Atomic.make false in
      let writer =
        Domain.spawn (fun () ->
            let q delta =
              let spec = N.symmetric ~delta ~bias_noise:false in
              ignore (B.exists_flip (B.Cascade B.Bnb) net spec ~input ~label)
            in
            while not (Atomic.get stop) do
              B.reset_cascade_stats ();
              q esc_delta;
              q hit_delta
            done)
      in
      let torn = ref 0 in
      for i = 1 to 50_000 do
        let s = B.cascade_stats () in
        if s.B.interval_hits > s.B.escalations then incr torn;
        if i mod 64 = 0 then Domain.cpu_relax ()
      done;
      Atomic.set stop true;
      Domain.join writer;
      B.reset_cascade_stats ();
      Alcotest.(check int) "no torn snapshots" 0 !torn
  | _ -> Alcotest.fail "no suitable hit/escalation deltas for tiny_qnet"

let prop_incremental_smt_min_flip =
  QCheck.Test.make ~name:"incremental smt min-flip = bnb min-flip" ~count:25
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let max_delta = 5 in
      let at backend =
        Fannet.Tolerance.input_min_flip_delta backend net ~bias_noise:false
          ~max_delta ~input ~label
      in
      let reference = at B.Bnb in
      at B.Smt = reference && at (B.Cascade B.Smt) = reference)

let prop_bnb_enumerate_equals_explicit =
  QCheck.Test.make ~name:"bnb enumeration = brute-force flip set" ~count:60 arb_qnet
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:false in
      let bnb, status = Fannet.Bnb.enumerate_flips ~limit:100_000 net spec ~input ~label in
      let explicit =
        Fannet.Extract.explicit_for_input net spec ~input ~label ~input_index:0
          ~limit:1_000_000
        |> List.map (fun (c : Fannet.Extract.counterexample) -> c.vector)
      in
      status = `Complete
      && List.sort N.compare bnb = List.sort N.compare explicit)

let prop_bnb_count_equals_enumeration =
  QCheck.Test.make ~name:"count_flips = |enumerate_flips|" ~count:60 arb_qnet
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:true in
      let vectors, st1 = Fannet.Bnb.enumerate_flips ~limit:1_000_000 net spec ~input ~label in
      let count, st2 = Fannet.Bnb.count_flips ~limit:1_000_000 net spec ~input ~label in
      st1 = `Complete && st2 = `Complete && count = List.length vectors)

let prop_smt_extract_equals_explicit =
  QCheck.Test.make ~name:"smt P3 loop = brute-force flip set" ~count:25 arb_qnet
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:1 ~bias_noise:false in
      let smt, status =
        Fannet.Extract.smt_for_input ~limit:100_000 net spec ~input ~label ~input_index:0
      in
      let explicit =
        Fannet.Extract.explicit_for_input net spec ~input ~label ~input_index:0
          ~limit:1_000_000
      in
      let vectors l = List.sort N.compare (List.map (fun (c : Fannet.Extract.counterexample) -> c.vector) l) in
      status = Fannet.Extract.Complete && vectors smt = vectors explicit)

let prop_bnb_box_restriction =
  QCheck.Test.make ~name:"box-restricted query = filtered brute force" ~count:60
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:false in
      let n = Array.length input in
      (* Restrict node 1 (dim 0) to positive noise only. *)
      let box = Array.init n (fun d -> if d = 0 then (1, 2) else (-2, 2)) in
      let expected =
        Fannet.Extract.explicit_for_input net spec ~input ~label ~input_index:0
          ~limit:1_000_000
        |> List.exists (fun (c : Fannet.Extract.counterexample) ->
               c.vector.N.inputs.(0) >= 1)
      in
      let got =
        match Fannet.Bnb.exists_flip ~box net spec ~input ~label with
        | Fannet.Bnb.Flip v -> v.N.inputs.(0) >= 1
        | Fannet.Bnb.Robust -> false
        | Fannet.Bnb.Unknown _ -> assert false (* no budget on this path *)
      in
      got = expected)

(* Random 3-class network generator. *)
let qnet3_gen =
  let open QCheck.Gen in
  let* n_in = int_range 2 3 in
  let* n_hidden = int_range 2 4 in
  let weight = int_range (-8) 8 in
  let* w1 = array_size (return n_hidden) (array_size (return n_in) weight) in
  let* b1 = array_size (return n_hidden) (int_range (-30) 30) in
  let* w2 = array_size (return 3) (array_size (return n_hidden) weight) in
  let* b2 = array_size (return 3) (int_range (-10) 10) in
  let* input = array_size (return n_in) (int_range 1 60) in
  let net =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = w1; bias = b1; act = Nn.Qnet.Relu };
        { Nn.Qnet.weights = w2; bias = b2; act = Nn.Qnet.Identity };
      |]
  in
  return (net, input)

let arb_qnet3 =
  QCheck.make
    ~print:(fun ((net : Nn.Qnet.t), input) ->
      Printf.sprintf "net %dx%d input [%s]" (Nn.Qnet.in_dim net)
        (Nn.Qnet.out_dim net)
        (String.concat ";" (Array.to_list (Array.map string_of_int input))))
    qnet3_gen

let prop_multiclass_bnb_agrees_with_explicit =
  QCheck.Test.make ~name:"3-class bnb = explicit" ~count:60 arb_qnet3
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      List.for_all
        (fun (delta, bias_noise) ->
          let spec = N.symmetric ~delta ~bias_noise in
          let explicit =
            verdict_flips
              (B.exists_flip (B.Explicit { limit = 1_000_000 }) net spec ~input ~label)
          in
          let bnb = verdict_flips (B.exists_flip B.Bnb net spec ~input ~label) in
          explicit = bnb)
        [ (1, false); (2, false); (3, true) ])

let prop_multiclass_enumeration_agrees =
  QCheck.Test.make ~name:"3-class bnb enumeration = brute force" ~count:40
    arb_qnet3 (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:false in
      let bnb, st = Fannet.Bnb.enumerate_flips ~limit:1_000_000 net spec ~input ~label in
      let explicit =
        Fannet.Extract.explicit_for_input net spec ~input ~label ~input_index:0
          ~limit:1_000_000
        |> List.map (fun (c : Fannet.Extract.counterexample) -> c.vector)
      in
      st = `Complete && List.sort N.compare bnb = List.sort N.compare explicit)

let prop_absolute_noise_backends_agree =
  QCheck.Test.make ~name:"absolute-noise bnb = explicit = smt" ~count:50 arb_qnet
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      List.for_all
        (fun (delta, bias_noise) ->
          let spec = N.absolute ~delta ~bias_noise in
          let explicit =
            verdict_flips
              (B.exists_flip (B.Explicit { limit = 1_000_000 }) net spec ~input ~label)
          in
          let bnb = verdict_flips (B.exists_flip B.Bnb net spec ~input ~label) in
          let smt = verdict_flips (B.exists_flip B.Smt net spec ~input ~label) in
          explicit = bnb && explicit = smt)
        [ (2, false); (3, true) ])

let prop_absolute_encode_matches_concrete =
  QCheck.Test.make ~name:"absolute-noise encoding equals concrete forward"
    ~count:100 arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let spec = N.absolute ~delta:9 ~bias_noise:true in
      let enc = Fannet.Encode.encode net ~input spec in
      let rng = Util.Rng.create 31 in
      let ok = ref true in
      for _ = 1 to 10 do
        let v =
          {
            N.bias = Util.Rng.int_in rng (-9) 9;
            inputs = Array.init (Array.length input) (fun _ -> Util.Rng.int_in rng (-9) 9);
          }
        in
        let asg = assignment_of_vector enc v in
        let symbolic = Array.map (Smtlite.Term.eval_term asg) enc.Fannet.Encode.outputs in
        if symbolic <> N.apply net spec ~input v then ok := false
      done;
      !ok)

let prop_min_l1_flip_optimal =
  QCheck.Test.make ~name:"min_l1_flip finds the cheapest adversarial vector"
    ~count:40 arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:false in
      let all_flips =
        Fannet.Extract.explicit_for_input net spec ~input ~label ~input_index:0
          ~limit:1_000_000
      in
      let l1 (v : N.vector) =
        abs v.N.bias + Array.fold_left (fun a d -> a + abs d) 0 v.N.inputs
      in
      match Fannet.Bnb.min_l1_flip net spec ~input ~label with
      | None -> all_flips = []
      | Some (v, norm) ->
          norm = l1 v
          && N.predict net spec ~input v <> label
          && all_flips <> []
          && List.for_all
               (fun (c : Fannet.Extract.counterexample) -> l1 c.vector >= norm)
               all_flips)

let test_mc_pipeline_runs () =
  let m = Fannet.Mc_pipeline.run () in
  Alcotest.(check int) "3 outputs" 3 (Nn.Qnet.out_dim m.qnet);
  Alcotest.(check int) "6 inputs" 6 (Nn.Qnet.in_dim m.qnet);
  Alcotest.(check bool) "trains" true (m.train_accuracy >= 0.9);
  Alcotest.(check int) "analysis = p1 correct"
    m.p1.Fannet.Validate.n_correct
    (Array.length (Fannet.Mc_pipeline.analysis_inputs m));
  (* Labels of the training set span the three classes. *)
  let labels = Fannet.Mc_pipeline.training_labels m in
  let distinct = List.sort_uniq compare (Array.to_list labels) in
  Alcotest.(check (list int)) "three classes" [ 0; 1; 2 ] distinct

(* ---------- tolerance / boundary ---------- *)

let prop_min_flip_delta_is_threshold =
  QCheck.Test.make ~name:"min flip delta is the exact flip threshold" ~count:40
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let max_delta = 6 in
      let explicit_flips delta =
        verdict_flips
          (B.exists_flip (B.Explicit { limit = 10_000_000 }) net
             (N.symmetric ~delta ~bias_noise:false) ~input ~label)
      in
      match
        Fannet.Tolerance.input_min_flip_delta B.Bnb net ~bias_noise:false
          ~max_delta ~input ~label
      with
      | None -> not (explicit_flips max_delta)
      | Some d -> explicit_flips d && (d = 0 || not (explicit_flips (d - 1))))

let test_network_tolerance_tiny () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 5; 9 |]; [| 50; 3 |]; [| 10; 12 |] |]
  in
  let tol = Fannet.Tolerance.network_tolerance B.Bnb net ~bias_noise:false ~max_delta:30 ~inputs in
  (* Consistency: no input flips at the tolerance, some flips at tol+1
     (unless everything is robust up to the probe). *)
  Alcotest.(check bool) "tolerance in range" true (tol >= 0 && tol <= 30);
  Array.iter
    (fun (input, label) ->
      if tol < 30 then begin
        let spec = N.symmetric ~delta:tol ~bias_noise:false in
        match B.exists_flip B.Bnb net spec ~input ~label with
        | B.Robust -> ()
        | B.Flip _ | B.Unknown _ -> Alcotest.fail "flip at or below tolerance"
      end)
    inputs;
  if tol < 30 then begin
    let spec = N.symmetric ~delta:(tol + 1) ~bias_noise:false in
    let any_flip =
      Array.exists
        (fun (input, label) ->
          match B.exists_flip B.Bnb net spec ~input ~label with
          | B.Flip _ -> true
          | B.Robust -> false
          | B.Unknown _ -> false)
        inputs
    in
    Alcotest.(check bool) "some flip just above tolerance" true any_flip
  end

let test_tolerance_jobs_deterministic () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x))
      [| [| 5; 9 |]; [| 50; 3 |]; [| 10; 12 |]; [| 2; 40 |]; [| 33; 21 |] |]
  in
  let mis jobs =
    Fannet.Tolerance.misclassified_at ~jobs B.Bnb net ~bias_noise:false
      ~delta:20 ~inputs
  in
  let tol jobs =
    Fannet.Tolerance.network_tolerance ~jobs B.Bnb net ~bias_noise:false
      ~max_delta:30 ~inputs
  in
  let mis1 = mis 1 and tol1 = tol 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "misclassified_at jobs=%d" jobs)
        true (mis jobs = mis1);
      Alcotest.(check int) (Printf.sprintf "tolerance jobs=%d" jobs) tol1 (tol jobs))
    [ 2; 4 ]

let prop_paper_iterative_equals_binary =
  QCheck.Test.make ~name:"paper-iterative tolerance = binary-search tolerance"
    ~count:30 arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let inputs = [| (input, label) |] in
      let t1 =
        Fannet.Tolerance.network_tolerance B.Bnb net ~bias_noise:false
          ~max_delta:8 ~inputs
      in
      let t2 =
        Fannet.Tolerance.paper_iterative_tolerance B.Bnb net ~bias_noise:false
          ~max_delta:8 ~inputs
      in
      t1 = t2)

let test_single_node_tolerance () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 10; 12 |]; [| 5; 9 |] |]
  in
  let spec = N.symmetric ~delta:40 ~bias_noise:false in
  for node = 1 to 2 do
    match Fannet.Sensitivity.single_node_tolerance net spec ~inputs ~node with
    | None ->
        (* Even full one-sided range is safe: verify with a box query. *)
        let box d = Array.init 2 (fun k -> if k = node - 1 then (-d, d) else (0, 0)) in
        Array.iter
          (fun (input, label) ->
            match Fannet.Bnb.exists_flip ~box:(box 40) net spec ~input ~label with
            | Fannet.Bnb.Robust -> ()
            | Fannet.Bnb.Unknown _ -> assert false (* no budget on this path *)
            | Fannet.Bnb.Flip _ -> Alcotest.fail "None but a flip exists")
          inputs
    | Some d ->
        Alcotest.(check bool) "within range" true (d >= 0 && d < 40);
        (* No flip when only this node is perturbed up to d... *)
        let box dd = Array.init 2 (fun k -> if k = node - 1 then (-dd, dd) else (0, 0)) in
        Array.iter
          (fun (input, label) ->
            match Fannet.Bnb.exists_flip ~box:(box d) net spec ~input ~label with
            | Fannet.Bnb.Robust -> ()
            | Fannet.Bnb.Unknown _ -> assert false (* no budget on this path *)
            | Fannet.Bnb.Flip _ -> Alcotest.fail "flip at claimed-safe range")
          inputs;
        (* ... and some flip at d+1. *)
        let flips =
          Array.exists
            (fun (input, label) ->
              match Fannet.Bnb.exists_flip ~box:(box (d + 1)) net spec ~input ~label with
              | Fannet.Bnb.Flip _ -> true
              | Fannet.Bnb.Robust -> false
              | Fannet.Bnb.Unknown _ -> assert false (* no budget on this path *))
            inputs
        in
        Alcotest.(check bool) "flip just above" true flips
  done

let test_certified_accuracy () =
  let net = tiny_qnet () in
  (* Mix of a correct robust input, a correct fragile one and a planted
     wrong label. *)
  let x1 = [| 50; 3 |] and x2 = [| 10; 12 |] in
  let inputs =
    [|
      (x1, Nn.Qnet.predict net x1);
      (x2, Nn.Qnet.predict net x2);
      (x1, 1 - Nn.Qnet.predict net x1);
    |]
  in
  (* At delta 0 only correctness matters: 2/3. *)
  Alcotest.(check (float 1e-9)) "delta 0" (2. /. 3.)
    (Fannet.Tolerance.certified_accuracy B.Bnb net ~bias_noise:false ~delta:0 ~inputs);
  (* Certified accuracy is non-increasing in delta and bounded by plain
     accuracy. *)
  let prev = ref 1.1 in
  List.iter
    (fun delta ->
      let c =
        Fannet.Tolerance.certified_accuracy B.Bnb net ~bias_noise:false ~delta ~inputs
      in
      Alcotest.(check bool) "non-increasing" true (c <= !prev +. 1e-9);
      prev := c)
    [ 0; 5; 10; 20; 40 ]

let test_sweep_monotone () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 5; 9 |]; [| 50; 3 |]; [| 10; 12 |]; [| 3; 4 |] |]
  in
  let sweep =
    Fannet.Tolerance.sweep B.Bnb net ~bias_noise:false ~deltas:[ 2; 5; 10; 20; 30 ] ~inputs
  in
  let counts = List.map (fun (p : Fannet.Tolerance.sweep_point) -> p.n_misclassified) sweep in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "counts non-decreasing" true (monotone counts)

let test_boundary_analysis () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 5; 9 |]; [| 50; 3 |]; [| 10; 12 |] |]
  in
  let points = Fannet.Boundary.analyze B.Bnb net ~bias_noise:false ~max_delta:20 ~inputs in
  Alcotest.(check int) "one point per input" 3 (Array.length points);
  let near = Fannet.Boundary.near_boundary points ~threshold:20 in
  let robust = Fannet.Boundary.robust_at_probe points in
  Alcotest.(check int) "partition" 3 (Array.length near + Array.length robust);
  Array.iter
    (fun (p : Fannet.Boundary.point) ->
      Alcotest.(check bool) "margin non-negative for correct inputs" true (p.margin >= 0))
    points

let test_boundary_never_flips () =
  (* A network with an overwhelming margin: the hidden unit feeds class 0
     with weight +100 and class 1 with -100, so no +-50% input noise can
     flip it. Every point must be robust at the probe, the near-boundary
     set empty, and the margin/flip correlation has nothing to correlate. *)
  let net =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = [| [| 1 |] |]; bias = [| 0 |]; act = Nn.Qnet.Relu };
        { Nn.Qnet.weights = [| [| 100 |]; [| -100 |] |]; bias = [| 0; 0 |]; act = Nn.Qnet.Identity };
      |]
  in
  let inputs = Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 40 |]; [| 60 |] |] in
  let points = Fannet.Boundary.analyze B.Bnb net ~bias_noise:false ~max_delta:50 ~inputs in
  Array.iter
    (fun (p : Fannet.Boundary.point) ->
      Alcotest.(check bool) "never flips" true (p.min_flip_delta = None);
      Alcotest.(check bool) "large positive margin" true (p.margin > 0))
    points;
  Alcotest.(check int) "all robust at probe" 2
    (Array.length (Fannet.Boundary.robust_at_probe points));
  Alcotest.(check int) "none near boundary" 0
    (Array.length (Fannet.Boundary.near_boundary points ~threshold:50));
  Alcotest.(check (float 0.)) "correlation defined as 0 without data" 0.
    (Fannet.Boundary.margin_flip_correlation points)

(* ---------- bias & sensitivity ---------- *)

let mk_cex input_index true_label predicted vector =
  { Fannet.Extract.input_index; true_label; predicted; vector }

let test_bias_analyze () =
  let v = { N.bias = 0; inputs = [| 1; 0 |] } in
  let cexs =
    [ mk_cex 0 0 1 v; mk_cex 0 0 1 v; mk_cex 1 0 1 v; mk_cex 2 1 0 v ]
  in
  let r =
    Fannet.Bias.analyze ~n_classes:2
      ~training_labels:[| 1; 1; 1; 1; 1; 1; 1; 0; 0; 0 |]
      ~analysed_labels:[| 0; 0; 1; 1; 1; 1 |]
      cexs
  in
  Alcotest.(check int) "majority class" 1 r.majority_class;
  Alcotest.(check (float 1e-9)) "training share" 0.7 r.training_share.(1);
  Alcotest.(check int) "flips from L0" 3 r.flips_from.(0);
  Alcotest.(check int) "flips from L1" 1 r.flips_from.(1);
  Alcotest.(check int) "distinct L0 inputs" 2 r.inputs_flipped_from.(0);
  Alcotest.(check (float 1e-9)) "rate L0" 1.0 r.flip_rate.(0);
  Alcotest.(check (float 1e-9)) "rate L1" 0.25 r.flip_rate.(1);
  Alcotest.(check bool) "consistent" true r.consistent_with_bias;
  match r.directions with
  | { from_label = 0; to_label = 1; count = 3 } :: _ -> ()
  | _ -> Alcotest.fail "dominant direction"

let test_bias_inconsistent () =
  let v = { N.bias = 0; inputs = [| 1 |] } in
  let r =
    Fannet.Bias.analyze ~n_classes:2 ~training_labels:[| 1; 1; 1; 0 |]
      ~analysed_labels:[| 0; 1 |]
      [ mk_cex 0 1 0 v ]
  in
  Alcotest.(check bool) "not consistent" false r.consistent_with_bias

let test_bias_empty_corpus () =
  (* No counterexamples at all: every counter is zero and the paper's
     bias claim must be reported as unsupported, not vacuously true. *)
  let r =
    Fannet.Bias.analyze ~n_classes:2 ~training_labels:[| 1; 1; 0 |]
      ~analysed_labels:[| 0; 1 |] []
  in
  Alcotest.(check bool) "no directions" true (r.directions = []);
  Alcotest.(check int) "no flips L0" 0 r.flips_from.(0);
  Alcotest.(check int) "no flips L1" 0 r.flips_from.(1);
  Alcotest.(check (float 0.)) "rate L0" 0. r.flip_rate.(0);
  Alcotest.(check (float 0.)) "rate L1" 0. r.flip_rate.(1);
  Alcotest.(check bool) "not consistent" false r.consistent_with_bias

let test_bias_all_same_label () =
  (* Every counterexample flips out of the majority class: the minority
     rate (zero) cannot exceed the majority's, so the bias claim fails
     even on a non-empty corpus. *)
  let v = { N.bias = 0; inputs = [| 1 |] } in
  let cexs = [ mk_cex 0 1 0 v; mk_cex 1 1 0 v; mk_cex 1 1 0 v ] in
  let r =
    Fannet.Bias.analyze ~n_classes:2 ~training_labels:[| 1; 1; 1; 0 |]
      ~analysed_labels:[| 1; 1; 0 |] cexs
  in
  Alcotest.(check int) "flips from L1" 3 r.flips_from.(1);
  Alcotest.(check int) "no flips from L0" 0 r.flips_from.(0);
  Alcotest.(check int) "distinct L1 inputs" 2 r.inputs_flipped_from.(1);
  (match r.directions with
  | [ { Fannet.Bias.from_label = 1; to_label = 0; count = 3 } ] -> ()
  | _ -> Alcotest.fail "expected the single L1 -> L0 direction");
  Alcotest.(check bool) "not consistent" false r.consistent_with_bias

let test_sensitivity_per_node () =
  let spec = N.symmetric ~delta:10 ~bias_noise:true in
  let cexs =
    [
      mk_cex 0 0 1 { N.bias = 2; inputs = [| -3; 0 |] };
      mk_cex 0 0 1 { N.bias = 5; inputs = [| -1; 0 |] };
      mk_cex 1 0 1 { N.bias = 1; inputs = [| -2; 0 |] };
    ]
  in
  let stats = Fannet.Sensitivity.per_node spec ~n_inputs:2 cexs in
  Alcotest.(check int) "3 nodes (bias + 2)" 3 (Array.length stats);
  let bias_stats = stats.(0) and n1 = stats.(1) and n2 = stats.(2) in
  Alcotest.(check bool) "bias never negative" true
    (Fannet.Sensitivity.sidedness bias_stats = Fannet.Sensitivity.Never_negative);
  Alcotest.(check bool) "n1 never positive" true
    (Fannet.Sensitivity.sidedness n1 = Fannet.Sensitivity.Never_positive);
  Alcotest.(check bool) "n2 no data" true
    (Fannet.Sensitivity.sidedness n2 = Fannet.Sensitivity.No_data);
  Alcotest.(check int) "most sensitive" 0 (Fannet.Sensitivity.most_sensitive stats);
  Alcotest.(check (float 1e-9)) "mean of n1" (-2.) n1.mean_noise

let prop_formal_sidedness_matches_explicit =
  QCheck.Test.make ~name:"formal sidedness = sidedness of full flip set" ~count:40
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:false in
      let inputs = [| (input, label) |] in
      let sides = Fannet.Sensitivity.formal_sidedness net spec ~inputs in
      let all_flips =
        Fannet.Extract.explicit_for_input net spec ~input ~label ~input_index:0
          ~limit:1_000_000
      in
      Array.for_all
        (fun (f : Fannet.Sensitivity.formal_side) ->
          let values =
            List.map
              (fun (c : Fannet.Extract.counterexample) ->
                c.vector.N.inputs.(f.fs_node - 1))
              all_flips
          in
          f.positive_flip = List.exists (fun v -> v > 0) values
          && f.negative_flip = List.exists (fun v -> v < 0) values)
        sides)

(* ---------- extraction / baseline ---------- *)

let test_extract_for_inputs_aggregates () =
  let net = tiny_qnet () in
  let inputs =
    Array.map (fun x -> (x, Nn.Qnet.predict net x)) [| [| 5; 9 |]; [| 3; 4 |] |]
  in
  let spec = N.symmetric ~delta:10 ~bias_noise:false in
  let cexs, _ = Fannet.Extract.for_inputs ~limit_per_input:50 net spec ~inputs in
  List.iter
    (fun (c : Fannet.Extract.counterexample) ->
      Alcotest.(check bool) "valid index" true (c.input_index = 0 || c.input_index = 1);
      let input = fst inputs.(c.input_index) in
      Alcotest.(check int) "recorded prediction is the noisy one" c.predicted
        (N.predict net spec ~input c.vector);
      Alcotest.(check bool) "actually flips" true (c.predicted <> c.true_label))
    cexs

let test_baseline_budget_and_validity () =
  let net = tiny_qnet () in
  let input = [| 5; 9 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:40 ~bias_noise:false in
  let rng = Util.Rng.create 9 in
  let r = Fannet.Baseline.random_search ~rng net spec ~input ~label ~budget:500 in
  Alcotest.(check int) "budget recorded" 500 r.budget;
  List.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (N.in_range spec v);
      Alcotest.(check bool) "flips" true (N.predict net spec ~input v <> label))
    r.found;
  (match r.first_found_at with
  | Some k -> Alcotest.(check bool) "first within budget" true (k >= 1 && k <= 500)
  | None -> Alcotest.(check int) "none found -> empty" 0 (List.length r.found));
  Alcotest.(check bool) "success rate sane" true
    (Fannet.Baseline.success_rate r >= 0. && Fannet.Baseline.success_rate r <= 1.)

let test_baseline_agrees_with_formal_absence () =
  (* Where Bnb proves robustness, random search must find nothing. *)
  let net = tiny_qnet () in
  let input = [| 50; 3 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:3 ~bias_noise:false in
  (match B.exists_flip B.Bnb net spec ~input ~label with
  | B.Robust ->
      let rng = Util.Rng.create 11 in
      let r = Fannet.Baseline.random_search ~rng net spec ~input ~label ~budget:2000 in
      Alcotest.(check int) "no flips found" 0 (List.length r.found)
  | B.Flip _ | B.Unknown _ -> ())
  [@warning "-4"]

(* ---------- validate / pipeline ---------- *)

let test_validate_p1 () =
  let net = tiny_qnet () in
  let inputs =
    [|
      ([| 5; 9 |], Nn.Qnet.predict net [| 5; 9 |]);
      ([| 50; 3 |], 1 - Nn.Qnet.predict net [| 50; 3 |]);  (* planted error *)
    |]
  in
  let r = Fannet.Validate.p1 net ~inputs in
  Alcotest.(check int) "total" 2 r.n_total;
  Alcotest.(check int) "correct" 1 r.n_correct;
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 r.accuracy;
  (match r.mismatches with
  | [ (1, _) ] -> ()
  | _ -> Alcotest.fail "mismatch index");
  Alcotest.(check int) "correct subset size" 1 (Array.length r.correct)

let test_validate_of_samples () =
  let samples =
    [|
      { Dataset.Sample.features = [| 10; 20; 30 |]; label = Dataset.Sample.L1 };
      { Dataset.Sample.features = [| 1; 2; 3 |]; label = Dataset.Sample.L0 };
    |]
  in
  let labelled = Fannet.Validate.of_samples samples ~genes:[| 2; 0 |] in
  Alcotest.(check (array int)) "projection" [| 30; 10 |] (fst labelled.(0));
  Alcotest.(check int) "label int" 1 (snd labelled.(0));
  Alcotest.(check int) "label int 2" 0 (snd labelled.(1))

let test_pipeline_fast_config () =
  let p = Fannet.Pipeline.run ~config:Fannet.Pipeline.fast_config () in
  Alcotest.(check int) "selected 5 genes" 5 (Array.length p.selected_genes);
  Alcotest.(check int) "qnet inputs" 5 (Nn.Qnet.in_dim p.qnet);
  Alcotest.(check int) "qnet outputs" 2 (Nn.Qnet.out_dim p.qnet);
  Alcotest.(check bool) "training accuracy high" true (p.train_accuracy >= 0.9);
  Alcotest.(check int) "p1 totals" (Array.length p.test_inputs) p.p1.n_total;
  Alcotest.(check int) "analysis = correct inputs"
    p.p1.n_correct
    (Array.length (Fannet.Pipeline.analysis_inputs p));
  Alcotest.(check int) "training labels count" (Array.length p.train_inputs)
    (Array.length (Fannet.Pipeline.training_labels p))

let test_pipeline_deterministic () =
  let p1 = Fannet.Pipeline.run ~config:Fannet.Pipeline.fast_config () in
  let p2 = Fannet.Pipeline.run ~config:Fannet.Pipeline.fast_config () in
  Alcotest.(check bool) "same selected genes" true (p1.selected_genes = p2.selected_genes);
  Alcotest.(check bool) "same quantized network" true (Nn.Qnet.equal p1.qnet p2.qnet)

(* ---------- portfolio & warm sessions ---------- *)

let test_portfolio_matches_single_solver () =
  (* Every member is complete, so the portfolio's decision class must
     equal the single-solver Smt backend's for every width and with or
     without clause sharing; decided verdicts carry a winning seed. *)
  let net = tiny_qnet () in
  let input = [| 5; 3 |] in
  let label = Nn.Qnet.predict net input in
  List.iter
    (fun delta ->
      let spec = N.symmetric ~delta ~bias_noise:false in
      let single = B.exists_flip B.Smt net spec ~input ~label in
      List.iter
        (fun width ->
          List.iter
            (fun share ->
              let v, seed =
                Fannet.Portfolio.exists_flip ~width ~share net spec ~input ~label
              in
              Alcotest.(check bool)
                (Printf.sprintf "agree delta=%d width=%d share=%b" delta width
                   share)
                true (B.agree single v);
              Alcotest.(check bool) "decided verdict has a winning seed" true
                (seed <> None))
            [ true; false ])
        [ 1; 2; 3 ])
    [ 0; 2; 6 ]

let prop_portfolio_agrees_with_smt =
  QCheck.Test.make ~name:"portfolio verdict class = single-solver smt" ~count:12
    arb_qnet (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:3 ~bias_noise:false in
      let single = B.exists_flip B.Smt net spec ~input ~label in
      let v, seed = Fannet.Portfolio.exists_flip ~width:3 net spec ~input ~label in
      B.agree single v
      && seed <> None
      && match v with
         | B.Flip w ->
             N.in_range spec w && N.predict net spec ~input w <> label
         | B.Robust -> true
         | B.Unknown _ -> false)

let test_portfolio_certified_winner_checks () =
  (* The portfolio winner's DRUP trace / model certificate must pass the
     independent checker, on both a robust and a flipping bracket. *)
  let net = tiny_qnet () in
  let input = [| 5; 3 |] in
  let label = Nn.Qnet.predict net input in
  let check_at delta =
    let spec = N.symmetric ~delta ~bias_noise:false in
    let cv, seed =
      Fannet.Portfolio.certified_exists_flip ~width:3 net spec ~input ~label
    in
    (match cv.B.cv_verdict with
    | B.Unknown _ -> Alcotest.fail "unbudgeted portfolio answered unknown"
    | B.Robust | B.Flip _ ->
        Alcotest.(check bool) "winner seed" true (seed <> None);
        Alcotest.(check bool) "certificate present" true (cv.B.cv_cert <> None));
    match B.check_certified net spec ~input ~label cv with
    | Ok () -> ()
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "winning certificate rejected at delta %d: %s" delta e)
  in
  (* Delta 0 is provably robust (the input is correctly classified); a
     wide range flips if anything does. *)
  check_at 0;
  check_at 8

let test_portfolio_cancelled_then_reusable () =
  let net = tiny_qnet () in
  let input = [| 5; 3 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:4 ~bias_noise:false in
  (* A pre-cancelled caller budget stops every member before it decides. *)
  let tok = Resil.Budget.token () in
  let budget = Resil.Budget.create ~token:tok () in
  Resil.Budget.cancel tok;
  let v, seed = Fannet.Portfolio.exists_flip ~budget ~width:2 net spec ~input ~label in
  (match v with
  | B.Unknown Resil.Budget.Cancelled -> ()
  | v -> Alcotest.fail ("expected cancelled, got " ^ B.verdict_to_string v));
  Alcotest.(check bool) "no winner when cancelled" true (seed = None);
  (* The same query with a live budget decides: cancellation poisoned
     nothing process-wide. *)
  let tok2 = Resil.Budget.token () in
  let budget2 = Resil.Budget.create ~token:tok2 () in
  let v2, _ = Fannet.Portfolio.exists_flip ~budget:budget2 ~width:2 net spec ~input ~label in
  (match v2 with
  | B.Robust | B.Flip _ -> ()
  | B.Unknown _ -> Alcotest.fail "fresh-budget portfolio failed to decide");
  (* The winner cancels the losers through child tokens only: the
     caller's own token must not have fired. *)
  Alcotest.(check bool) "caller token untouched by the win" false
    (Resil.Budget.cancelled tok2)

let test_warm_pool_reuse () =
  (* One binary search = one encoding; a repeated identical search = zero
     encodings. *)
  let net = tiny_qnet () in
  let input = [| 5; 3 |] in
  let label = Nn.Qnet.predict net input in
  Fannet.Warm.reset ();
  let m0 = Fannet.Warm.misses () in
  let r1 =
    Fannet.Tolerance.input_min_flip_delta B.Smt net ~bias_noise:false
      ~max_delta:6 ~input ~label
  in
  Alcotest.(check int) "first search encodes exactly once" 1
    (Fannet.Warm.misses () - m0);
  let h0 = Fannet.Warm.hits () in
  let r2 =
    Fannet.Tolerance.input_min_flip_delta B.Smt net ~bias_noise:false
      ~max_delta:6 ~input ~label
  in
  Alcotest.(check int) "repeat search encodes nothing" 1
    (Fannet.Warm.misses () - m0);
  Alcotest.(check bool) "repeat search hits the pool" true
    (Fannet.Warm.hits () > h0);
  Alcotest.(check bool) "same answer from the warm session" true (r1 = r2)

let test_warm_cancelled_probe_leaves_session_reusable () =
  (* A cancelled probe must leave the pooled session answering correctly
     — the portfolio and budgeted sweeps rely on it.  The cover must be
     wide enough to flip: a robust cover makes the session's base formula
     level-0 unsat, and the solver then answers (soundly) before it ever
     consults the budget, so no cancellation would be observable. *)
  let net = tiny_qnet () in
  let input = [| 5; 3 |] in
  let label = Nn.Qnet.predict net input in
  let cover = 30 in
  Fannet.Warm.reset ();
  (match
     Fannet.Warm.probe_delta net ~bias_noise:false ~cover ~delta:cover ~input
       ~label
   with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "cover chosen for this test must flip"
  | Error _ -> Alcotest.fail "cold probe failed");
  let tok = Resil.Budget.token () in
  let budget = Resil.Budget.create ~token:tok () in
  Resil.Budget.cancel tok;
  (match
     Fannet.Warm.probe_delta ~budget net ~bias_noise:false ~cover ~delta:4
       ~input ~label
   with
  | Error Resil.Budget.Cancelled -> ()
  | Error r ->
      Alcotest.fail ("expected cancelled, got " ^ Resil.Budget.reason_to_string r)
  | Ok _ -> Alcotest.fail "cancelled probe decided");
  let m0 = Fannet.Warm.misses () in
  (match
     Fannet.Warm.probe_delta net ~bias_noise:false ~cover ~delta:4 ~input ~label
   with
  | Ok b ->
      (* ±4 is robust for this net/input (the explicit backends agree). *)
      Alcotest.(check bool) "fresh probe decides after cancellation" false b
  | Error _ -> Alcotest.fail "reused session failed");
  Alcotest.(check int) "reuse, not re-encode" 0 (Fannet.Warm.misses () - m0)

let prop_sensitivity_engines_agree =
  QCheck.Test.make ~name:"sidedness: smt engine = bnb engine" ~count:15 arb_qnet
    (fun ((net : Nn.Qnet.t), input) ->
      let label = Nn.Qnet.predict net input in
      let spec = N.symmetric ~delta:2 ~bias_noise:false in
      let inputs = [| (input, label) |] in
      Fannet.Sensitivity.formal_sidedness ~engine:Fannet.Sensitivity.Bnb net
        spec ~inputs
      = Fannet.Sensitivity.formal_sidedness ~engine:Fannet.Sensitivity.Smt net
          spec ~inputs)

let () =
  Alcotest.run "fannet"
    [
      ( "noise",
        [
          Alcotest.test_case "symmetric spec" `Quick test_spec_symmetric;
          Alcotest.test_case "spec size" `Quick test_spec_size;
          Alcotest.test_case "in_range" `Quick test_in_range;
          Alcotest.test_case "zero noise scales" `Quick test_apply_zero_noise_scales;
          Alcotest.test_case "hand computed" `Quick test_apply_hand_computed;
          Alcotest.test_case "iter_vectors complete" `Quick test_iter_vectors_complete;
          Alcotest.test_case "compare/hash" `Quick test_noise_compare_hash;
        ] );
      ( "encode",
        [
          QCheck_alcotest.to_alcotest prop_encode_matches_concrete;
          QCheck_alcotest.to_alcotest prop_misclassified_formula_semantics;
        ] );
      ( "backends",
        [
          QCheck_alcotest.to_alcotest prop_backends_agree;
          QCheck_alcotest.to_alcotest prop_deep_backends_agree;
          Alcotest.test_case "midpoint floors on negative boxes" `Quick
            test_bnb_midpoint_floor_negative_box;
          QCheck_alcotest.to_alcotest prop_interval_sound_wrt_explicit;
          QCheck_alcotest.to_alcotest prop_cascade_agrees_bnb;
          Alcotest.test_case "cascade stats" `Quick test_cascade_stats_accounting;
          Alcotest.test_case "cascade stats snapshot consistency" `Quick
            test_cascade_stats_snapshot_consistency;
          QCheck_alcotest.to_alcotest prop_bnb_enumerate_equals_explicit;
          QCheck_alcotest.to_alcotest prop_bnb_count_equals_enumeration;
          QCheck_alcotest.to_alcotest prop_smt_extract_equals_explicit;
          QCheck_alcotest.to_alcotest prop_bnb_box_restriction;
          QCheck_alcotest.to_alcotest prop_multiclass_bnb_agrees_with_explicit;
          QCheck_alcotest.to_alcotest prop_multiclass_enumeration_agrees;
          QCheck_alcotest.to_alcotest prop_absolute_noise_backends_agree;
          QCheck_alcotest.to_alcotest prop_absolute_encode_matches_concrete;
          QCheck_alcotest.to_alcotest prop_min_l1_flip_optimal;
        ] );
      ( "tolerance",
        [
          QCheck_alcotest.to_alcotest prop_min_flip_delta_is_threshold;
          QCheck_alcotest.to_alcotest prop_paper_iterative_equals_binary;
          QCheck_alcotest.to_alcotest prop_incremental_smt_min_flip;
          Alcotest.test_case "jobs-deterministic" `Quick test_tolerance_jobs_deterministic;
          Alcotest.test_case "network tolerance" `Quick test_network_tolerance_tiny;
          Alcotest.test_case "single-node tolerance" `Quick test_single_node_tolerance;
          Alcotest.test_case "sweep monotone" `Quick test_sweep_monotone;
          Alcotest.test_case "certified accuracy" `Quick test_certified_accuracy;
          Alcotest.test_case "boundary analysis" `Quick test_boundary_analysis;
          Alcotest.test_case "boundary never flips" `Quick test_boundary_never_flips;
        ] );
      ( "bias-sensitivity",
        [
          Alcotest.test_case "bias analyze" `Quick test_bias_analyze;
          Alcotest.test_case "bias inconsistent" `Quick test_bias_inconsistent;
          Alcotest.test_case "bias empty corpus" `Quick test_bias_empty_corpus;
          Alcotest.test_case "bias all same label" `Quick test_bias_all_same_label;
          Alcotest.test_case "sensitivity per node" `Quick test_sensitivity_per_node;
          QCheck_alcotest.to_alcotest prop_formal_sidedness_matches_explicit;
        ] );
      ( "extract-baseline",
        [
          Alcotest.test_case "for_inputs aggregates" `Quick test_extract_for_inputs_aggregates;
          Alcotest.test_case "baseline budget/validity" `Quick test_baseline_budget_and_validity;
          Alcotest.test_case "baseline vs formal absence" `Quick test_baseline_agrees_with_formal_absence;
        ] );
      ( "portfolio-warm",
        [
          Alcotest.test_case "portfolio = single solver" `Quick
            test_portfolio_matches_single_solver;
          QCheck_alcotest.to_alcotest prop_portfolio_agrees_with_smt;
          Alcotest.test_case "certified winner passes RUP check" `Quick
            test_portfolio_certified_winner_checks;
          Alcotest.test_case "cancelled then reusable" `Quick
            test_portfolio_cancelled_then_reusable;
          Alcotest.test_case "warm pool reuse" `Quick test_warm_pool_reuse;
          Alcotest.test_case "cancelled probe leaves session reusable" `Quick
            test_warm_cancelled_probe_leaves_session_reusable;
          QCheck_alcotest.to_alcotest prop_sensitivity_engines_agree;
        ] );
      ( "validate-pipeline",
        [
          Alcotest.test_case "p1" `Quick test_validate_p1;
          Alcotest.test_case "of_samples" `Quick test_validate_of_samples;
          Alcotest.test_case "pipeline fast config" `Quick test_pipeline_fast_config;
          Alcotest.test_case "pipeline deterministic" `Quick test_pipeline_deterministic;
          Alcotest.test_case "multiclass pipeline" `Quick test_mc_pipeline_runs;
        ] );
    ]
