(* Tests for the serving layer: fannet-wire/1 framing and message codec
   (QCheck roundtrips + malformed-input totality), the LRU verdict cache,
   the resident worker pool, differential daemon-vs-library answers
   (cold / warm / cache-hit, certificates re-checked independently), a
   16-client concurrency soak under injected faults with the accounting
   identity served + rejected + failed = submitted, and the Warm
   per-entry LRU eviction regression. *)

module W = Serve.Wire
module P = Serve.Protocol
module D = Serve.Daemon
module C = Serve.Client
module J = Util.Json
module B = Fannet.Backend
module N = Fannet.Noise
module F = Resil.Faultpoint

let with_clean_faults f =
  F.clear ();
  Fun.protect ~finally:F.clear f

let toy_qnet () =
  Nn.Qnet.create
    [|
      {
        Nn.Qnet.weights = [| [| 31; -22 |]; [| -13; 41 |]; [| 17; 9 |]; [| -25; 14 |] |];
        bias = [| 55; -31; 12; -7 |];
        act = Nn.Qnet.Relu;
      };
      {
        Nn.Qnet.weights = [| [| 21; -33; 11; -9 |]; [| -20; 31; -12; 10 |] |];
        bias = [| 13; 0 |];
        act = Nn.Qnet.Identity;
      };
    |]

let tiny_qnet () =
  Nn.Qnet.create
    [|
      { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Relu };
      { Nn.Qnet.weights = [| [| 2; -1 |]; [| -1; 2 |] |]; bias = [| 0; 1 |]; act = Nn.Qnet.Identity };
    |]

(* Both output rows identical, bias 5 vs 0: output 0 wins for every
   input, so no noise vector can flip label 0 and an explicit
   enumeration can never early-exit on a witness. *)
let constant_qnet () =
  Nn.Qnet.create
    [|
      { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Relu };
      { Nn.Qnet.weights = [| [| 2; 3 |]; [| 2; 3 |] |]; bias = [| 5; 0 |]; act = Nn.Qnet.Identity };
    |]

let test_daemon ?(workers = 2) ?(cap = 4) ?(cache_cap_bytes = 1 lsl 20) ?(procs = 0)
    ?store_path () =
  D.run
    {
      D.addr = D.Tcp ("127.0.0.1", 0);
      workers;
      cap;
      cache_cap_bytes;
      timeout_ceiling_s = Some 60.;
      procs;
      store_path;
    }

let with_daemon ?workers ?cap ?cache_cap_bytes ?procs ?store_path f =
  let d = test_daemon ?workers ?cap ?cache_cap_bytes ?procs ?store_path () in
  Fun.protect ~finally:(fun () -> D.stop d) (fun () -> f d)

let with_client d f =
  let c = C.connect (D.address d) in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ================================================================== *)
(* Wire framing                                                        *)
(* ================================================================== *)

let arb_payload =
  (* Opaque bytes, full char range, up to a few hundred bytes. *)
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(string_size ~gen:char (0 -- 300))

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire: decode (encode p) = p" ~count:300 arb_payload
    (fun p ->
      match W.decode (W.encode p) with
      | Ok (p', used) -> p' = p && used = String.length p + 8
      | Error _ -> false)

let prop_wire_concat =
  QCheck.Test.make ~name:"wire: frames concatenate" ~count:200
    (QCheck.pair arb_payload arb_payload) (fun (a, b) ->
      let buf = W.encode a ^ W.encode b in
      match W.decode buf with
      | Ok (a', used) -> (
          a' = a
          && match W.decode (String.sub buf used (String.length buf - used)) with
             | Ok (b', _) -> b' = b
             | Error _ -> false)
      | Error _ -> false)

let prop_wire_truncation_typed =
  QCheck.Test.make ~name:"wire: every strict prefix is Closed/Truncated" ~count:100
    arb_payload (fun p ->
      let frame = W.encode p in
      let n = String.length frame in
      let cuts = [ 0; 1; 3; 4; 7; min 8 (n - 1); n - 1 ] in
      List.for_all
        (fun k ->
          let k = max 0 (min k (n - 1)) in
          match W.decode (String.sub frame 0 k) with
          | Error W.Closed -> k = 0
          | Error W.Truncated -> k > 0
          | _ -> false)
        cuts)

let prop_wire_decode_total =
  (* Arbitrary garbage: decode always returns, never raises. *)
  QCheck.Test.make ~name:"wire: decode is total on garbage" ~count:500 arb_payload
    (fun s -> match W.decode s with Ok _ | Error _ -> true)

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let test_wire_bad_magic () =
  (match W.decode "JUNKJUNKJUNK" with
  | Error (W.Bad_magic got) -> Alcotest.(check string) "the read bytes" "JUNK" got
  | _ -> Alcotest.fail "expected Bad_magic");
  match W.decode "JU" with
  | Error (W.Bad_magic _) -> ()
  | _ -> Alcotest.fail "short non-magic prefix is Bad_magic"

let test_wire_oversized () =
  let hdr = W.magic ^ be32 (W.max_payload + 1) in
  (match W.decode hdr with
  | Error (W.Oversized n) -> Alcotest.(check int) "claimed" (W.max_payload + 1) n
  | _ -> Alcotest.fail "expected Oversized");
  (* A length with the top bit set must not wrap into a small read. *)
  match W.decode (W.magic ^ "\x80\x00\x00\x00") with
  | Error (W.Oversized _) -> ()
  | _ -> Alcotest.fail "expected Oversized for 2^31"

let test_wire_encode_cap () =
  match W.encode (String.make (W.max_payload + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode above max_payload must raise"

(* ================================================================== *)
(* Protocol codec                                                      *)
(* ================================================================== *)

let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (0 -- 12))

let gen_backend =
  QCheck.Gen.(
    let base =
      oneof
        [
          return B.Bnb;
          return B.Smt;
          map (fun limit -> B.Explicit { limit }) (0 -- 10_000);
          return B.Interval;
        ]
    in
    oneof [ base; map (fun b -> B.Cascade b) base ])

let gen_spec =
  QCheck.Gen.(
    let* delta_lo = -50 -- 0 in
    let* delta_hi = 0 -- 50 in
    let* bias_noise = bool in
    let+ kind = oneofl [ N.Relative; N.Absolute ] in
    { N.delta_lo; delta_hi; bias_noise; kind })

let gen_input = QCheck.Gen.(array_size (1 -- 6) (-200 -- 200))

let gen_query =
  QCheck.Gen.(
    let* input = gen_input in
    let* label = 0 -- 3 in
    oneof
      [
        (let* backend = gen_backend in
         let+ spec = gen_spec in
         P.Exists_flip { backend; spec; input; label });
        (let* backend = gen_backend in
         let* bias_noise = bool in
         let+ max_delta = 0 -- 60 in
         P.Tolerance { backend; bias_noise; max_delta; input; label });
        (let+ spec = gen_spec in
         P.Sensitivity { spec; input; label });
        (let+ spec = gen_spec in
         P.Certify { spec; input; label });
        (let* spec = gen_spec in
         let+ mode =
           oneof
             [
               map (fun certify -> P.Count_exact { certify }) bool;
               (* Dyadic epsilon/delta survive the %.12g float printer. *)
               (let* e16 = 1 -- 64 in
                let* d16 = 1 -- 15 in
                let+ seed = 0 -- 1000 in
                P.Count_approx
                  {
                    epsilon = float_of_int e16 /. 16.;
                    delta = float_of_int d16 /. 16.;
                    seed;
                  });
             ]
         in
         P.Count { spec; input; label; mode });
      ])

let gen_budget =
  QCheck.Gen.(
    let* timeout_s =
      (* Dyadic fractions survive the %.12g float printer exactly. *)
      opt (map (fun k -> float_of_int k /. 16.) (0 -- 1000))
    in
    let+ conflicts = opt (0 -- 100_000) in
    { P.timeout_s; conflicts })

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun network -> P.Load { network }) gen_name;
        (let* digest = gen_name in
         let* query = gen_query in
         let+ budget = gen_budget in
         P.Query { digest; query; budget });
        return P.Metrics;
        return P.Ping;
        return P.Shutdown;
      ])

let gen_reason =
  QCheck.Gen.oneofl
    Resil.Budget.[ Deadline; Conflicts; Memory; Cancelled; Incomplete ]

let gen_vector =
  QCheck.Gen.(
    let* bias = -20 -- 20 in
    let+ inputs = gen_input in
    { N.bias; inputs })

let gen_verdict =
  QCheck.Gen.(
    oneof
      [
        return B.Robust;
        map (fun v -> B.Flip v) gen_vector;
        map (fun r -> B.Unknown r) gen_reason;
      ])

let gen_clause = QCheck.Gen.(list_size (0 -- 4) (oneofl [ -3; -2; -1; 1; 2; 3 ]))

let gen_cert =
  QCheck.Gen.(
    let* n_vars = 1 -- 6 in
    let* cnf = list_size (0 -- 5) gen_clause in
    let* assumptions = gen_clause in
    oneof
      [
        (let+ model = array_size (return n_vars) bool in
         Cert.Verdict.Model { n_vars; cnf; assumptions; model });
        (let+ proof =
           list_size (0 -- 4)
             (oneof
                [
                  map (fun c -> Cert.Rup.Learn c) gen_clause;
                  map (fun c -> Cert.Rup.Delete c) gen_clause;
                ])
         in
         Cert.Verdict.Refutation { n_vars; cnf; assumptions; proof });
      ])

let gen_bigcount =
  QCheck.Gen.(
    oneof
      [
        map Util.Bigcount.of_int (0 -- 1_000_000);
        (* Dyadic log2 values roundtrip through the float printer. *)
        map (fun k -> Util.Bigcount.Huge (float_of_int k /. 4.)) (256 -- 2048);
      ])

let gen_side =
  QCheck.Gen.(
    let* fs_node = 0 -- 6 in
    let* positive_flip = bool in
    let+ negative_flip = bool in
    { Fannet.Sensitivity.fs_node; positive_flip; negative_flip })

let gen_answer =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> P.Verdict v) gen_verdict;
        map (fun r -> P.Min_flip r)
          (oneof
             [ map (fun o -> Ok o) (opt (0 -- 60)); map (fun r -> Error r) gen_reason ]);
        map (fun r -> P.Sidedness r)
          (oneof
             [
               map (fun l -> Ok (Array.of_list l)) (list_size (0 -- 4) gen_side);
               map (fun r -> Error r) gen_reason;
             ]);
        (let* verdict = gen_verdict in
         let+ cert = opt gen_cert in
         P.Certified { verdict; cert });
        map (fun r -> P.Counted r)
          (oneof
             [
               (let* flips = gen_bigcount in
                let+ total = gen_bigcount in
                Ok { P.flips; total; count_cert = None });
               map (fun r -> Error r) gen_reason;
             ]);
      ])

let gen_stats =
  QCheck.Gen.(
    let n = 0 -- 1000 in
    let* submitted = n and* served = n and* rejected = n and* failed = n in
    let* cache_hits = n and* cache_misses = n and* cache_len = n in
    let* in_flight = n in
    let+ networks = n in
    {
      P.submitted;
      served;
      rejected;
      failed;
      cache_hits;
      cache_misses;
      cache_len;
      in_flight;
      networks;
    })

let gen_obs =
  QCheck.Gen.(
    oneof
      [
        return J.Null;
        map (fun n -> J.Int n) (0 -- 100);
        map (fun b -> J.Bool b) bool;
        map (fun s -> J.String s) gen_name;
        map (fun l -> J.List (List.map (fun n -> J.Int n) l)) (list_size (0 -- 3) (0 -- 9));
      ])

let gen_reply =
  QCheck.Gen.(
    oneof
      [
        map (fun digest -> P.Loaded { digest }) gen_name;
        (let* cached = bool in
         let+ answer = gen_answer in
         P.Answer { cached; answer });
        (let* in_flight = 0 -- 100 in
         let+ cap = 1 -- 100 in
         P.Overloaded { in_flight; cap });
        (let* stats = gen_stats in
         let+ obs = gen_obs in
         P.Metrics_reply { stats; obs });
        return P.Pong;
        return P.Bye;
        map (fun e -> P.Protocol_error e) gen_name;
        map (fun e -> P.Server_error e) gen_name;
      ])

let arb_req_envelope =
  QCheck.make
    ~print:(fun e -> P.encode_request e)
    QCheck.Gen.(
      let* rid = 0 -- 1_000_000 in
      let+ request = gen_request in
      { P.rid; request })

let arb_reply_envelope =
  QCheck.make
    ~print:(fun e -> P.encode_reply e)
    QCheck.Gen.(
      let* rid = 0 -- 1_000_000 in
      let+ reply = gen_reply in
      { P.rid; reply })

let prop_request_roundtrip =
  QCheck.Test.make ~name:"protocol: decode (encode req) = req" ~count:500
    arb_req_envelope (fun e ->
      match P.decode_request (P.encode_request e) with
      | Ok e' -> P.request_equal e e' && e'.P.rid = e.P.rid
      | Error _ -> false)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"protocol: decode (encode rep) = rep" ~count:500
    arb_reply_envelope (fun e ->
      match P.decode_reply (P.encode_reply e) with
      | Ok e' -> P.reply_equal e e' && e'.P.rid = e.P.rid
      | Error _ -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"protocol: decoders are total on garbage" ~count:500
    arb_payload (fun s ->
      (match P.decode_request s with Ok _ | Error _ -> true)
      && match P.decode_reply s with Ok _ | Error _ -> true)

let test_protocol_version_rejected () =
  let j =
    J.Obj
      [ ("v", J.String "fannet-wire/2"); ("id", J.Int 1); ("req", J.Obj [ ("op", J.String "ping") ]) ]
  in
  match P.decode_request (J.to_string j) with
  | Error e ->
      Alcotest.(check bool) "mentions the version" true (contains e "fannet-wire/2")
  | Ok _ -> Alcotest.fail "foreign protocol version must be rejected"

let test_explicit_limit_survives () =
  (* Regression: Backend.to_string drops the Explicit limit; the wire
     codec must not. *)
  let q =
    P.Exists_flip
      {
        backend = B.Cascade (B.Explicit { limit = 7 });
        spec = N.symmetric ~delta:3 ~bias_noise:false;
        input = [| 1; 2 |];
        label = 0;
      }
  in
  let e = { P.rid = 9; request = P.Query { digest = "d"; query = q; budget = P.no_budget } } in
  match P.decode_request (P.encode_request e) with
  | Ok { P.request = P.Query { query = q'; _ }; _ } ->
      Alcotest.(check bool) "query survives" true (P.query_equal q q');
      (match q' with
      | P.Exists_flip { backend = B.Cascade (B.Explicit { limit }); _ } ->
          Alcotest.(check int) "limit" 7 limit
      | _ -> Alcotest.fail "backend shape changed")
  | _ -> Alcotest.fail "roundtrip failed"

let test_query_key_ignores_budget () =
  let q =
    P.Certify
      { spec = N.symmetric ~delta:4 ~bias_noise:true; input = [| 5; 6 |]; label = 1 }
  in
  (* query_key is a function of (digest, query) only; encode two full
     requests with different budgets and check their decoded queries key
     identically. *)
  let key budget =
    match
      P.decode_request
        (P.encode_request
           { P.rid = 1; request = P.Query { digest = "abc"; query = q; budget } })
    with
    | Ok { P.request = P.Query { digest; query; _ }; _ } -> P.query_key ~digest query
    | _ -> Alcotest.fail "roundtrip failed"
  in
  Alcotest.(check string) "same cache key"
    (key P.no_budget)
    (key { P.timeout_s = Some 0.5; conflicts = Some 100 })

let test_answer_decided () =
  let check name expected a = Alcotest.(check bool) name expected (P.answer_decided a) in
  check "robust" true (P.Verdict B.Robust);
  check "unknown" false (P.Verdict (B.Unknown Resil.Budget.Deadline));
  check "min-flip ok" true (P.Min_flip (Ok (Some 3)));
  check "min-flip error" false (P.Min_flip (Error Resil.Budget.Conflicts));
  check "certified without cert" false (P.Certified { verdict = B.Robust; cert = None });
  check "certified unknown" false
    (P.Certified { verdict = B.Unknown Resil.Budget.Memory; cert = None });
  check "counted ok" true
    (P.Counted
       (Ok
          {
            P.flips = Util.Bigcount.of_int 3;
            total = Util.Bigcount.of_int 100;
            count_cert = None;
          }));
  check "counted error" false (P.Counted (Error Resil.Budget.Deadline))

(* A Counted answer carrying a real fannet-count-cert/1 certificate must
   survive the wire codec byte-identically — that is what makes cached
   certified counts byte-stable. *)
let test_counted_cert_roundtrip () =
  let net = toy_qnet () in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:2 ~bias_noise:false in
  let r =
    Fannet.Robustness.probability
      ~mode:(Fannet.Robustness.Exact_mode { certify = true })
      net spec ~input ~label
  in
  Alcotest.(check bool) "decided" true (r.Fannet.Robustness.status = Ok ());
  Alcotest.(check bool) "has cert" true (r.Fannet.Robustness.certificate <> None);
  let a =
    P.Counted
      (Ok
         {
           P.flips = r.Fannet.Robustness.flips;
           total = r.Fannet.Robustness.total;
           count_cert = r.Fannet.Robustness.certificate;
         })
  in
  let e = { P.rid = 5; reply = P.Answer { cached = false; answer = a } } in
  let bytes = P.encode_reply e in
  match P.decode_reply bytes with
  | Ok e' ->
      Alcotest.(check string) "byte-identical after roundtrip" bytes (P.encode_reply e')
  | Error err -> Alcotest.failf "decode failed: %s" err

(* ================================================================== *)
(* LRU cache                                                           *)
(* ================================================================== *)

let test_lru_eviction_order () =
  let l = Serve.Lru.create ~cap:2 in
  Serve.Lru.add l "a" 1;
  Serve.Lru.add l "b" 2;
  ignore (Serve.Lru.find l "a");
  (* "b" is now least recently used *)
  Serve.Lru.add l "c" 3;
  Alcotest.(check bool) "b evicted" true (Serve.Lru.find l "b" = None);
  Alcotest.(check bool) "a kept" true (Serve.Lru.find l "a" = Some 1);
  Alcotest.(check bool) "c kept" true (Serve.Lru.find l "c" = Some 3);
  Alcotest.(check int) "len" 2 (Serve.Lru.length l);
  let hits, misses, evictions = Serve.Lru.stats l in
  Alcotest.(check int) "hits" 3 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "evictions" 1 evictions

let test_lru_overwrite_bumps () =
  let l = Serve.Lru.create ~cap:2 in
  Serve.Lru.add l "a" 1;
  Serve.Lru.add l "b" 2;
  Serve.Lru.add l "a" 10;
  (* overwrite makes "a" most recent *)
  Serve.Lru.add l "c" 3;
  Alcotest.(check bool) "b evicted" true (Serve.Lru.find l "b" = None);
  Alcotest.(check bool) "a updated" true (Serve.Lru.find l "a" = Some 10)

let test_lru_cap_zero () =
  let l = Serve.Lru.create ~cap:0 in
  Serve.Lru.add l "a" 1;
  Alcotest.(check bool) "nothing cached" true (Serve.Lru.find l "a" = None);
  Alcotest.(check int) "len" 0 (Serve.Lru.length l)

(* ================================================================== *)
(* Worker pool                                                         *)
(* ================================================================== *)

let test_pool_run_and_exceptions () =
  let p = Serve.Pool.create ~workers:2 in
  Fun.protect ~finally:(fun () -> Serve.Pool.shutdown p) @@ fun () ->
  Alcotest.(check int) "result" 42 (Serve.Pool.run p (fun () -> 42));
  (match Serve.Pool.run p (fun () -> failwith "boom") with
  | exception Failure m -> Alcotest.(check string) "transported" "boom" m
  | _ -> Alcotest.fail "exception must propagate");
  (* The worker survived the raise. *)
  Alcotest.(check int) "still alive" 7 (Serve.Pool.run p (fun () -> 7))

let test_pool_worker_affinity () =
  (* With one worker every job runs on the same resident domain — the
     property warm DLS sessions rely on. *)
  let p = Serve.Pool.create ~workers:1 in
  Fun.protect ~finally:(fun () -> Serve.Pool.shutdown p) @@ fun () ->
  let id () = (Domain.self () :> int) in
  let a = Serve.Pool.run p id in
  let b = Serve.Pool.run p id in
  Alcotest.(check int) "same domain" a b;
  Alcotest.(check bool) "not the caller's domain" true (a <> id ())

let test_pool_shutdown_semantics () =
  let p = Serve.Pool.create ~workers:2 in
  let counter = Atomic.make 0 in
  for _ = 1 to 8 do
    Serve.Pool.submit p (fun () -> Atomic.incr counter)
  done;
  Serve.Pool.shutdown p;
  (* Drain semantics: all queued jobs ran before the domains joined. *)
  Alcotest.(check int) "all jobs drained" 8 (Atomic.get counter);
  (match Serve.Pool.submit p (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "submit after shutdown must raise");
  (* Idempotent. *)
  Serve.Pool.shutdown p

(* ================================================================== *)
(* Live daemon: malformed input battery                                *)
(* ================================================================== *)

let test_daemon_survives_garbage () =
  with_daemon @@ fun d ->
  (* Garbage framing: typed error, connection closed. *)
  (let c = C.connect (D.address d) in
   C.send_raw c "XXXXXXXXXXXXXXXX";
   (match C.read_reply c with
   | Ok { P.reply = P.Protocol_error _; _ } -> ()
   | r ->
       Alcotest.failf "wanted Protocol_error, got %s"
         (match r with Ok e -> P.encode_reply e | Error e -> e));
   C.close c);
  (* Oversized header: typed error. *)
  (let c = C.connect (D.address d) in
   C.send_raw c (W.magic ^ be32 (W.max_payload + 1));
   (match C.read_reply c with
   | Ok { P.reply = P.Protocol_error _; _ } -> ()
   | _ -> Alcotest.fail "oversized frame must get Protocol_error");
   C.close c);
  (* Truncated frame then disconnect: the daemon just moves on. *)
  (let c = C.connect (D.address d) in
   C.send_raw c (W.magic ^ "\x00");
   C.close c);
  (* Intact frame, malformed JSON: rid-0 typed error, connection lives. *)
  with_client d (fun c ->
      C.send_raw c (W.encode "{not json");
      (match C.read_reply c with
      | Ok { P.rid = 0; reply = P.Protocol_error _ } -> ()
      | _ -> Alcotest.fail "bad JSON must get a rid-0 Protocol_error");
      ok (C.ping c));
  (* Intact frame, valid JSON, wrong message: typed error, connection
     lives. *)
  with_client d (fun c ->
      C.send_raw c (W.encode "{\"v\":\"fannet-wire/1\",\"id\":3,\"req\":{\"op\":\"nope\"}}");
      (match C.read_reply c with
      | Ok { P.reply = P.Protocol_error _; _ } -> ()
      | _ -> Alcotest.fail "unknown op must get Protocol_error");
      ok (C.ping c));
  (* After all that abuse the accept loop still answers. *)
  with_client d (fun c -> ok (C.ping c))

let test_daemon_unknown_digest () =
  with_daemon @@ fun d ->
  with_client d @@ fun c ->
  let q =
    P.Exists_flip
      {
        backend = B.Bnb;
        spec = N.symmetric ~delta:2 ~bias_noise:false;
        input = [| 1; 2 |];
        label = 0;
      }
  in
  (match ok (C.query c ~digest:"no-such-digest" q) with
  | P.Server_error _ -> ()
  | r -> Alcotest.failf "wanted Server_error, got %s" (P.encode_reply { rid = 0; reply = r }));
  let s = D.stats d in
  Alcotest.(check int) "counted as failed" 1 s.P.failed;
  Alcotest.(check int) "accounting identity" s.P.submitted
    (s.P.served + s.P.rejected + s.P.failed)

let test_daemon_unsupported_shape_typed_error () =
  (* An engine rejecting an unsupported network shape (here a
     single-output network, which the branch-and-bound engine refuses)
     raises Invalid_argument inside a worker domain. That must come back
     as a typed Protocol_error reply — never a raw exception escaping the
     domain — and the daemon must stay healthy afterwards. *)
  let one_out =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = [| [| 1; 1 |] |]; bias = [| 0 |]; act = Nn.Qnet.Relu };
        { Nn.Qnet.weights = [| [| 1 |] |]; bias = [| 0 |]; act = Nn.Qnet.Identity };
      |]
  in
  with_daemon @@ fun d ->
  with_client d @@ fun c ->
  let digest = ok (C.load c one_out) in
  let q =
    P.Exists_flip
      {
        backend = B.Bnb;
        spec = N.symmetric ~delta:1 ~bias_noise:false;
        input = [| 1; 2 |];
        label = 0;
      }
  in
  (match ok (C.query c ~digest q) with
  | P.Protocol_error msg ->
      Alcotest.(check bool) "reply names the unsupported query" true
        (contains msg "unsupported query")
  | r ->
      Alcotest.failf "wanted Protocol_error, got %s"
        (P.encode_reply { rid = 0; reply = r }));
  (* Same connection, well-formed query: the worker pool survived. *)
  let digest2 = ok (C.load c (tiny_qnet ())) in
  let q2 =
    P.Exists_flip
      {
        backend = B.Bnb;
        spec = N.symmetric ~delta:1 ~bias_noise:false;
        input = [| 5; 9 |];
        label = Nn.Qnet.predict (tiny_qnet ()) [| 5; 9 |];
      }
  in
  (match ok (C.query c ~digest:digest2 q2) with
  | P.Answer _ -> ()
  | r ->
      Alcotest.failf "daemon unhealthy after typed error: %s"
        (P.encode_reply { rid = 0; reply = r }));
  let s = D.stats d in
  Alcotest.(check int) "typed error counted as failed" 1 s.P.failed;
  Alcotest.(check int) "accounting identity" s.P.submitted
    (s.P.served + s.P.rejected + s.P.failed)

let test_daemon_budget_answers_not_cached () =
  with_daemon @@ fun d ->
  with_client d @@ fun c ->
  let digest = ok (C.load c (toy_qnet ())) in
  (* An explicit enumeration over ~36M vectors cannot finish inside a
     0.05 s deadline, so the answer is deterministically Unknown. *)
  let q =
    P.Exists_flip
      {
        backend = B.Explicit { limit = max_int };
        spec = N.symmetric ~delta:3000 ~bias_noise:false;
        input = [| 112; 87 |];
        label = Nn.Qnet.predict (toy_qnet ()) [| 112; 87 |];
      }
  in
  let budget = { P.timeout_s = Some 0.05; conflicts = None } in
  let once () =
    match ok (C.query ~budget c ~digest q) with
    | P.Answer { cached; answer = P.Verdict (B.Unknown _) } -> cached
    | r -> Alcotest.failf "wanted Unknown, got %s" (P.encode_reply { rid = 0; reply = r })
  in
  Alcotest.(check bool) "first not cached" false (once ());
  (* Budget-dependent Unknown must never be served from the cache. *)
  Alcotest.(check bool) "second not cached either" false (once ())

(* ================================================================== *)
(* Differential: daemon answers = direct library calls                 *)
(* ================================================================== *)

let direct_answer net (q : P.query) : P.answer =
  match q with
  | P.Exists_flip { backend; spec; input; label } ->
      P.Verdict (B.exists_flip backend net spec ~input ~label)
  | P.Tolerance { backend; bias_noise; max_delta; input; label } ->
      P.Min_flip
        (Fannet.Tolerance.input_min_flip_delta_b backend net ~bias_noise ~max_delta
           ~input ~label)
  | P.Sensitivity { spec; input; label } ->
      P.Sidedness
        (Fannet.Sensitivity.formal_sidedness_b ~jobs:1 net spec
           ~inputs:[| (input, label) |])
  | P.Certify { spec; input; label } ->
      let cv = B.certified_exists_flip net spec ~input ~label in
      P.Certified { verdict = cv.B.cv_verdict; cert = cv.B.cv_cert }
  | P.Count { spec; input; label; mode } ->
      let mode =
        match mode with
        | P.Count_exact { certify } -> Fannet.Robustness.Exact_mode { certify }
        | P.Count_approx { epsilon; delta; seed } ->
            Fannet.Robustness.Approx_mode { epsilon; delta; seed }
      in
      let r = Fannet.Robustness.probability ~mode net spec ~input ~label in
      P.Counted
        (match r.Fannet.Robustness.status with
        | Ok () ->
            Ok { P.flips = r.flips; total = r.total; count_cert = r.certificate }
        | Error reason -> Error reason)

let differential_queries net =
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:10 ~bias_noise:false in
  [
    ("exists-flip bnb", P.Exists_flip { backend = B.Bnb; spec; input; label });
    ("exists-flip smt", P.Exists_flip { backend = B.Smt; spec; input; label });
    ( "exists-flip cascade",
      P.Exists_flip { backend = B.Cascade B.Bnb; spec; input; label } );
    ( "tolerance",
      P.Tolerance { backend = B.Bnb; bias_noise = false; max_delta = 20; input; label } );
    ("sensitivity", P.Sensitivity { spec; input; label });
    ("certify", P.Certify { spec; input; label });
    (* Certified count: the certificate crosses the wire, so daemon
       answers must be byte-identical to the direct call including the
       certificate bytes. *)
    (let cspec = N.symmetric ~delta:3 ~bias_noise:false in
     ( "count exact certified",
       P.Count { spec = cspec; input; label; mode = P.Count_exact { certify = true } } ));
    (let cspec = N.symmetric ~delta:3 ~bias_noise:false in
     ( "count approx",
       P.Count
         {
           spec = cspec;
           input;
           label;
           mode = P.Count_approx { epsilon = 0.8; delta = 0.2; seed = 7 };
         } ));
  ]

let answer_of_reply name = function
  | P.Answer { cached; answer } -> (cached, answer)
  | r ->
      Alcotest.failf "%s: unexpected reply %s" name (P.encode_reply { rid = 0; reply = r })

(* Every query kind, answered cold, warm (same worker, cache bypassed)
   and from the cache — each time byte-identical to the direct library
   call, certificates re-checked by the independent lib/cert checker. *)
let test_differential_cold_warm () =
  let net = toy_qnet () in
  (* cache_cap = 0 and a single worker: the first answer is cold, the
     second reuses the worker domain's warm sessions; neither may come
     from the cache. *)
  with_daemon ~workers:1 ~cache_cap_bytes:0 @@ fun d ->
  with_client d @@ fun c ->
  let digest = ok (C.load c net) in
  List.iter
    (fun (name, q) ->
      let expected = direct_answer net q in
      let cached1, cold = answer_of_reply name (ok (C.query c ~digest q)) in
      let cached2, warm = answer_of_reply name (ok (C.query c ~digest q)) in
      Alcotest.(check bool) (name ^ ": cold not cached") false cached1;
      Alcotest.(check bool) (name ^ ": warm not cached") false cached2;
      Alcotest.(check bool)
        (name ^ ": cold = direct")
        true
        (P.answer_equal cold expected);
      Alcotest.(check bool)
        (name ^ ": warm = direct")
        true
        (P.answer_equal warm expected))
    (differential_queries net)

let test_differential_cache_hit_and_certificates () =
  let net = toy_qnet () in
  with_daemon ~workers:2 ~cache_cap_bytes:(1 lsl 26) @@ fun d ->
  with_client d @@ fun c ->
  let digest = ok (C.load c net) in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let spec = N.symmetric ~delta:10 ~bias_noise:false in
  List.iter
    (fun (name, q) ->
      let expected = direct_answer net q in
      let cached1, cold = answer_of_reply name (ok (C.query c ~digest q)) in
      let cached2, hit = answer_of_reply name (ok (C.query c ~digest q)) in
      Alcotest.(check bool) (name ^ ": first is a miss") false cached1;
      Alcotest.(check bool) (name ^ ": second is a hit") true cached2;
      Alcotest.(check bool) (name ^ ": cold = direct") true (P.answer_equal cold expected);
      (* Bit-identity of the cached answer with the cold one. *)
      Alcotest.(check string)
        (name ^ ": cache hit bit-identical")
        (J.to_string (P.answer_json cold))
        (J.to_string (P.answer_json hit)))
    (differential_queries net);
  (* The certificate that crossed the wire twice (cold + cached) must
     still convince the independent RUP/model checker. *)
  match ok (C.query c ~digest (P.Certify { spec; input; label })) with
  | P.Answer { cached = true; answer = P.Certified { verdict; cert } } -> (
      Alcotest.(check bool) "certificate present" true (cert <> None);
      match
        B.check_certified net spec ~input ~label { B.cv_verdict = verdict; cv_cert = cert }
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "wire-roundtripped certificate rejected: %s" e)
  | _ -> Alcotest.fail "expected a cached certified answer"

(* ================================================================== *)
(* Concurrency soak                                                    *)
(* ================================================================== *)

let poll_until ?(timeout_s = 5.0) what pred =
  let t0 = Obs.Clock.now_ns () in
  let rec go () =
    if pred () then ()
    else if Obs.Clock.elapsed_s ~since:t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let test_daemon_overload_rejection () =
  with_daemon ~workers:2 ~cap:2 ~cache_cap_bytes:0 @@ fun d ->
  let net = constant_qnet () in
  let digest = with_client d (fun c -> ok (C.load c net)) in
  (* Two queries that provably hold their slots: the constant network
     admits no flip, so the explicit enumeration over ~36M vectors can
     never early-exit on a witness and cannot finish inside the 1.5 s
     deadline — in_flight stays at the cap until the budgets expire. *)
  let slow_query i =
    P.Exists_flip
      {
        backend = B.Explicit { limit = max_int };
        spec = N.symmetric ~delta:3000 ~bias_noise:false;
        input = [| 10 + i; 20 |];
        label = 0;
      }
  in
  let budget = { P.timeout_s = Some 1.5; conflicts = None } in
  let slow_replies = Array.make 2 None in
  let slow_threads =
    Array.init 2 (fun i ->
        Thread.create
          (fun () ->
            with_client d (fun c ->
                slow_replies.(i) <- Some (C.query ~budget c ~digest (slow_query i))))
          ())
  in
  poll_until "both slots taken" (fun () -> (D.stats d).P.in_flight = 2);
  (* Every query inside the window is rejected, deterministically. *)
  with_client d (fun c ->
      for i = 0 to 3 do
        match ok (C.query c ~digest (slow_query (100 + i))) with
        | P.Overloaded { cap; _ } -> Alcotest.(check int) "cap echoed" 2 cap
        | r ->
            Alcotest.failf "wanted Overloaded, got %s"
              (P.encode_reply { rid = 0; reply = r })
      done);
  Array.iter Thread.join slow_threads;
  Array.iter
    (fun r ->
      match r with
      | Some (Ok (P.Answer { answer = P.Verdict (B.Unknown _); _ })) -> ()
      | _ -> Alcotest.fail "slow query must end in a typed Unknown")
    slow_replies;
  let s = D.stats d in
  Alcotest.(check int) "4 typed rejections" 4 s.P.rejected;
  Alcotest.(check int) "identity" s.P.submitted (s.P.served + s.P.rejected + s.P.failed)

let test_daemon_soak_under_faults () =
  with_clean_faults @@ fun () ->
  (* The FANNET_FAULTS matrix, armed programmatically (same spec syntax):
     one worker body raise mid-soak and one solver OOM. *)
  F.arm "serve.worker.raise@5";
  F.arm "sat.oom@3";
  with_daemon ~workers:2 ~cap:4 ~cache_cap_bytes:(1 lsl 26) @@ fun d ->
  let net = toy_qnet () in
  let digest = with_client d (fun c -> ok (C.load c net)) in
  let n_clients = 16 and per_client = 6 in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let anomalies = Atomic.make 0 in
  let client k () =
    with_client d @@ fun c ->
    for j = 0 to per_client - 1 do
      let reply =
        match (k + j) mod 4 with
        | 0 ->
            (* Distinct deltas spread cache misses; repeats hit. *)
            C.query c ~digest
              (P.Exists_flip
                 {
                   backend = B.Bnb;
                   spec = N.symmetric ~delta:(1 + (j mod 3)) ~bias_noise:false;
                   input;
                   label;
                 })
        | 1 ->
            C.query c ~digest
              (P.Tolerance
                 { backend = B.Smt; bias_noise = false; max_delta = 6; input; label })
        | 2 ->
            C.query c ~digest:"bogus-digest"
              (P.Sensitivity
                 { spec = N.symmetric ~delta:2 ~bias_noise:false; input; label })
        | _ ->
            C.query c ~digest
              (P.Certify
                 { spec = N.symmetric ~delta:(2 + (j mod 2)) ~bias_noise:false; input; label })
      in
      (* Every reply must be one of the typed forms — never a dead
         connection or a codec failure. *)
      match reply with
      | Ok (P.Answer _ | P.Overloaded _ | P.Server_error _) -> ()
      | Ok _ | Error _ -> Atomic.incr anomalies
    done
  in
  let threads = Array.init n_clients (fun k -> Thread.create (client k) ()) in
  Array.iter Thread.join threads;
  Alcotest.(check int) "every reply well-typed" 0 (Atomic.get anomalies);
  poll_until "daemon idle" (fun () -> (D.stats d).P.in_flight = 0);
  let s = D.stats d in
  Alcotest.(check int) "all queries accounted" (n_clients * per_client) s.P.submitted;
  Alcotest.(check int) "served + rejected + failed = submitted" s.P.submitted
    (s.P.served + s.P.rejected + s.P.failed);
  (* Bogus digests fail deterministically; the armed worker raise adds
     at least one more. *)
  Alcotest.(check bool) "typed failures observed" true (s.P.failed >= n_clients);
  Alcotest.(check bool) "cache saw traffic" true (s.P.cache_hits + s.P.cache_misses > 0);
  (* The daemon is still healthy after the storm. *)
  with_client d (fun c -> ok (C.ping c))

(* ================================================================== *)
(* Warm LRU eviction regression                                        *)
(* ================================================================== *)

(* Keys are distinct per input vector; cover/delta tiny so each encode
   is microseconds on the 2-2-2 net. *)
let warm_probe net i =
  match
    Fannet.Warm.probe_delta net ~bias_noise:false ~cover:1 ~delta:1
      ~input:[| 1000 + i; 7 |] ~label:0
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unbudgeted probe cannot fail"

let test_warm_lru_single_domain () =
  let net = tiny_qnet () in
  Fannet.Warm.reset ();
  let m0 = Fannet.Warm.misses () and e0 = Fannet.Warm.evictions () in
  Alcotest.(check int) "pool starts empty" 0 (Fannet.Warm.size ());
  (* 70 distinct keys through a 64-entry pool: exactly 6 evictions, one
     per dropped entry (the old code flushed the whole pool and counted
     one). *)
  for i = 0 to 69 do
    warm_probe net i
  done;
  Alcotest.(check int) "all 70 are misses" 70 (Fannet.Warm.misses () - m0);
  Alcotest.(check int) "exactly 6 evictions" 6 (Fannet.Warm.evictions () - e0);
  Alcotest.(check int) "pool is full" 64 (Fannet.Warm.size ());
  (* Recency: 0..5 were evicted (oldest), 6..69 live. *)
  let h0 = Fannet.Warm.hits () in
  warm_probe net 69;
  warm_probe net 6;
  Alcotest.(check int) "newest and oldest-surviving hit" 2 (Fannet.Warm.hits () - h0);
  (* Key 0 was evicted: re-probing it is a miss and evicts the current
     least-recently-used key, which is 7 (6 was just bumped). *)
  let m1 = Fannet.Warm.misses () in
  warm_probe net 0;
  Alcotest.(check int) "evicted key re-encodes" 1 (Fannet.Warm.misses () - m1);
  let m2 = Fannet.Warm.misses () in
  warm_probe net 7;
  Alcotest.(check int) "true LRU victim was 7" 1 (Fannet.Warm.misses () - m2);
  (* The audit invariant: every miss inserted one entry, every eviction
     removed one, so on this single domain
     misses = evictions + live entries. *)
  Alcotest.(check int) "misses = evictions + size"
    (Fannet.Warm.misses () - m0)
    (Fannet.Warm.evictions () - e0 + Fannet.Warm.size ())

let test_warm_lru_multi_domain () =
  let net = tiny_qnet () in
  Fannet.Warm.reset ();
  let m0 = Fannet.Warm.misses () and e0 = Fannet.Warm.evictions () in
  (* 200 distinct keys spread over 2 domains by the batch pool; every
     probe is a miss, and each domain evicts exactly
     max(0, keys_it_ran - 64) — reconstructable from the returned domain
     ids no matter how the schedule divided the work. With 2 domains one
     of them necessarily runs >= 100 keys, so evictions must occur. *)
  let domains =
    Util.Parallel.map ~jobs:2
      (fun i ->
        warm_probe net (10_000 + i);
        (Domain.self () :> int))
      (Array.init 200 Fun.id)
  in
  Alcotest.(check int) "all 200 distinct keys miss" 200 (Fannet.Warm.misses () - m0);
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun d -> Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
    domains;
  let expected_evictions =
    Hashtbl.fold (fun _ n acc -> acc + max 0 (n - 64)) counts 0
  in
  Alcotest.(check bool) "the schedule forced evictions" true (expected_evictions > 0);
  Alcotest.(check int) "eviction counter matches actual per-domain evictions"
    expected_evictions
    (Fannet.Warm.evictions () - e0)

(* ================================================================== *)

(* ================================================================== *)
(* Wire short reads: every byte offset                                 *)
(* ================================================================== *)

(* Satellite of the crash-isolation work: a peer that dies after k bytes
   — for every k — must decode to a typed Closed/Truncated, never an
   exception and never a bogus Ok. Exhaustive where the QCheck property
   above only samples cut points, and exercised through both the
   string-level and the blocking-fd codecs. *)
let test_wire_short_read_every_offset () =
  let frame = W.encode "chaos payload \x00\xff\x01 with binary bytes" in
  let n = String.length frame in
  for k = 0 to n - 1 do
    (match W.decode (String.sub frame 0 k) with
    | Error W.Closed when k = 0 -> ()
    | Error W.Truncated when k > 0 -> ()
    | Ok _ -> Alcotest.failf "string prefix %d/%d decoded" k n
    | Error e ->
        Alcotest.failf "string prefix %d/%d: wrong error %s" k n (W.error_to_string e));
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> Unix.close b) @@ fun () ->
    let wrote = if k = 0 then 0 else Unix.write_substring a frame 0 k in
    Alcotest.(check int) "short write delivered" k wrote;
    Unix.close a;
    match W.read_frame b with
    | Error W.Closed when k = 0 -> ()
    | Error W.Truncated when k > 0 -> ()
    | Ok _ -> Alcotest.failf "fd prefix %d/%d decoded" k n
    | Error e ->
        Alcotest.failf "fd prefix %d/%d: wrong error %s" k n (W.error_to_string e)
  done

(* ================================================================== *)
(* LRU byte weighting                                                  *)
(* ================================================================== *)

let test_lru_byte_weights () =
  let l = Serve.Lru.create ~cap:100 in
  Serve.Lru.add ~weight:40 l "a" 1;
  Serve.Lru.add ~weight:40 l "b" 2;
  Alcotest.(check int) "two resident" 80 (Serve.Lru.total_weight l);
  (* 40 + 40 + 40 > 100: the least recently used entry goes. *)
  Serve.Lru.add ~weight:40 l "c" 3;
  Alcotest.(check bool) "a evicted" true (Serve.Lru.find l "a" = None);
  Alcotest.(check int) "weight fits again" 80 (Serve.Lru.total_weight l);
  (* Recency is per-find: bump b, then overflow — c must be the victim. *)
  ignore (Serve.Lru.find l "b");
  Serve.Lru.add ~weight:30 l "d" 4;
  Alcotest.(check bool) "c evicted" true (Serve.Lru.find l "c" = None);
  Alcotest.(check bool) "b kept" true (Serve.Lru.find l "b" = Some 2);
  Alcotest.(check int) "70 resident" 70 (Serve.Lru.total_weight l);
  (* Overwrite at a new weight adjusts the total exactly. *)
  Serve.Lru.add ~weight:10 l "d" 5;
  Alcotest.(check int) "overwrite reweighs" 50 (Serve.Lru.total_weight l);
  Alcotest.(check bool) "overwrite value" true (Serve.Lru.find l "d" = Some 5);
  let _, _, ev_before = Serve.Lru.stats l in
  (* Heavier than the whole budget: not inserted, and it must drop the
     stale value cached under the same key rather than serve it. *)
  Serve.Lru.add ~weight:1000 l "d" 6;
  Alcotest.(check bool) "oversized not inserted" true (Serve.Lru.find l "d" = None);
  Serve.Lru.add ~weight:1000 l "zz" 7;
  Alcotest.(check bool) "oversized new key dropped" true (Serve.Lru.find l "zz" = None);
  Alcotest.(check int) "only b resident" 40 (Serve.Lru.total_weight l);
  let _, _, ev_after = Serve.Lru.stats l in
  Alcotest.(check int) "stale-drop counted as eviction" (ev_before + 1) ev_after;
  (* Weightless callers keep entry-count semantics: default weight 1. *)
  let l1 = Serve.Lru.create ~cap:2 in
  Serve.Lru.add l1 "x" 1;
  Serve.Lru.add l1 "y" 2;
  Serve.Lru.add l1 "z" 3;
  Alcotest.(check int) "count semantics" 2 (Serve.Lru.length l1);
  Alcotest.(check int) "weight = entries" 2 (Serve.Lru.total_weight l1)

(* ================================================================== *)
(* Persistent verdict store                                            *)
(* ================================================================== *)

let with_store_path f =
  let path = Filename.temp_file "fannet_store_test" ".jnl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let answer_bytes a = J.to_string (P.answer_json a)

(* Three cheap decided answers, distinct per key. *)
let store_entries net =
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  List.map
    (fun d ->
      let q =
        P.Exists_flip
          { backend = B.Bnb; spec = N.symmetric ~delta:d ~bias_noise:false; input; label }
      in
      (Printf.sprintf "k%d" d, direct_answer net q))
    [ 1; 2; 3 ]

let test_store_roundtrip () =
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  let entries = store_entries net in
  let t, recovered0 = ok (Serve.Store.open_ ~path) in
  Alcotest.(check int) "fresh journal is empty" 0 (List.length recovered0);
  List.iter (fun (k, a) -> Serve.Store.append t ~key:k a) entries;
  (* Re-appending a key supersedes: k1 now maps to k3's answer. *)
  let a3 = List.assoc "k3" entries in
  Serve.Store.append t ~key:"k1" a3;
  Serve.Store.close t;
  let t2, recovered = ok (Serve.Store.open_ ~path) in
  Fun.protect ~finally:(fun () -> Serve.Store.close t2) @@ fun () ->
  Alcotest.(check int) "last-wins: three live records" 3 (List.length recovered);
  let st = Serve.Store.stats t2 in
  Alcotest.(check int) "recovered" 3 st.Serve.Store.recovered;
  Alcotest.(check int) "nothing dropped" 0 st.Serve.Store.dropped;
  Alcotest.(check int) "nothing truncated" 0 st.Serve.Store.truncated_bytes;
  Alcotest.(check string)
    "k1 superseded, bit-identical" (answer_bytes a3)
    (answer_bytes (List.assoc "k1" recovered));
  List.iter
    (fun k ->
      Alcotest.(check string)
        (k ^ " byte-identical")
        (answer_bytes (List.assoc k entries))
        (answer_bytes (List.assoc k recovered)))
    [ "k2"; "k3" ]

let test_store_torn_tail () =
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  let entries = store_entries net in
  let t, _ = ok (Serve.Store.open_ ~path) in
  List.iter (fun (k, a) -> Serve.Store.append t ~key:k a) entries;
  Serve.Store.close t;
  (* Tear the last record mid-payload, as a crash mid-write would. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 7)));
  let t2, recovered = ok (Serve.Store.open_ ~path) in
  Alcotest.(check int) "torn record shed" 2 (List.length recovered);
  let st = Serve.Store.stats t2 in
  Alcotest.(check bool) "torn bytes counted" true (st.Serve.Store.truncated_bytes > 0);
  Alcotest.(check int) "framing damage is not a drop" 0 st.Serve.Store.dropped;
  Serve.Store.close t2;
  (* The open truncated the file in place: a second recovery is clean. *)
  let t3, recovered3 = ok (Serve.Store.open_ ~path) in
  Fun.protect ~finally:(fun () -> Serve.Store.close t3) @@ fun () ->
  Alcotest.(check int) "truncation is idempotent" 2 (List.length recovered3);
  Alcotest.(check int) "no further truncation" 0
    (Serve.Store.stats t3).Serve.Store.truncated_bytes

let test_store_invalid_record_dropped () =
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  let entries = store_entries net in
  let t, _ = ok (Serve.Store.open_ ~path) in
  List.iter (fun (k, a) -> Serve.Store.append t ~key:k a) entries;
  Serve.Store.close t;
  (* A record that frames correctly — length and checksum both good —
     but whose payload is not a valid key/answer document. Framing
     integrity and semantic validity are independent defences: this one
     must be dropped individually, not treated as a torn tail. *)
  let payload = {|{"key":"kbad","answer":{"kind":"from-the-future"}}|} in
  let record =
    Printf.sprintf "%d %016Lx\n%s\n" (String.length payload)
      (Resil.Ckpt.fnv1a64 payload) payload
  in
  let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
  Out_channel.output_string oc record;
  Out_channel.close oc;
  let t2, recovered = ok (Serve.Store.open_ ~path) in
  Fun.protect ~finally:(fun () -> Serve.Store.close t2) @@ fun () ->
  Alcotest.(check int) "good records survive" 3 (List.length recovered);
  let st = Serve.Store.stats t2 in
  Alcotest.(check int) "bad record dropped" 1 st.Serve.Store.dropped;
  Alcotest.(check int) "not torn" 0 st.Serve.Store.truncated_bytes;
  Alcotest.(check bool) "dropped key absent" true
    (not (List.mem_assoc "kbad" recovered))

let test_store_torn_faultpoint () =
  with_clean_faults @@ fun () ->
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  let entries = store_entries net in
  let k1, a1 = List.nth entries 0 and k2, a2 = List.nth entries 1 in
  let t, _ = ok (Serve.Store.open_ ~path) in
  Serve.Store.append t ~key:k1 a1;
  (* The armed fault writes half the next record and disables the
     store — the daemon-crash-mid-write simulation. *)
  F.arm "serve.store.torn";
  Serve.Store.append t ~key:k2 a2;
  F.clear ();
  (* Disabled: further appends are silently dropped, close is safe. *)
  Serve.Store.append t ~key:"k-after" a1;
  Serve.Store.close t;
  let t2, recovered = ok (Serve.Store.open_ ~path) in
  Fun.protect ~finally:(fun () -> Serve.Store.close t2) @@ fun () ->
  Alcotest.(check int) "exactly the torn record shed" 1 (List.length recovered);
  Alcotest.(check string) "survivor bit-identical" (answer_bytes a1)
    (answer_bytes (List.assoc k1 recovered));
  Alcotest.(check bool) "torn bytes counted" true
    ((Serve.Store.stats t2).Serve.Store.truncated_bytes > 0)

let test_store_compaction () =
  with_store_path @@ fun path ->
  let net = tiny_qnet () in
  let input = [| 1; 2 |] in
  let label = Nn.Qnet.predict net input in
  let a =
    direct_answer net
      (P.Exists_flip
         { backend = B.Bnb; spec = N.symmetric ~delta:1 ~bias_noise:false; input; label })
  in
  let t, _ = ok (Serve.Store.open_ ~path) in
  (* One key re-appended: live_bytes stays a single record while the
     file grows, so the max(64 KiB, 2 × live) threshold must trip. *)
  let appends = ref 0 in
  while (Serve.Store.stats t).Serve.Store.compactions = 0 && !appends < 5_000 do
    Serve.Store.append t ~key:"k" a;
    incr appends
  done;
  let st = Serve.Store.stats t in
  Alcotest.(check bool) "compaction triggered" true (st.Serve.Store.compactions >= 1);
  Alcotest.(check bool) "journal rewritten small" true
    (st.Serve.Store.file_bytes < 65_536);
  Serve.Store.close t;
  let t2, recovered = ok (Serve.Store.open_ ~path) in
  Fun.protect ~finally:(fun () -> Serve.Store.close t2) @@ fun () ->
  Alcotest.(check int) "one live record" 1 (List.length recovered);
  Alcotest.(check string) "live record bit-identical" (answer_bytes a)
    (answer_bytes (List.assoc "k" recovered))

(* ================================================================== *)
(* Supervised daemon + persistent store                                *)
(* ================================================================== *)

(* Cheap subset of the differential battery for process-pool runs. *)
let supervised_queries net =
  List.filter
    (fun (name, _) ->
      List.mem name [ "exists-flip bnb"; "tolerance"; "certify" ])
    (differential_queries net)

let test_daemon_store_write_through_and_recovery () =
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  let queries = supervised_queries net in
  let digest0, recorded =
    let d = test_daemon ~cache_cap_bytes:(1 lsl 26) ~store_path:path () in
    Fun.protect ~finally:(fun () -> D.stop d) @@ fun () ->
    with_client d @@ fun c ->
    let digest = ok (C.load c net) in
    let recorded =
      List.map
        (fun (name, q) ->
          let _, a = answer_of_reply name (ok (C.query c ~digest q)) in
          (name, q, answer_bytes a))
        queries
    in
    (match D.store_stats d with
    | Some st ->
        Alcotest.(check int) "every decided answer journaled"
          (List.length queries) st.Serve.Store.appends
    | None -> Alcotest.fail "store stats must be exposed");
    Alcotest.(check bool) "cache weighs its bytes" true (D.cache_weight d > 0);
    (digest, recorded)
  in
  (* Cold restart on the same journal: answers come back from the
     recovered cache, bit-identical, certificates re-validated. *)
  let d = test_daemon ~cache_cap_bytes:(1 lsl 26) ~store_path:path () in
  Fun.protect ~finally:(fun () -> D.stop d) @@ fun () ->
  (match D.store_stats d with
  | Some st ->
      Alcotest.(check int) "all records recovered" (List.length queries)
        st.Serve.Store.recovered;
      Alcotest.(check int) "none dropped" 0 st.Serve.Store.dropped
  | None -> Alcotest.fail "store stats must be exposed");
  Alcotest.(check bool) "recovered answers weigh in" true (D.cache_weight d > 0);
  with_client d @@ fun c ->
  let digest = ok (C.load c net) in
  Alcotest.(check string) "digest stable across restart" digest0 digest;
  List.iter
    (fun (name, q, bytes) ->
      let cached, a = answer_of_reply name (ok (C.query c ~digest q)) in
      Alcotest.(check bool) (name ^ ": served from recovered store") true cached;
      Alcotest.(check string) (name ^ ": bit-identical across restart") bytes
        (answer_bytes a);
      match (q, a) with
      | P.Certify { spec; input; label }, P.Certified { verdict; cert } -> (
          match
            B.check_certified net spec ~input ~label
              { B.cv_verdict = verdict; cv_cert = cert }
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "recovered certificate rejected: %s" e)
      | _ -> ())
    recorded

let test_daemon_store_torn_shutdown () =
  with_clean_faults @@ fun () ->
  with_store_path @@ fun path ->
  let net = toy_qnet () in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let query_d d' =
    P.Exists_flip
      { backend = B.Bnb; spec = N.symmetric ~delta:d' ~bias_noise:false; input; label }
  in
  let survivor =
    let d = test_daemon ~store_path:path () in
    Fun.protect ~finally:(fun () -> D.stop d) @@ fun () ->
    with_client d @@ fun c ->
    let digest = ok (C.load c net) in
    let _, a1 = answer_of_reply "q1" (ok (C.query c ~digest (query_d 1))) in
    (* The next append tears mid-record and disables the journal; the
       daemon must keep serving from memory, and the stop path — which
       closes the store before any connection teardown — must stay
       clean. *)
    F.arm "serve.store.torn";
    (match answer_of_reply "q2" (ok (C.query c ~digest (query_d 2))) with
    | false, _ -> ()
    | true, _ -> Alcotest.fail "q2 cannot be cached");
    (match answer_of_reply "q3" (ok (C.query c ~digest (query_d 3))) with
    | false, _ -> ()
    | true, _ -> Alcotest.fail "q3 cannot be cached");
    answer_bytes a1
  in
  F.clear ();
  (* Recovery sheds exactly the torn record; the first answer survives
     bit-identically. *)
  let t, recovered = ok (Serve.Store.open_ ~path) in
  Fun.protect ~finally:(fun () -> Serve.Store.close t) @@ fun () ->
  Alcotest.(check int) "only the pre-tear record lives" 1 (List.length recovered);
  Alcotest.(check bool) "torn tail truncated" true
    ((Serve.Store.stats t).Serve.Store.truncated_bytes > 0);
  Alcotest.(check string) "survivor bit-identical" survivor
    (answer_bytes (snd (List.hd recovered)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "wire",
        [
          qc prop_wire_roundtrip;
          qc prop_wire_concat;
          qc prop_wire_truncation_typed;
          qc prop_wire_decode_total;
          Alcotest.test_case "bad magic" `Quick test_wire_bad_magic;
          Alcotest.test_case "oversized" `Quick test_wire_oversized;
          Alcotest.test_case "encode cap" `Quick test_wire_encode_cap;
          Alcotest.test_case "short read at every offset" `Quick
            test_wire_short_read_every_offset;
        ] );
      ( "protocol",
        [
          qc prop_request_roundtrip;
          qc prop_reply_roundtrip;
          qc prop_decode_total;
          Alcotest.test_case "version rejected" `Quick test_protocol_version_rejected;
          Alcotest.test_case "explicit limit survives" `Quick test_explicit_limit_survives;
          Alcotest.test_case "query_key ignores budget" `Quick test_query_key_ignores_budget;
          Alcotest.test_case "answer_decided" `Quick test_answer_decided;
          Alcotest.test_case "counted cert roundtrip" `Quick test_counted_cert_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite bumps" `Quick test_lru_overwrite_bumps;
          Alcotest.test_case "cap zero" `Quick test_lru_cap_zero;
          Alcotest.test_case "byte weights" `Quick test_lru_byte_weights;
        ] );
      ( "store",
        [
          Alcotest.test_case "journal roundtrip, last-wins" `Quick test_store_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick test_store_torn_tail;
          Alcotest.test_case "framed-but-invalid dropped" `Quick
            test_store_invalid_record_dropped;
          Alcotest.test_case "serve.store.torn faultpoint" `Quick
            test_store_torn_faultpoint;
          Alcotest.test_case "self-compaction" `Quick test_store_compaction;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run + exceptions" `Quick test_pool_run_and_exceptions;
          Alcotest.test_case "worker affinity" `Quick test_pool_worker_affinity;
          Alcotest.test_case "shutdown drains" `Quick test_pool_shutdown_semantics;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "survives malformed input" `Quick test_daemon_survives_garbage;
          Alcotest.test_case "unknown digest" `Quick test_daemon_unknown_digest;
          Alcotest.test_case "unsupported shape typed error" `Quick
            test_daemon_unsupported_shape_typed_error;
          Alcotest.test_case "budget answers not cached" `Quick
            test_daemon_budget_answers_not_cached;
        ] );
      ( "differential",
        [
          Alcotest.test_case "cold + warm = direct" `Quick test_differential_cold_warm;
          Alcotest.test_case "cache hit bit-identical + certs" `Quick
            test_differential_cache_hit_and_certificates;
        ] );
      ( "soak",
        [
          Alcotest.test_case "deterministic overload rejection" `Quick
            test_daemon_overload_rejection;
          Alcotest.test_case "16 clients under faults" `Quick test_daemon_soak_under_faults;
        ] );
      ( "crash-isolation",
        [
          Alcotest.test_case "store write-through + recovery" `Quick
            test_daemon_store_write_through_and_recovery;
          Alcotest.test_case "shutdown with a torn journal" `Quick
            test_daemon_store_torn_shutdown;
        ] );
      ( "warm-lru",
        [
          Alcotest.test_case "single-domain LRU semantics" `Quick test_warm_lru_single_domain;
          Alcotest.test_case "multi-domain eviction identity" `Quick
            test_warm_lru_multi_domain;
        ] );
    ]
