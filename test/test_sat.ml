(* SAT solver tests: hand-written instances, pigeonhole, random CNFs
   cross-checked against a brute-force enumerator, and incremental use. *)

let lit v sign = Sat.Lit.make v sign

(* ---------- brute force reference ---------- *)

let brute_force_sat n_vars clauses =
  (* clauses: (var, sign) list list *)
  let rec try_assignment assignment v =
    if v = n_vars then
      List.for_all
        (List.exists (fun (var, sign) -> assignment.(var) = sign))
        clauses
    else begin
      assignment.(v) <- true;
      try_assignment assignment (v + 1)
      ||
      (assignment.(v) <- false;
       try_assignment assignment (v + 1))
    end
  in
  try_assignment (Array.make n_vars false) 0

let solver_of_clauses n_vars clauses =
  let s = Sat.Solver.create () in
  let vars = Array.init n_vars (fun _ -> Sat.Solver.new_var s) in
  List.iter
    (fun clause ->
      Sat.Solver.add_clause s
        (List.map (fun (v, sign) -> Sat.Lit.make vars.(v) sign) clause))
    clauses;
  s

let model_satisfies model clauses =
  List.for_all
    (List.exists (fun (var, sign) -> model.(var) = sign))
    clauses

(* ---------- unit tests ---------- *)

let test_empty_formula () =
  let s = Sat.Solver.create () in
  Alcotest.(check bool) "empty formula sat" true (Sat.Solver.solve s = Sat)

let test_single_unit () =
  let s = Sat.Solver.create () in
  let v = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit v true ];
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat);
  Alcotest.(check bool) "v is true" true (Sat.Solver.value s (lit v true))

let test_contradiction () =
  let s = Sat.Solver.create () in
  let v = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit v true ];
  Sat.Solver.add_clause s [ lit v false ];
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Unsat);
  Alcotest.(check bool) "solver flagged" false (Sat.Solver.okay s)

let test_empty_clause () =
  let s = Sat.Solver.create () in
  Sat.Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Unsat)

let test_tautology_dropped () =
  let s = Sat.Solver.create () in
  let v = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit v true; lit v false ];
  Alcotest.(check int) "no clause stored" 0 (Sat.Solver.nclauses s);
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat)

let test_implication_chain () =
  (* x0 -> x1 -> ... -> x19, x0 forced true: all true. *)
  let s = Sat.Solver.create () in
  let vars = Array.init 20 (fun _ -> Sat.Solver.new_var s) in
  for i = 0 to 18 do
    Sat.Solver.add_clause s [ lit vars.(i) false; lit vars.(i + 1) true ]
  done;
  Sat.Solver.add_clause s [ lit vars.(0) true ];
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "chain var true" true (Sat.Solver.value s (lit v true)))
    vars

let test_xor_chain_unsat () =
  (* x0 xor x1, x1 xor x2, x0 xor x2 with odd parity constraint: encode
     x0=1, x0 xor x1 = 1, x1 xor x2 = 1, x0 xor x2 = 1 -> unsat. *)
  let s = Sat.Solver.create () in
  let x0 = Sat.Solver.new_var s in
  let x1 = Sat.Solver.new_var s in
  let x2 = Sat.Solver.new_var s in
  let xor_true a b =
    Sat.Solver.add_clause s [ lit a true; lit b true ];
    Sat.Solver.add_clause s [ lit a false; lit b false ]
  in
  xor_true x0 x1;
  xor_true x1 x2;
  xor_true x0 x2;
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Unsat)

let pigeonhole_clauses ~pigeons ~holes =
  (* Variable p*holes + h means pigeon p sits in hole h. *)
  let var p h = (p * holes) + h in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (fun h -> (var p h, true)) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ (var p1 h, false); (var p2 h, false) ] :: !clauses
      done
    done
  done;
  (pigeons * holes, !clauses)

let test_pigeonhole_unsat () =
  let n, clauses = pigeonhole_clauses ~pigeons:6 ~holes:5 in
  let s = solver_of_clauses n clauses in
  Alcotest.(check bool) "php(6,5) unsat" true (Sat.Solver.solve s = Unsat)

let test_pigeonhole_sat () =
  let n, clauses = pigeonhole_clauses ~pigeons:5 ~holes:5 in
  let s = solver_of_clauses n clauses in
  Alcotest.(check bool) "php(5,5) sat" true (Sat.Solver.solve s = Sat);
  Alcotest.(check bool) "model ok" true
    (model_satisfies (Sat.Solver.model s) clauses)

let test_assumptions () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let b = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit a false; lit b true ];
  (* a -> b *)
  Alcotest.(check bool) "sat under a" true
    (Sat.Solver.solve ~assumptions:[ lit a true ] s = Sat);
  Alcotest.(check bool) "b forced" true (Sat.Solver.value s (lit b true));
  Alcotest.(check bool) "unsat under a & !b" true
    (Sat.Solver.solve ~assumptions:[ lit a true; lit b false ] s = Unsat);
  (* The solver must remain usable after an assumption-unsat answer. *)
  Alcotest.(check bool) "still sat without assumptions" true
    (Sat.Solver.solve s = Sat)

let test_incremental_blocking () =
  (* Enumerate all 4 models of a 2-variable free formula by blocking. *)
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let b = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit a true; lit a false ];
  (* tautology dropped; vars still free *)
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count <= 4 do
    match Sat.Solver.solve s with
    | Sat ->
        incr count;
        let block =
          List.map
            (fun v -> Sat.Lit.make v (not (Sat.Solver.value s (lit v true))))
            [ a; b ]
        in
        Sat.Solver.add_clause s block
    | Unsat -> continue := false
    | Unknown -> Alcotest.fail "unexpected unknown"
  done;
  Alcotest.(check int) "4 models" 4 !count

let test_max_conflicts_unknown () =
  (* A hard instance with a 1-conflict budget should give Unknown. *)
  let n, clauses = pigeonhole_clauses ~pigeons:8 ~holes:7 in
  let s = solver_of_clauses n clauses in
  let r = Sat.Solver.solve ~max_conflicts:1 s in
  Alcotest.(check bool) "unknown or unsat" true (r = Unknown || r = Unsat)

(* ---------- random CNF vs brute force ---------- *)

let random_cnf_gen =
  let open QCheck.Gen in
  let* n_vars = int_range 1 8 in
  let* n_clauses = int_range 1 30 in
  let clause =
    let* len = int_range 1 4 in
    list_size (return len)
      (pair (int_range 0 (n_vars - 1)) QCheck.Gen.bool)
  in
  let* clauses = list_size (return n_clauses) clause in
  return (n_vars, clauses)

let random_cnf_arbitrary =
  QCheck.make ~print:(fun (n, cs) ->
      Printf.sprintf "%d vars, %d clauses" n (List.length cs))
    random_cnf_gen

let prop_matches_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:300
    random_cnf_arbitrary (fun (n_vars, clauses) ->
      let expected = brute_force_sat n_vars clauses in
      let s = solver_of_clauses n_vars clauses in
      match Sat.Solver.solve s with
      | Sat -> expected && model_satisfies (Sat.Solver.model s) clauses
      | Unsat -> not expected
      | Unknown -> false)

let prop_model_always_satisfies =
  QCheck.Test.make ~name:"sat models satisfy all clauses" ~count:300
    random_cnf_arbitrary (fun (n_vars, clauses) ->
      let s = solver_of_clauses n_vars clauses in
      match Sat.Solver.solve s with
      | Sat -> model_satisfies (Sat.Solver.model s) clauses
      | Unsat | Unknown -> true)

let prop_assumption_consistency =
  (* If F is sat with model m, then F is sat under the assumptions m. *)
  QCheck.Test.make ~name:"re-solving under model assumptions stays sat"
    ~count:150 random_cnf_arbitrary (fun (n_vars, clauses) ->
      let s = solver_of_clauses n_vars clauses in
      match Sat.Solver.solve s with
      | Sat ->
          let m = Sat.Solver.model s in
          let assumptions = List.init n_vars (fun v -> Sat.Lit.make v m.(v)) in
          Sat.Solver.solve ~assumptions s = Sat
      | Unsat | Unknown -> true)

(* ---------- priority branching ---------- *)

let test_priority_branching_decides_inputs_first () =
  (* An implication x0 -> x1 -> x2; with priority on x0 and positive saved
     phase forced via clauses, the solver still answers correctly. Then
     check that priority does not change satisfiability on a random-ish
     instance. *)
  let s = Sat.Solver.create () in
  let vars = Array.init 10 (fun _ -> Sat.Solver.new_var s) in
  for i = 0 to 8 do
    Sat.Solver.add_clause s [ lit vars.(i) false; lit vars.(i + 1) true ]
  done;
  Sat.Solver.set_priority s (Array.to_list vars);
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat);
  Sat.Solver.add_clause s [ lit vars.(0) true ];
  Sat.Solver.add_clause s [ lit vars.(9) false ];
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Unsat)

let test_priority_rejects_unknown_var () =
  let s = Sat.Solver.create () in
  Alcotest.check_raises "bad var" (Invalid_argument "Solver.set_priority")
    (fun () -> Sat.Solver.set_priority s [ 3 ])

let prop_priority_preserves_answers =
  QCheck.Test.make ~name:"priority branching preserves sat answers" ~count:150
    random_cnf_arbitrary (fun (n_vars, clauses) ->
      let reference =
        let s = solver_of_clauses n_vars clauses in
        Sat.Solver.solve s
      in
      let with_priority =
        let s = solver_of_clauses n_vars clauses in
        Sat.Solver.set_priority s (List.init n_vars Fun.id);
        Sat.Solver.solve s
      in
      reference = with_priority)

(* ---------- veca / lit internals ---------- *)

let test_veca_basics () =
  let v = Sat.Veca.create () in
  Alcotest.(check int) "empty" 0 (Sat.Veca.length v);
  for i = 1 to 100 do
    Sat.Veca.push v i
  done;
  Alcotest.(check int) "length" 100 (Sat.Veca.length v);
  Alcotest.(check int) "get" 42 (Sat.Veca.get v 41);
  Alcotest.(check int) "pop" 100 (Sat.Veca.pop v);
  Alcotest.(check int) "after pop" 99 (Sat.Veca.length v);
  Sat.Veca.set v 0 7;
  Alcotest.(check int) "set" 7 (Sat.Veca.get v 0);
  Sat.Veca.shrink v 10;
  Alcotest.(check int) "shrunk" 10 (Sat.Veca.length v);
  Sat.Veca.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check bool) "filtered" true
    (List.for_all (fun x -> x mod 2 = 0) (Sat.Veca.to_list v));
  Sat.Veca.clear v;
  Alcotest.(check int) "cleared" 0 (Sat.Veca.length v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Veca.pop: empty")
    (fun () -> ignore (Sat.Veca.pop v))

let test_veca_sort_and_iter () =
  let v = Sat.Veca.of_list [ 3; 1; 2 ] in
  Sat.Veca.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Sat.Veca.to_list v);
  let acc = ref 0 in
  Sat.Veca.iter (fun x -> acc := !acc + x) v;
  Alcotest.(check int) "iter sum" 6 !acc;
  Alcotest.(check bool) "exists" true (Sat.Veca.exists (fun x -> x = 2) v)

let test_lit_encoding () =
  let l = Sat.Lit.make 5 true in
  Alcotest.(check int) "var" 5 (Sat.Lit.var l);
  Alcotest.(check bool) "pos" true (Sat.Lit.is_pos l);
  Alcotest.(check bool) "neg flips" false (Sat.Lit.is_pos (Sat.Lit.neg l));
  Alcotest.(check int) "neg same var" 5 (Sat.Lit.var (Sat.Lit.neg l));
  Alcotest.(check bool) "double neg" true (Sat.Lit.equal l (Sat.Lit.neg (Sat.Lit.neg l)));
  Alcotest.(check int) "dimacs pos" 6 (Sat.Lit.to_dimacs l);
  Alcotest.(check int) "dimacs neg" (-6) (Sat.Lit.to_dimacs (Sat.Lit.neg l));
  Alcotest.(check bool) "dimacs roundtrip" true
    (Sat.Lit.equal l (Sat.Lit.of_dimacs 6));
  Alcotest.check_raises "zero" (Invalid_argument "Lit.of_dimacs: zero")
    (fun () -> ignore (Sat.Lit.of_dimacs 0))

(* ---------- mailbox / portfolio plumbing ---------- *)

let test_mailbox_publish_drain () =
  let mb = Sat.Mailbox.create ~slots:8 in
  let r1 = Sat.Mailbox.reader mb in
  Sat.Mailbox.publish mb ~src:0 [ lit 1 true ];
  Sat.Mailbox.publish mb ~src:1 [ lit 2 false ];
  Sat.Mailbox.publish mb ~src:0 [ lit 3 true; lit 4 false ];
  let got = ref [] in
  Sat.Mailbox.drain r1 ~self:1 (fun c -> got := c :: !got);
  (* self=1 skips src 1's message; order is oldest first. *)
  Alcotest.(check int) "own message skipped" 2 (List.length !got);
  Alcotest.(check bool) "oldest first" true
    (List.rev !got
    = [ [ lit 1 true ]; [ lit 3 true; lit 4 false ] ]);
  (* A second drain sees nothing new. *)
  let again = ref 0 in
  Sat.Mailbox.drain r1 ~self:1 (fun _ -> incr again);
  Alcotest.(check int) "cursor advanced" 0 !again;
  Alcotest.(check int) "published counts everything" 3 (Sat.Mailbox.published mb)

let test_mailbox_wraparound_bounded () =
  (* Publishing far more than the ring holds must not grow memory or
     deliver more than [slots] messages; the newest survive. *)
  let mb = Sat.Mailbox.create ~slots:4 in
  let r = Sat.Mailbox.reader mb in
  for i = 1 to 100 do
    Sat.Mailbox.publish mb ~src:0 [ lit i true ]
  done;
  let got = ref [] in
  Sat.Mailbox.drain r ~self:9 (fun c -> got := c :: !got);
  Alcotest.(check int) "at most slots delivered" 4 (List.length !got);
  Alcotest.(check bool) "newest message survived" true
    (List.mem [ lit 100 true ] !got)

let test_mailbox_reader_starts_at_head () =
  let mb = Sat.Mailbox.create ~slots:8 in
  Sat.Mailbox.publish mb ~src:0 [ lit 1 true ];
  let r = Sat.Mailbox.reader mb in
  let n = ref 0 in
  Sat.Mailbox.drain r ~self:9 (fun _ -> incr n);
  Alcotest.(check int) "history before the reader is invisible" 0 !n

let test_import_rejects_unsound_clause () =
  (* The instance has exactly the models of (x0 xor x1); importing the
     clause [-x0] (which excludes half of them and is NOT RUP-derivable)
     must be dropped, leaving the instance satisfiable with x0 free. *)
  let s = Sat.Solver.create () in
  let x0 = Sat.Solver.new_var s and x1 = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit x0 true; lit x1 true ];
  Sat.Solver.add_clause s [ lit x0 false; lit x1 false ];
  let poison = ref (Some [ lit x0 false ]) in
  Sat.Solver.set_clause_hooks s
    ~import:(fun () ->
      match !poison with
      | Some c ->
          poison := None;
          [ c ]
      | None -> [])
    ();
  Alcotest.(check bool) "still satisfiable" true (Sat.Solver.solve s = Sat);
  (* The poison clause was not adopted: x0=true, x1=false must remain a
     model reachable under assumptions. *)
  Alcotest.(check bool) "x0=true still allowed" true
    (Sat.Solver.solve ~assumptions:[ lit x0 true ] s = Sat)

let test_import_adopts_rup_clause () =
  (* x0=true is forced by propagation from [x0 ∨ x1] and [x0 ∨ ¬x1]; the
     unit [x0] is therefore RUP-derivable and a valid import. After
     adoption the solver answers Unsat under the assumption ¬x0. *)
  let s = Sat.Solver.create () in
  let x0 = Sat.Solver.new_var s and x1 = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit x0 true; lit x1 true ];
  Sat.Solver.add_clause s [ lit x0 true; lit x1 false ];
  let gift = ref (Some [ lit x0 true ]) in
  Sat.Solver.set_clause_hooks s
    ~import:(fun () ->
      match !gift with
      | Some c ->
          gift := None;
          [ c ]
      | None -> [])
    ();
  Alcotest.(check bool) "sat with the gift adopted" true (Sat.Solver.solve s = Sat);
  Alcotest.(check bool) "gift forces x0" true
    (Sat.Solver.solve ~assumptions:[ lit x0 false ] s = Unsat)

let test_diversified_seeds_agree () =
  (* Diversification changes the search, never the answer: the same
     pigeonhole instance stays Unsat and a satisfiable ring stays Sat
     for every seed. *)
  List.iter
    (fun seed ->
      let n, clauses = pigeonhole_clauses ~pigeons:5 ~holes:4 in
      let unsat = solver_of_clauses n clauses in
      Sat.Solver.set_diversification unsat ~seed;
      Alcotest.(check bool)
        (Printf.sprintf "php seed=%d" seed)
        true
        (Sat.Solver.solve unsat = Unsat);
      let n, clauses = pigeonhole_clauses ~pigeons:5 ~holes:5 in
      let sat = solver_of_clauses n clauses in
      Sat.Solver.set_diversification sat ~seed;
      Alcotest.(check bool)
        (Printf.sprintf "php-sat seed=%d" seed)
        true
        (Sat.Solver.solve sat = Sat))
    [ 0; 1; 2; 3; 7 ]

(* ---------- dimacs ---------- *)

let test_dimacs_roundtrip () =
  let cnf = { Sat.Dimacs.n_vars = 3; clauses = [ [ 1; -2 ]; [ 2; 3 ]; [ -1 ] ] } in
  let text = Sat.Dimacs.to_string cnf in
  let back = Sat.Dimacs.of_string text in
  Alcotest.(check int) "vars" cnf.Sat.Dimacs.n_vars back.Sat.Dimacs.n_vars;
  Alcotest.(check bool) "clauses" true
    (cnf.Sat.Dimacs.clauses = back.Sat.Dimacs.clauses)

let test_dimacs_solve () =
  let cnf =
    Sat.Dimacs.of_string "c comment\np cnf 2 2\n1 2 0\n-1 0\n"
  in
  let s = Sat.Solver.create () in
  Sat.Dimacs.load_into s cnf;
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat);
  Alcotest.(check bool) "x2 true" true (Sat.Solver.value s (lit 1 true))

let () =
  Alcotest.run "sat"
    [
      ( "solver-unit",
        [
          Alcotest.test_case "empty formula" `Quick test_empty_formula;
          Alcotest.test_case "single unit" `Quick test_single_unit;
          Alcotest.test_case "contradiction" `Quick test_contradiction;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "xor chain unsat" `Quick test_xor_chain_unsat;
          Alcotest.test_case "pigeonhole 6/5 unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole 5/5 sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental blocking" `Quick test_incremental_blocking;
          Alcotest.test_case "conflict budget" `Quick test_max_conflicts_unknown;
        ] );
      ( "solver-property",
        [
          QCheck_alcotest.to_alcotest prop_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_model_always_satisfies;
          QCheck_alcotest.to_alcotest prop_assumption_consistency;
        ] );
      ( "priority",
        [
          Alcotest.test_case "inputs-first branching" `Quick
            test_priority_branching_decides_inputs_first;
          Alcotest.test_case "rejects unknown var" `Quick test_priority_rejects_unknown_var;
          QCheck_alcotest.to_alcotest prop_priority_preserves_answers;
        ] );
      ( "internals",
        [
          Alcotest.test_case "veca basics" `Quick test_veca_basics;
          Alcotest.test_case "veca sort/iter" `Quick test_veca_sort_and_iter;
          Alcotest.test_case "lit encoding" `Quick test_lit_encoding;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "parse and solve" `Quick test_dimacs_solve;
        ] );
      ( "portfolio-plumbing",
        [
          Alcotest.test_case "mailbox publish/drain" `Quick
            test_mailbox_publish_drain;
          Alcotest.test_case "mailbox wraparound bounded" `Quick
            test_mailbox_wraparound_bounded;
          Alcotest.test_case "reader starts at head" `Quick
            test_mailbox_reader_starts_at_head;
          Alcotest.test_case "import rejects unsound clause" `Quick
            test_import_rejects_unsound_clause;
          Alcotest.test_case "import adopts RUP clause" `Quick
            test_import_adopts_rup_clause;
          Alcotest.test_case "diversified seeds agree" `Quick
            test_diversified_seeds_agree;
        ] );
    ]
