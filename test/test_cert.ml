(* Certificate subsystem tests: DRUP proof logging on the CDCL solver,
   the independent lib/cert checker, certified verdicts through Smtlite /
   Backend / Tolerance, and mutation tests proving that corrupted proofs
   (the signature of a buggy solver) are rejected. *)

module S = Sat.Solver
module P = Cert.Proof
module R = Cert.Rup
module V = Cert.Verdict

let lit v sign = Sat.Lit.make v sign

let pigeonhole_clauses ~pigeons ~holes =
  let var p h = (p * holes) + h in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (fun h -> (var p h, true)) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ (var p1 h, false); (var p2 h, false) ] :: !clauses
      done
    done
  done;
  (pigeons * holes, !clauses)

(* Solve with a trace attached and return (result, solver, trace). *)
let traced_solve ?assumptions ?max_learnts n_vars clauses =
  let s = S.create () in
  let trace = P.attach s in
  let vars = Array.init n_vars (fun _ -> S.new_var s) in
  (match max_learnts with None -> () | Some n -> S.set_max_learnts s n);
  List.iter
    (fun clause ->
      S.add_clause s (List.map (fun (v, sign) -> Sat.Lit.make vars.(v) sign) clause))
    clauses;
  let r = S.solve ?assumptions s in
  (r, s, trace)

let check_ok what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: certificate rejected: %s" what e

let check_rejected what = function
  | Ok () -> Alcotest.failf "%s: corrupted certificate accepted" what
  | Error _ -> ()

let unsat_cert what s trace =
  match V.of_trace_unsat ~n_vars:(S.nvars s) trace with
  | Ok c -> c
  | Error e -> Alcotest.failf "%s: no refutation certificate: %s" what e

(* ---------- checker on solver proofs ---------- *)

let test_php_proof_checks () =
  let n, clauses = pigeonhole_clauses ~pigeons:6 ~holes:5 in
  let r, s, trace = traced_solve n clauses in
  Alcotest.(check bool) "unsat" true (r = S.Unsat);
  let cert = unsat_cert "php" s trace in
  check_ok "php(6,5)" (V.check cert)

let test_trivial_unsat_proof () =
  (* Contradiction found during add_clause (level-0), before any search. *)
  let r, s, trace = traced_solve 1 [ [ (0, true) ]; [ (0, false) ] ] in
  Alcotest.(check bool) "unsat" true (r = S.Unsat);
  check_ok "unit contradiction" (V.check (unsat_cert "trivial" s trace))

let test_sat_model_certificate () =
  let n, clauses = pigeonhole_clauses ~pigeons:5 ~holes:5 in
  let r, s, trace = traced_solve n clauses in
  Alcotest.(check bool) "sat" true (r = S.Sat);
  let cert =
    V.of_trace_model ~n_vars:(S.nvars s) ~assumptions:[] ~model:(S.model s) trace
  in
  check_ok "php(5,5) model" (V.check cert)

let test_assumptions_proof () =
  (* a -> b; UNSAT under {a, !b}. The proof must check with the
     assumptions and be rejected without them (the CNF alone is sat). *)
  let r, s, trace =
    traced_solve 2
      [ [ (0, false); (1, true) ] ]
      ~assumptions:[ lit 0 true; lit 1 false ]
  in
  Alcotest.(check bool) "unsat under assumptions" true (r = S.Unsat);
  let cert = unsat_cert "assumptions" s trace in
  (match cert with
  | V.Refutation { assumptions; cnf; proof; n_vars } ->
      Alcotest.(check int) "two assumptions" 2 (List.length assumptions);
      check_ok "with assumptions" (V.check cert);
      check_rejected "without assumptions"
        (R.check_unsat ~n_vars ~cnf ~assumptions:[] ~proof)
  | V.Model _ -> Alcotest.fail "expected a refutation");
  (* The solver (and its trace) stay usable: a later unconditional solve
     is Sat and earlier Empty events must not poison anything. *)
  Alcotest.(check bool) "sat without assumptions" true (S.solve s = S.Sat)

let test_deletion_and_restarts_stay_valid () =
  (* A tiny learnt limit forces reduce_db; php(7,6) takes well over 256
     conflicts, so Luby restarts interleave too. *)
  let n, clauses = pigeonhole_clauses ~pigeons:7 ~holes:6 in
  let r, s, trace = traced_solve n clauses ~max_learnts:20 in
  Alcotest.(check bool) "unsat" true (r = S.Unsat);
  let stats = S.stats s in
  Alcotest.(check bool) "restarts occurred" true (stats.S.restarts > 0);
  let deletions = ref 0 in
  P.iter (function P.Delete _ -> incr deletions | _ -> ()) trace;
  Alcotest.(check bool) "deletions logged" true (!deletions > 0);
  check_ok "php(7,6) with deletion" (V.check (unsat_cert "php76" s trace))

let test_incremental_session_certificates () =
  (* Same solver, several answers; each Unsat snapshot must check on its
     own even though the trace keeps growing. *)
  let s = S.create () in
  let trace = P.attach s in
  let a = S.new_var s and b = S.new_var s in
  S.add_clause s [ lit a false; lit b true ];
  Alcotest.(check bool) "unsat 1" true
    (S.solve ~assumptions:[ lit a true; lit b false ] s = S.Unsat);
  let c1 = unsat_cert "probe1" s trace in
  check_ok "probe 1" (V.check c1);
  Alcotest.(check bool) "sat between" true (S.solve s = S.Sat);
  let m =
    V.of_trace_model ~n_vars:(S.nvars s) ~assumptions:[] ~model:(S.model s) trace
  in
  check_ok "sat between cert" (V.check m);
  S.add_clause s [ lit a true ];
  S.add_clause s [ lit b false ];
  Alcotest.(check bool) "unsat 2" true (S.solve s = S.Unsat);
  check_ok "probe 2" (V.check (unsat_cert "probe2" s trace));
  (* First certificate still checks after the session moved on. *)
  check_ok "probe 1 again" (V.check c1)

(* ---------- random CNFs: every decided answer certifies ---------- *)

let random_cnf_gen =
  let open QCheck.Gen in
  let* n_vars = int_range 1 8 in
  let* n_clauses = int_range 1 30 in
  let clause =
    let* len = int_range 1 4 in
    list_size (return len) (pair (int_range 0 (n_vars - 1)) QCheck.Gen.bool)
  in
  let* clauses = list_size (return n_clauses) clause in
  return (n_vars, clauses)

let random_cnf_arbitrary =
  QCheck.make
    ~print:(fun (n, cs) -> Printf.sprintf "%d vars, %d clauses" n (List.length cs))
    random_cnf_gen

let prop_random_cnf_certifies =
  QCheck.Test.make ~name:"random CNF answers carry valid certificates" ~count:300
    random_cnf_arbitrary (fun (n_vars, clauses) ->
      let r, s, trace = traced_solve n_vars clauses in
      match r with
      | S.Unsat -> (
          match V.of_trace_unsat ~n_vars:(S.nvars s) trace with
          | Ok cert -> V.check cert = Ok ()
          | Error _ -> false)
      | S.Sat ->
          let cert =
            V.of_trace_model ~n_vars:(S.nvars s) ~assumptions:[]
              ~model:(S.model s) trace
          in
          V.check cert = Ok ()
      | S.Unknown -> false)

let prop_random_unsat_under_assumptions_certifies =
  (* Negate a random subset of a sat model as assumptions: often Unsat;
     every Unsat must yield a checkable assumption-relative proof. *)
  QCheck.Test.make ~name:"assumption-unsat answers carry valid certificates"
    ~count:150
    (QCheck.pair random_cnf_arbitrary (QCheck.make QCheck.Gen.(int_bound 1000)))
    (fun ((n_vars, clauses), seedish) ->
      let r, s, trace = traced_solve n_vars clauses in
      match r with
      | S.Sat ->
          let m = S.model s in
          let assumptions =
            List.init n_vars (fun v ->
                if (seedish lsr (v mod 10)) land 1 = 0 then lit v (not m.(v))
                else lit v m.(v))
          in
          (match S.solve ~assumptions s with
          | S.Unsat -> (
              match V.of_trace_unsat ~n_vars:(S.nvars s) trace with
              | Ok cert -> V.check cert = Ok ()
              | Error _ -> false)
          | S.Sat | S.Unknown -> true)
      | S.Unsat | S.Unknown -> true)

(* ---------- mutation tests: corrupted proofs are rejected ---------- *)

let test_mutation_dropped_literal () =
  (* The acceptance-criterion scenario: a solver bug that skips one
     literal of a learnt conflict clause. Simulated by corrupting the
     logged proof the same way; the checker must reject it. *)
  let n, clauses = pigeonhole_clauses ~pigeons:6 ~holes:5 in
  let r, s, trace = traced_solve n clauses in
  Alcotest.(check bool) "unsat" true (r = S.Unsat);
  match unsat_cert "php" s trace with
  | V.Model _ -> Alcotest.fail "expected refutation"
  | V.Refutation ({ proof; _ } as rf) ->
      let mutated = ref false in
      let proof' =
        List.map
          (function
            | R.Learn lits when (not !mutated) && List.length lits >= 2 ->
                mutated := true;
                R.Learn (List.tl lits)
            | step -> step)
          proof
      in
      Alcotest.(check bool) "found a clause to mutate" true !mutated;
      check_rejected "dropped learnt literal"
        (V.check (V.Refutation { rf with proof = proof' }))

let test_mutation_removed_lemma () =
  (* cnf: all four 2-clauses over {a,b}. Honest proof: [a], then []. A
     buggy solver that forgets to derive [a] cannot justify the empty
     clause. *)
  let cnf = [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] in
  check_ok "honest"
    (R.check_unsat ~n_vars:2 ~cnf ~assumptions:[]
       ~proof:[ R.Learn [ 1 ]; R.Learn [] ]);
  check_rejected "lemma removed"
    (R.check_unsat ~n_vars:2 ~cnf ~assumptions:[] ~proof:[ R.Learn [] ])

let test_mutation_non_rup_lemma () =
  check_rejected "non-RUP lemma"
    (R.check_unsat ~n_vars:2 ~cnf:[ [ 1; 2 ] ] ~assumptions:[]
       ~proof:[ R.Learn [ 1 ] ])

let test_mutation_delete_then_use () =
  (* {a,b}, {-a,c}, {-b,c}, {-c,d}, {-c,-d}: [c] is RUP — unless {-a,c}
     was deleted first. A solver that logs a deletion it then keeps using
     must be caught. *)
  let cnf = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 3 ]; [ -3; 4 ]; [ -3; -4 ] ] in
  check_ok "use before delete"
    (R.check_unsat ~n_vars:4 ~cnf ~assumptions:[]
       ~proof:[ R.Learn [ 3 ]; R.Delete [ -1; 3 ]; R.Learn [] ]);
  check_rejected "deleted clause still needed"
    (R.check_unsat ~n_vars:4 ~cnf ~assumptions:[]
       ~proof:[ R.Delete [ -1; 3 ]; R.Learn [ 3 ]; R.Learn [] ])

let test_mutation_unknown_deletion () =
  match
    R.check_unsat ~n_vars:3 ~cnf:[ [ 1; 2 ] ] ~assumptions:[]
      ~proof:[ R.Delete [ 1; 3 ] ]
  with
  | Ok () -> Alcotest.fail "deleting a clause never added was accepted"
  | Error e ->
      Alcotest.(check bool) "error mentions the deletion" true
        (String.length e >= 5
        &&
        let lower = String.lowercase_ascii e in
        let rec contains i =
          i + 5 <= String.length lower
          && (String.sub lower i 5 = "delet" || contains (i + 1))
        in
        contains 0)

let test_mutation_out_of_range_literal () =
  check_rejected "literal out of range"
    (R.check_unsat ~n_vars:1 ~cnf:[ [ 1 ] ] ~assumptions:[]
       ~proof:[ R.Learn [ 5 ] ]);
  check_rejected "zero literal"
    (R.check_unsat ~n_vars:1 ~cnf:[ [ 1; 0 ] ] ~assumptions:[] ~proof:[])

let test_mutation_incomplete_proof () =
  (* A proof that never reaches the empty clause proves nothing. *)
  check_rejected "no contradiction"
    (R.check_unsat ~n_vars:2 ~cnf:[ [ 1; 2 ] ] ~assumptions:[] ~proof:[])

let test_mutation_model_flip () =
  let cnf = [ [ 1; 2 ]; [ -1 ] ] in
  let model = [| false; true |] in
  check_ok "honest model" (R.model_check ~n_vars:2 ~cnf ~assumptions:[] ~model);
  check_rejected "flipped bit"
    (R.model_check ~n_vars:2 ~cnf ~assumptions:[] ~model:[| true; false |]);
  check_rejected "assumption violated"
    (R.model_check ~n_vars:2 ~cnf ~assumptions:[ -2 ] ~model)

(* ---------- drup / dimacs output ---------- *)

let test_drup_output_shape () =
  let r, s, trace = traced_solve 1 [ [ (0, true) ]; [ (0, false) ] ] in
  Alcotest.(check bool) "unsat" true (r = S.Unsat);
  let cert = unsat_cert "drup" s trace in
  (match V.to_drup cert with
  | None -> Alcotest.fail "refutation must print as DRUP"
  | Some drup ->
      let lines = String.split_on_char '\n' (String.trim drup) in
      Alcotest.(check bool) "ends with empty clause" true
        (List.nth lines (List.length lines - 1) = "0");
      List.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "line %S zero-terminated" line)
            true
            (String.length line >= 1
            && String.sub line (String.length line - 1) 1 = "0"))
        lines);
  let dimacs = V.to_dimacs cert in
  let parsed = Sat.Dimacs.of_string dimacs in
  Alcotest.(check int) "dimacs var count round-trips"
    (match cert with V.Refutation { n_vars; _ } -> n_vars | V.Model { n_vars; _ } -> n_vars)
    parsed.Sat.Dimacs.n_vars

let test_set_max_learnts_validation () =
  let s = S.create () in
  Alcotest.check_raises "zero rejected" (Invalid_argument "Solver.set_max_learnts")
    (fun () -> S.set_max_learnts s 0)

(* ---------- smtlite certified solving ---------- *)

module T = Smtlite.Term

let test_smtlite_check_certified () =
  let x = T.var ~lo:0 ~hi:10 ~name:"x" in
  let sat_f = T.eq (T.of_var x) (T.const 7) in
  (match Smtlite.Solve.check_certified sat_f with
  | Smtlite.Solve.Sat model, Some cert ->
      Alcotest.(check int) "x = 7" 7 (List.assoc x model);
      check_ok "sat formula" (V.check cert)
  | _ -> Alcotest.fail "expected certified Sat");
  let unsat_f =
    T.and_ [ T.ge (T.of_var x) (T.const 4); T.le (T.of_var x) (T.const 2) ]
  in
  match Smtlite.Solve.check_certified unsat_f with
  | Smtlite.Solve.Unsat, Some cert -> check_ok "unsat formula" (V.check cert)
  | _ -> Alcotest.fail "expected certified Unsat"

let test_smtlite_session_certified () =
  (* Warm session: assumption probes then a permanent assertion; every
     decided answer certifies against the growing trace. *)
  let x = T.var ~lo:0 ~hi:15 ~name:"xs" in
  let trace = P.create () in
  let session =
    Smtlite.Solve.open_session ~trace (T.ge (T.of_var x) (T.const 3))
  in
  let a_low = Smtlite.Solve.assume session (T.le (T.of_var x) (T.const 1)) in
  (match Smtlite.Solve.solve_certified ~assumptions:[ a_low ] session with
  | Smtlite.Solve.Unsat, Some cert -> check_ok "x<=1 probe" (V.check cert)
  | _ -> Alcotest.fail "expected certified Unsat under x<=1");
  (match Smtlite.Solve.solve_certified session with
  | Smtlite.Solve.Sat _, Some cert -> check_ok "unconstrained" (V.check cert)
  | _ -> Alcotest.fail "expected certified Sat");
  Smtlite.Solve.assert_also session (T.le (T.of_var x) (T.const 2));
  match Smtlite.Solve.solve_certified session with
  | Smtlite.Solve.Unsat, Some cert -> check_ok "final unsat" (V.check cert)
  | _ -> Alcotest.fail "expected certified Unsat"

(* ---------- backend / tolerance certified verdicts ---------- *)

let small_qnet () =
  Nn.Qnet.create
    [|
      {
        Nn.Qnet.weights = [| [| 31; -22 |]; [| -13; 41 |]; [| 17; 9 |]; [| -25; 14 |] |];
        bias = [| 55; -31; 12; -7 |];
        act = Nn.Qnet.Relu;
      };
      {
        Nn.Qnet.weights = [| [| 21; -33; 11; -9 |]; [| -20; 31; -12; 10 |] |];
        bias = [| 13; 0 |];
        act = Nn.Qnet.Identity;
      };
    |]

let test_backend_certified () =
  let net = small_qnet () in
  (* At input [50;50] the minimal flip delta is 13, so the robust case at
     12 needs real search (hundreds of lemmas) rather than collapsing to
     load-time unit propagation. *)
  let input = [| 50; 50 |] in
  let label = Nn.Qnet.predict net input in
  let robust_delta = 12 and flip_delta = 13 in
  let check_at delta =
    let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
    let cv = Fannet.Backend.certified_exists_flip net spec ~input ~label in
    check_ok
      (Printf.sprintf "backend certified at %d" delta)
      (Fannet.Backend.check_certified net spec ~input ~label cv);
    Alcotest.(check bool)
      (Printf.sprintf "agrees with bnb at %d" delta)
      true
      (Fannet.Backend.agree cv.Fannet.Backend.cv_verdict
         (Fannet.Backend.exists_flip Fannet.Backend.Bnb net spec ~input ~label));
    cv
  in
  let cv_r = check_at robust_delta in
  (match cv_r.Fannet.Backend.cv_verdict with
  | Fannet.Backend.Robust -> ()
  | v -> Alcotest.failf "expected robust, got %s" (Fannet.Backend.verdict_to_string v));
  let cv_f = check_at flip_delta in
  (match cv_f.Fannet.Backend.cv_verdict with
  | Fannet.Backend.Flip _ -> ()
  | v -> Alcotest.failf "expected flip, got %s" (Fannet.Backend.verdict_to_string v));
  (* A corrupted certificate must be rejected by check_certified. *)
  match cv_r.Fannet.Backend.cv_cert with
  | Some (V.Refutation ({ proof; _ } as rf)) ->
      (* Truncate the derivation to its first half: the surviving prefix
         never reaches the contradiction, which is what a solver bug that
         stops logging midway would look like. *)
      let len = List.length proof in
      Alcotest.(check bool) "proof is nontrivial" true (len >= 4);
      let corrupt =
        V.Refutation
          { rf with proof = List.filteri (fun i _ -> 2 * i < len) proof }
      in
      let spec = Fannet.Noise.symmetric ~delta:robust_delta ~bias_noise:false in
      check_rejected "corrupted backend certificate"
        (Fannet.Backend.check_certified net spec ~input ~label
           { cv_r with Fannet.Backend.cv_cert = Some corrupt })
  | _ -> Alcotest.fail "robust verdict must carry a refutation"

let test_tolerance_certified_bracket () =
  let net = small_qnet () in
  let input = [| 112; 87 |] in
  let label = Nn.Qnet.predict net input in
  let max_delta = 40 in
  let b =
    Fannet.Tolerance.certified_min_flip_delta net ~bias_noise:false ~max_delta
      ~input ~label
  in
  check_ok "bracket"
    (Fannet.Tolerance.check_certified_bracket net ~bias_noise:false b ~input ~label);
  let reference =
    Fannet.Tolerance.input_min_flip_delta Fannet.Backend.Bnb net ~bias_noise:false
      ~max_delta ~input ~label
  in
  Alcotest.(check bool) "agrees with bnb" true
    (b.Fannet.Tolerance.min_flip_delta = reference);
  (* Tamper with the bracket: shifting the flip delta breaks adjacency. *)
  match (b.Fannet.Tolerance.min_flip_delta, b.Fannet.Tolerance.flip_cert) with
  | Some m, Some (_, v, cert) ->
      let tampered =
        { b with Fannet.Tolerance.flip_cert = Some (m + 1, v, cert) }
      in
      check_rejected "tampered bracket"
        (Fannet.Tolerance.check_certified_bracket net ~bias_noise:false tampered
           ~input ~label)
  | _ -> Alcotest.fail "expected a flip end on this net"

(* ---------- dimacs parser tolerance (satellite) ---------- *)

let test_dimacs_satlib_dialect () =
  let text =
    "c header comment\n\np cnf 3 2\nc mid comment\n\n1 -2 0\n\t2  3 0\r\n%\n0\n\n"
  in
  let cnf = Sat.Dimacs.of_string text in
  Alcotest.(check int) "vars" 3 cnf.Sat.Dimacs.n_vars;
  Alcotest.(check bool) "clauses" true
    (cnf.Sat.Dimacs.clauses = [ [ 1; -2 ]; [ 2; 3 ] ])

let test_dimacs_multiline_clause_and_missing_zero () =
  let cnf = Sat.Dimacs.of_string "p cnf 4 2\n1 2\n-3 0\n4 -1\n" in
  Alcotest.(check bool) "clauses" true
    (cnf.Sat.Dimacs.clauses = [ [ 1; 2; -3 ]; [ 4; -1 ] ])

let test_dimacs_bad_token_still_fails () =
  Alcotest.(check bool) "garbage rejected" true
    (match Sat.Dimacs.of_string "p cnf 1 1\nfoo 0\n" with
    | exception Failure _ -> true
    | _ -> false)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs to_string/of_string roundtrip" ~count:200
    random_cnf_arbitrary (fun (n_vars, clauses) ->
      let cnf =
        {
          Sat.Dimacs.n_vars;
          clauses =
            List.map
              (List.map (fun (v, sign) -> if sign then v + 1 else -(v + 1)))
              clauses;
        }
      in
      let back = Sat.Dimacs.of_string (Sat.Dimacs.to_string cnf) in
      back.Sat.Dimacs.n_vars = n_vars
      && back.Sat.Dimacs.clauses = cnf.Sat.Dimacs.clauses)

let () =
  Alcotest.run "cert"
    [
      ( "solver-proofs",
        [
          Alcotest.test_case "php(6,5) proof checks" `Quick test_php_proof_checks;
          Alcotest.test_case "level-0 contradiction" `Quick test_trivial_unsat_proof;
          Alcotest.test_case "sat model certificate" `Quick test_sat_model_certificate;
          Alcotest.test_case "assumption proofs" `Quick test_assumptions_proof;
          Alcotest.test_case "deletion + restarts" `Quick
            test_deletion_and_restarts_stay_valid;
          Alcotest.test_case "incremental session" `Quick
            test_incremental_session_certificates;
          Alcotest.test_case "set_max_learnts validation" `Quick
            test_set_max_learnts_validation;
        ] );
      ( "solver-proofs-property",
        [
          QCheck_alcotest.to_alcotest prop_random_cnf_certifies;
          QCheck_alcotest.to_alcotest prop_random_unsat_under_assumptions_certifies;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "dropped learnt literal" `Quick
            test_mutation_dropped_literal;
          Alcotest.test_case "removed lemma" `Quick test_mutation_removed_lemma;
          Alcotest.test_case "non-RUP lemma" `Quick test_mutation_non_rup_lemma;
          Alcotest.test_case "delete then use" `Quick test_mutation_delete_then_use;
          Alcotest.test_case "unknown deletion" `Quick test_mutation_unknown_deletion;
          Alcotest.test_case "bad literals" `Quick test_mutation_out_of_range_literal;
          Alcotest.test_case "incomplete proof" `Quick test_mutation_incomplete_proof;
          Alcotest.test_case "corrupted model" `Quick test_mutation_model_flip;
        ] );
      ( "formats",
        [
          Alcotest.test_case "drup output shape" `Quick test_drup_output_shape;
          Alcotest.test_case "satlib dialect" `Quick test_dimacs_satlib_dialect;
          Alcotest.test_case "multiline clause" `Quick
            test_dimacs_multiline_clause_and_missing_zero;
          Alcotest.test_case "bad token rejected" `Quick
            test_dimacs_bad_token_still_fails;
          QCheck_alcotest.to_alcotest prop_dimacs_roundtrip;
        ] );
      ( "smtlite",
        [
          Alcotest.test_case "check_certified" `Quick test_smtlite_check_certified;
          Alcotest.test_case "session certified" `Quick
            test_smtlite_session_certified;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "backend certified" `Slow test_backend_certified;
          Alcotest.test_case "tolerance bracket" `Slow
            test_tolerance_certified_bracket;
        ] );
    ]
