(* Tests for the differential fuzzing subsystem (lib/check): generator
   invariants, corpus determinism and persistence, a clean oracle run on
   the real backends, mutation testing (deliberately broken backends must
   be caught, shrunk and reported with their seeds), and the shrinker's
   termination/minimality guarantees. *)

module B = Fannet.Backend
module N = Fannet.Noise
module Case = Check.Case

(* Small ranges keep the per-case backend cost (Smt in particular) low. *)
let max_explicit = 300

let mk_corpus ?(cases = 40) ?(seed = 7) () =
  Check.Gen.corpus ~seed ~cases ~max_explicit

let explicit = B.Explicit { limit = B.default_explicit_limit }

let ground_truth (c : Case.t) =
  B.exists_flip explicit c.net c.spec ~input:c.input ~label:c.label

(* ---------- generators ---------- *)

let test_gen_invariants () =
  let corpus = mk_corpus ~cases:60 () in
  Alcotest.(check int) "corpus size" 60 (List.length corpus);
  List.iteri
    (fun i (c : Case.t) ->
      Alcotest.(check int) "ids are positions" i c.id;
      let n_in = Nn.Qnet.in_dim c.net in
      Alcotest.(check int) "input dimension" n_in (Array.length c.input);
      Array.iter
        (fun v ->
          Alcotest.(check bool) "input component in [1,60]" true (v >= 1 && v <= 60))
        c.input;
      Alcotest.(check int) "label is the noise-free prediction"
        (Nn.Qnet.predict c.net c.input) c.label;
      Alcotest.(check bool) "explicit enumeration tractable" true
        (N.spec_size c.spec ~n_inputs:n_in <= max_explicit);
      Alcotest.(check bool) "noise range spans zero" true
        (c.spec.N.delta_lo <= 0 && c.spec.N.delta_hi >= 0))
    corpus

let test_case_replayable_from_seed () =
  (* A case must be a pure function of its recorded per-case seed: that is
     what makes a failure report reproducible from two integers. *)
  List.iter
    (fun (c : Case.t) ->
      let replayed = Check.Gen.case ~seed:c.seed ~id:c.id ~max_explicit in
      Alcotest.(check bool) "replayed case identical" true (Case.equal c replayed))
    (mk_corpus ~cases:20 ())

let test_corpus_deterministic () =
  let a = mk_corpus () and b = mk_corpus () in
  Alcotest.(check bool) "same seed, same corpus" true
    (List.for_all2 Case.equal a b);
  let c = mk_corpus ~seed:8 () in
  Alcotest.(check bool) "different seed, different corpus" true
    (not (List.for_all2 Case.equal a c))

(* ---------- corpus persistence ---------- *)

let test_corpus_json_roundtrip () =
  let corpus = mk_corpus ~cases:12 () in
  let path = Filename.temp_file "fannet_corpus" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Case.save_corpus path ~seed:7 corpus;
      match Case.load_corpus path with
      | Error e -> Alcotest.fail e
      | Ok (seed, reloaded) ->
          Alcotest.(check int) "seed preserved" 7 seed;
          Alcotest.(check int) "case count" 12 (List.length reloaded);
          Alcotest.(check bool) "cases bit-identical" true
            (List.for_all2 Case.equal corpus reloaded))

let test_corpus_json_rejects_garbage () =
  (match Case.load_corpus "/nonexistent/fannet-corpus.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file");
  let bad =
    Util.Json.(Obj [ ("format", String "something-else"); ("version", Int 1) ])
  in
  (match Case.corpus_of_json bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected format error");
  match Case.of_json (Util.Json.Obj [ ("id", Util.Json.Int 0) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-field error"

(* ---------- clean differential run ---------- *)

let test_fuzz_clean_run () =
  let report = Check.Fuzz.run ~max_explicit ~cases:50 ~seed:42 () in
  Alcotest.(check bool) "no failures on real backends" true
    (Check.Fuzz.report_ok report);
  Alcotest.(check int) "all cases ran" 50 report.Check.Fuzz.cases_run;
  Alcotest.(check int) "every case decided"
    50 (report.Check.Fuzz.robust + report.Check.Fuzz.flipped)

(* ---------- mutation testing: injected bugs must be caught ---------- *)

(* Cases whose ground truth is a flip: forcing a complete backend to
   answer Robust on them is a guaranteed disagreement. *)
let flipped_cases =
  lazy
    (let flipped =
       List.filter
         (fun c -> match ground_truth c with B.Flip _ -> true | _ -> false)
         (mk_corpus ~cases:150 ())
     in
     Alcotest.(check bool) "corpus contains flipping cases" true (flipped <> []);
     flipped)

let test_mutation_unsound_bnb_caught () =
  let mutated backend net spec ~input ~label =
    match backend with
    | B.Bnb -> B.Robust (* injected bug: never finds the flip *)
    | b -> B.exists_flip b net spec ~input ~label
  in
  let cases = Lazy.force flipped_cases in
  let report = Check.Fuzz.run_cases ~run:mutated ~master_seed:7 cases in
  Alcotest.(check int) "every flipping case caught"
    (List.length cases)
    (List.length report.Check.Fuzz.case_failures);
  List.iter
    (fun (cf : Check.Fuzz.case_failure) ->
      Alcotest.(check bool) "agreement failure names bnb" true
        (List.exists
           (fun (f : Check.Oracle.failure) ->
             f.property = "complete-agreement" && f.backend = "bnb")
           cf.failures);
      (* The shrunk reproducer must still fail and must not be larger. *)
      Alcotest.(check bool) "shrunk case still fails" true
        (cf.shrunk_failures <> []);
      Alcotest.(check bool) "shrunk case no larger" true
        (Case.size cf.shrunk <= Case.size cf.case))
    report.Check.Fuzz.case_failures;
  (* The report must hand the user a replay line with the seeds. *)
  let text = Check.Fuzz.report_to_string report in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "report has replay line" true (contains text "replay:");
  let first = List.hd report.Check.Fuzz.case_failures in
  Alcotest.(check bool) "report names the case seed" true
    (contains text (string_of_int first.Check.Fuzz.case.Case.seed))

let test_mutation_unsound_interval_caught () =
  let mutated backend net spec ~input ~label =
    match backend with
    | B.Interval -> B.Robust (* claims robustness it cannot prove *)
    | b -> B.exists_flip b net spec ~input ~label
  in
  let case = List.hd (Lazy.force flipped_cases) in
  let result = Check.Oracle.check_case ~run:mutated ~check_parallel:false case in
  Alcotest.(check bool) "interval-sound violation reported" true
    (List.exists
       (fun (f : Check.Oracle.failure) -> f.property = "interval-sound")
       result.Check.Oracle.failures)

let test_mutation_bogus_witness_caught () =
  let mutated backend net spec ~input ~label =
    match backend with
    | B.Smt ->
        (* A witness outside the declared noise range. *)
        B.Flip
          {
            N.bias = 0;
            inputs = Array.map (fun _ -> spec.N.delta_hi + 1) input;
          }
    | b -> B.exists_flip b net spec ~input ~label
  in
  let case = List.hd (mk_corpus ~cases:1 ()) in
  let result = Check.Oracle.check_case ~run:mutated ~check_parallel:false case in
  Alcotest.(check bool) "witness-valid violation reported" true
    (List.exists
       (fun (f : Check.Oracle.failure) ->
         f.property = "witness-valid" && f.backend = "smt")
       result.Check.Oracle.failures)

let test_mutation_raising_backend_reported () =
  let mutated backend net spec ~input ~label =
    match backend with
    | B.Smt -> failwith "injected crash"
    | b -> B.exists_flip b net spec ~input ~label
  in
  let case = List.hd (mk_corpus ~cases:1 ()) in
  let result = Check.Oracle.check_case ~run:mutated ~check_parallel:false case in
  Alcotest.(check bool) "exception folded into a failure" true
    (List.exists
       (fun (f : Check.Oracle.failure) -> f.backend = "smt")
       result.Check.Oracle.failures)

let test_mutation_unsound_relaxation_caught () =
  (* A wrong triangle slope inside the engine itself: the unstable-ReLU
     upper relaxation loses its -lob offset, making the symbolic bounds
     unsound. The trigger needs coefficient cancellation across unstable
     neurons — h1 = relu(d), h2 = relu(-d) and the margin 1 - h1 - h2:
     the mutated upper forms d and -d cancel to the vacuous bound
     h1 + h2 <= 0, so the whole box is claimed Robust even though d = ±2
     flips (true h1 + h2 = |d|). Random fuzz corpora essentially never
     build this shape (0/400 in a seeded sweep), which is exactly why the
     mutation hook plus a directed case is the regression test. *)
  let net =
    Nn.Qnet.create
      [|
        {
          Nn.Qnet.weights = [| [| 1 |]; [| -1 |] |];
          bias = [| 0; 0 |];
          act = Nn.Qnet.Relu;
        };
        {
          Nn.Qnet.weights = [| [| -1; -1 |]; [| 0; 0 |] |];
          bias = [| 1; 0 |];
          act = Nn.Qnet.Identity;
        };
      |]
  in
  let spec = N.absolute ~delta:2 ~bias_noise:false in
  let case =
    {
      Case.id = 0;
      seed = 0;
      net;
      input = [| 0 |];
      label = Nn.Qnet.predict net [| 0 |];
      spec;
    }
  in
  let fails c =
    (Check.Oracle.check_case ~check_parallel:false ~check_certificate:false
       ~check_portfolio:false ~check_count:false c)
      .Check.Oracle.failures
    <> []
  in
  Alcotest.(check bool) "sound engine passes the trigger case" false (fails case);
  Fun.protect
    ~finally:(fun () -> Fannet.Bnb.unsound_relaxation_for_tests := false)
    (fun () ->
      Fannet.Bnb.unsound_relaxation_for_tests := true;
      let result =
        Check.Oracle.check_case ~check_parallel:false ~check_certificate:false
          ~check_portfolio:false ~check_count:false case
      in
      Alcotest.(check bool) "wrong slope caught" true
        (result.Check.Oracle.failures <> []);
      Alcotest.(check bool) "complete-agreement failure names bnb" true
        (List.exists
           (fun (f : Check.Oracle.failure) ->
             f.property = "complete-agreement" && f.backend = "bnb")
           result.Check.Oracle.failures);
      (* The fuzz driver end to end: the mutated engine must be reported
         with a shrunk reproducer that still fails under the mutation. *)
      let report = Check.Fuzz.run_cases ~master_seed:0 [ case ] in
      (match report.Check.Fuzz.case_failures with
      | [ cf ] ->
          Alcotest.(check bool) "shrunk case still fails" true
            (cf.shrunk_failures <> []);
          Alcotest.(check bool) "shrunk case no larger" true
            (Case.size cf.shrunk <= Case.size cf.case);
          Alcotest.(check bool) "shrunk reproducer still fails standalone" true
            (fails cf.shrunk)
      | l ->
          Alcotest.fail
            (Printf.sprintf "expected exactly one case failure, got %d"
               (List.length l))))

(* ---------- shrinking ---------- *)

let test_shrink_candidates_strictly_smaller () =
  List.iter
    (fun (c : Case.t) ->
      Seq.iter
        (fun (cand : Case.t) ->
          Alcotest.(check bool) "candidate strictly smaller" true
            (Case.size cand < Case.size c);
          Alcotest.(check int) "candidate label recomputed"
            (Nn.Qnet.predict cand.net cand.input)
            cand.label)
        (Check.Shrink.candidates c))
    (mk_corpus ~cases:15 ())

let test_shrink_reaches_fixpoint () =
  (* With an always-failing predicate, greedy shrinking must terminate at
     a case from which no candidate step exists: the minimal 1-1-2 network
     with all-zero parameters and the single-point noise range. *)
  let c = List.hd (mk_corpus ~cases:1 ()) in
  let result = Check.Shrink.shrink ~fails:(fun _ -> true) c in
  Alcotest.(check bool) "no further candidates" true
    (Seq.is_empty (Check.Shrink.candidates result));
  Alcotest.(check int) "single input" 1 (Array.length result.Case.input);
  Alcotest.(check bool) "point noise range" true
    (result.Case.spec.N.delta_lo = 0 && result.Case.spec.N.delta_hi = 0);
  Alcotest.(check bool) "bias noise dropped" false result.Case.spec.N.bias_noise;
  Alcotest.(check bool) "id and seed preserved" true
    (result.Case.id = c.Case.id && result.Case.seed = c.Case.seed)

let test_shrink_preserves_failure () =
  (* The shrunk case must still satisfy the failure predicate. *)
  let c =
    List.find
      (fun (c : Case.t) -> Array.length c.input >= 2)
      (mk_corpus ~cases:30 ())
  in
  let fails (c : Case.t) = Array.length c.Case.input >= 2 in
  let result = Check.Shrink.shrink ~fails c in
  Alcotest.(check bool) "still fails" true (fails result);
  Alcotest.(check int) "shrunk to the boundary of the predicate" 2
    (Array.length result.Case.input)

(* ---------- backend helpers exposed for the oracle ---------- *)

let test_backend_run_all_and_agree () =
  let c = List.hd (mk_corpus ~cases:1 ()) in
  let results =
    B.run_all c.Case.net c.Case.spec ~input:c.Case.input ~label:c.Case.label
  in
  Alcotest.(check int) "default backend set" 5 (List.length results);
  let gt = ground_truth c in
  List.iter
    (fun (b, v) ->
      match b with
      | B.Interval -> ()
      | _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s agrees with explicit" (B.to_string b))
            true (B.agree gt v))
    results;
  Alcotest.(check bool) "verdict_equal distinguishes decisions" false
    (B.verdict_equal B.Robust (B.Unknown Resil.Budget.Incomplete))

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "invariants" `Quick test_gen_invariants;
          Alcotest.test_case "replayable from seed" `Quick test_case_replayable_from_seed;
          Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "json roundtrip" `Quick test_corpus_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_corpus_json_rejects_garbage;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean differential run" `Quick test_fuzz_clean_run;
          Alcotest.test_case "run_all/agree helpers" `Quick test_backend_run_all_and_agree;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "unsound bnb caught" `Quick test_mutation_unsound_bnb_caught;
          Alcotest.test_case "unsound interval caught" `Quick test_mutation_unsound_interval_caught;
          Alcotest.test_case "bogus witness caught" `Quick test_mutation_bogus_witness_caught;
          Alcotest.test_case "raising backend reported" `Quick test_mutation_raising_backend_reported;
          Alcotest.test_case "unsound relaxation caught" `Quick
            test_mutation_unsound_relaxation_caught;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates strictly smaller" `Quick
            test_shrink_candidates_strictly_smaller;
          Alcotest.test_case "reaches fixpoint" `Quick test_shrink_reaches_fixpoint;
          Alcotest.test_case "preserves failure" `Quick test_shrink_preserves_failure;
        ] );
    ]
