(* Quickstart: formally analyse a small integer network under relative
   input noise.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 2-input, 2-hidden (ReLU), 2-output integer network. In a real
     application this comes from Nn.Quantize.quantize applied to a trained
     float network; here we write it down directly. *)
  let net =
    Nn.Qnet.create
      [|
        { Nn.Qnet.weights = [| [| 3; -2 |]; [| -1; 2 |] |]; bias = [| 1; 0 |]; act = Nn.Qnet.Relu };
        { Nn.Qnet.weights = [| [| 2; -1 |]; [| -1; 2 |] |]; bias = [| 0; 1 |]; act = Nn.Qnet.Identity };
      |]
  in
  let input = [| 10; 12 |] in
  let label = Nn.Qnet.predict net input in
  Printf.printf "noise-free prediction for [10; 12]: L%d\n\n" label;

  (* Question (paper P2): can an integer-percent noise of at most +-DELTA
     on every input flip the classification? *)
  List.iter
    (fun delta ->
      let spec = Fannet.Noise.symmetric ~delta ~bias_noise:false in
      match Fannet.Backend.exists_flip Fannet.Backend.Bnb net spec ~input ~label with
      | Fannet.Backend.Robust ->
          Printf.printf "+-%2d%%: robust (no noise vector flips the label)\n" delta
      | Fannet.Backend.Flip v ->
          Printf.printf "+-%2d%%: FLIPS to L%d with noise %s\n" delta
            (Fannet.Noise.predict net spec ~input v)
            (Fannet.Noise.to_string v)
      | Fannet.Backend.Unknown _ -> Printf.printf "+-%2d%%: unknown\n" delta)
    [ 5; 10; 20; 30; 40 ];

  (* The noise tolerance is the largest range that is provably safe. *)
  let tol =
    Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb net ~bias_noise:false
      ~max_delta:60
      ~inputs:[| (input, label) |]
  in
  Printf.printf "\nnoise tolerance of this input: +-%d%%\n" tol;

  (* The same model as nuXmv-compatible SMV text (paper Fig. 2, behaviour
     extraction). *)
  let prog =
    Smv.Translate.network_program net
      (Smv.Translate.symmetric ~delta:1 ~bias_noise:false ~samples:[ (input, label) ])
  in
  print_endline "\nSMV model (first lines):";
  Smv.Printer.program_to_string prog
  |> String.split_on_char '\n'
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter print_endline
