(* Beyond the paper: a three-class leukemia-subtype panel (ALL / AML /
   CML) analysed with the same formal machinery. Multi-class robustness
   uses one margin per adversary class inside the branch-and-bound
   engine; everything else — P1 validation, tolerance, extraction, bias
   and sensitivity — is unchanged.

   Run with: dune exec examples/multiclass_subtypes.exe *)

let class_name = function 0 -> "ALL" | 1 -> "AML" | 2 -> "CML" | c -> Printf.sprintf "C%d" c

let () =
  (* 1. Data: 3 classes with imbalanced training counts (18/10/6). *)
  let data = Dataset.Multiclass.generate ~seed:41 () in
  let counts = Dataset.Multiclass.class_counts data.train ~n_classes:3 in
  Printf.printf "training counts: ALL %d, AML %d, CML %d\n" counts.(0) counts.(1) counts.(2);
  let genes = Dataset.Multiclass.select_genes data ~k:6 ~bins:3 in
  Printf.printf "selected genes: %s\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int genes)));
  let projected = Dataset.Multiclass.project data ~genes in

  (* 2. Train a 6-16-3 ReLU network on standardised features, fold the
     standardisation back, quantize. *)
  let train_inputs = projected.train and test_inputs = projected.test in
  let norm = Nn.Normalize.fit (Array.map fst train_inputs) in
  let vecs = Array.map (fun (x, _) -> Nn.Normalize.apply norm x) train_inputs in
  let labels = Array.map snd train_inputs in
  let rng = Util.Rng.create 5 in
  let raw = Nn.Network.create ~rng ~spec:[ 6; 16; 3 ] ~hidden_activation:Nn.Activation.Relu in
  let _history = Nn.Train.train raw ~inputs:vecs ~labels in
  let shift, scale = Nn.Normalize.shift_scale norm in
  let network = Nn.Network.fold_input_affine raw ~shift ~scale in
  let qnet = Nn.Quantize.quantize network ~weight_bits:12 in

  (* 3. P1 validation. *)
  let p1 = Fannet.Validate.p1 qnet ~inputs:test_inputs in
  Printf.printf "P1: %d/%d test samples correct (%.1f%%)\n" p1.n_correct p1.n_total
    (100. *. p1.accuracy);
  let inputs = p1.correct in

  (* 4. Noise tolerance of the 3-class network. *)
  let tol =
    Fannet.Tolerance.network_tolerance Fannet.Backend.Bnb qnet ~bias_noise:true
      ~max_delta:60 ~inputs
  in
  Printf.printf "noise tolerance: +-%d%%\n\n" tol;

  (* 5. Which subtype confusions does noise cause? *)
  let delta = tol + 6 in
  let spec = Fannet.Noise.symmetric ~delta ~bias_noise:true in
  let cexs, _ = Fannet.Extract.for_inputs ~limit_per_input:100 qnet spec ~inputs in
  Printf.printf "confusion directions at +-%d%% (%d counterexamples):\n" delta
    (List.length cexs);
  Fannet.Bias.flip_directions cexs
  |> List.iter (fun (d : Fannet.Bias.direction) ->
         Printf.printf "  %s -> %s : %d\n" (class_name d.from_label)
           (class_name d.to_label) d.count);
  let report =
    Fannet.Bias.analyze ~n_classes:3 ~training_labels:labels
      ~analysed_labels:(Array.map snd inputs) cexs
  in
  Printf.printf "per-class flip rates: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.mapi
             (fun c r -> Printf.sprintf "%s %.2f" (class_name c) r)
             report.flip_rate)));
  Printf.printf "consistent with training imbalance: %b\n\n" report.consistent_with_bias;

  (* 6. Absolute (L-infinity) noise on the same network, for contrast. *)
  print_endline "absolute-noise robustness of the first three inputs:";
  Array.iteri
    (fun i (input, label) ->
      if i < 3 then begin
        let rec search d =
          if d > 2000 then ">2000"
          else
            let abs_spec = Fannet.Noise.absolute ~delta:d ~bias_noise:false in
            match Fannet.Backend.exists_flip Fannet.Backend.Bnb qnet abs_spec ~input ~label with
            | Fannet.Backend.Flip _ -> string_of_int d
            | Fannet.Backend.Robust | Fannet.Backend.Unknown _ -> search (d * 2)
        in
        Printf.printf "  input %d (%s): first flip within +-%s expression units\n" i
          (class_name label) (search 1)
      end)
    inputs
