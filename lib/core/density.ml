type report = {
  per_input : Robustness.report array;
  mean_probability : float;
  worst : int;
}

let adversarial ?budget ?mode ?(jobs = 1) net spec ~inputs =
  let per_input =
    Util.Parallel.map ~jobs
      (fun (input, label) ->
        Robustness.probability ?budget ?mode ~jobs:1 net spec ~input ~label)
      inputs
  in
  let n = Array.length per_input in
  let mean_probability =
    if n = 0 then 0.0
    else
      Array.fold_left
        (fun acc (r : Robustness.report) -> acc +. r.Robustness.probability)
        0.0 per_input
      /. float_of_int n
  in
  let worst = ref (-1) in
  Array.iteri
    (fun i (r : Robustness.report) ->
      if
        !worst < 0
        || r.Robustness.probability
           > per_input.(!worst).Robustness.probability
      then worst := i)
    per_input;
  { per_input; mean_probability; worst = !worst }
