(** Property P3: adversarial noise-vector extraction.

    Collects the distinct noise vectors that misclassify each input — the
    noise matrix [e] of the paper's Fig. 2. Two engines answer the same
    enumeration query:

    - {!for_input} / {!for_inputs} use the branch-and-bound engine
      ({!Bnb.enumerate_flips}) — fast at every noise range;
    - {!smt_for_input} runs the paper's literal P3 loop: SAT query,
      counterexample, blocking clause [!e], re-query — on the bit-blasted
      encoding. Practical for small ranges; used as a cross-check.

    Every returned vector is re-validated against the concrete
    {!Noise.predict}.

    Enumerations accept a {!Resil.Budget} (exhaustion yields the typed
    [Budget] status with the partial corpus found so far) and, for
    {!for_input}, a checkpoint file: the enumeration cursor and the
    corpus so far are persisted in [fannet-ckpt/1] format, and a later
    run with the same checkpoint resumes exactly where a killed run
    stopped — the concatenated corpus is identical (same vectors, same
    order) to an uninterrupted run. *)

type counterexample = {
  input_index : int;         (** position in the analysed input set *)
  true_label : int;
  predicted : int;           (** class the noisy network outputs *)
  vector : Noise.vector;
}

type status =
  | Complete
  | Truncated                       (** the [limit] cap bit *)
  | Budget of Resil.Budget.reason   (** stopped by the budget; partial *)

val status_to_string : status -> string

val for_input :
  ?limit:int ->
  ?budget:Resil.Budget.t ->
  ?checkpoint:string ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  input_index:int ->
  counterexample list * status
(** All distinct adversarial noise vectors for one input ([limit] defaults
    to 10_000; [Truncated] when it bites).

    [checkpoint] names a [fannet-ckpt/1] file: progress is saved there
    periodically (atomic tmp+rename) and on a [Budget] stop, and an
    existing checkpoint for the {e same} query (network, spec, input,
    label, limit — validated by digest) is resumed seamlessly. A torn or
    corrupt checkpoint is reported on stderr and ignored (fresh start);
    a checkpoint from a different query raises [Invalid_argument]. The
    file is removed when the enumeration finishes ([Complete] or
    [Truncated]). *)

val for_inputs :
  ?limit_per_input:int ->
  ?jobs:int ->
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:Validate.labelled array ->
  counterexample list * status
(** Concatenation over an input set (the paper's "repeated for all inputs
    in the dataset"); the status is the weakest over all inputs. Inputs
    are enumerated on a {!Util.Parallel} pool (one engine per worker); the
    corpus order is by input index regardless of [?jobs]. A shared
    [budget] stops every worker cooperatively: inputs not reached before
    exhaustion contribute a [Budget] status from their entry check, so
    the result stays deterministic. *)

val smt_for_input :
  ?limit:int ->
  ?max_conflicts:int ->
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  input_index:int ->
  counterexample list * status
(** The paper's P3 blocking loop on the CDCL engine. [Budget] when
    [max_conflicts] or the budget ran out. *)

val explicit_for_input :
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  input_index:int ->
  limit:int ->
  counterexample list
(** Brute-force oracle; raises [Invalid_argument] if the range has more
    than [limit] vectors. *)
