(** Property P3: adversarial noise-vector extraction.

    Collects the distinct noise vectors that misclassify each input — the
    noise matrix [e] of the paper's Fig. 2. Two engines answer the same
    enumeration query:

    - {!for_input} / {!for_inputs} use the branch-and-bound engine
      ({!Bnb.enumerate_flips}) — fast at every noise range;
    - {!smt_for_input} runs the paper's literal P3 loop: SAT query,
      counterexample, blocking clause [!e], re-query — on the bit-blasted
      encoding. Practical for small ranges; used as a cross-check.

    Every returned vector is re-validated against the concrete
    {!Noise.predict}. *)

type counterexample = {
  input_index : int;         (** position in the analysed input set *)
  true_label : int;
  predicted : int;           (** class the noisy network outputs *)
  vector : Noise.vector;
}

type status = Complete | Truncated | Budget

val for_input :
  ?limit:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  input_index:int ->
  counterexample list * status
(** All distinct adversarial noise vectors for one input ([limit] defaults
    to 10_000; [Truncated] when it bites). *)

val for_inputs :
  ?limit_per_input:int ->
  ?jobs:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:Validate.labelled array ->
  counterexample list * status
(** Concatenation over an input set (the paper's "repeated for all inputs
    in the dataset"); the status is the weakest over all inputs. Inputs
    are enumerated on a {!Util.Parallel} pool (one engine per worker); the
    corpus order is by input index regardless of [?jobs]. *)

val smt_for_input :
  ?limit:int ->
  ?max_conflicts:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  input_index:int ->
  counterexample list * status
(** The paper's P3 blocking loop on the CDCL engine. [Budget] when
    [max_conflicts] ran out. *)

val explicit_for_input :
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  input_index:int ->
  limit:int ->
  counterexample list
(** Brute-force oracle; raises [Invalid_argument] if the range has more
    than [limit] vectors. *)
