(** Adversarial noise density over a set of test inputs.

    The paper reads noise tolerance off single inputs; this aggregates
    the quantitative view: for each analysed input, the fraction of the
    noise space that flips its prediction ({!Robustness.probability}),
    and across inputs the mean density and the most fragile input. A
    network can be qualitatively non-robust (some flip exists for every
    input) while quantitatively safe (the flipping sets are vanishingly
    small) — this report separates the two. *)

type report = {
  per_input : Robustness.report array;  (** one per analysed input *)
  mean_probability : float;             (** mean flip probability *)
  worst : int;  (** index of the input with the highest flip probability;
                    [-1] when [inputs] is empty *)
}

val adversarial :
  ?budget:Resil.Budget.t ->
  ?mode:Robustness.mode ->
  ?jobs:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:(int array * int) array ->
  report
(** [inputs] pairs each test input with its true label. [jobs]
    parallelises {e across inputs} on a {!Util.Parallel} pool (each
    per-input count runs sequentially); the per-input report order is
    deterministic and matches [inputs]. *)
