(** Analysis backends answering the paper's P2 query: does some noise
    vector in the range flip this input's classification?

    - [Bnb]: branch-and-bound with symbolic linear bounds ({!Bnb}) —
      complete and fast; the default workhorse.
    - [Smt]: bit-blast the encoding and search with the CDCL solver —
      complete, the role of nuXmv's SAT engine; practical for small noise
      ranges, compared against [Bnb] in the backend ablation.
    - [Explicit]: enumerate every noise vector — complete but exponential;
      usable for tiny ranges and as a cross-check oracle.
    - [Interval]: sound interval propagation — fast, can prove robustness
      but never produces a counterexample ([Unknown] when inconclusive).
    - [Cascade b]: interval prefilter, escalating to [b] only on
      [Unknown] — complete whenever [b] is, at interval cost on samples
      the cheap pass settles.

    Precision lattice: [Interval ⊑ Cascade b ⊑ b] for any complete [b]
    ([Bnb], [Smt], [Explicit]) — each step decides at least the queries
    of the previous one and agrees with it wherever both decide. *)

type t =
  | Bnb
  | Smt
  | Explicit of { limit : int }  (** refuses ranges above [limit] vectors *)
  | Interval
  | Cascade of t
      (** interval prefilter, then the wrapped backend on [Unknown] *)

type verdict =
  | Robust                 (** no vector in the range flips the input *)
  | Flip of Noise.vector   (** witness causing misclassification *)
  | Unknown of Resil.Budget.reason
      (** backend could not decide: [Incomplete] when the procedure is
          incomplete by construction (pure interval analysis), otherwise
          the budget cap that stopped it (deadline / conflicts / memory
          / cancelled) *)

val default_explicit_limit : int

val default_cascade : t
(** [Cascade Bnb] — the recommended production backend. *)

type cascade_stats = {
  interval_hits : int;   (** queries the interval prefilter proved robust *)
  escalations : int;     (** queries passed on to the wrapped backend *)
}

val reset_cascade_stats : unit -> unit

val cascade_stats : unit -> cascade_stats
(** Process-wide counters aggregated across worker domains, accumulated by
    every [Cascade] query since the last reset. The pair is held in a
    single atomic cell, so a snapshot is always internally consistent even
    when it races increments or {!reset_cascade_stats} — a reader can
    never combine hits from one epoch with escalations from another.
    When the observability registry is enabled the same events also feed
    the ["backend.cascade.interval_hits"/"backend.cascade.escalations"]
    counters and every query records into a per-backend
    ["backend.<name>.query_s"] latency histogram. *)

val cascade_hit_rate : cascade_stats -> float
(** Fraction of cascade queries settled by the prefilter; 0 when none ran. *)

val to_string : t -> string

val exists_flip :
  ?budget:Resil.Budget.t ->
  t -> Nn.Qnet.t -> Noise.spec -> input:int array -> label:int -> verdict
(** The input must be classified as [label] by the noise-free network for
    the paper's reading of the verdict ("noise tolerance of correctly
    classified inputs"); this is not enforced here. Any [Flip] witness is
    re-validated against the concrete {!Noise.predict} before being
    returned (defence against encoding bugs); a mismatch raises
    [Failure].

    [budget] is propagated into every backend — the SAT solver polls it
    every 64 conflicts, branch-and-bound every 64 boxes, the explicit
    enumerator every 1024 vectors — and exhaustion or cancellation
    surfaces as a typed [Unknown], never an exception. *)

val exists_flip_escalating :
  ?attempts:int ->
  ?budget:Resil.Budget.t ->
  t -> Nn.Qnet.t -> Noise.spec -> input:int array -> label:int -> verdict
(** {!exists_flip} with retry-with-escalation: a budget-exhausted
    [Unknown] is re-run up to [attempts] more times (default 0), each
    time on the next tier ([Cascade b → b], [Interval → Bnb], complete
    backends retry as themselves) with the budget doubled
    ({!Resil.Budget.scale} — the deadline restarts, so total wall time
    grows accordingly). A [Cancelled] verdict is never retried, and an
    [Incomplete] one only when escalation actually changes the
    backend. *)

val output_bounds :
  Nn.Qnet.t -> Noise.spec -> input:int array -> (int * int) array
(** Interval backend's per-output-node bounds over the whole noise range
    (x100 scale) — also used by the classification-boundary analysis. *)

type certified_verdict = {
  cv_verdict : verdict;
  cv_cert : Cert.Verdict.t option;
      (** present whenever [cv_verdict] decided ([Robust]/[Flip]) *)
}

val certified_exists_flip :
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t -> Noise.spec -> input:int array -> label:int -> certified_verdict
(** The [Smt] backend with DRUP proof logging: a [Robust] answer carries a
    {!Cert.Verdict.Refutation} of the exact bit-blasted CNF, a [Flip]
    answer a {!Cert.Verdict.Model} plus the witness (itself re-validated
    by {!Noise.predict}). Certificates are returned {e unchecked} — run
    {!check_certified} (or [Cert.Verdict.check]) to validate them
    independently of the solver. *)

val check_certified :
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  certified_verdict ->
  (unit, string) result
(** Independent validation of a {!certified_verdict}: the certificate must
    be present, of the right kind, and pass {!Cert.Verdict.check}; a
    [Flip] witness must additionally be in range and concretely
    misclassify under {!Noise.predict}. [Unknown] verdicts trivially
    pass. *)

val verdict_equal : verdict -> verdict -> bool
(** Structural equality; [Flip] witnesses compare via {!Noise.equal}. *)

val agree : verdict -> verdict -> bool
(** Same decision class — both [Robust], both [Flip] (witnesses may
    differ), or both [Unknown]. The agreement notion the differential
    fuzzer checks between complete backends. *)

val run_all :
  ?backends:t list ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  (t * verdict) list
(** Run each backend on the same query, in list order. [backends] defaults
    to all five ([Bnb], [Smt], [Explicit] at the default limit,
    [Interval], [Cascade Bnb]) — the cross-check the [lib/check] fuzzing
    oracle industrializes. *)

val verdict_to_string : verdict -> string
