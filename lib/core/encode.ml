module T = Smtlite.Term

type t = {
  bias_var : T.var option;
  input_vars : T.var array;
  outputs : T.term array;
}

let encode (net : Nn.Qnet.t) ~input (spec : Noise.spec) =
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Encode.encode: input size mismatch";
  if spec.Noise.delta_lo > 0 || spec.Noise.delta_hi < 0 then
    invalid_arg "Encode.encode: noise range must contain 0";
  let scale = Noise.scale_of spec in
  let mkvar name = T.var ~name ~lo:spec.Noise.delta_lo ~hi:spec.Noise.delta_hi in
  let bias_var = if spec.Noise.bias_noise then Some (mkvar "d0") else None in
  let input_vars =
    Array.init (Array.length input) (fun i -> mkvar (Printf.sprintf "d%d" (i + 1)))
  in
  (* Relative: x_i = X_i*100 + X_i*d_i; absolute: x_i = X_i + d_i
     (constants folded by the smart constructors). *)
  let noisy =
    Array.mapi
      (fun i x ->
        let coeff =
          match spec.Noise.kind with Noise.Relative -> x | Noise.Absolute -> 1
        in
        T.add (T.const (x * scale)) (T.mulc coeff (T.of_var input_vars.(i))))
      input
  in
  (* Layer loop with the running scale of Noise.apply: each layer's bias
     enters at the scale its inputs carry; a Sign layer's ±1 outputs reset
     that scale to 1. The input-layer bias node is the only noisy bias. *)
  let cur = ref noisy in
  let running = ref scale in
  Array.iteri
    (fun li (l : Nn.Qnet.qlayer) ->
      let x = !cur in
      let outs =
        Array.mapi
          (fun k row ->
            let b = l.Nn.Qnet.bias.(k) in
            let bias_term =
              match (li, bias_var) with
              | 0, Some d0 ->
                  T.add (T.const (b * !running)) (T.mulc b (T.of_var d0))
              | _, (Some _ | None) -> T.const (b * !running)
            in
            let pre =
              T.sum
                (bias_term
                :: List.init (Array.length row) (fun i -> T.mulc row.(i) x.(i)))
            in
            match l.Nn.Qnet.act with
            | Nn.Qnet.Relu -> T.relu pre
            | Nn.Qnet.Sign -> T.sign_ pre
            | Nn.Qnet.Identity -> pre)
          l.Nn.Qnet.weights
      in
      cur := outs;
      if l.Nn.Qnet.act = Nn.Qnet.Sign then running := 1)
    net.Nn.Qnet.layers;
  { bias_var; input_vars; outputs = !cur }

let noise_vars t =
  (match t.bias_var with Some v -> [ v ] | None -> [])
  @ Array.to_list t.input_vars

let predicted_is t c =
  let n = Array.length t.outputs in
  if c < 0 || c >= n then invalid_arg "Encode.predicted_is: class out of range";
  (* Ties go to the lower index: class c wins iff o_c > o_j for j < c and
     o_c >= o_j for j > c. *)
  T.and_
    (List.filter_map
       (fun j ->
         if j = c then None
         else if j < c then Some (T.gt t.outputs.(c) t.outputs.(j))
         else Some (T.ge t.outputs.(c) t.outputs.(j)))
       (List.init n Fun.id))

let misclassified t ~true_label = T.not_ (predicted_is t true_label)

let vector_of_model t model =
  {
    Noise.bias =
      (match t.bias_var with Some v -> T.lookup model v | None -> 0);
    inputs = Array.map (fun v -> T.lookup model v) t.input_vars;
  }

let vector_excluded t (v : Noise.vector) =
  let diffs =
    (match t.bias_var with
    | Some d0 -> [ T.not_ (T.eq (T.of_var d0) (T.const v.Noise.bias)) ]
    | None -> [])
    @ Array.to_list
        (Array.mapi
           (fun i var ->
             T.not_ (T.eq (T.of_var var) (T.const v.Noise.inputs.(i))))
           t.input_vars)
  in
  T.or_ diffs
