(** Input-noise models.

    The paper's model is {b relative} integer-percent noise: input [x_i]
    becomes [x_i ± x_i*(d_i/100)] — implemented exactly by scaling the
    whole network by 100 ([x_i*(100 + d_i)] with every bias scaled by 100;
    uniform scaling commutes with FC/ReLU/argmax, see
    {!Nn.Qnet.scale_biases}).

    An {b absolute} model is also provided (the L∞-ball setting of the
    robustness literature the paper cites): [x_i + d_i] in raw input
    units, no scaling needed. Both models optionally perturb the bias
    input node (the network's sixth input in the paper's Fig. 3a): under
    relative noise the layer-1 biases become [b*(100 + d0)], under
    absolute noise [b*(1 + d0)] — the constant-one input becoming
    [1 + d0]. *)

type kind =
  | Relative  (** percent of each input's value — the paper's model *)
  | Absolute  (** raw input units *)

type spec = {
  delta_lo : int;    (** lower bound; requires [delta_lo <= 0] *)
  delta_hi : int;    (** upper bound; requires [delta_hi >= 0] *)
  bias_noise : bool; (** include a noise node on the bias input *)
  kind : kind;
}

val symmetric : delta:int -> bias_noise:bool -> spec
(** Relative noise in [-delta, +delta]; [delta >= 0]. *)

val absolute : delta:int -> bias_noise:bool -> spec
(** Absolute noise in [-delta, +delta] input units. *)

val scale_of : spec -> int
(** The uniform network scale the model evaluates at: 100 for [Relative],
    1 for [Absolute]. Outputs of {!apply} are at this scale. *)

val spec_size : spec -> n_inputs:int -> int
(** Number of noise vectors in the range ([(hi-lo+1)^nodes]); saturates at
    [max_int] on overflow. *)

val spec_count : spec -> n_inputs:int -> Util.Bigcount.t
(** {!spec_size} without the saturation: exact while it fits an int,
    [Huge] (log2-only) beyond — the denominator of quantitative
    robustness probabilities. *)

type vector = {
  bias : int;        (** 0 when the spec has no bias noise *)
  inputs : int array;
}
(** One concrete noise assignment. *)

val zero : n_inputs:int -> vector
val in_range : spec -> vector -> bool
val equal : vector -> vector -> bool

val compare : vector -> vector -> int
(** Monomorphic total order (bias, then inputs length-lexicographically);
    same ordering the polymorphic compare produced, without its per-element
    dispatch cost. *)

val hash : vector -> int
(** Non-negative; [equal a b] implies [hash a = hash b]. For hashed dedup
    sets over counterexample corpora. *)

val to_string : vector -> string

val apply : Nn.Qnet.t -> spec -> input:int array -> vector -> int array
(** Noisy forward pass through any depth of ReLU/Sign/Identity layers.
    Outputs are at the network's final running scale: {!scale_of} the spec
    carried through ReLU/Identity layers (each layer's bias multiplied by
    the scale its inputs arrive at), reset to 1 after a Sign layer, whose
    ±1 outputs are scale-free. Argmax is unaffected by the positive
    factor, so {!predict} agrees with the unscaled network at zero
    noise. *)

val predict : Nn.Qnet.t -> spec -> input:int array -> vector -> int
(** Argmax of {!apply} (ties to the lower class, like the paper). *)

val iter_vectors : spec -> n_inputs:int -> (vector -> unit) -> unit
(** Enumerate every vector in the range (exponential; guard with
    {!spec_size} first). *)
