type kind = Relative | Absolute

type spec = {
  delta_lo : int;
  delta_hi : int;
  bias_noise : bool;
  kind : kind;
}

let symmetric ~delta ~bias_noise =
  if delta < 0 then invalid_arg "Noise.symmetric: negative delta";
  { delta_lo = -delta; delta_hi = delta; bias_noise; kind = Relative }

let absolute ~delta ~bias_noise =
  if delta < 0 then invalid_arg "Noise.absolute: negative delta";
  { delta_lo = -delta; delta_hi = delta; bias_noise; kind = Absolute }

let scale_of spec = match spec.kind with Relative -> 100 | Absolute -> 1

let check_spec spec =
  if spec.delta_lo > 0 || spec.delta_hi < 0 then
    invalid_arg "Noise: range must contain 0"

let n_nodes spec ~n_inputs = n_inputs + if spec.bias_noise then 1 else 0

let spec_size spec ~n_inputs =
  check_spec spec;
  let base = spec.delta_hi - spec.delta_lo + 1 in
  let nodes = n_nodes spec ~n_inputs in
  let rec power acc k =
    if k = 0 then acc
    else if acc > max_int / base then max_int
    else power (acc * base) (k - 1)
  in
  power 1 nodes

let spec_count spec ~n_inputs =
  check_spec spec;
  Util.Bigcount.pow
    ~base:(spec.delta_hi - spec.delta_lo + 1)
    ~exp:(n_nodes spec ~n_inputs)

type vector = { bias : int; inputs : int array }

let zero ~n_inputs = { bias = 0; inputs = Array.make n_inputs 0 }

let in_range spec v =
  let ok d = spec.delta_lo <= d && d <= spec.delta_hi in
  ok v.bias
  && (spec.bias_noise || v.bias = 0)
  && Array.for_all ok v.inputs

(* Monomorphic: these run inside enumeration/dedup hot loops where the
   polymorphic compare's tag dispatch per element is measurable. Ordering
   matches [Stdlib.compare] on [int array]: length first, then
   lexicographic. *)
let compare_inputs a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else match Int.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0
  end

let equal a b = a.bias = b.bias && compare_inputs a.inputs b.inputs = 0

let compare a b =
  match Int.compare a.bias b.bias with
  | 0 -> compare_inputs a.inputs b.inputs
  | c -> c

let hash v =
  (* FNV-style mix; equal vectors hash equally by construction. *)
  let mix h d = (h * 16777619) lxor (d + 0x2545f) in
  Array.fold_left mix (mix 0x811c9dc5 v.bias) v.inputs land max_int

let to_string v =
  Printf.sprintf "[bias %+d; %s]" v.bias
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%+d") v.inputs)))

(* The deep forward pass carries a per-layer running scale. Relative noise
   is analysed in exact integers by scaling the whole input by 100
   (x*(100 + d) instead of x*(1 + d/100)); ReLU and Identity are
   positively homogeneous, so that factor persists layer to layer and each
   layer's bias enters multiplied by the scale its inputs carry. A Sign
   layer outputs ±1 whatever its input magnitude, so the scale resets to 1
   after it. Absolute noise has scale 1 throughout. *)
let apply (net : Nn.Qnet.t) spec ~input v =
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Noise.apply: input size mismatch";
  if Array.length v.inputs <> Array.length input then
    invalid_arg "Noise.apply: noise vector size mismatch";
  let scale = scale_of spec in
  (* Relative: x*(100 + d); Absolute: x + d (scale = 1). *)
  let noisy =
    match spec.kind with
    | Relative -> Array.mapi (fun i x -> x * (scale + v.inputs.(i))) input
    | Absolute -> Array.mapi (fun i x -> x + v.inputs.(i)) input
  in
  let cur = ref noisy in
  let running = ref scale in
  Array.iteri
    (fun li (l : Nn.Qnet.qlayer) ->
      let x = !cur in
      (* The paper's noise model perturbs the input-layer bias node only;
         deeper biases are exact at the running scale. *)
      let bias_factor = if li = 0 then !running + v.bias else !running in
      let out =
        Array.mapi
          (fun k row ->
            let acc = ref (l.Nn.Qnet.bias.(k) * bias_factor) in
            Array.iteri (fun i w -> acc := !acc + (w * x.(i))) row;
            Nn.Qnet.apply_act l.Nn.Qnet.act !acc)
          l.Nn.Qnet.weights
      in
      cur := out;
      if l.Nn.Qnet.act = Nn.Qnet.Sign then running := 1)
    net.Nn.Qnet.layers;
  !cur

let predict net spec ~input v =
  let out = apply net spec ~input v in
  let best = ref 0 in
  for j = 1 to Array.length out - 1 do
    if out.(j) > out.(!best) then best := j
  done;
  !best

let iter_vectors spec ~n_inputs f =
  check_spec spec;
  let nodes = n_nodes spec ~n_inputs in
  let current = Array.make nodes spec.delta_lo in
  let emit () =
    if spec.bias_noise then
      f { bias = current.(0); inputs = Array.sub current 1 n_inputs }
    else f { bias = 0; inputs = Array.copy current }
  in
  let rec loop i =
    if i = nodes then emit ()
    else
      for d = spec.delta_lo to spec.delta_hi do
        current.(i) <- d;
        loop (i + 1)
      done
  in
  loop 0
