(** Training-bias analysis (paper §V-C.3).

    The paper observes that every misclassification flips the minority
    class L0 into the majority class L1, and ties this to the ~70 % L1
    share of the training set. This module aggregates flip directions from
    a counterexample corpus and compares them with the training
    distribution. *)

type direction = { from_label : int; to_label : int; count : int }

type report = {
  directions : direction list;      (** sorted by decreasing count *)
  flips_from : int array;           (** per true label, counterexamples *)
  inputs_flipped_from : int array;  (** per true label, distinct inputs *)
  flip_rate : float array;
      (** per true label, distinct flipped inputs divided by the number of
          analysed inputs of that label *)
  majority_class : int;             (** most frequent training label *)
  training_share : float array;     (** per label share of the training set *)
  consistent_with_bias : bool;
      (** the paper's claim: inputs of a minority class are more likely to
          be misclassified than inputs of the majority class —
          [flip_rate] of every minority class strictly exceeds the
          majority's *)
}

val flip_directions : Extract.counterexample list -> direction list

val analyze :
  n_classes:int ->
  training_labels:int array ->
  analysed_labels:int array ->
  Extract.counterexample list ->
  report
(** [analysed_labels] are the true labels of the inputs the extraction ran
    on (used to normalise flip rates per class). *)

val report_to_string : report -> string

type mass = {
  from : int;
  to_ : int;
  mass : Util.Bigcount.t;  (** noise vectors mapping [from] to [to_] *)
}

val flip_mass_by_class :
  ?budget:Resil.Budget.t ->
  ?mode:Robustness.mode ->
  n_classes:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:(int array * int) array ->
  (mass list, Resil.Budget.reason) result
(** Quantitative refinement of {!analyze}: instead of counting extracted
    counterexamples (a sample), count — by exact or approximate model
    counting over the noise space ({!Robustness.mode}) — how many noise
    vectors drive each labelled input to each wrong class, aggregated
    over [inputs] into per-direction masses sorted by decreasing mass
    (zero-mass directions omitted). The training-bias claim then rests
    on the full noise-space measure rather than on whichever
    counterexamples the extractor happened to find. [Error] when the
    budget ran out mid-sweep. *)
