module T = Smtlite.Term

(* ------------------------------------------------------------------ *)
(* Per-domain warm solver sessions.                                    *)
(*                                                                     *)
(* Opening an Smtlite session Tseitin-encodes the whole network — the  *)
(* dominant cost of a small verification query. Workers that process   *)
(* many work items about the same (network, input, label) — a binary   *)
(* search over noise magnitudes, a sweep revisiting the same sample at *)
(* several deltas, per-node sidedness boxes — should pay that cost     *)
(* once. This module keeps a pool of open sessions in domain-local     *)
(* storage, keyed by a digest of the query shape, encoded once at the  *)
(* widest requested range; every narrower probe becomes an assumption  *)
(* literal over one warm session.                                      *)
(*                                                                     *)
(* Determinism: pool entries never leave their domain, and every       *)
(* result returned from here is either witness-free (a flips/robust    *)
(* boolean — the same answer whatever learnt clauses the session has   *)
(* accumulated, because the solver is complete) or canonicalised (the  *)
(* enumeration returns the full model set, sorted). So analyses built  *)
(* on this pool keep the jobs=1 ≡ jobs=N contract even though which    *)
(* domain warms which session depends on the steal schedule.           *)
(* ------------------------------------------------------------------ *)

type probe_key = Delta of int | Box of (int * int) array

type entry = {
  enc : Encode.t;
  session : Smtlite.Solve.session;
  probes : (probe_key, Smtlite.Solve.assumption) Hashtbl.t;
  mutable last_use : int;  (** recency tick of the owning domain's pool *)
}

let max_entries = 64

(* Each domain owns one pool: a table of entries plus a monotonically
   increasing recency tick. Entries never cross domains, so neither the
   table nor the tick needs locking — only the process-wide counters
   below are shared (and atomic). *)
type pool = { tbl : (string, entry) Hashtbl.t; mutable tick : int }

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 16; tick = 0 })

(* Always-on counters (atomic, process-wide) so reuse is testable even
   with the metrics registry disabled; the registry mirrors them. *)
let n_hits = Atomic.make 0

let n_misses = Atomic.make 0

let n_evictions = Atomic.make 0

let hits () = Atomic.get n_hits

let misses () = Atomic.get n_misses

let evictions () = Atomic.get n_evictions

let m_hits = Obs.Metrics.counter "warm.session_hits"

let m_misses = Obs.Metrics.counter "warm.session_misses"

let m_evictions = Obs.Metrics.counter "warm.session_evictions"

let reset () = Hashtbl.reset (Domain.DLS.get pool_key).tbl

let size () = Hashtbl.length (Domain.DLS.get pool_key).tbl

let digest parts = Digest.to_hex (Digest.string (Marshal.to_string parts []))

(* Evict exactly the least-recently-used entry. A linear scan over at
   most [max_entries] keys is cheaper than any ordering structure at
   this size, and — unlike the old flush-the-whole-pool policy — keeps
   the other warm sessions alive and makes the eviction counter mean
   what it says: one increment per entry actually dropped. *)
let evict_lru pool =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (k, e))
      pool.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove pool.tbl k;
      Atomic.incr n_evictions;
      Obs.Metrics.incr m_evictions

(* Get or build the warm session for one query shape. The session is
   asserted with the misclassification formula over [spec]'s full range;
   narrower probes are sent as assumptions. *)
let lookup net (spec : Noise.spec) ~input ~label =
  let pool = Domain.DLS.get pool_key in
  pool.tick <- pool.tick + 1;
  let key = digest (net, spec, input, label) in
  match Hashtbl.find_opt pool.tbl key with
  | Some e ->
      Atomic.incr n_hits;
      Obs.Metrics.incr m_hits;
      e.last_use <- pool.tick;
      e
  | None ->
      Atomic.incr n_misses;
      Obs.Metrics.incr m_misses;
      if Hashtbl.length pool.tbl >= max_entries then evict_lru pool;
      let enc = Encode.encode net ~input spec in
      let session =
        Smtlite.Solve.open_session (Encode.misclassified enc ~true_label:label)
      in
      let e = { enc; session; probes = Hashtbl.create 8; last_use = pool.tick } in
      Hashtbl.add pool.tbl key e;
      e

let assumption_for e pk formula =
  match Hashtbl.find_opt e.probes pk with
  | Some a -> a
  | None ->
      let a = Smtlite.Solve.assume e.session formula in
      Hashtbl.add e.probes pk a;
      a

let validate_witness net spec ~input ~label v =
  if not (Noise.in_range spec v) then
    failwith "Warm: witness outside the probe range";
  if Noise.predict net spec ~input v = label then
    failwith "Warm: witness does not actually misclassify"

(* Does some noise vector with every component in [-delta, +delta] flip
   the classification? The session is encoded at [cover >= delta]. *)
let probe_delta ?budget net ~bias_noise ~cover ~delta ~input ~label =
  if delta > cover || delta < 0 then invalid_arg "Warm.probe_delta";
  let spec = Noise.symmetric ~delta:cover ~bias_noise in
  let e = lookup net spec ~input ~label in
  let assumptions =
    if delta = cover then []
    else
      [
        assumption_for e (Delta delta)
          (let bounded v =
             let d = T.of_var v in
             T.and_ [ T.ge d (T.const (-delta)); T.le d (T.const delta) ]
           in
           T.and_ (List.map bounded (Encode.noise_vars e.enc)));
      ]
  in
  match Smtlite.Solve.solve ~assumptions ?budget e.session with
  | Smtlite.Solve.Unsat -> Ok false
  | Smtlite.Solve.Unknown r -> Error r
  | Smtlite.Solve.Sat model ->
      let v = Encode.vector_of_model e.enc model in
      validate_witness net
        (Noise.symmetric ~delta ~bias_noise)
        ~input ~label v;
      Ok true

(* Does some noise vector inside the per-dimension [box] (bias dimension
   first when the spec has one) flip the classification? *)
let probe_box ?budget net (spec : Noise.spec) ~box ~input ~label =
  let vars = ref [] in
  let e = lookup net spec ~input ~label in
  let nvars = Encode.noise_vars e.enc in
  if List.length nvars <> Array.length box then invalid_arg "Warm.probe_box";
  List.iteri
    (fun d v ->
      let lo, hi = box.(d) in
      if lo < spec.Noise.delta_lo || hi > spec.Noise.delta_hi then
        invalid_arg "Warm.probe_box: box outside the spec range";
      let t = T.of_var v in
      vars := T.and_ [ T.ge t (T.const lo); T.le t (T.const hi) ] :: !vars)
    nvars;
  let a = assumption_for e (Box (Array.copy box)) (T.and_ (List.rev !vars)) in
  match Smtlite.Solve.solve ~assumptions:[ a ] ?budget e.session with
  | Smtlite.Solve.Unsat -> Ok false
  | Smtlite.Solve.Unknown r -> Error r
  | Smtlite.Solve.Sat model ->
      let v = Encode.vector_of_model e.enc model in
      validate_witness net spec ~input ~label v;
      let inside =
        (not spec.Noise.bias_noise || (let lo, hi = box.(0) in v.Noise.bias >= lo && v.Noise.bias <= hi))
        && Array.for_all Fun.id
             (Array.mapi
                (fun i x ->
                  let lo, hi = box.(i + if spec.Noise.bias_noise then 1 else 0) in
                  x >= lo && x <= hi)
                v.Noise.inputs)
      in
      if not inside then failwith "Warm: witness escaped the probe box";
      Ok true

let vector_compare (a : Noise.vector) (b : Noise.vector) =
  match compare a.Noise.bias b.Noise.bias with
  | 0 -> compare a.Noise.inputs b.Noise.inputs
  | c -> c

(* Enumerate every flipping noise vector, blocking found models through
   assumptions rather than permanent clauses so the warm session stays
   clean for other callers. The result is sorted, which makes the output
   canonical: the complete model set is a semantic property of the
   query, independent of the enumeration order a warm session happens
   to follow. *)
let enumerate_flips ?(limit = 10_000) ?max_conflicts ?budget net spec ~input
    ~label =
  let e = lookup net spec ~input ~label in
  let rec loop blocks acc n =
    if n >= limit then (acc, `Truncated)
    else
      match
        Smtlite.Solve.solve ~assumptions:blocks ?max_conflicts ?budget e.session
      with
      | Smtlite.Solve.Unsat -> (acc, `Complete)
      | Smtlite.Solve.Unknown r -> (acc, `Budget r)
      | Smtlite.Solve.Sat model ->
          let v = Encode.vector_of_model e.enc model in
          validate_witness net spec ~input ~label v;
          let b = Smtlite.Solve.assume e.session (Encode.vector_excluded e.enc v) in
          loop (b :: blocks) (v :: acc) (n + 1)
  in
  let vectors, status = loop [] [] 0 in
  (List.sort vector_compare vectors, status)
