type counterexample = {
  input_index : int;
  true_label : int;
  predicted : int;
  vector : Noise.vector;
}

type status = Complete | Truncated | Budget of Resil.Budget.reason

let make_counterexample net spec ~input ~label ~input_index vector =
  if not (Noise.in_range spec vector) then
    failwith "Extract: vector outside the noise range";
  let predicted = Noise.predict net spec ~input vector in
  if predicted = label then
    failwith "Extract: vector does not actually misclassify";
  { input_index; true_label = label; predicted; vector }

let of_bnb_status = function
  | `Complete -> Complete
  | `Truncated -> Truncated
  | `Budget r -> Budget r

(* ------------------------------------------------------------------ *)
(* Checkpoint payload (format fannet-ckpt/1, kind "extract"): the      *)
(* enumeration cursor plus the vectors found so far, keyed by a digest *)
(* of the query parameters so a checkpoint cannot silently resume a    *)
(* different extraction.                                               *)
(* ------------------------------------------------------------------ *)

let ckpt_key net spec ~input ~label ~limit =
  Digest.to_hex
    (Digest.string (Marshal.to_string (net, spec, input, label, limit) []))

let ints_to_json arr =
  Util.Json.List (Array.to_list (Array.map (fun i -> Util.Json.Int i) arr))

let ints_of_json = function
  | Util.Json.List l ->
      let ok = List.for_all (function Util.Json.Int _ -> true | _ -> false) l in
      if ok then
        Some
          (Array.of_list
             (List.map (function Util.Json.Int i -> i | _ -> 0) l))
      else None
  | _ -> None

let vector_to_json (v : Noise.vector) =
  Util.Json.Obj
    [ ("bias", Util.Json.Int v.Noise.bias); ("inputs", ints_to_json v.Noise.inputs) ]

let vector_of_json j =
  match (Util.Json.member "bias" j, Option.bind (Util.Json.member "inputs" j) ints_of_json) with
  | Some (Util.Json.Int bias), Some inputs -> Some { Noise.bias; inputs }
  | _ -> None

let box_to_json (lo, hi) =
  Util.Json.Obj [ ("lo", ints_to_json lo); ("hi", ints_to_json hi) ]

let box_of_json j =
  match
    ( Option.bind (Util.Json.member "lo" j) ints_of_json,
      Option.bind (Util.Json.member "hi" j) ints_of_json )
  with
  | Some lo, Some hi when Array.length lo = Array.length hi -> Some (lo, hi)
  | _ -> None

let ckpt_to_json ~key (cursor : Bnb.cursor) vectors =
  Util.Json.Obj
    [
      ("key", Util.Json.String key);
      ("emitted", Util.Json.Int cursor.Bnb.emitted);
      ("vectors", Util.Json.List (List.map vector_to_json vectors));
      ("pending", Util.Json.List (List.map box_to_json cursor.Bnb.pending));
    ]

let ckpt_of_json json =
  let all parse = function
    | Util.Json.List l ->
        let parsed = List.map parse l in
        if List.for_all Option.is_some parsed then
          Some (List.map Option.get parsed)
        else None
    | _ -> None
  in
  match
    ( Util.Json.member "key" json,
      Util.Json.member "emitted" json,
      Option.bind (Util.Json.member "vectors" json) (all vector_of_json),
      Option.bind (Util.Json.member "pending" json) (all box_of_json) )
  with
  | Some (Util.Json.String key), Some (Util.Json.Int emitted), Some vectors,
    Some pending
    when emitted = List.length vectors ->
      Some (key, { Bnb.pending; emitted }, vectors)
  | _ -> None

let save_ckpt ~key ~path cursor vectors =
  Resil.Ckpt.save ~kind:"extract" ~path (ckpt_to_json ~key cursor vectors)

(* Loading a checkpoint distinguishes three cases: a usable cursor, a
   missing/torn/corrupt file (warn and start fresh — the run is still
   correct, only slower), and a key mismatch (refuse: the checkpoint
   belongs to a different query and resuming it would splice two
   different corpora together). *)
let load_ckpt ~key ~path =
  if not (Sys.file_exists path) then `Fresh
  else
    match Resil.Ckpt.load ~kind:"extract" ~path with
    | Error msg -> `Damaged msg
    | Ok json -> (
        match ckpt_of_json json with
        | None -> `Damaged (path ^ ": malformed extract checkpoint payload")
        | Some (k, cursor, vectors) ->
            if k = key then `Resume (cursor, vectors)
            else
              `Mismatch
                (path
               ^ ": checkpoint belongs to a different extract run \
                  (network/spec/input/limit changed)"))

let for_input ?(limit = 10_000) ?budget ?checkpoint net spec ~input ~label
    ~input_index =
  let finish vectors st =
    ( List.map (make_counterexample net spec ~input ~label ~input_index) vectors,
      of_bnb_status st )
  in
  match checkpoint with
  | None ->
      let vectors, st = Bnb.enumerate_flips ~limit ?budget net spec ~input ~label in
      finish vectors st
  | Some path ->
      let key = ckpt_key net spec ~input ~label ~limit in
      let cursor, prefix =
        match load_ckpt ~key ~path with
        | `Fresh -> (Bnb.fresh_cursor net spec ~input ~label, [])
        | `Resume (cursor, vectors) -> (cursor, vectors)
        | `Damaged msg ->
            Printf.eprintf
              "warning: %s — ignoring the checkpoint and starting over\n%!" msg;
            (Bnb.fresh_cursor net spec ~input ~label, [])
        | `Mismatch msg -> invalid_arg msg
      in
      let on_progress cursor fresh =
        save_ckpt ~key ~path cursor (prefix @ fresh)
      in
      let fresh, st, final =
        Bnb.enumerate_flips_from ~limit ?budget ~on_progress cursor net spec
          ~input ~label
      in
      let vectors = prefix @ fresh in
      (match st with
      | `Budget _ ->
          (* Exact state at the stop point, so the next run loses
             nothing. *)
          save_ckpt ~key ~path final vectors
      | `Complete | `Truncated ->
          if Sys.file_exists path then Sys.remove path);
      finish vectors st

(* The paper's P3 blocking loop, on a pooled warm session: found models
   are excluded through per-call assumptions ({!Warm.enumerate_flips}),
   so the session survives for later queries about the same
   (net, spec, input, label) — a sweep or cross-check re-enumerates from
   a warm encoding. The corpus comes back in canonical {!Noise.compare}
   order (the complete flip set is a semantic property of the query, and
   sorting hides which enumeration order the warm session followed). *)
let smt_for_input ?(limit = 10_000) ?max_conflicts ?budget net spec ~input
    ~label ~input_index =
  let vectors, st =
    Warm.enumerate_flips ~limit ?max_conflicts ?budget net spec ~input ~label
  in
  ( List.map (make_counterexample net spec ~input ~label ~input_index) vectors,
    of_bnb_status st )

let weakest a b =
  match (a, b) with
  | Budget r, _ -> Budget r
  | _, Budget r -> Budget r
  | Truncated, _ | _, Truncated -> Truncated
  | Complete, Complete -> Complete

let status_to_string = function
  | Complete -> "complete"
  | Truncated -> "truncated"
  | Budget r -> "budget (" ^ Resil.Budget.reason_to_string r ^ ")"

let for_inputs ?(limit_per_input = 10_000) ?jobs ?budget net spec ~inputs =
  let per_input =
    Util.Parallel.mapi ?jobs
      (fun input_index (input, label) ->
        (* A shared budget needs no pool-level stop protocol: once it is
           exhausted every remaining per-input enumeration returns
           [Budget _] at its entry check, so the batch drains quickly
           and deterministically. *)
        Resil.Faultpoint.guard "worker.raise"
          (Failure "injected fault: extract worker raised");
        for_input ~limit:limit_per_input ?budget net spec ~input ~label
          ~input_index)
      inputs
  in
  let all = List.concat_map fst (Array.to_list per_input) in
  let status = Array.fold_left (fun acc (_, st) -> weakest acc st) Complete per_input in
  (all, status)

let explicit_for_input net spec ~input ~label ~input_index ~limit =
  let size = Noise.spec_size spec ~n_inputs:(Array.length input) in
  if size > limit then
    invalid_arg
      (Printf.sprintf "Extract.explicit_for_input: %d vectors exceed %d" size limit);
  let acc = ref [] in
  Noise.iter_vectors spec ~n_inputs:(Array.length input) (fun v ->
      let predicted = Noise.predict net spec ~input v in
      if predicted <> label then
        acc :=
          { input_index; true_label = label; predicted; vector = v } :: !acc);
  List.rev !acc
