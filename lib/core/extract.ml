type counterexample = {
  input_index : int;
  true_label : int;
  predicted : int;
  vector : Noise.vector;
}

type status = Complete | Truncated | Budget

let make_counterexample net spec ~input ~label ~input_index vector =
  if not (Noise.in_range spec vector) then
    failwith "Extract: vector outside the noise range";
  let predicted = Noise.predict net spec ~input vector in
  if predicted = label then
    failwith "Extract: vector does not actually misclassify";
  { input_index; true_label = label; predicted; vector }

let for_input ?(limit = 10_000) net spec ~input ~label ~input_index =
  let vectors, st = Bnb.enumerate_flips ~limit net spec ~input ~label in
  let cexs =
    List.map (make_counterexample net spec ~input ~label ~input_index) vectors
  in
  (cexs, match st with `Complete -> Complete | `Truncated -> Truncated)

let smt_for_input ?(limit = 10_000) ?max_conflicts net spec ~input ~label ~input_index =
  let enc = Encode.encode net ~input spec in
  let project = Encode.noise_vars enc in
  let session =
    Smtlite.Solve.open_session (Encode.misclassified enc ~true_label:label)
  in
  let rec loop acc n =
    if n >= limit then (List.rev acc, Truncated)
    else
      match Smtlite.Solve.solve ?max_conflicts session with
      | Smtlite.Solve.Unsat -> (List.rev acc, Complete)
      | Smtlite.Solve.Unknown -> (List.rev acc, Budget)
      | Smtlite.Solve.Sat model ->
          let vector = Encode.vector_of_model enc model in
          let cex = make_counterexample net spec ~input ~label ~input_index vector in
          Smtlite.Solve.block session project;
          loop (cex :: acc) (n + 1)
  in
  loop [] 0

let weakest a b =
  match (a, b) with
  | Budget, _ | _, Budget -> Budget
  | Truncated, _ | _, Truncated -> Truncated
  | Complete, Complete -> Complete

let for_inputs ?(limit_per_input = 10_000) ?jobs net spec ~inputs =
  let per_input =
    Util.Parallel.mapi ?jobs
      (fun input_index (input, label) ->
        for_input ~limit:limit_per_input net spec ~input ~label ~input_index)
      inputs
  in
  let all = List.concat_map fst (Array.to_list per_input) in
  let status = Array.fold_left (fun acc (_, st) -> weakest acc st) Complete per_input in
  (all, status)

let explicit_for_input net spec ~input ~label ~input_index ~limit =
  let size = Noise.spec_size spec ~n_inputs:(Array.length input) in
  if size > limit then
    invalid_arg
      (Printf.sprintf "Extract.explicit_for_input: %d vectors exceed %d" size limit);
  let acc = ref [] in
  Noise.iter_vectors spec ~n_inputs:(Array.length input) (fun v ->
      let predicted = Noise.predict net spec ~input v in
      if predicted <> label then
        acc :=
          { input_index; true_label = label; predicted; vector = v } :: !acc);
  List.rev !acc
