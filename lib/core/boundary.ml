type point = {
  input_index : int;
  true_label : int;
  min_flip_delta : int option;
  margin : int;
}

let noise_free_margin net ~input ~label =
  let out = Nn.Qnet.forward net input in
  match Array.length out with
  | 2 -> out.(label) - out.(1 - label)
  | _ ->
      (* Margin against the strongest other class. *)
      let best_other = ref min_int in
      Array.iteri (fun j v -> if j <> label && v > !best_other then best_other := v) out;
      out.(label) - !best_other

let analyze ?jobs backend net ~bias_noise ~max_delta ~inputs =
  Util.Parallel.mapi ?jobs
    (fun input_index (input, label) ->
      let min_flip_delta =
        Tolerance.input_min_flip_delta backend net ~bias_noise ~max_delta ~input
          ~label
      in
      {
        input_index;
        true_label = label;
        min_flip_delta;
        margin = noise_free_margin net ~input ~label;
      })
    inputs

let analyze_b ?jobs ?budget backend net ~bias_noise ~max_delta ~inputs =
  let failed : Resil.Budget.reason option Atomic.t = Atomic.make None in
  let note r = ignore (Atomic.compare_and_set failed None (Some r)) in
  let stop () =
    Atomic.get failed <> None
    || (match budget with Some b -> Resil.Budget.check b <> None | None -> false)
  in
  let per_input =
    Util.Parallel.map_until ?jobs ~stop
      (fun input_index (input, label) ->
        Resil.Faultpoint.guard "worker.raise"
          (Failure "injected fault: boundary worker raised");
        match
          Tolerance.input_min_flip_delta_b ?budget backend net ~bias_noise
            ~max_delta ~input ~label
        with
        | Error r ->
            note r;
            None
        | Ok min_flip_delta ->
            Some
              {
                input_index;
                true_label = label;
                min_flip_delta;
                margin = noise_free_margin net ~input ~label;
              })
      inputs
  in
  let first_reason () =
    match Atomic.get failed with
    | Some r -> r
    | None -> (
        match Option.bind budget Resil.Budget.why with
        | Some r -> r
        | None -> Resil.Budget.Cancelled)
  in
  match per_input with
  | Error () -> Error (first_reason ())
  | Ok arr -> (
      match Atomic.get failed with
      | Some r -> Error r
      | None ->
          Ok (Array.map (function Some p -> p | None -> assert false) arr))

let near_boundary points ~threshold =
  Array.of_list
    (List.filter
       (fun p ->
         match p.min_flip_delta with Some d -> d <= threshold | None -> false)
       (Array.to_list points))

let robust_at_probe points =
  Array.of_list
    (List.filter (fun p -> p.min_flip_delta = None) (Array.to_list points))

let margin_flip_correlation points =
  let pairs =
    List.filter_map
      (fun p ->
        match p.min_flip_delta with
        | Some d -> Some (float_of_int p.margin, float_of_int d)
        | None -> None)
      (Array.to_list points)
  in
  if List.length pairs < 2 then 0.
  else
    let xs = Array.of_list (List.map fst pairs) in
    let ys = Array.of_list (List.map snd pairs) in
    Util.Stats.pearson xs ys
