(** Noise-tolerance analysis (paper §IV-B, Fig. 4 left panel).

    The noise tolerance of the network is the largest symmetric percent
    range ±Δ under which no correctly classified input can be flipped by
    any noise vector (the paper reports ±11 % for its network).

    The per-sample queries are independent, so every per-input loop here
    fans out over a {!Util.Parallel} domain pool ([?jobs], defaulting to
    the process-wide setting). Each worker builds its own solver session;
    results are deterministic and identical at every jobs count. *)

type flip = { input_index : int; vector : Noise.vector; predicted : int }

type sweep_point = {
  delta : int;
  n_misclassified : int;    (** inputs with at least one flipping vector *)
  flips : flip list;        (** one witness per flipped input *)
}

val misclassified_at :
  ?jobs:int ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  delta:int ->
  inputs:Validate.labelled array ->
  flip list
(** One witness per input that some vector in ±delta flips. With the
    [Interval] backend, inputs that cannot be proven robust are *not*
    reported as flips (it has no witnesses) — use a complete backend for
    counting. *)

val misclassified_at_b :
  ?jobs:int ->
  ?budget:Resil.Budget.t ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  delta:int ->
  inputs:Validate.labelled array ->
  (flip list, Resil.Budget.reason) result
(** {!misclassified_at} under a {!Resil.Budget}: the budget is propagated
    into every backend query and the worker pool stops cooperatively on
    exhaustion, returning [Error] with the first reason observed. A
    backend's own incompleteness ([Unknown Incomplete]) still counts as
    "no witness", exactly as in the unbudgeted variant. *)

val sweep :
  ?jobs:int ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  deltas:int list ->
  inputs:Validate.labelled array ->
  sweep_point list
(** Misclassification counts per noise range — the data behind the paper's
    Fig. 4 scatter (ranges ±5 ... ±40). *)

val sweep_b :
  ?jobs:int ->
  ?budget:Resil.Budget.t ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  deltas:int list ->
  inputs:Validate.labelled array ->
  (sweep_point list, Resil.Budget.reason) result
(** {!sweep} under a budget shared across all deltas; [Error] as soon as
    one delta's batch exhausts it. *)

val network_tolerance :
  ?jobs:int ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  inputs:Validate.labelled array ->
  int
(** Largest Δ in [0, max_delta] with zero flips across all inputs.
    Computed as [min over inputs of (min flipping Δ) - 1] using binary
    search per input (sound because flip-ability is monotone in Δ), which
    matches the paper's iterative reduce-the-noise procedure but with
    logarithmically many solver queries. Returns [max_delta] when even the
    full range is safe. *)

val network_tolerance_b :
  ?jobs:int ->
  ?budget:Resil.Budget.t ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  inputs:Validate.labelled array ->
  (int, Resil.Budget.reason) result
(** {!network_tolerance} under a budget: exhaustion anywhere in the
    per-input binary searches stops the whole pool and yields [Error]
    (a partial minimum would silently overstate the tolerance). *)

val network_tolerance_ckpt :
  ?budget:Resil.Budget.t ->
  checkpoint:string ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  inputs:Validate.labelled array ->
  (int, Resil.Budget.reason) result
(** {!network_tolerance} with checkpoint/resume: the per-input results and
    the in-flight bisection bracket are persisted to [checkpoint] in
    [fannet-ckpt/1] format (kind ["tolerance"], atomic tmp+rename) after
    every probe, and an existing checkpoint for the same run (backend,
    network, inputs, range — validated by digest) resumes there, repeating
    at most two probes. The search is sequential; a damaged checkpoint is
    reported on stderr and ignored, one from a different run raises
    [Invalid_argument]. The file is removed on completion. [Error] on
    budget exhaustion (state saved — rerun to continue). *)

val certified_accuracy :
  ?jobs:int ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  delta:int ->
  inputs:Validate.labelled array ->
  float
(** Fraction of inputs that are both correctly classified without noise
    AND provably robust for every noise vector in ±delta — the standard
    certified-accuracy metric of the robustness literature, computed here
    exactly (no relaxation gap) thanks to the complete backends. With the
    [Interval] backend the result is a sound lower bound. *)

val paper_iterative_tolerance :
  ?jobs:int ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  inputs:Validate.labelled array ->
  int
(** The literal procedure of the paper's Fig. 2: start from the large
    range ±max_delta and reduce the noise one percent at a time until the
    model checker finds no counterexample for any input. Same result as
    {!network_tolerance} (asserted by tests) with linearly many queries —
    kept for methodological fidelity. *)

type certified_bracket = {
  max_delta : int;  (** the search range the bracket covers *)
  min_flip_delta : int option;
      (** smallest flipping Δ, [None] if robust up to ±[max_delta] *)
  flip_cert : (int * Noise.vector * Cert.Verdict.t) option;
      (** (Δ, witness, model certificate) at the minimal flipping range;
          [None] only when no Δ flips *)
  robust_cert : (int * Cert.Verdict.t) option;
      (** (Δ, refutation certificate) at the largest certified-robust
          range — [min_flip_delta - 1], or [max_delta] when nothing
          flips; [None] only when Δ=0 already flips *)
}

val certified_min_flip_delta :
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  input:int array ->
  label:int ->
  certified_bracket
(** {!input_min_flip_delta} with the incremental [Smt] search and DRUP
    proof logging: the answer comes back as a {e certified tolerance
    bracket} — a refutation certificate proving robustness at
    [min_flip_delta - 1] and a model certificate plus concrete witness
    proving the flip at [min_flip_delta]. The bracket composes the
    per-delta certificates of the binary-search probes; each can be
    re-checked independently of the solver. No interval prefilter is used
    (its answers carry no proofs). *)

val certified_min_flip_delta_b :
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  input:int array ->
  label:int ->
  (certified_bracket, Resil.Budget.reason) result
(** {!certified_min_flip_delta} under a budget ([Error] when a probe was
    stopped before the bracket closed). *)

val check_certified_bracket :
  Nn.Qnet.t ->
  bias_noise:bool ->
  certified_bracket ->
  input:int array ->
  label:int ->
  (unit, string) result
(** Independent validation of a bracket: shape consistency (certificates
    present and adjacent: robust Δ = flip Δ - 1, or covering [max_delta]
    when nothing flips), certificate kinds match the claims, both pass
    {!Cert.Verdict.check}, and the flip witness concretely misclassifies
    under {!Noise.predict} within its probe range. *)

val input_min_flip_delta :
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  input:int array ->
  label:int ->
  int option
(** Smallest Δ whose range ±Δ contains a flipping vector for this input,
    or [None] if robust up to ±max_delta.

    With the [Smt] backend (or [Cascade Smt]) the binary search is
    incremental: the network is bit-blasted once at ±max_delta and each
    probe narrows the noise bound through assumable range literals over
    one warm solver session, so learnt clauses carry across probes and no
    probe pays a fresh Tseitin encoding. [Cascade Smt] additionally runs
    the interval prefilter per probe. Verdicts are identical to the
    per-probe re-encoding at every delta. *)

val input_min_flip_delta_b :
  ?budget:Resil.Budget.t ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  input:int array ->
  label:int ->
  (int option, Resil.Budget.reason) result
(** {!input_min_flip_delta} under a budget ([Error] when a probe was
    stopped before the binary search converged). *)
