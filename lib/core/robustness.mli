(** Quantitative robustness: the probability of misclassification under
    the noise model, by model counting over the noise space.

    Where {!Tolerance} answers the paper's qualitative P2 ("does any
    noise vector flip the prediction?"), this module answers the
    quantitative refinement: {e how many} noise vectors flip it, as an
    exact count (certified on request, [fannet-count-cert/1]) or an
    (ε, δ) approximation — the flip count divided by the noise-space
    cardinality is the misclassification probability under uniform
    noise. *)

type mode =
  | Exact_mode of { certify : bool }
      (** cube-decomposition #SAT ({!Count.Exact}); [certify] attaches a
          checkable certificate *)
  | Approx_mode of { epsilon : float; delta : float; seed : int }
      (** XOR-hash estimation ({!Count.Approx}) *)

val default_mode : mode
(** [Exact_mode { certify = false }]. *)

type report = {
  flips : Util.Bigcount.t;   (** noise vectors flipping the prediction *)
  total : Util.Bigcount.t;   (** noise-space cardinality *)
  probability : float;       (** [flips / total] *)
  certificate : Count.Certificate.t option;
      (** present iff [Exact_mode {certify = true}] and fully decided *)
  solver_calls : int;
  status : (unit, Resil.Budget.reason) result;
      (** [Error] when the budget ran out — counts are then partial
          (exact) or aggregated from fewer rounds (approx) *)
  approx : bool;  (** [flips] is an estimate, not an exact count *)
}

val probability :
  ?budget:Resil.Budget.t ->
  ?mode:mode ->
  ?jobs:int ->
  ?checkpoint:string ->
  ?ckpt_key:string ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  report
(** Count the noise vectors under which the network's prediction on
    [input] differs from [label]. [jobs], [checkpoint] and [ckpt_key]
    apply to exact mode only (see {!Count.Exact.count}). *)

val check_certificate :
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Count.Certificate.t ->
  (unit, string) result
(** Re-validate a certificate against the query it claims to answer: the
    encoding is rebuilt and {!Count.Certificate.check} runs on it. *)
