(** Per-domain pool of warm incremental solver sessions.

    Opening an {!Smtlite.Solve} session Tseitin-encodes the whole network,
    which dominates the cost of a small query. Analyses that issue many
    queries about one (network, input, label) — tolerance binary searches,
    sweeps revisiting the same sample at several deltas, per-node
    sensitivity boxes, model enumeration — should encode once. This module
    pools open sessions in {!Domain.DLS}, keyed by a digest of the query
    shape; the session is encoded at the widest requested range and every
    narrower probe becomes a memoised assumption literal.

    Pool entries never cross domains (no locking, no sharing), and every
    result is either witness-free (a boolean from a complete solver, so
    independent of accumulated learnt clauses) or canonicalised (sorted
    complete enumerations) — analyses built on this pool keep the
    jobs=1 ≡ jobs=N determinism contract of {!Util.Parallel} even though
    the steal schedule decides which domain warms which session. *)

val probe_delta :
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  cover:int ->
  delta:int ->
  input:int array ->
  label:int ->
  (bool, Resil.Budget.reason) result
(** Does some noise vector with every component in [[-delta, +delta]]
    flip the classification of [input] away from [label]? The pooled
    session is encoded at the symmetric range [±cover]; all probes with
    the same [(net, input, label, bias_noise, cover)] reuse it. Requires
    [0 <= delta <= cover]. [Sat] witnesses are re-validated against
    {!Noise.predict} before the boolean is returned. *)

val probe_box :
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  box:(int * int) array ->
  input:int array ->
  label:int ->
  (bool, Resil.Budget.reason) result
(** Does some noise vector inside the per-dimension [box] (bias dimension
    first when the spec has one, matching {!Encode.noise_vars} order)
    flip the classification? The box must lie within the spec's range;
    the pooled session is encoded once at the spec's full range and each
    distinct box becomes one memoised assumption. *)

val enumerate_flips :
  ?limit:int ->
  ?max_conflicts:int ->
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Noise.vector list
  * [ `Complete | `Truncated | `Budget of Resil.Budget.reason ]
(** Every noise vector in the spec's range that flips the classification,
    sorted in {!Noise.compare} order (canonical — independent of the
    enumeration order a warm session happens to follow). Found models are
    blocked through per-call assumptions, never permanent clauses, so the
    pooled session stays clean for other callers; a second call on the
    same key re-enumerates from a warm encoding. *)

val hits : unit -> int
(** Process-wide count of pool lookups served by an existing session. *)

val misses : unit -> int
(** Process-wide count of pool lookups that had to encode a session. *)

val evictions : unit -> int
(** Process-wide count of entries actually evicted: when a domain's pool
    is at capacity, the single least-recently-used session is dropped and
    this counter is incremented once per dropped entry. Together with
    {!misses} this gives the exact invariant
    [misses = evictions + live entries summed over domains] (every miss
    inserts one entry; every eviction removes one; {!reset} drops entries
    without counting them). *)

val size : unit -> int
(** Number of sessions currently pooled by the {e calling} domain
    (other domains' pools are not visible — entries never cross
    domains). *)

val reset : unit -> unit
(** Drop the calling domain's pooled sessions (counters are kept; the
    dropped entries do {e not} count as evictions). Mostly for tests
    that need a cold pool. *)
