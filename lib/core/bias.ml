type direction = { from_label : int; to_label : int; count : int }

type report = {
  directions : direction list;
  flips_from : int array;
  inputs_flipped_from : int array;
  flip_rate : float array;
  majority_class : int;
  training_share : float array;
  consistent_with_bias : bool;
}

let flip_directions cexs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (c : Extract.counterexample) ->
      let key = (c.Extract.true_label, c.Extract.predicted) in
      Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
    cexs;
  Hashtbl.fold
    (fun (from_label, to_label) count acc -> { from_label; to_label; count } :: acc)
    table []
  |> List.sort (fun a b -> compare b.count a.count)

let analyze ~n_classes ~training_labels ~analysed_labels cexs =
  if n_classes <= 0 then invalid_arg "Bias.analyze: n_classes";
  let counts = Array.make n_classes 0 in
  Array.iter
    (fun l ->
      if l < 0 || l >= n_classes then invalid_arg "Bias.analyze: bad label";
      counts.(l) <- counts.(l) + 1)
    training_labels;
  let total = Array.length training_labels in
  if total = 0 then invalid_arg "Bias.analyze: empty training labels";
  let training_share =
    Array.map (fun c -> float_of_int c /. float_of_int total) counts
  in
  let majority_class = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!majority_class) then majority_class := i) counts;
  let majority_class = !majority_class in
  let flips_from = Array.make n_classes 0 in
  List.iter
    (fun (c : Extract.counterexample) ->
      flips_from.(c.Extract.true_label) <- flips_from.(c.Extract.true_label) + 1)
    cexs;
  let inputs_flipped_from = Array.make n_classes 0 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : Extract.counterexample) ->
      if not (Hashtbl.mem seen c.Extract.input_index) then begin
        Hashtbl.add seen c.Extract.input_index ();
        inputs_flipped_from.(c.Extract.true_label) <-
          inputs_flipped_from.(c.Extract.true_label) + 1
      end)
    cexs;
  let analysed_counts = Array.make n_classes 0 in
  Array.iter
    (fun l ->
      if l < 0 || l >= n_classes then invalid_arg "Bias.analyze: bad analysed label";
      analysed_counts.(l) <- analysed_counts.(l) + 1)
    analysed_labels;
  let flip_rate =
    Array.mapi
      (fun l flipped ->
        if analysed_counts.(l) = 0 then 0.
        else float_of_int flipped /. float_of_int analysed_counts.(l))
      inputs_flipped_from
  in
  let consistent_with_bias =
    cexs <> []
    && Array.for_all Fun.id
         (Array.mapi
            (fun l rate ->
              l = majority_class || rate > flip_rate.(majority_class))
            flip_rate)
  in
  {
    directions = flip_directions cexs;
    flips_from;
    inputs_flipped_from;
    flip_rate;
    majority_class;
    training_share;
    consistent_with_bias;
  }

let report_to_string r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "majority training class: L%d (share %.1f%%)\n" r.majority_class
       (100. *. r.training_share.(r.majority_class)));
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  L%d -> L%d : %d counterexamples\n" d.from_label
           d.to_label d.count))
    r.directions;
  Array.iteri
    (fun l rate ->
      Buffer.add_string buf
        (Printf.sprintf "  flip rate L%d: %.2f (%d inputs flipped)\n" l rate
           r.inputs_flipped_from.(l)))
    r.flip_rate;
  Buffer.add_string buf
    (Printf.sprintf "consistent with training bias: %b" r.consistent_with_bias);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Quantitative flip mass (model counting)                             *)
(* ------------------------------------------------------------------ *)

type mass = { from : int; to_ : int; mass : Util.Bigcount.t }

let count_models ?budget ~mode f ~project =
  match (mode : Robustness.mode) with
  | Robustness.Exact_mode _ ->
      let r = Count.Exact.count ?budget f ~project in
      (r.Count.Exact.count, r.Count.Exact.status)
  | Robustness.Approx_mode { epsilon; delta; seed } ->
      let r = Count.Approx.count ?budget ~epsilon ~delta ~seed f ~project in
      (r.Count.Approx.estimate, r.Count.Approx.status)

let flip_mass_by_class ?budget ?(mode = Robustness.default_mode) ~n_classes net
    spec ~inputs =
  if n_classes <= 0 then invalid_arg "Bias.flip_mass_by_class: n_classes";
  let table = Hashtbl.create 8 in
  let failure = ref None in
  Array.iter
    (fun (input, label) ->
      if label < 0 || label >= n_classes then
        invalid_arg "Bias.flip_mass_by_class: bad label";
      if !failure = None then begin
        let enc = Encode.encode net ~input spec in
        let project = Encode.noise_vars enc in
        for c = 0 to n_classes - 1 do
          if c <> label && !failure = None then begin
            let m, status =
              count_models ?budget ~mode (Encode.predicted_is enc c) ~project
            in
            (match status with
            | Count.Exact.Decided ->
                let key = (label, c) in
                let prev =
                  Option.value ~default:Util.Bigcount.zero
                    (Hashtbl.find_opt table key)
                in
                Hashtbl.replace table key (Util.Bigcount.add prev m)
            | Count.Exact.Exhausted r -> failure := Some r)
          end
        done
      end)
    inputs;
  match !failure with
  | Some r -> Error r
  | None ->
      Ok
        (Hashtbl.fold
           (fun (from, to_) mass acc ->
             if Util.Bigcount.is_zero mass then acc
             else { from; to_; mass } :: acc)
           table []
        |> List.sort (fun a b ->
               match Util.Bigcount.compare b.mass a.mass with
               | 0 -> compare (a.from, a.to_) (b.from, b.to_)
               | c -> c))
