module T = Smtlite.Term
module I = Smtlite.Interval

type t = Bnb | Smt | Explicit of { limit : int } | Interval | Cascade of t

type verdict = Robust | Flip of Noise.vector | Unknown of Resil.Budget.reason

let default_explicit_limit = 2_000_000

let default_cascade = Cascade Bnb

(* Cascade instrumentation, aggregated across all worker domains: how many
   queries the interval prefilter settled vs escalated to the complete
   engine. The whole pair lives in ONE atomic cell so that readers always
   observe a consistent snapshot: with two independent atomics a reader
   racing a [reset] could combine hits from one epoch with escalations
   from another (the torn pair {hits=old; escalations=0}). Updates go
   through a CAS loop — contention is negligible next to the per-query
   verification work. *)
type cascade_stats = { interval_hits : int; escalations : int }

let cascade_counts : cascade_stats Atomic.t =
  Atomic.make { interval_hits = 0; escalations = 0 }

let rec bump_cascade f =
  let seen = Atomic.get cascade_counts in
  if not (Atomic.compare_and_set cascade_counts seen (f seen)) then bump_cascade f

let note_interval_hit () =
  bump_cascade (fun s -> { s with interval_hits = s.interval_hits + 1 })

let note_escalation () =
  bump_cascade (fun s -> { s with escalations = s.escalations + 1 })

let reset_cascade_stats () =
  Atomic.set cascade_counts { interval_hits = 0; escalations = 0 }

let cascade_stats () = Atomic.get cascade_counts

(* Registry mirrors of the cascade pair, plus per-backend query latency.
   [cascade_hit_rate (cascade_stats ())] stays the always-on API; the
   registry copies exist so [--metrics] snapshots carry them too. *)
let m_cascade_hits = Obs.Metrics.counter "backend.cascade.interval_hits"

let m_cascade_escalations = Obs.Metrics.counter "backend.cascade.escalations"

let cascade_hit_rate { interval_hits; escalations } =
  let total = interval_hits + escalations in
  if total = 0 then 0. else float_of_int interval_hits /. float_of_int total

let validate_flip net spec ~input ~label v =
  if not (Noise.in_range spec v) then
    failwith "Backend: witness outside the noise range";
  if Noise.predict net spec ~input v = label then
    failwith "Backend: witness does not actually misclassify";
  Flip v

let smt_exists_flip ?budget net spec ~input ~label =
  let enc = Encode.encode net ~input spec in
  match Smtlite.Solve.check ?budget (Encode.misclassified enc ~true_label:label) with
  | Smtlite.Solve.Sat model ->
      validate_flip net spec ~input ~label (Encode.vector_of_model enc model)
  | Smtlite.Solve.Unsat -> Robust
  | Smtlite.Solve.Unknown r -> Unknown r

exception Found of Noise.vector

exception Stop of Resil.Budget.reason

let explicit_exists_flip ~limit ?budget net spec ~input ~label =
  let size = Noise.spec_size spec ~n_inputs:(Array.length input) in
  if size > limit then
    invalid_arg
      (Printf.sprintf "Backend.Explicit: %d vectors exceed limit %d" size limit);
  let count = ref 0 in
  try
    Noise.iter_vectors spec ~n_inputs:(Array.length input) (fun v ->
        incr count;
        (match budget with
        | Some b when !count land 1023 = 0 -> (
            match Resil.Budget.check b with
            | Some r -> raise (Stop r)
            | None -> ())
        | Some _ | None -> ());
        if Noise.predict net spec ~input v <> label then raise (Found v));
    Robust
  with
  | Found v -> validate_flip net spec ~input ~label v
  | Stop r -> Unknown r

(* Interval propagation through all layers at the spec's running scale
   (reset to 1 after a Sign layer, whose outputs are scale-free ±1 —
   mirrors Noise.apply). Only the input layer's bias node is noisy. *)
let output_bounds (net : Nn.Qnet.t) (spec : Noise.spec) ~input =
  let scale = Noise.scale_of spec in
  let delta = I.make spec.Noise.delta_lo spec.Noise.delta_hi in
  let noisy =
    match spec.Noise.kind with
    | Noise.Relative ->
        let factor = I.add (I.point scale) delta in
        Array.map (fun x -> I.mulc x factor) input
    | Noise.Absolute -> Array.map (fun x -> I.add (I.point x) delta) input
  in
  let cur = ref noisy in
  let running = ref scale in
  Array.iteri
    (fun li (l : Nn.Qnet.qlayer) ->
      let x = !cur in
      let bias_factor =
        if li = 0 && spec.Noise.bias_noise then I.add (I.point !running) delta
        else I.point !running
      in
      let outs =
        Array.mapi
          (fun k row ->
            let acc = ref (I.mulc l.Nn.Qnet.bias.(k) bias_factor) in
            Array.iteri (fun i w -> acc := I.add !acc (I.mulc w x.(i))) row;
            match l.Nn.Qnet.act with
            | Nn.Qnet.Relu -> I.relu !acc
            | Nn.Qnet.Sign -> I.sign_ !acc
            | Nn.Qnet.Identity -> !acc)
          l.Nn.Qnet.weights
      in
      cur := outs;
      if l.Nn.Qnet.act = Nn.Qnet.Sign then running := 1)
    net.Nn.Qnet.layers;
  Array.map (fun (iv : I.t) -> (iv.I.lo, iv.I.hi)) !cur

let interval_exists_flip net spec ~input ~label =
  let bounds = output_bounds net spec ~input in
  let lo_label, _ = bounds.(label) in
  let provably_wins =
    Array.for_all Fun.id
      (Array.mapi
         (fun j (_, hi_j) ->
           if j = label then true
           else if j > label then lo_label >= hi_j
           else lo_label > hi_j)
         bounds)
  in
  if provably_wins then Robust
  else
    (* Not a resource cap: interval propagation can never produce a
       counterexample, so an undecided query is [Incomplete] by
       construction. *)
    Unknown Resil.Budget.Incomplete

let rec dispatch ?budget backend net spec ~input ~label =
  match backend with
  | Bnb -> (
      match Bnb.exists_flip ?budget net spec ~input ~label with
      | Bnb.Robust -> Robust
      | Bnb.Flip v -> validate_flip net spec ~input ~label v
      | Bnb.Unknown r -> Unknown r)
  | Smt -> smt_exists_flip ?budget net spec ~input ~label
  | Explicit { limit } -> explicit_exists_flip ~limit ?budget net spec ~input ~label
  | Interval -> interval_exists_flip net spec ~input ~label
  | Cascade inner -> (
      (* Robust samples are the common case on tolerance sweeps; the
         interval pass proves most of them without touching a solver. *)
      match interval_exists_flip net spec ~input ~label with
      | Robust ->
          note_interval_hit ();
          Obs.Metrics.incr m_cascade_hits;
          Robust
      | Unknown _ | Flip _ ->
          note_escalation ();
          Obs.Metrics.incr m_cascade_escalations;
          dispatch ?budget inner net spec ~input ~label)

let rec to_string = function
  | Bnb -> "bnb"
  | Smt -> "smt"
  | Explicit _ -> "explicit"
  | Interval -> "interval"
  | Cascade inner -> Printf.sprintf "cascade(%s)" (to_string inner)

let exists_flip ?budget backend net spec ~input ~label =
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Backend.exists_flip: input size mismatch";
  if label < 0 || label >= Nn.Qnet.out_dim net then
    invalid_arg "Backend.exists_flip: label out of range";
  if Resil.Faultpoint.hit "backend.unknown" then Unknown Resil.Budget.Incomplete
  else if not (Obs.Metrics.enabled ()) then
    dispatch ?budget backend net spec ~input ~label
  else begin
    (* Per-backend latency: one histogram per top-level backend shape
       (cascade queries time the whole cascade, not each leg). The
       get-or-create lookup per query is a mutex + hash probe — fine at
       solver-query granularity, and only paid when metrics are on. *)
    let h =
      Obs.Metrics.histogram (Printf.sprintf "backend.%s.query_s" (to_string backend))
    in
    let t0 = Obs.Clock.now_ns () in
    let v = dispatch ?budget backend net spec ~input ~label in
    Obs.Metrics.observe h (Obs.Clock.elapsed_s ~since:t0);
    v
  end

(* Retry-with-escalation: where an exhausted query goes next. A cascade
   drops its prefilter (the wrapped engine sees the retry directly), the
   incomplete interval backend escalates to the complete Bnb engine, and
   a complete backend retries as itself — with the budget doubled each
   attempt ({!Resil.Budget.scale} restarts the deadline). *)
let next_tier = function Cascade inner -> inner | Interval -> Bnb | b -> b

let m_retries = Obs.Metrics.counter "backend.retries"

let exists_flip_escalating ?(attempts = 0) ?budget backend net spec ~input
    ~label =
  let rec go n backend budget =
    match exists_flip ?budget backend net spec ~input ~label with
    | Unknown r
      when n < attempts
           && (Resil.Budget.retryable r
              || (r = Resil.Budget.Incomplete && next_tier backend <> backend))
      ->
        Obs.Metrics.incr m_retries;
        go (n + 1) (next_tier backend)
          (Option.map (Resil.Budget.scale ~by:2) budget)
    | v -> v
  in
  go 0 backend budget

type certified_verdict = {
  cv_verdict : verdict;
  cv_cert : Cert.Verdict.t option;
}

let certified_exists_flip ?budget net spec ~input ~label =
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Backend.certified_exists_flip: input size mismatch";
  if label < 0 || label >= Nn.Qnet.out_dim net then
    invalid_arg "Backend.certified_exists_flip: label out of range";
  let enc = Encode.encode net ~input spec in
  let trace = Cert.Proof.create () in
  let session =
    Smtlite.Solve.open_session ~trace (Encode.misclassified enc ~true_label:label)
  in
  let outcome, cert = Smtlite.Solve.solve_certified ?budget session in
  let v =
    match outcome with
    | Smtlite.Solve.Sat model ->
        validate_flip net spec ~input ~label (Encode.vector_of_model enc model)
    | Smtlite.Solve.Unsat -> Robust
    | Smtlite.Solve.Unknown r -> Unknown r
  in
  { cv_verdict = v; cv_cert = cert }

let check_certified net spec ~input ~label { cv_verdict; cv_cert } =
  match cv_verdict with
  | Unknown _ -> Ok ()
  | Robust | Flip _ -> (
      match (cv_verdict, cv_cert) with
      | _, None -> Error "decided verdict carries no certificate"
      | Robust, Some (Cert.Verdict.Model _) ->
          Error "Robust verdict with a model certificate"
      | Flip _, Some (Cert.Verdict.Refutation _) ->
          Error "Flip verdict with a refutation certificate"
      | Flip v, Some cert -> (
          (* The certificate ties the SAT answer to the CNF; the witness
             re-validation ties the claim to the concrete network, so the
             encoding itself is not in the trusted base for Flip. *)
          if Array.length v.Noise.inputs <> Array.length input then
            Error "witness arity does not match the input"
          else if not (Noise.in_range spec v) then
            Error "witness outside the noise range"
          else if Noise.predict net spec ~input v = label then
            Error "witness does not misclassify under Noise.predict"
          else
            match Cert.Verdict.check cert with
            | Ok () -> Ok ()
            | Error e -> Error ("model certificate rejected: " ^ e))
      | Robust, Some cert -> (
          match Cert.Verdict.check cert with
          | Ok () -> Ok ()
          | Error e -> Error ("refutation certificate rejected: " ^ e))
      | Unknown _, Some _ -> Ok ())

(* Unknown reasons are diagnostic, not semantic: two Unknowns are the
   same (non-)decision whatever stopped them, so equality and agreement
   ignore the reason — the differential fuzzer's determinism checks stay
   meaningful across backends with different stopping conditions. *)
let verdict_equal a b =
  match (a, b) with
  | Robust, Robust | Unknown _, Unknown _ -> true
  | Flip va, Flip vb -> Noise.equal va vb
  | (Robust | Flip _ | Unknown _), _ -> false

let agree a b =
  match (a, b) with
  | Robust, Robust | Flip _, Flip _ | Unknown _, Unknown _ -> true
  | (Robust | Flip _ | Unknown _), _ -> false

let run_all ?(backends = [ Bnb; Smt; Explicit { limit = default_explicit_limit }; Interval; Cascade Bnb ])
    net spec ~input ~label =
  List.map (fun b -> (b, exists_flip b net spec ~input ~label)) backends

let verdict_to_string = function
  | Robust -> "robust"
  | Flip v -> "flip " ^ Noise.to_string v
  | Unknown Resil.Budget.Incomplete -> "unknown"
  | Unknown r -> "unknown (" ^ Resil.Budget.reason_to_string r ^ ")"
