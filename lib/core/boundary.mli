(** Classification-boundary estimation (paper §V-C.2).

    Inputs whose minimal flipping noise is small sit close to the decision
    boundary; inputs that survive ±50 % noise are deep inside their class
    region. The per-input minimal flipping range is the distance proxy the
    paper reads off its counterexample corpus. *)

type point = {
  input_index : int;
  true_label : int;
  min_flip_delta : int option;
      (** smallest ±Δ containing a flipping vector; [None] if robust up to
          the probe limit *)
  margin : int;
      (** noise-free output margin [o_true - o_other] at the x100 scale (2-
          class networks); larger means farther from the boundary *)
}

val analyze :
  ?jobs:int ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  inputs:Validate.labelled array ->
  point array

val analyze_b :
  ?jobs:int ->
  ?budget:Resil.Budget.t ->
  Backend.t ->
  Nn.Qnet.t ->
  bias_noise:bool ->
  max_delta:int ->
  inputs:Validate.labelled array ->
  (point array, Resil.Budget.reason) result
(** {!analyze} under a {!Resil.Budget}: the per-input binary searches stop
    cooperatively on exhaustion and the call returns [Error] with the
    first reason observed rather than a partial point set. *)

val near_boundary : point array -> threshold:int -> point array
(** Points flipping within ±threshold. *)

val robust_at_probe : point array -> point array
(** Points with [min_flip_delta = None] (survived the full probe range,
    the paper's "noise even as large as 50 % did not trigger
    misclassification"). *)

val margin_flip_correlation : point array -> float
(** Pearson correlation between the noise-free margin and the minimal
    flipping Δ (treating [None] as [max_delta+1] is the caller's business;
    here points with [None] are skipped). Positive correlation corroborates
    the boundary reading. *)
