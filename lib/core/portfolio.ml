(* ------------------------------------------------------------------ *)
(* Portfolio SAT for the P2 query: the same bit-blasted exists-flip     *)
(* formula raced on several diversified CDCL solvers, first decided     *)
(* answer wins and cancels the rest.                                    *)
(*                                                                      *)
(* Every member is the complete Smt backend, so any decided answer is   *)
(* THE answer — diversification (scattered phases, staggered restarts,  *)
(* occasional random decisions) only changes which member gets there    *)
(* first. Members may exchange short learnt clauses through a bounded   *)
(* lock-free mailbox; the receiving solver re-derives every foreign     *)
(* clause by reverse unit propagation before adopting it, so sharing    *)
(* cannot unsound a member and DRUP traces remain independently         *)
(* checkable ({!Sat.Solver.set_clause_hooks}).                          *)
(*                                                                      *)
(* Sessions are built sequentially on the calling domain (term and      *)
(* solver variable allocation is not domain-safe); the raced domains    *)
(* only solve. Losers are stopped through child cancellation tokens     *)
(* ({!Resil.Budget.link}), so a portfolio win never fires the caller's  *)
(* own token.                                                           *)
(* ------------------------------------------------------------------ *)

let mailbox_slots = 256

let m_races = Obs.Metrics.counter "portfolio.races"

let m_undecided = Obs.Metrics.counter "portfolio.undecided"

let h_cancel_latency =
  Obs.Metrics.histogram "portfolio.cancel_latency_s"
    ~buckets:[| 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let win_counter seed =
  Obs.Metrics.counter (Printf.sprintf "portfolio.wins.seed%d" seed)

let default_width () = min 4 (Util.Parallel.default_jobs ())

(* A worker that cannot decide unwinds with this; the race then either
   has a decided winner from another member or re-raises the lowest
   seed's reason (every member stopped for the same parent-level cause,
   modulo cancellation). *)
exception Undecided of Resil.Budget.reason

let validate_flip net spec ~input ~label v =
  if not (Noise.in_range spec v) then
    failwith "Portfolio: witness outside the noise range";
  if Noise.predict net spec ~input v = label then
    failwith "Portfolio: witness does not misclassify";
  Backend.Flip v

(* Shared skeleton of the plain and certified races. [open_one] builds a
   member's session, [solve_one] runs its query and returns the winning
   payload (or the reason it could not decide). *)
let run ?budget ~width ~share net spec ~input ~label ~open_one ~solve_one =
  let width = max 1 width in
  Obs.Metrics.incr m_races;
  let parent_token =
    match budget with
    | Some b -> Resil.Budget.cancellation b
    | None -> Resil.Budget.token ()
  in
  let timeout_s = Option.bind budget Resil.Budget.remaining_s in
  let conflicts = Option.bind budget Resil.Budget.conflicts in
  let mailbox = if share && width > 1 then Some (Sat.Mailbox.create ~slots:mailbox_slots) else None in
  let enc = Encode.encode net ~input spec in
  let formula = Encode.misclassified enc ~true_label:label in
  let members =
    Array.init width (fun seed ->
        (* Each member re-encodes the same formula into its own session:
           fresh term variables, fresh solver — identical CNF structure,
           independent search state. Built here, sequentially. *)
        let enc = if seed = 0 then enc else Encode.encode net ~input spec in
        let session = open_one (if seed = 0 then formula else Encode.misclassified enc ~true_label:label) in
        let solver = Smtlite.Solve.sat_solver session in
        Sat.Solver.set_diversification solver ~seed;
        let child =
          Resil.Budget.create ?timeout_s ?conflicts
            ~token:(Resil.Budget.link parent_token) ()
        in
        (seed, enc, session, solver, child))
  in
  let cancel_ns = Atomic.make 0L in
  let cancel () =
    ignore (Atomic.compare_and_set cancel_ns 0L (Obs.Clock.now_ns ()));
    Array.iter
      (fun (_, _, _, _, child) ->
        Resil.Budget.cancel (Resil.Budget.cancellation child))
      members
  in
  let thunk (seed, enc, session, solver, child) () =
    (match mailbox with
    | None -> ()
    | Some mb ->
        (* Hooks are installed on the racing domain: the reader cursor is
           domain-local, and nobody else touches this solver while the
           race runs. *)
        let reader = Sat.Mailbox.reader mb in
        Sat.Solver.set_clause_hooks solver
          ~export:(fun lits -> Sat.Mailbox.publish mb ~src:seed lits)
          ~import:(fun () ->
            let acc = ref [] in
            Sat.Mailbox.drain reader ~self:seed (fun lits -> acc := lits :: !acc);
            !acc)
          ());
    match solve_one ~budget:child enc session with
    | Ok payload -> (seed, payload)
    | Error reason ->
        (let t = Atomic.get cancel_ns in
         if t <> 0L then
           Obs.Metrics.observe h_cancel_latency (Obs.Clock.elapsed_s ~since:t));
        raise (Undecided reason)
  in
  match
    if width = 1 then (0, (thunk members.(0) ()))
    else fst (Util.Parallel.race ~cancel (Array.map thunk members))
  with
  | _, (seed, payload) ->
      Obs.Metrics.incr (win_counter seed);
      Ok (seed, payload)
  | exception Undecided reason ->
      Obs.Metrics.incr m_undecided;
      Error reason

let exists_flip ?budget ?width ?(share = true) net spec ~input ~label =
  let width = match width with Some w -> w | None -> default_width () in
  let solve_one ~budget enc session =
    match Smtlite.Solve.solve ~budget session with
    | Smtlite.Solve.Unsat -> Ok Backend.Robust
    | Smtlite.Solve.Unknown r -> Error r
    | Smtlite.Solve.Sat model ->
        Ok
          (validate_flip net spec ~input ~label
             (Encode.vector_of_model enc model))
  in
  match
    run ?budget ~width ~share net spec ~input ~label
      ~open_one:(fun f -> Smtlite.Solve.open_session f)
      ~solve_one
  with
  | Ok (seed, verdict) -> (verdict, Some seed)
  | Error reason -> (Backend.Unknown reason, None)

let certified_exists_flip ?budget ?width ?(share = true) net spec ~input ~label
    =
  let width = match width with Some w -> w | None -> default_width () in
  let solve_one ~budget enc session =
    match Smtlite.Solve.solve_certified ~budget session with
    | Smtlite.Solve.Unsat, cert -> Ok (Backend.Robust, cert)
    | Smtlite.Solve.Unknown r, _ -> Error r
    | Smtlite.Solve.Sat model, cert ->
        Ok
          ( validate_flip net spec ~input ~label
              (Encode.vector_of_model enc model),
            cert )
  in
  match
    run ?budget ~width ~share net spec ~input ~label
      ~open_one:(fun f ->
        Smtlite.Solve.open_session ~trace:(Cert.Proof.create ()) f)
      ~solve_one
  with
  | Ok (seed, (verdict, cert)) ->
      ({ Backend.cv_verdict = verdict; cv_cert = cert }, Some seed)
  | Error reason ->
      ({ Backend.cv_verdict = Backend.Unknown reason; cv_cert = None }, None)
