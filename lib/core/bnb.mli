(** Complete branch-and-bound analysis over the noise box.

    Exploits the structure the bit-blasted encoding ignores: for a fixed
    test input every first-layer pre-activation is an exact linear
    function of the noise percentages, [pre_k = C_k + sum_i a_ki * d_i].
    The engine propagates DeepPoly-style symbolic bounds through every
    layer: each node carries an affine lower and upper form over the noise
    variables, stable ReLUs stay linear so coefficients recombine and
    cancel downstream, and unstable ReLUs are relaxed one-sidedly with
    integer slopes in {0, 1} — the upper line [pre - lob] or the constant
    [upb], the lower the pre form or the constant 0, chosen by the
    triangle-area rule (linear iff [upb >= -lob]). Sign nodes are exact
    when their pre-activation interval is stable and collapse to the
    [[-1, 1]] envelope otherwise. Boxes proven robust or all-flipping are
    pruned; otherwise the widest noise dimension splits. Terminates
    because boxes shrink to single points, which are evaluated concretely
    through the exact layered forward.

    Any depth is supported; hidden layers may be ReLU, Sign (binarized
    networks) or Identity, and the output layer must be Identity. Both
    the paper's relative-percent noise and the absolute model are
    supported (the linear coefficients differ, nothing else).

    This is the workhorse complete backend for large noise ranges; the
    bit-blasted {!Backend.Smt} answers the same queries (and is compared
    against in the backend ablation) but scales poorly past small
    deltas. *)

type verdict =
  | Robust
  | Flip of Noise.vector
  | Unknown of Resil.Budget.reason
      (** only with a [?budget]: the search was stopped cooperatively
          before it could decide *)

exception Budget_exceeded
(** Raised by {!exists_flip} when [max_boxes] runs out. Verification cost
    tracks the network's structure: a trained network with real margins
    verifies in microseconds, while a network fitted to noise can make the
    bounds vacuous and the search exponential (the E14 ablation shows
    this). *)

val exists_flip :
  ?box:(int * int) array ->
  ?max_boxes:int ->
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  verdict
(** Any-depth ReLU/Sign/Identity networks with an Identity output layer,
    any number of output classes (multi-class robustness uses one margin
    per adversary class). Any witness is validated against
    {!Noise.predict}.

    [box] restricts the search to per-node noise ranges (bias node first
    when the spec enables bias noise, then the input nodes); it must be
    contained in the spec's range and defaults to the full range. The
    input-node-sensitivity analysis uses it to ask one-sided questions
    such as "is there a flip with strictly positive noise at node i?".

    [budget] is polled every 64 boxes; exhaustion or cancellation yields
    [Unknown] (never an exception), unlike the legacy [max_boxes] cap
    which still raises {!Budget_exceeded}. *)

val enumerate_flips :
  ?limit:int ->
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Noise.vector list * [ `Complete | `Truncated | `Budget of Resil.Budget.reason ]
(** All distinct flipping vectors in the range, in deterministic order
    ([limit] defaults to 10_000). [`Budget] (only with a [?budget])
    returns the flips found so far. *)

(** {1 Resumable enumeration}

    The enumeration's depth-first search runs on an explicit box stack,
    so its exact state is a serializable {!cursor}. A budget stop only
    happens between boxes; resuming from the returned cursor continues
    the run with nothing replayed and nothing skipped — the concatenated
    vector lists of any interrupted-and-resumed chain are bit-identical
    to a single uninterrupted {!enumerate_flips}. The checkpoint/resume
    machinery in {!Extract} persists cursors in [fannet-ckpt/1] files. *)

type cursor = {
  pending : (int array * int array) list;
      (** boxes still to process, top of stack first *)
  emitted : int;  (** flips produced across all runs so far *)
}

val fresh_cursor :
  Nn.Qnet.t -> Noise.spec -> input:int array -> label:int -> cursor
(** The cursor an uninterrupted enumeration starts from (the full noise
    box, nothing emitted). *)

val enumerate_flips_from :
  ?limit:int ->
  ?budget:Resil.Budget.t ->
  ?progress_every:int ->
  ?on_progress:(cursor -> Noise.vector list -> unit) ->
  cursor ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Noise.vector list
  * [ `Complete | `Truncated | `Budget of Resil.Budget.reason ]
  * cursor
(** Continue from a cursor. Returns only the vectors found {e this run}
    (the caller holds the prefix), the status, and the cursor to resume
    from after [`Budget]. [limit] bounds the {e total} emitted count,
    cursor included. [on_progress] is called every [progress_every]
    (default 256) processed boxes with the current cursor and this run's
    vectors so far, a consistent pair at a box boundary — the checkpoint
    hook; it must not mutate the cursor. *)

val min_l1_flip :
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  (Noise.vector * int) option
(** The cheapest misclassifying noise vector by L1 norm (sum of absolute
    node noises) and its norm — the paper's "minimum noise (Δx)min"
    notion made precise. Best-first branch-and-bound: boxes are explored
    in order of their L1 lower bound, robust boxes pruned, so the first
    flip found is optimal. [None] when the range is robust. *)

val min_l1_flip_b :
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  ((Noise.vector * int) option, Resil.Budget.reason) result
(** {!min_l1_flip} under a budget: [Error] when the best-first search was
    stopped before the optimum was proved. *)

val count_flips :
  ?limit:int ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  int * [ `Complete | `Truncated ]
(** Number of flipping vectors, counting whole all-flipping boxes without
    enumerating them point by point ([limit] caps the count). *)

(**/**)

val unsound_relaxation_for_tests : bool ref
(** Mutation hook for the differential fuzzer only: when set, the
    unstable-ReLU upper relaxation drops its [-lob] offset (the classic
    wrong-slope triangle bug), making the engine unsound in both
    directions. The fuzz oracle must catch and shrink the disagreement;
    every other caller must leave this [false]. *)
