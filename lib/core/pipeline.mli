(** End-to-end case-study pipeline (paper §V-A/B).

    Reproduces the paper's setup: synthesise the Golub-like Leukemia
    dataset, select the top-5 genes with mRMR, train the 5-20-2 ReLU
    network with the two-phase learning-rate schedule, fold the feature
    standardisation back into the first layer so the deployed network
    consumes raw integer gene expressions, and quantize it to the integer
    model the formal analysis operates on. *)

type config = {
  dataset_params : Dataset.Golub.params;
  dataset_seed : int;
  init_seed : int;          (** weight initialisation *)
  train_config : Nn.Train.config;
  k_features : int;         (** paper: 5 *)
  mi_bins : int;            (** quantile bins for mRMR *)
  hidden : int;             (** paper: 20 *)
  weight_bits : int;        (** fixed-point weight precision *)
}

val default_config : config
(** The paper's configuration (7129 genes, 38/34 split, 5 features via
    mRMR, 5-20-2 network, lr 0.5 x40 then 0.2 x40 epochs, 12-bit
    weights). *)

val fast_config : config
(** A small-dataset variant for tests: 64 genes, same downstream shape. *)

type t = {
  config : config;
  dataset : Dataset.Golub.t;
  selected_genes : int array;        (** in mRMR selection order *)
  network : Nn.Network.t;            (** folded: takes raw integer inputs *)
  qnet : Nn.Qnet.t;                  (** quantized integer model *)
  history : Nn.Train.history;
  train_inputs : Validate.labelled array;
  test_inputs : Validate.labelled array;
  train_accuracy : float;            (** quantized model, training set *)
  test_accuracy : float;             (** quantized model, test set *)
  p1 : Validate.result;              (** noise-free test-set validation *)
}

val run : ?config:config -> unit -> t

val training_labels : t -> int array
val analysis_inputs : t -> Validate.labelled array
(** The correctly classified test inputs — the set the paper analyses
    under noise. *)

val analysis_backend : Backend.t
(** The backend the pipeline's downstream analyses should default to:
    {!Backend.default_cascade} (interval prefilter, branch-and-bound on
    escalation) — complete, and cheapest on the robust-sample-dominated
    workloads the tolerance and sensitivity sweeps issue. *)
