(** Input-node sensitivity analysis (paper §V-C.4).

    Over the counterexample corpus, the sign distribution of each noise
    node reveals asymmetric sensitivities: in the paper no counterexample
    carries positive noise at input node i5, while node i2 appears with
    positive noise more often than negative. Node index 0 is the bias
    node when the spec enables bias noise; gene nodes are 1..n (the
    paper's i1..i5). *)

type node_stats = {
  node : int;
  n_positive : int;    (** counterexamples with positive noise here *)
  n_negative : int;
  n_zero : int;
  min_noise : int;     (** extreme values observed (0 when corpus empty) *)
  max_noise : int;
  mean_noise : float;
}

type side = Never_positive | Never_negative | Both_sides | No_data

val per_node :
  Noise.spec -> n_inputs:int -> Extract.counterexample list -> node_stats array
(** One entry per noise node (bias first when enabled). *)

val sidedness : node_stats -> side

val most_sensitive : node_stats array -> int
(** Node index whose noise is most often non-zero in the corpus (the node
    whose perturbation most frequently participates in flips). Raises on
    an empty array. *)

val stats_to_string : node_stats -> string

type formal_side = {
  fs_node : int;
  positive_flip : bool;  (** some counterexample has noise >= +1 here *)
  negative_flip : bool;  (** some counterexample has noise <= -1 here *)
}

type engine =
  | Bnb  (** complete branch-and-bound with box restriction (default) *)
  | Smt
      (** bit-blasted queries on pooled {!Warm} sessions: all boxes about
          one (network, input, label) share one Tseitin encoding, each box
          is a memoised assumption — the per-node workers of
          {!formal_sidedness} warm-start each other's queries *)

val formal_sidedness :
  ?jobs:int ->
  ?engine:engine ->
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:Validate.labelled array ->
  formal_side array
(** Runs one {!Util.Parallel} worker per node ([?jobs] as in {!Tolerance}).
    Exact one-sidedness per node, decided by formal queries rather than a
    (possibly truncated) corpus: node [i] admits a positive-side flip iff
    some input has a flipping vector whose [i]-component is >= +1 (other
    nodes range freely). A node with [positive_flip = false] is the
    paper's "extremely insensitive to positive noise" case (its i5).
    Both engines are complete, so the answer is engine-independent. *)

val formal_sidedness_b :
  ?jobs:int ->
  ?engine:engine ->
  ?budget:Resil.Budget.t ->
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:Validate.labelled array ->
  (formal_side array, Resil.Budget.reason) result
(** {!formal_sidedness} under a budget: the per-node one-sided queries
    propagate the budget into the branch-and-bound engine and the worker
    pool stops cooperatively on exhaustion, returning [Error] with the
    first reason observed instead of a partial (and therefore
    misleading) sidedness table. *)

val formal_side_to_side : formal_side -> side

val single_node_tolerance :
  Nn.Qnet.t ->
  Noise.spec ->
  inputs:Validate.labelled array ->
  node:int ->
  int option
(** Largest ±D within the spec's range such that perturbing ONLY this
    node (all other nodes noise-free) flips no input; [None] when even the
    full range is safe. A quantitative per-node sensitivity: the smaller
    the value, the more measurement precision the node demands (the
    paper's variable-precision acquisition use case). Uses the complete
    branch-and-bound engine with box restriction. *)
