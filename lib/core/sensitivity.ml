type node_stats = {
  node : int;
  n_positive : int;
  n_negative : int;
  n_zero : int;
  min_noise : int;
  max_noise : int;
  mean_noise : float;
}

type side = Never_positive | Never_negative | Both_sides | No_data

let node_values (spec : Noise.spec) node cexs =
  List.map
    (fun (c : Extract.counterexample) ->
      if spec.Noise.bias_noise then
        if node = 0 then c.Extract.vector.Noise.bias
        else c.Extract.vector.Noise.inputs.(node - 1)
      else c.Extract.vector.Noise.inputs.(node - 1))
    cexs

let stats_of_values node values =
  match values with
  | [] ->
      {
        node;
        n_positive = 0;
        n_negative = 0;
        n_zero = 0;
        min_noise = 0;
        max_noise = 0;
        mean_noise = 0.;
      }
  | v :: _ ->
      let n_positive = List.length (List.filter (fun x -> x > 0) values) in
      let n_negative = List.length (List.filter (fun x -> x < 0) values) in
      let n_zero = List.length (List.filter (fun x -> x = 0) values) in
      let min_noise = List.fold_left min v values in
      let max_noise = List.fold_left max v values in
      let total = List.fold_left ( + ) 0 values in
      {
        node;
        n_positive;
        n_negative;
        n_zero;
        min_noise;
        max_noise;
        mean_noise = float_of_int total /. float_of_int (List.length values);
      }

let per_node (spec : Noise.spec) ~n_inputs cexs =
  let nodes =
    if spec.Noise.bias_noise then List.init (n_inputs + 1) Fun.id
    else List.init n_inputs (fun i -> i + 1)
  in
  Array.of_list
    (List.map (fun node -> stats_of_values node (node_values spec node cexs)) nodes)

let sidedness s =
  if s.n_positive = 0 && s.n_negative = 0 then No_data
  else if s.n_positive = 0 then Never_positive
  else if s.n_negative = 0 then Never_negative
  else Both_sides

let most_sensitive stats =
  if Array.length stats = 0 then invalid_arg "Sensitivity.most_sensitive: empty";
  let nonzero s = s.n_positive + s.n_negative in
  let best = ref stats.(0) in
  Array.iter (fun s -> if nonzero s > nonzero !best then best := s) stats;
  !best.node

type formal_side = {
  fs_node : int;
  positive_flip : bool;
  negative_flip : bool;
}

let node_to_dim (spec : Noise.spec) node =
  if spec.Noise.bias_noise then node else node - 1

(* A budget stop inside a one-sided query unwinds through the surrounding
   [Array.exists] with this local exception; it never escapes the module
   (the [_b] entry points catch it, the unbudgeted ones cannot trigger
   it). *)
exception Stopped of Resil.Budget.reason

type engine = Bnb | Smt

let side_exists ?(engine = Bnb) ?budget (spec : Noise.spec) ~inputs net node
    ~positive =
  let lo, hi =
    if positive then (1, spec.Noise.delta_hi) else (spec.Noise.delta_lo, -1)
  in
  if lo > hi then false
  else
    Array.exists
      (fun (input, label) ->
        let n_dims =
          Array.length input + if spec.Noise.bias_noise then 1 else 0
        in
        let box =
          Array.init n_dims (fun d ->
              if d = node_to_dim spec node then (lo, hi)
              else (spec.Noise.delta_lo, spec.Noise.delta_hi))
        in
        match engine with
        | Bnb -> (
            match Bnb.exists_flip ~box ?budget net spec ~input ~label with
            | Bnb.Flip _ -> true
            | Bnb.Robust -> false
            | Bnb.Unknown r -> raise (Stopped r))
        | Smt -> (
            (* Bit-blasted one-sided query on a pooled warm session: all
               boxes about one (net, input, label) share one encoding,
               each box is a memoised assumption ({!Warm.probe_box}). *)
            match Warm.probe_box ?budget net spec ~box ~input ~label with
            | Ok flips -> flips
            | Error r -> raise (Stopped r)))
      inputs

let sided_nodes (spec : Noise.spec) ~inputs =
  if Array.length inputs = 0 then invalid_arg "Sensitivity.formal_sidedness: no inputs";
  let n_inputs = Array.length (fst inputs.(0)) in
  if spec.Noise.bias_noise then Array.init (n_inputs + 1) Fun.id
  else Array.init n_inputs (fun i -> i + 1)

let formal_sidedness ?jobs ?engine net (spec : Noise.spec) ~inputs =
  let nodes = sided_nodes spec ~inputs in
  (* One worker per node; both one-sided queries stay on that worker (and,
     with the Smt engine, share that worker's warm sessions). *)
  Util.Parallel.map ?jobs
    (fun node ->
      {
        fs_node = node;
        positive_flip = side_exists ?engine spec ~inputs net node ~positive:true;
        negative_flip = side_exists ?engine spec ~inputs net node ~positive:false;
      })
    nodes

let formal_sidedness_b ?jobs ?engine ?budget net (spec : Noise.spec) ~inputs =
  let nodes = sided_nodes spec ~inputs in
  let failed : Resil.Budget.reason option Atomic.t = Atomic.make None in
  let note r = ignore (Atomic.compare_and_set failed None (Some r)) in
  let stop () =
    Atomic.get failed <> None
    || (match budget with Some b -> Resil.Budget.check b <> None | None -> false)
  in
  let per_node =
    Util.Parallel.map_until ?jobs ~stop
      (fun _ node ->
        Resil.Faultpoint.guard "worker.raise"
          (Failure "injected fault: sensitivity worker raised");
        match
          {
            fs_node = node;
            positive_flip =
              side_exists ?engine ?budget spec ~inputs net node ~positive:true;
            negative_flip =
              side_exists ?engine ?budget spec ~inputs net node ~positive:false;
          }
        with
        | fs -> Ok fs
        | exception Stopped r ->
            note r;
            Error r)
      nodes
  in
  let first_reason () =
    match Atomic.get failed with
    | Some r -> r
    | None -> (
        match Option.bind budget Resil.Budget.why with
        | Some r -> r
        | None -> Resil.Budget.Cancelled)
  in
  match per_node with
  | Error () -> Error (first_reason ())
  | Ok arr -> (
      match
        Array.fold_left
          (fun acc r -> match (acc, r) with None, Error r -> Some r | _ -> acc)
          None arr
      with
      | Some r -> Error r
      | None ->
          Ok (Array.map (function Ok fs -> fs | Error _ -> assert false) arr))

let formal_side_to_side f =
  match (f.positive_flip, f.negative_flip) with
  | false, false -> No_data
  | false, true -> Never_positive
  | true, false -> Never_negative
  | true, true -> Both_sides

let single_node_tolerance net (spec : Noise.spec) ~inputs ~node =
  if Array.length inputs = 0 then
    invalid_arg "Sensitivity.single_node_tolerance: no inputs";
  let n_inputs = Array.length (fst inputs.(0)) in
  let dim = node_to_dim spec node in
  let n_dims = n_inputs + if spec.Noise.bias_noise then 1 else 0 in
  if dim < 0 || dim >= n_dims then
    invalid_arg "Sensitivity.single_node_tolerance: node out of range";
  let max_d = min (-spec.Noise.delta_lo) spec.Noise.delta_hi in
  let flips_at d =
    let box =
      Array.init n_dims (fun k -> if k = dim then (-d, d) else (0, 0))
    in
    Array.exists
      (fun (input, label) ->
        match Bnb.exists_flip ~box net spec ~input ~label with
        | Bnb.Flip _ -> true
        | Bnb.Robust -> false
        | Bnb.Unknown _ -> assert false (* no budget on this path *))
      inputs
  in
  if not (flips_at max_d) then None
  else begin
    (* Monotone in d: binary search the smallest flipping magnitude. *)
    let rec search lo hi =
      if hi - lo <= 1 then hi
      else
        let mid = (lo + hi) / 2 in
        if flips_at mid then search lo mid else search mid hi
    in
    let min_flip = if flips_at 0 then 0 else search 0 max_d in
    Some (max 0 (min_flip - 1))
  end

let stats_to_string s =
  Printf.sprintf
    "node %d: %d positive / %d negative / %d zero (range [%d, %d], mean %.2f)"
    s.node s.n_positive s.n_negative s.n_zero s.min_noise s.max_noise s.mean_noise
