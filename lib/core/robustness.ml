module B = Util.Bigcount

type mode =
  | Exact_mode of { certify : bool }
  | Approx_mode of { epsilon : float; delta : float; seed : int }

let default_mode = Exact_mode { certify = false }

type report = {
  flips : B.t;
  total : B.t;
  probability : float;
  certificate : Count.Certificate.t option;
  solver_calls : int;
  status : (unit, Resil.Budget.reason) result;
  approx : bool;
}

let query net spec ~input ~label =
  let enc = Encode.encode net ~input spec in
  (Encode.misclassified enc ~true_label:label, Encode.noise_vars enc)

let status_of = function
  | Count.Exact.Decided -> Ok ()
  | Count.Exact.Exhausted r -> Error r

let probability ?budget ?(mode = default_mode) ?jobs ?checkpoint ?ckpt_key net
    spec ~input ~label =
  let f, project = query net spec ~input ~label in
  match mode with
  | Exact_mode { certify } ->
      let r =
        Count.Exact.count ?budget ~certify ?jobs ?checkpoint ?ckpt_key f
          ~project
      in
      {
        flips = r.Count.Exact.count;
        total = r.Count.Exact.total;
        probability = B.ratio r.Count.Exact.count r.Count.Exact.total;
        certificate = r.Count.Exact.certificate;
        solver_calls = r.Count.Exact.solver_calls;
        status = status_of r.Count.Exact.status;
        approx = false;
      }
  | Approx_mode { epsilon; delta; seed } ->
      let r = Count.Approx.count ?budget ~epsilon ~delta ~seed f ~project in
      let total =
        Noise.spec_count spec ~n_inputs:(Array.length input)
      in
      {
        flips = r.Count.Approx.estimate;
        total;
        probability = B.ratio r.Count.Approx.estimate total;
        certificate = None;
        solver_calls = r.Count.Approx.solver_calls;
        status = status_of r.Count.Approx.status;
        approx = not r.Count.Approx.exact;
      }

let check_certificate net spec ~input ~label cert =
  let f, project = query net spec ~input ~label in
  Count.Certificate.check f ~project cert
