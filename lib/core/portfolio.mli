(** Portfolio SAT for the P2 exists-flip query.

    The same bit-blasted query raced on [width] diversified CDCL solvers
    (seed 0 is the pristine default solver; other seeds scatter phases,
    stagger restart schedules and inject occasional random decisions —
    {!Sat.Solver.set_diversification}). The first member to {e decide}
    wins and cancels the rest through child cancellation tokens
    ({!Resil.Budget.link}), so a win never fires the caller's own budget
    token; losers stop cooperatively at their next budget poll.

    Every member is complete, so the decided verdict class is seed- and
    schedule-independent: a portfolio answer always agrees with the
    single-solver [Backend.Smt] answer ([Flip] witnesses may differ by
    member — each is re-validated against {!Noise.predict} before being
    returned). [Unknown] is returned only when {e no} member could decide
    (the shared budget ran out), carrying the lowest seed's reason.

    With [share] (the default, width > 1), members exchange learnt
    clauses of at most {!Sat.Solver.set_clause_hooks}'s export cap
    through a bounded lock-free {!Sat.Mailbox}; every foreign clause is
    re-derived by reverse unit propagation before adoption, so sharing
    cannot unsound a member and certified traces stay independently
    checkable.

    Observability: [portfolio.races], [portfolio.undecided],
    [portfolio.wins.seed<k>] counters and a [portfolio.cancel_latency_s]
    histogram (time from the winner's cancel to each loser actually
    stopping). *)

val default_width : unit -> int
(** [min 4 (Util.Parallel.default_jobs ())] — racing more members than
    cores pays cancellation cost for no search diversity gain. *)

val exists_flip :
  ?budget:Resil.Budget.t ->
  ?width:int ->
  ?share:bool ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Backend.verdict * int option
(** The raced query. Returns the verdict and the winning member's seed
    ([None] when no member decided). Sessions are built sequentially on
    the calling domain; only the solving runs on raced domains. *)

val certified_exists_flip :
  ?budget:Resil.Budget.t ->
  ?width:int ->
  ?share:bool ->
  Nn.Qnet.t ->
  Noise.spec ->
  input:int array ->
  label:int ->
  Backend.certified_verdict * int option
(** Like {!exists_flip} with a DRUP trace attached to every member: the
    winner's certificate is returned and must pass the independent
    checker — validate with {!Backend.check_certified}, exactly as for a
    single-solver certified verdict. Imported shared clauses are logged
    as RUP lemmas in the adopting member's trace, so the winning trace
    checks regardless of which members exchanged clauses. *)
