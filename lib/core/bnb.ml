type verdict =
  | Robust
  | Flip of Noise.vector
  | Unknown of Resil.Budget.reason

(* Test-only mutation hook for the differential fuzzer: when set, the
   unstable-ReLU upper relaxation drops its offset (claiming
   relu(pre) <= pre, false on negative pre) — the classic wrong-slope
   triangle bug. Must stay [false] outside the mutation tests. *)
let unsound_relaxation_for_tests = ref false

(* Layered view of the noisy network for one input (see the interface).
   Layer 0 pre-activations are exact affine forms over the noise
   dimensions d (bias node first when enabled):
     pre_k = pre_const.(k) + sum_d pre_coef.(k).(d) * delta_d.
   Deeper layers are kept as integer weight/bias pairs (biases already
   multiplied by the running scale their inputs carry); the margins
     m_j = out_const.(j) + sum_k out_coef.(j).(k) * post_k
   range over the last hidden layer's post-activations, and the input
   flips iff m_j < thr.(j) for some adversary j. *)
type slayer = {
  w : int array array;
  b : int array;  (* at the layer's input running scale *)
  act : Nn.Qnet.act;
}

type model = {
  n_dims : int;
  pre_const : int array;
  pre_coef : int array array;
  act0 : Nn.Qnet.act;
  mid : slayer array;  (* layers 1 .. L-2 *)
  out_coef : int array array;  (* per adversary *)
  out_const : int array;
  thr : int array;
  zeros : int array;  (* shared all-zero coefficient row, never mutated *)
}

let build (net : Nn.Qnet.t) (spec : Noise.spec) ~input ~label =
  let n_layers = Nn.Qnet.n_layers net in
  if n_layers < 2 then invalid_arg "Bnb: at least two layers required";
  let n_out = Nn.Qnet.out_dim net in
  if n_out < 2 then invalid_arg "Bnb: at least two outputs required";
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Bnb: input size mismatch";
  if label < 0 || label >= n_out then invalid_arg "Bnb: label out of range";
  let layers = net.Nn.Qnet.layers in
  let out_layer = layers.(n_layers - 1) in
  if out_layer.Nn.Qnet.act <> Nn.Qnet.Identity then
    invalid_arg "Bnb: output layer must be identity";
  let scale = Noise.scale_of spec in
  let n_inputs = Array.length input in
  let bias_dim = if spec.Noise.bias_noise then 1 else 0 in
  let n_dims = n_inputs + bias_dim in
  let layer0 = layers.(0) in
  let n_hidden = Array.length layer0.Nn.Qnet.weights in
  let pre_const = Array.make n_hidden 0 in
  let pre_coef = Array.make_matrix n_hidden n_dims 0 in
  for k = 0 to n_hidden - 1 do
    let b = layer0.Nn.Qnet.bias.(k) in
    let row = layer0.Nn.Qnet.weights.(k) in
    let affine = ref (b * scale) in
    if spec.Noise.bias_noise then pre_coef.(k).(0) <- b;
    Array.iteri
      (fun i w ->
        affine := !affine + (w * input.(i) * scale);
        pre_coef.(k).(bias_dim + i) <-
          (match spec.Noise.kind with
          | Noise.Relative -> w * input.(i)
          | Noise.Absolute -> w))
      row;
    pre_const.(k) <- !affine
  done;
  (* Running scale: a Sign layer emits ±1 whatever its input magnitude,
     so the scale carried by ReLU/Identity layers resets to 1 after it
     (see Noise.apply). Each deeper bias enters at its input scale. *)
  let running = ref (if layer0.Nn.Qnet.act = Nn.Qnet.Sign then 1 else scale) in
  let mid =
    Array.init (n_layers - 2) (fun i ->
        let l = layers.(i + 1) in
        let sl =
          {
            w = l.Nn.Qnet.weights;
            b = Array.map (fun b -> b * !running) l.Nn.Qnet.bias;
            act = l.Nn.Qnet.act;
          }
        in
        if l.Nn.Qnet.act = Nn.Qnet.Sign then running := 1;
        sl)
  in
  let adversaries =
    List.filter (fun j -> j <> label) (List.init n_out Fun.id)
  in
  let out_coef =
    Array.of_list
      (List.map
         (fun j ->
           Array.init
             (Array.length out_layer.Nn.Qnet.weights.(label))
             (fun k ->
               out_layer.Nn.Qnet.weights.(label).(k)
               - out_layer.Nn.Qnet.weights.(j).(k)))
         adversaries)
  in
  let out_const =
    Array.of_list
      (List.map
         (fun j ->
           (out_layer.Nn.Qnet.bias.(label) - out_layer.Nn.Qnet.bias.(j))
           * !running)
         adversaries)
  in
  (* Ties go to the lower class index: against a higher class the label
     keeps on equality (flip iff margin < 0); against a lower class it
     needs a strict win (flip iff margin < 1). *)
  let thr =
    Array.of_list (List.map (fun j -> if j > label then 0 else 1) adversaries)
  in
  {
    n_dims;
    pre_const;
    pre_coef;
    act0 = layer0.Nn.Qnet.act;
    mid;
    out_coef;
    out_const;
    thr;
    zeros = Array.make n_dims 0;
  }

let n_margins m = Array.length m.out_coef

(* Last-hidden-layer post-activations at a concrete noise point: exact
   layered forward over the model. *)
let hidden_at m point =
  let post0 =
    Array.mapi
      (fun k const ->
        let pre = ref const in
        Array.iteri
          (fun d coef -> pre := !pre + (coef * point.(d)))
          m.pre_coef.(k);
        Nn.Qnet.apply_act m.act0 !pre)
      m.pre_const
  in
  Array.fold_left
    (fun h (l : slayer) ->
      Array.mapi
        (fun k row ->
          let pre = ref l.b.(k) in
          Array.iteri (fun i w -> pre := !pre + (w * h.(i))) row;
          Nn.Qnet.apply_act l.act !pre)
        l.w)
    post0 m.mid

let flips_at_point m point =
  let h = hidden_at m point in
  let rec check j =
    j < n_margins m
    &&
    let margin = ref m.out_const.(j) in
    Array.iteri (fun k c -> margin := !margin + (c * h.(k))) m.out_coef.(j);
    !margin < m.thr.(j) || check (j + 1)
  in
  check 0

(* ---------- symbolic bound propagation ---------- *)

(* Per-node symbolic state over a box: one affine lower and one affine
   upper form over the noise dimensions, plus the concrete bounds they
   imply. Forms are combined layer by layer (positive weights take the
   like-sided form, negative the opposite), so coefficients recombine and
   cancel across neurons — the DeepPoly/ReluVal-style tightening that pure
   interval propagation throws away. Coefficient arrays are read-only once
   built; stable-linear nodes alias their pre-activation arrays and
   constant nodes alias [m.zeros]. *)
type sym = {
  lo_c : int;
  lo_k : int array;
  up_c : int;
  up_k : int array;
  lob : int;  (* concrete bounds of the node value over the box *)
  upb : int;
}

let eval_lower const coef ~lo ~hi =
  let acc = ref const in
  Array.iteri
    (fun d a -> acc := !acc + (a * if a >= 0 then lo.(d) else hi.(d)))
    coef;
  !acc

let eval_upper const coef ~lo ~hi =
  let acc = ref const in
  Array.iteri
    (fun d a -> acc := !acc + (a * if a >= 0 then hi.(d) else lo.(d)))
    coef;
  !acc

let const_sym m v = { lo_c = v; lo_k = m.zeros; up_c = v; up_k = m.zeros; lob = v; upb = v }

(* Activation relaxation with integer-only coefficients. Stable nodes stay
   linear (or constant); an unstable ReLU is relaxed one-sidedly with
   slopes restricted to {0, 1} so the propagated forms stay integral:
     upper: pre - lob   (valid since lob < 0)   or the constant upb,
     lower: the pre lower form (relu(x) >= x)   or the constant 0,
   picking the smaller-area side DeepPoly-style (linear iff upb >= -lob).
   An unstable Sign collapses to the constant envelope [-1, 1]. *)
let relax m act (s : sym) =
  match act with
  | Nn.Qnet.Identity -> s
  | Nn.Qnet.Sign ->
      if s.lob >= 0 then const_sym m 1
      else if s.upb < 0 then const_sym m (-1)
      else { lo_c = -1; lo_k = m.zeros; up_c = 1; up_k = m.zeros; lob = -1; upb = 1 }
  | Nn.Qnet.Relu ->
      if s.lob >= 0 then s
      else if s.upb <= 0 then const_sym m 0
      else begin
        let keep_linear = s.upb >= -s.lob in
        let lo_c, lo_k = if keep_linear then (s.lo_c, s.lo_k) else (0, m.zeros) in
        let up_c, up_k =
          if !unsound_relaxation_for_tests then (s.up_c, s.up_k)
          else if keep_linear then (s.up_c - s.lob, s.up_k)
          else (s.upb, m.zeros)
        in
        { lo_c; lo_k; up_c; up_k; lob = 0; upb = s.upb }
      end

(* Affine combination c . syms + const: positive coefficients pull the
   like-sided form, negative ones the opposite side. *)
let combine m coefs syms bias ~lo ~hi =
  let lo_k = Array.make m.n_dims 0 and up_k = Array.make m.n_dims 0 in
  let lo_c = ref bias and up_c = ref bias in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let s = syms.(i) in
        lo_c := !lo_c + (c * s.lo_c);
        up_c := !up_c + (c * s.up_c);
        Array.iteri (fun d a -> lo_k.(d) <- lo_k.(d) + (c * a)) s.lo_k;
        Array.iteri (fun d a -> up_k.(d) <- up_k.(d) + (c * a)) s.up_k
      end
      else if c < 0 then begin
        let s = syms.(i) in
        lo_c := !lo_c + (c * s.up_c);
        up_c := !up_c + (c * s.lo_c);
        Array.iteri (fun d a -> lo_k.(d) <- lo_k.(d) + (c * a)) s.up_k;
        Array.iteri (fun d a -> up_k.(d) <- up_k.(d) + (c * a)) s.lo_k
      end)
    coefs;
  let lob = eval_lower !lo_c lo_k ~lo ~hi in
  let upb = eval_upper !up_c up_k ~lo ~hi in
  { lo_c = !lo_c; lo_k; up_c = !up_c; up_k; lob; upb }

(* Post-activation symbolic state of the last hidden layer over a box. *)
let propagate m ~lo ~hi =
  let post0 =
    Array.mapi
      (fun k const ->
        let coef = m.pre_coef.(k) in
        let pre =
          {
            lo_c = const;
            lo_k = coef;
            up_c = const;
            up_k = coef;
            lob = eval_lower const coef ~lo ~hi;
            upb = eval_upper const coef ~lo ~hi;
          }
        in
        relax m m.act0 pre)
      m.pre_const
  in
  Array.fold_left
    (fun post (l : slayer) ->
      Array.mapi
        (fun k row -> relax m l.act (combine m row post l.b.(k) ~lo ~hi))
        l.w)
    post0 m.mid

(* Bounds of margin [j] over a box given the last hidden layer's symbolic
   state. *)
let margin_bounds m post j ~lo ~hi =
  let s = combine m m.out_coef.(j) post m.out_const.(j) ~lo ~hi in
  (s.lob, s.upb)

(* Box classification: [`Robust] (no point flips), [`All_flip] (every
   point flips), or [`Split] with the worst lower-bound slack (used to
   order children). *)
let classify m ~lo ~hi =
  let post = propagate m ~lo ~hi in
  let robust = ref true in
  let worst_slack = ref max_int in
  let all_flip = ref false in
  for j = 0 to n_margins m - 1 do
    if not !all_flip then begin
      let d_lo, d_hi = margin_bounds m post j ~lo ~hi in
      if d_hi < m.thr.(j) then all_flip := true
      else begin
        if d_lo < m.thr.(j) then robust := false;
        let slack = d_lo - m.thr.(j) in
        if slack < !worst_slack then worst_slack := slack
      end
    end
  done;
  if !all_flip then `All_flip
  else if !robust then `Robust
  else `Split !worst_slack

let vector_of_point (spec : Noise.spec) ~n_inputs point =
  if spec.Noise.bias_noise then
    { Noise.bias = point.(0); inputs = Array.sub point 1 n_inputs }
  else { Noise.bias = 0; inputs = Array.copy point }

let widest_dim ~lo ~hi =
  let best = ref 0 in
  for d = 1 to Array.length lo - 1 do
    if hi.(d) - lo.(d) > hi.(!best) - lo.(!best) then best := d
  done;
  !best

let is_point ~lo ~hi =
  let rec go d = d >= Array.length lo || (lo.(d) = hi.(d) && go (d + 1)) in
  go 0

(* Floor division, matching [split]: plain (lo+hi)/2 truncates toward zero,
   so on an all-negative range the `All_flip` witness midpoint would
   disagree with the split geometry. *)
let midpoint ~lo ~hi = Array.init (Array.length lo) (fun d -> (lo.(d) + hi.(d)) asr 1)

let split ~lo ~hi =
  let d = widest_dim ~lo ~hi in
  (* Floor division: plain (lo+hi)/2 truncates toward zero and can return
     hi on negative ranges, recreating the same box forever. *)
  let mid = (lo.(d) + hi.(d)) asr 1 in
  let hi1 = Array.copy hi and lo2 = Array.copy lo in
  hi1.(d) <- mid;
  lo2.(d) <- mid + 1;
  ((lo, hi1), (lo2, hi))

let initial_box ?box m (spec : Noise.spec) =
  match box with
  | None ->
      ( Array.make m.n_dims spec.Noise.delta_lo,
        Array.make m.n_dims spec.Noise.delta_hi )
  | Some ranges ->
      if Array.length ranges <> m.n_dims then
        invalid_arg "Bnb: box dimension mismatch";
      Array.iter
        (fun (lo, hi) ->
          if lo > hi || lo < spec.Noise.delta_lo || hi > spec.Noise.delta_hi
          then invalid_arg "Bnb: box outside the noise range")
        ranges;
      (Array.map fst ranges, Array.map snd ranges)

exception Found of int array

exception Budget_exceeded

exception Stop of Resil.Budget.reason

(* Budget poll at box granularity: one check every 64 boxes (a box
   classification is itself O(neurons * dims) work per layer, so the
   amortized poll cost is negligible — the E18 bench measures it). *)
let poll_budget budget boxes =
  match budget with
  | Some b when boxes land 63 = 0 -> (
      match Resil.Budget.check b with Some r -> raise (Stop r) | None -> ())
  | Some _ | None -> ()

let entry_check budget =
  match budget with
  | Some b -> (
      match Resil.Budget.check b with Some r -> raise (Stop r) | None -> ())
  | None -> ()

let exists_flip ?box ?max_boxes ?budget net spec ~input ~label =
  let m = build net spec ~input ~label in
  let box_budget = ref (match max_boxes with Some b -> b | None -> max_int) in
  let boxes = ref 0 in
  let spend () =
    decr box_budget;
    if !box_budget < 0 then raise Budget_exceeded;
    incr boxes;
    poll_budget budget !boxes
  in
  let rec go ~lo ~hi =
    spend ();
    match classify m ~lo ~hi with
    | `Robust -> ()
    | `All_flip -> raise (Found (midpoint ~lo ~hi))
    | `Split _ ->
        if is_point ~lo ~hi then begin
          if flips_at_point m lo then raise (Found (Array.copy lo))
        end
        else begin
          let (lo1, hi1), (lo2, hi2) = split ~lo ~hi in
          (* Explore the child with the weaker margin slack first: more
             likely to contain a flip, so witnesses surface early. *)
          let slack (lo, hi) =
            match classify m ~lo ~hi with
            | `All_flip -> min_int
            | `Robust -> max_int
            | `Split s -> s
          in
          if slack (lo1, hi1) <= slack (lo2, hi2) then begin
            go ~lo:lo1 ~hi:hi1;
            go ~lo:lo2 ~hi:hi2
          end
          else begin
            go ~lo:lo2 ~hi:hi2;
            go ~lo:lo1 ~hi:hi1
          end
        end
  in
  let lo, hi = initial_box ?box m spec in
  match
    entry_check budget;
    go ~lo ~hi
  with
  | () -> Robust
  | exception Found point ->
      let v = vector_of_point spec ~n_inputs:(Array.length input) point in
      if Noise.predict net spec ~input v = label then
        failwith "Bnb: witness does not actually misclassify";
      Flip v
  | exception Stop r -> Unknown r

(* Smallest possible L1 norm of a point in the box: per dimension the
   distance of the interval to zero. *)
let box_l1_lower ~lo ~hi =
  let acc = ref 0 in
  Array.iteri
    (fun d l ->
      let h = hi.(d) in
      if l > 0 then acc := !acc + l else if h < 0 then acc := !acc - h)
    lo;
  !acc

let point_l1 point = Array.fold_left (fun acc d -> acc + abs d) 0 point

let min_l1_flip_b ?budget net spec ~input ~label =
  let m = build net spec ~input ~label in
  let boxes = ref 0 in
  (* Best-first over boxes keyed by (L1 lower bound, unique id). *)
  let module Pq = Map.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let queue = ref Pq.empty in
  let counter = ref 0 in
  let push box =
    let lo, hi = box in
    incr counter;
    queue := Pq.add (box_l1_lower ~lo ~hi, !counter) box !queue
  in
  let pop () =
    match Pq.min_binding_opt !queue with
    | None -> None
    | Some (key, box) ->
        queue := Pq.remove key !queue;
        Some box
  in
  push (initial_box m spec);
  let rec search () =
    match pop () with
    | None -> None
    | Some (lo, hi) -> (
        incr boxes;
        poll_budget budget !boxes;
        match classify m ~lo ~hi with
        | `Robust -> search ()
        | `All_flip | `Split _ ->
            if is_point ~lo ~hi then
              if flips_at_point m lo then
                (* Best-first order: the first flipping point popped has
                   the minimal L1 bound, hence minimal norm. *)
                Some (Array.copy lo)
              else search ()
            else begin
              let (lo1, hi1), (lo2, hi2) = split ~lo ~hi in
              push (lo1, hi1);
              push (lo2, hi2);
              search ()
            end)
  in
  match
    entry_check budget;
    search ()
  with
  | None -> Ok None
  | Some point ->
      let v = vector_of_point spec ~n_inputs:(Array.length input) point in
      if Noise.predict net spec ~input v = label then
        failwith "Bnb: witness does not actually misclassify";
      Ok (Some (v, point_l1 point))
  | exception Stop r -> Error r

let min_l1_flip net spec ~input ~label =
  match min_l1_flip_b net spec ~input ~label with
  | Ok r -> r
  | Error _ -> assert false (* no budget, no Stop *)

exception Limit_reached

let box_volume ~lo ~hi =
  Array.fold_left ( * ) 1 (Array.init (Array.length lo) (fun d -> hi.(d) - lo.(d) + 1))

let iter_box ~lo ~hi f =
  let n = Array.length lo in
  let point = Array.copy lo in
  let rec go d =
    if d = n then f point
    else
      for v = lo.(d) to hi.(d) do
        point.(d) <- v;
        go (d + 1)
      done
  in
  go 0

(* Resumable enumeration. The DFS is run on an explicit stack of pending
   boxes so that the exact search state is serializable: [pending] holds
   the boxes still to process (top first — pushing the left child last
   preserves the recursive left-first order), [emitted] the number of
   flips already produced across all runs. A budget stop only happens
   {e between} boxes (the box being classified is either fully processed
   or still on the stack), so resuming from a cursor replays nothing and
   skips nothing — the concatenated output is bit-identical to an
   uninterrupted run. *)
type cursor = {
  pending : (int array * int array) list;
  emitted : int;
}

let fresh_cursor net spec ~input ~label =
  let m = build net spec ~input ~label in
  { pending = [ initial_box m spec ]; emitted = 0 }

let enumerate_flips_from ?(limit = 10_000) ?budget ?(progress_every = 256)
    ?on_progress cursor net spec ~input ~label =
  if progress_every < 1 then invalid_arg "Bnb: progress_every must be >= 1";
  let m = build net spec ~input ~label in
  let n_inputs = Array.length input in
  let pending = ref cursor.pending in
  let emitted = ref cursor.emitted in
  let fresh = ref [] in
  (* newly found this run, newest first *)
  let boxes = ref 0 in
  let add point =
    if !emitted >= limit then raise Limit_reached;
    incr emitted;
    fresh := vector_of_point spec ~n_inputs point :: !fresh
  in
  let cursor_now () = { pending = !pending; emitted = !emitted } in
  let rec loop () =
    match !pending with
    | [] -> `Complete
    | (lo, hi) :: rest ->
        incr boxes;
        (* Poll before the pop: on a Stop the current box stays pending
           and the cursor is exact. *)
        poll_budget budget !boxes;
        pending := rest;
        (match classify m ~lo ~hi with
        | `Robust -> ()
        | `All_flip -> iter_box ~lo ~hi add
        | `Split _ ->
            if is_point ~lo ~hi then begin
              if flips_at_point m lo then add lo
            end
            else begin
              let box1, box2 = split ~lo ~hi in
              pending := box1 :: box2 :: !pending
            end);
        (match on_progress with
        | Some f when !boxes mod progress_every = 0 ->
            f (cursor_now ()) (List.rev !fresh)
        | Some _ | None -> ());
        loop ()
  in
  let status =
    match
      entry_check budget;
      loop ()
    with
    | s -> s
    | exception Limit_reached -> `Truncated
    | exception Stop r -> `Budget r
  in
  (List.rev !fresh, status, cursor_now ())

let enumerate_flips ?limit ?budget net spec ~input ~label =
  let vectors, status, _ =
    enumerate_flips_from ?limit ?budget
      (fresh_cursor net spec ~input ~label)
      net spec ~input ~label
  in
  (vectors, status)

let count_flips ?(limit = max_int) net spec ~input ~label =
  let m = build net spec ~input ~label in
  let count = ref 0 in
  let add n =
    count := !count + n;
    if !count >= limit then raise Limit_reached
  in
  let rec go ~lo ~hi =
    match classify m ~lo ~hi with
    | `Robust -> ()
    | `All_flip -> add (box_volume ~lo ~hi)
    | `Split _ ->
        if is_point ~lo ~hi then begin
          if flips_at_point m lo then add 1
        end
        else begin
          let (lo1, hi1), (lo2, hi2) = split ~lo ~hi in
          go ~lo:lo1 ~hi:hi1;
          go ~lo:lo2 ~hi:hi2
        end
  in
  let lo, hi = initial_box m spec in
  match go ~lo ~hi with
  | () -> (!count, `Complete)
  | exception Limit_reached -> (!count, `Truncated)
