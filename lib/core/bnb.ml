type verdict =
  | Robust
  | Flip of Noise.vector
  | Unknown of Resil.Budget.reason

(* Linear view of the noisy network for one input (see the interface):
   pre_k = pre_const.(k) + sum_d pre_coef.(k).(d) * delta_d over noise
   dimensions d (bias node first when enabled). For every adversary class
   j <> label there is one margin
     m_j = out_const.(j) + sum_k out_coef.(j).(k) * relu(pre_k)
   and the input flips iff m_j < thr.(j) for some j. *)
type model = {
  n_dims : int;
  pre_const : int array;
  pre_coef : int array array;
  out_coef : int array array;   (* per adversary *)
  out_const : int array;
  thr : int array;
}

let build (net : Nn.Qnet.t) (spec : Noise.spec) ~input ~label =
  if Nn.Qnet.n_layers net <> 2 then invalid_arg "Bnb: two-layer networks only";
  let n_out = Nn.Qnet.out_dim net in
  if n_out < 2 then invalid_arg "Bnb: at least two outputs required";
  if Array.length input <> Nn.Qnet.in_dim net then
    invalid_arg "Bnb: input size mismatch";
  if label < 0 || label >= n_out then invalid_arg "Bnb: label out of range";
  let layer1 = net.Nn.Qnet.layers.(0) in
  let layer2 = net.Nn.Qnet.layers.(1) in
  if not layer1.Nn.Qnet.relu then invalid_arg "Bnb: hidden layer must be ReLU";
  if layer2.Nn.Qnet.relu then invalid_arg "Bnb: output layer must be identity";
  let scale = Noise.scale_of spec in
  let n_inputs = Array.length input in
  let bias_dim = if spec.Noise.bias_noise then 1 else 0 in
  let n_dims = n_inputs + bias_dim in
  let n_hidden = Array.length layer1.Nn.Qnet.weights in
  let pre_const = Array.make n_hidden 0 in
  let pre_coef = Array.make_matrix n_hidden n_dims 0 in
  for k = 0 to n_hidden - 1 do
    let b = layer1.Nn.Qnet.bias.(k) in
    let row = layer1.Nn.Qnet.weights.(k) in
    let affine = ref (b * scale) in
    if spec.Noise.bias_noise then pre_coef.(k).(0) <- b;
    Array.iteri
      (fun i w ->
        affine := !affine + (w * input.(i) * scale);
        pre_coef.(k).(bias_dim + i) <-
          (match spec.Noise.kind with
          | Noise.Relative -> w * input.(i)
          | Noise.Absolute -> w))
      row;
    pre_const.(k) <- !affine
  done;
  let adversaries =
    List.filter (fun j -> j <> label) (List.init n_out Fun.id)
  in
  let out_coef =
    Array.of_list
      (List.map
         (fun j ->
           Array.init n_hidden (fun k ->
               layer2.Nn.Qnet.weights.(label).(k) - layer2.Nn.Qnet.weights.(j).(k)))
         adversaries)
  in
  let out_const =
    Array.of_list
      (List.map
         (fun j -> (layer2.Nn.Qnet.bias.(label) - layer2.Nn.Qnet.bias.(j)) * scale)
         adversaries)
  in
  (* Ties go to the lower class index: against a higher class the label
     keeps on equality (flip iff margin < 0); against a lower class it
     needs a strict win (flip iff margin < 1). *)
  let thr =
    Array.of_list (List.map (fun j -> if j > label then 0 else 1) adversaries)
  in
  { n_dims; pre_const; pre_coef; out_coef; out_const; thr }

let n_margins m = Array.length m.out_coef

(* Hidden activations at a concrete noise point. *)
let hidden_at m point =
  Array.mapi
    (fun k const ->
      let pre = ref const in
      Array.iteri (fun d coef -> pre := !pre + (coef * point.(d))) m.pre_coef.(k);
      if !pre > 0 then !pre else 0)
    m.pre_const

let flips_at_point m point =
  let h = hidden_at m point in
  let rec check j =
    j < n_margins m
    &&
    let margin = ref m.out_const.(j) in
    Array.iteri (fun k c -> margin := !margin + (c * h.(k))) m.out_coef.(j);
    !margin < m.thr.(j) || check (j + 1)
  in
  check 0

(* Per-hidden-neuron pre-activation bounds over a box, shared by all
   margins. *)
let pre_bounds m ~lo ~hi =
  Array.init (Array.length m.pre_const) (fun k ->
      let coefs = m.pre_coef.(k) in
      let pre_lo = ref m.pre_const.(k) and pre_hi = ref m.pre_const.(k) in
      Array.iteri
        (fun d a ->
          if a >= 0 then begin
            pre_lo := !pre_lo + (a * lo.(d));
            pre_hi := !pre_hi + (a * hi.(d))
          end
          else begin
            pre_lo := !pre_lo + (a * hi.(d));
            pre_hi := !pre_hi + (a * lo.(d))
          end)
        coefs;
      (!pre_lo, !pre_hi))

(* Bounds of margin [j] over a box. Stable ReLUs stay linear so their
   noise coefficients recombine across neurons; unstable ReLUs use the
   adaptive one-sided relaxations h >= pre, h >= 0, h <= pre_hi. *)
let margin_bounds m pres j ~lo ~hi =
  let lo_coef = Array.make m.n_dims 0 in
  let hi_coef = Array.make m.n_dims 0 in
  let lo_const = ref m.out_const.(j) and hi_const = ref m.out_const.(j) in
  let add_linear coef_acc const_acc c k =
    const_acc := !const_acc + (c * m.pre_const.(k));
    Array.iteri (fun d a -> coef_acc.(d) <- coef_acc.(d) + (c * a)) m.pre_coef.(k)
  in
  Array.iteri
    (fun k c ->
      if c <> 0 then begin
        let pre_lo, pre_hi = pres.(k) in
        if pre_lo >= 0 then begin
          add_linear lo_coef lo_const c k;
          add_linear hi_coef hi_const c k
        end
        else if pre_hi <= 0 then ()
        else begin
          let keep_linear = pre_hi >= -pre_lo in
          if c > 0 then begin
            if keep_linear then add_linear lo_coef lo_const c k;
            hi_const := !hi_const + (c * pre_hi)
          end
          else begin
            lo_const := !lo_const + (c * pre_hi);
            if keep_linear then add_linear hi_coef hi_const c k
          end
        end
      end)
    m.out_coef.(j);
  let bound coef base ~lower =
    let acc = ref base in
    Array.iteri
      (fun d c ->
        let pick_lo = if lower then c >= 0 else c < 0 in
        acc := !acc + (c * if pick_lo then lo.(d) else hi.(d)))
      coef;
    !acc
  in
  (bound lo_coef !lo_const ~lower:true, bound hi_coef !hi_const ~lower:false)

(* Box classification: [`Robust] (no point flips), [`All_flip] (every
   point flips), or [`Split] with the worst lower-bound slack (used to
   order children). *)
let classify m ~lo ~hi =
  let pres = pre_bounds m ~lo ~hi in
  let robust = ref true in
  let worst_slack = ref max_int in
  let all_flip = ref false in
  for j = 0 to n_margins m - 1 do
    if not !all_flip then begin
      let d_lo, d_hi = margin_bounds m pres j ~lo ~hi in
      if d_hi < m.thr.(j) then all_flip := true
      else begin
        if d_lo < m.thr.(j) then robust := false;
        let slack = d_lo - m.thr.(j) in
        if slack < !worst_slack then worst_slack := slack
      end
    end
  done;
  if !all_flip then `All_flip
  else if !robust then `Robust
  else `Split !worst_slack

let vector_of_point (spec : Noise.spec) ~n_inputs point =
  if spec.Noise.bias_noise then
    { Noise.bias = point.(0); inputs = Array.sub point 1 n_inputs }
  else { Noise.bias = 0; inputs = Array.copy point }

let widest_dim ~lo ~hi =
  let best = ref 0 in
  for d = 1 to Array.length lo - 1 do
    if hi.(d) - lo.(d) > hi.(!best) - lo.(!best) then best := d
  done;
  !best

let is_point ~lo ~hi =
  let rec go d = d >= Array.length lo || (lo.(d) = hi.(d) && go (d + 1)) in
  go 0

let midpoint ~lo ~hi = Array.init (Array.length lo) (fun d -> (lo.(d) + hi.(d)) / 2)

let split ~lo ~hi =
  let d = widest_dim ~lo ~hi in
  (* Floor division: plain (lo+hi)/2 truncates toward zero and can return
     hi on negative ranges, recreating the same box forever. *)
  let mid = (lo.(d) + hi.(d)) asr 1 in
  let hi1 = Array.copy hi and lo2 = Array.copy lo in
  hi1.(d) <- mid;
  lo2.(d) <- mid + 1;
  ((lo, hi1), (lo2, hi))

let initial_box ?box m (spec : Noise.spec) =
  match box with
  | None ->
      ( Array.make m.n_dims spec.Noise.delta_lo,
        Array.make m.n_dims spec.Noise.delta_hi )
  | Some ranges ->
      if Array.length ranges <> m.n_dims then
        invalid_arg "Bnb: box dimension mismatch";
      Array.iter
        (fun (lo, hi) ->
          if lo > hi || lo < spec.Noise.delta_lo || hi > spec.Noise.delta_hi
          then invalid_arg "Bnb: box outside the noise range")
        ranges;
      (Array.map fst ranges, Array.map snd ranges)

exception Found of int array

exception Budget_exceeded

exception Stop of Resil.Budget.reason

(* Budget poll at box granularity: one check every 64 boxes (a box
   classification is itself O(hidden * dims * margins) work, so the
   amortized poll cost is negligible — the E18 bench measures it). *)
let poll_budget budget boxes =
  match budget with
  | Some b when boxes land 63 = 0 -> (
      match Resil.Budget.check b with Some r -> raise (Stop r) | None -> ())
  | Some _ | None -> ()

let entry_check budget =
  match budget with
  | Some b -> (
      match Resil.Budget.check b with Some r -> raise (Stop r) | None -> ())
  | None -> ()

let exists_flip ?box ?max_boxes ?budget net spec ~input ~label =
  let m = build net spec ~input ~label in
  let box_budget = ref (match max_boxes with Some b -> b | None -> max_int) in
  let boxes = ref 0 in
  let spend () =
    decr box_budget;
    if !box_budget < 0 then raise Budget_exceeded;
    incr boxes;
    poll_budget budget !boxes
  in
  let rec go ~lo ~hi =
    spend ();
    match classify m ~lo ~hi with
    | `Robust -> ()
    | `All_flip -> raise (Found (midpoint ~lo ~hi))
    | `Split _ ->
        if is_point ~lo ~hi then begin
          if flips_at_point m lo then raise (Found (Array.copy lo))
        end
        else begin
          let (lo1, hi1), (lo2, hi2) = split ~lo ~hi in
          (* Explore the child with the weaker margin slack first: more
             likely to contain a flip, so witnesses surface early. *)
          let slack (lo, hi) =
            match classify m ~lo ~hi with
            | `All_flip -> min_int
            | `Robust -> max_int
            | `Split s -> s
          in
          if slack (lo1, hi1) <= slack (lo2, hi2) then begin
            go ~lo:lo1 ~hi:hi1;
            go ~lo:lo2 ~hi:hi2
          end
          else begin
            go ~lo:lo2 ~hi:hi2;
            go ~lo:lo1 ~hi:hi1
          end
        end
  in
  let lo, hi = initial_box ?box m spec in
  match
    entry_check budget;
    go ~lo ~hi
  with
  | () -> Robust
  | exception Found point ->
      let v = vector_of_point spec ~n_inputs:(Array.length input) point in
      if Noise.predict net spec ~input v = label then
        failwith "Bnb: witness does not actually misclassify";
      Flip v
  | exception Stop r -> Unknown r

(* Smallest possible L1 norm of a point in the box: per dimension the
   distance of the interval to zero. *)
let box_l1_lower ~lo ~hi =
  let acc = ref 0 in
  Array.iteri
    (fun d l ->
      let h = hi.(d) in
      if l > 0 then acc := !acc + l else if h < 0 then acc := !acc - h)
    lo;
  !acc

let point_l1 point = Array.fold_left (fun acc d -> acc + abs d) 0 point

let min_l1_flip_b ?budget net spec ~input ~label =
  let m = build net spec ~input ~label in
  let boxes = ref 0 in
  (* Best-first over boxes keyed by (L1 lower bound, unique id). *)
  let module Pq = Map.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let queue = ref Pq.empty in
  let counter = ref 0 in
  let push box =
    let lo, hi = box in
    incr counter;
    queue := Pq.add (box_l1_lower ~lo ~hi, !counter) box !queue
  in
  let pop () =
    match Pq.min_binding_opt !queue with
    | None -> None
    | Some (key, box) ->
        queue := Pq.remove key !queue;
        Some box
  in
  push (initial_box m spec);
  let rec search () =
    match pop () with
    | None -> None
    | Some (lo, hi) -> (
        incr boxes;
        poll_budget budget !boxes;
        match classify m ~lo ~hi with
        | `Robust -> search ()
        | `All_flip | `Split _ ->
            if is_point ~lo ~hi then
              if flips_at_point m lo then
                (* Best-first order: the first flipping point popped has
                   the minimal L1 bound, hence minimal norm. *)
                Some (Array.copy lo)
              else search ()
            else begin
              let (lo1, hi1), (lo2, hi2) = split ~lo ~hi in
              push (lo1, hi1);
              push (lo2, hi2);
              search ()
            end)
  in
  match
    entry_check budget;
    search ()
  with
  | None -> Ok None
  | Some point ->
      let v = vector_of_point spec ~n_inputs:(Array.length input) point in
      if Noise.predict net spec ~input v = label then
        failwith "Bnb: witness does not actually misclassify";
      Ok (Some (v, point_l1 point))
  | exception Stop r -> Error r

let min_l1_flip net spec ~input ~label =
  match min_l1_flip_b net spec ~input ~label with
  | Ok r -> r
  | Error _ -> assert false (* no budget, no Stop *)

exception Limit_reached

let box_volume ~lo ~hi =
  Array.fold_left ( * ) 1 (Array.init (Array.length lo) (fun d -> hi.(d) - lo.(d) + 1))

let iter_box ~lo ~hi f =
  let n = Array.length lo in
  let point = Array.copy lo in
  let rec go d =
    if d = n then f point
    else
      for v = lo.(d) to hi.(d) do
        point.(d) <- v;
        go (d + 1)
      done
  in
  go 0

(* Resumable enumeration. The DFS is run on an explicit stack of pending
   boxes so that the exact search state is serializable: [pending] holds
   the boxes still to process (top first — pushing the left child last
   preserves the recursive left-first order), [emitted] the number of
   flips already produced across all runs. A budget stop only happens
   {e between} boxes (the box being classified is either fully processed
   or still on the stack), so resuming from a cursor replays nothing and
   skips nothing — the concatenated output is bit-identical to an
   uninterrupted run. *)
type cursor = {
  pending : (int array * int array) list;
  emitted : int;
}

let fresh_cursor net spec ~input ~label =
  let m = build net spec ~input ~label in
  { pending = [ initial_box m spec ]; emitted = 0 }

let enumerate_flips_from ?(limit = 10_000) ?budget ?(progress_every = 256)
    ?on_progress cursor net spec ~input ~label =
  if progress_every < 1 then invalid_arg "Bnb: progress_every must be >= 1";
  let m = build net spec ~input ~label in
  let n_inputs = Array.length input in
  let pending = ref cursor.pending in
  let emitted = ref cursor.emitted in
  let fresh = ref [] in
  (* newly found this run, newest first *)
  let boxes = ref 0 in
  let add point =
    if !emitted >= limit then raise Limit_reached;
    incr emitted;
    fresh := vector_of_point spec ~n_inputs point :: !fresh
  in
  let cursor_now () = { pending = !pending; emitted = !emitted } in
  let rec loop () =
    match !pending with
    | [] -> `Complete
    | (lo, hi) :: rest ->
        incr boxes;
        (* Poll before the pop: on a Stop the current box stays pending
           and the cursor is exact. *)
        poll_budget budget !boxes;
        pending := rest;
        (match classify m ~lo ~hi with
        | `Robust -> ()
        | `All_flip -> iter_box ~lo ~hi add
        | `Split _ ->
            if is_point ~lo ~hi then begin
              if flips_at_point m lo then add lo
            end
            else begin
              let box1, box2 = split ~lo ~hi in
              pending := box1 :: box2 :: !pending
            end);
        (match on_progress with
        | Some f when !boxes mod progress_every = 0 ->
            f (cursor_now ()) (List.rev !fresh)
        | Some _ | None -> ());
        loop ()
  in
  let status =
    match
      entry_check budget;
      loop ()
    with
    | s -> s
    | exception Limit_reached -> `Truncated
    | exception Stop r -> `Budget r
  in
  (List.rev !fresh, status, cursor_now ())

let enumerate_flips ?limit ?budget net spec ~input ~label =
  let vectors, status, _ =
    enumerate_flips_from ?limit ?budget
      (fresh_cursor net spec ~input ~label)
      net spec ~input ~label
  in
  (vectors, status)

let count_flips ?(limit = max_int) net spec ~input ~label =
  let m = build net spec ~input ~label in
  let count = ref 0 in
  let add n =
    count := !count + n;
    if !count >= limit then raise Limit_reached
  in
  let rec go ~lo ~hi =
    match classify m ~lo ~hi with
    | `Robust -> ()
    | `All_flip -> add (box_volume ~lo ~hi)
    | `Split _ ->
        if is_point ~lo ~hi then begin
          if flips_at_point m lo then add 1
        end
        else begin
          let (lo1, hi1), (lo2, hi2) = split ~lo ~hi in
          go ~lo:lo1 ~hi:hi1;
          go ~lo:lo2 ~hi:hi2
        end
  in
  let lo, hi = initial_box m spec in
  match go ~lo ~hi with
  | () -> (!count, `Complete)
  | exception Limit_reached -> (!count, `Truncated)
