module T = Smtlite.Term

type flip = { input_index : int; vector : Noise.vector; predicted : int }

type sweep_point = {
  delta : int;
  n_misclassified : int;
  flips : flip list;
}

(* Per-delta search progress: every probed range bumps a counter and
   notes the most recent delta, so a [--metrics] snapshot shows how far a
   sweep or binary search has come. *)
let m_probes = Obs.Metrics.counter "tolerance.probes"

let g_last_delta = Obs.Metrics.gauge "tolerance.last_probe_delta"

let note_probe delta =
  Obs.Metrics.incr m_probes;
  Obs.Metrics.set_gauge g_last_delta (float_of_int delta)

(* A budget stop inside a probe unwinds with this local exception; the
   [_b] entry points catch it and the unbudgeted legacy paths cannot
   trigger it. *)
exception Stopped of Resil.Budget.reason

(* The reason to report when a budgeted parallel batch stopped: a reason a
   worker recorded wins, then whatever the budget itself observed, with
   [Cancelled] as the only remaining possibility (an external token was
   pulled between polls). *)
let first_reason budget (failed : Resil.Budget.reason option Atomic.t) =
  match Atomic.get failed with
  | Some r -> r
  | None -> (
      match Option.bind budget Resil.Budget.why with
      | Some r -> r
      | None -> Resil.Budget.Cancelled)

let budget_stop budget (failed : Resil.Budget.reason option Atomic.t) () =
  Atomic.get failed <> None
  || (match budget with Some b -> Resil.Budget.check b <> None | None -> false)

(* Legacy (unbudgeted) entry points can still see a [Stopped] from below:
   the solver converts a genuine or injected [Out_of_memory] into a typed
   Unknown even when no budget was supplied. Surface it as a [Failure]
   (the CLI's clean-error path) rather than leaking the local exception. *)
let stopped_to_failure f =
  try f ()
  with Stopped r ->
    failwith
      (Printf.sprintf "Tolerance: analysis stopped (%s); rerun with a budget"
         (Resil.Budget.reason_to_string r))

let misclassified_at ?jobs backend net ~bias_noise ~delta ~inputs =
  let spec = Noise.symmetric ~delta ~bias_noise in
  Obs.Span.with_ (Printf.sprintf "tolerance.misclassified_at ±%d%%" delta) (fun () ->
      note_probe delta;
      Util.Parallel.filter_mapi ?jobs
        (fun input_index (input, label) ->
          match Backend.exists_flip backend net spec ~input ~label with
          | Backend.Flip vector ->
              let predicted = Noise.predict net spec ~input vector in
              Some { input_index; vector; predicted }
          | Backend.Robust | Backend.Unknown _ -> None)
        inputs)

let misclassified_at_b ?jobs ?budget backend net ~bias_noise ~delta ~inputs =
  let spec = Noise.symmetric ~delta ~bias_noise in
  let failed : Resil.Budget.reason option Atomic.t = Atomic.make None in
  let note r = ignore (Atomic.compare_and_set failed None (Some r)) in
  Obs.Span.with_ (Printf.sprintf "tolerance.misclassified_at ±%d%%" delta) (fun () ->
      note_probe delta;
      match
        Util.Parallel.filter_mapi_until ?jobs ~stop:(budget_stop budget failed)
          (fun input_index (input, label) ->
            Resil.Faultpoint.guard "worker.raise"
              (Failure "injected fault: tolerance worker raised");
            match Backend.exists_flip ?budget backend net spec ~input ~label with
            | Backend.Flip vector ->
                let predicted = Noise.predict net spec ~input vector in
                Some { input_index; vector; predicted }
            | Backend.Robust | Backend.Unknown Resil.Budget.Incomplete -> None
            | Backend.Unknown r ->
                note r;
                None)
          inputs
      with
      | Error () -> Error (first_reason budget failed)
      | Ok flips -> (
          match Atomic.get failed with Some r -> Error r | None -> Ok flips))

let sweep ?jobs backend net ~bias_noise ~deltas ~inputs =
  Obs.Span.with_ "tolerance.sweep" (fun () ->
      List.map
        (fun delta ->
          let flips = misclassified_at ?jobs backend net ~bias_noise ~delta ~inputs in
          { delta; n_misclassified = List.length flips; flips })
        deltas)

let sweep_b ?jobs ?budget backend net ~bias_noise ~deltas ~inputs =
  Obs.Span.with_ "tolerance.sweep" (fun () ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | delta :: rest -> (
            match
              misclassified_at_b ?jobs ?budget backend net ~bias_noise ~delta
                ~inputs
            with
            | Error r -> Error r
            | Ok flips ->
                go
                  ({ delta; n_misclassified = List.length flips; flips } :: acc)
                  rest)
      in
      go [] deltas)

let flips_at ?budget backend net ~bias_noise ~delta ~input ~label =
  let spec = Noise.symmetric ~delta ~bias_noise in
  note_probe delta;
  match Backend.exists_flip ?budget backend net spec ~input ~label with
  | Backend.Flip _ -> true
  | Backend.Robust -> false
  | Backend.Unknown Resil.Budget.Incomplete ->
      failwith "Tolerance: backend cannot decide; use a complete backend"
  | Backend.Unknown r -> raise (Stopped r)

(* Shared monotone binary search: [flips lo = false], [flips hi = true];
   returns the smallest delta that flips. *)
let rec bisect flips lo hi =
  if hi - lo <= 1 then hi
  else
    let mid = (lo + hi) / 2 in
    if flips mid then bisect flips lo mid else bisect flips mid hi

(* Incremental bit-blasted search over one warm solver session. The
   session comes from the per-domain {!Warm} pool keyed by
   (net, input, label, bias_noise, max_delta): the network is
   Tseitin-encoded once at the widest range [±max_delta], each probe
   ±delta is the memoised assumption "every noise variable lies in
   [-delta, +delta]", and — because the pool outlives this call — a later
   search or sweep probe about the same input skips the encoding
   entirely. With [prefilter], the interval pass runs first per probe and
   the solver is only consulted when it cannot prove robustness. *)
let smt_min_flip_delta ?budget ~prefilter net ~bias_noise ~max_delta ~input
    ~label =
  let solver_flips delta =
    match
      Obs.Span.with_ (Printf.sprintf "tolerance.smt_probe ±%d%%" delta) (fun () ->
          Warm.probe_delta ?budget net ~bias_noise ~cover:max_delta ~delta
            ~input ~label)
    with
    | Ok flips -> flips
    | Error r ->
        (* Only a budget can interrupt this search (no conflict cap is
           passed), so an unknown is always a typed stop. *)
        raise (Stopped r)
  in
  let flips delta =
    note_probe delta;
    if
      prefilter
      && Backend.exists_flip Backend.Interval net
           (Noise.symmetric ~delta ~bias_noise) ~input ~label
         = Backend.Robust
    then false
    else solver_flips delta
  in
  if not (flips max_delta) then None
  else if flips 0 then Some 0
  else Some (bisect flips 0 max_delta)

type certified_bracket = {
  max_delta : int;
  min_flip_delta : int option;
  flip_cert : (int * Noise.vector * Cert.Verdict.t) option;
  robust_cert : (int * Cert.Verdict.t) option;
}

(* Certified variant of [smt_min_flip_delta]: same warm session and
   assumption literals, but with a DRUP trace attached and a certificate
   snapshotted at every probe. No interval prefilter — a prefilter answer
   carries no proof, and the bracket must be certified at both ends. *)
let certified_min_flip_impl ?budget net ~bias_noise ~max_delta ~input ~label =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  let spec = Noise.symmetric ~delta:max_delta ~bias_noise in
  let enc = Encode.encode net ~input spec in
  let trace = Cert.Proof.create () in
  let session =
    Smtlite.Solve.open_session ~trace (Encode.misclassified enc ~true_label:label)
  in
  let vars = Encode.noise_vars enc in
  let range_assumptions = Hashtbl.create 8 in
  let assumption_for delta =
    match Hashtbl.find_opt range_assumptions delta with
    | Some a -> a
    | None ->
        let bounded v =
          let d = T.of_var v in
          T.and_ [ T.ge d (T.const (-delta)); T.le d (T.const delta) ]
        in
        let a = Smtlite.Solve.assume session (T.and_ (List.map bounded vars)) in
        Hashtbl.add range_assumptions delta a;
        a
  in
  let probe delta =
    note_probe delta;
    let assumptions = if delta = max_delta then [] else [ assumption_for delta ] in
    let outcome, cert =
      Obs.Span.with_ (Printf.sprintf "tolerance.certified_probe ±%d%%" delta)
        (fun () -> Smtlite.Solve.solve_certified ~assumptions ?budget session)
    in
    match outcome with
    | Smtlite.Solve.Unknown r -> raise (Stopped r)
    | (Smtlite.Solve.Unsat | Smtlite.Solve.Sat _) as outcome -> (
        let cert =
          match cert with
          | Some c -> c
          | None -> failwith "Tolerance: certified probe produced no certificate"
        in
        match outcome with
        | Smtlite.Solve.Unknown _ -> assert false
        | Smtlite.Solve.Unsat -> `Robust cert
            | Smtlite.Solve.Sat model ->
            let v = Encode.vector_of_model enc model in
            let probe_spec = Noise.symmetric ~delta ~bias_noise in
            if not (Noise.in_range probe_spec v) then
              failwith "Tolerance: incremental witness outside the probe range";
            if Noise.predict net probe_spec ~input v = label then
              failwith "Tolerance: incremental witness does not misclassify";
            `Flip (v, cert))
  in
  match probe max_delta with
  | `Robust cert ->
      {
        max_delta;
        min_flip_delta = None;
        flip_cert = None;
        robust_cert = Some (max_delta, cert);
      }
  | `Flip (v, cert) -> (
      if max_delta = 0 then
        {
          max_delta;
          min_flip_delta = Some 0;
          flip_cert = Some (0, v, cert);
          robust_cert = None;
        }
      else
        match probe 0 with
        | `Flip (v0, c0) ->
            {
              max_delta;
              min_flip_delta = Some 0;
              flip_cert = Some (0, v0, c0);
              robust_cert = None;
            }
        | `Robust c0 ->
            (* Invariant: lo provably robust, hi provably flipping. *)
            let rec go (lo, lo_c) (hi, hi_v, hi_c) =
              if hi - lo <= 1 then
                {
                  max_delta;
                  min_flip_delta = Some hi;
                  flip_cert = Some (hi, hi_v, hi_c);
                  robust_cert = Some (lo, lo_c);
                }
              else
                let mid = (lo + hi) / 2 in
                match probe mid with
                | `Flip (v, c) -> go (lo, lo_c) (mid, v, c)
                | `Robust c -> go (mid, c) (hi, hi_v, hi_c)
            in
            go (0, c0) (max_delta, v, cert))

let certified_min_flip_delta net ~bias_noise ~max_delta ~input ~label =
  stopped_to_failure (fun () ->
      certified_min_flip_impl net ~bias_noise ~max_delta ~input ~label)

let certified_min_flip_delta_b ?budget net ~bias_noise ~max_delta ~input ~label =
  match certified_min_flip_impl ?budget net ~bias_noise ~max_delta ~input ~label with
  | bracket -> Ok bracket
  | exception Stopped r -> Error r

let check_certified_bracket net ~bias_noise bracket ~input ~label =
  let check_refutation (delta, cert) =
    ignore delta;
    match cert with
    | Cert.Verdict.Model _ ->
        Error "robust end of the bracket carries a model certificate"
    | Cert.Verdict.Refutation _ -> (
        match Cert.Verdict.check cert with
        | Ok () -> Ok ()
        | Error e -> Error ("robust-end certificate rejected: " ^ e))
  in
  let check_flip (delta, v, cert) =
    let spec = Noise.symmetric ~delta ~bias_noise in
    if Array.length v.Noise.inputs <> Array.length input then
      Error "flip witness arity does not match the input"
    else if not (Noise.in_range spec v) then
      Error "flip witness outside its probe range"
    else if Noise.predict net spec ~input v = label then
      Error "flip witness does not misclassify under Noise.predict"
    else
      match cert with
      | Cert.Verdict.Refutation _ ->
          Error "flip end of the bracket carries a refutation certificate"
      | Cert.Verdict.Model _ -> (
          match Cert.Verdict.check cert with
          | Ok () -> Ok ()
          | Error e -> Error ("flip-end certificate rejected: " ^ e))
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  match (bracket.min_flip_delta, bracket.flip_cert, bracket.robust_cert) with
  | None, None, Some ((d, _) as rc) ->
      if d <> bracket.max_delta then
        Error "robust certificate does not cover the full range"
      else check_refutation rc
  | Some 0, Some ((0, _, _) as fc), None -> check_flip fc
  | Some m, Some ((fd, _, _) as fc), Some ((rd, _) as rc) ->
      if fd <> m then Error "flip certificate is not at the minimal delta"
      else if rd <> m - 1 then
        Error "robust certificate is not adjacent to the minimal delta"
      else
        let* () = check_flip fc in
        check_refutation rc
  | _ -> Error "bracket shape is inconsistent"

let input_min_flip_impl ?budget backend net ~bias_noise ~max_delta ~input
    ~label =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  match backend with
  | Backend.Smt ->
      smt_min_flip_delta ?budget ~prefilter:false net ~bias_noise ~max_delta
        ~input ~label
  | Backend.Cascade Backend.Smt ->
      smt_min_flip_delta ?budget ~prefilter:true net ~bias_noise ~max_delta
        ~input ~label
  | _ ->
      let flips delta =
        flips_at ?budget backend net ~bias_noise ~delta ~input ~label
      in
      if not (flips max_delta) then None
      else if flips 0 then
        (* Misclassified even without noise. *)
        Some 0
      else
        (* Monotone in delta: binary search for the smallest flipping
           range (delta 0 never flips a correctly classified input). *)
        Some (bisect flips 0 max_delta)

let input_min_flip_delta backend net ~bias_noise ~max_delta ~input ~label =
  stopped_to_failure (fun () ->
      input_min_flip_impl backend net ~bias_noise ~max_delta ~input ~label)

let input_min_flip_delta_b ?budget backend net ~bias_noise ~max_delta ~input
    ~label =
  match input_min_flip_impl ?budget backend net ~bias_noise ~max_delta ~input ~label with
  | v -> Ok v
  | exception Stopped r -> Error r

let certified_accuracy ?jobs backend net ~bias_noise ~delta ~inputs =
  if Array.length inputs = 0 then invalid_arg "Tolerance.certified_accuracy: empty";
  let spec = Noise.symmetric ~delta ~bias_noise in
  let certified =
    Util.Parallel.map ?jobs
      (fun (input, label) ->
        Nn.Qnet.predict net input = label
        &&
        match Backend.exists_flip backend net spec ~input ~label with
        | Backend.Robust -> true
        | Backend.Flip _ | Backend.Unknown _ -> false)
      inputs
    |> Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0
  in
  float_of_int certified /. float_of_int (Array.length inputs)

let paper_iterative_tolerance ?jobs backend net ~bias_noise ~max_delta ~inputs =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  stopped_to_failure @@ fun () ->
  let any_flip delta =
    Util.Parallel.exists ?jobs
      (fun (input, label) -> flips_at backend net ~bias_noise ~delta ~input ~label)
      inputs
  in
  let rec reduce delta =
    if delta = 0 then 0
    else if any_flip delta then reduce (delta - 1)
    else delta
  in
  reduce max_delta

let network_tolerance ?jobs backend net ~bias_noise ~max_delta ~inputs =
  stopped_to_failure @@ fun () ->
  Obs.Span.with_ "tolerance.network_tolerance" (fun () ->
      Util.Parallel.map ?jobs
        (fun (input, label) ->
          input_min_flip_delta backend net ~bias_noise ~max_delta ~input ~label)
        inputs
      |> Array.fold_left
           (fun acc -> function None -> acc | Some d -> min acc (d - 1))
           max_delta)

let network_tolerance_b ?jobs ?budget backend net ~bias_noise ~max_delta
    ~inputs =
  Obs.Span.with_ "tolerance.network_tolerance" (fun () ->
      let failed : Resil.Budget.reason option Atomic.t = Atomic.make None in
      let note r = ignore (Atomic.compare_and_set failed None (Some r)) in
      match
        Util.Parallel.map_until ?jobs ~stop:(budget_stop budget failed)
          (fun _ (input, label) ->
            Resil.Faultpoint.guard "worker.raise"
              (Failure "injected fault: tolerance worker raised");
            match
              input_min_flip_impl ?budget backend net ~bias_noise ~max_delta
                ~input ~label
            with
            | v -> Some v
            | exception Stopped r ->
                note r;
                None)
          inputs
      with
      | Error () -> Error (first_reason budget failed)
      | Ok per_input -> (
          match Atomic.get failed with
          | Some r -> Error r
          | None ->
              Ok
                (Array.fold_left
                   (fun acc -> function
                     | Some (Some d) -> min acc (d - 1)
                     | Some None | None -> acc)
                   max_delta per_input)))

(* ------------------------------------------------------------------ *)
(* Checkpointed network tolerance (format fannet-ckpt/1, kind          *)
(* "tolerance"): per-input minimum-flip deltas already decided, plus    *)
(* the bisection bracket of the input in flight, persisted after every  *)
(* probe so a killed run repeats at most two probes on resume. The      *)
(* search is sequential (checkpointing a parallel bisection would need  *)
(* a merge protocol for no benefit — each input is a handful of         *)
(* probes) and probes each delta afresh, so any backend works.          *)
(* ------------------------------------------------------------------ *)

let tol_ckpt_key backend net ~bias_noise ~max_delta ~inputs =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (backend, net, bias_noise, max_delta, inputs) []))

type bisect_state = Start | Bracket of int * int

let tol_ckpt_to_json ~key results cur =
  Util.Json.Obj
    [
      ("key", Util.Json.String key);
      ( "results",
        Util.Json.List
          (List.map
             (function None -> Util.Json.Null | Some d -> Util.Json.Int d)
             results) );
      ( "cur",
        match cur with
        | Start -> Util.Json.Null
        | Bracket (lo, hi) ->
            Util.Json.Obj [ ("lo", Util.Json.Int lo); ("hi", Util.Json.Int hi) ]
      );
    ]

let tol_ckpt_of_json json =
  let result_of = function
    | Util.Json.Null -> Some None
    | Util.Json.Int d -> Some (Some d)
    | _ -> None
  in
  let cur_of = function
    | Util.Json.Null -> Some Start
    | Util.Json.Obj _ as j -> (
        match (Util.Json.member "lo" j, Util.Json.member "hi" j) with
        | Some (Util.Json.Int lo), Some (Util.Json.Int hi) when lo <= hi ->
            Some (Bracket (lo, hi))
        | _ -> None)
    | _ -> None
  in
  match
    ( Util.Json.member "key" json,
      Util.Json.member "results" json,
      Option.bind (Util.Json.member "cur" json) cur_of )
  with
  | Some (Util.Json.String key), Some (Util.Json.List rs), Some cur ->
      let parsed = List.map result_of rs in
      if List.for_all Option.is_some parsed then
        Some (key, List.map Option.get parsed, cur)
      else None
  | _ -> None

let load_tol_ckpt ~key ~path ~n_inputs =
  if not (Sys.file_exists path) then `Fresh
  else
    match Resil.Ckpt.load ~kind:"tolerance" ~path with
    | Error msg -> `Damaged msg
    | Ok json -> (
        match tol_ckpt_of_json json with
        | None -> `Damaged (path ^ ": malformed tolerance checkpoint payload")
        | Some (k, results, cur) ->
            if k <> key then
              `Mismatch
                (path
               ^ ": checkpoint belongs to a different tolerance run \
                  (backend/network/inputs/range changed)")
            else if List.length results > n_inputs then
              `Damaged (path ^ ": tolerance checkpoint has too many results")
            else `Resume (results, cur))

let network_tolerance_ckpt ?budget ~checkpoint backend net ~bias_noise
    ~max_delta ~inputs =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  let key = tol_ckpt_key backend net ~bias_noise ~max_delta ~inputs in
  let results, cur0 =
    match load_tol_ckpt ~key ~path:checkpoint ~n_inputs:(Array.length inputs) with
    | `Fresh -> ([], Start)
    | `Resume (results, cur) -> (results, cur)
    | `Damaged msg ->
        Printf.eprintf
          "warning: %s — ignoring the checkpoint and starting over\n%!" msg;
        ([], Start)
    | `Mismatch msg -> invalid_arg msg
  in
  let done_rev = ref (List.rev results) in
  let cur = ref cur0 in
  let i = ref (List.length results) in
  let save () =
    Resil.Ckpt.save ~kind:"tolerance" ~path:checkpoint
      (tol_ckpt_to_json ~key (List.rev !done_rev) !cur)
  in
  let exception Out of Resil.Budget.reason in
  let probe ~input ~label delta =
    (match Option.bind budget Resil.Budget.check with
    | Some r ->
        save ();
        raise (Out r)
    | None -> ());
    match flips_at ?budget backend net ~bias_noise ~delta ~input ~label with
    | b -> b
    | exception Stopped r ->
        save ();
        raise (Out r)
  in
  let push r =
    done_rev := r :: !done_rev;
    cur := Start;
    incr i;
    save ()
  in
  match
    Obs.Span.with_ "tolerance.network_tolerance" (fun () ->
        while !i < Array.length inputs do
          let input, label = inputs.(!i) in
          match !cur with
          | Start ->
              if not (probe ~input ~label max_delta) then push None
              else if probe ~input ~label 0 then push (Some 0)
              else begin
                cur := Bracket (0, max_delta);
                save ()
              end
          | Bracket (lo, hi) ->
              if hi - lo <= 1 then push (Some hi)
              else begin
                let mid = (lo + hi) / 2 in
                cur :=
                  (if probe ~input ~label mid then Bracket (lo, mid)
                   else Bracket (mid, hi));
                save ()
              end
        done)
  with
  | () ->
      if Sys.file_exists checkpoint then Sys.remove checkpoint;
      Ok
        (List.fold_left
           (fun acc -> function None -> acc | Some d -> min acc (d - 1))
           max_delta (List.rev !done_rev))
  | exception Out r -> Error r
