module T = Smtlite.Term

type flip = { input_index : int; vector : Noise.vector; predicted : int }

type sweep_point = {
  delta : int;
  n_misclassified : int;
  flips : flip list;
}

(* Per-delta search progress: every probed range bumps a counter and
   notes the most recent delta, so a [--metrics] snapshot shows how far a
   sweep or binary search has come. *)
let m_probes = Obs.Metrics.counter "tolerance.probes"

let g_last_delta = Obs.Metrics.gauge "tolerance.last_probe_delta"

let note_probe delta =
  Obs.Metrics.incr m_probes;
  Obs.Metrics.set_gauge g_last_delta (float_of_int delta)

let misclassified_at ?jobs backend net ~bias_noise ~delta ~inputs =
  let spec = Noise.symmetric ~delta ~bias_noise in
  Obs.Span.with_ (Printf.sprintf "tolerance.misclassified_at ±%d%%" delta) (fun () ->
      note_probe delta;
      Util.Parallel.filter_mapi ?jobs
        (fun input_index (input, label) ->
          match Backend.exists_flip backend net spec ~input ~label with
          | Backend.Flip vector ->
              let predicted = Noise.predict net spec ~input vector in
              Some { input_index; vector; predicted }
          | Backend.Robust | Backend.Unknown -> None)
        inputs)

let sweep ?jobs backend net ~bias_noise ~deltas ~inputs =
  Obs.Span.with_ "tolerance.sweep" (fun () ->
      List.map
        (fun delta ->
          let flips = misclassified_at ?jobs backend net ~bias_noise ~delta ~inputs in
          { delta; n_misclassified = List.length flips; flips })
        deltas)

let flips_at backend net ~bias_noise ~delta ~input ~label =
  let spec = Noise.symmetric ~delta ~bias_noise in
  note_probe delta;
  match Backend.exists_flip backend net spec ~input ~label with
  | Backend.Flip _ -> true
  | Backend.Robust -> false
  | Backend.Unknown ->
      failwith "Tolerance: backend cannot decide; use a complete backend"

(* Shared monotone binary search: [flips lo = false], [flips hi = true];
   returns the smallest delta that flips. *)
let rec bisect flips lo hi =
  if hi - lo <= 1 then hi
  else
    let mid = (lo + hi) / 2 in
    if flips mid then bisect flips lo mid else bisect flips mid hi

(* Incremental bit-blasted search: one warm solver session for the whole
   binary search. The network is Tseitin-encoded once at the widest range
   [±max_delta]; each probe ±delta is the assumption "every noise variable
   lies in [-delta, +delta]", compiled to one assumable literal. The CDCL
   solver keeps its learnt clauses and phase saving across probes, and no
   probe pays a fresh encoding. With [prefilter], the interval pass runs
   first per probe and the solver is only consulted when it cannot prove
   robustness. *)
let smt_min_flip_delta ~prefilter net ~bias_noise ~max_delta ~input ~label =
  let spec = Noise.symmetric ~delta:max_delta ~bias_noise in
  let enc = Encode.encode net ~input spec in
  let session =
    Smtlite.Solve.open_session (Encode.misclassified enc ~true_label:label)
  in
  let vars = Encode.noise_vars enc in
  let range_assumptions = Hashtbl.create 8 in
  let assumption_for delta =
    match Hashtbl.find_opt range_assumptions delta with
    | Some a -> a
    | None ->
        let bounded v =
          let d = T.of_var v in
          T.and_ [ T.ge d (T.const (-delta)); T.le d (T.const delta) ]
        in
        let a = Smtlite.Solve.assume session (T.and_ (List.map bounded vars)) in
        Hashtbl.add range_assumptions delta a;
        a
  in
  let solver_flips delta =
    let assumptions = if delta = max_delta then [] else [ assumption_for delta ] in
    match
      Obs.Span.with_ (Printf.sprintf "tolerance.smt_probe ±%d%%" delta) (fun () ->
          Smtlite.Solve.solve ~assumptions session)
    with
    | Smtlite.Solve.Unsat -> false
    | Smtlite.Solve.Unknown ->
        failwith "Tolerance: incremental smt search returned unknown"
    | Smtlite.Solve.Sat model ->
        (* Same defence as Backend.validate_flip, against the probe range. *)
        let v = Encode.vector_of_model enc model in
        let probe_spec = Noise.symmetric ~delta ~bias_noise in
        if not (Noise.in_range probe_spec v) then
          failwith "Tolerance: incremental witness outside the probe range";
        if Noise.predict net probe_spec ~input v = label then
          failwith "Tolerance: incremental witness does not misclassify";
        true
  in
  let flips delta =
    note_probe delta;
    if
      prefilter
      && Backend.exists_flip Backend.Interval net
           (Noise.symmetric ~delta ~bias_noise) ~input ~label
         = Backend.Robust
    then false
    else solver_flips delta
  in
  if not (flips max_delta) then None
  else if flips 0 then Some 0
  else Some (bisect flips 0 max_delta)

type certified_bracket = {
  max_delta : int;
  min_flip_delta : int option;
  flip_cert : (int * Noise.vector * Cert.Verdict.t) option;
  robust_cert : (int * Cert.Verdict.t) option;
}

(* Certified variant of [smt_min_flip_delta]: same warm session and
   assumption literals, but with a DRUP trace attached and a certificate
   snapshotted at every probe. No interval prefilter — a prefilter answer
   carries no proof, and the bracket must be certified at both ends. *)
let certified_min_flip_delta net ~bias_noise ~max_delta ~input ~label =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  let spec = Noise.symmetric ~delta:max_delta ~bias_noise in
  let enc = Encode.encode net ~input spec in
  let trace = Cert.Proof.create () in
  let session =
    Smtlite.Solve.open_session ~trace (Encode.misclassified enc ~true_label:label)
  in
  let vars = Encode.noise_vars enc in
  let range_assumptions = Hashtbl.create 8 in
  let assumption_for delta =
    match Hashtbl.find_opt range_assumptions delta with
    | Some a -> a
    | None ->
        let bounded v =
          let d = T.of_var v in
          T.and_ [ T.ge d (T.const (-delta)); T.le d (T.const delta) ]
        in
        let a = Smtlite.Solve.assume session (T.and_ (List.map bounded vars)) in
        Hashtbl.add range_assumptions delta a;
        a
  in
  let probe delta =
    note_probe delta;
    let assumptions = if delta = max_delta then [] else [ assumption_for delta ] in
    let outcome, cert =
      Obs.Span.with_ (Printf.sprintf "tolerance.certified_probe ±%d%%" delta)
        (fun () -> Smtlite.Solve.solve_certified ~assumptions session)
    in
    let cert =
      match cert with
      | Some c -> c
      | None -> failwith "Tolerance: certified probe produced no certificate"
    in
    match outcome with
    | Smtlite.Solve.Unsat -> `Robust cert
    | Smtlite.Solve.Unknown ->
        failwith "Tolerance: incremental smt search returned unknown"
    | Smtlite.Solve.Sat model ->
        let v = Encode.vector_of_model enc model in
        let probe_spec = Noise.symmetric ~delta ~bias_noise in
        if not (Noise.in_range probe_spec v) then
          failwith "Tolerance: incremental witness outside the probe range";
        if Noise.predict net probe_spec ~input v = label then
          failwith "Tolerance: incremental witness does not misclassify";
        `Flip (v, cert)
  in
  match probe max_delta with
  | `Robust cert ->
      {
        max_delta;
        min_flip_delta = None;
        flip_cert = None;
        robust_cert = Some (max_delta, cert);
      }
  | `Flip (v, cert) -> (
      if max_delta = 0 then
        {
          max_delta;
          min_flip_delta = Some 0;
          flip_cert = Some (0, v, cert);
          robust_cert = None;
        }
      else
        match probe 0 with
        | `Flip (v0, c0) ->
            {
              max_delta;
              min_flip_delta = Some 0;
              flip_cert = Some (0, v0, c0);
              robust_cert = None;
            }
        | `Robust c0 ->
            (* Invariant: lo provably robust, hi provably flipping. *)
            let rec go (lo, lo_c) (hi, hi_v, hi_c) =
              if hi - lo <= 1 then
                {
                  max_delta;
                  min_flip_delta = Some hi;
                  flip_cert = Some (hi, hi_v, hi_c);
                  robust_cert = Some (lo, lo_c);
                }
              else
                let mid = (lo + hi) / 2 in
                match probe mid with
                | `Flip (v, c) -> go (lo, lo_c) (mid, v, c)
                | `Robust c -> go (mid, c) (hi, hi_v, hi_c)
            in
            go (0, c0) (max_delta, v, cert))

let check_certified_bracket net ~bias_noise bracket ~input ~label =
  let check_refutation (delta, cert) =
    ignore delta;
    match cert with
    | Cert.Verdict.Model _ ->
        Error "robust end of the bracket carries a model certificate"
    | Cert.Verdict.Refutation _ -> (
        match Cert.Verdict.check cert with
        | Ok () -> Ok ()
        | Error e -> Error ("robust-end certificate rejected: " ^ e))
  in
  let check_flip (delta, v, cert) =
    let spec = Noise.symmetric ~delta ~bias_noise in
    if Array.length v.Noise.inputs <> Array.length input then
      Error "flip witness arity does not match the input"
    else if not (Noise.in_range spec v) then
      Error "flip witness outside its probe range"
    else if Noise.predict net spec ~input v = label then
      Error "flip witness does not misclassify under Noise.predict"
    else
      match cert with
      | Cert.Verdict.Refutation _ ->
          Error "flip end of the bracket carries a refutation certificate"
      | Cert.Verdict.Model _ -> (
          match Cert.Verdict.check cert with
          | Ok () -> Ok ()
          | Error e -> Error ("flip-end certificate rejected: " ^ e))
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  match (bracket.min_flip_delta, bracket.flip_cert, bracket.robust_cert) with
  | None, None, Some ((d, _) as rc) ->
      if d <> bracket.max_delta then
        Error "robust certificate does not cover the full range"
      else check_refutation rc
  | Some 0, Some ((0, _, _) as fc), None -> check_flip fc
  | Some m, Some ((fd, _, _) as fc), Some ((rd, _) as rc) ->
      if fd <> m then Error "flip certificate is not at the minimal delta"
      else if rd <> m - 1 then
        Error "robust certificate is not adjacent to the minimal delta"
      else
        let* () = check_flip fc in
        check_refutation rc
  | _ -> Error "bracket shape is inconsistent"

let input_min_flip_delta backend net ~bias_noise ~max_delta ~input ~label =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  match backend with
  | Backend.Smt ->
      smt_min_flip_delta ~prefilter:false net ~bias_noise ~max_delta ~input ~label
  | Backend.Cascade Backend.Smt ->
      smt_min_flip_delta ~prefilter:true net ~bias_noise ~max_delta ~input ~label
  | _ ->
      let flips delta = flips_at backend net ~bias_noise ~delta ~input ~label in
      if not (flips max_delta) then None
      else if flips 0 then
        (* Misclassified even without noise. *)
        Some 0
      else
        (* Monotone in delta: binary search for the smallest flipping
           range (delta 0 never flips a correctly classified input). *)
        Some (bisect flips 0 max_delta)

let certified_accuracy ?jobs backend net ~bias_noise ~delta ~inputs =
  if Array.length inputs = 0 then invalid_arg "Tolerance.certified_accuracy: empty";
  let spec = Noise.symmetric ~delta ~bias_noise in
  let certified =
    Util.Parallel.map ?jobs
      (fun (input, label) ->
        Nn.Qnet.predict net input = label
        &&
        match Backend.exists_flip backend net spec ~input ~label with
        | Backend.Robust -> true
        | Backend.Flip _ | Backend.Unknown -> false)
      inputs
    |> Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0
  in
  float_of_int certified /. float_of_int (Array.length inputs)

let paper_iterative_tolerance ?jobs backend net ~bias_noise ~max_delta ~inputs =
  if max_delta < 0 then invalid_arg "Tolerance: negative max_delta";
  let any_flip delta =
    Util.Parallel.exists ?jobs
      (fun (input, label) -> flips_at backend net ~bias_noise ~delta ~input ~label)
      inputs
  in
  let rec reduce delta =
    if delta = 0 then 0
    else if any_flip delta then reduce (delta - 1)
    else delta
  in
  reduce max_delta

let network_tolerance ?jobs backend net ~bias_noise ~max_delta ~inputs =
  Obs.Span.with_ "tolerance.network_tolerance" (fun () ->
      Util.Parallel.map ?jobs
        (fun (input, label) ->
          input_min_flip_delta backend net ~bias_noise ~max_delta ~input ~label)
        inputs
      |> Array.fold_left
           (fun acc -> function None -> acc | Some d -> min acc (d - 1))
           max_delta)
