type config = {
  dataset_params : Dataset.Golub.params;
  dataset_seed : int;
  init_seed : int;
  train_config : Nn.Train.config;
  k_features : int;
  mi_bins : int;
  hidden : int;
  weight_bits : int;
}

let default_config =
  {
    dataset_params = Dataset.Golub.default_params;
    dataset_seed = 2028;
    init_seed = 7;
    train_config = Nn.Train.default_config;
    k_features = 5;
    mi_bins = 3;
    hidden = 20;
    weight_bits = 12;
  }

let fast_config =
  {
    default_config with
    dataset_params = Dataset.Golub.tiny_params;
    dataset_seed = 11;
  }

type t = {
  config : config;
  dataset : Dataset.Golub.t;
  selected_genes : int array;
  network : Nn.Network.t;
  qnet : Nn.Qnet.t;
  history : Nn.Train.history;
  train_inputs : Validate.labelled array;
  test_inputs : Validate.labelled array;
  train_accuracy : float;
  test_accuracy : float;
  p1 : Validate.result;
}

let quantized_accuracy qnet inputs =
  let correct =
    Util.Parallel.map (fun (x, l) -> Nn.Qnet.predict qnet x = l) inputs
    |> Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0
  in
  float_of_int correct /. float_of_int (Array.length inputs)

let run ?(config = default_config) () =
  Obs.Span.with_ "pipeline.run" @@ fun () ->
  let dataset =
    Obs.Span.with_ "pipeline.dataset" (fun () ->
        Dataset.Golub.generate ~params:config.dataset_params ~seed:config.dataset_seed ())
  in
  let selected_genes =
    Obs.Span.with_ "pipeline.mrmr" (fun () ->
        Dataset.Mrmr.select dataset.Dataset.Golub.train ~k:config.k_features
          ~bins:config.mi_bins)
  in
  let train_inputs = Validate.of_samples dataset.Dataset.Golub.train ~genes:selected_genes in
  let test_inputs = Validate.of_samples dataset.Dataset.Golub.test ~genes:selected_genes in
  (* Standardise on the training set, train, then fold the transform back. *)
  let norm = Nn.Normalize.fit (Array.map fst train_inputs) in
  let train_vecs = Array.map (fun (x, _) -> Nn.Normalize.apply norm x) train_inputs in
  let labels = Array.map snd train_inputs in
  let rng = Util.Rng.create config.init_seed in
  let raw_network =
    Nn.Network.create ~rng
      ~spec:[ config.k_features; config.hidden; 2 ]
      ~hidden_activation:Nn.Activation.Relu
  in
  let history =
    Obs.Span.with_ "pipeline.train" (fun () ->
        Nn.Train.train ~config:config.train_config raw_network ~inputs:train_vecs
          ~labels)
  in
  let shift, scale = Nn.Normalize.shift_scale norm in
  let network = Nn.Network.fold_input_affine raw_network ~shift ~scale in
  let qnet =
    Obs.Span.with_ "pipeline.quantize" (fun () ->
        Nn.Quantize.quantize network ~weight_bits:config.weight_bits)
  in
  let p1 =
    Obs.Span.with_ "pipeline.validate" (fun () -> Validate.p1 qnet ~inputs:test_inputs)
  in
  {
    config;
    dataset;
    selected_genes;
    network;
    qnet;
    history;
    train_inputs;
    test_inputs;
    train_accuracy = quantized_accuracy qnet train_inputs;
    test_accuracy = quantized_accuracy qnet test_inputs;
    p1;
  }

let training_labels t = Array.map snd t.train_inputs

let analysis_inputs t = t.p1.Validate.correct

let analysis_backend = Backend.default_cascade
