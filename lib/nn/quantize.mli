(** Fixed-point quantization of a trained float network to a {!Qnet.t}.

    Each layer gets a weight scale [s_l] chosen so the largest weight
    magnitude uses [weight_bits] bits. Values flowing into layer [l] carry
    the accumulated scale [S_l] (product of earlier weight scales, input
    scale 1), so layer biases are quantized at scale [s_l * S_l]. ReLU and
    argmax commute with positive scaling, hence the quantized network
    classifies like the float one up to rounding error; the P1 validation
    pass (paper Fig. 2) checks this on the test set. *)

val quantize : Network.t -> weight_bits:int -> Qnet.t
(** Requires [2 <= weight_bits <= 20] (larger scales risk overflow in the
    downstream noise-scaled analysis) and a network whose hidden layers are
    ReLU and output layer Identity. Raises [Invalid_argument] otherwise. *)

val layer_scales : Network.t -> weight_bits:int -> float array
(** The per-layer weight scales [s_l] that {!quantize} uses. *)

val binarize : Network.t -> weight_bits:int -> Qnet.t
(** Binarize a network trained with [Sign] hidden activations (Identity
    output): hidden weights collapse to ±1 (the sign of the float weight)
    and hidden biases are re-expressed on that scale via the layer's mean
    weight magnitude — sound because sign is invariant under positive
    scaling of its pre-activation. The output layer, whose inputs are the
    ±1 sign activations, is fixed-point quantized at [weight_bits] like
    {!quantize}. Raises [Invalid_argument] on other activation patterns. *)

val agreement :
  Network.t -> Qnet.t -> inputs:int array array -> float
(** Fraction of inputs on which the float and quantized networks predict
    the same class. *)
