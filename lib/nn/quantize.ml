let check_activations (net : Network.t) =
  let n = Array.length net.Network.layers in
  Array.iteri
    (fun i (l : Layer.t) ->
      let expected = if i = n - 1 then Activation.Identity else Activation.Relu in
      if not (Activation.equal l.Layer.activation expected) then
        invalid_arg "Quantize: network must be ReLU hidden / Identity output")
    net.Network.layers

let max_abs_weight (l : Layer.t) =
  let m = Tensor.Mat.to_rows l.Layer.weights in
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc w -> Stdlib.max acc (Float.abs w)) acc row)
    1e-9 m

let layer_scales (net : Network.t) ~weight_bits =
  if weight_bits < 2 || weight_bits > 20 then
    invalid_arg "Quantize: weight_bits out of [2, 20]";
  let cap = float_of_int ((1 lsl (weight_bits - 1)) - 1) in
  Array.map (fun l -> cap /. max_abs_weight l) net.Network.layers

let round_to_int x = int_of_float (Float.round x)

let quantize (net : Network.t) ~weight_bits =
  check_activations net;
  let scales = layer_scales net ~weight_bits in
  let n = Array.length net.Network.layers in
  let accumulated = ref 1. in
  let qlayers =
    Array.mapi
      (fun i (l : Layer.t) ->
        let s = scales.(i) in
        let weights =
          Array.map (Array.map (fun w -> round_to_int (w *. s)))
            (Tensor.Mat.to_rows l.Layer.weights)
        in
        let bias_scale = s *. !accumulated in
        let bias = Array.map (fun b -> round_to_int (b *. bias_scale)) l.Layer.bias in
        accumulated := !accumulated *. s;
        let act = if i < n - 1 then Qnet.Relu else Qnet.Identity in
        { Qnet.weights; bias; act })
      net.Network.layers
  in
  Qnet.create qlayers

let mean_abs_weight (l : Layer.t) =
  let m = Tensor.Mat.to_rows l.Layer.weights in
  let sum, count =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun (s, c) w -> (s +. Float.abs w, c + 1)) acc row)
      (0., 0) m
  in
  Stdlib.max 1e-9 (sum /. float_of_int (Stdlib.max 1 count))

let binarize (net : Network.t) ~weight_bits =
  let n = Array.length net.Network.layers in
  if n < 2 then invalid_arg "Quantize.binarize: need at least two layers";
  Array.iteri
    (fun i (l : Layer.t) ->
      let expected = if i = n - 1 then Activation.Identity else Activation.Sign in
      if not (Activation.equal l.Layer.activation expected) then
        invalid_arg "Quantize.binarize: network must be Sign hidden / Identity output")
    net.Network.layers;
  if weight_bits < 2 || weight_bits > 20 then
    invalid_arg "Quantize.binarize: weight_bits out of [2, 20]";
  let cap = float_of_int ((1 lsl (weight_bits - 1)) - 1) in
  let qlayers =
    Array.mapi
      (fun i (l : Layer.t) ->
        if i < n - 1 then begin
          (* Sign layers: weights collapse to ±1 and, because sign is
             invariant under positive scaling of its argument, dividing the
             whole pre-activation by the mean weight magnitude preserves
             the float layer's decision up to rounding — only the bias
             needs re-expressing on the ±1 weight scale. *)
          let alpha = mean_abs_weight l in
          let weights =
            Array.map (Array.map (fun w -> if w >= 0. then 1 else -1))
              (Tensor.Mat.to_rows l.Layer.weights)
          in
          let bias = Array.map (fun b -> round_to_int (b /. alpha)) l.Layer.bias in
          { Qnet.weights; bias; act = Qnet.Sign }
        end
        else begin
          (* Output layer sees ±1 activations (unit scale), so weights and
             biases share one fixed-point scale chosen from weight_bits. *)
          let s = cap /. max_abs_weight l in
          let weights =
            Array.map (Array.map (fun w -> round_to_int (w *. s)))
              (Tensor.Mat.to_rows l.Layer.weights)
          in
          let bias = Array.map (fun b -> round_to_int (b *. s)) l.Layer.bias in
          { Qnet.weights; bias; act = Qnet.Identity }
        end)
      net.Network.layers
  in
  Qnet.create qlayers

let agreement net qnet ~inputs =
  if Array.length inputs = 0 then invalid_arg "Quantize.agreement: empty";
  let same = ref 0 in
  Array.iter
    (fun x ->
      let fx = Array.map float_of_int x in
      if Network.predict net fx = Qnet.predict qnet x then incr same)
    inputs;
  float_of_int !same /. float_of_int (Array.length inputs)
