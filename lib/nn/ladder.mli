(** Deterministic networks for the E22 scaling ladder.

    The ladder measures how the verification stack scales along two axes
    the Leukemia case study cannot exercise: input width (6 gene-panel
    inputs up to 784 image-sized inputs) and depth (2-4 weight layers),
    for the two deployment families the quantizer supports — ReLU hidden
    layers lowered with {!Quantize.quantize} and binarized (Sign) hidden
    layers lowered with {!Quantize.binarize}.

    Every rung is a pure function of [(family, n_inputs, n_layers, seed)]:
    float weights come from a {!Util.Rng} stream (SplitMix64) keyed on all
    four, the probe input is the best-margin candidate of a fixed-size
    draw (random-init networks have no training signal, so picking the
    widest noise-free margin stands in for "a correctly classified test
    sample" — the setting of the paper's P2 query), and the label is the
    quantized network's own noise-free prediction. A bench run over rungs
    is therefore a deterministic regression gate, not a statistical one. *)

type family =
  | Relu_quantized
      (** ReLU hidden layers, fixed-point quantized ({!Quantize.quantize}) *)
  | Binarized
      (** Sign hidden layers, binarized ({!Quantize.binarize}) *)

val families : family list
(** Both, [Relu_quantized] first. *)

val family_to_string : family -> string
(** ["relu-quantized"] / ["binarized"] — the names used in rung ids,
    bench tables and [BENCH_ladder.json]. *)

type rung = {
  family : family;
  n_inputs : int;
  n_layers : int;  (** weight layers (>= 2); the last is Identity *)
  net : Network.t;  (** the float network the quantized one came from *)
  qnet : Qnet.t;  (** what the backends analyse *)
  input : int array;
      (** robust probe: the widest-margin candidate of the draw,
          components in [1, 60] *)
  label : int;  (** [Qnet.predict qnet input] — the noise-free verdict *)
  fragile : int array;
      (** fragile probe: a boundary-adjacent input, bisected along the
          integer segment between two differently-classified candidates
          of the same draw (the narrowest-margin candidate when the whole
          draw agrees) — the input whose flip count the counting
          cross-check enumerates *)
}

val weight_bits : int
(** 6 — the quantization width every rung is lowered at. *)

val hidden_width : n_inputs:int -> int
(** Hidden-layer width: 6 for gene-panel-sized inputs (<= 8), 12 up to
    64 inputs, 16 beyond — wide enough that bound propagation has real
    work per layer, narrow enough that the 784-input rungs stay within a
    bench budget. *)

val rung_id : rung -> string
(** ["<family>/<n_inputs>x<n_layers>"], e.g. ["binarized/64x3"]. *)

val rung :
  family:family -> n_inputs:int -> n_layers:int -> seed:int -> rung
(** Build one rung. Raises [Invalid_argument] when [n_inputs < 1] or
    [n_layers < 2]. *)
