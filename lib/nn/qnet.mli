(** Integer (fixed-point) network — the object of formal analysis.

    The paper's SMV model computes over integers; we obtain the same kind
    of model by quantizing the trained float network ({!Quantize}). All
    arithmetic here is exact native-int arithmetic: [n = b + W x], an
    activation per layer, and argmax ("maxpool") at the output.

    Three activations are supported. [Relu] and [Identity] are the
    paper's; [Sign] is the binarized-network activation of Narodytska et
    al. (*Verifying Properties of Binarized Deep Neural Networks*):
    [sign(pre) = +1] when [pre >= 0], [-1] otherwise. Sign outputs are
    scale-free (±1 whatever the input magnitude), which is what lets the
    noise analysis carry a per-layer running scale through deep networks
    (DESIGN.md §2) and lets the CNF encoding compile a sign neuron to a
    single comparator.

    Uniform input scaling by a positive integer [m] commutes with
    FC/ReLU/argmax provided every bias is scaled by [m] too; {!scale_biases}
    implements that. The noise model uses it to stay in exact arithmetic:
    instead of [x + x*(d/100)] it analyses [100*x + x*d] on the
    bias-scaled network (see DESIGN.md §2). Sign layers are positively
    scale-invariant ([sign(m*x) = sign(x)] for [m > 0]), so the deep
    analyses reset the running scale to 1 after each sign layer rather
    than scaling downstream biases. *)

type act = Relu | Sign | Identity

type qlayer = {
  weights : int array array;  (** [out_dim][in_dim] *)
  bias : int array;           (** [out_dim] *)
  act : act;                  (** activation after the affine map *)
}

type t = { layers : qlayer array }

val act_to_string : act -> string
val act_of_string : string -> act option
val act_equal : act -> act -> bool

val apply_act : act -> int -> int
(** Exact integer activation: ReLU clamps at 0, Sign maps to ±1 (ties at
    0 to +1), Identity passes through. *)

val create : qlayer array -> t
(** Checks layer-to-layer dimension consistency; raises [Invalid_argument]
    otherwise. *)

val in_dim : t -> int
val out_dim : t -> int
val n_layers : t -> int

val dims : t -> int list
(** [in_dim; layer widths...] — e.g. [[5; 20; 2]] for the paper net. *)

val forward : t -> int array -> int array
(** Output-node values. *)

val forward_trace : t -> int array -> int array array
(** Post-activation values per layer (last entry = output nodes). *)

val predict : t -> int array -> int
(** Argmax of the output nodes, ties to the lower index — the paper's
    [L0 >= L1 -> L0] maxpool rule. *)

val scale_biases : t -> int -> t
(** [scale_biases net m] multiplies every bias by [m] ([m > 0]); then
    [forward (scale_biases net m) (m*x) = m * forward net x] for
    ReLU/identity layers, so predictions on [m]-scaled inputs match.
    Not meaningful across [Sign] layers (their output is ±1 regardless of
    scale); the deep noise analyses use a running scale instead. *)

val max_abs_params : t -> int
(** Largest absolute weight or bias — used for interval width bounds. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Plain-text serialisation (line-oriented: a header per layer followed
    by one row of weights per output neuron and the bias row). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)

val save : string -> t -> unit
(** Write {!to_string} to a file. *)

val load : string -> (t, string) result
