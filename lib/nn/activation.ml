type t = Relu | Sigmoid | Identity | Sign

let apply t x =
  match t with
  | Relu -> if x > 0. then x else 0.
  | Sigmoid -> 1. /. (1. +. exp (-.x))
  | Identity -> x
  | Sign -> if x >= 0. then 1. else -1.

let derivative t x =
  match t with
  | Relu -> if x > 0. then 1. else 0.
  | Sigmoid ->
      let s = apply Sigmoid x in
      s *. (1. -. s)
  | Identity -> 1.
  | Sign ->
      (* Straight-through estimator: the true derivative is 0 almost
         everywhere, which kills gradient descent; BNN training passes the
         gradient through unchanged inside the unit window and clips it
         outside (Courbariaux et al.). *)
      if Float.abs x <= 1. then 1. else 0.

let apply_vec t v = Tensor.Vec.map (apply t) v

let derivative_vec t v = Tensor.Vec.map (derivative t) v

let to_string = function
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Identity -> "identity"
  | Sign -> "sign"

let equal a b =
  match (a, b) with
  | Relu, Relu | Sigmoid, Sigmoid | Identity, Identity | Sign, Sign -> true
  | (Relu | Sigmoid | Identity | Sign), _ -> false
