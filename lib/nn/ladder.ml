type family = Relu_quantized | Binarized

let families = [ Relu_quantized; Binarized ]

let family_to_string = function
  | Relu_quantized -> "relu-quantized"
  | Binarized -> "binarized"

type rung = {
  family : family;
  n_inputs : int;
  n_layers : int;
  net : Network.t;
  qnet : Qnet.t;
  input : int array;
  label : int;
  fragile : int array;
}

let weight_bits = 6

let hidden_width ~n_inputs =
  if n_inputs <= 8 then 6 else if n_inputs <= 64 then 12 else 16

let rung_id r =
  Printf.sprintf "%s/%dx%d" (family_to_string r.family) r.n_inputs r.n_layers

(* How many probe inputs to draw before keeping the widest-margin one. *)
let n_candidates = 16

(* Distinct SplitMix64 streams per rung: the shifts keep the grid's
   parameters in disjoint bit ranges, so no two ladder rungs share a
   stream even at equal seeds. *)
let stream_key ~family ~n_inputs ~n_layers ~seed =
  let tag = match family with Relu_quantized -> 1 | Binarized -> 2 in
  seed lxor (tag lsl 48) lxor (n_layers lsl 40) lxor (n_inputs lsl 20)

(* Noise-free margin of the predicted class over the runner-up. *)
let margin qnet input =
  let out = Qnet.forward qnet input in
  let label = Qnet.predict qnet input in
  let runner_up = ref min_int in
  Array.iteri (fun j v -> if j <> label && v > !runner_up then runner_up := v) out;
  out.(label) - !runner_up

(* Walk the integer segment from [a] towards [b] (which the network
   classifies differently) and return the last point still classified
   like [a]: a boundary-adjacent input. Consecutive points differ by at
   most one unit per component, so the returned point is within one grid
   step of the decision boundary — the margin there is as small as the
   integer input domain allows, and small noise deltas produce real
   flips for the counting cross-check. *)
let toward_boundary qnet a b =
  let n = Array.length a in
  let steps =
    Array.fold_left max 1 (Array.init n (fun i -> abs (b.(i) - a.(i))))
  in
  let point k =
    Array.init n (fun i ->
        a.(i)
        + int_of_float
            (Float.round (float_of_int (k * (b.(i) - a.(i))) /. float_of_int steps)))
  in
  let la = Qnet.predict qnet a in
  let lo = ref 0 and hi = ref steps in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if Qnet.predict qnet (point mid) = la then lo := mid else hi := mid
  done;
  point !lo

let rung ~family ~n_inputs ~n_layers ~seed =
  if n_inputs < 1 then invalid_arg "Ladder.rung: n_inputs must be >= 1";
  if n_layers < 2 then invalid_arg "Ladder.rung: n_layers must be >= 2";
  let rng = Util.Rng.create (stream_key ~family ~n_inputs ~n_layers ~seed) in
  let width = hidden_width ~n_inputs in
  let spec =
    (n_inputs :: List.init (n_layers - 1) (fun _ -> width)) @ [ 2 ]
  in
  let hidden_activation =
    match family with
    | Relu_quantized -> Activation.Relu
    | Binarized -> Activation.Sign
  in
  let net = Network.create ~rng ~spec ~hidden_activation in
  let qnet =
    match family with
    | Relu_quantized -> Quantize.quantize net ~weight_bits
    | Binarized -> Quantize.binarize net ~weight_bits
  in
  (* Probe inputs from one fixed-size draw, in the quantized Leukemia
     inputs' value range: the widest-margin candidate plays the robust
     test sample; the fragile sample bisects from the narrowest-margin
     candidate toward the first differently-classified one (falling back
     to the narrowest-margin candidate when the whole draw agrees). *)
  let draw () = Array.init n_inputs (fun _ -> 1 + Util.Rng.int rng 60) in
  let candidates = Array.init n_candidates (fun _ -> draw ()) in
  let pick keep =
    let best = ref candidates.(0) and best_m = ref (margin qnet candidates.(0)) in
    Array.iter
      (fun c ->
        let m = margin qnet c in
        if keep m !best_m then begin
          best := c;
          best_m := m
        end)
      candidates;
    !best
  in
  let input = pick ( > ) in
  let worst = pick ( < ) in
  let fragile =
    let la = Qnet.predict qnet worst in
    match
      Array.find_opt (fun c -> Qnet.predict qnet c <> la) candidates
    with
    | Some other -> toward_boundary qnet worst other
    | None -> worst
  in
  { family; n_inputs; n_layers; net; qnet; input;
    label = Qnet.predict qnet input; fragile }
