(** Scalar activation functions.

    The paper's network uses ReLU in the hidden layer and maxpool (argmax
    selection) at the output; argmax is handled by {!Network.predict}, so
    the output layer itself is [Identity]. [Sigmoid] is provided for the
    activation ablation. [Sign] is the binarization activation (±1) used
    to train networks destined for {!Quantize.binarize}. *)

type t = Relu | Sigmoid | Identity | Sign

val apply : t -> float -> float

val derivative : t -> float -> float
(** Derivative with respect to the pre-activation, evaluated at the
    pre-activation value. The ReLU derivative at exactly 0 is taken as 0.
    [Sign] uses the straight-through estimator: 1 inside [[-1, 1]], 0
    outside — the standard BNN training surrogate. *)

val apply_vec : t -> Tensor.Vec.t -> Tensor.Vec.t
val derivative_vec : t -> Tensor.Vec.t -> Tensor.Vec.t
val to_string : t -> string
val equal : t -> t -> bool
