type act = Relu | Sign | Identity

type qlayer = {
  weights : int array array;
  bias : int array;
  act : act;
}

type t = { layers : qlayer array }

let act_to_string = function
  | Relu -> "relu"
  | Sign -> "sign"
  | Identity -> "identity"

let act_of_string = function
  | "relu" -> Some Relu
  | "sign" -> Some Sign
  | "identity" -> Some Identity
  | _ -> None

let act_equal (a : act) (b : act) = a = b

let apply_act act pre =
  match act with
  | Relu -> if pre < 0 then 0 else pre
  | Sign -> if pre >= 0 then 1 else -1
  | Identity -> pre

let layer_in_dim l =
  if Array.length l.weights = 0 then invalid_arg "Qnet: empty layer";
  Array.length l.weights.(0)

let layer_out_dim l = Array.length l.weights

let check_layer l =
  let in_dim = layer_in_dim l in
  Array.iter
    (fun row ->
      if Array.length row <> in_dim then invalid_arg "Qnet: ragged weights")
    l.weights;
  if Array.length l.bias <> layer_out_dim l then
    invalid_arg "Qnet: bias size mismatch"

let create layers =
  if Array.length layers = 0 then invalid_arg "Qnet.create: no layers";
  Array.iter check_layer layers;
  for i = 0 to Array.length layers - 2 do
    if layer_out_dim layers.(i) <> layer_in_dim layers.(i + 1) then
      invalid_arg "Qnet.create: inter-layer dimension mismatch"
  done;
  { layers }

let in_dim t = layer_in_dim t.layers.(0)

let out_dim t = layer_out_dim t.layers.(Array.length t.layers - 1)

let n_layers t = Array.length t.layers

let dims t =
  in_dim t :: Array.to_list (Array.map layer_out_dim t.layers)

let layer_forward l x =
  Array.mapi
    (fun k row ->
      let acc = ref l.bias.(k) in
      Array.iteri (fun i w -> acc := !acc + (w * x.(i))) row;
      apply_act l.act !acc)
    l.weights

let forward t x =
  if Array.length x <> in_dim t then invalid_arg "Qnet.forward: input size";
  Array.fold_left (fun acc l -> layer_forward l acc) x t.layers

let forward_trace t x =
  if Array.length x <> in_dim t then invalid_arg "Qnet.forward_trace: input size";
  let n = Array.length t.layers in
  let trace = Array.make n [||] in
  let rec loop i input =
    if i < n then begin
      let out = layer_forward t.layers.(i) input in
      trace.(i) <- out;
      loop (i + 1) out
    end
  in
  loop 0 x;
  trace

let predict t x =
  let out = forward t x in
  let best = ref 0 in
  for i = 1 to Array.length out - 1 do
    if out.(i) > out.(!best) then best := i
  done;
  !best

let scale_biases t m =
  if m <= 0 then invalid_arg "Qnet.scale_biases: non-positive factor";
  {
    layers =
      Array.map
        (fun l -> { l with bias = Array.map (fun b -> b * m) l.bias })
        t.layers;
  }

let max_abs_params t =
  Array.fold_left
    (fun acc l ->
      let acc =
        Array.fold_left
          (fun acc row -> Array.fold_left (fun acc w -> max acc (abs w)) acc row)
          acc l.weights
      in
      Array.fold_left (fun acc b -> max acc (abs b)) acc l.bias)
    0 t.layers

let equal a b =
  Array.length a.layers = Array.length b.layers
  && Array.for_all2
       (fun la lb -> la.act = lb.act && la.weights = lb.weights && la.bias = lb.bias)
       a.layers b.layers

(* Serialisation format:
     qnet <n_layers>
     layer <out_dim> <in_dim> <relu|sign|identity>
     <in_dim ints>      (one line per output neuron)
     ...
     bias <out_dim ints>
*)
let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "qnet %d\n" (Array.length t.layers));
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "layer %d %d %s\n" (layer_out_dim l) (layer_in_dim l)
           (act_to_string l.act));
      Array.iter
        (fun row ->
          Buffer.add_string buf
            (String.concat " " (Array.to_list (Array.map string_of_int row)));
          Buffer.add_char buf '\n')
        l.weights;
      Buffer.add_string buf
        ("bias " ^ String.concat " " (Array.to_list (Array.map string_of_int l.bias)));
      Buffer.add_char buf '\n')
    t.layers;
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> Array.of_list
  in
  let pos = ref 0 in
  let next_line () =
    if !pos >= Array.length lines then failwith "unexpected end of input"
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let words l = String.split_on_char ' ' l |> List.filter (fun w -> w <> "") in
  let int_of w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> failwith ("not an integer: " ^ w)
  in
  match
    let header = words (next_line ()) in
    let n_layers =
      match header with
      | [ "qnet"; n ] -> int_of n
      | _ -> failwith "missing qnet header"
    in
    let read_layer () =
      let out_dim, in_dim, act =
        match words (next_line ()) with
        | [ "layer"; o; i; act ] ->
            ( int_of o,
              int_of i,
              match act_of_string act with
              | Some a -> a
              | None -> failwith ("unknown activation " ^ act) )
        | _ -> failwith "missing layer header"
      in
      let weights =
        Array.init out_dim (fun _ ->
            let row = List.map int_of (words (next_line ())) in
            if List.length row <> in_dim then failwith "weight row size mismatch";
            Array.of_list row)
      in
      let bias =
        match words (next_line ()) with
        | "bias" :: values ->
            let b = Array.of_list (List.map int_of values) in
            if Array.length b <> out_dim then failwith "bias size mismatch";
            b
        | _ -> failwith "missing bias row"
      in
      { weights; bias; act }
    in
    let layers = Array.init n_layers (fun _ -> read_layer ()) in
    if !pos <> Array.length lines then failwith "trailing input";
    create layers
  with
  | t -> Ok t
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  match open_in path with
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string content
  | exception Sys_error msg -> Error msg

let pp fmt t =
  Array.iteri
    (fun i l ->
      Format.fprintf fmt "layer %d: %dx%d%s@." i (layer_out_dim l)
        (layer_in_dim l)
        (match l.act with Identity -> "" | a -> " " ^ act_to_string a))
    t.layers
