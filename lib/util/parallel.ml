let override : int option Atomic.t = Atomic.make None

let set_default_jobs n = Atomic.set override (Option.map (max 1) n)

let env_jobs () =
  match Sys.getenv_opt "FANNET_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

let resolve ?jobs len =
  let j = match jobs with Some n -> max 1 n | None -> default_jobs () in
  max 1 (min j len)

(* Contiguous chunk bounds [lo, hi) covering [0, len); at most [jobs]
   chunks, sized within one element of each other. *)
let chunk_bounds ~jobs len =
  let base = len / jobs and extra = len mod jobs in
  Array.init jobs (fun k ->
      let lo = (k * base) + min k extra in
      let hi = lo + base + if k < extra then 1 else 0 in
      (lo, hi))

type probe = {
  now_s : unit -> float;
  record : chunk_seconds:float array -> unit;
}

let probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set probe p

(* Run [worker lo hi] on every chunk, chunk 0 on the calling domain, and
   return the per-chunk results in chunk order. Every spawned domain is
   joined before this function returns — even when a worker raises —
   otherwise a failure would leak running domains into the caller (and
   eventually exhaust the runtime's domain slots). When several workers
   fail, the lowest-numbered chunk's exception wins. *)
let run_chunks ~jobs len worker =
  let probe = Atomic.get probe in
  let worker =
    match probe with
    | None -> fun lo hi -> (worker lo hi, 0.)
    | Some p ->
        fun lo hi ->
          let t0 = p.now_s () in
          let r = worker lo hi in
          (r, p.now_s () -. t0)
  in
  let bounds = chunk_bounds ~jobs len in
  let spawned =
    Array.map
      (fun (lo, hi) -> Domain.spawn (fun () -> worker lo hi))
      (Array.sub bounds 1 (jobs - 1))
  in
  let first =
    match worker (fst bounds.(0)) (snd bounds.(0)) with
    | r -> Ok r
    | exception e -> Error e
  in
  let rest =
    Array.map (fun d -> match Domain.join d with r -> Ok r | exception e -> Error e) spawned
  in
  let outcomes = Array.append [| first |] rest in
  match
    Array.fold_left
      (fun acc o -> match (acc, o) with None, Error e -> Some e | _ -> acc)
      None outcomes
  with
  | Some e -> raise e
  | None ->
      let results =
        Array.map (function Ok r -> r | Error _ -> assert false) outcomes
      in
      (match probe with
      | None -> ()
      | Some p -> p.record ~chunk_seconds:(Array.map snd results));
      Array.map fst results

let mapi ?jobs f arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  if jobs = 1 then Array.mapi f arr
  else
    run_chunks ~jobs len (fun lo hi ->
        Array.init (hi - lo) (fun k -> f (lo + k) arr.(lo + k)))
    |> Array.to_list |> Array.concat

let map ?jobs f arr = mapi ?jobs (fun _ x -> f x) arr

let filter_mapi ?jobs f arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  let chunk lo hi =
    let acc = ref [] in
    for i = hi - 1 downto lo do
      match f i arr.(i) with Some y -> acc := y :: !acc | None -> ()
    done;
    !acc
  in
  if jobs = 1 then chunk 0 len
  else run_chunks ~jobs len chunk |> Array.to_list |> List.concat

let filter_map ?jobs f arr = filter_mapi ?jobs (fun _ x -> f x) arr

(* Until-variants: poll [stop] before each element; a chunk that observes
   [stop] abandons the rest of its range and returns [None] — a sentinel,
   not an exception, so a genuine worker exception is never masked by a
   concurrent stop (run_chunks re-raises the lowest-numbered chunk's
   exception). *)

let map_until ?jobs ~stop f arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  let chunk lo hi =
    let out = ref [] in
    let i = ref lo in
    let stopped = ref false in
    while (not !stopped) && !i < hi do
      if stop () then stopped := true
      else begin
        out := f !i arr.(!i) :: !out;
        incr i
      end
    done;
    if !stopped then None else Some (List.rev !out)
  in
  let chunks =
    if jobs = 1 then [| chunk 0 len |] else run_chunks ~jobs len chunk
  in
  if Array.exists Option.is_none chunks then Error ()
  else
    Ok
      (Array.concat
         (Array.to_list (Array.map (fun c -> Array.of_list (Option.get c)) chunks)))

let filter_mapi_until ?jobs ~stop f arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  let chunk lo hi =
    let out = ref [] in
    let i = ref lo in
    let stopped = ref false in
    while (not !stopped) && !i < hi do
      if stop () then stopped := true
      else begin
        (match f !i arr.(!i) with Some y -> out := y :: !out | None -> ());
        incr i
      end
    done;
    if !stopped then None else Some (List.rev !out)
  in
  let chunks =
    if jobs = 1 then [| chunk 0 len |] else run_chunks ~jobs len chunk
  in
  if Array.exists Option.is_none chunks then Error ()
  else Ok (List.concat (Array.to_list (Array.map Option.get chunks)))

let exists ?jobs p arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  if jobs = 1 then Array.exists p arr
  else begin
    let found = Atomic.make false in
    let results =
      run_chunks ~jobs len (fun lo hi ->
          let i = ref lo in
          while (not (Atomic.get found)) && !i < hi do
            if p arr.(!i) then Atomic.set found true;
            incr i
          done;
          ())
    in
    ignore results;
    Atomic.get found
  end
