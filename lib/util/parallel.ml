let override : int option Atomic.t = Atomic.make None

let set_default_jobs n = Atomic.set override (Option.map (max 1) n)

let env_jobs () =
  match Sys.getenv_opt "FANNET_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

let resolve ?jobs len =
  let j = match jobs with Some n -> max 1 n | None -> default_jobs () in
  max 1 (min j len)

(* Contiguous chunk bounds [lo, hi) covering [0, len); at most [jobs]
   chunks, sized within one element of each other. These only seed the
   per-worker ranges — stealing redistributes the tail at run time. *)
let chunk_bounds ~jobs len =
  let base = len / jobs and extra = len mod jobs in
  Array.init jobs (fun k ->
      let lo = (k * base) + min k extra in
      let hi = lo + base + if k < extra then 1 else 0 in
      (lo, hi))

type worker_stat = { busy_s : float; items : int; steals : int }

type probe = {
  now_s : unit -> float;
  record : stats:worker_stat array -> unit;
}

let probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set probe p

(* ------------------------------------------------------------------ *)
(* Work-stealing batch engine.                                         *)
(*                                                                     *)
(* Every worker owns a range atom holding a [(lo, hi)] pair of indices *)
(* still to process, seeded with the contiguous chunk bounds above.    *)
(* The owner pops the front item by CASing [(lo, hi)] to [(lo+1, hi)]; *)
(* a worker whose range is empty scans the other workers and steals    *)
(* the upper half of the first non-empty range it finds, CASing the    *)
(* victim down to [(lo, mid)] and installing [(mid, hi)] as its own.   *)
(* Tuples are freshly allocated on every transition, so the CAS (which *)
(* compares physically) can never suffer ABA.                          *)
(*                                                                     *)
(* Each item's result is written at its original index, so the output  *)
(* is identical to the sequential order whatever the steal schedule —  *)
(* the jobs=1 ≡ jobs=N contract survives the dynamic split.            *)
(*                                                                     *)
(* Exceptions never short-circuit the batch: a failing item records    *)
(* [(index, exn)] (lowest index wins, resolved by CAS) and the batch   *)
(* keeps processing every other item, so by the time the exception     *)
(* re-raises every non-failing element has run to completion and every *)
(* spawned domain has been joined. The winning exception is therefore  *)
(* deterministic — it belongs to the lowest-indexed failing item, not  *)
(* to whichever domain failed first in time.                           *)
(* ------------------------------------------------------------------ *)

let run_batch ~workers ?(should_stop = fun () -> false) len f =
  let p = Atomic.get probe in
  let ranges = Array.map Atomic.make (chunk_bounds ~jobs:workers len) in
  let failure : (int * exn) option Atomic.t = Atomic.make None in
  let rec note_failure i e =
    match Atomic.get failure with
    | Some (j, _) when j <= i -> ()
    | cur ->
        if not (Atomic.compare_and_set failure cur (Some (i, e))) then
          note_failure i e
  in
  let stats = Array.make workers { busy_s = 0.; items = 0; steals = 0 } in
  let worker k =
    let busy = ref 0. and items = ref 0 and steals = ref 0 in
    let mine = ranges.(k) in
    let run_item i =
      (match p with
      | None -> ( try f i with e -> note_failure i e)
      | Some p ->
          let t0 = p.now_s () in
          (try f i with e -> note_failure i e);
          busy := !busy +. (p.now_s () -. t0));
      incr items
    in
    let rec pop_own () =
      let (lo, hi) as cur = Atomic.get mine in
      if lo >= hi then false
      else if Atomic.compare_and_set mine cur (lo + 1, hi) then begin
        run_item lo;
        true
      end
      else pop_own ()
    in
    (* Scan victims in a fixed order starting after ourselves; the first
       worker with at least one pending item loses its upper half. A CAS
       failure means the victim's range just moved — retry it before
       moving on, so a losing race never skips available work. *)
    let try_steal () =
      let rec attempt victim =
        let (lo, hi) as cur = Atomic.get victim in
        if hi - lo <= 0 then false
        else
          let mid = lo + ((hi - lo) / 2) in
          if Atomic.compare_and_set victim cur (lo, mid) then begin
            Atomic.set mine (mid, hi);
            incr steals;
            true
          end
          else attempt victim
      in
      let rec scan off =
        if off >= workers then false
        else
          let v = (k + off) mod workers in
          if attempt ranges.(v) then true else scan (off + 1)
      in
      scan 1
    in
    let rec loop () =
      if should_stop () then ()
      else if pop_own () then loop ()
      else if try_steal () then loop ()
      else ()
    in
    loop ();
    stats.(k) <- { busy_s = !busy; items = !items; steals = !steals }
  in
  let spawned =
    Array.init (workers - 1) (fun j -> Domain.spawn (fun () -> worker (j + 1)))
  in
  worker 0;
  Array.iter Domain.join spawned;
  (match p with None -> () | Some p -> p.record ~stats);
  match Atomic.get failure with Some (_, e) -> raise e | None -> ()

let extract out =
  Array.map (function Some v -> v | None -> assert false) out

let mapi ?jobs f arr =
  let len = Array.length arr in
  let workers = resolve ?jobs len in
  if workers = 1 then Array.mapi f arr
  else begin
    let out = Array.make len None in
    run_batch ~workers len (fun i -> out.(i) <- Some (f i arr.(i)));
    extract out
  end

let map ?jobs f arr = mapi ?jobs (fun _ x -> f x) arr

let filter_mapi ?jobs f arr =
  let len = Array.length arr in
  let workers = resolve ?jobs len in
  if workers = 1 then begin
    let acc = ref [] in
    for i = len - 1 downto 0 do
      match f i arr.(i) with Some y -> acc := y :: !acc | None -> ()
    done;
    !acc
  end
  else begin
    let out = Array.make len None in
    run_batch ~workers len (fun i -> out.(i) <- f i arr.(i));
    Array.fold_right
      (fun o acc -> match o with Some y -> y :: acc | None -> acc)
      out []
  end

let filter_map ?jobs f arr = filter_mapi ?jobs (fun _ x -> f x) arr

(* Until-variants: poll [stop] before each element; once any worker
   observes [stop] the whole batch drains and returns [Error ()] — a
   sentinel, not an exception, so a genuine worker exception is never
   masked by a concurrent stop (the batch re-raises it first). *)

let stop_flag stop =
  let stopped = Atomic.make false in
  let should_stop () =
    Atomic.get stopped
    ||
    if stop () then begin
      Atomic.set stopped true;
      true
    end
    else false
  in
  (stopped, should_stop)

let map_until ?jobs ~stop f arr =
  let len = Array.length arr in
  let workers = resolve ?jobs len in
  if workers = 1 then begin
    let out = ref [] in
    let i = ref 0 in
    let stopped = ref false in
    while (not !stopped) && !i < len do
      if stop () then stopped := true
      else begin
        out := f !i arr.(!i) :: !out;
        incr i
      end
    done;
    if !stopped then Error () else Ok (Array.of_list (List.rev !out))
  end
  else begin
    let stopped, should_stop = stop_flag stop in
    let out = Array.make len None in
    run_batch ~workers ~should_stop len (fun i -> out.(i) <- Some (f i arr.(i)));
    if Atomic.get stopped then Error () else Ok (extract out)
  end

let filter_mapi_until ?jobs ~stop f arr =
  let len = Array.length arr in
  let workers = resolve ?jobs len in
  if workers = 1 then begin
    let out = ref [] in
    let i = ref 0 in
    let stopped = ref false in
    while (not !stopped) && !i < len do
      if stop () then stopped := true
      else begin
        (match f !i arr.(!i) with Some y -> out := y :: !out | None -> ());
        incr i
      end
    done;
    if !stopped then Error () else Ok (List.rev !out)
  end
  else begin
    let stopped, should_stop = stop_flag stop in
    let out = Array.make len None in
    run_batch ~workers ~should_stop len (fun i -> out.(i) <- f i arr.(i));
    if Atomic.get stopped then Error ()
    else
      Ok
        (Array.fold_right
           (fun o acc -> match o with Some y -> y :: acc | None -> acc)
           out [])
  end

let exists ?jobs p arr =
  let len = Array.length arr in
  let workers = resolve ?jobs len in
  if workers = 1 then Array.exists p arr
  else begin
    let found = Atomic.make false in
    run_batch ~workers
      ~should_stop:(fun () -> Atomic.get found)
      len
      (fun i -> if p arr.(i) then Atomic.set found true);
    Atomic.get found
  end

(* ------------------------------------------------------------------ *)
(* Racing: one domain per thunk, first completed result wins.          *)
(* ------------------------------------------------------------------ *)

let race ~cancel thunks =
  let n = Array.length thunks in
  if n = 0 then invalid_arg "Parallel.race: no thunks";
  let winner = Atomic.make (-1) in
  let outcomes = Array.make n None in
  let run k =
    let r = match thunks.(k) () with v -> Ok v | exception e -> Error e in
    outcomes.(k) <- Some r;
    match r with
    | Ok _ ->
        if Atomic.compare_and_set winner (-1) k then ( try cancel () with _ -> ())
    | Error _ -> ()
  in
  let spawned =
    Array.init (n - 1) (fun j -> Domain.spawn (fun () -> run (j + 1)))
  in
  run 0;
  Array.iter Domain.join spawned;
  let outcomes =
    Array.map (function Some r -> r | None -> assert false) outcomes
  in
  match Atomic.get winner with
  | -1 -> (
      (* Every thunk raised: propagate the lowest-indexed exception. *)
      match outcomes.(0) with Error e -> raise e | Ok _ -> assert false)
  | k ->
      let v = match outcomes.(k) with Ok v -> v | Error _ -> assert false in
      ((k, v), outcomes)
