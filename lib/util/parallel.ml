let override : int option Atomic.t = Atomic.make None

let set_default_jobs n = Atomic.set override (Option.map (max 1) n)

let env_jobs () =
  match Sys.getenv_opt "FANNET_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

let resolve ?jobs len =
  let j = match jobs with Some n -> max 1 n | None -> default_jobs () in
  max 1 (min j len)

(* Contiguous chunk bounds [lo, hi) covering [0, len); at most [jobs]
   chunks, sized within one element of each other. *)
let chunk_bounds ~jobs len =
  let base = len / jobs and extra = len mod jobs in
  Array.init jobs (fun k ->
      let lo = (k * base) + min k extra in
      let hi = lo + base + if k < extra then 1 else 0 in
      (lo, hi))

(* Run [worker lo hi] on every chunk, chunk 0 on the calling domain, and
   return the per-chunk results in chunk order. [Domain.join] re-raises a
   worker's exception, so failures propagate to the caller. *)
let run_chunks ~jobs len worker =
  let bounds = chunk_bounds ~jobs len in
  let spawned =
    Array.map
      (fun (lo, hi) -> Domain.spawn (fun () -> worker lo hi))
      (Array.sub bounds 1 (jobs - 1))
  in
  let first = worker (fst bounds.(0)) (snd bounds.(0)) in
  Array.append [| first |] (Array.map Domain.join spawned)

let mapi ?jobs f arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  if jobs = 1 then Array.mapi f arr
  else
    run_chunks ~jobs len (fun lo hi ->
        Array.init (hi - lo) (fun k -> f (lo + k) arr.(lo + k)))
    |> Array.to_list |> Array.concat

let map ?jobs f arr = mapi ?jobs (fun _ x -> f x) arr

let filter_mapi ?jobs f arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  let chunk lo hi =
    let acc = ref [] in
    for i = hi - 1 downto lo do
      match f i arr.(i) with Some y -> acc := y :: !acc | None -> ()
    done;
    !acc
  in
  if jobs = 1 then chunk 0 len
  else run_chunks ~jobs len chunk |> Array.to_list |> List.concat

let filter_map ?jobs f arr = filter_mapi ?jobs (fun _ x -> f x) arr

let exists ?jobs p arr =
  let len = Array.length arr in
  let jobs = resolve ?jobs len in
  if jobs = 1 then Array.exists p arr
  else begin
    let found = Atomic.make false in
    let results =
      run_chunks ~jobs len (fun lo hi ->
          let i = ref lo in
          while (not (Atomic.get found)) && !i < hi do
            if p arr.(!i) then Atomic.set found true;
            incr i
          done;
          ())
    in
    ignore results;
    Atomic.get found
  end
