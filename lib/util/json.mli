(** Minimal JSON emitter and parser (no external dependency).

    Covers the subset the bench harness needs for machine-readable
    artefacts such as [BENCH_parallel.json]: objects, arrays, strings with
    standard escapes, booleans, null, and numbers (integers kept exact,
    everything else as float). [of_string] is a strict recursive-descent
    parser used to validate emitted artefacts round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val pretty : t -> string
(** Two-space-indented rendering for committed/benchmark artefacts. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error string carries the failing
    byte offset. Rejects trailing garbage. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val write_file : string -> t -> unit
val parse_file : string -> (t, string) result
