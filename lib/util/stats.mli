(** Descriptive statistics over float arrays.

    Used by the dataset generator (feature scoring), the analysis passes
    (sensitivity histograms) and the benchmark reports. All functions raise
    [Invalid_argument] on empty input unless stated otherwise. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val std : float array -> float
val min : float array -> float
val max : float array -> float

val median : float array -> float
(** Median of a copy of the input (the input is not modified). Raises
    [Invalid_argument] on NaN input (see {!percentile}). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]], linear interpolation between
    closest ranks. The copy is sorted with [Float.compare]; NaN input is
    rejected with [Invalid_argument] — there is no meaningful rank for
    NaN. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient. Arrays must have equal non-zero
    length; returns [0.] when either side has zero variance. *)

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** [histogram a ~bins ~lo ~hi] counts values into [bins] equal-width
    buckets over [\[lo, hi\]]; values outside the range are clamped into the
    first or last bucket. NaN values are rejected with [Invalid_argument]
    (they have no bucket; [int_of_float nan] is unspecified). *)

val sum : float array -> float
val sum_int : int array -> int
val mean_int : int array -> float
