(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the repository (dataset synthesis, weight
    initialisation, random-testing baseline) draws from this generator so
    that all experiments are reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val split : t -> t
(** [split t] derives a new independent stream from [t], advancing [t].
    Used to give sub-components their own generator. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.

    Implemented as a 62-bit draw reduced modulo [bound], so the
    [2^62 mod bound] smallest values are drawn from one extra slice of the
    62-bit space: each value's probability deviates from uniform by less
    than [bound / 2^62]. For the small bounds used throughout this
    repository (< 10^6) the bias is < 2^-42 per value — far below anything
    observable — which is why the simple reduction is kept instead of
    rejection sampling. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian_mu_sigma : t -> mu:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
