(** Overflow-safe model counts.

    Exact #SAT counts over wide noise ranges overflow 63-bit integers
    quickly: eight noise nodes with a thousand values each already hold
    [1000^8 ≈ 2^79.7] vectors. A count is therefore either [Exact n]
    (a non-negative OCaml int) or [Huge l], a saturated value carrying
    only its base-2 logarithm. Arithmetic saturates — it never silently
    wraps — and [Huge] propagates: once a sum or product leaves the
    exact range it stays an estimate, clearly marked as such by
    {!to_string} ([~2^79.7]) and by the JSON encoding.

    [Huge] logs are IEEE doubles, so two huge counts compare equal when
    their logs do — adequate for the saturated regime, where the value
    is an order-of-magnitude statement, not a cardinality. *)

type t =
  | Exact of int   (** a true count; always [>= 0] *)
  | Huge of float  (** saturated: the base-2 log of the (positive) count *)

val zero : t
val one : t

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val add : t -> t -> t
(** Saturates to [Huge] on int overflow (log-sum-exp in log space). *)

val mul : t -> t -> t

val pow2 : int -> t
(** [2^n], [n >= 0]; exact while it fits an int, [Huge] beyond. *)

val pow : base:int -> exp:int -> t
(** [base^exp] with [base >= 1], [exp >= 0]. *)

val sum : t list -> t

val is_zero : t -> bool

val log2 : t -> float
(** [neg_infinity] for zero. *)

val ratio : t -> t -> float
(** [ratio a b] is [a/b] as a float ([0.] when [b] is zero); computed in
    log space when either side is [Huge]. *)

val equal : t -> t -> bool
(** Structural: exact counts by value, huge counts by log equality. *)

val compare : t -> t -> int
(** Total order by magnitude ([Exact] vs [Huge] compared via {!log2}). *)

val to_string : t -> string
(** ["42"] for exact counts, ["~2^79.72"] for huge ones. *)

val to_json : t -> Json.t
(** [Exact n] as a JSON int, [Huge l] as [{"huge_log2": l}] — both
    deterministic, so counts are safe inside cache-keyed payloads. *)

val of_json : Json.t -> (t, string) result
