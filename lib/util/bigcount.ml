type t = Exact of int | Huge of float

let zero = Exact 0

let one = Exact 1

let of_int n =
  if n < 0 then invalid_arg "Bigcount.of_int: negative";
  Exact n

let log2f x = log x /. log 2.

let log2 = function
  | Exact 0 -> neg_infinity
  | Exact n -> log2f (float_of_int n)
  | Huge l -> l

(* log2(2^a + 2^b) without leaving log space: a + log2(1 + 2^(b-a)). *)
let log_add a b =
  let hi = Float.max a b and lo = Float.min a b in
  if lo = neg_infinity then hi else hi +. log2f (1. +. Float.exp2 (lo -. hi))

let add a b =
  match (a, b) with
  | Exact x, Exact y ->
      let s = x + y in
      if s >= 0 then Exact s else Huge (log_add (log2 a) (log2 b))
  | _ -> Huge (log_add (log2 a) (log2 b))

let mul a b =
  match (a, b) with
  | Exact 0, _ | _, Exact 0 -> Exact 0
  | Exact x, Exact y ->
      if x <= max_int / y then Exact (x * y)
      else Huge (log2 a +. log2 b)
  | _ -> Huge (log2 a +. log2 b)

let pow2 n =
  if n < 0 then invalid_arg "Bigcount.pow2: negative";
  if n < 62 then Exact (1 lsl n) else Huge (float_of_int n)

let pow ~base ~exp =
  if base < 1 then invalid_arg "Bigcount.pow: base < 1";
  if exp < 0 then invalid_arg "Bigcount.pow: negative exponent";
  let rec go acc i = if i = exp then acc else go (mul acc (Exact base)) (i + 1) in
  go one 0

let sum = List.fold_left add zero

let is_zero = function Exact 0 -> true | Exact _ | Huge _ -> false

let ratio a b =
  if is_zero b then 0.
  else
    match (a, b) with
    | Exact x, Exact y -> float_of_int x /. float_of_int y
    | _ -> if is_zero a then 0. else Float.exp2 (log2 a -. log2 b)

let equal a b =
  match (a, b) with
  | Exact x, Exact y -> x = y
  | Huge x, Huge y -> x = y
  | Exact _, Huge _ | Huge _, Exact _ -> false

let compare a b =
  match (a, b) with
  | Exact x, Exact y -> Int.compare x y
  | _ -> Float.compare (log2 a) (log2 b)

let to_string = function
  | Exact n -> string_of_int n
  | Huge l -> Printf.sprintf "~2^%.2f" l

let to_json = function
  | Exact n -> Json.Int n
  | Huge l -> Json.Obj [ ("huge_log2", Json.Float l) ]

let of_json = function
  | Json.Int n when n >= 0 -> Ok (Exact n)
  | Json.Int _ -> Error "negative count"
  | Json.Obj kvs -> (
      match List.assoc_opt "huge_log2" kvs with
      | Some (Json.Float l) -> Ok (Huge l)
      | Some (Json.Int l) -> Ok (Huge (float_of_int l))
      | _ -> Error "malformed huge count")
  | _ -> Error "malformed count"
