type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emitting ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit buf ~indent ~level:(level + 1) item)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let pretty v = render ~indent:true v

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= len then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* Basic-multilingual-plane code points only; enough to
                      round-trip what [escape] emits. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape %C" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some n -> Int n
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (pretty v);
      output_char oc '\n')

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string (String.trim contents)
  | exception Sys_error e -> Error e
