(** Domain-based worker pool for embarrassingly parallel per-sample loops.

    Every combinator splits the input array into [jobs] contiguous chunks,
    runs one chunk per domain (the calling domain takes the first chunk)
    and reassembles the results in chunk order, so the output is
    deterministic and independent of [jobs]. With [jobs = 1] no domain is
    spawned and the sequential code path runs — results are bit-identical
    to the plain [Array] combinators.

    Workers must not share mutable state: the verification engines satisfy
    this by building a fresh solver session per query.

    [jobs] resolution order: the explicit [?jobs] argument, then the
    process-wide override ({!set_default_jobs}, the CLI's [--jobs]), then
    the [FANNET_JOBS] environment variable, then
    [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** The worker count used when [?jobs] is omitted (always >= 1). *)

val set_default_jobs : int option -> unit
(** Process-wide override ([None] restores environment/hardware
    resolution). Values below 1 are clamped to 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Same result as [Array.map] for a pure [f], in input order. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val filter_map : ?jobs:int -> ('a -> 'b option) -> 'a array -> 'b list
(** [Some]-results in input order. *)

val filter_mapi : ?jobs:int -> (int -> 'a -> 'b option) -> 'a array -> 'b list

val exists : ?jobs:int -> ('a -> bool) -> 'a array -> bool
(** Workers poll a shared flag and stop early once any element satisfies
    the predicate. *)

(** {1 Cooperative early stop}

    The [_until] variants poll [stop] (which must be thread-safe — an
    atomic flag or a {e budget} check) before every element. A chunk
    that observes [stop] abandons the rest of its range; the whole call
    then returns [Error ()] and all per-element results are discarded,
    so [Ok] results remain deterministic and independent of [jobs].
    Abandonment is a sentinel, not an exception: a genuine worker
    exception still propagates (after all domains are joined) and is
    never masked by a concurrent stop. *)

val map_until :
  ?jobs:int -> stop:(unit -> bool) -> (int -> 'a -> 'b) -> 'a array ->
  ('b array, unit) result

val filter_mapi_until :
  ?jobs:int -> stop:(unit -> bool) -> (int -> 'a -> 'b option) -> 'a array ->
  ('b list, unit) result
(** [Some]-results in input order when no chunk stopped. *)

(** {1 Failure semantics}

    When a worker raises, every spawned domain is still joined before the
    exception propagates — a failing parallel call never leaks running
    domains — and with several failing chunks the lowest-numbered chunk's
    exception is re-raised. *)

(** {1 Instrumentation}

    An optional probe observes per-chunk wall time. [None] (the default)
    is the zero-overhead path: a single atomic load per parallel batch.
    The observability layer ([Obs.Report.enable]) installs a probe backed
    by the monotonic clock; this module deliberately has no dependency on
    it. *)

type probe = {
  now_s : unit -> float;  (** timestamp source (seconds, monotonic) *)
  record : chunk_seconds:float array -> unit;
      (** called on the calling domain after a successful parallel batch,
          with one wall-time entry per chunk in chunk order *)
}

val set_probe : probe option -> unit
