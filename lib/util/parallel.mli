(** Work-stealing domain pool for per-sample verification loops.

    Every combinator seeds one range of indices per worker (the calling
    domain is worker 0) and lets idle workers steal the upper half of a
    busy worker's remaining range, so a slow item — one hard solver
    query — no longer stalls a whole static chunk. Each item's result is
    written back at its original index and the output is reassembled in
    input order, so results are deterministic and independent of [jobs]
    and of the steal schedule. With [jobs = 1] no domain is spawned and
    the sequential code path runs — results are bit-identical to the
    plain [Array] combinators.

    Workers must not share mutable state through [f]; per-worker caches
    keyed by {!Domain.DLS} (e.g. warm solver sessions) are fine.

    [jobs] resolution order: the explicit [?jobs] argument, then the
    process-wide override ({!set_default_jobs}, the CLI's [--jobs]), then
    the [FANNET_JOBS] environment variable, then
    [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** The worker count used when [?jobs] is omitted (always >= 1). *)

val set_default_jobs : int option -> unit
(** Process-wide override ([None] restores environment/hardware
    resolution). Values below 1 are clamped to 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Same result as [Array.map] for a pure [f], in input order. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val filter_map : ?jobs:int -> ('a -> 'b option) -> 'a array -> 'b list
(** [Some]-results in input order. *)

val filter_mapi : ?jobs:int -> (int -> 'a -> 'b option) -> 'a array -> 'b list

val exists : ?jobs:int -> ('a -> bool) -> 'a array -> bool
(** Workers poll a shared flag and stop early once any element satisfies
    the predicate. *)

(** {1 Cooperative early stop}

    The [_until] variants poll [stop] (which must be thread-safe — an
    atomic flag or a {e budget} check) before every element. Once any
    worker observes [stop] the whole batch drains, the call returns
    [Error ()] and all per-element results are discarded, so [Ok]
    results remain deterministic and independent of [jobs]. Abandonment
    is a sentinel, not an exception: a genuine worker exception still
    propagates (after all domains are joined) and is never masked by a
    concurrent stop. *)

val map_until :
  ?jobs:int -> stop:(unit -> bool) -> (int -> 'a -> 'b) -> 'a array ->
  ('b array, unit) result

val filter_mapi_until :
  ?jobs:int -> stop:(unit -> bool) -> (int -> 'a -> 'b option) -> 'a array ->
  ('b list, unit) result
(** [Some]-results in input order when no worker stopped. *)

(** {1 Failure semantics}

    A raising item does not abort the batch: its exception is recorded,
    every other element still runs to completion, every spawned domain
    is joined, and only then is the exception re-raised — a failing
    parallel call never leaks running domains. With several failing
    items the exception of the {e lowest-indexed} failing item wins,
    which makes the propagated exception deterministic and independent
    of [jobs] (under the old static chunking the winner was the
    lowest-numbered failing chunk; per-item resolution refines that). *)

(** {1 Racing}

    [race ~cancel thunks] runs every thunk on its own domain (the
    calling domain runs thunk 0) and reports the first one to return
    normally. The moment a winner is decided, [cancel] is invoked
    exactly once — from the winning domain — so the caller can ask the
    losers to stop cooperatively (e.g. by firing {!Resil.Budget}
    cancellation tokens); [cancel] must therefore be thread-safe. Every
    domain is still joined before [race] returns, so losers always run
    to completion (typically returning quickly once cancelled) and no
    domain leaks. Returns the winner's index and value plus every
    thunk's outcome in index order. If {e all} thunks raise, the
    lowest-indexed exception is re-raised. *)

val race :
  cancel:(unit -> unit) ->
  (unit -> 'a) array ->
  (int * 'a) * ('a, exn) result array

(** {1 Instrumentation}

    An optional probe observes per-worker effort. [None] (the default)
    is the zero-overhead path: a single atomic load per parallel batch.
    The observability layer ([Obs.Report.enable]) installs a probe backed
    by the monotonic clock; this module deliberately has no dependency on
    it. *)

type worker_stat = {
  busy_s : float;  (** wall time spent inside [f], summed over the items
                       this worker actually ran (steal-adjusted) *)
  items : int;     (** items this worker ran *)
  steals : int;    (** ranges this worker stole from a victim *)
}

type probe = {
  now_s : unit -> float;  (** timestamp source (seconds, monotonic) *)
  record : stats:worker_stat array -> unit;
      (** called on the calling domain after each parallel batch, with
          one entry per worker in worker order *)
}

val set_probe : probe option -> unit
