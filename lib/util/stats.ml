let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let sum a = Array.fold_left ( +. ) 0. a

let sum_int a = Array.fold_left ( + ) 0 a

let mean a =
  check_nonempty "Stats.mean" a;
  sum a /. float_of_int (Array.length a)

let mean_int a =
  check_nonempty "Stats.mean_int" a;
  float_of_int (sum_int a) /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
  acc /. float_of_int (Array.length a)

let std a = sqrt (variance a)

let min a =
  check_nonempty "Stats.min" a;
  Array.fold_left Stdlib.min a.(0) a

let max a =
  check_nonempty "Stats.max" a;
  Array.fold_left Stdlib.max a.(0) a

let check_no_nan name a =
  if Array.exists Float.is_nan a then invalid_arg (name ^ ": NaN in input")

(* Float.compare, not polymorphic compare: monomorphic (no boxing per
   comparison) and an explicit IEEE total order, so rank statistics never
   depend on the input's element order. *)
let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile a p =
  check_nonempty "Stats.percentile" a;
  check_no_nan "Stats.percentile" a;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then b.(lo)
  else
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let median a = percentile a 50.

let pearson x y =
  check_nonempty "Stats.pearson" x;
  if Array.length x <> Array.length y then
    invalid_arg "Stats.pearson: length mismatch";
  let mx = mean x and my = mean y in
  let num = ref 0. and dx2 = ref 0. and dy2 = ref 0. in
  Array.iteri
    (fun i xi ->
      let dx = xi -. mx and dy = y.(i) -. my in
      num := !num +. (dx *. dy);
      dx2 := !dx2 +. (dx *. dx);
      dy2 := !dy2 +. (dy *. dy))
    x;
  if !dx2 = 0. || !dy2 = 0. then 0. else !num /. sqrt (!dx2 *. !dy2)

let histogram a ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  (* Reject NaN up front: [int_of_float nan] is unspecified, so a NaN
     would otherwise land silently in an arbitrary bucket (bucket 0 on
     amd64) and corrupt the counts. *)
  check_no_nan "Stats.histogram" a;
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bucket x =
    let i = int_of_float ((x -. lo) /. width) in
    Stdlib.min (bins - 1) (Stdlib.max 0 i)
  in
  Array.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) a;
  counts
